// Shared JSON report for the bench_* binaries.
//
// Every perf-tracking bench appends its measurements to one file —
// BENCH_synthesis.json by default, overridable through the
// BRIDGE_BENCH_JSON environment variable — so the repo accumulates a
// recorded perf trajectory across PRs and CI runs upload one artifact.
//
// The file is a single JSON object with an "entries" array holding one
// object per line. Entries are keyed by their "name" field: writing an
// entry whose name already exists replaces it, entries from other bench
// binaries are preserved. The one-line-per-entry layout is what makes the
// merge robust without a JSON parser.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "dtas/synthesizer.h"

namespace bridge::benchjson {

inline std::string default_path() {
  const char* env = std::getenv("BRIDGE_BENCH_JSON");
  return env != nullptr && env[0] != '\0' ? env : "BENCH_synthesis.json";
}

struct Entry {
  std::string name;
  std::vector<std::pair<std::string, double>> numbers;
  std::vector<std::pair<std::string, std::string>> strings;

  Entry& num(std::string key, double value) {
    numbers.emplace_back(std::move(key), value);
    return *this;
  }
  Entry& str(std::string key, std::string value) {
    strings.emplace_back(std::move(key), std::move(value));
    return *this;
  }
};

inline double median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples.empty() ? 0.0 : samples[samples.size() / 2];
}

/// Median wall time of `repeats` runs, in milliseconds.
template <class Fn>
double time_ms(Fn&& fn, int repeats = 3) {
  std::vector<double> samples;
  samples.reserve(repeats);
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return median(std::move(samples));
}

/// The compiled and reference evaluators must agree exactly: same
/// alternative count, bitwise-equal metric doubles, same descriptions.
/// Both JSON-emitting benches gate their exit status on this.
inline bool identical_fronts(const std::vector<dtas::AlternativeDesign>& a,
                             const std::vector<dtas::AlternativeDesign>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].metric.area != b[i].metric.area ||
        a[i].metric.delay != b[i].metric.delay ||
        a[i].description != b[i].description) {
      return false;
    }
  }
  return true;
}

namespace detail {

inline std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

inline std::string format_entry(const Entry& e) {
  std::ostringstream os;
  os << "    {\"name\": \"" << escape(e.name) << '"';
  for (const auto& [k, v] : e.numbers) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    os << ", \"" << escape(k) << "\": " << buf;
  }
  for (const auto& [k, v] : e.strings) {
    os << ", \"" << escape(k) << "\": \"" << escape(v) << '"';
  }
  os << '}';
  return os.str();
}

/// Name of an entry line previously written by format_entry, or "".
inline std::string entry_name(const std::string& line) {
  const std::string marker = "{\"name\": \"";
  const size_t b = line.find(marker);
  if (b == std::string::npos) return "";
  const size_t start = b + marker.size();
  std::string name;
  for (size_t i = start; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      name.push_back(line[++i]);
    } else if (line[i] == '"') {
      return name;
    } else {
      name.push_back(line[i]);
    }
  }
  return "";
}

}  // namespace detail

/// Merge `entries` into the report at `path` (see file comment) and print
/// where they went.
inline void write(const std::vector<Entry>& entries,
                  const std::string& path = default_path()) {
  // Retain existing entry lines whose names are not being rewritten.
  std::vector<std::pair<std::string, std::string>> kept;  // (name, line)
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      const std::string name = detail::entry_name(line);
      if (name.empty()) continue;
      bool replaced = false;
      for (const Entry& e : entries) replaced = replaced || e.name == name;
      if (!replaced) kept.emplace_back(name, line);
    }
  }
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"schema\": \"bridge-bench-synthesis-v1\",\n  \"entries\": [\n";
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) out << ",\n";
    first = false;
    out << line;
  };
  for (const auto& [name, line] : kept) {
    // Strip any trailing comma from a previously-written middle line.
    std::string l = line;
    while (!l.empty() && (l.back() == ',' || l.back() == ' ')) l.pop_back();
    emit(l);
  }
  for (const Entry& e : entries) emit(detail::format_entry(e));
  out << "\n  ]\n}\n";
  std::printf("wrote %zu entr%s to %s\n", entries.size(),
              entries.size() == 1 ? "y" : "ies", path.c_str());
}

}  // namespace bridge::benchjson
