// §6 runtime claim: "DTAS generated this design space in less than 15
// minutes of real time on a SUN-3 workstation." google-benchmark timing of
// full design-space generation + evaluation + extraction on modern
// hardware, across component sizes, plus the memoization ablation
// (DESIGN.md ablation 5: shared spec nodes are what keep expansion linear).
#include <benchmark/benchmark.h>

#include "cells/cell.h"
#include "dtas/synthesizer.h"

using namespace bridge;

static void BM_AluFullSynthesis(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    dtas::Synthesizer synth(cells::lsi_library());
    auto alts = synth.synthesize(genus::make_alu_spec(width,
                                                      genus::alu16_ops()));
    benchmark::DoNotOptimize(alts);
  }
  state.SetLabel("paper: <15 min on a SUN-3 for width 64");
}
BENCHMARK(BM_AluFullSynthesis)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

static void BM_AdderDesignSpace(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    dtas::Synthesizer synth(cells::lsi_library());
    auto* node = synth.space().expand(genus::make_adder_spec(width));
    synth.space().evaluate(node);
    benchmark::DoNotOptimize(node->alts);
  }
}
BENCHMARK(BM_AdderDesignSpace)->Arg(16)->Arg(64)->Arg(128);

static void BM_ExpansionStats(benchmark::State& state) {
  // Reports how large the memoized AND-OR graph is for the 64-bit ALU.
  for (auto _ : state) {
    dtas::Synthesizer synth(cells::lsi_library());
    auto* node =
        synth.space().expand(genus::make_alu_spec(64, genus::alu16_ops()));
    synth.space().evaluate(node);
    const auto& stats = synth.space().stats();
    state.counters["spec_nodes"] = stats.spec_nodes;
    state.counters["impl_nodes"] = stats.impl_nodes;
    state.counters["leaf_impls"] = stats.leaf_impls;
    state.counters["rule_apps"] = stats.rule_applications;
  }
}
BENCHMARK(BM_ExpansionStats);

BENCHMARK_MAIN();
