// §6 runtime claim: "DTAS generated this design space in less than 15
// minutes of real time on a SUN-3 workstation."
//
// This bench records the repo's synthesis-runtime trajectory. Every
// workload runs twice — once on the compiled TimingPlan evaluator
// (default) and once on the reference functional evaluator, i.e. the
// pre-compiled-plan code path preserved behind
// SpaceOptions::use_compiled_plan — and both total synthesis wall times
// land in BENCH_synthesis.json, together with odometer statistics
// (combinations evaluated / pruned) and design-space sizes. On top of
// that, every workload is re-run on the sharded parallel odometer at
// threads ∈ {2, 4, 8}, recording one <workload>/t<N> entry each plus
// suite-level sec6_runtime/suite_t<N> entries whose speedup_vs_1thread is
// the threads-vs-speedup headline. All runs — both evaluators and every
// thread count — must produce identical alternative fronts (same metrics,
// same descriptions); any divergence fails the bench.
//
// Workloads:
//  - spec synthesis of the Figure-3 ALU family and wide adders (these are
//    expansion-dominated: the odometer is small once the Pareto filter
//    has trimmed every child, so neither the plan nor threads matter
//    much);
//  - whole-netlist synthesis of a 16-bit datapath under a dense
//    design-space sweep (min_delay_gain = 0), where the odometer explores
//    the §5 "several hundred thousand" combination regime and the
//    per-combination evaluator dominates everything else;
//  - the same sweep with the combination cap lifted to one million — the
//    top of the §5 "several hundred thousand to several million" range —
//    which is where the sharded odometer earns its keep.
//
// BRIDGE_BENCH_QUICK=1 drops the repeat count to one (sanitizer CI runs).
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "cells/cell.h"
#include "dtas/synthesizer.h"
#include "netlist/netlist.h"

using namespace bridge;

namespace {

struct RunResult {
  double wall_ms = 0.0;
  long evaluated = 0;
  long pruned = 0;
  long parallel_odometers = 0;
  long odometer_shards = 0;
  int spec_nodes = 0;
  int impl_nodes = 0;
  long template_cache_hits = 0;    // this run's lookups only
  long template_cache_misses = 0;
  std::vector<dtas::AlternativeDesign> alts;
  double prune_ratio() const {
    const long total = evaluated + pruned;
    return total > 0 ? static_cast<double>(pruned) / total : 0.0;
  }
};

/// A 16-bit datapath of twelve distinct component specifications:
/// registered operand -> 16-bit ALU -> adder -> subtractor -> shifter ->
/// add/sub, with a byte-slice 8-bit ALU feeding an 8x8 multiplier, an XOR
/// merge, a comparator, a 4:1 result mux, and an output register. Every
/// instance spec is distinct, so the whole-netlist odometer has twelve
/// independent choice digits — enough for the §5 combination counts once
/// the per-spec filters keep more than one alternative each.
netlist::Module make_datapath(int w) {
  using genus::Op;
  using genus::OpSet;
  netlist::Module m("datapath" + std::to_string(w));
  const auto A = m.add_port("A", genus::PortDir::kIn, w);
  const auto B = m.add_port("B", genus::PortDir::kIn, w);
  const auto C = m.add_port("C", genus::PortDir::kIn, w);
  const auto D = m.add_port("D", genus::PortDir::kIn, w);
  const auto F = m.add_port("F", genus::PortDir::kIn, 4);
  const auto SHF = m.add_port("SHF", genus::PortDir::kIn, 1);
  const auto SEL = m.add_port("SEL", genus::PortDir::kIn, 2);
  const auto CI = m.add_port("CI", genus::PortDir::kIn, 1);
  const auto CLK = m.add_port("CLK", genus::PortDir::kIn, 1);
  const auto EN = m.add_port("EN", genus::PortDir::kIn, 1);
  const auto ARST = m.add_port("ARST", genus::PortDir::kIn, 1);
  const auto OUT = m.add_port("OUT", genus::PortDir::kOut, w);
  const auto EQ = m.add_port("FLAG_EQ", genus::PortDir::kOut, 1);
  const auto LT = m.add_port("FLAG_LT", genus::PortDir::kOut, 1);

  const auto ra = m.add_net("ra", w);
  const auto alu_out = m.add_net("alu_out", w);
  const auto sum = m.add_net("sum", w);
  const auto diff = m.add_net("diff", w);
  const auto shifted = m.add_net("shifted", w);
  const auto as_out = m.add_net("as_out", w);
  const auto alu8_out = m.add_net("alu8_out", w / 2);
  const auto mul_out = m.add_net("mul_out", w);
  const auto xr = m.add_net("xr", w);
  const auto muxed = m.add_net("muxed", w);

  auto& rin = m.add_spec_instance("rin", genus::make_register_spec(w));
  m.connect(rin, "D", A);
  m.connect(rin, "CLK", CLK);
  m.connect(rin, "EN", EN);
  m.connect(rin, "ARST", ARST);
  m.connect(rin, "Q", ra);

  auto& alu =
      m.add_spec_instance("alu0", genus::make_alu_spec(w, genus::alu16_ops()));
  m.connect(alu, "A", ra);
  m.connect(alu, "B", B);
  m.connect(alu, "CI", CI);
  m.connect(alu, "F", F);
  m.connect(alu, "OUT", alu_out);

  auto& add =
      m.add_spec_instance("add0", genus::make_adder_spec(w, false, false));
  m.connect(add, "A", alu_out);
  m.connect(add, "B", C);
  m.connect(add, "S", sum);

  auto& sub = m.add_spec_instance("sub0", genus::make_subtractor_spec(w));
  m.connect(sub, "A", sum);
  m.connect(sub, "B", D);
  m.connect(sub, "S", diff);

  auto& sh = m.add_spec_instance(
      "sh0", genus::make_shifter_spec(w, OpSet{Op::kShl, Op::kShr}));
  m.connect(sh, "IN", diff);
  m.connect(sh, "F", SHF);
  m.connect(sh, "OUT", shifted);

  auto& cmp = m.add_spec_instance(
      "cmp0", genus::make_comparator_spec(w, OpSet{Op::kEq, Op::kLt}));
  m.connect(cmp, "A", sum);
  m.connect(cmp, "B", D);
  m.connect(cmp, "EQ", EQ);
  m.connect(cmp, "LT", LT);

  auto& as = m.add_spec_instance("as0", genus::make_addsub_spec(w));
  m.connect(as, "A", shifted);
  m.connect(as, "B", C);
  m.connect(as, "CI", CI);
  m.connect(as, "MODE", SHF);
  m.connect(as, "S", as_out);

  auto& alu8 = m.add_spec_instance(
      "alu8", genus::make_alu_spec(w / 2, genus::alu16_ops()));
  m.connect(alu8, "A", sum, 0);
  m.connect(alu8, "B", sum, w / 2);
  m.connect(alu8, "CI", CI);
  m.connect(alu8, "F", F);
  m.connect(alu8, "OUT", alu8_out);

  auto& mul = m.add_spec_instance(
      "mul0", genus::make_multiplier_spec(w / 2, w / 2));
  m.connect(mul, "A", alu8_out);
  m.connect(mul, "B", diff, w / 2);
  m.connect(mul, "P", mul_out);

  auto& xg = m.add_spec_instance(
      "xor0", genus::make_gate_spec(Op::kXor, w, 2));
  m.connect(xg, "I0", as_out);
  m.connect(xg, "I1", mul_out);
  m.connect(xg, "OUT", xr);

  auto& mux = m.add_spec_instance("mux0", genus::make_mux_spec(w, 4));
  m.connect(mux, "I0", alu_out);
  m.connect(mux, "I1", sum);
  m.connect(mux, "I2", xr);
  m.connect(mux, "I3", shifted);
  m.connect(mux, "SEL", SEL);
  m.connect(mux, "OUT", muxed);

  auto& rout =
      m.add_spec_instance("rout", genus::make_register_spec(w, false, true));
  m.connect(rout, "D", muxed);
  m.connect(rout, "CLK", CLK);
  m.connect(rout, "ARST", ARST);
  m.connect(rout, "Q", OUT);
  return m;
}

dtas::SpaceOptions with_evaluator(dtas::SpaceOptions opt, bool compiled,
                                  int threads = 1) {
  opt.use_compiled_plan = compiled;
  opt.bound_prune = compiled;  // pruning belongs to the new evaluator
  opt.threads = threads;       // 1 = the serial baseline path
  return opt;
}

template <class SynthFn>
RunResult run(const dtas::SpaceOptions& opt, SynthFn&& synth_fn, int repeats) {
  RunResult r;
  r.wall_ms = benchjson::time_ms(
      [&] {
        dtas::Synthesizer synth(cells::lsi_library(), opt);
        r.alts = synth_fn(synth);
        r.evaluated = synth.space().stats().combinations_evaluated;
        r.pruned = synth.space().stats().combinations_pruned;
        r.parallel_odometers = synth.space().stats().parallel_odometers;
        r.odometer_shards = synth.space().stats().odometer_shards;
        r.spec_nodes = synth.space().stats().spec_nodes;
        r.impl_nodes = synth.space().stats().impl_nodes;
        r.template_cache_hits = synth.space().stats().template_cache_hits;
        r.template_cache_misses = synth.space().stats().template_cache_misses;
      },
      repeats);
  return r;
}

}  // namespace

int main() {
  struct Workload {
    std::string name;
    dtas::SpaceOptions options;
    std::function<std::vector<dtas::AlternativeDesign>(dtas::Synthesizer&)> fn;
  };
  std::vector<Workload> workloads;

  for (int width : {16, 32, 64}) {
    workloads.push_back(
        {"sec6_runtime/alu" + std::to_string(width) + "_lsi",
         dtas::SpaceOptions{},
         [width](dtas::Synthesizer& s) {
           return s.synthesize(genus::make_alu_spec(width, genus::alu16_ops()));
         }});
  }
  workloads.push_back({"sec6_runtime/adder128_lsi", dtas::SpaceOptions{},
                       [](dtas::Synthesizer& s) {
                         return s.synthesize(genus::make_adder_spec(128));
                       }});
  // The dense sweep: strict Pareto (no favorable-tradeoff threshold) keeps
  // every non-dominated child alternative, so the whole-netlist odometer
  // runs against max_combinations_per_impl — the "several hundred thousand
  // ... alternative designs" regime §5 describes.
  {
    dtas::SpaceOptions sweep;
    sweep.min_delay_gain = 0.0;
    sweep.max_combinations_per_impl = 200000;
    workloads.push_back({"sec6_runtime/datapath16_sweep", sweep,
                         [](dtas::Synthesizer& s) {
                           const netlist::Module input = make_datapath(16);
                           return s.synthesize_netlist(input);
                         }});
  }
  // The same sweep at the top of the §5 range ("to several million"):
  // a deeper alternative cap and a one-million combination budget. This
  // is the workload the sharded parallel odometer is for.
  {
    dtas::SpaceOptions sweep1m;
    sweep1m.min_delay_gain = 0.0;
    sweep1m.max_alternatives_per_node = 48;
    sweep1m.max_combinations_per_impl = 1000000;
    workloads.push_back({"sec6_runtime/datapath16_sweep1m", sweep1m,
                         [](dtas::Synthesizer& s) {
                           const netlist::Module input = make_datapath(16);
                           return s.synthesize_netlist(input);
                         }});
  }
  workloads.push_back({"sec6_runtime/datapath16_default", dtas::SpaceOptions{},
                       [](dtas::Synthesizer& s) {
                         const netlist::Module input = make_datapath(16);
                         return s.synthesize_netlist(input);
                       }});

  const char* quick_env = std::getenv("BRIDGE_BENCH_QUICK");
  const bool quick = quick_env != nullptr && quick_env[0] != '\0' &&
                     quick_env[0] != '0';
  const int repeats = quick ? 1 : 3;
  const std::vector<int> kThreadCounts = {2, 4, 8};
  const int hw_threads =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));

  std::printf("%-34s %12s %12s %8s %10s %9s %5s\n", "workload", "compiled(ms)",
              "reference(ms)", "speedup", "evaluated", "pruned", "alts");
  std::vector<benchjson::Entry> entries;
  double total_compiled = 0.0, total_reference = 0.0;
  std::vector<double> total_threaded(kThreadCounts.size(), 0.0);
  bool all_identical = true;
  for (const Workload& w : workloads) {
    // Serial baseline (threads = 1, the PR 2 code path) vs the reference
    // functional evaluator.
    const RunResult compiled =
        run(with_evaluator(w.options, true), w.fn, repeats);
    const RunResult reference =
        run(with_evaluator(w.options, false), w.fn, repeats);
    const bool same = benchjson::identical_fronts(compiled.alts,
                                                  reference.alts);
    all_identical = all_identical && same;
    total_compiled += compiled.wall_ms;
    total_reference += reference.wall_ms;
    const double speedup = compiled.wall_ms > 0.0
                               ? reference.wall_ms / compiled.wall_ms
                               : 0.0;
    std::printf("%-34s %12.2f %12.2f %7.2fx %10ld %9ld %5zu%s\n",
                w.name.c_str(), compiled.wall_ms, reference.wall_ms, speedup,
                compiled.evaluated, compiled.pruned, compiled.alts.size(),
                same ? "" : "  FRONT MISMATCH");
    benchjson::Entry e;
    e.name = w.name;
    e.num("wall_ms_compiled", compiled.wall_ms)
        .num("wall_ms_reference", reference.wall_ms)
        .num("speedup", speedup)
        .num("combinations_evaluated", static_cast<double>(compiled.evaluated))
        .num("combinations_pruned", static_cast<double>(compiled.pruned))
        .num("combinations_reference",
             static_cast<double>(reference.evaluated))
        .num("spec_nodes", compiled.spec_nodes)
        .num("impl_nodes", compiled.impl_nodes)
        .num("alternatives", static_cast<double>(compiled.alts.size()))
        // Cache / prune effectiveness: structural properties of the
        // search, so the regression gate can catch a cache that quietly
        // stopped working even when wall time looks fine.
        .num("template_cache_hits",
             static_cast<double>(compiled.template_cache_hits))
        .num("template_cache_misses",
             static_cast<double>(compiled.template_cache_misses))
        .num("prune_ratio", compiled.prune_ratio())
        .str("fronts_identical", same ? "yes" : "NO");
    entries.push_back(std::move(e));

    // The sharded parallel odometer at each thread count. Fronts must be
    // bit-identical to the serial baseline — that is the determinism
    // contract, enforced here on every bench run.
    for (size_t t = 0; t < kThreadCounts.size(); ++t) {
      const int threads = kThreadCounts[t];
      const RunResult threaded =
          run(with_evaluator(w.options, true, threads), w.fn, repeats);
      const bool tsame =
          benchjson::identical_fronts(threaded.alts, compiled.alts);
      all_identical = all_identical && tsame;
      total_threaded[t] += threaded.wall_ms;
      const double tspeedup = threaded.wall_ms > 0.0
                                  ? compiled.wall_ms / threaded.wall_ms
                                  : 0.0;
      std::printf("%-34s %12.2f %12s %7.2fx %10ld %9ld %5zu%s\n",
                  (w.name + "/t" + std::to_string(threads)).c_str(),
                  threaded.wall_ms, "", tspeedup, threaded.evaluated,
                  threaded.pruned, threaded.alts.size(),
                  tsame ? "" : "  FRONT MISMATCH vs 1 thread");
      benchjson::Entry te;
      te.name = w.name + "/t" + std::to_string(threads);
      te.num("wall_ms_compiled", threaded.wall_ms)
          .num("threads", threads)
          .num("speedup_vs_1thread", tspeedup)
          .num("parallel_odometers",
               static_cast<double>(threaded.parallel_odometers))
          .num("odometer_shards",
               static_cast<double>(threaded.odometer_shards))
          .num("combinations_evaluated",
               static_cast<double>(threaded.evaluated))
          .num("combinations_pruned", static_cast<double>(threaded.pruned))
          .str("fronts_identical", tsame ? "yes" : "NO");
      entries.push_back(std::move(te));
    }
  }
  const double total_speedup =
      total_compiled > 0.0 ? total_reference / total_compiled : 0.0;
  std::printf("%-34s %12.2f %12.2f %7.2fx\n", "TOTAL", total_compiled,
              total_reference, total_speedup);
  benchjson::Entry total;
  total.name = "sec6_runtime/total";
  total.num("wall_ms_compiled", total_compiled)
      .num("wall_ms_reference", total_reference)
      .num("speedup", total_speedup)
      .str("fronts_identical", all_identical ? "yes" : "NO");
  entries.push_back(std::move(total));
  // Suite-level threads-vs-speedup trajectory: the whole suite re-run on
  // N threads against the 1-thread compiled baseline. Interpret against
  // hardware_concurrency — on fewer physical cores than threads, the
  // extra threads time-slice and the speedup tops out at the core count.
  for (size_t t = 0; t < kThreadCounts.size(); ++t) {
    const double suite_speedup = total_threaded[t] > 0.0
                                     ? total_compiled / total_threaded[t]
                                     : 0.0;
    std::printf("%-34s %12.2f %12s %7.2fx (vs 1 thread, %d cores)\n",
                ("TOTAL/t" + std::to_string(kThreadCounts[t])).c_str(),
                total_threaded[t], "", suite_speedup, hw_threads);
    benchjson::Entry st;
    st.name = "sec6_runtime/suite_t" + std::to_string(kThreadCounts[t]);
    st.num("wall_ms_compiled", total_threaded[t])
        .num("threads", kThreadCounts[t])
        .num("speedup_vs_1thread", suite_speedup)
        .num("hardware_concurrency", hw_threads)
        .str("fronts_identical", all_identical ? "yes" : "NO");
    entries.push_back(std::move(st));
  }
  benchjson::write(entries);
  return all_identical ? 0 : 1;
}
