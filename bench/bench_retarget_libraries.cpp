// Retargeting throughput: design-space construction + evaluation of the
// Figure-3 64-bit 16-function ALU across every registered library —
// the two built-in data books and the bundled Liberty import.
//
// Per library this prints how many cells the functional matcher bound
// (leaf implementations), how many specification nodes the space
// expanded, how many alternatives survived the Pareto filter, and the
// wall time. The paper ran the LSI case in "<15 min on a SUN-3" (§6);
// all three libraries here should land in milliseconds.
#include <chrono>
#include <cstdio>

#include "base/diag.h"
#include "cells/registry.h"
#include "dtas/synthesizer.h"
#include "liberty/liberty.h"

using namespace bridge;

#ifndef BRIDGE_LIBS_DIR
#define BRIDGE_LIBS_DIR "libs"
#endif

int main() {
  auto registry = cells::LibraryRegistry::with_builtins();
  try {
    registry.load_liberty_file(std::string(BRIDGE_LIBS_DIR) +
                               "/sample_sky130_subset.lib");
  } catch (const Error& e) {
    std::printf("warning: no Liberty library: %s\n", e.what());
  }

  const genus::ComponentSpec alu =
      genus::make_alu_spec(64, genus::alu16_ops());
  std::printf("component: ALU(A-64 B-64 CI F-4) OUT-64 CO, ops %s\n\n",
              genus::alu16_ops().to_string().c_str());
  std::printf("%-22s %6s %6s %7s %7s %6s %5s %10s\n", "library", "cells",
              "rules", "specs", "matched", "rules+", "alts", "wall(ms)");

  for (const cells::CellLibrary* lib : registry.all()) {
    const auto t0 = std::chrono::steady_clock::now();
    dtas::RuleBase rules = dtas::default_rules_for(*lib);
    const int rule_count = rules.total_count();
    dtas::Synthesizer synth(std::move(rules), *lib);
    auto alts = synth.synthesize(alu);
    const auto t1 = std::chrono::steady_clock::now();
    const auto& stats = synth.space().stats();
    std::printf("%-22s %6d %6d %7d %7d %6d %5zu %10.1f\n",
                lib->name().c_str(), lib->size(), rule_count,
                stats.spec_nodes, stats.leaf_impls, stats.rule_applications,
                alts.size(),
                std::chrono::duration<double, std::milli>(t1 - t0).count());
    if (!alts.empty()) {
      std::printf("    smallest %8.1f gates / %7.2f ns    fastest %8.1f "
                  "gates / %7.2f ns\n",
                  alts.front().metric.area, alts.front().metric.delay,
                  alts.back().metric.area, alts.back().metric.delay);
    } else {
      std::printf("    no implementation\n");
    }
  }
  std::printf("\ncolumns: specs = specification nodes expanded, matched = "
              "library cells bound\nby the functional matcher, rules+ = rule "
              "applications, alts = Pareto survivors.\n");
  return 0;
}
