// Retargeting throughput: design-space construction + evaluation of the
// Figure-3 64-bit 16-function ALU across every registered library —
// the two built-in data books and the bundled Liberty import.
//
// Two measurements:
//
//  1. The historical table: a fresh Synthesizer per library (the "three
//     cold starts" shape this bench had before delta-aware cache keys).
//     Per library it prints how many cells the functional matcher bound,
//     how many specification nodes the space expanded, how many
//     alternatives survived the Pareto filter, and the wall time. The
//     paper ran the LSI case in "<15 min on a SUN-3" (§6); all three
//     libraries here land in milliseconds.
//
//  2. The retarget cycle: ONE Synthesizer swung across the libraries
//     with Synthesizer::retarget — one cold visit per library, then two
//     more rounds of revisits. Content-fingerprint cache keys are what
//     make the revisits warm: extraction entries are keyed by the node's
//     content fingerprint, so returning to a library re-serves every
//     materialized module instead of re-extracting it, and the
//     process-wide template cache is fingerprint-keyed so rule
//     compilations carry across libraries where sound. Revisit fronts
//     must be byte-identical to the cold ones — the speedup may never
//     buy a different answer. Emits retarget_warm/<lib> entries
//     (cold_ms, warm_ms, speedup, fronts_identical) for
//     tools/check_bench_regression.py, which floors the speedup at 2x.
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "base/diag.h"
#include "bench_json.h"
#include "cells/registry.h"
#include "dtas/synthesizer.h"
#include "genus/spec.h"
#include "liberty/liberty.h"

using namespace bridge;

#ifndef BRIDGE_LIBS_DIR
#define BRIDGE_LIBS_DIR "libs"
#endif

namespace {

/// The per-visit workload: the Figure-3 ALU plus the datapath components
/// a retargeting client re-synthesizes alongside it. More than one spec
/// per visit, so a visit exercises the caches the way a real netlist
/// does (shared subtrees across specs, not just across alternatives).
std::vector<genus::ComponentSpec> workload() {
  return {
      genus::make_alu_spec(64, genus::alu16_ops()),
      genus::make_adder_spec(32, /*has_ci=*/true, /*has_co=*/true),
      genus::make_alu_spec(16, genus::alu16_ops()),
      genus::make_mux_spec(16, 4),
      genus::make_comparator_spec(16, genus::OpSet{genus::Op::kEq}),
  };
}

using Front = std::vector<dtas::AlternativeDesign>;

/// Synthesize the whole workload on `synth`; returns the concatenated
/// fronts (order is fixed, so byte-comparison across visits is exact).
Front run_workload(dtas::Synthesizer& synth) {
  Front all;
  for (const genus::ComponentSpec& spec : workload()) {
    Front f = synth.synthesize(spec);
    all.insert(all.end(), f.begin(), f.end());
  }
  return all;
}

}  // namespace

int main() {
  auto registry = cells::LibraryRegistry::with_builtins();
  try {
    registry.load_liberty_file(std::string(BRIDGE_LIBS_DIR) +
                               "/sample_sky130_subset.lib");
  } catch (const Error& e) {
    std::printf("warning: no Liberty library: %s\n", e.what());
  }

  const genus::ComponentSpec alu =
      genus::make_alu_spec(64, genus::alu16_ops());
  std::printf("component: ALU(A-64 B-64 CI F-4) OUT-64 CO, ops %s\n\n",
              genus::alu16_ops().to_string().c_str());
  std::printf("%-22s %6s %6s %7s %7s %6s %5s %10s\n", "library", "cells",
              "rules", "specs", "matched", "rules+", "alts", "wall(ms)");

  for (const cells::CellLibrary* lib : registry.all()) {
    const auto t0 = std::chrono::steady_clock::now();
    dtas::RuleBase rules = dtas::default_rules_for(*lib);
    const int rule_count = rules.total_count();
    dtas::Synthesizer synth(std::move(rules), *lib);
    auto alts = synth.synthesize(alu);
    const auto t1 = std::chrono::steady_clock::now();
    const auto& stats = synth.space().stats();
    std::printf("%-22s %6d %6d %7d %7d %6d %5zu %10.1f\n",
                lib->name().c_str(), lib->size(), rule_count,
                stats.spec_nodes, stats.leaf_impls, stats.rule_applications,
                alts.size(),
                std::chrono::duration<double, std::milli>(t1 - t0).count());
    if (!alts.empty()) {
      std::printf("    smallest %8.1f gates / %7.2f ns    fastest %8.1f "
                  "gates / %7.2f ns\n",
                  alts.front().metric.area, alts.front().metric.delay,
                  alts.back().metric.area, alts.back().metric.delay);
    } else {
      std::printf("    no implementation\n");
    }
  }
  std::printf("\ncolumns: specs = specification nodes expanded, matched = "
              "library cells bound\nby the functional matcher, rules+ = rule "
              "applications, alts = Pareto survivors.\n");

  // --- the retarget cycle ---------------------------------------------------
  const std::vector<const cells::CellLibrary*> libs = registry.all();
  std::printf("\nretarget cycle: one synthesizer, %zu-spec workload per "
              "visit, rounds = 1 cold + 3 warm\n",
              workload().size());
  std::printf("%-22s %10s %10s %9s %7s\n", "library", "cold(ms)", "warm(ms)",
              "speedup", "fronts");

  dtas::Synthesizer synth(*libs.front());
  std::map<std::string, double> cold_ms;
  std::map<std::string, std::vector<double>> warm_ms;
  std::map<std::string, Front> cold_front;
  bool all_identical = true;
  const int kWarmRounds = 3;
  for (int round = 0; round < 1 + kWarmRounds; ++round) {
    for (size_t i = 0; i < libs.size(); ++i) {
      const cells::CellLibrary& lib = *libs[i];
      const auto t0 = std::chrono::steady_clock::now();
      if (round != 0 || i != 0) synth.retarget(lib);
      Front front = run_workload(synth);
      const auto t1 = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      if (round == 0) {
        cold_ms[lib.name()] = ms;
        cold_front[lib.name()] = std::move(front);
      } else {
        warm_ms[lib.name()].push_back(ms);
        if (!benchjson::identical_fronts(front, cold_front[lib.name()])) {
          all_identical = false;
          std::printf("ERROR: %s round %d front differs from cold visit\n",
                      lib.name().c_str(), round);
        }
      }
    }
  }

  std::vector<benchjson::Entry> entries;
  for (const cells::CellLibrary* lib : libs) {
    const double cold = cold_ms[lib->name()];
    const double warm = benchjson::median(warm_ms[lib->name()]);
    const double speedup = warm > 0.0 ? cold / warm : 0.0;
    std::printf("%-22s %10.1f %10.1f %8.1fx %7s\n", lib->name().c_str(),
                cold, warm, speedup, all_identical ? "same" : "DIFFER");
    benchjson::Entry e;
    e.name = "retarget_warm/" + lib->name();
    e.num("cold_ms", cold)
        .num("warm_ms", warm)
        .num("speedup", speedup)
        .num("fronts_identical", all_identical ? 1 : 0);
    entries.push_back(std::move(e));
  }
  benchjson::write(entries);
  if (!all_identical) {
    std::printf("FAILED: warm retarget fronts differ from cold fronts\n");
    return 1;
  }
  return 0;
}
