// Ablations from DESIGN.md §5: the nine LSI library-specific rules
// (hand-written vs LOLA-induced vs none), on the 64-bit ALU and a 32-bit
// adder. Shows what the paper's "nine library-specific design rules to
// fully utilize the subset of cells" buy.
#include <cstdio>

#include "cells/cell.h"
#include "dtas/synthesizer.h"
#include "lola/lola.h"

using namespace bridge;

namespace {

void report(const char* label, dtas::RuleBase rules,
            const cells::CellLibrary& lib) {
  dtas::Synthesizer synth(std::move(rules), lib);
  auto alu = synth.synthesize(genus::make_alu_spec(64, genus::alu16_ops()));
  auto add = synth.synthesize(genus::make_adder_spec(32));
  std::printf("%-28s | alu64: ", label);
  if (alu.empty()) {
    std::printf("unrealizable");
  } else {
    std::printf("%zu alts, best area %7.1f, best delay %6.1f", alu.size(),
                alu.front().metric.area, alu.back().metric.delay);
  }
  std::printf(" | add32: ");
  if (add.empty()) {
    std::printf("unrealizable");
  } else {
    std::printf("%zu alts, best area %6.1f", add.size(),
                add.front().metric.area);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Ablation: library-specific rules (LSI data book)\n\n");
  const auto& lib = cells::lsi_library();

  dtas::RuleBase generic_only;
  dtas::register_standard_rules(generic_only);
  report("generic rules only", std::move(generic_only), lib);

  dtas::RuleBase hand;
  dtas::register_standard_rules(hand);
  dtas::register_lsi_rules(hand);
  report("generic + 9 hand-written", std::move(hand), lib);

  dtas::RuleBase induced;
  dtas::register_standard_rules(induced);
  auto rep = lola::induce_rules(lib, induced);
  report("generic + LOLA-induced", std::move(induced), lib);
  std::printf("\n%s", rep.text().c_str());

  std::printf("\nuniform-implementation constraint is exercised in "
              "bench_sec5_space;\nfilter policies likewise.\n");
  return 0;
}
