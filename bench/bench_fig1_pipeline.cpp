// Figure 1 reproduction: the full system flow on a behavioral GCD.
//
//   behavioral spec -> [HLS: schedule/allocate/bind] -> GENUS netlist +
//   state table -> [control compiler] -> gate-level controller
//                -> [DTAS] -> hierarchical library-specific netlists
//                -> structural VHDL.
#include <cstdio>

#include "cells/cell.h"
#include "ctrl/control_compiler.h"
#include "dtas/synthesizer.h"
#include "hls/fsmd.h"
#include "vhdl/vhdl.h"

using namespace bridge;

int main() {
  const char* text = R"(
design gcd;
input a : 8;
input b : 8;
output r : 8;
var x : 8;
var y : 8;
begin
  x = a;
  y = b;
  while (x != y) {
    if (x > y) { x = x - y; } else { y = y - x; }
  }
  r = x;
end
)";
  std::printf("Figure 1: end-to-end flow on behavioral GCD\n\n");
  auto design = hls::parse_behavior(text);
  auto fsmd = hls::synthesize_behavior(design);
  std::printf("[HLS] datapath: %zu GENUS instances, %d states, %zu control "
              "signals, %zu status signals\n",
              fsmd.design.top()->instances().size(),
              fsmd.control.state_count(), fsmd.control.control_signals.size(),
              fsmd.control.status_inputs.size());
  auto run = hls::run_fsmd(fsmd, {{"a", BitVec(8, 84)}, {"b", BitVec(8, 36)}});
  std::printf("[HLS] co-simulation: gcd(84, 36) = %llu in %d cycles\n",
              static_cast<unsigned long long>(run.outputs.at("r").to_uint64()),
              run.cycles);

  auto ctl = ctrl::compile_control(fsmd.control);
  std::printf("[CTRL] controller: %d state bits, %d minterms -> %d "
              "implicants (%d literals), %zu gate instances\n",
              ctl.state_bits, ctl.minterm_count, ctl.implicant_count,
              ctl.literal_count, ctl.design.top()->instances().size());

  // DTAS maps the datapath netlist (uniform choice per spec across it).
  dtas::Synthesizer synth(cells::lsi_library());
  auto alts = synth.synthesize_netlist(*fsmd.design.top());
  std::printf("[DTAS] datapath alternatives (LSI library):\n");
  for (size_t i = 0; i < alts.size(); ++i) {
    std::printf("  alt %zu: area %.1f, delay %.1f ns, %d leaf cells\n", i,
                alts[i].metric.area, alts[i].metric.delay,
                netlist::Design::count_leaf_instances(*alts[i].design->top()));
  }

  // Controller netlist through DTAS too.
  dtas::Synthesizer csynth(cells::lsi_library());
  auto calts = csynth.synthesize_netlist(*ctl.design.top());
  if (!calts.empty()) {
    std::printf("[DTAS] controller mapped: area %.1f, delay %.1f ns\n",
                calts.front().metric.area, calts.front().metric.delay);
  }

  if (!alts.empty()) {
    // Emit the whole front through one EmissionCache: the alternatives
    // share their subtree modules, so each distinct module is rendered
    // exactly once across the set.
    vhdl::EmissionCache emission;
    std::size_t total_chars = 0;
    for (const auto& alt : alts) {
      total_chars += vhdl::emit_structural(*alt.design, emission).size();
    }
    std::printf("[VHDL] structural output for %zu alternatives: %zu "
                "characters, %zu entities in alt 0, %zu distinct modules "
                "rendered across the front\n",
                alts.size(), total_chars,
                alts.front().design->module_order().size(),
                emission.size());
  }
  std::printf("\nflow complete: behavior -> GENUS netlist + state table -> "
              "controller + mapped datapath -> VHDL\n");
  return 0;
}
