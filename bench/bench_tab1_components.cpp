// Table 1 reproduction: "Typical LEGEND/GENUS Generic Components".
// Instantiates at least one component through the built-in GENUS library
// for every row of the table and prints the taxonomy with generation
// status, port count, and declared operations.
#include <cstdio>

#include "genus/library.h"
#include "genus/taxonomy.h"

using namespace bridge;

int main() {
  std::printf("Table 1: Typical LEGEND/GENUS Generic Components\n\n");
  const auto& lib = genus::builtin_library();
  int generated = 0;
  int total = 0;
  genus::TypeClass last = genus::TypeClass::kMiscellaneous;
  bool first = true;
  for (const auto& entry : genus::table1_taxonomy()) {
    if (first || entry.type_class != last) {
      std::printf("\n-- %s --\n",
                  genus::type_class_name(entry.type_class).c_str());
      last = entry.type_class;
      first = false;
    }
    for (genus::Kind kind : entry.kinds) {
      ++total;
      try {
        genus::ParamMap params;
        auto comp = lib.instantiate(kind, params);
        ++generated;
        std::printf("  %-18s %-16s ports=%-2zu ops=[%s]\n",
                    entry.display_name.c_str(),
                    genus::kind_name(kind).c_str(), comp->ports().size(),
                    comp->spec().ops.to_string().c_str());
      } catch (const std::exception& e) {
        std::printf("  %-18s %-16s FAILED: %s\n", entry.display_name.c_str(),
                    genus::kind_name(kind).c_str(), e.what());
      }
    }
  }
  std::printf("\ngenerated %d / %d component kinds (paper lists %zu rows)\n",
              generated, total, genus::table1_taxonomy().size());
  return generated == total ? 0 : 1;
}
