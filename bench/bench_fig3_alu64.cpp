// Figure 3 reproduction: alternative designs for a 64-bit, 16-function ALU
// synthesized by DTAS from the 30-cell LSI-style data book.
//
// Paper reference points (area in equivalent NAND gates, delay in ns):
//   (4879, 134.3)  smallest/slowest        (  0%,   0%)
//   (5503,  69.1)                          (+13%, -49%)
//   (5578,  33.1)                          (+14%, -75%)
//   (5578,  27.8)                          (+14%, -79%)
//   (6526,  26.1)  largest/fastest         (+34%, -81%)
// "The fastest design alternative is 34 percent larger than the smallest
// but reduces delay by 81 percent." (§6). Absolute numbers depend on the
// proprietary data book; the shape (a small Pareto set spanning a few
// percent-tens of area for a factor-~5 delay reduction) is the target.
#include <chrono>
#include <cstdio>

#include "cells/cell.h"
#include "dtas/synthesizer.h"
#include "netlist/netlist.h"

using namespace bridge;

int main() {
  const auto t0 = std::chrono::steady_clock::now();
  dtas::Synthesizer synth(cells::lsi_library());
  genus::ComponentSpec alu = genus::make_alu_spec(64, genus::alu16_ops());
  auto alts = synth.synthesize(alu);
  const auto t1 = std::chrono::steady_clock::now();
  const double ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  std::printf("Figure 3: alternative designs for a 64-bit 16-function ALU\n");
  std::printf("library: %s (%d cells)\n", cells::lsi_library().name().c_str(),
              cells::lsi_library().size());
  std::printf("component: ALU(A-64 B-64 CI F-4) OUT-64 CO\n");
  std::printf("operations: %s\n\n", genus::alu16_ops().to_string().c_str());

  if (alts.empty()) {
    std::printf("no implementation found\n");
    return 1;
  }
  const double base_area = alts.front().metric.area;
  const double base_delay = alts.front().metric.delay;
  std::printf("%-4s %10s %10s %8s %8s  %-s\n", "alt", "area", "delay(ns)",
              "dArea%", "dDelay%", "implementation");
  for (size_t i = 0; i < alts.size(); ++i) {
    const auto& a = alts[i];
    std::printf("%-4zu %10.1f %10.1f %+7.0f%% %+7.0f%%  %s\n", i,
                a.metric.area, a.metric.delay,
                100.0 * (a.metric.area - base_area) / base_area,
                100.0 * (a.metric.delay - base_delay) / base_delay,
                a.description.c_str());
  }
  std::printf("\npaper:    5 alternatives, fastest +34%% area / -81%% delay\n");
  std::printf("measured: %zu alternatives, fastest %+.0f%% area / %.0f%% delay\n",
              alts.size(),
              100.0 * (alts.back().metric.area - base_area) / base_area,
              100.0 * (alts.back().metric.delay - base_delay) / base_delay);
  std::printf("leaf cells in fastest design: %d\n",
              netlist::Design::count_leaf_instances(*alts.back().design->top()));
  std::printf("design-space generation + extraction: %.1f ms "
              "(paper: <15 min on a SUN-3)\n", ms);
  return 0;
}
