// Figure 3 reproduction: alternative designs for a 64-bit, 16-function ALU
// synthesized by DTAS from the 30-cell LSI-style data book.
//
// Paper reference points (area in equivalent NAND gates, delay in ns):
//   (4879, 134.3)  smallest/slowest        (  0%,   0%)
//   (5503,  69.1)                          (+13%, -49%)
//   (5578,  33.1)                          (+14%, -75%)
//   (5578,  27.8)                          (+14%, -79%)
//   (6526,  26.1)  largest/fastest         (+34%, -81%)
// "The fastest design alternative is 34 percent larger than the smallest
// but reduces delay by 81 percent." (§6). Absolute numbers depend on the
// proprietary data book; the shape (a small Pareto set spanning a few
// percent-tens of area for a factor-~5 delay reduction) is the target.
//
// Besides the Figure-3 table, this bench times each synthesis phase
// (expand / evaluate / extract) under the compiled TimingPlan evaluator
// and under the reference functional evaluator, checks the two produce
// identical alternatives, and records both wall times in
// BENCH_synthesis.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "bench_json.h"
#include "cells/cell.h"
#include "dtas/synthesizer.h"
#include "lint/lint.h"
#include "netlist/netlist.h"
#include "vhdl/vhdl.h"

using namespace bridge;

namespace {

struct PhaseTimes {
  double expand_ms = 0.0;
  double evaluate_ms = 0.0;
  double extract_ms = 0.0;
  double total() const { return expand_ms + evaluate_ms + extract_ms; }
  std::vector<dtas::AlternativeDesign> alts;
  dtas::SpaceStats stats;     // this run's space (expand + evaluate counts)
  long extract_hits = 0;      // extraction-cache delta of the timed pass
  long extract_misses = 0;
};

PhaseTimes run_phases(bool compiled, int threads = 1,
                      bool template_cache = true,
                      bool extraction_cache = true,
                      bool warm_extract = false,
                      double min_delay_gain = 0.10) {
  using clock = std::chrono::steady_clock;
  auto ms = [](clock::time_point a, clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };
  dtas::SpaceOptions opt;
  opt.use_compiled_plan = compiled;
  opt.bound_prune = compiled;
  opt.threads = threads;
  opt.use_template_cache = template_cache;
  opt.use_extraction_cache = extraction_cache;
  opt.min_delay_gain = min_delay_gain;
  PhaseTimes pt;
  const genus::ComponentSpec alu = genus::make_alu_spec(64, genus::alu16_ops());
  const auto t0 = clock::now();
  dtas::Synthesizer synth(cells::lsi_library(), opt);
  auto* node = synth.space().expand(alu);
  const auto t1 = clock::now();
  synth.space().evaluate(node);
  // Warm the per-Synthesizer extraction cache so the timed pass below
  // measures pure shared-module reuse (the cache is session-scoped, so a
  // prior synthesize on the same Synthesizer warms it).
  if (warm_extract) synth.synthesize(alu);
  const dtas::ExtractionCache::Stats cache_before =
      synth.extraction_cache().stats();
  const auto t2 = clock::now();
  pt.alts = synth.synthesize(alu);  // re-uses the expanded+evaluated space
  const auto t3 = clock::now();
  const dtas::ExtractionCache::Stats cache_after =
      synth.extraction_cache().stats();
  pt.extract_hits = cache_after.hits - cache_before.hits;
  pt.extract_misses = cache_after.misses - cache_before.misses;
  pt.stats = synth.space().stats();
  pt.expand_ms = ms(t0, t1);
  pt.evaluate_ms = ms(t1, t2);
  pt.extract_ms = ms(t2, t3);
  return pt;
}

double rate(long hits, long misses) {
  const long total = hits + misses;
  return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                   : 0.0;
}

}  // namespace

int main() {
  const auto t0 = std::chrono::steady_clock::now();
  dtas::Synthesizer synth(cells::lsi_library());
  genus::ComponentSpec alu = genus::make_alu_spec(64, genus::alu16_ops());
  auto alts = synth.synthesize(alu);
  const auto t1 = std::chrono::steady_clock::now();
  const double ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  std::printf("Figure 3: alternative designs for a 64-bit 16-function ALU\n");
  std::printf("library: %s (%d cells)\n", cells::lsi_library().name().c_str(),
              cells::lsi_library().size());
  std::printf("component: ALU(A-64 B-64 CI F-4) OUT-64 CO\n");
  std::printf("operations: %s\n\n", genus::alu16_ops().to_string().c_str());

  if (alts.empty()) {
    std::printf("no implementation found\n");
    return 1;
  }
  const double base_area = alts.front().metric.area;
  const double base_delay = alts.front().metric.delay;
  std::printf("%-4s %10s %10s %8s %8s  %-s\n", "alt", "area", "delay(ns)",
              "dArea%", "dDelay%", "implementation");
  for (size_t i = 0; i < alts.size(); ++i) {
    const auto& a = alts[i];
    std::printf("%-4zu %10.1f %10.1f %+7.0f%% %+7.0f%%  %s\n", i,
                a.metric.area, a.metric.delay,
                100.0 * (a.metric.area - base_area) / base_area,
                100.0 * (a.metric.delay - base_delay) / base_delay,
                a.description.c_str());
  }
  std::printf("\npaper:    5 alternatives, fastest +34%% area / -81%% delay\n");
  std::printf("measured: %zu alternatives, fastest %+.0f%% area / %.0f%% delay\n",
              alts.size(),
              100.0 * (alts.back().metric.area - base_area) / base_area,
              100.0 * (alts.back().metric.delay - base_delay) / base_delay);
  std::printf("leaf cells in fastest design: %d\n",
              netlist::Design::count_leaf_instances(*alts.back().design->top()));
  std::printf("design-space generation + extraction: %.1f ms "
              "(paper: <15 min on a SUN-3)\n", ms);

  // Emit every alternative once (the traced iteration's "emit" phase; a
  // BRIDGE_TRACE run of this bench therefore covers synthesize / expand /
  // evaluate / extract / emit, which tools/trace_summary.py --check
  // requires).
  vhdl::EmissionCache emission;
  std::size_t vhdl_bytes = 0;
  for (const auto& a : alts) {
    vhdl_bytes += vhdl::emit_structural(*a.design, emission).size();
  }
  std::printf("emitted structural VHDL for %zu alternatives: %zu bytes\n",
              alts.size(), vhdl_bytes);

  // Per-synthesis profile of the first (traced) iteration.
  {
    const char* profile_path = std::getenv("BRIDGE_PROFILE_OUT");
    std::ofstream pf(profile_path != nullptr ? profile_path
                                             : "BENCH_fig3_profile.json");
    pf << synth.last_profile().to_json() << "\n";
  }

  // Perf trajectory: compiled TimingPlan evaluator vs the reference
  // functional evaluator. Every phase figure is the median of 5 runs,
  // taken per phase (so the rows need not sum to the total row exactly).
  struct PhaseMedians {
    double expand_ms, evaluate_ms, extract_ms, total_ms;
    std::vector<dtas::AlternativeDesign> alts;  // from the last run
    dtas::SpaceStats stats;                     // from the last run
    long extract_hits = 0, extract_misses = 0;  // ditto
  };
  auto measure = [](bool use_plan, int threads = 1,
                    bool template_cache = true,
                    bool extraction_cache = true,
                    bool warm_extract = false,
                    double min_delay_gain = 0.10) {
    std::vector<double> expand, evaluate, extract, total;
    PhaseMedians m;
    for (int r = 0; r < 5; ++r) {
      PhaseTimes pt = run_phases(use_plan, threads, template_cache,
                                 extraction_cache, warm_extract,
                                 min_delay_gain);
      expand.push_back(pt.expand_ms);
      evaluate.push_back(pt.evaluate_ms);
      extract.push_back(pt.extract_ms);
      total.push_back(pt.total());
      m.alts = std::move(pt.alts);
      m.stats = pt.stats;
      m.extract_hits = pt.extract_hits;
      m.extract_misses = pt.extract_misses;
    }
    m.expand_ms = benchjson::median(std::move(expand));
    m.evaluate_ms = benchjson::median(std::move(evaluate));
    m.extract_ms = benchjson::median(std::move(extract));
    m.total_ms = benchjson::median(std::move(total));
    return m;
  };
  const PhaseMedians compiled = measure(true);
  const PhaseMedians reference = measure(false);
  const double compiled_total = compiled.total_ms;
  const double reference_total = reference.total_ms;
  const bool identical =
      benchjson::identical_fronts(compiled.alts, reference.alts);
  std::printf("\nphase timings, compiled vs reference evaluator "
              "(identical fronts: %s)\n", identical ? "yes" : "NO");
  std::printf("  %-10s %12s %12s %8s\n", "phase", "compiled(ms)",
              "reference(ms)", "speedup");
  auto row = [](const char* name, double c, double r) {
    std::printf("  %-10s %12.2f %12.2f %7.2fx\n", name, c, r,
                c > 0.0 ? r / c : 0.0);
  };
  row("expand", compiled.expand_ms, reference.expand_ms);
  row("evaluate", compiled.evaluate_ms, reference.evaluate_ms);
  row("extract", compiled.extract_ms, reference.extract_ms);
  row("total", compiled_total, reference_total);

  // Expansion-phase headline: warm template cache + interned names vs the
  // cache-off path (which re-runs TemplateBuilder and plan compilation per
  // expansion, the pre-cache behavior). The fronts must not notice.
  // `compiled` above ran with the cache on and warm — the process-wide
  // cache was populated by the very first synthesis in main().
  const PhaseMedians nocache = measure(true, 1, /*template_cache=*/false);
  const bool nocache_identical =
      benchjson::identical_fronts(nocache.alts, compiled.alts);
  const double expand_speedup = compiled.expand_ms > 0.0
                                    ? nocache.expand_ms / compiled.expand_ms
                                    : 0.0;
  std::printf("\nexpansion phase, warm template cache vs cache off "
              "(identical fronts: %s)\n",
              nocache_identical ? "yes" : "NO");
  std::printf("  %-10s %12.2f %12.2f %7.2fx\n", "expand", compiled.expand_ms,
              nocache.expand_ms, expand_speedup);

  // Extraction-phase headline: warm per-Synthesizer extraction cache
  // (every distinct subtree materialized once, designs merely reference
  // shared modules) vs the cache-off path (every design re-materializes
  // every module, the pre-cache behavior). The fronts must not notice.
  const PhaseMedians noextract =
      measure(true, 1, true, /*extraction_cache=*/false);
  const PhaseMedians warm_extract =
      measure(true, 1, true, /*extraction_cache=*/true, /*warm_extract=*/true);
  const bool extract_identical =
      benchjson::identical_fronts(noextract.alts, warm_extract.alts);
  const double extract_speedup =
      warm_extract.extract_ms > 0.0
          ? noextract.extract_ms / warm_extract.extract_ms
          : 0.0;
  std::printf("\nextraction phase, warm extraction cache vs cache off "
              "(identical fronts: %s)\n",
              extract_identical ? "yes" : "NO");
  std::printf("  %-10s %12.2f %12.2f %7.2fx\n", "extract",
              warm_extract.extract_ms, noextract.extract_ms, extract_speedup);

  // Threads-vs-speedup datapoint: the Pareto-trimmed odometer sits far
  // below the shard threshold, so the sharded evaluator stays serial on
  // this spec — but node-parallel evaluation (antichain fan-out across
  // independent SpecNodes, SpaceOptions::node_parallel) now gives
  // single-spec synthesis its own parallel axis; the dedicated
  // node_parallel entry below records how far it carries the evaluate
  // phase.
  const PhaseMedians threaded = measure(true, 8);
  const bool threaded_identical =
      benchjson::identical_fronts(threaded.alts, compiled.alts);
  std::printf("  %-10s %12.2f %12s %7.2fx (8 threads vs 1, identical: %s)\n",
              "total/t8", threaded.total_ms, "",
              threaded.total_ms > 0.0 ? compiled_total / threaded.total_ms
                                      : 0.0,
              threaded_identical ? "yes" : "NO");

  benchjson::Entry e;
  e.name = "fig3_alu64/alu64_lsi";
  e.num("wall_ms_compiled", compiled_total)
      .num("wall_ms_reference", reference_total)
      .num("speedup", compiled_total > 0.0 ? reference_total / compiled_total
                                           : 0.0)
      .num("evaluate_ms_compiled", compiled.evaluate_ms)
      .num("evaluate_ms_reference", reference.evaluate_ms)
      .num("evaluate_speedup",
           compiled.evaluate_ms > 0.0
               ? reference.evaluate_ms / compiled.evaluate_ms
               : 0.0)
      .num("alternatives", static_cast<double>(alts.size()))
      .num("wall_ms_threads8", threaded.total_ms)
      .num("threads8_speedup_vs_1thread",
           threaded.total_ms > 0.0 ? compiled_total / threaded.total_ms : 0.0)
      .str("fronts_identical",
           identical && threaded_identical ? "yes" : "NO");

  // Separate gated entry so the regression checker can hold the
  // expansion-phase win to the same ratio-based standard as the sweep
  // headlines (both sides measured in this process, so the ratio is
  // machine-independent).
  benchjson::Entry ex;
  ex.name = "fig3_alu64/expand_phase";
  ex.num("expand_ms_cached", compiled.expand_ms)
      .num("expand_ms_nocache", nocache.expand_ms)
      .num("speedup", expand_speedup)
      .str("fronts_identical", nocache_identical ? "yes" : "NO");

  // Same treatment for the extraction phase: an absolute within-run
  // floor in the regression checker (both sides measured in this
  // process, so the ratio is machine-independent).
  benchjson::Entry exr;
  exr.name = "fig3_alu64/extract_phase";
  exr.num("extract_ms_warm", warm_extract.extract_ms)
      .num("extract_ms_nocache", noextract.extract_ms)
      .num("speedup", extract_speedup)
      .str("fronts_identical", extract_identical ? "yes" : "NO");

  // Cache-effectiveness entry: hit *rates* and the prune ratio are
  // machine-independent structural properties of the search, so the
  // regression checker holds them to absolute floors — a change that
  // quietly stops the caches or the bound-and-prune front from working
  // fails the gate even when wall time happens to look fine.
  // `compiled` ran on the process-warm template cache; `warm_extract`'s
  // timed pass ran on a synthesizer-warm extraction cache.
  const dtas::SpaceStats& cs = compiled.stats;
  benchjson::Entry ce;
  ce.name = "fig3_alu64/cache_effect";
  ce.num("template_warm_hit_rate",
         rate(cs.template_cache_hits, cs.template_cache_misses))
      .num("extract_warm_hit_rate",
           rate(warm_extract.extract_hits, warm_extract.extract_misses))
      .num("prune_ratio", cs.combinations_evaluated +
                                      cs.combinations_pruned >
                                  0
                              ? static_cast<double>(cs.combinations_pruned) /
                                    static_cast<double>(
                                        cs.combinations_evaluated +
                                        cs.combinations_pruned)
                              : 0.0)
      .num("combinations_evaluated",
           static_cast<double>(cs.combinations_evaluated))
      .num("combinations_pruned",
           static_cast<double>(cs.combinations_pruned))
      .str("fronts_identical", identical ? "yes" : "NO");
  // Budgeted-cache entry: the extraction cache pinned just under its own
  // resident working set, so the LRU sweep must actually evict — and the
  // governance contract (budgets change memory, never results) is held
  // to the same absolute floors as the other cache headlines: the warm
  // pass still answers >= 90% of lookups from cache, at least one
  // eviction really happened, and the front (down to the emitted VHDL)
  // is byte-identical to the unbudgeted run.
  auto vhdl_of = [](const std::vector<dtas::AlternativeDesign>& front) {
    vhdl::EmissionCache ec;
    std::string out;
    for (const auto& a : front) out += vhdl::emit_structural(*a.design, ec);
    return out;
  };
  dtas::Synthesizer unbudgeted(cells::lsi_library());
  const auto plain_front = unbudgeted.synthesize(alu);
  const std::string plain_vhdl = vhdl_of(plain_front);
  const long resident = unbudgeted.extraction_cache().stats().bytes;

  dtas::SpaceOptions bopt;
  bopt.extraction_cache_budget_bytes = (resident * 99) / 100;
  dtas::Synthesizer budgeted(cells::lsi_library(), bopt);
  {
    // Warm pass: populates the cache; live designs pin everything, so
    // the budget cannot act until the front is dropped...
    auto warm = budgeted.synthesize(alu);
  }
  // ...then re-asserting the budget sweeps the (now unpinned) LRU tail.
  budgeted.extraction_cache().set_budget_bytes(
      static_cast<std::size_t>(bopt.extraction_cache_budget_bytes));
  const dtas::ExtractionCache::Stats bbefore =
      budgeted.extraction_cache().stats();
  const auto budgeted_front = budgeted.synthesize(alu);
  const dtas::ExtractionCache::Stats bafter =
      budgeted.extraction_cache().stats();
  const double budget_hit_rate =
      rate(bafter.hits - bbefore.hits, bafter.misses - bbefore.misses);
  const bool budget_identical =
      benchjson::identical_fronts(budgeted_front, plain_front) &&
      vhdl_of(budgeted_front) == plain_vhdl;
  std::printf("\nextraction cache under byte budget "
              "(%ld of %ld resident bytes, identical fronts+VHDL: %s)\n",
              static_cast<long>(bopt.extraction_cache_budget_bytes), resident,
              budget_identical ? "yes" : "NO");
  std::printf("  warm hit rate %.3f, evictions %ld\n", budget_hit_rate,
              bafter.evictions);

  benchjson::Entry be;
  be.name = "fig3_alu64/budgeted_cache";
  be.num("budget_bytes",
         static_cast<double>(bopt.extraction_cache_budget_bytes))
      .num("resident_bytes", static_cast<double>(resident))
      .num("warm_hit_rate", budget_hit_rate)
      .num("evictions", static_cast<double>(bafter.evictions))
      .str("fronts_identical", budget_identical ? "yes" : "NO");

  // Lint phase: the structural linter (SpaceOptions::verify_designs /
  // the api `verify` flag) runs over every extracted design, so its cost
  // must stay a rounding error next to extraction — the regression
  // checker holds it under 5% of the extract phase. The gated number is
  // the *warm* pass: like extraction (whose extract_ms here is served by
  // a warm ExtractionCache), the verify wiring keeps one lint::Cache per
  // synthesizer session, so steady-state linting of a front is memo
  // lookups over the shared modules, not re-derivation. The cold
  // first-walk cost is recorded alongside, ungated. The entry also pins
  // the front clean (zero diagnostics) and byte-identical (down to the
  // VHDL) with the verify gate on vs off.
  lint::Cache lint_cache;  // `alts` stays live, so every warm pass hits
  std::size_t lint_diags = 0;
  const auto lc0 = std::chrono::steady_clock::now();
  for (const auto& a : alts) {
    lint_diags += lint::lint_design(*a.design, lint_cache).size();
  }
  const auto lc1 = std::chrono::steady_clock::now();
  const double lint_cold_ms =
      std::chrono::duration<double, std::milli>(lc1 - lc0).count();
  std::vector<double> lint_runs;
  for (int r = 0; r < 5; ++r) {
    lint_diags = 0;
    const auto l0 = std::chrono::steady_clock::now();
    for (const auto& a : alts) {
      lint_diags += lint::lint_design(*a.design, lint_cache).size();
    }
    const auto l1 = std::chrono::steady_clock::now();
    lint_runs.push_back(
        std::chrono::duration<double, std::milli>(l1 - l0).count());
  }
  const double lint_ms = benchjson::median(std::move(lint_runs));
  dtas::SpaceOptions vopt;
  vopt.verify_designs = true;
  dtas::Synthesizer verifying(cells::lsi_library(), vopt);
  const auto verified_front = verifying.synthesize(alu);
  const bool verify_identical =
      benchjson::identical_fronts(verified_front, alts) &&
      vhdl_of(verified_front) == vhdl_of(alts);
  const double lint_vs_extract_pct =
      compiled.extract_ms > 0.0 ? 100.0 * lint_ms / compiled.extract_ms : 0.0;
  std::printf("\nlint phase over the front: warm %.3f ms (%.1f%% of "
              "extract), cold %.3f ms, %zu diagnostics, verify on/off "
              "identical fronts+VHDL: %s\n",
              lint_ms, lint_vs_extract_pct, lint_cold_ms, lint_diags,
              verify_identical ? "yes" : "NO");

  benchjson::Entry le;
  le.name = "fig3_alu64/lint_phase";
  le.num("lint_ms", lint_ms)
      .num("lint_cold_ms", lint_cold_ms)
      .num("extract_ms", compiled.extract_ms)
      .num("lint_vs_extract_pct", lint_vs_extract_pct)
      .num("diagnostics", static_cast<double>(lint_diags))
      .str("fronts_identical", verify_identical ? "yes" : "NO");

  // Node-parallel evaluate: independent SpecNodes of the expansion DAG
  // evaluated as ThreadPool antichain batches (the second parallel axis,
  // orthogonal to odometer sharding). Measured on the dense sweep
  // (min_delay_gain = 0) so the evaluate phase carries enough per-node
  // work to show scaling; the entry records it at 1/2/8 threads, proves
  // the fan-out actually engaged (node_parallel_nodes > 0), and pins
  // bit-identical fronts across thread counts. hardware_concurrency
  // rides along so the regression checker only holds the scaling floor
  // on machines with cores to scale onto — this container reports 1.
  const PhaseMedians np1 = measure(true, 1, true, true, false, 0.0);
  const PhaseMedians np2 = measure(true, 2, true, true, false, 0.0);
  const PhaseMedians np8 = measure(true, 8, true, true, false, 0.0);
  const bool np_identical =
      benchjson::identical_fronts(np2.alts, np1.alts) &&
      benchjson::identical_fronts(np8.alts, np1.alts);
  const double np_speedup =
      np8.evaluate_ms > 0.0 ? np1.evaluate_ms / np8.evaluate_ms : 0.0;
  std::printf("\nnode-parallel evaluate phase, dense sweep "
              "(identical fronts: %s)\n", np_identical ? "yes" : "NO");
  std::printf("  %-10s %10s %10s %10s %8s %8s\n", "threads", "t1(ms)",
              "t2(ms)", "t8(ms)", "t8 spd", "nodes");
  std::printf("  %-10s %10.2f %10.2f %10.2f %7.2fx %8ld\n", "evaluate",
              np1.evaluate_ms, np2.evaluate_ms, np8.evaluate_ms,
              np_speedup, np8.stats.node_parallel_nodes);

  benchjson::Entry np;
  np.name = "fig3_alu64/node_parallel";
  np.num("evaluate_ms_t1", np1.evaluate_ms)
      .num("evaluate_ms_t2", np2.evaluate_ms)
      .num("evaluate_ms_t8", np8.evaluate_ms)
      .num("speedup_t8_vs_t1", np_speedup)
      .num("node_parallel_nodes_t8",
           static_cast<double>(np8.stats.node_parallel_nodes))
      .num("node_parallel_levels_t8",
           static_cast<double>(np8.stats.node_parallel_levels))
      .num("hardware_concurrency",
           static_cast<double>(std::thread::hardware_concurrency()))
      .str("fronts_identical", np_identical ? "yes" : "NO");

  benchjson::write({e, ex, exr, ce, be, le, np});
  return identical && threaded_identical && nocache_identical &&
                 extract_identical && budget_identical && np_identical &&
                 verify_identical && lint_diags == 0
             ? 0
             : 1;
}
