// §5 reproduction: design-space sizes and the two search-control
// principles. "If unconstrained, the size of the design space for a given
// input netlist is the product of the number of alternative implementations
// for each module in the netlist. Even for components of modest size, such
// as a 16-bit adder, there can be several hundred thousand to several
// million alternative designs... the design space of a 16-bit adder is
// reduced to ten alternative designs."
#include <cstdio>

#include "cells/cell.h"
#include "dtas/synthesizer.h"

using namespace bridge;

int main() {
  std::printf("Section 5: search-control ablation on n-bit adders\n\n");
  std::printf("%-6s %20s %20s %10s %10s\n", "width", "unconstrained",
              "uniform-impl only", "+Pareto", "paper");
  for (int width : {4, 8, 16, 32, 64}) {
    dtas::Synthesizer synth(cells::lsi_library());
    auto* node = synth.space().expand(genus::make_adder_spec(width));
    synth.space().evaluate(node);
    const double unconstrained = synth.space().count_unconstrained(node);
    const double constrained = synth.space().count_constrained(node);
    std::printf("%-6d %20.4g %20.4g %10zu %10s\n", width, unconstrained,
                constrained, node->alts.size(),
                width == 16 ? "10" : "-");
  }

  std::printf("\nfilter-policy ablation (16-bit adder alternatives kept):\n");
  for (auto [label, filter] :
       {std::pair{"pareto (favorable tradeoffs)", dtas::FilterKind::kPareto},
        std::pair{"none (dedup only)", dtas::FilterKind::kNone},
        std::pair{"area-only", dtas::FilterKind::kAreaOnly},
        std::pair{"delay-only", dtas::FilterKind::kDelayOnly}}) {
    dtas::SpaceOptions opts;
    opts.filter = filter;
    opts.max_alternatives_per_node = 1000000;
    dtas::Synthesizer synth(cells::lsi_library(), opts);
    auto* node = synth.space().expand(genus::make_adder_spec(16));
    synth.space().evaluate(node);
    std::printf("  %-32s -> %zu alternatives", label, node->alts.size());
    if (!node->alts.empty()) {
      std::printf("  (area %.0f..%.0f, delay %.1f..%.1f ns)",
                  node->alts.front().metric.area,
                  node->alts.back().metric.area,
                  node->alts.back().metric.delay,
                  node->alts.front().metric.delay);
    }
    std::printf("\n");
  }
  std::printf("\npaper: 16-bit adder reduced to 10 alternative designs by\n"
              "the uniform-implementation constraint plus performance "
              "filters.\n");
  return 0;
}
