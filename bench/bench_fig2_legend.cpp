// Figure 2 reproduction: parse the paper's LEGEND counter generator
// description, generate a component from it, emit the round-tripped LEGEND
// text and the component's VHDL behavioral model.
#include <cstdio>

#include "genus/param.h"
#include "legend/legend.h"
#include "vhdl/vhdl.h"

using namespace bridge;

int main() {
  std::printf("Figure 2: LEGEND counter generator description\n\n");
  const std::string text = legend::figure2_counter_text();
  auto asts = legend::parse_legend(text);
  std::printf("parsed %zu generator description(s)\n", asts.size());
  const auto& ast = asts.front();
  std::printf("NAME=%s CLASS=%s params=%zu styles=%zu operations=%zu\n",
              ast.name.c_str(), ast.klass.c_str(), ast.parameters.size(),
              ast.styles.size(), ast.operations.size());

  auto gen = legend::to_generator(ast);
  genus::ParamMap params;
  params.set(genus::kParamInputWidth, 8L);
  params.set(genus::kParamStyle, genus::Style::kSynchronous);
  auto counter = gen.generate(params);
  std::printf("\ngenerated component: %s\n", counter->name().c_str());
  std::printf("spec: %s\n", counter->spec().pretty().c_str());
  std::printf("ports:");
  for (const auto& p : counter->ports()) {
    std::printf(" %s[%d]", p.name.c_str(), p.width);
  }
  std::printf("\noperations:\n");
  for (const auto& op : counter->operations()) {
    std::printf("  %-12s control=%-6s  %s\n", op.name.c_str(),
                op.control.empty() ? "-" : op.control.c_str(),
                op.semantics.c_str());
  }

  std::printf("\n--- round-tripped LEGEND text ---\n%s",
              legend::emit_legend(gen).c_str());
  std::printf("\n--- VHDL behavioral model (%s) ---\n%s",
              gen.vhdl_model.c_str(),
              vhdl::emit_behavioral(*counter).c_str());
  return 0;
}
