// Synthesis-as-a-service throughput: the paper's Figure-3 workload (a
// 64-bit 16-function ALU) pushed through the server at 1, 8 and 64
// concurrent clients, cold caches vs warm.
//
// Cold models the one-shot flow the server exists to amortize: every
// request disables the template and extraction caches and lands in a
// fresh session (a unique, behaviorally inert cache-budget value keeps
// the session fingerprints distinct), so each one pays full expansion,
// evaluation and extraction. Warm is the steady state: default options,
// shared process-wide TemplateCache, per-worker memoized sessions.
//
// Every response — cold and warm, at every concurrency — must carry a
// front byte-identical to in-process Synthesizer::synthesize; the exit
// status gates on it. Results go to BENCH_server.json (override with
// BRIDGE_BENCH_JSON); tools/check_bench_regression.py --server holds the
// floors: warm req/s and warm/cold speedup >= 2.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "api/api.h"
#include "bench_json.h"
#include "cells/cell.h"
#include "cells/registry.h"
#include "genus/spec.h"
#include "server/protocol.h"
#include "server/server.h"

using namespace bridge;

namespace {

genus::ComponentSpec fig3_spec() {
  return genus::make_alu_spec(64, genus::alu16_ops());
}

api::RequestOptions cold_options(int request_index) {
  api::RequestOptions o;
  o.use_template_cache = false;
  o.use_extraction_cache = false;
  // Distinct fingerprint per request -> fresh session per request. The
  // budget itself never binds (the extraction cache is off).
  o.extraction_cache_budget_bytes = (1L << 30) + request_index;
  return o;
}

struct BatchResult {
  double wall_ms = 0.0;
  std::vector<double> latencies_ms;
  bool fronts_identical = true;
  std::string first_error;

  double rps() const {
    return wall_ms > 0.0 ? 1000.0 * static_cast<double>(latencies_ms.size()) /
                               wall_ms
                         : 0.0;
  }
  double p99_ms() const {
    if (latencies_ms.empty()) return 0.0;
    std::vector<double> sorted = latencies_ms;
    std::sort(sorted.begin(), sorted.end());
    return sorted[static_cast<std::size_t>(
        0.99 * static_cast<double>(sorted.size() - 1))];
  }
};

// `clients` connections issuing `reqs` (claimed from a shared counter,
// one in flight per connection), checking every front against `expect`.
BatchResult run_batch(int port, int clients,
                      const std::vector<api::SynthesisRequest>& reqs,
                      const std::vector<dtas::AlternativeDesign>& expect) {
  std::vector<std::string> frames;
  frames.reserve(reqs.size());
  for (const api::SynthesisRequest& req : reqs) {
    api::Json j = req.encode();
    j.set("method", "synthesize");
    frames.push_back(j.dump());
  }

  BatchResult out;
  std::mutex mu;  // latencies + failure notes
  std::atomic<std::size_t> next{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int cidx = 0; cidx < clients; ++cidx) {
    threads.emplace_back([&] {
      try {
        const int fd = server::connect_tcp(port);
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= frames.size()) break;
          const auto r0 = std::chrono::steady_clock::now();
          server::write_frame(fd, frames[i]);
          std::string payload;
          if (!server::read_frame(fd, payload)) {
            throw Error("server closed the connection");
          }
          const auto r1 = std::chrono::steady_clock::now();
          const api::SynthesisResult res =
              api::SynthesisResult::from_json(payload);
          std::lock_guard<std::mutex> lock(mu);
          out.latencies_ms.push_back(
              std::chrono::duration<double, std::milli>(r1 - r0).count());
          if (!res.ok()) {
            out.fronts_identical = false;
            if (out.first_error.empty()) out.first_error = res.error;
          } else if (!api::front_matches(res, expect, /*with_vhdl=*/false)) {
            out.fronts_identical = false;
            if (out.first_error.empty()) {
              out.first_error = "front differs from in-process synthesis";
            }
          }
        }
        server::close_socket(fd);
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(mu);
        out.fronts_identical = false;
        if (out.first_error.empty()) out.first_error = e.what();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return out;
}

}  // namespace

int main() {
  const char* quick_env = std::getenv("BRIDGE_BENCH_QUICK");
  const bool quick = quick_env != nullptr && quick_env[0] != '\0' &&
                     quick_env[0] != '0';
  const int workers =
      std::max(2, static_cast<int>(std::thread::hardware_concurrency()));

  auto registry = cells::LibraryRegistry::with_builtins();
  const genus::ComponentSpec spec = fig3_spec();

  // The in-process reference front. Cache-off synthesis is
  // invariant-identical to this (bench_fig3_alu64 gates on that), so one
  // reference serves both phases.
  dtas::Synthesizer reference(cells::lsi_library());
  const std::vector<dtas::AlternativeDesign> expect =
      reference.synthesize(spec);
  if (expect.empty()) {
    std::fprintf(stderr, "reference synthesis produced no alternatives\n");
    return 1;
  }

  std::printf("fig3 alu64 over the wire, %d workers%s\n", workers,
              quick ? " (quick mode)" : "");
  std::printf("%-6s %6s %6s %10s %10s %9s %9s  %s\n", "level", "cold_n",
              "warm_n", "cold_rps", "warm_rps", "speedup", "p99_warm",
              "fronts");

  std::vector<benchjson::Entry> entries;
  bool all_identical = true;
  int cold_index = 0;  // unique budgets across the whole run
  for (int concurrency : {1, 8, 64}) {
    // Cold sample: capped at 16 requests (printed, never silent) — each
    // one is a full one-shot synthesis, and the ratio needs a sample,
    // not a census.
    const int cold_n = std::min(concurrency, quick ? 2 : 16);
    const int warm_n =
        quick ? concurrency : std::max(2 * concurrency, 16);

    BatchResult cold;
    {
      server::ServerOptions options;
      options.workers = workers;
      server::SynthesisServer srv(registry, options);
      srv.start();
      std::vector<api::SynthesisRequest> reqs(cold_n);
      for (api::SynthesisRequest& req : reqs) {
        req.library = cells::lsi_library().name();
        req.spec = spec;
        req.options = cold_options(cold_index++);
      }
      cold = run_batch(srv.port(), std::min(concurrency, cold_n), reqs,
                       expect);
      srv.stop();
    }

    BatchResult warm;
    {
      server::ServerOptions options;
      options.workers = workers;
      server::SynthesisServer srv(registry, options);
      srv.start();
      api::SynthesisRequest req;
      req.library = cells::lsi_library().name();
      req.spec = spec;
      // Warm every worker slot's session (dispatch is by slot
      // availability, so oversubscribe a little), unmeasured.
      const std::vector<api::SynthesisRequest> warmup(
          static_cast<std::size_t>(2 * workers), req);
      run_batch(srv.port(), workers, warmup, expect);
      const std::vector<api::SynthesisRequest> reqs(
          static_cast<std::size_t>(warm_n), req);
      warm = run_batch(srv.port(), concurrency, reqs, expect);
      srv.stop();
    }

    const bool identical = cold.fronts_identical && warm.fronts_identical;
    all_identical = all_identical && identical;
    const double speedup =
        cold.rps() > 0.0 ? warm.rps() / cold.rps() : 0.0;
    std::printf("c=%-4d %6d %6d %10.1f %10.1f %8.1fx %7.2fms  %s\n",
                concurrency, cold_n, warm_n, cold.rps(), warm.rps(),
                speedup, warm.p99_ms(), identical ? "identical" : "DIFFER");
    if (!identical) {
      std::fprintf(stderr, "  first error: %s\n",
                   (cold.first_error.empty() ? warm.first_error
                                             : cold.first_error)
                       .c_str());
    }

    benchjson::Entry e;
    e.name = "server_throughput/c" + std::to_string(concurrency);
    e.num("concurrency", concurrency)
        .num("workers", workers)
        .num("cold_requests", cold_n)
        .num("warm_requests", warm_n)
        .num("cold_rps", cold.rps())
        .num("warm_rps", warm.rps())
        .num("warm_cold_speedup", speedup)
        .num("p99_ms_cold", cold.p99_ms())
        .num("p99_ms_warm", warm.p99_ms())
        .str("fronts_identical", identical ? "YES" : "NO");
    entries.push_back(e);
  }

  const char* path_env = std::getenv("BRIDGE_BENCH_JSON");
  benchjson::write(entries, path_env != nullptr && path_env[0] != '\0'
                                ? path_env
                                : "BENCH_server.json");
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: served fronts differ from in-process synthesis\n");
    return 1;
  }
  std::printf("all served fronts byte-identical to in-process synthesis\n");
  return 0;
}
