// §2/§5 comparison: DTAS functional matching vs DAGON-style flat DAG
// covering. The paper's argument: logic-level mappers flatten the design
// and cannot exploit MSI/LSI cells, while functional matching "avoids the
// complexity of subgraph isomorphism inherent in DAG matching".
//
// For n-bit adders we compare (a) mapped area/delay — the baseline only
// reaches SSI gates, DTAS binds ADD4/CLA4-class cells — and (b) mapping
// runtime.
#include <chrono>
#include <cstdio>

#include "cells/cell.h"
#include "dag/dagon.h"
#include "dtas/synthesizer.h"

using namespace bridge;

int main() {
  std::printf("DTAS functional matching vs DAGON-style flat DAG covering\n");
  std::printf("component: n-bit ripple-carry adder (same LSI library)\n\n");
  std::printf("%-6s | %10s %10s %10s %9s | %10s %10s %9s | %s\n", "width",
              "dtas_area", "dtas_ns", "dtas_fast", "dtas_ms", "dag_area",
              "dag_ns", "dag_ms", "dag cells");
  const auto patterns = dag::build_patterns(cells::lsi_library());
  for (int width : {4, 8, 16, 32, 64}) {
    auto t0 = std::chrono::steady_clock::now();
    dtas::Synthesizer synth(cells::lsi_library());
    auto alts = synth.synthesize(genus::make_adder_spec(width));
    auto t1 = std::chrono::steady_clock::now();
    const double dtas_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    auto t2 = std::chrono::steady_clock::now();
    auto network = dag::GateNetwork::ripple_adder(width);
    auto cover = dag::map_network(network, patterns);
    auto t3 = std::chrono::steady_clock::now();
    const double dag_ms =
        std::chrono::duration<double, std::milli>(t3 - t2).count();

    std::string histogram;
    for (const auto& [cell, count] : cover.cell_histogram) {
      histogram += cell + ":" + std::to_string(count) + " ";
    }
    std::printf(
        "%-6d | %10.1f %10.1f %10.1f %9.2f | %10.1f %10.1f %9.2f | %s\n",
        width, alts.empty() ? -1.0 : alts.front().metric.area,
        alts.empty() ? -1.0 : alts.front().metric.delay,
        alts.empty() ? -1.0 : alts.back().metric.delay, dtas_ms, cover.area,
        cover.delay, dag_ms, histogram.c_str());
  }

  std::printf("\nequality comparator:\n");
  std::printf("%-6s | %10s %10s | %10s %10s\n", "width", "dtas_area",
              "dtas_ns", "dag_area", "dag_ns");
  for (int width : {8, 16, 32}) {
    dtas::Synthesizer synth(cells::lsi_library());
    auto alts = synth.synthesize(
        genus::make_comparator_spec(width, genus::OpSet{genus::Op::kEq}));
    auto cover = dag::map_network(dag::GateNetwork::equality_comparator(width),
                                  patterns);
    std::printf("%-6d | %10.1f %10.1f | %10.1f %10.1f\n", width,
                alts.empty() ? -1.0 : alts.front().metric.area,
                alts.empty() ? -1.0 : alts.front().metric.delay, cover.area,
                cover.delay);
  }
  std::printf(
      "\nexpected shape: the flat mapper is restricted to SSI patterns, so\n"
      "its area exceeds DTAS's MSI-cell designs and it offers no fast\n"
      "alternatives; DTAS additionally returns the whole Pareto set.\n");
  return 0;
}
