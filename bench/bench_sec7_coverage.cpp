// §7 reproduction: component coverage and rule counts. "DTAS ... is
// capable of synthesizing a wide range of RTL components, including
// bitwise logic gates and multiplexers, binary and BCD decoders and
// encoders, n-bit adders and comparators, n-bit arithmetic logic units,
// shifters, n-by-m multipliers, and up/down counters. These components are
// supported by 86 rules written in the DTAS Design Language. DTAS requires
// nine library-specific design rules to fully utilize the subset of cells
// from LSI Logic."
#include <cstdio>

#include "cells/cell.h"
#include "dtas/synthesizer.h"

using namespace bridge;

int main() {
  std::printf("Section 7: DTAS component coverage and rule counts\n\n");

  dtas::RuleBase counting = dtas::default_rules_for(cells::lsi_library());
  std::printf("generic rules:          %3d   (paper: 86 in the DTAS Design "
              "Language)\n", counting.generic_count());
  std::printf("library-specific rules: %3d   (paper: 9 for the LSI "
              "subset)\n\n", counting.library_specific_count());

  struct Case {
    const char* label;
    genus::ComponentSpec spec;
  };
  using genus::Op;
  using genus::OpSet;
  std::vector<Case> cases = {
      {"bitwise logic gates (8-bit NAND)",
       genus::make_gate_spec(Op::kNand, 8)},
      {"multiplexer (8:1 x 8)", genus::make_mux_spec(8, 8)},
      {"binary decoder (4 -> 16)", genus::make_decoder_spec(4)},
      {"BCD decoder (4 -> 10)",
       genus::make_decoder_spec(4, genus::Representation::kBcd)},
      {"binary encoder (8 -> 3)", genus::make_encoder_spec(3)},
      {"BCD encoder (10 -> 4)",
       genus::make_encoder_spec(4, genus::Representation::kBcd)},
      {"n-bit adder (24)", genus::make_adder_spec(24)},
      {"n-bit comparator (12)",
       genus::make_comparator_spec(12, OpSet{Op::kEq, Op::kLt, Op::kGt})},
      {"n-bit 16-function ALU (16)",
       genus::make_alu_spec(16, genus::alu16_ops())},
      {"shifter (8, 5 ops)",
       genus::make_shifter_spec(8, OpSet{Op::kShl, Op::kShr, Op::kAshr,
                                         Op::kRotl, Op::kRotr})},
      {"n-by-m multiplier (8x6)", genus::make_multiplier_spec(8, 6)},
      {"up/down counter (8)",
       genus::make_counter_spec(8, OpSet{Op::kLoad, Op::kCountUp,
                                         Op::kCountDown})},
  };

  std::printf("%-36s %6s %10s %10s  %s\n", "component", "alts", "area",
              "delay", "best implementation");
  int ok = 0;
  for (const auto& c : cases) {
    dtas::Synthesizer synth(cells::lsi_library());
    auto alts = synth.synthesize(c.spec);
    if (alts.empty()) {
      std::printf("%-36s FAILED (no implementation)\n", c.label);
      continue;
    }
    ++ok;
    std::printf("%-36s %6zu %10.1f %10.1f  %s\n", c.label, alts.size(),
                alts.front().metric.area, alts.front().metric.delay,
                alts.front().description.substr(0, 60).c_str());
  }
  std::printf("\nsynthesized %d / %zu component classes from the paper's "
              "list\n", ok, cases.size());
  return ok == static_cast<int>(cases.size()) ? 0 : 1;
}
