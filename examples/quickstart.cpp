// Quickstart: generate a generic component with GENUS, map it into RTL
// library cells through the unified request/response API, inspect the
// alternatives, and emit VHDL.
//
// The same api::SynthesisRequest drives every path: run_request here,
// examples/client.cpp over a socket, the benches, and the server — its
// JSON form IS the wire protocol (see README "Server mode").
//
//   $ ./quickstart
#include <cstdio>

#include "api/api.h"
#include "cells/cell.h"
#include "cells/registry.h"
#include "genus/library.h"

using namespace bridge;

int main() {
  // 1. Instantiate a generic 16-bit adder through the GENUS library.
  const genus::GenusLibrary& lib = genus::builtin_library();
  genus::ParamMap params;
  params.set(genus::kParamInputWidth, 16L);
  genus::ComponentPtr adder = lib.instantiate(genus::Kind::kAdder, params);
  std::printf("generic component: %s\n", adder->name().c_str());
  std::printf("functional spec:   %s\n\n", adder->spec().key().c_str());

  // 2. Build the synthesis request: spec + library name + options. The
  // LSI-style data book is one of the registry's built-ins.
  auto registry = cells::LibraryRegistry::with_builtins();
  api::SynthesisRequest req;
  req.library = cells::lsi_library().name();
  req.spec = adder->spec();
  req.options.emit_vhdl = true;
  std::printf("request (the same JSON a synthesis server accepts):\n%s\n\n",
              req.to_json().c_str());

  // 3. Execute it in-process.
  api::SynthesisResult res = api::run_request(req, registry);
  if (!res.ok()) {
    std::printf("synthesis failed: %s\n", res.error.c_str());
    return 1;
  }
  std::printf("DTAS alternatives (area in equivalent NAND gates):\n");
  for (size_t i = 0; i < res.alternatives.size(); ++i) {
    const api::ResultAlternative& alt = res.alternatives[i];
    std::printf("  %zu: area %6.1f, delay %5.1f ns  -- %s\n", i, alt.area,
                alt.delay, alt.description.c_str());
  }
  std::printf("\nthis request: %ld combinations evaluated, "
              "%ld template-cache hits / %ld misses\n",
              res.stats.combinations_evaluated,
              res.stats.template_cache_hits,
              res.stats.template_cache_misses);

  // 4. The VHDL rode back on the response (options.emit_vhdl).
  if (!res.alternatives.empty()) {
    std::printf("\nstructural VHDL of the smallest design:\n\n%s",
                res.alternatives.front().vhdl.c_str());
  }
  return 0;
}
