// Quickstart: generate a generic component with GENUS, map it into RTL
// library cells with DTAS, inspect the alternatives, and emit VHDL.
//
//   $ ./quickstart
#include <cstdio>

#include "cells/cell.h"
#include "dtas/synthesizer.h"
#include "genus/library.h"
#include "vhdl/vhdl.h"

using namespace bridge;

int main() {
  // 1. Instantiate a generic 16-bit adder through the GENUS library.
  const genus::GenusLibrary& lib = genus::builtin_library();
  genus::ParamMap params;
  params.set(genus::kParamInputWidth, 16L);
  genus::ComponentPtr adder = lib.instantiate(genus::Kind::kAdder, params);
  std::printf("generic component: %s\n", adder->name().c_str());
  std::printf("functional spec:   %s\n\n", adder->spec().key().c_str());

  // 2. Map it into the LSI-style data book with DTAS.
  dtas::Synthesizer synth(cells::lsi_library());
  auto alternatives = synth.synthesize(adder->spec());
  std::printf("DTAS alternatives (area in equivalent NAND gates):\n");
  for (size_t i = 0; i < alternatives.size(); ++i) {
    const auto& alt = alternatives[i];
    std::printf("  %zu: area %6.1f, delay %5.1f ns  -- %s\n", i,
                alt.metric.area, alt.metric.delay, alt.description.c_str());
  }

  // 3. Emit the smallest alternative as structural VHDL.
  if (!alternatives.empty()) {
    std::printf("\nstructural VHDL of the smallest design:\n\n%s",
                vhdl::emit_structural(*alternatives.front().design).c_str());
  }
  return 0;
}
