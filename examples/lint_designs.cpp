// Structural-lint CI gate driver: synthesize a representative slice of
// the bench-smoke workload (the Figure-3 ALU, the retargeting spec
// sweep, and a §6-style spec-instance netlist) against every registered
// library, lint every returned design, and write a JSON report for
// tools/lint_designs.py to gate on.
//
// Every request runs twice — once with the api `verify` flag on and once
// off — and the report records whether the two fronts (down to the
// emitted VHDL) are byte-identical, pinning the linter's read-only
// contract on real workloads, not just unit fixtures.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "api/api.h"
#include "base/diag.h"
#include "cells/registry.h"
#include "liberty/liberty.h"
#include "lint/lint.h"
#include "netlist/netlist.h"

using namespace bridge;

#ifndef BRIDGE_LIBS_DIR
#define BRIDGE_LIBS_DIR "libs"
#endif

namespace {

/// A small §6-style datapath of spec instances (registered operand ->
/// ALU -> adder, an XOR merge, a result mux, a comparator flag, an
/// output register), exercising the synthesize_netlist extraction path.
netlist::Module make_lint_datapath(int w) {
  using genus::Op;
  using genus::OpSet;
  netlist::Module m("lintpath" + std::to_string(w));
  const auto A = m.add_port("A", genus::PortDir::kIn, w);
  const auto B = m.add_port("B", genus::PortDir::kIn, w);
  const auto C = m.add_port("C", genus::PortDir::kIn, w);
  const auto F = m.add_port("F", genus::PortDir::kIn, 4);
  const auto CI = m.add_port("CI", genus::PortDir::kIn, 1);
  const auto SEL = m.add_port("SEL", genus::PortDir::kIn, 1);
  const auto CLK = m.add_port("CLK", genus::PortDir::kIn, 1);
  const auto EN = m.add_port("EN", genus::PortDir::kIn, 1);
  const auto ARST = m.add_port("ARST", genus::PortDir::kIn, 1);
  const auto OUT = m.add_port("OUT", genus::PortDir::kOut, w);
  const auto EQ = m.add_port("FLAG_EQ", genus::PortDir::kOut, 1);

  const auto ra = m.add_net("ra", w);
  const auto alu_out = m.add_net("alu_out", w);
  const auto sum = m.add_net("sum", w);
  const auto xr = m.add_net("xr", w);
  const auto muxed = m.add_net("muxed", w);

  auto& rin = m.add_spec_instance("rin", genus::make_register_spec(w));
  m.connect(rin, "D", A);
  m.connect(rin, "CLK", CLK);
  m.connect(rin, "EN", EN);
  m.connect(rin, "ARST", ARST);
  m.connect(rin, "Q", ra);

  auto& alu =
      m.add_spec_instance("alu0", genus::make_alu_spec(w, genus::alu16_ops()));
  m.connect(alu, "A", ra);
  m.connect(alu, "B", B);
  m.connect(alu, "CI", CI);
  m.connect(alu, "F", F);
  m.connect(alu, "OUT", alu_out);

  auto& add =
      m.add_spec_instance("add0", genus::make_adder_spec(w, false, false));
  m.connect(add, "A", alu_out);
  m.connect(add, "B", C);
  m.connect(add, "S", sum);

  auto& xg = m.add_spec_instance("xor0", genus::make_gate_spec(Op::kXor, w, 2));
  m.connect(xg, "I0", sum);
  m.connect(xg, "I1", C);
  m.connect(xg, "OUT", xr);

  auto& cmp = m.add_spec_instance(
      "cmp0", genus::make_comparator_spec(w, OpSet{Op::kEq}));
  m.connect(cmp, "A", sum);
  m.connect(cmp, "B", C);
  m.connect(cmp, "EQ", EQ);

  auto& mux = m.add_spec_instance("mux0", genus::make_mux_spec(w, 2));
  m.connect(mux, "I0", alu_out);
  m.connect(mux, "I1", xr);
  m.connect(mux, "SEL", SEL);
  m.connect(mux, "OUT", muxed);

  auto& rout =
      m.add_spec_instance("rout", genus::make_register_spec(w, false, true));
  m.connect(rout, "D", muxed);
  m.connect(rout, "CLK", CLK);
  m.connect(rout, "ARST", ARST);
  m.connect(rout, "Q", OUT);
  return m;
}

/// Byte-level front comparison of two results (metric doubles bit-equal,
/// descriptions and emitted VHDL string-equal).
bool fronts_identical(const api::SynthesisResult& a,
                      const api::SynthesisResult& b) {
  if (a.alternatives.size() != b.alternatives.size()) return false;
  for (std::size_t i = 0; i < a.alternatives.size(); ++i) {
    const api::ResultAlternative& x = a.alternatives[i];
    const api::ResultAlternative& y = b.alternatives[i];
    if (x.area != y.area || x.delay != y.delay) return false;
    if (x.description != y.description) return false;
    if (x.vhdl != y.vhdl) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "LINT_designs.json";

  auto registry = cells::LibraryRegistry::with_builtins();
  const std::string lib_path =
      std::string(BRIDGE_LIBS_DIR) + "/sample_sky130_subset.lib";
  try {
    registry.load_liberty_file(lib_path);
  } catch (const Error& e) {
    std::printf("could not ingest %s: %s\n", lib_path.c_str(), e.what());
  }

  struct Case {
    const char* label;
    api::SynthesisRequest req;  // spec or netlist; library filled per run
  };
  std::vector<Case> cases;
  auto spec_case = [&cases](const char* label,
                            const genus::ComponentSpec& spec) {
    Case c;
    c.label = label;
    c.req.spec = spec;
    cases.push_back(std::move(c));
  };
  genus::OpSet sliceable = genus::OpSet{genus::Op::kAdd, genus::Op::kSub} |
                           genus::alu16_logic_ops();
  spec_case("adder8", genus::make_adder_spec(8));
  spec_case("adder16", genus::make_adder_spec(16));
  spec_case("adder64", genus::make_adder_spec(64));
  spec_case("addsub16", genus::make_addsub_spec(16));
  spec_case("alu16", genus::make_alu_spec(16, sliceable));
  spec_case("alu64", genus::make_alu_spec(64, genus::alu16_ops()));
  spec_case("mux16x4", genus::make_mux_spec(16, 4));
  spec_case("register16", genus::make_register_spec(16));
  spec_case("comparator8",
            genus::make_comparator_spec(
                8, genus::OpSet{genus::Op::kEq, genus::Op::kLt}));
  spec_case("shifter16",
            genus::make_shifter_spec(
                16, genus::OpSet{genus::Op::kShl, genus::Op::kShr}));
  {
    Case c;
    c.label = "lintpath8";
    c.req.input_netlist = make_lint_datapath(8);
    cases.push_back(std::move(c));
  }

  api::Json report = api::Json::object();
  api::Json rows = api::Json::array();
  long total_fronts = 0;
  long total_designs = 0;
  long total_errors = 0;
  long total_warnings = 0;
  bool all_identical = true;
  for (const cells::CellLibrary* lib : registry.all()) {
    api::SynthesisRequest base;
    base.library = lib->name();
    std::unique_ptr<dtas::Synthesizer> session =
        api::make_session(base, *lib);
    for (const Case& c : cases) {
      api::SynthesisRequest req = c.req;
      req.library = lib->name();
      req.options.emit_vhdl = true;
      req.options.verify = true;
      const api::SynthesisResult verified = api::run_request(req, *session);
      req.options.verify = false;
      const api::SynthesisResult plain = api::run_request(req, *session);
      const bool identical = fronts_identical(verified, plain);

      long errors = 0, warnings = 0;
      api::Json diags = api::Json::array();
      for (const lint::Diagnostic& d : verified.diagnostics) {
        (d.severity == lint::Severity::kError ? errors : warnings) += 1;
        diags.push_back(d.to_string());
      }
      api::Json row = api::Json::object();
      row.set("library", lib->name())
          .set("case", std::string(c.label))
          .set("status", verified.status)
          .set("alternatives",
               static_cast<double>(verified.alternatives.size()))
          .set("errors", static_cast<double>(errors))
          .set("warnings", static_cast<double>(warnings))
          .set("verify_identical", identical);
      if (!verified.diagnostics.empty()) {
        row.set("diagnostics", std::move(diags));
      }
      rows.push_back(std::move(row));

      total_fronts += verified.alternatives.empty() ? 0 : 1;
      total_designs += static_cast<long>(verified.alternatives.size());
      total_errors += errors;
      total_warnings += warnings;
      all_identical = all_identical && identical;
      std::printf("%-22s %-12s %2zu alts  %ld errors  %ld warnings  %s\n",
                  lib->name().c_str(), c.label,
                  verified.alternatives.size(), errors, warnings,
                  identical ? "identical" : "DIVERGED");
    }
  }
  report.set("cases", std::move(rows))
      .set("fronts", static_cast<double>(total_fronts))
      .set("designs_linted", static_cast<double>(total_designs))
      .set("errors", static_cast<double>(total_errors))
      .set("warnings", static_cast<double>(total_warnings))
      .set("all_identical", all_identical);
  std::ofstream out(out_path);
  out << report.dump() << "\n";
  std::printf("\nlinted %ld designs across %ld fronts: %ld errors, "
              "%ld warnings (report: %s)\n",
              total_designs, total_fronts, total_errors, total_warnings,
              out_path.c_str());
  return 0;
}
