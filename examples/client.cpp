// A synthesis client: build an api::SynthesisRequest, frame it, send it
// to a running `serve` daemon, and print the response.
//
//   $ ./client --port 7171                  # synthesize a 16-bit adder
//   $ ./client --port 7171 --alu 64         # the paper's Figure 3 ALU
//   $ ./client --port 7171 --deadline-ms 50 # best-effort under a budget
//   $ ./client --unix /tmp/dtas.sock --health
//   $ ./client --port 7171 --metrics
//   $ ./client --port 7171 --shutdown
//
// The request JSON is exactly what api::run_request takes in process —
// see examples/quickstart.cpp for the in-process twin of this program.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/api.h"
#include "base/diag.h"
#include "genus/spec.h"
#include "server/protocol.h"

using namespace bridge;

int main(int argc, char** argv) {
  int port = 0;
  std::string unix_path;
  std::string method = "synthesize";
  int adder_width = 16;
  int alu_width = 0;
  long deadline_ms = 0;
  std::string library = "LSI_LGC15";
  bool emit_vhdl = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--unix" && i + 1 < argc) {
      unix_path = argv[++i];
    } else if (arg == "--library" && i + 1 < argc) {
      library = argv[++i];
    } else if (arg == "--adder" && i + 1 < argc) {
      adder_width = std::atoi(argv[++i]);
    } else if (arg == "--alu" && i + 1 < argc) {
      alu_width = std::atoi(argv[++i]);
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      deadline_ms = std::atol(argv[++i]);
    } else if (arg == "--emit-vhdl") {
      emit_vhdl = true;
    } else if (arg == "--health" || arg == "--metrics" ||
               arg == "--shutdown") {
      method = arg.substr(2);
    } else {
      std::fprintf(stderr,
                   "usage: client [--port N | --unix PATH] [--library NAME]\n"
                   "              [--adder W | --alu W] [--deadline-ms N]\n"
                   "              [--emit-vhdl] [--health | --metrics | "
                   "--shutdown]\n");
      return 2;
    }
  }

  try {
    const int fd = unix_path.empty() ? server::connect_tcp(port)
                                     : server::connect_unix(unix_path);
    std::string frame;
    if (method == "synthesize") {
      api::SynthesisRequest req;
      req.library = library;
      req.spec = alu_width > 0
                     ? genus::make_alu_spec(alu_width, genus::alu16_ops())
                     : genus::make_adder_spec(adder_width);
      req.options.deadline_ms = deadline_ms;
      req.options.deadline_best_effort = deadline_ms > 0;
      req.options.emit_vhdl = emit_vhdl;
      api::Json j = req.encode();
      j.set("method", "synthesize");
      frame = j.dump();
    } else {
      frame = api::Json::object().set("method", method).dump();
    }
    server::write_frame(fd, frame);
    std::string payload;
    if (!server::read_frame(fd, payload)) {
      std::fprintf(stderr, "server closed the connection\n");
      server::close_socket(fd);
      return 1;
    }
    server::close_socket(fd);

    if (method != "synthesize") {
      std::printf("%s\n", payload.c_str());
      return 0;
    }
    const api::SynthesisResult res = api::SynthesisResult::from_json(payload);
    std::printf("status: %s%s  (server %.2f ms)\n", res.status.c_str(),
                res.deadline_hit ? " [deadline hit, best-effort front]" : "",
                res.server_ms);
    if (!res.ok()) {
      std::printf("error: %s\n", res.error.c_str());
      return 1;
    }
    for (size_t i = 0; i < res.alternatives.size(); ++i) {
      const api::ResultAlternative& alt = res.alternatives[i];
      std::printf("  %zu: area %7.1f, delay %5.1f ns  -- %s\n", i, alt.area,
                  alt.delay, alt.description.substr(0, 80).c_str());
    }
    std::printf("stats: %ld combinations, template cache %ld/%ld hit/miss\n",
                res.stats.combinations_evaluated,
                res.stats.template_cache_hits,
                res.stats.template_cache_misses);
    if (emit_vhdl && !res.alternatives.empty()) {
      std::printf("\n%s", res.alternatives.front().vhdl.c_str());
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "client error: %s\n", e.what());
    return 1;
  }
  return 0;
}
