// The synthesis daemon: serve the built-in data books (plus any library
// files named on the command line) over the length-prefixed JSON
// protocol until a client sends a shutdown request.
//
//   $ ./serve --port 0                 # TCP loopback, ephemeral port
//   $ ./serve --unix /tmp/dtas.sock    # Unix-domain socket
//   $ ./serve --port 7171 --workers 4 libs/sample_sky130_subset.lib
//
// Talk to it with examples/client.cpp. See README "Server mode" for the
// framing and schema.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "base/diag.h"
#include "cells/registry.h"
#include "server/server.h"

using namespace bridge;

int main(int argc, char** argv) {
  server::ServerOptions options;
  auto registry = cells::LibraryRegistry::with_builtins();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      options.tcp_port = std::atoi(argv[++i]);
    } else if (arg == "--unix" && i + 1 < argc) {
      options.unix_path = argv[++i];
    } else if (arg == "--workers" && i + 1 < argc) {
      options.workers = std::atoi(argv[++i]);
    } else if (arg == "--help") {
      std::printf("usage: serve [--port N | --unix PATH] [--workers N] "
                  "[library files...]\n");
      return 0;
    } else {
      try {
        registry.load_file(arg);
      } catch (const Error& e) {
        std::fprintf(stderr, "could not load %s: %s\n", arg.c_str(),
                     e.what());
        return 1;
      }
    }
  }

  server::SynthesisServer srv(registry, options);
  try {
    srv.start();
  } catch (const Error& e) {
    std::fprintf(stderr, "could not start server: %s\n", e.what());
    return 1;
  }
  // One parseable line for scripts (the CI smoke job greps the port).
  std::printf("serving %s libraries=%d workers=%s endpoint=%s\n",
              options.unix_path.empty() ? "tcp" : "unix", registry.size(),
              options.workers > 0 ? std::to_string(options.workers).c_str()
                                  : "auto",
              srv.endpoint().c_str());
  std::fflush(stdout);

  srv.wait();  // until a client sends {"method": "shutdown"}
  srv.stop();
  std::printf("server stopped after %ld requests (%ld errors)\n",
              srv.requests_handled(), srv.errors_returned());
  return 0;
}
