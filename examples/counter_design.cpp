// The Figure 2 flow: a LEGEND generator description is parsed, a counter
// component is generated from it (with parameters), an instance is
// connected into a small netlist, the behavioral VHDL model is emitted,
// and DTAS maps the counter onto library flip-flops and registers —
// in both of the generator's declared styles (SYNCHRONOUS and RIPPLE).
#include <cstdio>

#include "cells/cell.h"
#include "dtas/synthesizer.h"
#include "legend/legend.h"
#include "vhdl/vhdl.h"

using namespace bridge;

int main() {
  // Parse the paper's Figure 2 description and build a library from it.
  genus::GenusLibrary lib =
      legend::load_library(legend::figure2_counter_text(), "FIG2");
  std::printf("LEGEND library '%s' with generators:", lib.name().c_str());
  for (const auto& name : lib.generator_names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n");

  // Generate an 8-bit up/down counter and make an instance of it.
  genus::ParamMap params;
  params.set(genus::kParamInputWidth, 8L);
  params.set(genus::kParamStyle, genus::Style::kSynchronous);
  auto counter = lib.instantiate("COUNTER", params);
  auto instance = genus::GenusLibrary::make_instance("u_count0", counter);
  instance.connect("I0", "load_bus");
  instance.connect("O0", "count_bus");
  instance.connect("CLK", "clk");
  std::printf("instance %s of %s: %zu connections stored (instances are\n"
              "carbon copies; everything else inherited)\n\n",
              instance.name.c_str(), counter->name().c_str(),
              instance.connections.size());

  std::printf("--- behavioral VHDL model ---\n%s\n",
              vhdl::emit_behavioral(*counter).c_str());

  // Technology-map the counter in both styles.
  for (auto style : {genus::Style::kSynchronous, genus::Style::kRipple}) {
    genus::ComponentSpec spec = counter->spec();
    spec.style = style;
    spec.async_set = false;  // the LSI registers have no async set
    dtas::Synthesizer synth(cells::lsi_library());
    auto alts = synth.synthesize(spec);
    std::printf("style %s: %zu alternative(s)\n",
                genus::style_name(style).c_str(), alts.size());
    for (const auto& alt : alts) {
      std::printf("  area %6.1f, delay %5.1f ns  -- %s\n", alt.metric.area,
                  alt.metric.delay, alt.description.c_str());
    }
  }
  return 0;
}
