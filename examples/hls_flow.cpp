// The Figure 1 flow, end to end, on a behavioral design of your choice:
// behavior -> HLS -> GENUS netlist + state table -> control compiler ->
// DTAS -> structural VHDL. Prints the intermediate artifacts the paper's
// system diagram names.
#include <cstdio>

#include "cells/cell.h"
#include "ctrl/control_compiler.h"
#include "dtas/synthesizer.h"
#include "hls/fsmd.h"
#include "vhdl/vhdl.h"

using namespace bridge;

int main() {
  const char* text = R"(
design sumsq;
input a : 8;
input b : 8;
output s : 8;
var t : 8;
var u : 8;
begin
  t = a & 15;
  u = b & 15;
  s = 0;
  while (t != 0) {
    s = s + u;
    t = t - 1;
  }
end
)";
  std::printf("=== behavioral input ===\n%s\n", text);

  auto fsmd = hls::synthesize_behavior(hls::parse_behavior(text));

  std::printf("=== state sequencing table (BIF style) ===\n%s\n",
              fsmd.control.emit_bif().c_str());

  std::printf("=== GENUS datapath netlist (structural VHDL) ===\n%s\n",
              vhdl::emit_structural(*fsmd.design.top()).c_str());

  auto run = hls::run_fsmd(
      fsmd, {{"a", BitVec(8, 7)}, {"b", BitVec(8, 6)}});
  std::printf("co-simulation: 7 * 6 = %llu (in %d cycles)\n\n",
              static_cast<unsigned long long>(run.outputs.at("s").to_uint64()),
              run.cycles);

  auto ctl = ctrl::compile_control(fsmd.control);
  std::printf("controller: %d state bits, %d implicants after "
              "Quine-McCluskey\n\n", ctl.state_bits, ctl.implicant_count);

  dtas::Synthesizer synth(cells::lsi_library());
  auto alts = synth.synthesize_netlist(*fsmd.design.top());
  std::printf("DTAS datapath implementations:\n");
  for (const auto& alt : alts) {
    std::printf("  area %7.1f, delay %5.1f ns -- %s\n", alt.metric.area,
                alt.metric.delay, alt.description.substr(0, 100).c_str());
  }
  return 0;
}
