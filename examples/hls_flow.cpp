// The Figure 1 flow, end to end, on a behavioral design of your choice:
// behavior -> HLS -> GENUS netlist + state table -> control compiler ->
// DTAS -> structural VHDL. Prints the intermediate artifacts the paper's
// system diagram names.
//
// The DTAS step goes through the request/response API: the GENUS
// datapath netlist becomes the `netlist` member of an
// api::SynthesisRequest — the JSON round-trip below is the exact frame a
// synthesis server would receive for this flow.
#include <cstdio>

#include "api/api.h"
#include "cells/cell.h"
#include "cells/registry.h"
#include "ctrl/control_compiler.h"
#include "hls/fsmd.h"
#include "vhdl/vhdl.h"

using namespace bridge;

int main() {
  const char* text = R"(
design sumsq;
input a : 8;
input b : 8;
output s : 8;
var t : 8;
var u : 8;
begin
  t = a & 15;
  u = b & 15;
  s = 0;
  while (t != 0) {
    s = s + u;
    t = t - 1;
  }
end
)";
  std::printf("=== behavioral input ===\n%s\n", text);

  auto fsmd = hls::synthesize_behavior(hls::parse_behavior(text));

  std::printf("=== state sequencing table (BIF style) ===\n%s\n",
              fsmd.control.emit_bif().c_str());

  std::printf("=== GENUS datapath netlist (structural VHDL) ===\n%s\n",
              vhdl::emit_structural(*fsmd.design.top()).c_str());

  auto run = hls::run_fsmd(
      fsmd, {{"a", BitVec(8, 7)}, {"b", BitVec(8, 6)}});
  std::printf("co-simulation: 7 * 6 = %llu (in %d cycles)\n\n",
              static_cast<unsigned long long>(run.outputs.at("s").to_uint64()),
              run.cycles);

  auto ctl = ctrl::compile_control(fsmd.control);
  std::printf("controller: %d state bits, %d implicants after "
              "Quine-McCluskey\n\n", ctl.state_bits, ctl.implicant_count);

  // Map the datapath through the request/response API — and prove the
  // wire form is lossless by running the JSON round-trip of the request.
  auto registry = cells::LibraryRegistry::with_builtins();
  api::SynthesisRequest req;
  req.library = cells::lsi_library().name();
  req.input_netlist = *fsmd.design.top();
  const api::SynthesisRequest over_the_wire =
      api::SynthesisRequest::from_json(req.to_json());
  api::SynthesisResult res = api::run_request(over_the_wire, registry);
  if (!res.ok()) {
    std::printf("DTAS failed: %s\n", res.error.c_str());
    return 1;
  }
  std::printf("DTAS datapath implementations:\n");
  for (const api::ResultAlternative& alt : res.alternatives) {
    std::printf("  area %7.1f, delay %5.1f ns -- %s\n", alt.area, alt.delay,
                alt.description.substr(0, 100).c_str());
  }
  return 0;
}
