// Library retargeting with LOLA (paper §7, future direction): present
// DTAS with a new data book (a TTL-era 74xx-style library), let LOLA
// induce the library-specific rules from abstract design principles, and
// compare the mappings of the same components against the LSI library.
#include <cstdio>

#include "cells/cell.h"
#include "cells/databook.h"
#include "dtas/synthesizer.h"
#include "lola/lola.h"

using namespace bridge;

namespace {

void map_and_report(const char* label, const cells::CellLibrary& lib,
                    dtas::RuleBase rules,
                    const genus::ComponentSpec& spec) {
  dtas::Synthesizer synth(std::move(rules), lib);
  auto alts = synth.synthesize(spec);
  std::printf("  %-10s: ", label);
  if (alts.empty()) {
    std::printf("no implementation\n");
    return;
  }
  std::printf("%zu alts; smallest %.1f gates / %.1f ns; best %s\n",
              alts.size(), alts.front().metric.area,
              alts.front().metric.delay,
              alts.front().description.substr(0, 70).c_str());
}

}  // namespace

int main() {
  const auto& ttl = cells::ttl_library();
  std::printf("new data book: %s\n%s\n", ttl.description().c_str(),
              cells::emit_databook(ttl).c_str());

  // LOLA scans the book and induces the library-specific rules.
  dtas::RuleBase ttl_rules;
  dtas::register_standard_rules(ttl_rules);
  auto report = lola::induce_rules(ttl, ttl_rules);
  std::printf("%s\n", report.text().c_str());

  // Compare mappings of the same components on both libraries.
  genus::OpSet sliceable =
      genus::OpSet{genus::Op::kAdd, genus::Op::kSub} |
      genus::alu16_logic_ops();
  struct Case {
    const char* label;
    genus::ComponentSpec spec;
  };
  const Case cases[] = {
      {"16-bit adder", genus::make_adder_spec(16)},
      {"16-bit 10-function ALU", genus::make_alu_spec(16, sliceable)},
      {"8-bit comparator",
       genus::make_comparator_spec(
           8, genus::OpSet{genus::Op::kEq, genus::Op::kLt, genus::Op::kGt})},
  };
  for (const Case& c : cases) {
    std::printf("%s:\n", c.label);
    map_and_report("LSI", cells::lsi_library(),
                   dtas::default_rules_for(cells::lsi_library()), c.spec);
    dtas::RuleBase rules;
    dtas::register_standard_rules(rules);
    lola::induce_rules(ttl, rules);
    map_and_report("TTL+LOLA", ttl, std::move(rules), c.spec);
    std::printf("\n");
  }
  std::printf("note the T181 4-bit ALU slices carry the TTL mapping of the\n"
              "10-function ALU — a cell class the LSI book does not offer.\n");
  return 0;
}
