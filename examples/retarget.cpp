// Library retargeting (paper §7): present DTAS with new data books and
// map the same GENUS components across all of them.
//
// Three libraries ride through one pipeline: the built-in LSI-style book
// (the paper's 30 cells, with its nine hand-written library rules), the
// TTL-era 74xx book, and a sky130-style Liberty file ingested at runtime
// through src/liberty's spec inference. For every non-LSI library LOLA
// induces the library-specific rules from abstract design principles —
// retargeting needs data, not code.
//
// Each case is an api::SynthesisRequest differing only in its `library`
// field, executed against one warm session per book (api::make_session) —
// the exact shape a retargeting client sends a synthesis server.
#include <cstdio>
#include <memory>
#include <vector>

#include "api/api.h"
#include "base/diag.h"
#include "cells/registry.h"
#include "liberty/liberty.h"

using namespace bridge;

#ifndef BRIDGE_LIBS_DIR
#define BRIDGE_LIBS_DIR "libs"
#endif

int main() {
  auto registry = cells::LibraryRegistry::with_builtins();
  liberty::LoadReport report;
  const std::string lib_path =
      std::string(BRIDGE_LIBS_DIR) + "/sample_sky130_subset.lib";
  try {
    registry.load_liberty_file(lib_path, &report);
    std::printf("ingested %s:\n%s\n", lib_path.c_str(),
                report.text().c_str());
  } catch (const Error& e) {
    std::printf("could not ingest %s: %s\n", lib_path.c_str(), e.what());
  }

  // One session per library, shared across all cases: induction runs
  // exactly once per book and the memoized design space is reused.
  api::SynthesisRequest req;  // options stay at the documented defaults
  std::printf("registered libraries:\n");
  std::vector<std::unique_ptr<dtas::Synthesizer>> sessions;
  for (const cells::CellLibrary* lib : registry.all()) {
    req.library = lib->name();
    sessions.push_back(api::make_session(req, *lib));
    std::printf("  %-22s %2d cells  %2d library-specific rules  (%s)\n",
                lib->name().c_str(), lib->size(),
                sessions.back()->space().rules().library_specific_count(),
                lib->description().substr(0, 48).c_str());
  }
  std::printf("\n");

  genus::OpSet sliceable = genus::OpSet{genus::Op::kAdd, genus::Op::kSub} |
                           genus::alu16_logic_ops();
  struct Case {
    const char* label;
    genus::ComponentSpec spec;
  };
  const Case cases[] = {
      {"8-bit adder", genus::make_adder_spec(8)},
      {"16-bit adder", genus::make_adder_spec(16)},
      {"8-bit 2-to-1 mux", genus::make_mux_spec(8, 2)},
      {"8-bit register", genus::make_register_spec(8, /*enable=*/false,
                                                   /*async_reset=*/true)},
      {"16-bit 10-function ALU", genus::make_alu_spec(16, sliceable)},
      {"8-bit comparator",
       genus::make_comparator_spec(
           8, genus::OpSet{genus::Op::kEq, genus::Op::kLt, genus::Op::kGt})},
  };

  for (const Case& c : cases) {
    std::printf("%s:\n", c.label);
    for (auto& session : sessions) {
      const cells::CellLibrary& lib = session->space().library();
      req.library = lib.name();
      req.spec = c.spec;
      api::SynthesisResult res = api::run_request(req, *session);
      std::printf("  %-22s: ", lib.name().c_str());
      if (!res.ok()) {
        std::printf("failed: %s\n", res.error.c_str());
        continue;
      }
      if (res.alternatives.empty()) {
        std::printf("no implementation\n");
        continue;
      }
      const api::ResultAlternative& best = res.alternatives.front();
      std::printf("%zu alts; smallest %.1f gates / %.2f ns; best %s\n",
                  res.alternatives.size(), best.area, best.delay,
                  best.description.substr(0, 60).c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "note how cell granularity shapes the mappings: the T181 4-bit ALU\n"
      "slice carries the TTL ALU, while the gate-level sky130 book builds\n"
      "adders from full-adder cells and registers from flip-flops.\n");
  return 0;
}
