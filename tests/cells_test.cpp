// Cell library tests: the LSI-30 and TTL books, functional matching, and
// the data-book text round trip.
#include <gtest/gtest.h>

#include "base/diag.h"
#include "cells/cell.h"
#include "cells/databook.h"

namespace bridge::cells {
namespace {

using genus::Kind;
using genus::Op;
using genus::OpSet;

TEST(LsiLibrary, HasExactlyThePaperThirtyCells) {
  const auto& lib = lsi_library();
  EXPECT_EQ(lib.size(), 30);
  // The cells the paper enumerates for the Figure 3 study (§6).
  for (const char* name :
       {"MUX21", "MUX41", "MUX81", "ADD1", "ADD2", "ADD4", "CLA4", "ADSU2",
        "DFF", "REG4", "REG8"}) {
    EXPECT_NE(lib.find(name), nullptr) << name;
  }
  EXPECT_EQ(lib.find("NOPE"), nullptr);
}

TEST(LsiLibrary, FunctionalMatchingFindsTheAdderCells) {
  // The paper's example: "after DTAS decomposes a 16-bit adder into four
  // 4-bit adders, it examines the cell library for a cell of type ADD with
  // two 4-bit inputs plus carry-in and a 4-bit output plus carry-out."
  auto matches = lsi_library().matches(genus::make_adder_spec(4));
  ASSERT_EQ(matches.size(), 2u);  // ADD4 and ADD4F
  EXPECT_EQ(matches[0]->name, "ADD4");
  EXPECT_EQ(matches[1]->name, "ADD4F");
  // No 16-bit adder cell exists: functional match returns nothing.
  EXPECT_TRUE(lsi_library().matches(genus::make_adder_spec(16)).empty());
}

TEST(LsiLibrary, PromotionsMatchThroughTieOffs) {
  // ADSU2 implements a plain 2-bit adder (MODE tied to 0).
  auto matches = lsi_library().matches(genus::make_adder_spec(2));
  ASSERT_FALSE(matches.empty());
  bool found_adsu = false;
  for (const auto* c : matches) {
    if (c->name == "ADSU2") found_adsu = true;
  }
  EXPECT_TRUE(found_adsu);
  // DFF cells implement 1-bit registers.
  auto reg1 = lsi_library().matches(
      genus::make_register_spec(1, /*enable=*/false, /*async_reset=*/true));
  ASSERT_FALSE(reg1.empty());
  EXPECT_EQ(reg1[0]->spec.kind, Kind::kFlipFlop);
}

TEST(MatchIndex, AgreesWithFullScanAcrossLibraries) {
  // matches() is a (kind, width) bucket lookup; it must return exactly
  // what a brute-force spec_implements scan over every cell returns, in
  // library insertion order — including the promotion pairings (AddSub
  // standing in for adders/subtractors, registers for flip-flops).
  std::vector<genus::ComponentSpec> needs = {
      genus::make_adder_spec(4),
      genus::make_adder_spec(2, false, false),
      genus::make_adder_spec(16),
      genus::make_subtractor_spec(2),
      genus::make_addsub_spec(2),
      genus::make_mux_spec(1, 4),
      genus::make_register_spec(4, false, false),
      genus::make_register_spec(1, false, false),
      genus::make_gate_spec(Op::kNand, 1, 2),
      genus::make_gate_spec(Op::kXor, 1, 2),
      genus::make_comparator_spec(4, OpSet{Op::kEq}),
      genus::make_alu_spec(4, genus::alu16_ops()),
  };
  {
    genus::ComponentSpec ff;
    ff.kind = Kind::kFlipFlop;
    ff.width = 1;
    ff.ops = OpSet{Op::kLoad};
    needs.push_back(ff);
  }
  for (const CellLibrary* lib : {&lsi_library(), &ttl_library()}) {
    for (const auto& need : needs) {
      std::vector<const Cell*> brute;
      for (const Cell& c : lib->all()) {
        if (genus::spec_implements(c.spec, need)) brute.push_back(&c);
      }
      EXPECT_EQ(lib->matches(need), brute)
          << lib->name() << " need " << need.key();
    }
  }
}

TEST(MatchIndex, SurvivesCopyAndMove) {
  // The index holds pointers into the cell store; copies must rebuild it.
  CellLibrary copy(lsi_library());
  EXPECT_EQ(copy.size(), lsi_library().size());
  const Cell* found = copy.find("ADD4");
  ASSERT_NE(found, nullptr);
  EXPECT_NE(found, lsi_library().find("ADD4"));  // the copy's own cell
  EXPECT_EQ(copy.matches(genus::make_adder_spec(4)).size(), 2u);

  CellLibrary moved(std::move(copy));
  EXPECT_EQ(moved.find("ADD4"), found);  // addresses stable across moves
  EXPECT_EQ(moved.matches(genus::make_adder_spec(4)).size(), 2u);
}

TEST(TtlLibrary, HasAluSlice) {
  const auto* t181 = ttl_library().find("T181");
  ASSERT_NE(t181, nullptr);
  EXPECT_EQ(t181->spec.kind, Kind::kAlu);
  EXPECT_EQ(t181->spec.width, 4);
  EXPECT_EQ(t181->spec.ops.size(), 10);
}

TEST(Databook, RoundTripsBothLibraries) {
  for (const CellLibrary* lib : {&lsi_library(), &ttl_library()}) {
    CellLibrary reparsed = parse_databook(emit_databook(*lib));
    EXPECT_EQ(reparsed.name(), lib->name());
    ASSERT_EQ(reparsed.size(), lib->size());
    for (const Cell& c : lib->all()) {
      const Cell* r = reparsed.find(c.name);
      ASSERT_NE(r, nullptr) << c.name;
      EXPECT_EQ(r->spec, c.spec) << c.name;
      EXPECT_DOUBLE_EQ(r->area, c.area) << c.name;
      EXPECT_DOUBLE_EQ(r->delay_ns, c.delay_ns) << c.name;
      EXPECT_EQ(r->description, c.description) << c.name;
    }
  }
}

TEST(Databook, ParseErrorsCarryLineNumbers) {
  EXPECT_THROW(parse_databook("CELL X KIND GATE AREA 1 DELAY 1\n"),
               ParseError);  // missing LIBRARY line
  try {
    parse_databook("LIBRARY L \"x\"\nCELL A KIND GATE AREA 1 DELAY 1\n"
                   "CELL B KIND NOPE AREA 1 DELAY 1\n");
    FAIL() << "expected a throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("NOPE"), std::string::npos);
  }
  EXPECT_THROW(parse_databook("LIBRARY L\nCELL A KIND GATE AREA 1\n"),
               ParseError);  // missing DELAY
  EXPECT_THROW(parse_databook("LIBRARY L\nCELL A KIND GATE OPS ( ADD AREA 1 "
                              "DELAY 1\n"),
               ParseError);  // unterminated ops list
  EXPECT_THROW(
      parse_databook("LIBRARY L\nCELL A KIND GATE AREA x DELAY 1\n"),
      ParseError);  // bad number
}

TEST(Databook, DuplicateCellNamesRejected) {
  EXPECT_THROW(parse_databook("LIBRARY L \"x\"\n"
                              "CELL A KIND GATE AREA 1 DELAY 1\n"
                              "CELL A KIND GATE AREA 2 DELAY 2\n"),
               Error);
}

TEST(Databook, CommentsAndFlagsParse) {
  auto lib = parse_databook(
      "# a comment line\n"
      "LIBRARY T \"test\"\n"
      "CELL R KIND REGISTER WIDTH 4 OPS ( LOAD ) EN ASET ARST TS "
      "AREA 10 DELAY 2 DESC \"weird register\"  # trailing comment\n");
  const Cell* r = lib.find("R");
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->spec.enable);
  EXPECT_TRUE(r->spec.async_set);
  EXPECT_TRUE(r->spec.async_reset);
  EXPECT_TRUE(r->spec.tristate);
  EXPECT_EQ(r->description, "weird register");
}

}  // namespace
}  // namespace bridge::cells
