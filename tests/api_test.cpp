// The unified request/response API: JSON value semantics, protocol
// golden round-trips (encode -> decode -> encode byte-identical),
// request-vs-direct synthesis equivalence, and the env-var precedence
// contract (BRIDGE_CACHE_BUDGET is a default an explicit request field
// overrides).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "api/api.h"
#include "base/diag.h"
#include "cells/cell.h"
#include "cells/registry.h"
#include "genus/spec.h"
#include "vhdl/vhdl.h"

namespace bridge {
namespace {

using api::Json;

// The dp8 netlist of tests/deadline_test.cpp: adder + mux datapath.
netlist::Module make_input_netlist() {
  netlist::Module input("dp8");
  netlist::NetIndex a = input.add_port("A", genus::PortDir::kIn, 8);
  netlist::NetIndex b = input.add_port("B", genus::PortDir::kIn, 8);
  netlist::NetIndex sel = input.add_port("SEL", genus::PortDir::kIn, 1);
  netlist::NetIndex out = input.add_port("OUT", genus::PortDir::kOut, 8);
  netlist::NetIndex sum = input.add_net("sum", 8);
  auto& add = input.add_spec_instance(
      "add0", genus::make_adder_spec(8, /*carry_in=*/false,
                                     /*carry_out=*/false));
  input.connect(add, "A", a);
  input.connect(add, "B", b);
  input.connect(add, "S", sum);
  auto& mux = input.add_spec_instance("mux0", genus::make_mux_spec(8, 2));
  input.connect(mux, "I0", a);
  input.connect(mux, "I1", sum);
  input.connect(mux, "SEL", sel);
  input.connect(mux, "OUT", out);
  return input;
}

TEST(JsonTest, ValueRoundTrips) {
  Json obj = Json::object();
  obj.set("s", "hi\n\"there\"")
      .set("i", 42)
      .set("d", 0.1)
      .set("b", true)
      .set("n", Json())
      .set("a", Json::array().push_back(1).push_back("two"));
  const std::string text = obj.dump();
  const Json back = Json::parse(text);
  EXPECT_EQ(back.dump(), text);
  EXPECT_EQ(back.at("s").string_value(), "hi\n\"there\"");
  EXPECT_EQ(back.at("i").integer(), 42);
  EXPECT_EQ(back.at("d").number(), 0.1);  // %.17g: exact double round-trip
  EXPECT_TRUE(back.at("b").bool_value());
  EXPECT_TRUE(back.at("n").is_null());
  EXPECT_EQ(back.at("a").items().size(), 2u);
}

TEST(JsonTest, ExactDoubleRoundTrip) {
  // Bit-exact metric transport is what makes wire fronts comparable to
  // in-process fronts.
  const double values[] = {0.1,       1.0 / 3.0, 38.4, 1e-300,
                           6.02e23,   -0.0,      2.5,  123456789.125,
                           9007199254740993.0};
  for (double v : values) {
    const Json back = Json::parse(api::format_json_number(v));
    EXPECT_EQ(back.number(), v) << api::format_json_number(v);
  }
}

TEST(JsonTest, MalformedInputsRaiseParseError) {
  const char* bad[] = {"",       "{",        "[1,",       "{\"a\"}",
                       "tru",    "01",       "1.",        "1e",
                       "\"\\x\"", "{}extra", "\"unterminated",
                       "{\"a\":1,}"};
  for (const char* text : bad) {
    EXPECT_THROW(Json::parse(text), ParseError) << text;
  }
}

TEST(JsonTest, NestingBombIsErrorNotCrash) {
  EXPECT_THROW(Json::parse(std::string(5000, '[')), ParseError);
  std::string deep;
  for (int i = 0; i < 2000; ++i) deep += "{\"a\":";
  EXPECT_THROW(Json::parse(deep), ParseError);
}

TEST(JsonTest, GarbageCorpusNeverCrashesOrLeaks) {
  // The parser-robustness corpus (tests/parser_robustness_test.cpp),
  // applied to the wire parser: ParseError or success, never anything
  // else.
  const std::vector<std::string> corpus = {
      "",
      "\n\n\n",
      std::string(5, '\0'),
      "\xff\xfe\x80\x81 binary junk \x01\x02",
      "))))((((",
      "library library library",
      "LIBRARY",
      "NAME:",
      "!@#$%^&*",
      std::string(10000, 'x'),
      "\"unterminated string",
      "/* unterminated comment",
  };
  for (const std::string& text : corpus) {
    try {
      Json::parse(text);
    } catch (const ParseError&) {
      // Malformed input reported as such.
    } catch (const std::exception& e) {
      ADD_FAILURE() << "leaked non-ParseError exception: " << e.what();
    }
  }
}

TEST(ApiGoldenTest, SpecRequestEncodeDecodeEncodeByteIdentical) {
  api::SynthesisRequest req;
  req.library = "LSI_LGC15";
  req.spec = genus::make_alu_spec(64, genus::alu16_ops());
  req.options.deadline_ms = 250;
  req.options.deadline_best_effort = true;
  req.options.emit_vhdl = true;
  req.options.extraction_cache_budget_bytes = 1 << 20;
  const std::string first = req.to_json();
  const api::SynthesisRequest decoded = api::SynthesisRequest::from_json(first);
  EXPECT_EQ(decoded.to_json(), first);
  EXPECT_EQ(decoded.library, req.library);
  ASSERT_TRUE(decoded.spec.has_value());
  EXPECT_EQ(*decoded.spec, *req.spec);
  EXPECT_EQ(decoded.options, req.options);
}

TEST(ApiGoldenTest, NetlistRequestEncodeDecodeEncodeByteIdentical) {
  api::SynthesisRequest req;
  req.library = "LSI_LGC15";
  req.input_netlist = make_input_netlist();
  const std::string first = req.to_json();
  const api::SynthesisRequest decoded = api::SynthesisRequest::from_json(first);
  EXPECT_EQ(decoded.to_json(), first);
}

TEST(ApiGoldenTest, NetlistCodecRoundTripsEveryConnectionKind) {
  netlist::Module m("conns");
  netlist::NetIndex a = m.add_port("A", genus::PortDir::kIn, 4);
  netlist::NetIndex y = m.add_port("Y", genus::PortDir::kOut, 4);
  netlist::NetIndex mode = m.add_net("mode", 1);
  auto& inst = m.add_spec_instance("g0", genus::make_gate_spec(genus::Op::kXor, 4),
                                   "ref-label");
  m.connect(inst, "I0", a, /*lo=*/0);
  m.connect_replicated(inst, "I1", mode, /*bit=*/0);
  m.connect(inst, "OUT", y);
  auto& add = m.add_spec_instance(
      "a0", genus::make_adder_spec(4, /*carry_in=*/true, /*carry_out=*/true));
  m.connect_const(add, "CI", 0);
  m.connect(add, "A", a);
  m.connect(add, "B", a);
  add.connections["CO"] = netlist::PortConn::open();
  m.connect(add, "S", y);

  const Json j = api::encode_netlist(m);
  const netlist::Module back = api::decode_netlist(j);
  EXPECT_EQ(api::encode_netlist(back).dump(), j.dump());
  EXPECT_EQ(back.instances().size(), 2u);
  EXPECT_EQ(back.instances().front().ref_name, "ref-label");
  // The replicated and const bindings survived structurally, not just
  // textually.
  const auto& bconn = back.instances().front().connections;
  EXPECT_TRUE(bconn.find("I1")->second.replicate);
  const auto& aconn = back.instances().back().connections;
  EXPECT_EQ(aconn.find("CI")->second.kind, netlist::PortConn::Kind::kConst);
  EXPECT_EQ(aconn.find("CO")->second.kind, netlist::PortConn::Kind::kOpen);
}

TEST(ApiGoldenTest, SpecCodecCoversConstructors) {
  const genus::ComponentSpec specs[] = {
      genus::make_adder_spec(16),
      genus::make_alu_spec(64, genus::alu16_ops()),
      genus::make_mux_spec(8, 4),
      genus::make_register_spec(8),
      genus::make_counter_spec(4, genus::OpSet{genus::Op::kCountUp}),
      genus::make_comparator_spec(8, genus::OpSet{genus::Op::kEq}),
      genus::make_multiplier_spec(8, 8),
      genus::make_barrel_shifter_spec(16, genus::OpSet{genus::Op::kShl}),
  };
  for (const genus::ComponentSpec& spec : specs) {
    const Json j = api::encode_spec(spec);
    const genus::ComponentSpec back = api::decode_spec(j);
    EXPECT_EQ(back, spec) << spec.key();
    EXPECT_EQ(api::encode_spec(back).dump(), j.dump()) << spec.key();
  }
}

TEST(ApiGoldenTest, ResultEncodeDecodeEncodeByteIdentical) {
  api::SynthesisResult res;
  res.status = "ok";
  res.deadline_hit = true;
  res.server_ms = 12.75;
  res.alternatives.push_back({67.2, 38.4, "adder-ripple-by-1 (ADDER:ADD1)",
                              "-- vhdl text\n"});
  res.alternatives.push_back({169.0, 16.0, "adder-cla-flat", ""});
  res.stats.combinations_evaluated = 34;
  res.stats.template_cache_hits = 31;
  res.has_profile = true;
  res.profile.name = "synthesize";
  res.profile.add_phase("expand", 1.5);
  res.profile.add_phase("evaluate", 2.25);
  res.profile.add_counter("combinations", 34);
  const std::string first = res.to_json();
  const api::SynthesisResult decoded = api::SynthesisResult::from_json(first);
  EXPECT_EQ(decoded.to_json(), first);
  EXPECT_EQ(decoded.alternatives.size(), 2u);
  EXPECT_EQ(decoded.alternatives[0].vhdl, "-- vhdl text\n");
  EXPECT_EQ(decoded.profile.phase_ms("evaluate"), 2.25);
  EXPECT_EQ(decoded.profile.counter("combinations"), 34);
}

TEST(ApiRequestTest, RejectsMalformedRequests) {
  EXPECT_THROW(api::SynthesisRequest::from_json("{}"), Error);
  // Both spec and netlist, or neither, is an error.
  EXPECT_THROW(api::SynthesisRequest::from_json(
                   R"({"library":"LSI_LGC15"})"),
               Error);
  api::SynthesisRequest both;
  both.library = "LSI_LGC15";
  both.spec = genus::make_adder_spec(4);
  both.input_netlist = make_input_netlist();
  EXPECT_THROW(api::SynthesisRequest::decode(both.encode()), Error);
  // Unknown enum names are errors, not defaults.
  EXPECT_THROW(api::SynthesisRequest::from_json(
                   R"({"library":"x","spec":{"kind":"FLUX_CAPACITOR"}})"),
               Error);
  EXPECT_THROW(
      api::SynthesisRequest::from_json(
          R"({"library":"x","spec":{"kind":"ADDER"},"options":{"filter":"bogus"}})")
          .options.space_options(),
      Error);
}

TEST(ApiRunTest, RequestMatchesDirectSynthesis) {
  api::SynthesisRequest req;
  req.library = cells::lsi_library().name();
  req.spec = genus::make_alu_spec(16, genus::alu16_ops());
  req.options.emit_vhdl = true;
  auto registry = cells::LibraryRegistry::with_builtins();
  const api::SynthesisResult res = api::run_request(req, registry);
  ASSERT_TRUE(res.ok()) << res.error;
  ASSERT_FALSE(res.alternatives.empty());

  dtas::Synthesizer direct(cells::lsi_library());
  const auto alts = direct.synthesize(*req.spec);
  EXPECT_TRUE(api::front_matches(res, alts, /*with_vhdl=*/true));
}

TEST(ApiRunTest, NetlistRequestMatchesDirectSynthesis) {
  api::SynthesisRequest req;
  req.library = cells::lsi_library().name();
  req.input_netlist = make_input_netlist();
  auto registry = cells::LibraryRegistry::with_builtins();
  // Through the wire form: encode -> decode -> run.
  const api::SynthesisResult res =
      api::run_request(api::SynthesisRequest::from_json(req.to_json()),
                       registry);
  ASSERT_TRUE(res.ok()) << res.error;

  dtas::Synthesizer direct(cells::lsi_library());
  const auto alts = direct.synthesize_netlist(*req.input_netlist);
  EXPECT_TRUE(api::front_matches(res, alts, /*with_vhdl=*/false));
}

TEST(ApiRunTest, UnknownLibraryIsErrorResult) {
  api::SynthesisRequest req;
  req.library = "NO_SUCH_BOOK";
  req.spec = genus::make_adder_spec(4);
  auto registry = cells::LibraryRegistry::with_builtins();
  const api::SynthesisResult res = api::run_request(req, registry);
  EXPECT_EQ(res.status, "error");
  // The error lists the known names, like LibraryRegistry::at.
  EXPECT_NE(res.error.find("NO_SUCH_BOOK"), std::string::npos);
}

TEST(ApiPrecedenceTest, ExplicitBudgetFieldOverridesEnvDefault) {
  // The consolidation contract: BRIDGE_CACHE_BUDGET is the documented
  // default for an unset (-1) budget field; an explicit field wins.
  ASSERT_EQ(setenv("BRIDGE_CACHE_BUDGET", "1234", 1), 0);
  api::SynthesisRequest req;
  req.library = cells::lsi_library().name();
  req.spec = genus::make_adder_spec(4);

  auto env_default = api::make_session(req, cells::lsi_library());
  EXPECT_EQ(env_default->extraction_cache().budget_bytes(), 1234u);

  req.options.extraction_cache_budget_bytes = 777;
  auto explicit_field = api::make_session(req, cells::lsi_library());
  EXPECT_EQ(explicit_field->extraction_cache().budget_bytes(), 777u);

  // 0 is also explicit: unbounded, not "use the env".
  req.options.extraction_cache_budget_bytes = 0;
  auto unbounded = api::make_session(req, cells::lsi_library());
  EXPECT_EQ(unbounded->extraction_cache().budget_bytes(), 0u);
  ASSERT_EQ(unsetenv("BRIDGE_CACHE_BUDGET"), 0);
}

TEST(ApiSessionTest, FingerprintSeparatesSpaceShapingOptionsOnly) {
  api::RequestOptions a;
  api::RequestOptions b;
  // Deadline and output switches do not shape the memoized space: one
  // warm session serves all of these.
  b.deadline_ms = 100;
  b.deadline_best_effort = true;
  b.emit_vhdl = true;
  b.include_profile = true;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.max_alternatives_per_node = 7;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(ApiSessionTest, DescribeMemoIsEncapsulated) {
  // The describe memo is reachable only through the narrow accessors
  // (the old describe_memo() handed out the mutable map).
  dtas::Synthesizer synth(cells::lsi_library());
  ASSERT_FALSE(synth.synthesize(genus::make_adder_spec(8)).empty());
  dtas::ExtractionCache& cache = synth.extraction_cache();
  EXPECT_GT(cache.describe_memo_size(), 0u);
  const dtas::ExtractionCache::DescribeKey absent{0, -1, -1};
  EXPECT_EQ(cache.find_describe(absent), nullptr);
  const std::string& stored = cache.memoize_describe(absent, "first");
  EXPECT_EQ(stored, "first");
  // First writer wins; the memo cannot be mutated from outside.
  EXPECT_EQ(cache.memoize_describe(absent, "second"), "first");
  ASSERT_NE(cache.find_describe(absent), nullptr);
  EXPECT_EQ(*cache.find_describe(absent), "first");
}

}  // namespace
}  // namespace bridge
