// Liberty-subset loader tests: boolean expressions, the group parser
// (with line-carrying errors), spec inference, skip diagnostics, and the
// bundled sky130-style library as a full retargeting workload.
#include <gtest/gtest.h>

#include "base/diag.h"
#include "dtas/synthesizer.h"
#include "liberty/boolexpr.h"
#include "liberty/liberty.h"

namespace bridge::liberty {
namespace {

using genus::Kind;
using genus::Op;
using genus::OpSet;

// --- boolean expressions --------------------------------------------------

TEST(BoolExpr, OperatorsAndPrecedence) {
  // OR is weakest: a & b | c  ==  (a & b) | c.
  auto e = BoolExpr::parse("a & b | c");
  EXPECT_TRUE(e.eval({{"a", false}, {"b", false}, {"c", true}}));
  EXPECT_FALSE(e.eval({{"a", true}, {"b", false}, {"c", false}}));
  // Postfix ' and prefix ! both negate.
  EXPECT_TRUE(BoolExpr::parse("a'").eval({{"a", false}}));
  EXPECT_TRUE(BoolExpr::parse("!a").eval({{"a", false}}));
  // Juxtaposition is AND; * and + are alternates for & and |.
  EXPECT_TRUE(BoolExpr::parse("a b").eval({{"a", true}, {"b", true}}));
  EXPECT_FALSE(BoolExpr::parse("a*b").eval({{"a", true}, {"b", false}}));
  EXPECT_TRUE(BoolExpr::parse("a+b").eval({{"a", false}, {"b", true}}));
  // Constants.
  EXPECT_TRUE(BoolExpr::parse("1").eval({}));
  EXPECT_FALSE(BoolExpr::parse("0 | 0").eval({}));
}

TEST(BoolExpr, VariablesAndTruthTable) {
  auto e = BoolExpr::parse("(A0 & !S) | (A1 & S)");
  EXPECT_EQ(e.variables(), (std::vector<std::string>{"A0", "A1", "S"}));
  // Truth table over {A, B}: AND is rows where both bits are set -> 0b1000.
  EXPECT_EQ(BoolExpr::parse("A & B").truth_table({"A", "B"}), 0b1000u);
  EXPECT_EQ(BoolExpr::parse("A ^ B").truth_table({"A", "B"}), 0b0110u);
}

TEST(BoolExpr, ParseErrors) {
  EXPECT_THROW(BoolExpr::parse("a &"), ParseError);
  EXPECT_THROW(BoolExpr::parse("(a | b"), ParseError);
  EXPECT_THROW(BoolExpr::parse("a ? b"), ParseError);
  EXPECT_THROW(BoolExpr::parse(""), ParseError);
}

// --- the Liberty group parser --------------------------------------------

constexpr const char* kTinyLib = R"(
/* block comment
   spanning lines */
library (tiny) {
  time_unit : "10ps";
  cell (INVX1) {
    area : 4.0;
    pin (A) { direction : input; }
    pin (Y) {
      direction : output;
      function : "!A";
      timing () {
        related_pin : "A";
        intrinsic_rise : 12.0;
        intrinsic_fall : 8.0;
      }
    }
  }
}
)";

TEST(LibertyParser, ParsesStructureAndTimeUnit) {
  Library lib = parse_liberty(kTinyLib);
  EXPECT_EQ(lib.name, "tiny");
  EXPECT_DOUBLE_EQ(lib.time_scale_ns, 0.01);  // 10ps
  ASSERT_EQ(lib.cells.size(), 1u);
  const Cell& inv = lib.cells[0];
  EXPECT_EQ(inv.name, "INVX1");
  EXPECT_DOUBLE_EQ(inv.area, 4.0);
  const Pin* y = inv.find_pin("Y");
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(y->dir, PinDir::kOutput);
  EXPECT_EQ(y->function, "!A");
  EXPECT_DOUBLE_EQ(y->max_delay(), 12.0);
}

TEST(LibertyParser, ErrorsCarryLineNumbers) {
  // Missing ';' after the area attribute (line 3 of this text).
  const char* missing_semi =
      "library (l) {\n"
      "  cell (c) {\n"
      "    area : 1.0\n"
      "  }\n"
      "}\n";
  try {
    parse_liberty(missing_semi);
    FAIL() << "expected a throw";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 4);  // the '}' where the ';' was expected
  }

  // Unterminated group.
  EXPECT_THROW(parse_liberty("library (l) { cell (c) {"), ParseError);
  // Bad number in area.
  EXPECT_THROW(
      parse_liberty("library (l) { cell (c) { area : abc; } }"),
      ParseError);
  // Not a library at top level.
  EXPECT_THROW(parse_liberty("wibble (l) { }"), ParseError);
  // Unterminated string.
  EXPECT_THROW(parse_liberty("library (l) { time_unit : \"1ns"), ParseError);
}

TEST(LibertyParser, LineNumbersSurviveMultiLineStrings) {
  // A string that swallows a newline (e.g. a lost closing quote) must not
  // desynchronize the line counter for later diagnostics.
  const char* text =
      "library (l) {\n"           // line 1
      "  cell (c) {\n"            // line 2
      "    comment : \"spans\n"   // lines 3-4
      "two lines\";\n"
      "    pin (A) { direction : bogus; }\n"  // line 5
      "  }\n"
      "}\n";
  try {
    parse_liberty(text);
    FAIL() << "expected a throw";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 5);
  }
}

TEST(LibertyParser, SkipsUnknownAttributesAndGroups) {
  Library lib = parse_liberty(
      "library (l) {\n"
      "  delay_model : table_lookup;\n"
      "  operating_conditions (fast) { process : 1; }\n"
      "  lu_table_template (t) { variable_1 : input_net_transition; }\n"
      "  cell (c) {\n"
      "    area : 2.0;\n"
      "    cell_leakage_power : 0.3;\n"
      "    pin (A) { direction : input; capacitance : 0.001; }\n"
      "    pin (X) { direction : output; function : \"A\"; }\n"
      "  }\n"
      "}\n");
  ASSERT_EQ(lib.cells.size(), 1u);
  EXPECT_EQ(lib.cells[0].pins.size(), 2u);
}

// --- spec inference -------------------------------------------------------

Cell comb_cell(const std::string& name,
               const std::vector<std::string>& inputs,
               const std::vector<std::string>& functions) {
  Cell c;
  c.name = name;
  for (const std::string& in : inputs) {
    Pin p;
    p.name = in;
    p.dir = PinDir::kInput;
    c.pins.push_back(p);
  }
  int i = 0;
  for (const std::string& fn : functions) {
    Pin p;
    p.name = "X" + std::to_string(i++);
    p.dir = PinDir::kOutput;
    p.function = fn;
    c.pins.push_back(p);
  }
  return c;
}

TEST(SpecInference, RecognizesTheCoreGates) {
  std::string why;
  auto inv = infer_spec(comb_cell("inv", {"A"}, {"!A"}), &why);
  ASSERT_TRUE(inv.has_value()) << why;
  EXPECT_EQ(*inv, genus::make_gate_spec(Op::kLnot, 1));

  auto nand2 = infer_spec(comb_cell("nand2", {"A", "B"}, {"!(A & B)"}), &why);
  ASSERT_TRUE(nand2.has_value()) << why;
  EXPECT_EQ(*nand2, genus::make_gate_spec(Op::kNand, 1, 2));

  // Recognition is semantic, not syntactic: De Morgan'd NAND still infers.
  auto demorgan = infer_spec(comb_cell("n", {"A", "B"}, {"!A | !B"}), &why);
  ASSERT_TRUE(demorgan.has_value()) << why;
  EXPECT_EQ(*demorgan, genus::make_gate_spec(Op::kNand, 1, 2));

  auto nand4 = infer_spec(
      comb_cell("nand4", {"A", "B", "C", "D"}, {"!(A & B & C & D)"}), &why);
  ASSERT_TRUE(nand4.has_value()) << why;
  EXPECT_EQ(*nand4, genus::make_gate_spec(Op::kNand, 1, 4));
}

TEST(SpecInference, RecognizesMuxesWhateverThePinOrder) {
  std::string why;
  auto mux = infer_spec(
      comb_cell("mux2", {"A0", "A1", "S"}, {"(A0 & !S) | (A1 & S)"}), &why);
  ASSERT_TRUE(mux.has_value()) << why;
  EXPECT_EQ(*mux, genus::make_mux_spec(1, 2));

  // Select pin declared first: still a mux.
  auto mux_s_first = infer_spec(
      comb_cell("mux2b", {"S", "D0", "D1"}, {"(D0 & !S) | (D1 & S)"}), &why);
  ASSERT_TRUE(mux_s_first.has_value()) << why;
  EXPECT_EQ(*mux_s_first, genus::make_mux_spec(1, 2));

  auto mux4 = infer_spec(
      comb_cell("mux4", {"A", "B", "C", "D", "S0", "S1"},
                {"(A & !S0 & !S1) | (B & S0 & !S1) | (C & !S0 & S1) | "
                 "(D & S0 & S1)"}),
      &why);
  ASSERT_TRUE(mux4.has_value()) << why;
  EXPECT_EQ(*mux4, genus::make_mux_spec(1, 4));
}

TEST(SpecInference, RecognizesAdders) {
  std::string why;
  auto fa = infer_spec(
      comb_cell("fa", {"A", "B", "CIN"},
                {"A ^ B ^ CIN", "(A & B) | (A & CIN) | (B & CIN)"}),
      &why);
  ASSERT_TRUE(fa.has_value()) << why;
  EXPECT_EQ(*fa, genus::make_adder_spec(1, true, true));

  auto ha = infer_spec(comb_cell("ha", {"A", "B"}, {"A ^ B", "A & B"}), &why);
  ASSERT_TRUE(ha.has_value()) << why;
  EXPECT_EQ(*ha, genus::make_adder_spec(1, false, true));
}

TEST(SpecInference, RecognizesTristateBuffers) {
  // A realistic tristate buffer: the enable pin appears only in the
  // three_state condition, not in the data function.
  Cell ts = comb_cell("tbuf", {"A", "OE"}, {"A"});
  ts.pins.back().three_state = true;
  std::string why;
  auto spec = infer_spec(ts, &why);
  ASSERT_TRUE(spec.has_value()) << why;
  EXPECT_EQ(spec->kind, Kind::kTristate);
  EXPECT_TRUE(spec->tristate);

  // A tristate with a non-buffer data function stays outside the subset.
  Cell tsnand = comb_cell("tnand", {"A", "B", "OE"}, {"!(A & B)"});
  tsnand.pins.back().three_state = true;
  EXPECT_FALSE(infer_spec(tsnand, &why).has_value());
  EXPECT_NE(why.find("three_state"), std::string::npos);

  // A constant-false three_state condition is not a tristate output:
  // the cell loads as a plain buffer.
  Library parsed = parse_liberty(
      "library (l) { cell (b) { area : 1;\n"
      "  pin (A) { direction : input; }\n"
      "  pin (X) { direction : output; function : \"A\";\n"
      "            three_state : \"0\"; } } }\n");
  auto buf = infer_spec(parsed.cells[0], &why);
  ASSERT_TRUE(buf.has_value()) << why;
  EXPECT_EQ(*buf, genus::make_gate_spec(Op::kBuf, 1));
}

Cell ff_cell(const std::string& name, const std::vector<std::string>& inputs,
             const FlipFlop& ff) {
  Cell c;
  c.name = name;
  c.ff = ff;
  for (const std::string& in : inputs) {
    Pin p;
    p.name = in;
    p.dir = PinDir::kInput;
    c.pins.push_back(p);
  }
  Pin q;
  q.name = "Q";
  q.dir = PinDir::kOutput;
  q.function = ff.state;
  c.pins.push_back(q);
  return c;
}

TEST(SpecInference, RecognizesFlipFlops) {
  std::string why;
  auto spec = infer_spec(
      ff_cell("dff", {"CLK", "D", "RST"},
              FlipFlop{"IQ", "IQN", "CLK", "D", /*clear=*/"!RST",
                       /*preset=*/""}),
      &why);
  ASSERT_TRUE(spec.has_value()) << why;
  EXPECT_EQ(spec->kind, Kind::kFlipFlop);
  EXPECT_TRUE(spec->async_reset);
  EXPECT_FALSE(spec->async_set);
  EXPECT_EQ(spec->ops, OpSet{Op::kLoad});

  // Clock-enable FF: next_state muxes between D and the held state.
  auto espec = infer_spec(
      ff_cell("edff", {"CLK", "D", "DE"},
              FlipFlop{"IQ", "IQN", "CLK", "(DE & D) | (!DE & IQ)", "", ""}),
      &why);
  ASSERT_TRUE(espec.has_value()) << why;
  EXPECT_TRUE(espec->enable);

  // The ACTIVE-LOW enable form (state held while the pin is high) is
  // skipped: the spec model cannot express enable polarity.
  EXPECT_FALSE(
      infer_spec(ff_cell("nedff", {"CLK", "D", "EN"},
                         FlipFlop{"IQ", "IQN", "CLK",
                                  "(!EN & D) | (EN & IQ)", "", ""}),
                 &why)
          .has_value());

  // A toggle FF's next_state depends only on the state: not a load FF.
  EXPECT_FALSE(infer_spec(ff_cell("tff", {"CLK"},
                                  FlipFlop{"IQ", "IQN", "CLK", "!IQ", "", ""}),
                          &why)
                   .has_value());

  // An inverted data input stores the complement — the spec model cannot
  // express that polarity, so the cell is skipped, not mis-loaded.
  EXPECT_FALSE(infer_spec(ff_cell("ndff", {"CLK", "D"},
                                  FlipFlop{"IQ", "IQN", "CLK", "!D", "", ""}),
                          &why)
                   .has_value());
  EXPECT_NE(why.find("next_state"), std::string::npos);

  // A typo'd next_state referencing a pin the cell does not have is a
  // skip diagnostic, not a silently-loaded DFF.
  EXPECT_FALSE(infer_spec(ff_cell("typo", {"CLK", "D"},
                                  FlipFlop{"IQ", "IQN", "CLK", "DT", "", ""}),
                          &why)
                   .has_value());
  EXPECT_NE(why.find("DT"), std::string::npos);
}

TEST(SpecInference, SkipsUnsupportedCellsWithDiagnostics) {
  std::string why;
  // AOI gate: no GENUS spec.
  EXPECT_FALSE(infer_spec(
                   comb_cell("aoi21", {"A1", "A2", "B1"},
                             {"!((A1 & A2) | B1)"}),
                   &why)
                   .has_value());
  EXPECT_NE(why.find("unrecognized"), std::string::npos);

  // Latch.
  Cell latch;
  latch.name = "dlatch";
  latch.is_latch = true;
  EXPECT_FALSE(infer_spec(latch, &why).has_value());
  EXPECT_NE(why.find("latch"), std::string::npos);

  // Constant tie cell.
  EXPECT_FALSE(infer_spec(comb_cell("tiehi", {"A"}, {"1"}), &why).has_value());

  // Wide fan-in beyond the 6-input recognition subset.
  EXPECT_FALSE(infer_spec(comb_cell("nand8",
                                    {"A", "B", "C", "D", "E", "F", "G", "H"},
                                    {"!(A & B & C & D & E & F & G & H)"}),
                          &why)
                   .has_value());
  EXPECT_NE(why.find("6 input"), std::string::npos);
}

TEST(SpecInference, ConversionSkipsDoesNotCrash) {
  LoadReport report;
  cells::CellLibrary lib = load_liberty(
      "library (l) {\n"
      "  cell (good) { area : 2; pin (A) { direction : input; }\n"
      "    pin (X) { direction : output; function : \"!A\"; } }\n"
      "  cell (bad) { area : 3; pin (A) { direction : input; }\n"
      "    pin (B) { direction : input; }\n"
      "    pin (C) { direction : input; }\n"
      "    pin (X) { direction : output; function : \"(A & B) | !C\"; } }\n"
      "}\n",
      &report);
  EXPECT_EQ(report.recognized, 1);
  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_EQ(report.skipped[0].cell, "bad");
  EXPECT_EQ(lib.size(), 1);
  EXPECT_NE(lib.find("good"), nullptr);
  EXPECT_NE(report.text().find("bad"), std::string::npos);
}

TEST(SpecInference, NormalizesAreaToNand2Equivalents) {
  // The 4x-drive NAND2 is listed first: normalization must still use the
  // smallest NAND2 as the base, independent of file order.
  const char* text =
      "library (l) {\n"
      "  cell (nand_4) { area : 12.0; pin (A) { direction : input; }\n"
      "    pin (B) { direction : input; }\n"
      "    pin (Y) { direction : output; function : \"!(A & B)\"; } }\n"
      "  cell (nand) { area : 5.0; pin (A) { direction : input; }\n"
      "    pin (B) { direction : input; }\n"
      "    pin (Y) { direction : output; function : \"!(A & B)\"; } }\n"
      "  cell (inv) { area : 2.5; pin (A) { direction : input; }\n"
      "    pin (Y) { direction : output; function : \"!A\"; } }\n"
      "}\n";
  cells::CellLibrary norm = load_liberty(text);
  EXPECT_DOUBLE_EQ(norm.find("nand")->area, 1.0);
  EXPECT_DOUBLE_EQ(norm.find("nand_4")->area, 2.4);
  EXPECT_DOUBLE_EQ(norm.find("inv")->area, 0.5);

  LoadOptions raw;
  raw.normalize_area = false;
  cells::CellLibrary unnorm = load_liberty(text, nullptr, raw);
  EXPECT_DOUBLE_EQ(unnorm.find("nand")->area, 5.0);
}

// --- the bundled library as a retargeting workload ------------------------

std::string bundled_lib_path() {
  return std::string(BRIDGE_LIBS_DIR) + "/sample_sky130_subset.lib";
}

TEST(BundledLibrary, LoadsWithExpectedCells) {
  LoadReport report;
  cells::CellLibrary lib = load_liberty_file(bundled_lib_path(), &report);
  EXPECT_EQ(lib.name(), "sample_sky130_subset");
  EXPECT_EQ(report.recognized, 16);
  EXPECT_EQ(report.skipped.size(), 3u);  // tie cell, AOI, latch

  const cells::Cell* fa = lib.find("sky_fa_1");
  ASSERT_NE(fa, nullptr);
  EXPECT_EQ(fa->spec, genus::make_adder_spec(1, true, true));
  // time_unit is 1ns and the worst output arc of the adder is 0.35.
  EXPECT_DOUBLE_EQ(fa->delay_ns, 0.35);
  // Areas are normalized: NAND2 is 1.0 equivalent gates.
  EXPECT_DOUBLE_EQ(lib.find("sky_nand2_1")->area, 1.0);

  const cells::Cell* dff = lib.find("sky_dfrtp_1");
  ASSERT_NE(dff, nullptr);
  EXPECT_EQ(dff->spec.kind, Kind::kFlipFlop);
  EXPECT_TRUE(dff->spec.async_reset);
}

TEST(BundledLibrary, SynthesizesAnEightBitAdderPareto) {
  cells::CellLibrary lib = load_liberty_file(bundled_lib_path());
  dtas::Synthesizer synth(lib);
  auto alts = synth.synthesize(genus::make_adder_spec(8));
  ASSERT_FALSE(alts.empty());
  for (const auto& a : alts) {
    EXPECT_GT(a.metric.area, 0.0);
    EXPECT_GT(a.metric.delay, 0.0);
  }
  // The library's 1-bit registers ripple into an 8-bit register too.
  auto regs = synth.synthesize(
      genus::make_register_spec(8, /*enable=*/false, /*async_reset=*/true));
  EXPECT_FALSE(regs.empty());
}

}  // namespace
}  // namespace bridge::liberty
