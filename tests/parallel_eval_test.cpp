// Parallel-vs-serial equivalence for the sharded design-space odometer.
//
// SpaceOptions::threads shards the plan odometer across worker threads;
// the contract (design_space.h) is that the result is *bit-identical* to
// the serial evaluator at every thread count: same alternative fronts,
// exactly equal metric doubles, same descriptions — across all three
// registry libraries, for spec-level synthesis and whole-netlist
// synthesis alike. Prune statistics are the one thing allowed to move:
// shards see different bound fronts, so combinations_pruned (and its
// complement combinations_evaluated) may differ between thread counts,
// but their sum — the enumerated combination count — may not, and the
// filtered fronts never may.
//
// These tests force small shard sizes so modest workloads genuinely
// exercise the parallel path (asserted via SpaceStats::parallel_odometers)
// even though their combination counts sit below the production shard
// threshold. Under -fsanitize=thread this file is the primary race
// exercise for the pool, the bound exchange, and the shard merge.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "base/thread_pool.h"
#include "cells/registry.h"
#include "dtas/synthesizer.h"
#include "liberty/liberty.h"
#include "netlist/netlist.h"

namespace bridge {
namespace {

using genus::ComponentSpec;
using genus::Op;
using genus::OpSet;

/// All three registry libraries: both built-ins plus the bundled Liberty
/// import.
const cells::LibraryRegistry& registry() {
  static cells::LibraryRegistry reg = [] {
    auto r = cells::LibraryRegistry::with_builtins();
    r.load_liberty_file(std::string(BRIDGE_LIBS_DIR) +
                        "/sample_sky130_subset.lib");
    return r;
  }();
  return reg;
}

/// Dense-sweep options with a shard size small enough that test-sized
/// odometers run parallel at the requested thread count.
dtas::SpaceOptions sweep_options(int threads) {
  dtas::SpaceOptions opt;
  opt.min_delay_gain = 0.0;
  opt.threads = threads;
  opt.min_combinations_per_shard = 16;
  return opt;
}

using Front = std::vector<dtas::AlternativeDesign>;

void expect_identical(const Front& a, const Front& b,
                      const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].metric.area, b[i].metric.area) << context << " alt " << i;
    EXPECT_EQ(a[i].metric.delay, b[i].metric.delay)
        << context << " alt " << i;
    EXPECT_EQ(a[i].description, b[i].description) << context << " alt " << i;
  }
}

/// An eight-spec datapath whose whole-netlist odometer is large enough to
/// shard: registered operand -> ALU -> adder -> subtractor -> comparator
/// -> mux -> xor merge -> output register.
netlist::Module make_datapath() {
  netlist::Module m("pardp");
  const auto A = m.add_port("A", genus::PortDir::kIn, 8);
  const auto B = m.add_port("B", genus::PortDir::kIn, 8);
  const auto C = m.add_port("C", genus::PortDir::kIn, 8);
  const auto F = m.add_port("F", genus::PortDir::kIn, 4);
  const auto CI = m.add_port("CI", genus::PortDir::kIn, 1);
  const auto SEL = m.add_port("SEL", genus::PortDir::kIn, 1);
  const auto CLK = m.add_port("CLK", genus::PortDir::kIn, 1);
  const auto EN = m.add_port("EN", genus::PortDir::kIn, 1);
  const auto ARST = m.add_port("ARST", genus::PortDir::kIn, 1);
  const auto OUT = m.add_port("OUT", genus::PortDir::kOut, 8);
  const auto EQ = m.add_port("EQ", genus::PortDir::kOut, 1);
  const auto ra = m.add_net("ra", 8);
  const auto alu_out = m.add_net("alu_out", 8);
  const auto sum = m.add_net("sum", 8);
  const auto diff = m.add_net("diff", 8);
  const auto muxed = m.add_net("muxed", 8);
  const auto xr = m.add_net("xr", 8);

  auto& rin = m.add_spec_instance("rin", genus::make_register_spec(8));
  m.connect(rin, "D", A);
  m.connect(rin, "CLK", CLK);
  m.connect(rin, "EN", EN);
  m.connect(rin, "ARST", ARST);
  m.connect(rin, "Q", ra);
  auto& alu =
      m.add_spec_instance("alu0", genus::make_alu_spec(8, genus::alu16_ops()));
  m.connect(alu, "A", ra);
  m.connect(alu, "B", B);
  m.connect(alu, "CI", CI);
  m.connect(alu, "F", F);
  m.connect(alu, "OUT", alu_out);
  auto& add =
      m.add_spec_instance("add0", genus::make_adder_spec(8, false, false));
  m.connect(add, "A", alu_out);
  m.connect(add, "B", C);
  m.connect(add, "S", sum);
  auto& sub = m.add_spec_instance("sub0", genus::make_subtractor_spec(8));
  m.connect(sub, "A", sum);
  m.connect(sub, "B", C);
  m.connect(sub, "S", diff);
  auto& cmp = m.add_spec_instance(
      "cmp0", genus::make_comparator_spec(8, OpSet{Op::kEq}));
  m.connect(cmp, "A", sum);
  m.connect(cmp, "B", C);
  m.connect(cmp, "EQ", EQ);
  auto& mux = m.add_spec_instance("mux0", genus::make_mux_spec(8, 2));
  m.connect(mux, "I0", alu_out);
  m.connect(mux, "I1", diff);
  m.connect(mux, "SEL", SEL);
  m.connect(mux, "OUT", muxed);
  auto& xg = m.add_spec_instance("xor0", genus::make_gate_spec(Op::kXor, 8, 2));
  m.connect(xg, "I0", muxed);
  m.connect(xg, "I1", sum);
  m.connect(xg, "OUT", xr);
  auto& rout =
      m.add_spec_instance("rout", genus::make_register_spec(8, false, true));
  m.connect(rout, "D", xr);
  m.connect(rout, "CLK", CLK);
  m.connect(rout, "ARST", ARST);
  m.connect(rout, "Q", OUT);
  return m;
}

TEST(ParallelEvaluation, SpecFrontsIdenticalAcrossThreadCounts) {
  const std::vector<std::pair<std::string, ComponentSpec>> specs = {
      {"Alu16", genus::make_alu_spec(16, genus::alu16_ops())},
      {"Adder32", genus::make_adder_spec(32)},
      {"Mul8x8", genus::make_multiplier_spec(8, 8)},
  };
  for (const cells::CellLibrary* lib : registry().all()) {
    for (const auto& [label, spec] : specs) {
      dtas::Synthesizer serial(*lib, sweep_options(1));
      const Front base = serial.synthesize(spec);
      EXPECT_EQ(serial.space().stats().parallel_odometers, 0)
          << lib->name() << "/" << label;
      for (int threads : {2, 8}) {
        dtas::Synthesizer parallel(*lib, sweep_options(threads));
        expect_identical(parallel.synthesize(spec), base,
                         lib->name() + "/" + label + " threads " +
                             std::to_string(threads));
      }
    }
  }
}

TEST(ParallelEvaluation, NetlistFrontsIdenticalAcrossThreadCounts) {
  const netlist::Module input = make_datapath();
  ASSERT_TRUE(netlist::check_module(input).empty());
  for (const cells::CellLibrary* lib : registry().all()) {
    dtas::Synthesizer serial(*lib, sweep_options(1));
    const Front base = serial.synthesize_netlist(input);
    for (int threads : {2, 8}) {
      dtas::Synthesizer parallel(*lib, sweep_options(threads));
      expect_identical(parallel.synthesize_netlist(input), base,
                       lib->name() + " netlist threads " +
                           std::to_string(threads));
      // The point of the test: the parallel path must actually run. Only
      // the LSI book yields an odometer big enough to shard here; the
      // other libraries' sweeps stay under two shards and (correctly)
      // take the serial path.
      if (lib->name() == "LSI_LGC15") {
        EXPECT_GT(parallel.space().stats().parallel_odometers, 0)
            << lib->name() << " threads " << threads;
      }
    }
  }
}

TEST(ParallelEvaluation, MatchesReferenceEvaluatorAtEightThreads) {
  // Ties the parallel compiled evaluator all the way back to the original
  // functional evaluator in one step.
  const netlist::Module input = make_datapath();
  dtas::SpaceOptions reference = sweep_options(1);
  reference.use_compiled_plan = false;
  reference.bound_prune = false;
  dtas::Synthesizer a(cells::lsi_library(), sweep_options(8));
  dtas::Synthesizer b(cells::lsi_library(), reference);
  expect_identical(a.synthesize_netlist(input), b.synthesize_netlist(input),
                   "8-thread compiled vs serial reference");
}

TEST(ParallelEvaluation, EnumerationAccountingInvariant) {
  // Shards prune against different bound fronts, so the evaluated/pruned
  // split may shift with the thread count — but every enumerated
  // combination lands in exactly one bucket, so the sum may not, and the
  // fronts may not (checked above).
  const netlist::Module input = make_datapath();
  long expected_sum = -1;
  for (int threads : {1, 2, 8}) {
    dtas::Synthesizer synth(cells::lsi_library(), sweep_options(threads));
    ASSERT_FALSE(synth.synthesize_netlist(input).empty());
    const dtas::SpaceStats& stats = synth.space().stats();
    const long sum =
        stats.combinations_evaluated + stats.combinations_pruned;
    if (expected_sum < 0) {
      expected_sum = sum;
    } else {
      EXPECT_EQ(sum, expected_sum) << "threads " << threads;
    }
  }
  EXPECT_GT(expected_sum, 0);
}

TEST(ParallelEvaluation, SerialAtOneThreadNeverCreatesAPool) {
  dtas::SpaceOptions opt = sweep_options(1);
  dtas::Synthesizer synth(cells::lsi_library(), opt);
  synth.synthesize_netlist(make_datapath());
  EXPECT_EQ(synth.space().stats().parallel_odometers, 0);
  EXPECT_EQ(synth.space().stats().odometer_shards, 0);
}

TEST(ParallelEvaluation, NodeParallelEngagesAndMatchesSerial) {
  // The antichain fan-out (SpaceOptions::node_parallel) is the second
  // parallel axis: independent SpecNodes of one expansion DAG evaluated
  // as pool batches. Contract: it actually engages on a real workload at
  // threads > 1, and the front is bit-identical to both the serial run
  // and the odometer-only parallel run.
  const ComponentSpec alu = genus::make_alu_spec(16, genus::alu16_ops());
  for (const cells::CellLibrary* lib : registry().all()) {
    dtas::Synthesizer serial(*lib, sweep_options(1));
    const Front base = serial.synthesize(alu);
    EXPECT_EQ(serial.space().stats().node_parallel_nodes, 0)
        << lib->name() << ": serial must never take the node-parallel path";

    dtas::Synthesizer node_par(*lib, sweep_options(8));
    expect_identical(node_par.synthesize(alu), base,
                     lib->name() + " node-parallel vs serial");
    EXPECT_GT(node_par.space().stats().node_parallel_nodes, 0)
        << lib->name() << ": a 16-bit ALU expansion has multi-node "
                          "antichains, so the fan-out must engage";
    EXPECT_GT(node_par.space().stats().node_parallel_levels, 0)
        << lib->name();

    dtas::SpaceOptions odometer_only = sweep_options(8);
    odometer_only.node_parallel = false;
    dtas::Synthesizer no_fanout(*lib, odometer_only);
    expect_identical(no_fanout.synthesize(alu), base,
                     lib->name() + " node_parallel off vs serial");
    EXPECT_EQ(no_fanout.space().stats().node_parallel_nodes, 0)
        << lib->name() << ": the toggle must fully disable the fan-out";
  }
}

TEST(ParallelEvaluation, NodeParallelNetlistFrontsIdentical) {
  // Whole-netlist synthesis drives evaluate() once per instance spec;
  // each entry levelizes and fans out independently. Same bit-identity
  // bar as the spec-level test, plus the enumeration accounting
  // invariant: the evaluated+pruned sum is thread-count independent.
  const netlist::Module input = make_datapath();
  dtas::Synthesizer serial(cells::lsi_library(), sweep_options(1));
  const Front base = serial.synthesize_netlist(input);
  const dtas::SpaceStats& serial_stats = serial.space().stats();
  for (int threads : {2, 8}) {
    dtas::Synthesizer parallel(cells::lsi_library(), sweep_options(threads));
    expect_identical(parallel.synthesize_netlist(input), base,
                     "node-parallel netlist threads " +
                         std::to_string(threads));
    const dtas::SpaceStats& stats = parallel.space().stats();
    EXPECT_GT(stats.node_parallel_nodes, 0) << "threads " << threads;
    EXPECT_EQ(stats.combinations_evaluated + stats.combinations_pruned,
              serial_stats.combinations_evaluated +
                  serial_stats.combinations_pruned)
        << "threads " << threads;
  }
}

TEST(ThreadPool, RunsEveryTaskExactlyOnceAcrossReuse) {
  base::ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3);
  for (int round = 0; round < 3; ++round) {
    const int n = 100 + round;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.run(n, [&](int task) { hits[task].fetch_add(1); });
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "round " << round << " task " << i;
    }
  }
  // Introspection: three rounds of 100/101/102 tasks ran to completion.
  EXPECT_EQ(pool.runs(), 3);
  EXPECT_EQ(pool.tasks_executed(), 100 + 101 + 102);
  EXPECT_EQ(pool.peak_queue_depth(), 102);
  // Degenerate cases: no tasks, and a pool with no workers (caller-only).
  pool.run(0, [&](int) { FAIL() << "no task should run"; });
  EXPECT_EQ(pool.runs(), 3);  // an empty run is not a round
  base::ThreadPool empty(0);
  std::atomic<int> count{0};
  empty.run(7, [&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 7);
  EXPECT_EQ(empty.runs(), 1);
  EXPECT_EQ(empty.tasks_executed(), 7);
  EXPECT_EQ(empty.peak_queue_depth(), 7);
}

TEST(ThreadPool, SlotIdsStayInRangeAndExceptionsPropagate) {
  base::ThreadPool pool(2);
  // Slots identify the executing thread: 0 = caller, 1..workers().
  std::atomic<bool> slot_out_of_range{false};
  pool.run(64, [&](int, int slot) {
    if (slot < 0 || slot > 2) slot_out_of_range.store(true);
  });
  EXPECT_FALSE(slot_out_of_range.load());
  // An exception from one task is rethrown from run() after every task
  // has finished, and the pool stays usable afterwards.
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.run(10,
                        [&](int task) {
                          ran.fetch_add(1);
                          if (task == 3) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 10);
  std::atomic<int> after{0};
  pool.run(5, [&](int) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 5);
}

TEST(ThreadPool, NestedRunOnSamePoolExecutesInline) {
  // Node-parallel evaluation nests odometer sharding inside antichain
  // batches on one pool; the contract (thread_pool.h) is that a task
  // calling run() on its own pool executes the nested batch inline —
  // every task still runs, no deadlock even when the outer batch
  // saturates all workers.
  base::ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  std::atomic<bool> inner_slot_bad{false};
  const int kOuter = 8;   // > workers+1: every thread carries outer tasks
  const int kInner = 13;
  pool.run(kOuter, [&](int) {
    pool.run(kInner, [&](int, int slot) {
      // Inline execution reports the caller slot as 0.
      if (slot != 0) inner_slot_bad.store(true);
      inner_total.fetch_add(1);
    });
  });
  EXPECT_EQ(inner_total.load(), kOuter * kInner);
  EXPECT_FALSE(inner_slot_bad.load());
  // The pool survives nesting and still fork-joins normally.
  std::atomic<int> after{0};
  pool.run(5, [&](int) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 5);
}

TEST(ThreadPool, NestedRunPropagatesExceptionsAndCrossPoolNestingParks) {
  base::ThreadPool pool(2);
  // Inline nested run: an exception aborts the nested batch immediately
  // and propagates out through the outer run()'s late rethrow.
  std::atomic<int> nested_ran{0};
  EXPECT_THROW(
      pool.run(4,
               [&](int) {
                 pool.run(6, [&](int task) {
                   nested_ran.fetch_add(1);
                   if (task == 2) throw std::runtime_error("nested boom");
                 });
               }),
      std::runtime_error);
  // Each outer task's nested batch stopped at its throwing task (3 of 6).
  EXPECT_EQ(nested_ran.load() % 3, 0);
  EXPECT_GE(nested_ran.load(), 3);
  // Cross-pool nesting is not the inline path: a task on pool A doing a
  // fork-join on pool B gets B's real parallelism, and both pools stay
  // usable afterwards.
  // (one outer task: run() is single-entry per pool, so only one task may
  // drive `other` at a time)
  base::ThreadPool other(2);
  std::atomic<int> cross{0};
  pool.run(1, [&](int) {
    other.run(10, [&](int) { cross.fetch_add(1); });
  });
  EXPECT_EQ(cross.load(), 10);
  std::atomic<int> check{0};
  pool.run(4, [&](int) { check.fetch_add(1); });
  other.run(4, [&](int) { check.fetch_add(1); });
  EXPECT_EQ(check.load(), 8);
}

}  // namespace
}  // namespace bridge
