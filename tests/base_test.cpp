// Unit tests for src/base: bit vectors, width expressions, string helpers.
#include <gtest/gtest.h>

#include <cctype>
#include <random>
#include <sstream>

#include "base/bitvec.h"
#include "base/diag.h"
#include "base/strutil.h"
#include "base/symbol.h"
#include "base/widthexpr.h"

namespace bridge {
namespace {

TEST(BitVec, ConstructionAndAccess) {
  BitVec v(8, 0xA5);
  EXPECT_EQ(v.width(), 8);
  EXPECT_EQ(v.to_uint64(), 0xA5u);
  EXPECT_TRUE(v.bit(0));
  EXPECT_FALSE(v.bit(1));
  EXPECT_TRUE(v.bit(7));
  v.set_bit(1, true);
  EXPECT_EQ(v.to_uint64(), 0xA7u);
}

TEST(BitVec, ValueIsMaskedToWidth) {
  BitVec v(4, 0xFF);
  EXPECT_EQ(v.to_uint64(), 0xFu);
}

TEST(BitVec, FromBinaryRoundTrip) {
  BitVec v = BitVec::from_binary("10110");
  EXPECT_EQ(v.width(), 5);
  EXPECT_EQ(v.to_uint64(), 0b10110u);
  EXPECT_EQ(v.to_binary(), "10110");
}

TEST(BitVec, HexFormatting) {
  EXPECT_EQ(BitVec(12, 0xABC).to_hex(), "abc");
  EXPECT_EQ(BitVec(9, 0x1FF).to_hex(), "1ff");
}

TEST(BitVec, OnesAndZero) {
  EXPECT_TRUE(BitVec(17).is_zero());
  BitVec ones = BitVec::ones(17);
  EXPECT_FALSE(ones.is_zero());
  for (int i = 0; i < 17; ++i) EXPECT_TRUE(ones.bit(i));
}

TEST(BitVec, WideArithmeticMatchesUint64OnLowBits) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::uint64_t a = rng();
    std::uint64_t b = rng();
    BitVec va(64, a);
    BitVec vb(64, b);
    EXPECT_EQ((va + vb).to_uint64(), a + b);
    EXPECT_EQ((va - vb).to_uint64(), a - b);
    EXPECT_EQ((va & vb).to_uint64(), a & b);
    EXPECT_EQ((va | vb).to_uint64(), a | b);
    EXPECT_EQ((va ^ vb).to_uint64(), a ^ b);
    EXPECT_EQ((~va).to_uint64(), ~a);
    EXPECT_EQ(va.ult(vb), a < b);
  }
}

TEST(BitVec, AddWithCarryReportsOverflow) {
  bool carry = false;
  BitVec a(4, 0xF);
  BitVec b(4, 0x1);
  BitVec s = a.add_with_carry(b, false, &carry);
  EXPECT_EQ(s.to_uint64(), 0u);
  EXPECT_TRUE(carry);
  s = BitVec(4, 3).add_with_carry(BitVec(4, 4), true, &carry);
  EXPECT_EQ(s.to_uint64(), 8u);
  EXPECT_FALSE(carry);
}

TEST(BitVec, ArithmeticCrossesWordBoundary) {
  BitVec a(100);
  a.set_bit(63, true);
  BitVec one(100, 1);
  BitVec b = a + a;  // 2^64
  EXPECT_TRUE(b.bit(64));
  EXPECT_FALSE(b.bit(63));
  BitVec c = b - one;
  for (int i = 0; i < 64; ++i) EXPECT_TRUE(c.bit(i));
  EXPECT_FALSE(c.bit(64));
}

TEST(BitVec, MulDivRem) {
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    std::uint64_t a = rng() & 0xFFFFFFFF;
    std::uint64_t b = (rng() & 0xFFFF) | 1;
    BitVec va(32, a);
    BitVec vb(32, b);
    EXPECT_EQ(va.mul(vb, 64).to_uint64(), a * b);
    EXPECT_EQ(va.udiv(vb).to_uint64(), a / b);
    EXPECT_EQ(va.urem(vb).to_uint64(), a % b);
  }
}

TEST(BitVec, Shifts) {
  BitVec v(8, 0b10010110);
  EXPECT_EQ(v.shl(2).to_uint64(), 0b01011000u);
  EXPECT_EQ(v.lshr(3).to_uint64(), 0b00010010u);
  EXPECT_EQ(v.ashr(3).to_uint64(), 0b11110010u);
  EXPECT_EQ(v.rotl(3).to_uint64(), 0b10110100u);
  EXPECT_EQ(v.rotr(3).to_uint64(), 0b11010010u);
}

TEST(BitVec, SliceAndConcat) {
  BitVec v(12, 0xABC);
  EXPECT_EQ(v.slice(4, 4).to_uint64(), 0xBu);
  BitVec joined = BitVec::concat(BitVec(4, 0xA), BitVec(8, 0xBC));
  EXPECT_EQ(joined.width(), 12);
  EXPECT_EQ(joined.to_uint64(), 0xABCu);
}

TEST(BitVec, SignedConversion) {
  EXPECT_EQ(BitVec(4, 0xF).to_int64(), -1);
  EXPECT_EQ(BitVec(4, 0x7).to_int64(), 7);
  EXPECT_EQ(BitVec(8, 0x80).to_int64(), -128);
}

TEST(BitVec, ExtendTruncate) {
  BitVec v(4, 0b1010);
  EXPECT_EQ(v.zext(8).to_uint64(), 0b1010u);
  EXPECT_EQ(v.sext(8).to_uint64(), 0b11111010u);
  EXPECT_EQ(v.zext(2).to_uint64(), 0b10u);
}

TEST(BitVec, DivisionByZeroThrows) {
  EXPECT_THROW(BitVec(4, 5).udiv(BitVec(4, 0)), Error);
}

TEST(BitVec, WidthMismatchThrows) {
  EXPECT_THROW(BitVec(4, 1) + BitVec(5, 1), Error);
}

TEST(WidthExpr, Constants) {
  EXPECT_EQ(WidthExpr::parse("8").eval({}), 8);
  EXPECT_TRUE(WidthExpr::parse("8").is_constant());
}

TEST(WidthExpr, Parameters) {
  WidthExpr e = WidthExpr::parse("w");
  EXPECT_FALSE(e.is_constant());
  EXPECT_EQ(e.eval({{"w", 16}}), 16);
}

TEST(WidthExpr, ImplicitMultiply) {
  // LEGEND allows "2w" to mean 2 * w (Figure 2 uses widths like this).
  EXPECT_EQ(WidthExpr::parse("2w").eval({{"w", 8}}), 16);
  EXPECT_EQ(WidthExpr::parse("3 * w + 1").eval({{"w", 4}}), 13);
}

TEST(WidthExpr, Log2IsCeil) {
  EXPECT_EQ(WidthExpr::parse("log2(n)").eval({{"n", 8}}), 3);
  EXPECT_EQ(WidthExpr::parse("log2(n)").eval({{"n", 9}}), 4);
  EXPECT_EQ(WidthExpr::parse("log2(n)").eval({{"n", 1}}), 1);
}

TEST(WidthExpr, UnboundParameterThrows) {
  EXPECT_THROW(WidthExpr::parse("w").eval({}), Error);
}

TEST(WidthExpr, NonPositiveResultThrows) {
  EXPECT_THROW(WidthExpr::parse("w - 8").eval({{"w", 8}}), Error);
}

TEST(WidthExpr, MalformedThrows) {
  EXPECT_THROW(WidthExpr::parse("w +"), ParseError);
  EXPECT_THROW(WidthExpr::parse("(w"), ParseError);
  EXPECT_THROW(WidthExpr::parse("w w"), ParseError);
}

TEST(StrUtil, TrimSplitJoin) {
  EXPECT_EQ(trim("  abc \t"), "abc");
  EXPECT_EQ(split("a,b,,c", ',').size(), 4u);
  EXPECT_EQ(split_ws("  a \t b  c ").size(), 3u);
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StrUtil, CaseAndAffixes) {
  EXPECT_EQ(to_upper("aBc"), "ABC");
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_TRUE(starts_with("counter", "count"));
  EXPECT_TRUE(ends_with("counter", "ter"));
  EXPECT_FALSE(starts_with("a", "ab"));
}

TEST(StrUtil, FormatDouble) {
  EXPECT_EQ(format_double(12.5), "12.5");
  EXPECT_EQ(format_double(3.0), "3");
  EXPECT_EQ(format_double(0.25), "0.25");
  EXPECT_EQ(format_double(134.3, 1), "134.3");
}

TEST(StrUtil, SanitizeIdentifierBasics) {
  EXPECT_EQ(sanitize_identifier("ADDER.w16.ci.co[ADD]"),
            "ADDER_w16_ci_co_ADD");
  EXPECT_EQ(sanitize_identifier("already_legal"), "already_legal");
  EXPECT_EQ(sanitize_identifier("MiXeD123"), "MiXeD123");
}

TEST(StrUtil, SanitizeIdentifierVhdlEdgeCases) {
  // The cases a VHDL basic identifier forbids: empty, leading digit or
  // underscore, trailing underscore, consecutive underscores.
  EXPECT_EQ(sanitize_identifier(""), "u");
  EXPECT_EQ(sanitize_identifier("___"), "u");
  EXPECT_EQ(sanitize_identifier("3bad"), "u_3bad");
  EXPECT_EQ(sanitize_identifier("9dp8__impl0"), "u_9dp8_impl0");
  EXPECT_EQ(sanitize_identifier("_lead"), "lead");
  EXPECT_EQ(sanitize_identifier("trail_"), "trail");
  EXPECT_EQ(sanitize_identifier("a..b"), "a_b");
  EXPECT_EQ(sanitize_identifier("a[b](c)"), "a_b_c");
  EXPECT_EQ(sanitize_identifier("__x__"), "x");
  EXPECT_EQ(sanitize_identifier("++"), "u");
  // Never empty, never digit-leading, never '_'-edged, never "__".
  for (const char* raw : {"", "_", "0", "0_", "_0_", "a__b_", ".9."}) {
    const std::string s = sanitize_identifier(raw);
    ASSERT_FALSE(s.empty()) << raw;
    EXPECT_FALSE(std::isdigit(static_cast<unsigned char>(s.front()))) << raw;
    EXPECT_NE(s.front(), '_') << raw;
    EXPECT_NE(s.back(), '_') << raw;
    EXPECT_EQ(s.find("__"), std::string::npos) << raw;
  }
}

TEST(Symbol, InternsToOneIdentity) {
  base::Symbol a("CI");
  base::Symbol b(std::string("CI"));
  base::Symbol c(std::string_view("CI"));
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
  EXPECT_EQ(&a.str(), &b.str()) << "same text must intern to one string";
  EXPECT_NE(a, base::Symbol("CO"));
  EXPECT_EQ(std::hash<base::Symbol>()(a), std::hash<base::Symbol>()(b));
}

TEST(Symbol, DefaultIsEmpty) {
  base::Symbol s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s, base::Symbol(""));
  EXPECT_EQ(s.str(), "");
}

TEST(Symbol, OrdersByTextNotPointer) {
  // Intern deliberately out of lexicographic order.
  base::Symbol z("zz_order_test"), a("aa_order_test"), m("mm_order_test");
  EXPECT_LT(a, m);
  EXPECT_LT(m, z);
  EXPECT_FALSE(z < a);
  EXPECT_FALSE(a < a);
}

TEST(Symbol, ConvertsToStringRef) {
  base::Symbol s("OUT");
  const std::string& ref = s;  // implicit, no copy
  EXPECT_EQ(ref, "OUT");
  EXPECT_EQ(s.str() + "!", "OUT!");
  std::ostringstream os;
  os << s;
  EXPECT_EQ(os.str(), "OUT");
}

TEST(Symbol, PoolDeduplicates) {
  const std::size_t before = base::symbol_pool_size();
  base::Symbol("symbol_pool_dedup_probe");
  const std::size_t after_first = base::symbol_pool_size();
  base::Symbol("symbol_pool_dedup_probe");
  EXPECT_EQ(after_first, before + 1);
  EXPECT_EQ(base::symbol_pool_size(), after_first);
}

}  // namespace
}  // namespace bridge
