// Shared helpers for DTAS equivalence tests: synthesize a specification,
// DRC every module of every alternative, and check bit-true equivalence
// between each mapped netlist and the generic component's behavioral
// semantics on random stimulus.
#pragma once

#include <gtest/gtest.h>

#include <random>

#include "cells/cell.h"
#include "dtas/synthesizer.h"
#include "netlist/netlist.h"
#include "sim/semantics.h"
#include "sim/simulator.h"

namespace bridge::testutil {

inline BitVec random_vec(std::mt19937_64& rng, int width) {
  BitVec v(width);
  for (int b = 0; b < width; b += 64) {
    std::uint64_t word = rng();
    for (int i = b; i < std::min(width, b + 64); ++i) {
      v.set_bit(i, (word >> (i - b)) & 1);
    }
  }
  return v;
}

/// DRC every module of a design — owned and shared alike (with the
/// extraction cache on, decomposition designs hold only *referenced*
/// modules, which modules() would miss); reports the first violation per
/// module.
inline void expect_clean_drc(const dtas::AlternativeDesign& alt,
                             const std::string& context) {
  for (const netlist::Module* mod : alt.design->module_order()) {
    auto issues = netlist::check_module(*mod);
    EXPECT_TRUE(issues.empty()) << context << " [" << alt.description
                                << "] module " << mod->name() << ": "
                                << (issues.empty() ? "" : issues.front());
  }
}

/// Synthesize `spec` against `lib` and check every alternative for DRC
/// cleanliness and combinational equivalence on `trials` random vectors.
inline void check_combinational_equivalence(
    const genus::ComponentSpec& spec, const cells::CellLibrary& lib,
    int trials = 25, unsigned seed = 1234,
    bool require_nonempty = true) {
  dtas::Synthesizer synth(lib);
  auto alts = synth.synthesize(spec);
  if (require_nonempty) {
    ASSERT_FALSE(alts.empty()) << "no implementation for " << spec.key();
  }
  std::mt19937_64 rng(seed);
  const auto ports = genus::spec_ports(spec);
  for (const auto& alt : alts) {
    expect_clean_drc(alt, spec.key());
    sim::Simulator s(*alt.design->top());
    for (int trial = 0; trial < trials; ++trial) {
      sim::PortValues inputs;
      for (const auto& p : ports) {
        if (p.dir != genus::PortDir::kIn) continue;
        inputs[p.name] = random_vec(rng, p.width);
        s.set_input(p.name, inputs[p.name]);
      }
      s.eval();
      sim::PortValues expected = sim::eval_combinational(spec, inputs);
      for (const auto& p : ports) {
        if (p.dir != genus::PortDir::kOut) continue;
        EXPECT_EQ(s.get(p.name), expected.at(p.name))
            << spec.key() << " [" << alt.description << "] output " << p.name
            << " trial " << trial;
      }
    }
  }
}

}  // namespace bridge::testutil
