// Property tests on DTAS invariants:
//  * Pareto filter: survivors are sorted, non-dominated, and each pays
//    area only for a significant delay gain;
//  * counting identities: filtered <= constrained <= unconstrained;
//  * every adder width 1..33 synthesizes and is bit-true;
//  * netlist-level synthesis (the paper's actual input form) preserves
//    function under the netlist-wide uniform-implementation constraint;
//  * the Figure 3 headline shape holds.
#include <gtest/gtest.h>

#include <random>

#include "equiv_util.h"

namespace bridge {
namespace {

using dtas::FilterKind;
using dtas::SpaceOptions;
using dtas::Synthesizer;
using genus::ComponentSpec;
using genus::Op;
using genus::OpSet;

class AdderWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(AdderWidthSweep, SynthesizesAndIsBitTrue) {
  const int width = GetParam();
  testutil::check_combinational_equivalence(genus::make_adder_spec(width),
                                            cells::lsi_library(), 10,
                                            1000 + width);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, AdderWidthSweep,
                         ::testing::Range(1, 34));

class ParetoInvariants : public ::testing::TestWithParam<int> {};

TEST_P(ParetoInvariants, SurvivorsFormAFilteredFrontier) {
  const int width = GetParam();
  dtas::Synthesizer synth(cells::lsi_library());
  auto* node = synth.space().expand(genus::make_adder_spec(width));
  synth.space().evaluate(node);
  const auto& alts = node->alts;
  ASSERT_FALSE(alts.empty());
  const double gain = synth.space().options().min_delay_gain;
  for (size_t i = 1; i < alts.size(); ++i) {
    // Sorted by ascending area, strictly improving delay...
    EXPECT_GT(alts[i].metric.area, alts[i - 1].metric.area);
    EXPECT_LT(alts[i].metric.delay, alts[i - 1].metric.delay);
    // ...by at least the favorable-tradeoff threshold.
    EXPECT_LE(alts[i].metric.delay,
              alts[i - 1].metric.delay * (1.0 - gain) + 1e-9);
    // No survivor dominates another.
    EXPECT_FALSE(dtas::dominates(alts[i].metric, alts[i - 1].metric));
    EXPECT_FALSE(dtas::dominates(alts[i - 1].metric, alts[i].metric));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ParetoInvariants,
                         ::testing::Values(4, 8, 16, 24, 32, 64));

TEST(CountingIdentities, FilteredLeqConstrainedLeqUnconstrained) {
  for (int width : {4, 8, 16}) {
    dtas::Synthesizer synth(cells::lsi_library());
    auto* node = synth.space().expand(genus::make_adder_spec(width));
    synth.space().evaluate(node);
    const double unconstrained = synth.space().count_unconstrained(node);
    const double constrained = synth.space().count_constrained(node);
    EXPECT_LE(static_cast<double>(node->alts.size()), constrained);
    EXPECT_LE(constrained, unconstrained);
    EXPECT_GE(constrained, 1.0);
  }
}

TEST(CountingIdentities, LeafOnlySpecCountsItsCells) {
  // A 1-bit full adder: ADD1 cell + two gate-level realizations.
  dtas::Synthesizer synth(cells::lsi_library());
  auto* node = synth.space().expand(genus::make_adder_spec(1));
  synth.space().evaluate(node);
  const double constrained = synth.space().count_constrained(node);
  EXPECT_GE(constrained, 3.0);
  EXPECT_LE(constrained, 1e6);
}

TEST(FilterPolicies, AreaAndDelayOnlyKeepOne) {
  for (FilterKind kind : {FilterKind::kAreaOnly, FilterKind::kDelayOnly}) {
    SpaceOptions opts;
    opts.filter = kind;
    Synthesizer synth(cells::lsi_library(), opts);
    auto alts = synth.synthesize(genus::make_adder_spec(16));
    ASSERT_EQ(alts.size(), 1u);
  }
  // The two extremes bracket the Pareto frontier.
  SpaceOptions a_opts;
  a_opts.filter = FilterKind::kAreaOnly;
  Synthesizer a_synth(cells::lsi_library(), a_opts);
  SpaceOptions d_opts;
  d_opts.filter = FilterKind::kDelayOnly;
  Synthesizer d_synth(cells::lsi_library(), d_opts);
  Synthesizer p_synth(cells::lsi_library());
  auto amin = a_synth.synthesize(genus::make_adder_spec(16));
  auto dmin = d_synth.synthesize(genus::make_adder_spec(16));
  auto pareto = p_synth.synthesize(genus::make_adder_spec(16));
  ASSERT_FALSE(pareto.empty());
  EXPECT_NEAR(pareto.front().metric.area, amin.front().metric.area, 1e-6);
  EXPECT_LE(dmin.front().metric.delay,
            pareto.back().metric.delay + 1e-6);
}

TEST(NetlistSynthesis, MixedNetlistIsBitTrue) {
  // A small GENUS netlist: an 8-bit adder whose sum feeds a comparator
  // against C, plus a 2:1 mux selecting A or the sum.
  netlist::Module input("datapath");
  auto a = input.add_port("A", genus::PortDir::kIn, 8);
  auto b = input.add_port("B", genus::PortDir::kIn, 8);
  auto c = input.add_port("C", genus::PortDir::kIn, 8);
  auto sel = input.add_port("SEL", genus::PortDir::kIn, 1);
  auto out = input.add_port("OUT", genus::PortDir::kOut, 8);
  auto eq = input.add_port("EQ_C", genus::PortDir::kOut, 1);
  auto sum = input.add_net("sum", 8);

  auto& add = input.add_spec_instance("add0",
                                      genus::make_adder_spec(8, false, false));
  input.connect(add, "A", a);
  input.connect(add, "B", b);
  input.connect(add, "S", sum);
  auto& cmp = input.add_spec_instance(
      "cmp0", genus::make_comparator_spec(8, OpSet{Op::kEq}));
  input.connect(cmp, "A", sum);
  input.connect(cmp, "B", c);
  input.connect(cmp, "EQ", eq);
  auto& mux = input.add_spec_instance("mux0", genus::make_mux_spec(8, 2));
  input.connect(mux, "I0", a);
  input.connect(mux, "I1", sum);
  input.connect(mux, "SEL", sel);
  input.connect(mux, "OUT", out);
  ASSERT_TRUE(netlist::check_module(input).empty());

  Synthesizer synth(cells::lsi_library());
  auto alts = synth.synthesize_netlist(input);
  ASSERT_FALSE(alts.empty());
  std::mt19937_64 rng(55);
  for (const auto& alt : alts) {
    testutil::expect_clean_drc(alt, "mixed netlist");
    sim::Simulator s(*alt.design->top());
    for (int trial = 0; trial < 30; ++trial) {
      const std::uint64_t va = rng() & 0xFF;
      const std::uint64_t vb = rng() & 0xFF;
      const std::uint64_t vc = rng() & 0xFF;
      const bool vsel = (rng() & 1) != 0;
      s.set_input("A", BitVec(8, va));
      s.set_input("B", BitVec(8, vb));
      s.set_input("C", BitVec(8, vc));
      s.set_input("SEL", BitVec(1, vsel));
      s.eval();
      const std::uint64_t vsum = (va + vb) & 0xFF;
      EXPECT_EQ(s.get("OUT").to_uint64(), vsel ? vsum : va)
          << alt.description;
      EXPECT_EQ(s.get("EQ_C").bit(0), vsum == vc) << alt.description;
    }
  }
}

TEST(Figure3Shape, HeadlineClaimHolds) {
  // The paper's Figure 3 headline: a handful of alternatives; the fastest
  // trades tens of percent more area for a factor-~5 delay reduction.
  Synthesizer synth(cells::lsi_library());
  auto alts = synth.synthesize(genus::make_alu_spec(64, genus::alu16_ops()));
  ASSERT_GE(alts.size(), 3u);
  ASSERT_LE(alts.size(), 8u);
  const auto& smallest = alts.front().metric;
  const auto& fastest = alts.back().metric;
  const double area_increase = (fastest.area - smallest.area) / smallest.area;
  const double delay_reduction =
      (smallest.delay - fastest.delay) / smallest.delay;
  EXPECT_GT(area_increase, 0.05);   // paper: +34 %
  EXPECT_LT(area_increase, 0.80);
  EXPECT_GT(delay_reduction, 0.65);  // paper: -81 %
  // A mid-range design near the paper's (+13 %, -49 %) point exists.
  bool mid_point = false;
  for (const auto& alt : alts) {
    const double da = (alt.metric.area - smallest.area) / smallest.area;
    const double dd = (smallest.delay - alt.metric.delay) / smallest.delay;
    if (da < 0.25 && dd > 0.35 && dd < 0.65) mid_point = true;
  }
  EXPECT_TRUE(mid_point);
}

TEST(SpaceStats, RejectedTemplatesAreRare) {
  Synthesizer synth(cells::lsi_library());
  auto* node =
      synth.space().expand(genus::make_alu_spec(64, genus::alu16_ops()));
  synth.space().evaluate(node);
  const auto& stats = synth.space().stats();
  EXPECT_GT(stats.spec_nodes, 20);
  EXPECT_GT(stats.impl_nodes, stats.spec_nodes);
  // Gate re-expression rules intentionally collide (cycle rejection), but
  // the count must stay bounded.
  EXPECT_LT(stats.rejected_templates, stats.impl_nodes);
}

TEST(TtlLibraryProperties, AdderSweepOnSecondLibrary) {
  for (int width : {4, 8, 12, 16}) {
    dtas::RuleBase rules;
    dtas::register_standard_rules(rules);
    rules.add(dtas::make_ripple_adder_rule(4, true));
    Synthesizer synth(std::move(rules), cells::ttl_library());
    auto alts = synth.synthesize(genus::make_adder_spec(width));
    ASSERT_FALSE(alts.empty()) << width;
    std::mt19937_64 rng(width);
    sim::Simulator s(*alts.front().design->top());
    for (int trial = 0; trial < 10; ++trial) {
      BitVec a = testutil::random_vec(rng, width);
      BitVec b = testutil::random_vec(rng, width);
      s.set_input("A", a);
      s.set_input("B", b);
      s.set_input("CI", BitVec(1, 0));
      s.eval();
      EXPECT_EQ(s.get("S"), a + b);
    }
  }
}

}  // namespace
}  // namespace bridge
