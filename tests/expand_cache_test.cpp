// Expansion-side caching and contracts.
//
// The template cache must be transparent: a design space built with
// SpaceOptions::use_template_cache off (every expansion re-runs
// TemplateBuilder + plan compilation) and one built with it on (expansions
// served from the process-wide cache, warm or cold) must produce the same
// SpecNode graph, the same filtered fronts, the same descriptions, and the
// same emitted VHDL, against every registry library. The remaining tests
// pin the expansion-side contracts this PR tightened: gate_many's
// single-pick rules, RuleBase's indexed name lookup, and connect_const's
// width masking.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "base/diag.h"
#include "cells/registry.h"
#include "dtas/design_space.h"
#include "dtas/rule.h"
#include "dtas/synthesizer.h"
#include "genus/spec.h"
#include "netlist/netlist.h"
#include "vhdl/vhdl.h"

namespace bridge {
namespace {

using dtas::DesignSpace;
using dtas::SpaceOptions;
using dtas::SpecNode;
using genus::ComponentSpec;
using genus::Op;
using genus::OpSet;

/// All three registry libraries: both built-ins plus the bundled Liberty
/// import.
const cells::LibraryRegistry& registry() {
  static cells::LibraryRegistry reg = [] {
    auto r = cells::LibraryRegistry::with_builtins();
    r.load_liberty_file(std::string(BRIDGE_LIBS_DIR) +
                        "/sample_sky130_subset.lib");
    return r;
  }();
  return reg;
}

/// Deterministic structural signature of an expanded design-space graph:
/// every reachable spec with its implementations (cell names for leaves,
/// rule name + distinct child keys for decompositions), depth-first.
void graph_signature(const SpecNode* node, std::set<std::string>& visited,
                     std::ostringstream& os) {
  const std::string key = node->spec.key();
  if (!visited.insert(key).second) return;
  os << key << " {";
  for (const auto& impl : node->impls) {
    if (impl->is_leaf()) {
      os << " cell:" << impl->cell->name;
    } else {
      os << " rule:" << impl->rule_name << "(";
      for (const SpecNode* child : impl->children) {
        os << child->spec.key() << ";";
      }
      os << ")#i" << impl->tmpl->instances().size() << "n"
         << impl->tmpl->nets().size() << "t" << impl->topo->size();
    }
  }
  os << " }\n";
  for (const auto& impl : node->impls) {
    for (const SpecNode* child : impl->children) {
      graph_signature(child, visited, os);
    }
  }
}

struct SynthesisRecord {
  std::string graph;
  std::vector<double> areas, delays;
  std::vector<std::string> descriptions;
  std::vector<std::string> vhdl;
  dtas::SpaceStats stats;
};

SynthesisRecord synthesize_record(const cells::CellLibrary& lib,
                                  const ComponentSpec& spec,
                                  bool use_cache) {
  SpaceOptions opt;
  opt.use_template_cache = use_cache;
  dtas::Synthesizer synth(lib, opt);
  auto alts = synth.synthesize(spec);
  SynthesisRecord rec;
  for (const auto& a : alts) {
    rec.areas.push_back(a.metric.area);
    rec.delays.push_back(a.metric.delay);
    rec.descriptions.push_back(a.description);
    rec.vhdl.push_back(vhdl::emit_structural(*a.design));
  }
  std::ostringstream os;
  std::set<std::string> visited;
  graph_signature(synth.space().expand(spec), visited, os);
  rec.graph = os.str();
  rec.stats = synth.space().stats();
  return rec;
}

TEST(ExpandCacheTest, CacheOnOffBitIdenticalAcrossLibraries) {
  const std::vector<ComponentSpec> specs = {
      genus::make_alu_spec(16, genus::alu16_ops()),
      genus::make_adder_spec(32),
      genus::make_mux_spec(8, 4),
  };
  for (const cells::CellLibrary* lib : registry().all()) {
    for (const ComponentSpec& spec : specs) {
      SCOPED_TRACE(lib->name() + " / " + spec.key());
      // Cold or warm is irrelevant to the contract; run the cached side
      // twice so at least the second pass is guaranteed warm.
      SynthesisRecord off = synthesize_record(*lib, spec, false);
      SynthesisRecord cold = synthesize_record(*lib, spec, true);
      SynthesisRecord warm = synthesize_record(*lib, spec, true);
      for (const SynthesisRecord* on : {&cold, &warm}) {
        EXPECT_EQ(off.graph, on->graph);
        EXPECT_EQ(off.areas, on->areas);        // exact double equality
        EXPECT_EQ(off.delays, on->delays);      // exact double equality
        EXPECT_EQ(off.descriptions, on->descriptions);
        EXPECT_EQ(off.vhdl, on->vhdl);
        // The expansion structure the stats describe must match too.
        EXPECT_EQ(off.stats.spec_nodes, on->stats.spec_nodes);
        EXPECT_EQ(off.stats.impl_nodes, on->stats.impl_nodes);
        EXPECT_EQ(off.stats.leaf_impls, on->stats.leaf_impls);
        EXPECT_EQ(off.stats.rule_applications, on->stats.rule_applications);
        EXPECT_EQ(off.stats.rejected_templates,
                  on->stats.rejected_templates);
        EXPECT_EQ(off.stats.dead_specs, on->stats.dead_specs);
      }
      // Cache off never touches the cache; cache on consults it for every
      // (cacheable) rule application, and the warm pass hits every time.
      EXPECT_EQ(off.stats.template_cache_hits, 0);
      EXPECT_EQ(off.stats.template_cache_misses, 0);
      EXPECT_EQ(cold.stats.template_cache_hits +
                    cold.stats.template_cache_misses,
                cold.stats.rule_applications);
      EXPECT_EQ(warm.stats.template_cache_hits,
                warm.stats.rule_applications);
      EXPECT_EQ(warm.stats.template_cache_misses, 0);
      EXPECT_GT(warm.stats.template_cache_hits, 0);
    }
  }
}

TEST(ExpandCacheTest, CachedImplsShareTemplateStorage) {
  // Two spaces over the same library must point at one compiled template.
  const cells::CellLibrary& lib = *registry().all().front();
  SpaceOptions opt;
  auto rules = dtas::default_rules_for(lib);
  DesignSpace a(rules, lib, opt), b(rules, lib, opt);
  const ComponentSpec spec = genus::make_adder_spec(32);
  SpecNode* na = a.expand(spec);
  SpecNode* nb = b.expand(spec);
  ASSERT_EQ(na->impls.size(), nb->impls.size());
  bool shared_any = false;
  for (size_t i = 0; i < na->impls.size(); ++i) {
    if (na->impls[i]->is_leaf()) continue;
    EXPECT_EQ(na->impls[i]->tmpl.get(), nb->impls[i]->tmpl.get());
    EXPECT_EQ(na->impls[i]->plan.get(), nb->impls[i]->plan.get());
    shared_any = true;
  }
  EXPECT_TRUE(shared_any);
}

TEST(GateManyTest, SinglePickAndOrIsABuffer) {
  for (Op fn : {Op::kAnd, Op::kOr}) {
    dtas::TemplateBuilder t(genus::make_gate_spec(Op::kAnd, 1, 2),
                            "single_pick");
    netlist::NetIndex out =
        t.gate_many(fn, {{t.port("I0"), 0}});
    EXPECT_NE(out, netlist::kNoNet);
    const auto& inst = t.module().instances().back();
    EXPECT_EQ(inst.spec.kind, genus::Kind::kGate);
    EXPECT_TRUE(inst.spec.ops == OpSet{Op::kBuf});
  }
}

TEST(GateManyTest, SinglePickLnotIsAnInverter) {
  dtas::TemplateBuilder t(genus::make_gate_spec(Op::kAnd, 1, 2), "lnot_pick");
  t.gate_many(Op::kLnot, {{t.port("I0"), 0}});
  const auto& inst = t.module().instances().back();
  EXPECT_TRUE(inst.spec.ops == OpSet{Op::kLnot});
  EXPECT_EQ(inst.spec.size, 1);
}

TEST(GateManyTest, SinglePickWithoutIdentityReadingThrows) {
  dtas::TemplateBuilder t(genus::make_gate_spec(Op::kAnd, 1, 2), "bad_pick");
  for (Op fn : {Op::kNor, Op::kNand, Op::kXor, Op::kXnor}) {
    EXPECT_THROW(t.gate_many(fn, {{t.port("I0"), 0}}), Error)
        << genus::op_name(fn);
  }
  EXPECT_THROW(t.gate_many(Op::kAnd, {}), Error);
}

TEST(GateManyTest, WideConstSliceChunksInto64BitTies) {
  // const_slice beyond 64 bits must tie in <=64-bit chunks: a PortConn
  // carries at most 64 constant bits, and the 256-bit barrel-shift stages
  // zero-fill 128-bit halves through exactly this path.
  dtas::TemplateBuilder t(genus::make_gate_spec(Op::kBuf, 130), "wide_tie");
  netlist::NetIndex dst = t.fresh("z", 130);
  t.const_slice(dst, 0, 130, true);
  const auto& insts = t.module().instances();
  ASSERT_EQ(insts.size(), 3u);  // 64 + 64 + 2
  int covered = 0;
  for (const auto& inst : insts) {
    EXPECT_LE(inst.spec.width, 64);
    const auto it = inst.connections.find(base::Symbol("I0"));
    ASSERT_NE(it, inst.connections.end());
    const std::uint64_t expect =
        inst.spec.width >= 64 ? ~0ULL : ((1ULL << inst.spec.width) - 1);
    EXPECT_EQ(it->second.const_value, expect);
    covered += inst.spec.width;
  }
  EXPECT_EQ(covered, 130);
  // Complete the template (tie -> OUT) and it must pass DRC: every z bit
  // driven exactly once by the chunked ties.
  t.buf_slice(dst, 0, t.port("OUT"), 0, 130);
  EXPECT_TRUE(netlist::check_module(t.module()).empty());
}

TEST(ExpandCacheTest, UncacheableLambdaRuleBypassesTheCache) {
  // Two same-named lambda rules with different expansions must never see
  // each other's templates when constructed with cacheable = false.
  const cells::CellLibrary& lib = *registry().all().front();
  auto make_base = [&](int fanin) {
    dtas::RuleBase base;
    base.add(std::make_unique<dtas::LambdaRule>(
        "custom-split", "test", false,
        [](const ComponentSpec& s, const dtas::RuleContext&) {
          return s.kind == genus::Kind::kGate && s.width == 2 &&
                 s.ops == genus::OpSet{Op::kAnd};
        },
        [fanin](const ComponentSpec& s, const dtas::RuleContext&) {
          // Expansion depends on captured state — impure in (name, spec).
          dtas::TemplateBuilder t(s, "split" + std::to_string(fanin));
          auto& g = t.add("g", genus::make_gate_spec(Op::kAnd, 1, fanin));
          for (int i = 0; i < fanin; ++i) {
            t.connect(g, "I" + std::to_string(i), t.port("I0"), 0);
          }
          netlist::NetIndex o = t.fresh("o", 1);
          t.connect(g, "OUT", o);
          t.buf_slice(o, 0, t.port("OUT"), 0, 1);
          t.buf_slice(o, 0, t.port("OUT"), 1, 1);
          std::vector<netlist::Module> out;
          out.push_back(std::move(t).take());
          return out;
        },
        /*cacheable=*/false));
    return base;
  };
  const ComponentSpec spec = genus::make_gate_spec(Op::kAnd, 2, 2);
  dtas::RuleBase base2 = make_base(2), base3 = make_base(3);
  dtas::DesignSpace s2(base2, lib, {}), s3(base3, lib, {});
  SpecNode* n2 = s2.expand(spec);
  SpecNode* n3 = s3.expand(spec);
  auto decomp_fanin = [](const SpecNode* n) {
    for (const auto& impl : n->impls) {
      if (!impl->is_leaf()) return impl->tmpl->instances().front().spec.size;
    }
    return -1;
  };
  EXPECT_EQ(decomp_fanin(n2), 2);
  EXPECT_EQ(decomp_fanin(n3), 3) << "base3 must not inherit base2's cached "
                                    "template under the shared rule name";
  EXPECT_EQ(s2.stats().template_cache_hits, 0);
  EXPECT_EQ(s2.stats().template_cache_misses, 0);
  EXPECT_EQ(s3.stats().template_cache_hits, 0);
  EXPECT_EQ(s3.stats().template_cache_misses, 0);
}

TEST(RuleBaseTest, IndexedFindMatchesRegistration) {
  dtas::RuleBase base;
  dtas::register_standard_rules(base);
  ASSERT_GT(base.total_count(), 10);
  for (const auto& rule : base.rules()) {
    EXPECT_EQ(base.find(rule->name()), rule.get());
  }
  EXPECT_EQ(base.find("no-such-rule"), nullptr);
  EXPECT_THROW(base.add(dtas::make_ripple_adder_rule(
                   /*group_width=*/1, /*library_specific=*/false)),
               Error)
      << "duplicate registration must still be rejected through the index";
}

TEST(ConnectConstTest, MasksValueToPortWidth) {
  netlist::Module m("mask");
  netlist::NetIndex out = m.add_port("O", genus::PortDir::kOut, 4);
  auto& inst = m.add_spec_instance("g0", genus::make_gate_spec(Op::kBuf, 4));
  m.connect(inst, "OUT", out);
  m.connect_const(inst, "I0", ~0ULL);  // the const_slice(value=true) tie
  const auto it = inst.connections.find(base::Symbol("I0"));
  ASSERT_NE(it, inst.connections.end());
  EXPECT_EQ(it->second.const_value, 0xFULL) << "must be masked to width 4";

  // Full 64-bit ports keep every bit.
  netlist::Module m64("mask64");
  netlist::NetIndex o64 = m64.add_port("O", genus::PortDir::kOut, 64);
  auto& i64 = m64.add_spec_instance("g0", genus::make_gate_spec(Op::kBuf, 64));
  m64.connect(i64, "OUT", o64);
  m64.connect_const(i64, "I0", ~0ULL);
  EXPECT_EQ(i64.connections.find(base::Symbol("I0"))->second.const_value,
            ~0ULL);
}

TEST(ConnectConstTest, RejectsPortsWiderThan64) {
  netlist::Module m("wide");
  netlist::NetIndex out = m.add_port("O", genus::PortDir::kOut, 65);
  auto& inst = m.add_spec_instance("g0", genus::make_gate_spec(Op::kBuf, 65));
  m.connect(inst, "OUT", out);
  EXPECT_THROW(m.connect_const(inst, "I0", 1), Error);
}

}  // namespace
}  // namespace bridge
