// Executable RTL semantics tests: expression evaluation, and the LEGEND
// Figure 2 counter interpreted from its own semantics strings agreeing
// with the built-in counter simulation — the paper's "verify the behavior
// of a synthesized design" loop, closed.
#include <gtest/gtest.h>

#include <random>

#include "base/diag.h"
#include "genus/generator.h"
#include "legend/legend.h"
#include "sim/rtl_expr.h"
#include "sim/semantics.h"

namespace bridge {
namespace {

using sim::RtlAssignment;

BitVec ev(const std::string& text, int width,
          const std::map<std::string, BitVec>& values) {
  return RtlAssignment::parse(text).eval(width, values);
}

TEST(RtlExpr, ArithmeticAndLogic) {
  std::map<std::string, BitVec> v{{"A", BitVec(8, 0xC3)},
                                  {"B", BitVec(8, 0x0F)}};
  EXPECT_EQ(ev("X = A + B", 8, v).to_uint64(), 0xD2u);
  EXPECT_EQ(ev("X = A - B", 8, v).to_uint64(), 0xB4u);
  EXPECT_EQ(ev("X = A & B", 8, v).to_uint64(), 0x03u);
  EXPECT_EQ(ev("X = A | B", 8, v).to_uint64(), 0xCFu);
  EXPECT_EQ(ev("X = A ^ B", 8, v).to_uint64(), 0xCCu);
  EXPECT_EQ(ev("X = ~A", 8, v).to_uint64(), 0x3Cu);
  EXPECT_EQ(ev("X = ~(A & B)", 8, v).to_uint64(), 0xFCu);
  EXPECT_EQ(ev("X = ~A | B", 8, v).to_uint64(), 0x3Fu);
}

TEST(RtlExpr, ShiftsRotatesComparisons) {
  std::map<std::string, BitVec> v{{"A", BitVec(8, 0x96)},
                                  {"B", BitVec(8, 0x96)}};
  EXPECT_EQ(ev("X = A << 1", 8, v).to_uint64(), 0x2Cu);
  EXPECT_EQ(ev("X = A >> 2", 8, v).to_uint64(), 0x25u);
  EXPECT_EQ(ev("X = rotl(A, 3)", 8, v).to_uint64(), 0xB4u);
  EXPECT_EQ(ev("X = rotr(A, 3)", 8, v).to_uint64(), 0xD2u);
  EXPECT_EQ(ev("X = (A == B)", 8, v).to_uint64(), 1u);
  EXPECT_EQ(ev("X = (A != B)", 8, v).to_uint64(), 0u);
  EXPECT_EQ(ev("X = (A <= B)", 8, v).to_uint64(), 1u);
  EXPECT_EQ(ev("X = (A < B)", 8, v).to_uint64(), 0u);
}

TEST(RtlExpr, PrecedenceAndParens) {
  std::map<std::string, BitVec> v{{"A", BitVec(8, 6)}, {"B", BitVec(8, 3)}};
  // + binds tighter than &, which binds tighter than ^ and |.
  EXPECT_EQ(ev("X = A + B & 7", 8, v).to_uint64(), (6u + 3u) & 7u);
  EXPECT_EQ(ev("X = A | B ^ B", 8, v).to_uint64(), 6u | (3u ^ 3u));
  EXPECT_EQ(ev("X = (A | B) ^ B", 8, v).to_uint64(), (6u | 3u) ^ 3u);
}

TEST(RtlExpr, Errors) {
  EXPECT_THROW(RtlAssignment::parse("= A"), ParseError);
  EXPECT_THROW(RtlAssignment::parse("X A"), ParseError);
  EXPECT_THROW(RtlAssignment::parse("X = A +"), ParseError);
  EXPECT_THROW(RtlAssignment::parse("X = (A"), ParseError);
  EXPECT_THROW(ev("X = NOPE", 8, {}), Error);
}

TEST(ComponentInterpreter, Figure2CounterMatchesBuiltinSemantics) {
  // The component generated from the LEGEND Figure 2 text, interpreted
  // from its own "O0 = O0 + 1"-style semantics strings, must agree with
  // the built-in counter behavioral model cycle for cycle.
  auto gen = legend::to_generator(
      legend::parse_legend(legend::figure2_counter_text())[0]);
  genus::ParamMap p;
  p.set(genus::kParamInputWidth, 8L);
  auto comp = gen.generate(p);
  sim::ComponentInterpreter interp(comp);

  genus::ComponentSpec ref_spec = genus::make_counter_spec(
      8, genus::OpSet{genus::Op::kLoad, genus::Op::kCountUp,
                      genus::Op::kCountDown});
  ref_spec.enable = true;       // CEN
  ref_spec.async_set = true;    // ASET
  ref_spec.async_reset = true;  // ARESET
  auto ref = sim::init_state(ref_spec);

  std::mt19937_64 rng(12);
  for (int cycle = 0; cycle < 200; ++cycle) {
    std::map<std::string, BitVec> in;
    in["I0"] = BitVec(8, rng() & 0xFF);
    in["CEN"] = BitVec(1, (rng() % 4) != 0);
    in["CLOAD"] = BitVec(1, (rng() % 5) == 0);
    in["CUP"] = BitVec(1, rng() & 1);
    in["CDOWN"] = BitVec(1, rng() & 1);
    in["ASET"] = BitVec(1, (rng() % 13) == 0);
    in["ARESET"] = BitVec(1, (rng() % 11) == 0);
    ASSERT_EQ(interp.output("O0"),
              sim::seq_outputs(ref_spec, ref, in).at("O0"))
        << "cycle " << cycle;
    interp.step(in);
    sim::seq_step(ref_spec, ref, in);
  }
}

TEST(ComponentInterpreter, CustomLegendComponentRuns) {
  // A custom accumulate-and-rotate component described only in LEGEND.
  const char* text = R"(
NAME: ACCUM
KIND: REGISTER
CLASS: Clocked
INPUTS: D[w]
OUTPUTS: Q[w]
CLOCK: CLK
NUM_CONTROL: 2
CONTROL: CADD, CROT
NUM_OPERATIONS: 2
OPERATIONS:
  ( (ACCUMULATE) (INPUTS: D) (OUTPUTS: Q) (CONTROL: CADD)
    (OPS: (ACCUMULATE: Q = Q + D)) )
  ( (ROTATE) (OUTPUTS: Q) (CONTROL: CROT)
    (OPS: (ROTATE: Q = rotl(Q, 1))) )
)";
  auto gen = legend::to_generator(legend::parse_legend(text)[0]);
  genus::ParamMap p;
  p.set(genus::kParamInputWidth, 8L);
  sim::ComponentInterpreter interp(gen.generate(p));

  std::map<std::string, BitVec> add{{"D", BitVec(8, 5)},
                                    {"CADD", BitVec(1, 1)},
                                    {"CROT", BitVec(1, 0)}};
  interp.step(add);
  interp.step(add);
  EXPECT_EQ(interp.output("Q").to_uint64(), 10u);
  std::map<std::string, BitVec> rot{{"D", BitVec(8, 0)},
                                    {"CADD", BitVec(1, 0)},
                                    {"CROT", BitVec(1, 1)}};
  interp.step(rot);
  EXPECT_EQ(interp.output("Q").to_uint64(), 20u);
}

}  // namespace
}  // namespace bridge
