// LEGEND tests: the Figure 2 counter description, round trips, semantic
// validation, and multi-generator libraries.
#include <gtest/gtest.h>

#include "base/diag.h"
#include "legend/legend.h"

namespace bridge::legend {
namespace {

using genus::Kind;
using genus::ParamMap;

TEST(Legend, ParsesFigure2Counter) {
  auto asts = parse_legend(figure2_counter_text());
  ASSERT_EQ(asts.size(), 1u);
  const auto& ast = asts[0];
  EXPECT_EQ(ast.name, "COUNTER");
  EXPECT_EQ(ast.klass, "Clocked");
  EXPECT_EQ(ast.max_params, 7);
  EXPECT_EQ(ast.parameters.size(), 7u);
  EXPECT_EQ(ast.parameters[1].name, "GC_INPUT_WIDTH");
  EXPECT_EQ(ast.parameters[1].annotation, "w");
  ASSERT_EQ(ast.styles.size(), 2u);
  EXPECT_EQ(ast.styles[0], "SYNCHRONOUS");
  ASSERT_EQ(ast.inputs.size(), 1u);
  EXPECT_EQ(ast.inputs[0].name, "I0");
  EXPECT_EQ(ast.inputs[0].width_text, "w");
  ASSERT_EQ(ast.controls.size(), 3u);
  EXPECT_EQ(ast.controls[1], "CUP");
  ASSERT_EQ(ast.operations.size(), 3u);
  EXPECT_EQ(ast.operations[0].name, "LOAD");
  EXPECT_EQ(ast.operations[0].control, "CLOAD");
  EXPECT_EQ(ast.operations[0].semantics, "O0 = I0");
  EXPECT_EQ(ast.operations[1].semantics, "O0 = O0 + 1");
  EXPECT_EQ(ast.vhdl_model, "counter_vhdl.c");
}

TEST(Legend, Figure2GeneratesWorkingCounter) {
  auto gen = to_generator(parse_legend(figure2_counter_text())[0]);
  EXPECT_EQ(gen.kind, Kind::kCounter);
  ParamMap p;
  p.set(genus::kParamInputWidth, 16L);
  auto comp = gen.generate(p);
  EXPECT_EQ(comp->port("I0").width, 16);  // symbolic width "w" resolved
  EXPECT_EQ(comp->port("O0").width, 16);
  EXPECT_EQ(comp->port("CLK").width, 1);
  EXPECT_EQ(comp->operations().size(), 3u);
}

TEST(Legend, RoundTripPreservesStructure) {
  auto gen = to_generator(parse_legend(figure2_counter_text())[0]);
  const std::string emitted = emit_legend(gen);
  auto gen2 = to_generator(parse_legend(emitted)[0]);
  EXPECT_EQ(gen2.name, gen.name);
  EXPECT_EQ(gen2.kind, gen.kind);
  EXPECT_EQ(gen2.styles, gen.styles);
  ASSERT_EQ(gen2.ports.size(), gen.ports.size());
  for (size_t i = 0; i < gen.ports.size(); ++i) {
    EXPECT_EQ(gen2.ports[i].name, gen.ports[i].name);
    EXPECT_EQ(gen2.ports[i].role, gen.ports[i].role);
  }
  ASSERT_EQ(gen2.operations.size(), gen.operations.size());
  for (size_t i = 0; i < gen.operations.size(); ++i) {
    EXPECT_EQ(gen2.operations[i].name, gen.operations[i].name);
    EXPECT_EQ(gen2.operations[i].control, gen.operations[i].control);
    EXPECT_EQ(gen2.operations[i].semantics, gen.operations[i].semantics);
  }
}

TEST(Legend, ValidatesOperationsAgainstPorts) {
  const char* bad = R"(
NAME: COUNTER
CLASS: Clocked
INPUTS: I0[w]
OUTPUTS: O0[w]
OPERATIONS:
  ( (LOAD) (INPUTS: NOPE) (OPS: (LOAD: O0 = NOPE)) )
)";
  EXPECT_THROW(to_generator(parse_legend(bad)[0]), Error);
}

TEST(Legend, RejectsDuplicatePortsAndBadSyntax) {
  EXPECT_THROW(to_generator(parse_legend(
                   "NAME: MUX\nINPUTS: A[w], A[w]\n")[0]),
               Error);
  EXPECT_THROW(parse_legend("CLASS: Clocked\n"), ParseError);  // before NAME
  EXPECT_THROW(parse_legend("NAME: COUNTER\nOPERATIONS:\n  ( (LOAD\n"),
               ParseError);  // unbalanced s-expression
  EXPECT_THROW(parse_legend("garbage here\n"), ParseError);
  EXPECT_THROW(parse_legend(""), ParseError);
}

TEST(Legend, CustomGeneratorWithExplicitKind) {
  const char* text = R"(
NAME: BYTE_LATCH
KIND: REGISTER
CLASS: Clocked
INPUTS: D[w]
OUTPUTS: Q[w]
CLOCK: CLK
ENABLE: EN
)";
  auto gen = to_generator(parse_legend(text)[0]);
  EXPECT_EQ(gen.kind, Kind::kRegister);
  EXPECT_EQ(gen.name, "BYTE_LATCH");
}

TEST(Legend, MultiGeneratorLibrary) {
  std::string text = std::string(figure2_counter_text()) + R"(
NAME: MUX
CLASS: Combinational
INPUTS: I0[w], I1[w]
OUTPUTS: OUT[w]
)";
  auto lib = load_library(text, "CUSTOM");
  EXPECT_EQ(lib.size(), 2);
  EXPECT_TRUE(lib.has("COUNTER"));
  EXPECT_TRUE(lib.has("MUX"));
}

}  // namespace
}  // namespace bridge::legend
