// High-level synthesis tests: parsing, FSMD construction (GENUS netlist +
// state table), and end-to-end co-simulation against software references.
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "base/diag.h"
#include "hls/fsmd.h"
#include "netlist/netlist.h"

namespace bridge {
namespace {

const char* kGcd = R"(
design gcd;
input a : 8;
input b : 8;
output r : 8;
var x : 8;
var y : 8;
begin
  x = a;
  y = b;
  while (x != y) {
    if (x > y) { x = x - y; } else { y = y - x; }
  }
  r = x;
end
)";

TEST(HlsParser, ParsesGcd) {
  auto d = hls::parse_behavior(kGcd);
  EXPECT_EQ(d.name, "gcd");
  ASSERT_EQ(d.inputs.size(), 2u);
  EXPECT_EQ(d.inputs[0].name, "a");
  EXPECT_EQ(d.inputs[0].width, 8);
  ASSERT_EQ(d.outputs.size(), 1u);
  ASSERT_EQ(d.vars.size(), 2u);
  ASSERT_EQ(d.body.size(), 4u);
  EXPECT_EQ(d.body[2]->kind, hls::Stmt::Kind::kWhile);
}

TEST(HlsParser, RejectsMalformedInput) {
  EXPECT_THROW(hls::parse_behavior("design x"), ParseError);
  // Undeclared names are caught at elaboration time.
  EXPECT_THROW(
      hls::synthesize_behavior(
          hls::parse_behavior("design x; begin y = 1; end")),
      Error);
  EXPECT_THROW(hls::parse_behavior("input a : 8;"), ParseError);
}

TEST(HlsFsmd, GcdProducesCleanNetlistAndTable) {
  auto fsmd = hls::synthesize_behavior(hls::parse_behavior(kGcd));
  // The datapath is a netlist of GENUS specification instances.
  auto issues = netlist::check_module(*fsmd.design.top());
  EXPECT_TRUE(issues.empty()) << issues.front();
  EXPECT_GE(fsmd.control.state_count(), 5);
  EXPECT_FALSE(fsmd.control.initial.empty());
  // The state table emits BIF-style text.
  std::string bif = fsmd.control.emit_bif();
  EXPECT_NE(bif.find("STATE S0"), std::string::npos);
  EXPECT_NE(bif.find("goto"), std::string::npos);
  EXPECT_NE(bif.find("INITIAL: S0"), std::string::npos);
}

TEST(HlsFsmd, GcdComputesGcd) {
  auto fsmd = hls::synthesize_behavior(hls::parse_behavior(kGcd));
  std::mt19937_64 rng(21);
  for (int trial = 0; trial < 15; ++trial) {
    std::uint64_t a = 1 + rng() % 200;
    std::uint64_t b = 1 + rng() % 200;
    auto run = hls::run_fsmd(fsmd, {{"a", BitVec(8, a)}, {"b", BitVec(8, b)}});
    EXPECT_TRUE(run.halted);
    EXPECT_EQ(run.outputs.at("r").to_uint64(), std::gcd(a, b))
        << "gcd(" << a << ", " << b << ")";
  }
}

TEST(HlsFsmd, StraightLineArithmetic) {
  const char* text = R"(
design mix;
input a : 8;
input b : 8;
output o1 : 8;
output o2 : 8;
begin
  o1 = (a + b) ^ (a & b);
  o2 = ~a | b;
end
)";
  auto fsmd = hls::synthesize_behavior(hls::parse_behavior(text));
  std::mt19937_64 rng(33);
  for (int trial = 0; trial < 20; ++trial) {
    std::uint64_t a = rng() & 0xFF;
    std::uint64_t b = rng() & 0xFF;
    auto run = hls::run_fsmd(fsmd, {{"a", BitVec(8, a)}, {"b", BitVec(8, b)}});
    EXPECT_TRUE(run.halted);
    EXPECT_EQ(run.outputs.at("o1").to_uint64(),
              (((a + b) ^ (a & b)) & 0xFF));
    EXPECT_EQ(run.outputs.at("o2").to_uint64(), ((~a | b) & 0xFF));
  }
}

TEST(HlsFsmd, ShiftsAndConditionChains) {
  const char* text = R"(
design shifty;
input a : 8;
output o : 8;
var t : 8;
begin
  t = a << 2;
  if (t >= 128) { t = t >> 1; }
  if (t == 0) { t = 1; } else { t = t + 1; }
  o = t;
end
)";
  auto fsmd = hls::synthesize_behavior(hls::parse_behavior(text));
  for (std::uint64_t a : {0ull, 1ull, 31ull, 32ull, 63ull, 200ull, 255ull}) {
    auto run = hls::run_fsmd(fsmd, {{"a", BitVec(8, a)}});
    std::uint64_t t = (a << 2) & 0xFF;
    if (t >= 128) t >>= 1;
    t = (t == 0) ? 1 : ((t + 1) & 0xFF);
    EXPECT_TRUE(run.halted);
    EXPECT_EQ(run.outputs.at("o").to_uint64(), t) << "a=" << a;
  }
}

TEST(HlsFsmd, CountingLoop) {
  const char* text = R"(
design popcountish;
input a : 8;
output n : 8;
var x : 8;
begin
  n = 0;
  x = a;
  while (x != 0) {
    n = n + 1;
    x = x & (x - 1);
  }
end
)";
  auto fsmd = hls::synthesize_behavior(hls::parse_behavior(text));
  for (std::uint64_t a : {0ull, 1ull, 3ull, 0x55ull, 0xFFull, 0x80ull}) {
    auto run = hls::run_fsmd(fsmd, {{"a", BitVec(8, a)}});
    EXPECT_TRUE(run.halted);
    EXPECT_EQ(run.outputs.at("n").to_uint64(),
              static_cast<std::uint64_t>(__builtin_popcountll(a)))
        << "a=" << a;
  }
}

TEST(HlsFsmd, RejectsComparisonAssignment) {
  const char* text = R"(
design bad;
input a : 8;
output o : 8;
begin
  o = a == 3;
end
)";
  EXPECT_THROW(hls::synthesize_behavior(hls::parse_behavior(text)), Error);
}

TEST(HlsFsmd, RejectsMixedWidths) {
  const char* text = R"(
design bad;
input a : 8;
output o : 4;
begin
  o = a;
end
)";
  EXPECT_THROW(hls::synthesize_behavior(hls::parse_behavior(text)), Error);
}

}  // namespace
}  // namespace bridge
