// Property-style equivalence sweep: every combinational component class
// DTAS claims to synthesize (§7: "bitwise logic gates and multiplexers,
// binary and BCD decoders and encoders, n-bit adders and comparators,
// n-bit arithmetic logic units, shifters, n-by-m multipliers") is
// synthesized against the LSI-style library and every surviving
// alternative is checked bit-true against the generic semantics.
#include <gtest/gtest.h>

#include "equiv_util.h"

namespace bridge {
namespace {

using genus::ComponentSpec;
using genus::Op;
using genus::OpSet;
using testutil::check_combinational_equivalence;

struct SpecCase {
  std::string label;
  ComponentSpec spec;
};

class CombEquiv : public ::testing::TestWithParam<SpecCase> {};

TEST_P(CombEquiv, MappedAlternativesMatchGenericSemantics) {
  check_combinational_equivalence(GetParam().spec, cells::lsi_library());
}

std::vector<SpecCase> gate_cases() {
  std::vector<SpecCase> cases;
  for (Op fn : {Op::kAnd, Op::kOr, Op::kNand, Op::kNor, Op::kXor, Op::kXnor,
                Op::kLimpl}) {
    for (int width : {1, 8}) {
      cases.push_back({genus::op_name(fn) + std::to_string(width),
                       genus::make_gate_spec(fn, width, 2)});
    }
  }
  // Inverters, buffers, and wide fan-in reductions.
  cases.push_back({"NOT8", genus::make_gate_spec(Op::kLnot, 8)});
  cases.push_back({"BUF4", genus::make_gate_spec(Op::kBuf, 4)});
  cases.push_back({"AND_FANIN7", genus::make_gate_spec(Op::kAnd, 1, 7)});
  cases.push_back({"OR_FANIN16", genus::make_gate_spec(Op::kOr, 1, 16)});
  cases.push_back({"NAND_FANIN3", genus::make_gate_spec(Op::kNand, 1, 3)});
  cases.push_back({"NAND_FANIN9", genus::make_gate_spec(Op::kNand, 1, 9)});
  cases.push_back({"NOR_FANIN12", genus::make_gate_spec(Op::kNor, 1, 12)});
  cases.push_back({"XOR_FANIN5", genus::make_gate_spec(Op::kXor, 1, 5)});
  cases.push_back({"XNOR_FANIN6", genus::make_gate_spec(Op::kXnor, 1, 6)});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Gates, CombEquiv, ::testing::ValuesIn(gate_cases()),
    [](const ::testing::TestParamInfo<SpecCase>& info) {
      return info.param.label;
    });

std::vector<SpecCase> mux_cases() {
  std::vector<SpecCase> cases;
  for (int inputs : {2, 3, 4, 5, 8, 11, 16}) {
    for (int width : {1, 8}) {
      cases.push_back(
          {"Mux" + std::to_string(inputs) + "x" + std::to_string(width),
           genus::make_mux_spec(width, inputs)});
    }
  }
  ComponentSpec sel;
  sel.kind = genus::Kind::kSelector;
  sel.width = 8;
  sel.size = 4;
  sel.ops = OpSet{Op::kPass};
  cases.push_back({"Selector4x8", sel});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Muxes, CombEquiv, ::testing::ValuesIn(mux_cases()),
    [](const ::testing::TestParamInfo<SpecCase>& info) {
      return info.param.label;
    });

std::vector<SpecCase> codec_cases() {
  std::vector<SpecCase> cases;
  for (int width : {1, 2, 3, 4, 5, 6}) {
    cases.push_back({"Decoder" + std::to_string(width),
                     genus::make_decoder_spec(width)});
  }
  ComponentSpec den = genus::make_decoder_spec(4);
  den.enable = true;
  cases.push_back({"Decoder4WithEnable", den});
  cases.push_back({"BcdDecoder",
                   genus::make_decoder_spec(4, genus::Representation::kBcd)});
  for (int width : {2, 3, 4}) {
    cases.push_back({"Encoder" + std::to_string(width),
                     genus::make_encoder_spec(width)});
  }
  cases.push_back({"BcdEncoder",
                   genus::make_encoder_spec(4, genus::Representation::kBcd)});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Codecs, CombEquiv, ::testing::ValuesIn(codec_cases()),
    [](const ::testing::TestParamInfo<SpecCase>& info) {
      return info.param.label;
    });

std::vector<SpecCase> arith_cases() {
  std::vector<SpecCase> cases;
  for (int width : {1, 3, 6, 8, 12, 16, 24, 32}) {
    cases.push_back({"Adder" + std::to_string(width),
                     genus::make_adder_spec(width)});
  }
  cases.push_back({"AdderNoCarries",
                   genus::make_adder_spec(8, false, false)});
  cases.push_back({"AdderNoCarryIn", genus::make_adder_spec(8, false, true)});
  for (int width : {2, 8, 16}) {
    cases.push_back({"AddSub" + std::to_string(width),
                     genus::make_addsub_spec(width)});
  }
  for (int width : {4, 8, 16}) {
    cases.push_back({"Subtractor" + std::to_string(width),
                     genus::make_subtractor_spec(width)});
  }
  ComponentSpec sub_b = genus::make_subtractor_spec(8);
  sub_b.carry_in = true;
  sub_b.carry_out = true;
  cases.push_back({"SubtractorWithBorrow", sub_b});
  for (auto [a, b] : {std::pair{4, 4}, std::pair{8, 4}, std::pair{8, 8},
                      std::pair{3, 5}, std::pair{6, 1}}) {
    cases.push_back(
        {"Mul" + std::to_string(a) + "x" + std::to_string(b),
         genus::make_multiplier_spec(a, b)});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, CombEquiv, ::testing::ValuesIn(arith_cases()),
    [](const ::testing::TestParamInfo<SpecCase>& info) {
      return info.param.label;
    });

std::vector<SpecCase> comparator_cases() {
  std::vector<SpecCase> cases;
  const OpSet full{Op::kEq, Op::kLt, Op::kGt};
  for (int width : {1, 4, 8, 16}) {
    cases.push_back({"Cmp" + std::to_string(width),
                     genus::make_comparator_spec(width, full)});
  }
  cases.push_back({"CmpEqOnly8",
                   genus::make_comparator_spec(8, OpSet{Op::kEq})});
  cases.push_back(
      {"CmpSixWay8", genus::make_comparator_spec(
                         8, OpSet{Op::kEq, Op::kNe, Op::kLt, Op::kGt,
                                  Op::kLe, Op::kGe})});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Comparators, CombEquiv, ::testing::ValuesIn(comparator_cases()),
    [](const ::testing::TestParamInfo<SpecCase>& info) {
      return info.param.label;
    });

std::vector<SpecCase> shifter_cases() {
  std::vector<SpecCase> cases;
  cases.push_back({"ShlShr8", genus::make_shifter_spec(
                                  8, OpSet{Op::kShl, Op::kShr})});
  cases.push_back({"FiveOp8",
                   genus::make_shifter_spec(
                       8, OpSet{Op::kShl, Op::kShr, Op::kAshr, Op::kRotl,
                                Op::kRotr})});
  cases.push_back({"RotlOnly16", genus::make_shifter_spec(
                                     16, OpSet{Op::kRotl})});
  cases.push_back({"BarrelShl8", genus::make_barrel_shifter_spec(
                                     8, OpSet{Op::kShl})});
  cases.push_back({"BarrelRot16", genus::make_barrel_shifter_spec(
                                      16, OpSet{Op::kRotl})});
  cases.push_back({"BarrelMultiOp8",
                   genus::make_barrel_shifter_spec(
                       8, OpSet{Op::kShl, Op::kShr, Op::kAshr, Op::kRotr})});
  cases.push_back({"BarrelNonPow2w6", genus::make_barrel_shifter_spec(
                                          6, OpSet{Op::kShr})});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Shifters, CombEquiv, ::testing::ValuesIn(shifter_cases()),
    [](const ::testing::TestParamInfo<SpecCase>& info) {
      return info.param.label;
    });

std::vector<SpecCase> lu_cases() {
  std::vector<SpecCase> cases;
  cases.push_back({"Lu8Full",
                   genus::make_logic_unit_spec(8, genus::alu16_logic_ops())});
  cases.push_back({"Lu4Pair", genus::make_logic_unit_spec(
                                  4, OpSet{Op::kAnd, Op::kXor})});
  cases.push_back({"Lu1Single", genus::make_logic_unit_spec(
                                    1, OpSet{Op::kNand})});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    LogicUnits, CombEquiv, ::testing::ValuesIn(lu_cases()),
    [](const ::testing::TestParamInfo<SpecCase>& info) {
      return info.param.label;
    });

std::vector<SpecCase> alu_cases() {
  std::vector<SpecCase> cases;
  cases.push_back({"Alu8Full16Fn", genus::make_alu_spec(8, genus::alu16_ops())});
  cases.push_back({"Alu16Full16Fn",
                   genus::make_alu_spec(16, genus::alu16_ops())});
  cases.push_back({"Alu8ArithOnly",
                   genus::make_alu_spec(8, genus::alu16_arith_ops())});
  cases.push_back({"Alu8LogicOnly",
                   genus::make_alu_spec(8, genus::alu16_logic_ops())});
  cases.push_back({"Alu8AddSubOnly",
                   genus::make_alu_spec(8, OpSet{Op::kAdd, Op::kSub})});
  ComponentSpec noci = genus::make_alu_spec(8, genus::alu16_ops());
  noci.carry_in = false;
  cases.push_back({"Alu8NoCarryIn", noci});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Alus, CombEquiv, ::testing::ValuesIn(alu_cases()),
    [](const ::testing::TestParamInfo<SpecCase>& info) {
      return info.param.label;
    });

std::vector<SpecCase> interface_cases() {
  std::vector<SpecCase> cases;
  ComponentSpec tri;
  tri.kind = genus::Kind::kTristate;
  tri.width = 8;
  tri.ops = OpSet{Op::kPass};
  tri.tristate = true;
  cases.push_back({"Tristate8", tri});
  ComponentSpec wor;
  wor.kind = genus::Kind::kWiredOr;
  wor.width = 4;
  wor.size = 3;
  wor.ops = OpSet{Op::kPass};
  cases.push_back({"WiredOr3x4", wor});
  ComponentSpec buf;
  buf.kind = genus::Kind::kBuffer;
  buf.width = 8;
  buf.ops = OpSet{Op::kPass};
  cases.push_back({"Buffer8", buf});
  ComponentSpec cc;
  cc.kind = genus::Kind::kConcat;
  cc.width = 4;
  cc.size = 3;
  cc.ops = OpSet{Op::kPass};
  cases.push_back({"Concat4_3", cc});
  ComponentSpec ex;
  ex.kind = genus::Kind::kExtract;
  ex.width = 8;
  ex.size = 3;
  ex.ops = OpSet{Op::kPass};
  cases.push_back({"Extract8to3", ex});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Interface, CombEquiv, ::testing::ValuesIn(interface_cases()),
    [](const ::testing::TestParamInfo<SpecCase>& info) {
      return info.param.label;
    });

// The TTL retarget library must also produce equivalent designs,
// including the 74181-style ALU slice cascade.
class TtlEquiv : public ::testing::TestWithParam<SpecCase> {};

TEST_P(TtlEquiv, MappedAlternativesMatchGenericSemantics) {
  dtas::RuleBase rules;
  dtas::register_standard_rules(rules);
  rules.add(dtas::make_ripple_adder_rule(4, true));
  rules.add(dtas::make_alu_slice_cascade_rule(4, true));
  rules.add(dtas::make_mux_bitslice_rule(4, true));
  rules.add(dtas::make_mux_tree_rule(4, true));
  dtas::Synthesizer synth(std::move(rules), cells::ttl_library());
  auto alts = synth.synthesize(GetParam().spec);
  ASSERT_FALSE(alts.empty());
  std::mt19937_64 rng(99);
  const auto ports = genus::spec_ports(GetParam().spec);
  for (const auto& alt : alts) {
    testutil::expect_clean_drc(alt, GetParam().label);
    sim::Simulator s(*alt.design->top());
    for (int trial = 0; trial < 25; ++trial) {
      sim::PortValues inputs;
      for (const auto& p : ports) {
        if (p.dir != genus::PortDir::kIn) continue;
        inputs[p.name] = testutil::random_vec(rng, p.width);
        s.set_input(p.name, inputs[p.name]);
      }
      s.eval();
      sim::PortValues expected =
          sim::eval_combinational(GetParam().spec, inputs);
      for (const auto& p : ports) {
        if (p.dir != genus::PortDir::kOut) continue;
        EXPECT_EQ(s.get(p.name), expected.at(p.name))
            << GetParam().label << " [" << alt.description << "] " << p.name;
      }
    }
  }
}

std::vector<SpecCase> ttl_cases() {
  std::vector<SpecCase> cases;
  OpSet sliceable = OpSet{Op::kAdd, Op::kSub} | genus::alu16_logic_ops();
  cases.push_back({"Alu16Sliceable", genus::make_alu_spec(16, sliceable)});
  cases.push_back({"Adder16", genus::make_adder_spec(16)});
  cases.push_back({"Mux8x8", genus::make_mux_spec(8, 8)});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Retarget, TtlEquiv, ::testing::ValuesIn(ttl_cases()),
    [](const ::testing::TestParamInfo<SpecCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace bridge
