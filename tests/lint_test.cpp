// Structural-linter tests (src/lint):
//  - one hand-built violating netlist per check class, each pinned to the
//    exact diagnostic (check id, object, severity) it must produce;
//  - negative controls for the false-positive traps (bit-sliced ripple
//    buses, legal open outputs);
//  - a clean-pass sweep: every front synthesized against every bundled
//    library, across cache toggles and thread counts, lints clean, and
//    fronts are byte-identical (descriptions + VHDL) with
//    SpaceOptions::verify_designs on or off;
//  - the rule-template checker over every template the built-in and
//    LOLA-induced rule sets produce for the bundled libraries, pinned
//    clean.
#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "base/diag.h"
#include "cells/registry.h"
#include "dtas/design_space.h"
#include "dtas/rule.h"
#include "dtas/synthesizer.h"
#include "genus/optype.h"
#include "genus/spec.h"
#include "lint/lint.h"
#include "lola/lola.h"
#include "netlist/netlist.h"
#include "vhdl/vhdl.h"

namespace bridge {
namespace {

using genus::Op;
using genus::OpSet;
using genus::PortDir;
using netlist::Design;
using netlist::Instance;
using netlist::Module;
using netlist::NetIndex;
using netlist::PortConn;
using netlist::RefKind;

const cells::LibraryRegistry& registry() {
  static cells::LibraryRegistry reg = [] {
    auto r = cells::LibraryRegistry::with_builtins();
    r.load_liberty_file(std::string(BRIDGE_LIBS_DIR) +
                        "/sample_sky130_subset.lib");
    return r;
  }();
  return reg;
}

/// Assert `diags` is exactly one error with the given check id and
/// object, and return it for further message checks.
lint::Diagnostic expect_single_error(const std::vector<lint::Diagnostic>& diags,
                                     const std::string& check,
                                     const std::string& object) {
  EXPECT_EQ(diags.size(), 1u) << lint::render(diags);
  if (diags.empty()) return {};
  const lint::Diagnostic& d = diags.front();
  EXPECT_EQ(d.severity, lint::Severity::kError);
  EXPECT_EQ(d.check, check) << d.to_string();
  EXPECT_EQ(d.object, object) << d.to_string();
  EXPECT_TRUE(lint::has_errors(diags));
  return d;
}

// ---------------------------------------------------------------------
// Per-violation-class fixtures.
// ---------------------------------------------------------------------

TEST(LintModule, MultiDrivenNet) {
  Module m("top");
  NetIndex a = m.add_port("A", PortDir::kIn, 1);
  NetIndex o = m.add_port("O", PortDir::kOut, 1);
  for (int i = 0; i < 2; ++i) {
    Instance& g = m.add_spec_instance("g" + std::to_string(i),
                                      genus::make_gate_spec(Op::kLnot, 1));
    m.connect(g, "I0", a);
    m.connect(g, "OUT", o);
  }
  auto d = expect_single_error(lint::lint_module(m), "multi-driven-net", "O");
  EXPECT_NE(d.message.find("2 drivers"), std::string::npos) << d.message;
}

TEST(LintModule, UndrivenNet) {
  Module m("top");
  NetIndex x = m.add_net("x", 1);
  NetIndex o = m.add_port("O", PortDir::kOut, 1);
  Instance& g = m.add_spec_instance("g", genus::make_gate_spec(Op::kLnot, 1));
  m.connect(g, "I0", x);
  m.connect(g, "OUT", o);
  auto d = expect_single_error(lint::lint_module(m), "undriven-net", "x");
  EXPECT_NE(d.message.find("driven by nothing"), std::string::npos);
}

TEST(LintModule, FloatingInput) {
  Module m("top");
  NetIndex o = m.add_port("O", PortDir::kOut, 1);
  Instance& g = m.add_spec_instance("g", genus::make_gate_spec(Op::kLnot, 1));
  m.connect(g, "OUT", o);
  expect_single_error(lint::lint_module(m), "floating-input", "g.I0");
}

TEST(LintModule, OpenOutputIsLegal) {
  // The netlist contract: "Open is only legal for outputs". A dropped
  // carry-out must not lint.
  Module m("top");
  NetIndex a = m.add_port("A", PortDir::kIn, 4);
  NetIndex b = m.add_port("B", PortDir::kIn, 4);
  NetIndex s = m.add_port("S", PortDir::kOut, 4);
  Instance& add = m.add_spec_instance(
      "add", genus::make_adder_spec(4, /*carry_in=*/false, /*carry_out=*/true));
  m.connect(add, "A", a);
  m.connect(add, "B", b);
  m.connect(add, "S", s);  // CO left open on purpose
  EXPECT_TRUE(lint::lint_module(m).empty())
      << lint::render(lint::lint_module(m));
}

TEST(LintModule, WidthMismatchSliceOverflow) {
  Module m("top");
  NetIndex a = m.add_port("A", PortDir::kIn, 8);
  NetIndex o = m.add_port("O", PortDir::kOut, 4);
  Instance& g = m.add_spec_instance("g", genus::make_gate_spec(Op::kBuf, 4));
  // connect() rejects this slice; the linter must catch a hand-wired one.
  g.connections["I0"] = PortConn::to_net(a, 5);  // [5, 9) overflows width 8
  m.connect(g, "OUT", o);
  auto d = expect_single_error(lint::lint_module(m), "width-mismatch", "g.I0");
  EXPECT_NE(d.message.find("overflows"), std::string::npos) << d.message;
}

TEST(LintModule, WidthMismatchReplicatedSourceBit) {
  Module m("top");
  NetIndex a = m.add_port("A", PortDir::kIn, 2);
  NetIndex o = m.add_port("O", PortDir::kOut, 4);
  Instance& g = m.add_spec_instance("g", genus::make_gate_spec(Op::kBuf, 4));
  g.connections["I0"] = PortConn::replicated(a, 7);  // bit 7 of a 2-bit net
  m.connect(g, "OUT", o);
  expect_single_error(lint::lint_module(m), "width-mismatch", "g.I0");
}

TEST(LintModule, UnknownPort) {
  Module m("top");
  NetIndex a = m.add_port("A", PortDir::kIn, 1);
  NetIndex o = m.add_port("O", PortDir::kOut, 1);
  Instance& g = m.add_spec_instance("g", genus::make_gate_spec(Op::kLnot, 1));
  m.connect(g, "I0", a);
  m.connect(g, "OUT", o);
  g.connections["BOGUS"] = PortConn::to_net(a);
  expect_single_error(lint::lint_module(m), "unknown-port", "g.BOGUS");
}

TEST(LintModule, DanglingNet) {
  Module m("top");
  NetIndex o = m.add_port("O", PortDir::kOut, 1);
  Instance& g = m.add_spec_instance("g", genus::make_gate_spec(Op::kLnot, 1));
  g.connections["I0"] = PortConn::to_net(99);
  m.connect(g, "OUT", o);
  expect_single_error(lint::lint_module(m), "dangling-net", "g.I0");
}

TEST(LintModule, ConstTieOnOutput) {
  Module m("top");
  NetIndex a = m.add_port("A", PortDir::kIn, 1);
  Instance& g = m.add_spec_instance("g", genus::make_gate_spec(Op::kLnot, 1));
  m.connect(g, "I0", a);
  g.connections["OUT"] = PortConn::constant(1);
  auto d = expect_single_error(lint::lint_module(m), "const-tie", "g.OUT");
  EXPECT_NE(d.message.find("output"), std::string::npos) << d.message;
}

TEST(LintModule, ConstTieOverflowsPortWidth) {
  Module m("top");
  NetIndex o = m.add_port("O", PortDir::kOut, 4);
  Instance& g = m.add_spec_instance("g", genus::make_gate_spec(Op::kBuf, 4));
  // connect_const() masks to the port width; hand-wire the raw value.
  g.connections["I0"] = PortConn::constant(0x10);  // needs 5 bits
  m.connect(g, "OUT", o);
  auto d = expect_single_error(lint::lint_module(m), "const-tie", "g.I0");
  EXPECT_NE(d.message.find("does not fit"), std::string::npos) << d.message;
}

TEST(LintModule, CombLoop) {
  Module m("top");
  NetIndex a = m.add_port("A", PortDir::kIn, 1);
  NetIndex x = m.add_net("x", 1);
  NetIndex y = m.add_net("y", 1);
  Instance& g0 =
      m.add_spec_instance("g0", genus::make_gate_spec(Op::kXor, 1, 2));
  m.connect(g0, "I0", a);
  m.connect(g0, "I1", y);
  m.connect(g0, "OUT", x);
  Instance& g1 = m.add_spec_instance("g1", genus::make_gate_spec(Op::kLnot, 1));
  m.connect(g1, "I0", x);
  m.connect(g1, "OUT", y);
  auto d = expect_single_error(lint::lint_module(m), "comb-loop", "g0");
  EXPECT_NE(d.message.find("g0 g1"), std::string::npos) << d.message;
}

TEST(LintModule, RegisterBreaksLoop) {
  // The same topology with a register in the feedback path is a plain
  // sequential circuit, not a loop.
  Module m("top");
  NetIndex a = m.add_port("A", PortDir::kIn, 1);
  NetIndex clk = m.add_port("CLK", PortDir::kIn, 1);
  NetIndex x = m.add_net("x", 1);
  NetIndex y = m.add_net("y", 1);
  Instance& g0 =
      m.add_spec_instance("g0", genus::make_gate_spec(Op::kXor, 1, 2));
  m.connect(g0, "I0", a);
  m.connect(g0, "I1", y);
  m.connect(g0, "OUT", x);
  Instance& r = m.add_spec_instance(
      "r", genus::make_register_spec(1, /*enable=*/false, /*areset=*/false));
  m.connect(r, "D", x);
  m.connect(r, "CLK", clk);
  m.connect(r, "Q", y);
  EXPECT_TRUE(lint::lint_module(m).empty())
      << lint::render(lint::lint_module(m));
}

TEST(LintModule, BitSlicedBusIsNotALoop) {
  // Two buffers chained through different bits of one bus: a net-granular
  // loop check would see bus -> bus and false-positive; the bit-granular
  // one must not.
  Module m("top");
  NetIndex a = m.add_port("A", PortDir::kIn, 1);
  NetIndex o = m.add_port("O", PortDir::kOut, 1);
  NetIndex bus = m.add_net("bus", 2);
  Instance& g0 = m.add_spec_instance("g0", genus::make_gate_spec(Op::kBuf, 1));
  m.connect(g0, "I0", a);
  m.connect(g0, "OUT", bus, 0);
  Instance& g1 = m.add_spec_instance("g1", genus::make_gate_spec(Op::kBuf, 1));
  m.connect(g1, "I0", bus, 0);
  m.connect(g1, "OUT", bus, 1);
  Instance& g2 = m.add_spec_instance("g2", genus::make_gate_spec(Op::kBuf, 1));
  m.connect(g2, "I0", bus, 1);
  m.connect(g2, "OUT", o);
  EXPECT_TRUE(lint::lint_module(m).empty())
      << lint::render(lint::lint_module(m));
}

TEST(LintModule, DanglingModuleRefNull) {
  Module m("top");
  Instance& u = m.add_spec_instance("u", genus::make_gate_spec(Op::kBuf, 1));
  u.ref = RefKind::kModule;
  u.module = nullptr;
  expect_single_error(lint::lint_module(m), "dangling-module-ref", "u");
}

TEST(LintDesign, DanglingModuleRefOutsideDesign) {
  Module child("child");
  NetIndex ci = child.add_port("I", PortDir::kIn, 1);
  NetIndex co = child.add_port("O", PortDir::kOut, 1);
  Instance& g =
      child.add_spec_instance("g", genus::make_gate_spec(Op::kBuf, 1));
  child.connect(g, "I0", ci);
  child.connect(g, "OUT", co);

  Design d("d");
  Module& top = d.add_module("top");
  NetIndex a = top.add_port("A", PortDir::kIn, 1);
  NetIndex o = top.add_port("O", PortDir::kOut, 1);
  Instance& u0 = top.add_module_instance("u0", &child,
                                         genus::make_gate_spec(Op::kBuf, 1));
  top.connect(u0, "I", a);
  top.connect(u0, "O", o);
  d.set_top(&top);

  auto diag =
      expect_single_error(lint::lint_design(d), "dangling-module-ref", "u0");
  EXPECT_NE(diag.message.find("not part of the design"), std::string::npos)
      << diag.message;
}

TEST(LintModule, NetNameCollisionCaseInsensitive) {
  Module m("top");
  m.add_net("foo", 1);
  m.add_net("FOO", 1);  // distinct netlist names, one VHDL identifier
  auto d =
      expect_single_error(lint::lint_module(m), "name-collision", "FOO");
  EXPECT_NE(d.message.find("'foo'"), std::string::npos) << d.message;
}

TEST(LintDesign, ModuleNameCollisionCaseInsensitive) {
  Design d("d");
  d.add_module("Alpha");
  d.add_module("alpha");
  expect_single_error(lint::lint_design(d), "name-collision", "alpha");
}

TEST(LintModule, ReservedModuleName) {
  Module m("register");  // VHDL-87 reserved word as an entity name
  auto d = expect_single_error(lint::lint_module(m), "illegal-name",
                               "register");
  EXPECT_NE(d.message.find("reserved"), std::string::npos) << d.message;
}

TEST(LintModule, ReservedPortNameIsAccepted) {
  // "OUT" is the standard result-port name across spec_ports; only module
  // names are screened for reserved words.
  Module m("top");
  NetIndex a = m.add_port("A", PortDir::kIn, 1);
  NetIndex o = m.add_port("OUT", PortDir::kOut, 1);
  Instance& g = m.add_spec_instance("g", genus::make_gate_spec(Op::kBuf, 1));
  m.connect(g, "I0", a);
  m.connect(g, "OUT", o);
  EXPECT_TRUE(lint::lint_module(m).empty())
      << lint::render(lint::lint_module(m));
}

TEST(LintDiagnostic, ToStringFormat) {
  lint::Diagnostic d;
  d.severity = lint::Severity::kError;
  d.check = "multi-driven-net";
  d.module = "top";
  d.object = "o";
  d.message = "bit 0 has 2 drivers";
  EXPECT_EQ(d.to_string(), "error[multi-driven-net] top/o: bit 0 has 2 drivers");
  d.severity = lint::Severity::kWarning;
  d.object.clear();
  EXPECT_EQ(d.to_string(), "warning[multi-driven-net] top: bit 0 has 2 drivers");
  EXPECT_FALSE(lint::has_errors({d}));
}

// ---------------------------------------------------------------------
// Rule-template checker fixtures.
// ---------------------------------------------------------------------

/// A minimal well-formed template: one buffer child covering A -> O.
Module make_buf_template() {
  Module t("tmpl");
  NetIndex a = t.add_port("A", PortDir::kIn, 4);
  NetIndex o = t.add_port("O", PortDir::kOut, 4);
  Instance& u = t.add_spec_instance("u", genus::make_gate_spec(Op::kBuf, 4));
  t.connect(u, "I0", a);
  t.connect(u, "OUT", o);
  return t;
}

TEST(CheckTemplate, CleanTemplatePasses) {
  Module t = make_buf_template();
  auto diags = lint::check_template(t, {genus::make_gate_spec(Op::kBuf, 4)});
  EXPECT_TRUE(diags.empty()) << lint::render(diags);
}

TEST(CheckTemplate, InstanceSpecMissingFromList) {
  Module t = make_buf_template();
  auto d = expect_single_error(lint::check_template(t, {}),
                               "template-spec-mismatch", "u");
  EXPECT_NE(d.message.find("missing from the template's child spec list"),
            std::string::npos)
      << d.message;
}

TEST(CheckTemplate, ListedSpecNeverInstantiated) {
  Module t = make_buf_template();
  const genus::ComponentSpec unused = genus::make_adder_spec(8);
  auto diags = lint::check_template(
      t, {genus::make_gate_spec(Op::kBuf, 4), unused});
  expect_single_error(diags, "unused-child-spec", unused.key());
}

TEST(CheckTemplate, NonSpecInstanceRejected) {
  Module child("child");
  NetIndex ci = child.add_port("I", PortDir::kIn, 1);
  NetIndex co = child.add_port("O", PortDir::kOut, 1);
  Instance& g =
      child.add_spec_instance("g", genus::make_gate_spec(Op::kBuf, 1));
  child.connect(g, "I0", ci);
  child.connect(g, "OUT", co);

  Module t("tmpl");
  NetIndex a = t.add_port("A", PortDir::kIn, 1);
  NetIndex o = t.add_port("O", PortDir::kOut, 1);
  Instance& u =
      t.add_module_instance("u", &child, genus::make_gate_spec(Op::kBuf, 1));
  t.connect(u, "I", a);
  t.connect(u, "O", o);
  auto d = expect_single_error(lint::check_template(t, {}),
                               "template-spec-mismatch", "u");
  EXPECT_NE(d.message.find("not a spec reference"), std::string::npos)
      << d.message;
}

// ---------------------------------------------------------------------
// Clean-pass sweep: real fronts lint clean, and verify is read-only.
// ---------------------------------------------------------------------

/// A small §6-style datapath of spec instances for synthesize_netlist.
Module make_datapath(int w) {
  Module m("sweeppath" + std::to_string(w));
  NetIndex a = m.add_port("A", PortDir::kIn, w);
  NetIndex b = m.add_port("B", PortDir::kIn, w);
  NetIndex ci = m.add_port("CI", PortDir::kIn, 1);
  NetIndex f = m.add_port("F", PortDir::kIn, 4);
  NetIndex clk = m.add_port("CLK", PortDir::kIn, 1);
  NetIndex en = m.add_port("EN", PortDir::kIn, 1);
  NetIndex arst = m.add_port("ARST", PortDir::kIn, 1);
  NetIndex out = m.add_port("OUT", PortDir::kOut, w);

  NetIndex ra = m.add_net("ra", w);
  NetIndex alu_out = m.add_net("alu_out", w);

  Instance& rin = m.add_spec_instance("rin", genus::make_register_spec(w));
  m.connect(rin, "D", a);
  m.connect(rin, "CLK", clk);
  m.connect(rin, "EN", en);
  m.connect(rin, "ARST", arst);
  m.connect(rin, "Q", ra);

  Instance& alu =
      m.add_spec_instance("alu0", genus::make_alu_spec(w, genus::alu16_ops()));
  m.connect(alu, "A", ra);
  m.connect(alu, "B", b);
  m.connect(alu, "CI", ci);
  m.connect(alu, "F", f);
  m.connect(alu, "OUT", alu_out);

  Instance& add = m.add_spec_instance(
      "add0", genus::make_adder_spec(w, /*carry_in=*/false,
                                     /*carry_out=*/false));
  m.connect(add, "A", alu_out);
  m.connect(add, "B", b);
  m.connect(add, "S", out);
  return m;
}

/// One front, rendered to comparable bytes.
struct FrontRecord {
  std::vector<double> areas, delays;
  std::vector<std::string> descriptions;
  std::vector<std::string> vhdl;

  bool operator==(const FrontRecord&) const = default;
};

FrontRecord record_front(const std::vector<dtas::AlternativeDesign>& alts) {
  FrontRecord rec;
  for (const dtas::AlternativeDesign& alt : alts) {
    rec.areas.push_back(alt.metric.area);
    rec.delays.push_back(alt.metric.delay);
    rec.descriptions.push_back(alt.description);
    rec.vhdl.push_back(vhdl::emit_structural(*alt.design));
  }
  return rec;
}

TEST(LintSweep, FrontsLintCleanAcrossTogglesAndThreads) {
  const std::vector<genus::ComponentSpec> specs = {
      genus::make_adder_spec(16),
      genus::make_alu_spec(16, OpSet{Op::kAdd, Op::kSub} |
                                   genus::alu16_logic_ops()),
      genus::make_mux_spec(16, 4),
      genus::make_register_spec(16),
  };
  const Module datapath = make_datapath(8);

  struct Config {
    bool caches;
    int threads;
    bool verify;
  };
  // The verify=false run is the byte-identity reference; every other
  // config runs with post-extraction verification on (the throw path),
  // covering cache toggles and thread counts.
  const std::vector<Config> configs = {
      {true, 1, false},  // reference
      {true, 1, true},  {false, 1, true},
      {true, 8, true},  {false, 8, true},
  };

  for (const cells::CellLibrary* lib : registry().all()) {
    std::vector<FrontRecord> reference;  // per case, from configs[0]
    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
      const Config& cfg = configs[ci];
      dtas::SpaceOptions opt;
      opt.use_template_cache = cfg.caches;
      opt.use_extraction_cache = cfg.caches;
      opt.delta_cache_keys = cfg.caches;
      opt.threads = cfg.threads;
      opt.verify_designs = cfg.verify;
      dtas::Synthesizer synth(*lib, opt);

      std::vector<std::vector<dtas::AlternativeDesign>> fronts;
      for (const genus::ComponentSpec& spec : specs) {
        fronts.push_back(synth.synthesize(spec));
      }
      fronts.push_back(synth.synthesize_netlist(datapath));

      for (std::size_t k = 0; k < fronts.size(); ++k) {
        const std::string context = lib->name() + " case " +
                                    std::to_string(k) + " config " +
                                    std::to_string(ci);
        EXPECT_FALSE(fronts[k].empty()) << context;
        // Every design of every front lints clean, whatever the toggles.
        for (const dtas::AlternativeDesign& alt : fronts[k]) {
          auto diags = lint::lint_design(*alt.design);
          EXPECT_TRUE(diags.empty())
              << context << " [" << alt.description << "]:\n"
              << lint::render(diags);
        }
        FrontRecord rec = record_front(fronts[k]);
        if (ci == 0) {
          reference.push_back(std::move(rec));
        } else {
          // Byte-identity: verification and the cache/thread toggles never
          // change metrics, descriptions, or emitted VHDL.
          EXPECT_TRUE(rec == reference[k]) << context << " diverged from the "
                                              "verify-off reference front";
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Rule-template sweep: every template the built-in and LOLA-induced rule
// sets produce for the bundled libraries passes check_template.
// ---------------------------------------------------------------------

/// Distinct child specs of a template in first-occurrence instance order
/// (the CompiledTemplate::child_specs construction).
std::vector<genus::ComponentSpec> distinct_child_specs(const Module& tmpl) {
  std::vector<genus::ComponentSpec> out;
  std::unordered_set<genus::ComponentSpec> seen;
  for (const Instance& inst : tmpl.instances()) {
    if (inst.ref != RefKind::kSpec) continue;
    if (seen.insert(inst.spec).second) out.push_back(inst.spec);
  }
  return out;
}

/// Expand every rule of `rules` over every spec reachable from `seeds`
/// (the same recursive closure DesignSpace::expand walks), check every
/// produced template, and return how many templates were checked.
/// Templates the engine rejects for combinational cycles
/// (CompiledTemplate::rejected — topo_order throws) are skipped exactly
/// as the engine skips them.
int sweep_rule_templates(const dtas::RuleBase& rules,
                         const cells::CellLibrary& lib,
                         std::vector<genus::ComponentSpec> seeds,
                         const std::string& context) {
  const dtas::RuleContext ctx{lib};
  std::unordered_set<genus::ComponentSpec> visited;
  int checked = 0;
  while (!seeds.empty()) {
    const genus::ComponentSpec spec = seeds.back();
    seeds.pop_back();
    if (!visited.insert(spec).second) continue;
    if (visited.size() >= 5000u) {
      ADD_FAILURE() << context << ": runaway spec closure";
      return checked;
    }
    for (const auto& rule : rules.rules()) {
      if (!rule->applies(spec, ctx)) continue;
      for (const Module& tmpl : rule->expand(spec, ctx)) {
        try {
          dtas::DesignSpace::topo_order(tmpl);
        } catch (const Error&) {
          continue;  // rejected template, never compiled or extracted
        }
        const std::vector<genus::ComponentSpec> children =
            distinct_child_specs(tmpl);
        auto diags = lint::check_template(tmpl, children);
        EXPECT_TRUE(diags.empty())
            << context << " rule " << rule->name() << " spec " << spec.key()
            << " template " << tmpl.name() << ":\n"
            << lint::render(diags);
        ++checked;
        for (const genus::ComponentSpec& child : children) {
          seeds.push_back(child);
        }
      }
    }
  }
  return checked;
}

std::vector<genus::ComponentSpec> sweep_seeds() {
  return {
      genus::make_adder_spec(8),
      genus::make_adder_spec(16),
      genus::make_adder_spec(64),
      genus::make_addsub_spec(16),
      genus::make_alu_spec(16, OpSet{Op::kAdd, Op::kSub} |
                                   genus::alu16_logic_ops()),
      genus::make_alu_spec(64, genus::alu16_ops()),
      genus::make_mux_spec(16, 4),
      genus::make_register_spec(16),
      genus::make_comparator_spec(8, OpSet{Op::kEq, Op::kLt}),
      genus::make_shifter_spec(16, OpSet{Op::kShl, Op::kShr}),
  };
}

TEST(LintSweep, RuleTemplatesCheckCleanForAllLibraries) {
  // default_rules_for: hand-written LSI rules for the paper's library,
  // LOLA-induced rules for every other bundled book.
  for (const cells::CellLibrary* lib : registry().all()) {
    dtas::RuleBase rules = dtas::default_rules_for(*lib);
    const int checked =
        sweep_rule_templates(rules, *lib, sweep_seeds(), lib->name());
    EXPECT_GT(checked, 20) << lib->name()
                           << ": template sweep looks vacuous";
  }
}

TEST(LintSweep, LolaInducedTemplatesOnLsiCheckClean) {
  // The LSI book normally gets the hand-written rules; force LOLA
  // induction over it too, so both library-specific flavors are swept.
  const cells::CellLibrary& lib = cells::lsi_library();
  dtas::RuleBase rules;
  dtas::register_standard_rules(rules);
  lola::induce_rules(lib, rules);
  const int checked =
      sweep_rule_templates(rules, lib, sweep_seeds(), "lsi+lola");
  EXPECT_GT(checked, 20) << "lsi+lola template sweep looks vacuous";
}

}  // namespace
}  // namespace bridge
