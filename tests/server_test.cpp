// The synthesis server: lifecycle, concurrent clients against shared
// warm caches (fronts byte-identical to in-process synthesis), deadline
// requests, malformed/oversized frame rejection, client disconnects, and
// fault injection — none of which may wedge the pool or corrupt shared
// caches.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <string>
#include <thread>
#include <vector>

#include "api/api.h"
#include "base/diag.h"
#include "base/fault.h"
#include "cells/cell.h"
#include "cells/registry.h"
#include "genus/spec.h"
#include "server/protocol.h"
#include "server/server.h"

namespace bridge {
namespace {

using api::Json;

// One request/response exchange on a fresh connection.
std::string rpc(int port, const std::string& frame) {
  const int fd = server::connect_tcp(port);
  server::write_frame(fd, frame);
  std::string payload;
  if (!server::read_frame(fd, payload)) {
    server::close_socket(fd);
    throw Error("server closed the connection without responding");
  }
  server::close_socket(fd);
  return payload;
}

std::string synthesize_frame(const api::SynthesisRequest& req) {
  Json j = req.encode();
  j.set("method", "synthesize");
  return j.dump();
}

api::SynthesisResult synthesize_over_wire(int port,
                                          const api::SynthesisRequest& req) {
  return api::SynthesisResult::from_json(rpc(port, synthesize_frame(req)));
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_ = cells::LibraryRegistry::with_builtins();
    server::ServerOptions options;
    options.tcp_port = 0;  // ephemeral
    options.workers = 2;   // explicit: the container reports 1 core
    server_ = std::make_unique<server::SynthesisServer>(registry_, options);
    server_->start();
  }

  void TearDown() override {
    base::FaultInjector::global().disarm();
    if (server_) server_->stop();
  }

  int port() const { return server_->port(); }

  cells::LibraryRegistry registry_;
  std::unique_ptr<server::SynthesisServer> server_;
};

TEST_F(ServerTest, HealthReportsLibrariesAndWorkers) {
  const Json res = Json::parse(
      rpc(port(), Json::object().set("method", "health").dump()));
  EXPECT_EQ(res.at("status").string_value(), "ok");
  EXPECT_EQ(res.at("workers").integer(), 2);
  const Json& libs = res.at("libraries");
  bool saw_lsi = false;
  for (const Json& lib : libs.items()) {
    if (lib.string_value() == cells::lsi_library().name()) saw_lsi = true;
  }
  EXPECT_TRUE(saw_lsi);
}

TEST_F(ServerTest, MetricsEmbedsRegistrySnapshot) {
  // A synthesis first, so the snapshot has something to say.
  api::SynthesisRequest req;
  req.library = cells::lsi_library().name();
  req.spec = genus::make_adder_spec(8);
  ASSERT_TRUE(synthesize_over_wire(port(), req).ok());

  const Json res = Json::parse(
      rpc(port(), Json::object().set("method", "metrics").dump()));
  EXPECT_EQ(res.at("status").string_value(), "ok");
  ASSERT_NE(res.find("metrics"), nullptr);
  // The obs registry snapshot rides along verbatim (counters etc.).
  EXPECT_TRUE(res.at("metrics").find("counters") != nullptr ||
              res.at("metrics").find("gauges") != nullptr);
}

TEST_F(ServerTest, ConcurrentClientsMatchSerialInProcess) {
  // 8 clients, mixed specs, all against the shared warm TemplateCache;
  // every front must be byte-identical to serial in-process synthesis.
  std::vector<api::SynthesisRequest> reqs(8);
  const genus::ComponentSpec specs[] = {
      genus::make_adder_spec(8),
      genus::make_adder_spec(16),
      genus::make_mux_spec(8, 4),
      genus::make_alu_spec(16, genus::alu16_ops()),
  };
  for (size_t i = 0; i < reqs.size(); ++i) {
    reqs[i].library = cells::lsi_library().name();
    reqs[i].spec = specs[i % 4];
    reqs[i].options.emit_vhdl = true;
  }

  // Serial reference fronts, in process, one fresh session.
  dtas::Synthesizer direct(cells::lsi_library());
  std::vector<std::vector<dtas::AlternativeDesign>> expected;
  for (const api::SynthesisRequest& req : reqs) {
    expected.push_back(direct.synthesize(*req.spec));
    ASSERT_FALSE(expected.back().empty());
  }

  std::vector<api::SynthesisResult> results(reqs.size());
  std::vector<std::thread> clients;
  for (size_t i = 0; i < reqs.size(); ++i) {
    clients.emplace_back([this, i, &reqs, &results] {
      try {
        results[i] = synthesize_over_wire(port(), reqs[i]);
      } catch (const std::exception& e) {
        results[i] = api::SynthesisResult::make_error("error", e.what());
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (size_t i = 0; i < reqs.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << i << ": " << results[i].error;
    EXPECT_TRUE(api::front_matches(results[i], expected[i], /*with_vhdl=*/true))
        << "front " << i << " differs from in-process synthesis";
  }
  EXPECT_GE(server_->requests_handled(), 8);
  EXPECT_EQ(server_->errors_returned(), 0);
}

TEST_F(ServerTest, GarbageFramesGetErrorResponsesAndConnectionSurvives) {
  // The parser-robustness corpus, framed and sent down one connection:
  // every entry earns an error response, then a valid request still
  // works on the very same connection.
  const std::vector<std::string> corpus = {
      "",
      "\n\n\n",
      std::string(5, '\0'),
      "\xff\xfe\x80\x81 binary junk \x01\x02",
      "))))((((",
      "library library library",
      "LIBRARY",
      "NAME:",
      "!@#$%^&*",
      std::string(10000, 'x'),
      "\"unterminated string",
      "{\"method\": \"synthesize\"}",          // parses; no library
      "{\"method\": \"no_such_method\"}",
      "[1, 2, 3]",                             // not an object
  };
  const int fd = server::connect_tcp(port());
  for (const std::string& garbage : corpus) {
    server::write_frame(fd, garbage);
    std::string payload;
    ASSERT_TRUE(server::read_frame(fd, payload)) << "closed on: " << garbage;
    const Json res = Json::parse(payload);
    EXPECT_EQ(res.at("status").string_value(), "error") << garbage;
  }
  // Same connection, now a well-formed request.
  api::SynthesisRequest req;
  req.library = cells::lsi_library().name();
  req.spec = genus::make_adder_spec(8);
  server::write_frame(fd, synthesize_frame(req));
  std::string payload;
  ASSERT_TRUE(server::read_frame(fd, payload));
  EXPECT_TRUE(api::SynthesisResult::from_json(payload).ok());
  server::close_socket(fd);
  EXPECT_GT(server_->errors_returned(), 0);
}

TEST_F(ServerTest, OversizedFrameIsRejectedWithoutWedging) {
  const int fd = server::connect_tcp(port());
  // A frame header announcing far more than max_frame_bytes: the server
  // answers from the header alone and closes.
  const std::string huge(64, 'x');
  unsigned char header[4] = {0x7f, 0xff, 0xff, 0xff};  // ~2 GiB announced
  ASSERT_EQ(::send(fd, header, 4, MSG_NOSIGNAL), 4);
  ASSERT_EQ(::send(fd, huge.data(), huge.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(huge.size()));
  std::string payload;
  ASSERT_TRUE(server::read_frame(fd, payload));
  const Json res = Json::parse(payload);
  EXPECT_EQ(res.at("status").string_value(), "error");
  server::close_socket(fd);

  // The server is unharmed: a fresh connection synthesizes fine.
  api::SynthesisRequest req;
  req.library = cells::lsi_library().name();
  req.spec = genus::make_adder_spec(8);
  EXPECT_TRUE(synthesize_over_wire(port(), req).ok());
}

TEST_F(ServerTest, DeadlineRequestAnsweredBestEffortOrRejectedCleanly) {
  api::SynthesisRequest req;
  req.library = cells::lsi_library().name();
  req.spec = genus::make_alu_spec(64, genus::alu16_ops());
  req.options.deadline_ms = 1;
  req.options.deadline_best_effort = true;
  const api::SynthesisResult res = synthesize_over_wire(port(), req);
  // Best effort: a (possibly truncated) front with deadline_hit set, or
  // a clean cancellation — never a wedged connection or a crash.
  EXPECT_TRUE(res.ok() || res.status == "cancelled") << res.status;

  // Hard deadline (no best-effort): same contract.
  req.options.deadline_best_effort = false;
  const api::SynthesisResult hard = synthesize_over_wire(port(), req);
  EXPECT_TRUE(hard.ok() || hard.status == "cancelled") << hard.status;

  // The next undeadlined request on the same server is full and exact.
  req.options.deadline_ms = 0;
  req.options.deadline_best_effort = false;
  const api::SynthesisResult full = synthesize_over_wire(port(), req);
  ASSERT_TRUE(full.ok()) << full.error;
  dtas::Synthesizer direct(cells::lsi_library());
  EXPECT_TRUE(api::front_matches(full, direct.synthesize(*req.spec),
                                 /*with_vhdl=*/false));
}

TEST_F(ServerTest, ClientDisconnectMidRequestDoesNotWedgeThePool) {
  // Fire a heavy request and slam the connection shut without reading
  // the response.
  api::SynthesisRequest req;
  req.library = cells::lsi_library().name();
  req.spec = genus::make_alu_spec(64, genus::alu16_ops());
  const int fd = server::connect_tcp(port());
  server::write_frame(fd, synthesize_frame(req));
  server::close_socket(fd);

  // The pool digests it; subsequent clients are served correctly.
  req.spec = genus::make_adder_spec(16);
  const api::SynthesisResult res = synthesize_over_wire(port(), req);
  ASSERT_TRUE(res.ok()) << res.error;
  dtas::Synthesizer direct(cells::lsi_library());
  EXPECT_TRUE(api::front_matches(res, direct.synthesize(*req.spec),
                                 /*with_vhdl=*/false));
}

TEST_F(ServerTest, InjectedFaultBecomesErrorResponseThenIdenticalRetry) {
  api::SynthesisRequest req;
  req.library = cells::lsi_library().name();
  req.spec = genus::make_adder_spec(16);

  base::FaultInjector::global().arm_site("server.request");
  const api::SynthesisResult faulted = synthesize_over_wire(port(), req);
  EXPECT_EQ(faulted.status, "error");
  EXPECT_NE(faulted.error.find("injected"), std::string::npos)
      << faulted.error;

  // One-shot: the injector disarmed itself; the retry is clean and
  // byte-identical to in-process synthesis.
  const api::SynthesisResult retry = synthesize_over_wire(port(), req);
  ASSERT_TRUE(retry.ok()) << retry.error;
  dtas::Synthesizer direct(cells::lsi_library());
  EXPECT_TRUE(api::front_matches(retry, direct.synthesize(*req.spec),
                                 /*with_vhdl=*/false));
}

TEST_F(ServerTest, SeededFaultRunNeitherWedgesPoolNorCorruptsCaches) {
  // The CI fault matrix's mode: a seeded schedule firing across every
  // probe site in the pipeline. Requests may fail — the server must
  // answer every one and come out of it with caches intact.
  api::SynthesisRequest req;
  req.library = cells::lsi_library().name();
  long failures = 0;
  base::FaultInjector::global().arm(12345, /*period=*/8);
  for (int width : {8, 12, 16, 8, 12, 16}) {
    req.spec = genus::make_adder_spec(width);
    const api::SynthesisResult res = synthesize_over_wire(port(), req);
    if (!res.ok()) ++failures;
  }
  base::FaultInjector::global().disarm();

  // Clean run after the storm: byte-identical to a fresh in-process
  // session, proving the shared caches were not corrupted.
  req.spec = genus::make_adder_spec(16);
  const api::SynthesisResult res = synthesize_over_wire(port(), req);
  ASSERT_TRUE(res.ok()) << res.error;
  dtas::Synthesizer direct(cells::lsi_library());
  EXPECT_TRUE(api::front_matches(res, direct.synthesize(*req.spec),
                                 /*with_vhdl=*/false));
}

TEST_F(ServerTest, ShutdownMethodUnblocksWait) {
  std::thread waiter([this] { server_->wait(); });
  const Json res = Json::parse(
      rpc(port(), Json::object().set("method", "shutdown").dump()));
  EXPECT_EQ(res.at("status").string_value(), "ok");
  waiter.join();  // wait() returned: the shutdown request landed
  server_->stop();
  EXPECT_FALSE(server_->running());
}

TEST(ServerRetargetTest, ContentIdenticalReloadReusesWarmSession) {
  // The retargeting loop a synthesis service actually sees: a client
  // re-registers a .lib it just re-read from disk. Sessions are keyed by
  // library *content* fingerprint, so an identical-content reload maps
  // back onto the warm session (extraction served from cache), while any
  // content edit gets a fresh cold one. workers=1 pins every request to
  // the one per-slot session map, making cache-delta assertions exact.
  auto registry = cells::LibraryRegistry::with_builtins();
  server::ServerOptions options;
  options.tcp_port = 0;
  options.workers = 1;
  server::SynthesisServer srv(registry, options);
  srv.start();

  api::SynthesisRequest req;
  req.library = cells::ttl_library().name();
  req.spec = genus::make_alu_spec(16, genus::alu16_ops());
  req.options.emit_vhdl = true;

  const api::SynthesisResult cold = synthesize_over_wire(srv.port(), req);
  ASSERT_TRUE(cold.ok()) << cold.error;
  EXPECT_GT(cold.stats.extraction_cache_misses, 0);

  // Reload with identical content: a brand-new CellLibrary instance, the
  // same fingerprint. The old instance stays alive (the running session
  // references it), and the next request lands on the warm session.
  registry.replace(cells::ttl_library());
  const api::SynthesisResult warm = synthesize_over_wire(srv.port(), req);
  ASSERT_TRUE(warm.ok()) << warm.error;
  EXPECT_EQ(warm.stats.extraction_cache_misses, 0)
      << "identical-content reload must not re-materialize anything";
  EXPECT_GT(warm.stats.extraction_cache_hits, 0);
  ASSERT_EQ(warm.alternatives.size(), cold.alternatives.size());
  for (size_t i = 0; i < warm.alternatives.size(); ++i) {
    EXPECT_EQ(warm.alternatives[i].area, cold.alternatives[i].area) << i;
    EXPECT_EQ(warm.alternatives[i].delay, cold.alternatives[i].delay) << i;
    EXPECT_EQ(warm.alternatives[i].description,
              cold.alternatives[i].description) << i;
    EXPECT_EQ(warm.alternatives[i].vhdl, cold.alternatives[i].vhdl) << i;
  }

  // Edited reload: one extra cell changes the fingerprint, so the next
  // request gets a fresh session and starts cold again.
  cells::CellLibrary edited = cells::ttl_library();
  cells::Cell extra;
  extra.name = "XTRA1";
  extra.spec = genus::make_gate_spec(genus::Op::kAnd, 1, 2);
  extra.area = 1.0;
  extra.delay_ns = 1.0;
  edited.add(extra);
  registry.replace(std::move(edited));
  const api::SynthesisResult recold = synthesize_over_wire(srv.port(), req);
  ASSERT_TRUE(recold.ok()) << recold.error;
  EXPECT_GT(recold.stats.extraction_cache_misses, 0)
      << "a content edit must not reuse the stale warm session";
  srv.stop();
}

TEST(ServerUnixTest, UnixSocketEndpointServes) {
  auto registry = cells::LibraryRegistry::with_builtins();
  server::ServerOptions options;
  options.unix_path = "/tmp/bridge_server_test.sock";
  options.workers = 1;
  server::SynthesisServer srv(registry, options);
  srv.start();
  EXPECT_EQ(srv.endpoint(), "unix:/tmp/bridge_server_test.sock");

  api::SynthesisRequest req;
  req.library = cells::lsi_library().name();
  req.spec = genus::make_adder_spec(8);
  Json j = req.encode();
  j.set("method", "synthesize");
  const int fd = server::connect_unix(options.unix_path);
  server::write_frame(fd, j.dump());
  std::string payload;
  ASSERT_TRUE(server::read_frame(fd, payload));
  server::close_socket(fd);
  EXPECT_TRUE(api::SynthesisResult::from_json(payload).ok());
  srv.stop();
}

}  // namespace
}  // namespace bridge
