// LibraryRegistry tests: built-ins, name lookup, duplicate rejection,
// file loading for both text formats (with content sniffing), and the
// emit -> file -> load data-book round trip for both built-in libraries.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "base/diag.h"
#include "cells/databook.h"
#include "cells/registry.h"
#include "dtas/synthesizer.h"
#include "liberty/liberty.h"

namespace bridge::cells {
namespace {

/// Write `text` to a fresh file under the test's temp directory.
std::string write_temp(const std::string& name, const std::string& text) {
  const char* tmp = std::getenv("TMPDIR");
  std::string path =
      std::string(tmp != nullptr ? tmp : "/tmp") + "/bridge_" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  out.close();
  return path;
}

TEST(LibraryRegistry, BuiltinsAreRegisteredInOrder) {
  auto reg = LibraryRegistry::with_builtins();
  EXPECT_EQ(reg.size(), 2);
  EXPECT_EQ(reg.names(), (std::vector<std::string>{"LSI_LGC15", "TTL74"}));
  ASSERT_NE(reg.find("LSI_LGC15"), nullptr);
  EXPECT_EQ(reg.find("LSI_LGC15")->size(), 30);
  EXPECT_EQ(reg.find("NOPE"), nullptr);
  EXPECT_EQ(reg.at("TTL74").size(), 18);
}

TEST(LibraryRegistry, RejectsDuplicatesAndUnknownNames) {
  auto reg = LibraryRegistry::with_builtins();
  EXPECT_THROW(reg.add(lsi_library()), Error);
  EXPECT_THROW(reg.add(CellLibrary()), Error);  // unnamed
  try {
    reg.at("missing");
    FAIL() << "expected a throw";
  } catch (const Error& e) {
    // The error lists what *is* registered.
    EXPECT_NE(std::string(e.what()).find("LSI_LGC15"), std::string::npos);
  }
}

TEST(LibraryRegistry, StoredLibrariesHaveStableAddresses) {
  LibraryRegistry reg;
  const CellLibrary& first = reg.add(lsi_library());
  for (int i = 0; i < 16; ++i) {
    CellLibrary lib("lib" + std::to_string(i));
    reg.add(std::move(lib));
  }
  // The first library's address (and its cells') survived the growth;
  // DTAS design spaces hold `const Cell*` into these.
  EXPECT_EQ(&reg.at("LSI_LGC15"), &first);
  EXPECT_EQ(reg.at("LSI_LGC15").find("ADD4"), first.find("ADD4"));
}

TEST(LibraryRegistry, DatabookFileRoundTripsBothBuiltins) {
  // emit_databook -> file -> load_databook_file preserves every cell's
  // name, spec, and metrics for both built-in libraries.
  for (const CellLibrary* lib : {&lsi_library(), &ttl_library()}) {
    const std::string path =
        write_temp("registry_roundtrip_" + lib->name() + ".book",
                   emit_databook(*lib));
    LibraryRegistry reg;
    const CellLibrary& loaded = reg.load_databook_file(path);
    EXPECT_EQ(loaded.name(), lib->name());
    ASSERT_EQ(loaded.size(), lib->size());
    for (const Cell& c : lib->all()) {
      const Cell* r = loaded.find(c.name);
      ASSERT_NE(r, nullptr) << c.name;
      EXPECT_EQ(r->spec, c.spec) << c.name;
      EXPECT_DOUBLE_EQ(r->area, c.area) << c.name;
      EXPECT_DOUBLE_EQ(r->delay_ns, c.delay_ns) << c.name;
      EXPECT_EQ(r->description, c.description) << c.name;
    }
    std::remove(path.c_str());
  }
}

TEST(LibraryRegistry, LoadFileSniffsBothFormats) {
  const std::string book = write_temp(
      "sniff.book",
      "# comment first\nLIBRARY SNIFFED \"desc\"\n"
      "CELL X KIND GATE WIDTH 1 SIZE 1 OPS ( LNOT ) AREA 1 DELAY 1\n");
  const std::string lib = write_temp(
      "sniff.lib",
      "/* comment first */\n"
      "library (sniffed_liberty) {\n"
      "  cell (inv) { area : 1; pin (A) { direction : input; }\n"
      "    pin (Y) { direction : output; function : \"!A\"; } }\n"
      "}\n");
  LibraryRegistry reg;
  EXPECT_EQ(reg.load_file(book).name(), "SNIFFED");
  EXPECT_EQ(reg.load_file(lib).name(), "sniffed_liberty");
  EXPECT_EQ(reg.size(), 2);
  std::remove(book.c_str());
  std::remove(lib.c_str());

  EXPECT_THROW(LibraryRegistry().load_file("/nonexistent/path.lib"), Error);
}

TEST(LibraryRegistry, LibertyFileRegistersAndSynthesizes) {
  LibraryRegistry reg = LibraryRegistry::with_builtins();
  liberty::LoadReport report;
  const CellLibrary& sky = reg.load_liberty_file(
      std::string(BRIDGE_LIBS_DIR) + "/sample_sky130_subset.lib", &report);
  EXPECT_EQ(reg.size(), 3);
  EXPECT_GT(report.recognized, 0);

  // The acceptance path: a registry-held Liberty library drives DTAS to a
  // non-empty Pareto set for an 8-bit adder.
  dtas::Synthesizer synth(sky);
  auto alts = synth.synthesize(genus::make_adder_spec(8));
  ASSERT_FALSE(alts.empty());
  // Pareto order: ascending area, descending delay.
  for (size_t i = 1; i < alts.size(); ++i) {
    EXPECT_LE(alts[i - 1].metric.area, alts[i].metric.area);
    EXPECT_GE(alts[i - 1].metric.delay, alts[i].metric.delay);
  }
}

TEST(Databook, UnterminatedOpsGroupCarriesLineNumber) {
  try {
    parse_databook(
        "LIBRARY L \"x\"\n"
        "CELL OK KIND GATE WIDTH 1 SIZE 1 OPS ( LNOT ) AREA 1 DELAY 1\n"
        "CELL BAD KIND GATE OPS ( ADD\n");
    FAIL() << "expected a throw";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("unterminated"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("BAD"), std::string::npos);
  }
}

}  // namespace
}  // namespace bridge::cells
