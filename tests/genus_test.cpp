// GENUS unit tests: op sets, kinds, specs/ports, generators, components,
// instances, library, taxonomy.
#include <gtest/gtest.h>

#include "base/diag.h"
#include "genus/library.h"
#include "genus/taxonomy.h"

namespace bridge::genus {
namespace {

TEST(OpSet, BasicSetAlgebra) {
  OpSet s{Op::kAdd, Op::kSub};
  EXPECT_TRUE(s.contains(Op::kAdd));
  EXPECT_FALSE(s.contains(Op::kMul));
  EXPECT_EQ(s.size(), 2);
  OpSet t{Op::kAdd};
  EXPECT_TRUE(s.contains_all(t));
  EXPECT_FALSE(t.contains_all(s));
  EXPECT_EQ((s - t).size(), 1);
  EXPECT_TRUE((s & t).contains(Op::kAdd));
  EXPECT_TRUE(s.intersects(t));
}

TEST(OpSet, RoundTripsThroughText) {
  OpSet s = alu16_ops();
  EXPECT_EQ(s.size(), 16);
  OpSet parsed = OpSet::parse(s.to_string());
  EXPECT_EQ(parsed, s);
}

TEST(OpSet, Alu16OrderMatchesPaper) {
  // The F-code assignment depends on this order (ADD=0 ... LIMPL=15).
  auto v = alu16_ops().to_vector();
  ASSERT_EQ(v.size(), 16u);
  EXPECT_EQ(v[0], Op::kAdd);
  EXPECT_EQ(v[1], Op::kSub);
  EXPECT_EQ(v[7], Op::kZerop);
  EXPECT_EQ(v[8], Op::kAnd);
  EXPECT_EQ(v[15], Op::kLimpl);
}

TEST(OpNames, ParseIsCaseInsensitiveAndTotal) {
  EXPECT_EQ(op_from_name("count_up"), Op::kCountUp);
  EXPECT_EQ(op_from_name("ZEROP"), Op::kZerop);
  EXPECT_THROW(op_from_name("FROB"), Error);
  for (int i = 0; i < kNumOps; ++i) {
    Op op = static_cast<Op>(i);
    EXPECT_EQ(op_from_name(op_name(op)), op);
  }
}

TEST(Kinds, TableOneTypeClasses) {
  EXPECT_EQ(kind_type_class(Kind::kAlu), TypeClass::kCombinational);
  EXPECT_EQ(kind_type_class(Kind::kCounter), TypeClass::kSequential);
  EXPECT_EQ(kind_type_class(Kind::kTristate), TypeClass::kInterface);
  EXPECT_EQ(kind_type_class(Kind::kBus), TypeClass::kMiscellaneous);
  EXPECT_TRUE(kind_is_sequential(Kind::kRegister));
  EXPECT_FALSE(kind_is_sequential(Kind::kMux));
}

TEST(Spec, KeyIsCanonicalAndHashable) {
  ComponentSpec a = make_adder_spec(16);
  ComponentSpec b = make_adder_spec(16);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.key(), b.key());
  EXPECT_EQ(std::hash<ComponentSpec>()(a), std::hash<ComponentSpec>()(b));
  b.carry_in = false;
  EXPECT_NE(a, b);
  EXPECT_NE(a.key(), b.key());
}

TEST(Spec, AluPortsIncludeStatusPins) {
  ComponentSpec alu = make_alu_spec(64, alu16_ops());
  auto ports = spec_ports(alu);
  EXPECT_EQ(find_port(ports, "A").width, 64);
  EXPECT_EQ(find_port(ports, "F").width, 4);  // the paper's "S-4"
  EXPECT_EQ(find_port(ports, "EQ").width, 1);
  EXPECT_EQ(find_port(ports, "ZEROP").width, 1);
  EXPECT_THROW(find_port(ports, "NOPE"), Error);
}

TEST(Spec, SelectWidths) {
  EXPECT_EQ(make_alu_spec(8, alu16_ops()).select_width(), 4);
  EXPECT_EQ(make_mux_spec(8, 8).size, 8);
  EXPECT_EQ(find_port(spec_ports(make_mux_spec(8, 8)), "SEL").width, 3);
  EXPECT_EQ(find_port(spec_ports(make_mux_spec(8, 5)), "SEL").width, 3);
}

TEST(Spec, ImplementsChecksGeometryOpsAndFlags) {
  ComponentSpec add4 = make_adder_spec(4);
  EXPECT_TRUE(spec_implements(add4, add4));
  EXPECT_FALSE(spec_implements(add4, make_adder_spec(8)));
  // Cell with extra capability implements a need without it...
  ComponentSpec no_ci = make_adder_spec(4, false, false);
  EXPECT_TRUE(spec_implements(add4, no_ci));
  // ...but not the other way around.
  EXPECT_FALSE(spec_implements(no_ci, add4));
  // AddSub promotes to Adder; to Subtractor only without borrow pins.
  ComponentSpec addsub = make_addsub_spec(4);
  EXPECT_TRUE(spec_implements(addsub, add4));
  EXPECT_TRUE(spec_implements(addsub, make_subtractor_spec(4)));
  ComponentSpec sub_borrow = make_subtractor_spec(4);
  sub_borrow.carry_in = true;
  EXPECT_FALSE(spec_implements(addsub, sub_borrow));
}

TEST(Spec, FSelectKindsRequireExactOpsEquality) {
  ComponentSpec alu16 = make_alu_spec(4, alu16_ops());
  ComponentSpec alu_sub = make_alu_spec(4, alu16_arith_ops());
  // Superset ops would scramble the F coding.
  EXPECT_FALSE(spec_implements(alu16, alu_sub));
  EXPECT_TRUE(spec_implements(alu16, alu16));
  // Counters are per-op control lines: superset is fine.
  ComponentSpec full_ctr = make_counter_spec(
      4, OpSet{Op::kLoad, Op::kCountUp, Op::kCountDown});
  ComponentSpec up_ctr = make_counter_spec(4, OpSet{Op::kCountUp});
  up_ctr.style = Style::kSynchronous;
  full_ctr.style = Style::kSynchronous;
  EXPECT_TRUE(spec_implements(full_ctr, up_ctr));
}

TEST(Spec, ClaFalsePathKnowledge) {
  ComponentSpec cla;
  cla.kind = Kind::kCarryLookahead;
  cla.size = 4;
  EXPECT_FALSE(output_depends_on(cla, "GP", "CI"));
  EXPECT_FALSE(output_depends_on(cla, "GG", "CI"));
  EXPECT_TRUE(output_depends_on(cla, "C", "CI"));
  EXPECT_TRUE(output_depends_on(cla, "GP", "P"));
}

TEST(Generator, ObligatoryParametersAndStyles) {
  GeneratorSpec gen;
  gen.name = "COUNTER";
  gen.kind = Kind::kCounter;
  gen.params.push_back(ParamDecl{"GC_INPUT_WIDTH", true, std::nullopt});
  gen.styles = {Style::kSynchronous, Style::kRipple};
  ParamMap empty;
  EXPECT_THROW(gen.generate(empty), Error);  // missing obligatory parameter
  ParamMap ok;
  ok.set("GC_INPUT_WIDTH", 8L);
  ok.set(kParamStyle, Style::kCarryLookahead);
  EXPECT_THROW(gen.generate(ok), Error);  // style not offered
  ParamMap good;
  good.set("GC_INPUT_WIDTH", 8L);
  good.set(kParamStyle, Style::kRipple);
  auto comp = gen.generate(good);
  EXPECT_EQ(comp->spec().width, 8);
  EXPECT_EQ(comp->spec().style, Style::kRipple);
}

TEST(Generator, DefaultOperationsCarryFigure2Semantics) {
  auto comp = builtin_library().instantiate(Kind::kCounter, ParamMap{});
  bool found_up = false;
  for (const auto& op : comp->operations()) {
    if (op.name == "COUNT_UP") {
      found_up = true;
      EXPECT_EQ(op.control, "CUP");
      EXPECT_EQ(op.semantics, "O0 = O0 + 1");
    }
  }
  EXPECT_TRUE(found_up);
}

TEST(Library, CachesComponentsAndNamesInstances) {
  const auto& lib = builtin_library();
  ParamMap p;
  p.set(kParamInputWidth, 12L);
  auto c1 = lib.instantiate(Kind::kAdder, p);
  auto c2 = lib.instantiate(Kind::kAdder, p);
  EXPECT_EQ(c1.get(), c2.get());  // carbon copies share the component
  auto inst = GenusLibrary::make_instance("u0", c1);
  inst.connect("A", "net_a");
  EXPECT_EQ(inst.connections.at("A"), "net_a");
  EXPECT_THROW(inst.connect("NOPE", "x"), Error);
  EXPECT_THROW(lib.find("NOT_A_GENERATOR"), Error);
}

TEST(Taxonomy, CoversAllFourClassesAndInstantiates) {
  int classes_seen[4] = {0, 0, 0, 0};
  for (const auto& entry : table1_taxonomy()) {
    ++classes_seen[static_cast<int>(entry.type_class)];
    for (Kind kind : entry.kinds) {
      auto comp = builtin_library().instantiate(kind, ParamMap{});
      EXPECT_GE(comp->ports().size(), 1u) << kind_name(kind);
    }
  }
  for (int c : classes_seen) EXPECT_GT(c, 0);
}

}  // namespace
}  // namespace bridge::genus
