// Concurrency audit: several Synthesizers on distinct threads sharing
// the process-wide TemplateCache and one LibraryRegistry. The claims
// under test (designed to run under ThreadSanitizer in CI):
//  - concurrent synthesis over the three registry libraries produces
//    fronts byte-identical to a serial run of the same work;
//  - the shared TemplateCache counters reconcile: per-space deltas sum
//    to the global snapshot diff even when the spaces interleave;
//  - LibraryRegistry supports concurrent add/find/names, with duplicate
//    registration surfacing as exactly one Error per duplicate.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "base/diag.h"
#include "cells/cell.h"
#include "cells/registry.h"
#include "dtas/design_space.h"
#include "dtas/synthesizer.h"
#include "genus/spec.h"
#include "vhdl/vhdl.h"

namespace bridge {
namespace {

using dtas::AlternativeDesign;
using dtas::SpaceOptions;
using dtas::TemplateCache;
using genus::ComponentSpec;

const cells::LibraryRegistry& registry() {
  static cells::LibraryRegistry reg = [] {
    auto r = cells::LibraryRegistry::with_builtins();
    r.load_liberty_file(std::string(BRIDGE_LIBS_DIR) +
                        "/sample_sky130_subset.lib");
    return r;
  }();
  return reg;
}

struct FrontRecord {
  std::vector<double> areas, delays;
  std::vector<std::string> descriptions;
  std::vector<std::string> vhdl;

  bool operator==(const FrontRecord&) const = default;
};

FrontRecord record_front(const std::vector<AlternativeDesign>& alts) {
  FrontRecord rec;
  for (const auto& a : alts) {
    rec.areas.push_back(a.metric.area);
    rec.delays.push_back(a.metric.delay);
    rec.descriptions.push_back(a.description);
    rec.vhdl.push_back(vhdl::emit_structural(*a.design));
  }
  return rec;
}

std::vector<ComponentSpec> workload() {
  return {genus::make_alu_spec(16, genus::alu16_ops()),
          genus::make_adder_spec(32), genus::make_mux_spec(8, 4)};
}

TEST(ConcurrentSynthesisTest, DistinctSynthesizersMatchSerialBaseline) {
  const auto libs = registry().all();
  ASSERT_EQ(libs.size(), 3u);
  const auto specs = workload();

  // Serial baseline, one synthesizer per library.
  std::vector<std::vector<FrontRecord>> baseline(libs.size());
  for (size_t l = 0; l < libs.size(); ++l) {
    dtas::Synthesizer synth(*libs[l]);
    for (const ComponentSpec& spec : specs) {
      baseline[l].push_back(record_front(synth.synthesize(spec)));
    }
  }

  // Parallel: N threads, each with its OWN Synthesizer against
  // lib[i % 3], all racing on the shared TemplateCache. Per-space
  // counter deltas are collected for reconciliation below.
  const int kThreads = 8;
  const auto global_before = TemplateCache::global().snapshot();
  std::vector<std::vector<FrontRecord>> results(kThreads);
  std::vector<long> space_hits(kThreads), space_misses(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t, &libs, &specs, &results, &space_hits,
                            &space_misses] {
        dtas::Synthesizer synth(*libs[t % libs.size()]);
        for (const ComponentSpec& spec : specs) {
          results[t].push_back(record_front(synth.synthesize(spec)));
        }
        space_hits[t] = synth.space().stats().template_cache_hits;
        space_misses[t] = synth.space().stats().template_cache_misses;
      });
    }
    for (auto& th : threads) th.join();
  }

  for (int t = 0; t < kThreads; ++t) {
    SCOPED_TRACE("thread " + std::to_string(t) + " on " +
                 libs[t % libs.size()]->name());
    EXPECT_EQ(results[t], baseline[t % libs.size()]);
  }

  // Counter reconciliation: every lookup belongs to exactly one space,
  // so the per-space deltas (these spaces are fresh: totals ARE deltas)
  // sum to the global snapshot diff.
  const auto global_after = TemplateCache::global().snapshot();
  long hits_sum = 0, misses_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    hits_sum += space_hits[t];
    misses_sum += space_misses[t];
  }
  EXPECT_EQ(hits_sum, global_after.hits - global_before.hits);
  EXPECT_EQ(misses_sum, global_after.misses - global_before.misses);
}

TEST(ConcurrentSynthesisTest, ThreadedOdometerInsideThreadedCallers) {
  // Concurrent Synthesizers that each also shard their own odometer
  // (nested parallelism: N callers x (1 + workers) pool threads).
  const ComponentSpec spec = genus::make_alu_spec(16, genus::alu16_ops());
  dtas::Synthesizer serial(cells::lsi_library());
  const FrontRecord expect = record_front(serial.synthesize(spec));

  const int kThreads = 4;
  std::vector<FrontRecord> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &spec, &results] {
      SpaceOptions opt;
      opt.threads = 2;
      dtas::Synthesizer synth(cells::lsi_library(), opt);
      results[t] = record_front(synth.synthesize(spec));
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(results[t], expect) << "thread " << t;
  }
}

TEST(ConcurrentSynthesisTest, RegistryConcurrentAddAndFind) {
  cells::LibraryRegistry reg = cells::LibraryRegistry::with_builtins();
  const std::string builtin = reg.names().front();  // the LSI data book
  const int kWriters = 4, kPerWriter = 8, kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> reads_done{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([w, &reg] {
      for (int i = 0; i < kPerWriter; ++i) {
        reg.add(cells::CellLibrary(
            "lib_w" + std::to_string(w) + "_" + std::to_string(i), "test"));
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&reg, &stop, &reads_done, &builtin] {
      while (!stop.load()) {
        // Pointers handed out stay valid for the registry's lifetime
        // even while writers mutate the containers.
        const cells::CellLibrary* lsi = reg.find(builtin);
        ASSERT_NE(lsi, nullptr);
        EXPECT_EQ(lsi->name(), builtin);
        EXPECT_GE(reg.names().size(), 2u);
        EXPECT_EQ(reg.find("no-such-library"), nullptr);
        reads_done.fetch_add(1);
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  // Under heavy machine load the writers can all finish before any
  // reader thread is first scheduled; let the readers record at least
  // one pass before stopping them (they never block, so this is
  // bounded by scheduling alone).
  while (reads_done.load() == 0) std::this_thread::yield();
  stop.store(true);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(reg.size(), 2 + kWriters * kPerWriter);
  EXPECT_GT(reads_done.load(), 0);

  // Racing duplicate registration: exactly one of two threads wins, the
  // other gets an Error, and the registry stays consistent.
  std::atomic<int> errors{0};
  std::thread a([&reg, &errors] {
    try {
      reg.add(cells::CellLibrary("dup", "a"));
    } catch (const Error&) {
      errors.fetch_add(1);
    }
  });
  std::thread b([&reg, &errors] {
    try {
      reg.add(cells::CellLibrary("dup", "b"));
    } catch (const Error&) {
      errors.fetch_add(1);
    }
  });
  a.join();
  b.join();
  EXPECT_EQ(errors.load(), 1);
  EXPECT_NE(reg.find("dup"), nullptr);
  EXPECT_EQ(reg.size(), 2 + kWriters * kPerWriter + 1);
}

TEST(ConcurrentSynthesisTest, SharedRegistryLibrariesAcrossThreads) {
  // Synthesizers on different threads referencing libraries held by one
  // registry — the service deployment shape. The registry is only read;
  // each thread owns its Synthesizer.
  const auto libs = registry().all();
  const ComponentSpec spec = genus::make_adder_spec(16);
  std::vector<FrontRecord> expect;
  for (const cells::CellLibrary* lib : libs) {
    dtas::Synthesizer synth(*lib);
    expect.push_back(record_front(synth.synthesize(spec)));
  }
  std::vector<std::vector<FrontRecord>> got(3);
  std::vector<std::thread> threads;
  for (int round = 0; round < 3; ++round) {
    threads.emplace_back([round, &libs, &spec, &got] {
      for (const cells::CellLibrary* lib : libs) {
        dtas::Synthesizer synth(*lib);
        got[round].push_back(record_front(synth.synthesize(spec)));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(got[round], expect) << "round " << round;
  }
}

}  // namespace
}  // namespace bridge
