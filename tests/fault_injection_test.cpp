// Deterministic fault injection and the strong-exception-safety
// contract.
//
// The pipeline promises that after ANY throw — from a rule, an
// allocator, a deadline, or an injected fault — the Synthesizer stays
// usable, no cache holds a partially-constructed entry, the thread pool
// drains and can be reused, and a clean retry produces byte-identical
// fronts and VHDL. These tests arm base::FaultInjector at each probe
// site in turn and check exactly that. The FaultMatrix test at the end
// is the CI entry point: it opts into BRIDGE_FAULT_SEED (the injector
// never arms itself from the environment) so the fault-injection matrix
// job replays whole seeded failure schedules against a live synthesis.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/diag.h"
#include "base/fault.h"
#include "base/thread_pool.h"
#include "cells/cell.h"
#include "dtas/design_space.h"
#include "dtas/synthesizer.h"
#include "genus/spec.h"
#include "vhdl/vhdl.h"

namespace bridge {
namespace {

using base::FaultInjected;
using base::FaultInjector;
using dtas::AlternativeDesign;
using dtas::SpaceOptions;
using genus::ComponentSpec;

/// Every test leaves the process-wide injector disarmed, pass or fail —
/// a leaked arming would poison every later test in the binary.
struct DisarmGuard {
  ~DisarmGuard() { FaultInjector::global().disarm(); }
};

struct FrontRecord {
  std::vector<double> areas, delays;
  std::vector<std::string> descriptions;
  std::vector<std::string> vhdl;

  bool operator==(const FrontRecord&) const = default;
};

FrontRecord record_front(const std::vector<AlternativeDesign>& alts) {
  FrontRecord rec;
  for (const auto& a : alts) {
    rec.areas.push_back(a.metric.area);
    rec.delays.push_back(a.metric.delay);
    rec.descriptions.push_back(a.description);
    rec.vhdl.push_back(vhdl::emit_structural(*a.design));
  }
  return rec;
}

TEST(FaultInjectorTest, SeededScheduleIsDeterministic) {
  DisarmGuard guard;
  FaultInjector& inj = FaultInjector::global();
  // Drive the same probe sequence twice under the same seed; the firing
  // occurrence must be identical (the schedule is a pure function of
  // (seed, site, occurrence), independent of wall time or interleaving).
  auto run_once = [&inj]() -> long {
    inj.arm(/*seed=*/42, /*period=*/5);
    for (int i = 0; i < 100; ++i) {
      try {
        inj.probe("test.site.a");
      } catch (const FaultInjected& e) {
        EXPECT_EQ(e.site(), "test.site.a");
        return e.occurrence();
      }
    }
    return -1;
  };
  const long first = run_once();
  const long second = run_once();
  ASSERT_GT(first, 0) << "period 5 over 100 occurrences must fire";
  EXPECT_EQ(first, second);
  // A different site under the same seed draws its own schedule.
  inj.arm(/*seed=*/42, /*period=*/5);
  long other = -1;
  for (int i = 0; i < 100; ++i) {
    try {
      inj.probe("test.site.b");
    } catch (const FaultInjected& e) {
      other = e.occurrence();
      break;
    }
  }
  ASSERT_GT(other, 0);
  EXPECT_EQ(inj.injected(), 1);
}

TEST(FaultInjectorTest, CountingModeTalliesWithoutFiring) {
  DisarmGuard guard;
  FaultInjector& inj = FaultInjector::global();
  inj.arm(/*seed=*/1, /*period=*/0);  // counting mode
  for (int i = 0; i < 17; ++i) inj.probe("test.count");
  EXPECT_EQ(inj.probes("test.count"), 17);
  EXPECT_EQ(inj.injected(), 0);
}

TEST(FaultInjectorTest, DisarmedProbeIsFree) {
  DisarmGuard guard;
  FaultInjector& inj = FaultInjector::global();
  inj.disarm();
  // Must not throw and must not tally.
  for (int i = 0; i < 10; ++i) inj.probe("test.disarmed");
  inj.arm(/*seed=*/1, /*period=*/0);
  EXPECT_EQ(inj.probes("test.disarmed"), 0);
}

TEST(FaultInjectorTest, ArmFromEnvOptInOnly) {
  DisarmGuard guard;
  FaultInjector& inj = FaultInjector::global();
  // Unset: stays disarmed.
  unsetenv("BRIDGE_FAULT_SEED");
  EXPECT_FALSE(inj.arm_from_env());
  EXPECT_FALSE(inj.armed());
  // Garbage: stays disarmed.
  setenv("BRIDGE_FAULT_SEED", "not-a-number", 1);
  EXPECT_FALSE(inj.arm_from_env());
  EXPECT_FALSE(inj.armed());
  // A real seed arms, but only through this explicit call — merely
  // having the variable set never perturbs code that doesn't opt in.
  setenv("BRIDGE_FAULT_SEED", "12345", 1);
  EXPECT_TRUE(inj.arm_from_env());
  EXPECT_TRUE(inj.armed());
  inj.disarm();
  unsetenv("BRIDGE_FAULT_SEED");
}

TEST(FaultInjectorTest, PipelineProbeCoverage) {
  // Counting mode across one cold synthesis must tally every pipeline
  // probe site: expansion, plan evaluation, extraction, and both cache
  // insertions. (The thread-pool site is covered separately — a small
  // serial synthesis never forks.) The spec width is unique to this
  // test so the process-wide template cache is cold here even though
  // other tests in this binary synthesized first.
  DisarmGuard guard;
  FaultInjector& inj = FaultInjector::global();
  inj.arm(/*seed=*/1, /*period=*/0);
  dtas::Synthesizer synth(cells::lsi_library());
  ASSERT_FALSE(synth.synthesize(genus::make_adder_spec(23)).empty());
  EXPECT_GT(inj.probes("dtas.expand.rule"), 0);
  EXPECT_GT(inj.probes("dtas.evaluate.plan"), 0);
  EXPECT_GT(inj.probes("dtas.extract.materialize"), 0);
  EXPECT_GT(inj.probes("dtas.template_cache.insert"), 0);
  EXPECT_GT(inj.probes("dtas.extraction_cache.insert"), 0);
}

TEST(FaultInjectorTest, ThreadPoolProbeCoverage) {
  DisarmGuard guard;
  FaultInjector& inj = FaultInjector::global();
  inj.arm(/*seed=*/1, /*period=*/0);
  base::ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.run(32, [&ran](int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 32);
  EXPECT_EQ(inj.probes("base.thread_pool.task"), 32);
}

/// Arm a one-shot fault at `site` (occurrence `nth`), synthesize, and
/// require: the injected fault (and nothing else) surfaces, the injector
/// self-disarms, and a retry on the SAME synthesizer is byte-identical
/// to an undisturbed baseline.
void check_fault_then_retry(const std::string& site, long nth,
                            const ComponentSpec& spec) {
  SCOPED_TRACE(site + " occurrence " + std::to_string(nth));
  DisarmGuard guard;
  dtas::Synthesizer baseline(cells::lsi_library());
  const FrontRecord expect = record_front(baseline.synthesize(spec));
  ASSERT_FALSE(expect.areas.empty());

  dtas::Synthesizer synth(cells::lsi_library());
  FaultInjector::global().arm_site(site, nth);
  EXPECT_THROW(synth.synthesize(spec), FaultInjected);
  EXPECT_FALSE(FaultInjector::global().armed()) << "one-shot must disarm";

  const FrontRecord retry = record_front(synth.synthesize(spec));
  EXPECT_EQ(retry, expect);
}

TEST(FaultToleranceTest, ExpansionFaultThenRetry) {
  check_fault_then_retry("dtas.expand.rule", 1,
                         genus::make_alu_spec(16, genus::alu16_ops()));
  check_fault_then_retry("dtas.expand.rule", 4,
                         genus::make_alu_spec(16, genus::alu16_ops()));
}

TEST(FaultToleranceTest, PlanEvaluationFaultThenRetry) {
  check_fault_then_retry("dtas.evaluate.plan", 1, genus::make_adder_spec(32));
  check_fault_then_retry("dtas.evaluate.plan", 3,
                         genus::make_alu_spec(16, genus::alu16_ops()));
}

TEST(FaultToleranceTest, ExtractionFaultThenRetry) {
  check_fault_then_retry("dtas.extract.materialize", 1,
                         genus::make_adder_spec(32));
  // Mid-extraction: some modules already published, the rest retried.
  check_fault_then_retry("dtas.extract.materialize", 3,
                         genus::make_alu_spec(16, genus::alu16_ops()));
}

TEST(FaultToleranceTest, TemplateCacheInsertFaultLeavesNoPartialEntry) {
  DisarmGuard guard;
  const ComponentSpec spec = genus::make_adder_spec(27);  // unique: cold
  // The baseline runs with the template cache off (bit-identical by
  // contract) so it does NOT pre-publish this spec's rules — the faulted
  // run below must be the first inserter.
  SpaceOptions no_tc;
  no_tc.use_template_cache = false;
  dtas::Synthesizer baseline(cells::lsi_library(), no_tc);
  const FrontRecord expect = record_front(baseline.synthesize(spec));

  const auto before = dtas::TemplateCache::global().snapshot();
  dtas::Synthesizer synth(cells::lsi_library());
  FaultInjector::global().arm_site("dtas.template_cache.insert", 1);
  EXPECT_THROW(synth.synthesize(spec), FaultInjected);
  // The probe sits before any cache mutation: the aborted insert must
  // not have published anything.
  EXPECT_EQ(dtas::TemplateCache::global().snapshot().entries, before.entries);
  EXPECT_EQ(record_front(synth.synthesize(spec)), expect);
}

TEST(FaultToleranceTest, ExtractionCacheInsertFaultLeavesNoPartialEntry) {
  DisarmGuard guard;
  const ComponentSpec spec = genus::make_adder_spec(32);
  dtas::Synthesizer baseline(cells::lsi_library());
  const FrontRecord expect = record_front(baseline.synthesize(spec));

  dtas::Synthesizer synth(cells::lsi_library());
  FaultInjector::global().arm_site("dtas.extraction_cache.insert", 1);
  EXPECT_THROW(synth.synthesize(spec), FaultInjected);
  EXPECT_EQ(synth.extraction_cache().size(), 0u)
      << "aborted insert must not publish a module";
  EXPECT_EQ(synth.extraction_cache().stats().misses, 0)
      << "a miss is only counted for a published module";
  EXPECT_EQ(record_front(synth.synthesize(spec)), expect);
}

TEST(FaultToleranceTest, ParallelEvaluationFaultDrainsAndRetries) {
  // A fault inside a sharded odometer worker must be captured by the
  // pool, the batch drained, the exception rethrown from the caller —
  // and the same Synthesizer (owning the same pool) must then retry to a
  // byte-identical front.
  DisarmGuard guard;
  const ComponentSpec spec = genus::make_alu_spec(16, genus::alu16_ops());
  SpaceOptions opt;
  opt.threads = 3;
  dtas::Synthesizer baseline(cells::lsi_library(), opt);
  const FrontRecord expect = record_front(baseline.synthesize(spec));

  dtas::Synthesizer synth(cells::lsi_library(), opt);
  FaultInjector::global().arm_site("dtas.evaluate.plan", 2);
  EXPECT_THROW(synth.synthesize(spec), FaultInjected);
  EXPECT_EQ(record_front(synth.synthesize(spec)), expect);
}

// --- ThreadPool exception-path regression --------------------------------

TEST(ThreadPoolFaultTest, ThrowingTaskDrainsBatchAndRethrows) {
  base::ThreadPool pool(3);
  std::atomic<int> completed{0};
  auto batch = [&completed](int task, int) {
    if (task == 7) throw std::runtime_error("task 7 boom");
    completed.fetch_add(1);
  };
  EXPECT_THROW(pool.run(64, batch), std::runtime_error);
  // Per the run() contract the remaining tasks still execute: every
  // non-throwing task completed even though one threw early.
  EXPECT_EQ(completed.load(), 63);
}

TEST(ThreadPoolFaultTest, PoolIsReusableAfterThrowingBatch) {
  base::ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.run(16, [](int task, int) {
        if (task % 2 == 0) throw std::runtime_error("even tasks boom");
      }),
      std::runtime_error);
  // The pool must have fully drained: a fresh batch runs to completion
  // with no stragglers from the failed one.
  pool.run(32, [&completed](int, int) { completed.fetch_add(1); });
  EXPECT_EQ(completed.load(), 32);
  // And again with an injected fault instead of a user exception.
  DisarmGuard guard;
  FaultInjector::global().arm_site("base.thread_pool.task", 5);
  EXPECT_THROW(pool.run(16, [](int, int) {}), FaultInjected);
  completed.store(0);
  pool.run(8, [&completed](int, int) { completed.fetch_add(1); });
  EXPECT_EQ(completed.load(), 8);
}

// --- CI fault matrix entry point -----------------------------------------

TEST(FaultMatrixTest, EnvSeededScheduleThenCleanRetryIsByteIdentical) {
  // The fault-injection CI job exports BRIDGE_FAULT_SEED and reruns this
  // binary; only this test opts in (arm_from_env), so the rest of the
  // suite is undisturbed. Locally, with the variable unset, it reduces
  // to a no-fault sanity pass.
  DisarmGuard guard;
  const ComponentSpec spec = genus::make_alu_spec(16, genus::alu16_ops());
  dtas::Synthesizer baseline(cells::lsi_library());
  const FrontRecord expect = record_front(baseline.synthesize(spec));

  dtas::Synthesizer synth(cells::lsi_library());
  const bool armed = FaultInjector::global().arm_from_env();
  long faults_seen = 0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    try {
      const FrontRecord rec = record_front(synth.synthesize(spec));
      EXPECT_EQ(rec, expect) << "armed=" << armed;
      break;
    } catch (const FaultInjected&) {
      ++faults_seen;  // keep retrying on the same synthesizer
    }
  }
  if (armed) {
    // Whatever the seed did, a disarmed retry must match the baseline.
    FaultInjector::global().disarm();
    EXPECT_EQ(record_front(synth.synthesize(spec)), expect)
        << "after " << faults_seen << " injected faults";
  } else {
    EXPECT_EQ(faults_seen, 0);
  }
}

}  // namespace
}  // namespace bridge
