// Cache byte budgets and eviction: parse_cache_budget, footprint
// accounting, LRU eviction under pinning for both the process-wide
// TemplateCache and the per-Synthesizer ExtractionCache — and the
// governing invariant that budgets change memory use, never results:
// fronts, descriptions, and VHDL are byte-identical with budgets off,
// on-but-unhit, and under active eviction.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "cells/cell.h"
#include "dtas/design_space.h"
#include "dtas/synthesizer.h"
#include "genus/spec.h"
#include "netlist/netlist.h"
#include "vhdl/vhdl.h"

namespace bridge {
namespace {

using dtas::AlternativeDesign;
using dtas::SpaceOptions;
using dtas::TemplateCache;
using genus::ComponentSpec;

/// The TemplateCache is process-wide; every test here restores it to
/// unbounded so the rest of the binary sees the default append-only
/// behavior.
struct BudgetGuard {
  ~BudgetGuard() { TemplateCache::global().set_budget_bytes(0); }
};

struct FrontRecord {
  std::vector<double> areas, delays;
  std::vector<std::string> descriptions;
  std::vector<std::string> vhdl;

  bool operator==(const FrontRecord&) const = default;
};

FrontRecord record_front(const std::vector<AlternativeDesign>& alts) {
  FrontRecord rec;
  for (const auto& a : alts) {
    rec.areas.push_back(a.metric.area);
    rec.delays.push_back(a.metric.delay);
    rec.descriptions.push_back(a.description);
    rec.vhdl.push_back(vhdl::emit_structural(*a.design));
  }
  return rec;
}

TEST(CacheBudgetTest, ParseCacheBudget) {
  EXPECT_EQ(dtas::parse_cache_budget("100000"), 100000);
  EXPECT_EQ(dtas::parse_cache_budget("0"), 0);
  EXPECT_EQ(dtas::parse_cache_budget("64k"), 64L * 1024);
  EXPECT_EQ(dtas::parse_cache_budget("64K"), 64L * 1024);
  EXPECT_EQ(dtas::parse_cache_budget("2m"), 2L * 1024 * 1024);
  EXPECT_EQ(dtas::parse_cache_budget("1g"), 1L * 1024 * 1024 * 1024);
  EXPECT_EQ(dtas::parse_cache_budget(""), -1);
  EXPECT_EQ(dtas::parse_cache_budget("abc"), -1);
  EXPECT_EQ(dtas::parse_cache_budget("12x"), -1);
  EXPECT_EQ(dtas::parse_cache_budget("12kb"), -1);
  EXPECT_LE(dtas::parse_cache_budget("-5"), 0);
}

TEST(CacheBudgetTest, ModuleFootprintGrowsWithContent) {
  netlist::Module empty("m");
  const std::size_t base = empty.approx_footprint_bytes();
  EXPECT_GE(base, sizeof(netlist::Module));

  netlist::Module mod("m2");
  mod.add_port("A", genus::PortDir::kIn, 8);
  mod.add_port("OUT", genus::PortDir::kOut, 8);
  auto& inst = mod.add_spec_instance(
      "u0", genus::make_gate_spec(genus::Op::kBuf, 8));
  mod.connect(inst, "I0", mod.find_net("A"));
  mod.connect(inst, "OUT", mod.find_net("OUT"));
  EXPECT_GT(mod.approx_footprint_bytes(), base);
}

TEST(CacheBudgetTest, ExtractionCacheEnvDefault) {
  setenv("BRIDGE_CACHE_BUDGET", "64k", 1);
  dtas::ExtractionCache budgeted;
  EXPECT_EQ(budgeted.budget_bytes(), 64u * 1024);
  setenv("BRIDGE_CACHE_BUDGET", "garbage", 1);
  dtas::ExtractionCache unparsable;
  EXPECT_EQ(unparsable.budget_bytes(), 0u);
  unsetenv("BRIDGE_CACHE_BUDGET");
  dtas::ExtractionCache unbounded;
  EXPECT_EQ(unbounded.budget_bytes(), 0u);
}

TEST(CacheBudgetTest, TemplateCacheEvictsUnpinnedUnderBudget) {
  BudgetGuard guard;
  TemplateCache& tc = TemplateCache::global();
  const ComponentSpec spec = genus::make_alu_spec(16, genus::alu16_ops());

  FrontRecord expect;
  {
    dtas::Synthesizer synth(cells::lsi_library());
    expect = record_front(synth.synthesize(spec));
    ASSERT_FALSE(expect.areas.empty());
  }
  // The synthesizer is gone: nothing pins its entries any more.
  const auto before = tc.snapshot();
  ASSERT_GT(before.bytes, 0);
  ASSERT_GT(before.entries, 0);

  tc.set_budget_bytes(1);  // far below any entry: sweep everything
  const auto after = tc.snapshot();
  EXPECT_GT(after.evictions, before.evictions);
  EXPECT_LT(after.bytes, before.bytes);
  EXPECT_LT(after.entries, before.entries);

  // Results are unaffected: a re-synthesis recompiles what it needs and
  // produces a byte-identical front even while the budget forces
  // continuous eviction.
  {
    dtas::Synthesizer synth(cells::lsi_library());
    EXPECT_EQ(record_front(synth.synthesize(spec)), expect);
  }
  tc.set_budget_bytes(0);
}

TEST(CacheBudgetTest, TemplateCacheNeverEvictsPinnedEntries) {
  BudgetGuard guard;
  TemplateCache& tc = TemplateCache::global();
  const ComponentSpec spec = genus::make_adder_spec(32);

  dtas::Synthesizer synth(cells::lsi_library());
  const FrontRecord expect = record_front(synth.synthesize(spec));
  ASSERT_FALSE(expect.areas.empty());

  // The live DesignSpace holds shared_ptrs into its entries (ImplNode
  // tmpl/topo/plan): a brutal budget may not invalidate them. The budget
  // is a target, not a hard cap — and the synthesizer keeps working,
  // byte-identically, against the same space.
  tc.set_budget_bytes(1);
  EXPECT_EQ(record_front(synth.synthesize(spec)), expect);
  tc.set_budget_bytes(0);
}

TEST(CacheBudgetTest, UnhitBudgetsAreByteIdenticalWithZeroEvictions) {
  BudgetGuard guard;
  const ComponentSpec spec = genus::make_alu_spec(16, genus::alu16_ops());
  dtas::Synthesizer plain(cells::lsi_library());
  const FrontRecord expect = record_front(plain.synthesize(spec));

  SpaceOptions opt;
  opt.template_cache_budget_bytes = 1L << 30;  // far above working set
  opt.extraction_cache_budget_bytes = 1L << 30;
  dtas::Synthesizer budgeted(cells::lsi_library(), opt);
  const auto evictions_before = TemplateCache::global().snapshot().evictions;
  EXPECT_EQ(record_front(budgeted.synthesize(spec)), expect);
  EXPECT_EQ(TemplateCache::global().snapshot().evictions, evictions_before);
  EXPECT_EQ(budgeted.extraction_cache().stats().evictions, 0);
  TemplateCache::global().set_budget_bytes(0);
}

TEST(CacheBudgetTest, ExtractionCacheEvictsOnlyUnreferencedModules) {
  const ComponentSpec alu = genus::make_alu_spec(16, genus::alu16_ops());
  const ComponentSpec add = genus::make_adder_spec(32);
  dtas::Synthesizer plain(cells::lsi_library());
  const FrontRecord expect_alu = record_front(plain.synthesize(alu));
  const FrontRecord expect_add = record_front(plain.synthesize(add));

  SpaceOptions opt;
  opt.extraction_cache_budget_bytes = 1;  // every unpinned module evicts
  dtas::Synthesizer synth(cells::lsi_library(), opt);
  auto front = synth.synthesize(alu);
  EXPECT_EQ(record_front(front), expect_alu);
  // Every cached module is referenced by a live design in `front`:
  // nothing was evictable, so the whole front is still resident.
  EXPECT_EQ(synth.extraction_cache().stats().evictions, 0);
  EXPECT_GT(synth.extraction_cache().size(), 0u);

  // Dropping the designs unpins the ALU modules; synthesizing a
  // different spec inserts fresh modules, and each insert's budget sweep
  // now evicts the unreferenced ones.
  front.clear();
  EXPECT_EQ(record_front(synth.synthesize(add)), expect_add);
  EXPECT_GT(synth.extraction_cache().stats().evictions, 0);

  // The evicted subtrees re-materialize byte-identically: the session
  // name table and describe memos survive eviction by design.
  EXPECT_EQ(record_front(synth.synthesize(alu)), expect_alu);
}

TEST(CacheBudgetTest, SetBudgetSweepsImmediately) {
  const ComponentSpec spec = genus::make_adder_spec(32);
  dtas::Synthesizer synth(cells::lsi_library());
  { auto front = synth.synthesize(spec); }  // materialize, then unpin
  auto& cache = synth.extraction_cache();
  const auto resident = cache.stats().bytes;
  ASSERT_GT(resident, 0);
  cache.set_budget_bytes(1);
  EXPECT_GT(cache.stats().evictions, 0);
  EXPECT_LT(cache.stats().bytes, resident);
  EXPECT_EQ(cache.size(), 0u) << "nothing was pinned: full sweep";
  cache.set_budget_bytes(0);
  // The session name table survives: re-synthesis is byte-identical.
  dtas::Synthesizer fresh(cells::lsi_library());
  EXPECT_EQ(record_front(synth.synthesize(spec)),
            record_front(fresh.synthesize(spec)));
}

}  // namespace
}  // namespace bridge
