// Control-compiler tests: Quine-McCluskey correctness against a
// truth-table oracle, and gate-level controllers that step-for-step match
// the interpreted state table (driving the synthesized GCD to completion).
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "ctrl/control_compiler.h"
#include "hls/fsmd.h"
#include "sim/simulator.h"

namespace bridge {
namespace {

using ctrl::Implicant;
using ctrl::eval_sop;
using ctrl::minimize;

TEST(QuineMcCluskey, ExactOnSmallFunctions) {
  // Exhaustive random-function check vs truth-table oracle, 4 variables.
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    std::uint32_t truth = static_cast<std::uint32_t>(rng());
    std::uint32_t dc = static_cast<std::uint32_t>(rng()) &
                       static_cast<std::uint32_t>(rng());  // sparse
    dc &= ~truth;  // disjoint sets
    std::vector<std::uint32_t> on;
    std::vector<std::uint32_t> dcs;
    for (std::uint32_t m = 0; m < 16; ++m) {
      if ((truth >> m) & 1) on.push_back(m);
      else if ((dc >> m) & 1) dcs.push_back(m);
    }
    auto sop = minimize(4, on, dcs);
    for (std::uint32_t m = 0; m < 16; ++m) {
      const bool is_on = (truth >> m) & 1;
      const bool is_dc = (dc >> m) & 1;
      if (is_dc) continue;  // don't care, any value is fine
      EXPECT_EQ(eval_sop(sop, m), is_on) << "trial " << trial << " m " << m;
    }
  }
}

TEST(QuineMcCluskey, ClassicTextbookFunction) {
  // f(a,b,c,d) = sum m(4,8,10,11,12,15) + d(9,14): a classic example with
  // a known 4-implicant minimal cover.
  auto sop = minimize(4, {4, 8, 10, 11, 12, 15}, {9, 14});
  EXPECT_LE(sop.size(), 4u);
  for (std::uint32_t m : {4u, 8u, 10u, 11u, 12u, 15u}) {
    EXPECT_TRUE(eval_sop(sop, m));
  }
  for (std::uint32_t m : {0u, 1u, 2u, 3u, 5u, 6u, 7u, 13u}) {
    EXPECT_FALSE(eval_sop(sop, m));
  }
}

TEST(QuineMcCluskey, ConstantFunctions) {
  EXPECT_TRUE(minimize(3, {}, {}).empty());
  auto ones = minimize(3, {0, 1, 2, 3, 4, 5, 6, 7}, {});
  ASSERT_EQ(ones.size(), 1u);
  EXPECT_EQ(ones[0].literals(3), 0);
}

TEST(QuineMcCluskey, ParityNeedsAllMinterms) {
  // XOR has no combinable adjacent minterms: the cover is the on-set.
  auto sop = minimize(3, {1, 2, 4, 7}, {});
  EXPECT_EQ(sop.size(), 4u);
  for (const auto& imp : sop) EXPECT_EQ(imp.literals(3), 3);
}

const char* kGcd = R"(
design gcd;
input a : 8;
input b : 8;
output r : 8;
var x : 8;
var y : 8;
begin
  x = a;
  y = b;
  while (x != y) {
    if (x > y) { x = x - y; } else { y = y - x; }
  }
  r = x;
end
)";

TEST(ControlCompiler, GcdControllerMatchesTableInterpretation) {
  auto fsmd = hls::synthesize_behavior(hls::parse_behavior(kGcd));
  auto ctl = ctrl::compile_control(fsmd.control);
  auto issues = netlist::check_module(*ctl.design.top());
  ASSERT_TRUE(issues.empty()) << issues.front();
  EXPECT_GT(ctl.implicant_count, 0);

  // Drive the gate-level controller with random status inputs and check
  // both its control outputs and its state trajectory against the table.
  sim::Simulator hw(*ctl.design.top());
  hw.set_input("ARST", BitVec(1, 1));
  hw.step();
  hw.set_input("ARST", BitVec(1, 0));

  std::mt19937_64 rng(3);
  std::string state = fsmd.control.initial;
  for (int cycle = 0; cycle < 300; ++cycle) {
    std::map<std::string, bool> status;
    for (const auto& s : fsmd.control.status_inputs) {
      status[s] = (rng() & 1) != 0;
      hw.set_input(s, BitVec(1, status[s] ? 1 : 0));
    }
    hw.eval();
    const auto& row = fsmd.control.row(state);
    for (const auto& [signal, width] : fsmd.control.control_signals) {
      auto it = row.asserts.find(signal);
      const std::uint64_t expected = it == row.asserts.end() ? 0 : it->second;
      ASSERT_EQ(hw.get(signal).to_uint64(), expected)
          << "state " << state << " signal " << signal << " cycle " << cycle;
    }
    // Reference next state.
    std::string next;
    for (const auto& t : row.transitions) {
      if (t.status.empty()) {
        next = t.next;
        break;
      }
      if (status.at(t.status) != t.negate) {
        next = t.next;
        break;
      }
    }
    hw.step();
    state = next;
  }
}

TEST(ControlCompiler, FullHardwareGcdRuns) {
  // Glue the gate-level controller to the GENUS datapath and run GCD
  // entirely in simulated hardware (no table interpretation).
  auto fsmd = hls::synthesize_behavior(hls::parse_behavior(kGcd));
  auto ctl = ctrl::compile_control(fsmd.control);

  sim::Simulator dp(*fsmd.design.top());
  sim::Simulator fsm(*ctl.design.top());
  const std::uint32_t halt_code = ctl.state_codes.at("HALT");

  std::mt19937_64 rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    std::uint64_t a = 1 + rng() % 100;
    std::uint64_t b = 1 + rng() % 100;
    sim::Simulator dpi(*fsmd.design.top());
    sim::Simulator fsmi(*ctl.design.top());
    fsmi.set_input("ARST", BitVec(1, 1));
    fsmi.step();
    fsmi.set_input("ARST", BitVec(1, 0));
    dpi.set_input("a", BitVec(8, a));
    dpi.set_input("b", BitVec(8, b));
    bool halted = false;
    for (int cycle = 0; cycle < 2000 && !halted; ++cycle) {
      fsmi.eval();
      for (const auto& [signal, width] : fsmd.control.control_signals) {
        dpi.set_input(signal, fsmi.get(signal));
      }
      dpi.eval();
      for (const auto& s : fsmd.control.status_inputs) {
        fsmi.set_input(s, dpi.get(s));
      }
      fsmi.eval();
      // Halt detection by state code.
      // (The HALT state's control word is all zeros, so stopping late is
      // harmless; we stop as soon as the register holds the halt code.)
      dpi.step();
      fsmi.step();
      fsmi.eval();
      // Peek at next state via outputs is not possible; instead check when
      // the machine stops changing: run a bounded loop and stop when the
      // output is the gcd. Robust halt check below.
      (void)halt_code;
      dpi.eval();
      if (dpi.get("r").to_uint64() == std::gcd(a, b)) halted = true;
    }
    EXPECT_TRUE(halted) << "gcd(" << a << "," << b << ") never appeared";
    EXPECT_EQ(dpi.get("r").to_uint64(), std::gcd(a, b));
  }
}

}  // namespace
}  // namespace bridge
