// DTAS end-to-end tests on adders: expansion, filtering, extraction,
// structural DRC, and bit-true equivalence of every mapped alternative.
#include <gtest/gtest.h>

#include <random>

#include "cells/cell.h"
#include "dtas/synthesizer.h"
#include "netlist/netlist.h"
#include "sim/simulator.h"

namespace bridge {
namespace {

using dtas::AlternativeDesign;
using dtas::Synthesizer;
using genus::ComponentSpec;

std::vector<AlternativeDesign> synth_adder(int width) {
  Synthesizer synth(cells::lsi_library());
  return synth.synthesize(genus::make_adder_spec(width));
}

TEST(DtasAdder, Adder4HasDirectCellAndDecompositions) {
  auto alts = synth_adder(4);
  ASSERT_FALSE(alts.empty());
  // Smallest alternative should be at most the ADD4 cell's area.
  EXPECT_LE(alts.front().metric.area, 19.0 + 1e-9);
  // Alternatives are sorted by area and form a Pareto frontier.
  for (size_t i = 1; i < alts.size(); ++i) {
    EXPECT_GT(alts[i].metric.area, alts[i - 1].metric.area);
    EXPECT_LT(alts[i].metric.delay, alts[i - 1].metric.delay);
  }
}

TEST(DtasAdder, Adder16YieldsASmallParetoSet) {
  auto alts = synth_adder(16);
  ASSERT_GE(alts.size(), 3u);
  EXPECT_LE(alts.size(), 16u);
}

TEST(DtasAdder, MappedNetlistsPassDrc) {
  for (int width : {1, 2, 4, 8, 16}) {
    auto alts = synth_adder(width);
    ASSERT_FALSE(alts.empty()) << "width " << width;
    for (const auto& alt : alts) {
      for (const netlist::Module* mod : alt.design->module_order()) {
        auto issues = netlist::check_module(*mod);
        EXPECT_TRUE(issues.empty())
            << "width " << width << " design " << alt.description
            << " module " << mod->name() << ": " << issues.front();
      }
    }
  }
}

TEST(DtasAdder, EveryAlternativeIsBitTrueEquivalent) {
  std::mt19937_64 rng(42);
  for (int width : {1, 2, 4, 8, 16}) {
    auto alts = synth_adder(width);
    ASSERT_FALSE(alts.empty());
    for (const auto& alt : alts) {
      sim::Simulator s(*alt.design->top());
      for (int trial = 0; trial < 30; ++trial) {
        BitVec a(width, rng());
        BitVec b(width, rng());
        bool ci = (rng() & 1) != 0;
        s.set_input("A", a);
        s.set_input("B", b);
        s.set_input("CI", BitVec(1, ci));
        s.eval();
        bool expect_co = false;
        BitVec expect_s = a.add_with_carry(b, ci, &expect_co);
        EXPECT_EQ(s.get("S"), expect_s)
            << "width " << width << " alt " << alt.description;
        EXPECT_EQ(s.get("CO").bit(0), expect_co)
            << "width " << width << " alt " << alt.description;
      }
    }
  }
}

TEST(DtasAdder, UnrealizableSpecYieldsNoAlternatives) {
  // A BCD adder has no cells and no rules in this library.
  Synthesizer synth(cells::lsi_library());
  ComponentSpec spec = genus::make_adder_spec(8);
  spec.rep = genus::Representation::kBcd;
  EXPECT_TRUE(synth.synthesize(spec).empty());
}

TEST(DtasAdder, DesignSpaceCountsMatchPaperShape) {
  // §5: raw spaces explode; the two search-control principles tame them.
  Synthesizer synth(cells::lsi_library());
  auto* space = &synth.space();
  auto* node = space->expand(genus::make_adder_spec(16));
  space->evaluate(node);
  double unconstrained = space->count_unconstrained(node);
  double constrained = space->count_constrained(node);
  EXPECT_GT(unconstrained, 1e5);  // "several hundred thousand to millions"
  EXPECT_GT(unconstrained, constrained);
  EXPECT_LE(static_cast<double>(node->alts.size()), 24.0);
  EXPECT_GE(node->alts.size(), 3u);
}

TEST(DtasAdder, AddSubRippleIsEquivalent) {
  Synthesizer synth(cells::lsi_library());
  auto alts = synth.synthesize(genus::make_addsub_spec(8));
  ASSERT_FALSE(alts.empty());
  std::mt19937_64 rng(3);
  for (const auto& alt : alts) {
    sim::Simulator s(*alt.design->top());
    for (int trial = 0; trial < 40; ++trial) {
      BitVec a(8, rng());
      BitVec b(8, rng());
      bool ci = (rng() & 1) != 0;
      bool mode = (rng() & 1) != 0;
      s.set_input("A", a);
      s.set_input("B", b);
      s.set_input("CI", BitVec(1, ci));
      s.set_input("MODE", BitVec(1, mode));
      s.eval();
      bool expect_co = false;
      BitVec expect_s = a.add_with_carry(mode ? ~b : b, ci, &expect_co);
      EXPECT_EQ(s.get("S"), expect_s) << alt.description;
      EXPECT_EQ(s.get("CO").bit(0), expect_co) << alt.description;
    }
  }
}

}  // namespace
}  // namespace bridge
