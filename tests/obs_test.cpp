// Telemetry-layer contracts.
//
// The registry must count exactly under contention (relaxed atomics, no
// lost updates), histogram percentiles must land inside the bucket the
// known distribution puts them in, snapshot diffs must attribute work to
// one window, and a disabled tracer must cost a branch — those are the
// properties that make it safe to leave the instrumentation compiled into
// the hot paths. On top of the primitives, the acceptance tests pin the
// integration contract: tracing on vs off changes no synthesis output
// byte at any thread count, registry deltas reconcile with SpaceStats,
// per-space TemplateCache deltas sum to the global snapshot diff even
// when spaces interleave, and Synthesizer::last_profile() reports the
// call it just finished.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cells/cell.h"
#include "dtas/design_space.h"
#include "dtas/synthesizer.h"
#include "genus/spec.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "vhdl/vhdl.h"

namespace bridge {
namespace {

using dtas::SpaceOptions;
using genus::ComponentSpec;

TEST(MetricsTest, ConcurrentCounterIncrementsSumExactly) {
  obs::Counter& c =
      obs::Registry::global().counter("test.concurrent.counter");
  c.reset();
  constexpr int kThreads = 8;
  constexpr long kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (long i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(MetricsTest, GaugePeakIsHighWaterMark) {
  obs::Gauge g;
  g.set(3);
  g.set(10);
  g.set(2);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.peak(), 10);

  // Under contention the peak can only be a value some thread actually
  // held, and at least the largest single contribution.
  obs::Gauge shared;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&shared] {
      for (int i = 0; i < 10000; ++i) {
        shared.add(1);
        shared.add(-1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(shared.value(), 0);
  EXPECT_GE(shared.peak(), 1);
  EXPECT_LE(shared.peak(), 8);
}

TEST(MetricsTest, HistogramPercentilesOnKnownDistribution) {
  obs::Histogram h;
  for (int v = 0; v < 1024; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1024);
  EXPECT_DOUBLE_EQ(h.sum(), 1023.0 * 1024.0 / 2.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 1023.0);

  // Bucket layout: 0 -> [0,1], i -> (2^(i-1), 2^i]. Cumulative count
  // through bucket 9 (values <= 512) is 513 of 1024, so the median rank
  // lands in bucket 9 and p99 in bucket 10 — percentile() interpolates
  // within a bucket, so the answers must stay inside those bounds.
  const double p50 = h.percentile(0.50);
  EXPECT_GT(p50, obs::Histogram::bucket_lower(9));  // 256
  EXPECT_LE(p50, obs::Histogram::bucket_upper(9));  // 512
  const double p99 = h.percentile(0.99);
  EXPECT_GT(p99, obs::Histogram::bucket_lower(10));  // 512
  EXPECT_LE(p99, obs::Histogram::bucket_upper(10));  // 1024

  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(MetricsTest, ConcurrentHistogramRecordsCountExactly) {
  obs::Histogram& h =
      obs::Registry::global().histogram("test.concurrent.histogram");
  h.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<double>(t + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<long>(kThreads) * kPerThread);
  // Sum is CAS-folded: no lost updates. Every sample is an integer, so
  // exact double equality holds (values well inside the 53-bit mantissa).
  double expected = 0.0;
  for (int t = 0; t < kThreads; ++t) expected += (t + 1) * double(kPerThread);
  EXPECT_DOUBLE_EQ(h.sum(), expected);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
}

TEST(MetricsTest, SnapshotDiffAttributesOneWindow) {
  obs::Counter& c = obs::Registry::global().counter("test.window.counter");
  obs::Histogram& h =
      obs::Registry::global().histogram("test.window.histogram");
  c.add(5);
  h.record(3.0);
  const obs::Snapshot before = obs::Registry::global().snapshot();
  c.add(7);
  h.record(5.0);
  h.record(6.0);
  const obs::Snapshot after = obs::Registry::global().snapshot();
  const obs::Snapshot d = obs::diff(after, before);
  EXPECT_EQ(d.counters.at("test.window.counter"), 7);
  EXPECT_EQ(d.histograms.at("test.window.histogram").count, 2);
  EXPECT_DOUBLE_EQ(d.histograms.at("test.window.histogram").sum, 11.0);

  // JSON serialization covers every registered metric.
  const std::string json = after.to_json();
  EXPECT_NE(json.find("\"test.window.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.window.histogram\""), std::string::npos);
}

TEST(TraceTest, DisabledSpanIsBranchOnly) {
  ASSERT_FALSE(obs::Tracer::enabled());
  const std::size_t events_before = obs::Tracer::global().event_count();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 1000000; ++i) {
    obs::Span span("never.recorded", "test");
  }
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_EQ(obs::Tracer::global().event_count(), events_before);
  // A branch-only span is single-digit nanoseconds; anything near the
  // bound below means a clock read or lock crept into the disabled path.
  // (Generous so sanitizer builds pass comfortably.)
  EXPECT_LT(ms, 2000.0);
}

TEST(TraceTest, TracerWritesLoadableChromeJson) {
  const std::string path = "obs_test_trace.json";
  obs::Tracer::global().start(path);
  ASSERT_TRUE(obs::Tracer::enabled());
  {
    obs::Span outer("outer.phase", "test");
    obs::Span inner("inner.phase", "test");
  }
  EXPECT_GE(obs::Tracer::global().event_count(), 2u);
  EXPECT_EQ(obs::Tracer::global().stop(), path);
  EXPECT_FALSE(obs::Tracer::enabled());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"outer.phase\""), std::string::npos);
  EXPECT_NE(text.find("\"inner.phase\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  std::remove(path.c_str());

  // stop() cleared the buffer and disabled collection.
  EXPECT_EQ(obs::Tracer::global().event_count(), 0u);
  { obs::Span span("after.stop", "test"); }
  EXPECT_EQ(obs::Tracer::global().event_count(), 0u);
}

/// Everything the acceptance criterion compares byte-for-byte.
struct SynthesisRecord {
  std::vector<double> areas, delays;
  std::vector<std::string> descriptions;
  std::vector<std::string> vhdl;
  dtas::SpaceStats stats;
};

SynthesisRecord synthesize_record(const ComponentSpec& spec, int threads) {
  SpaceOptions opt;
  opt.threads = threads;
  dtas::Synthesizer synth(cells::lsi_library(), opt);
  SynthesisRecord rec;
  for (const auto& a : synth.synthesize(spec)) {
    rec.areas.push_back(a.metric.area);
    rec.delays.push_back(a.metric.delay);
    rec.descriptions.push_back(a.description);
    rec.vhdl.push_back(vhdl::emit_structural(*a.design));
  }
  rec.stats = synth.space().stats();
  return rec;
}

TEST(ObsAcceptanceTest, TracingOnOffByteIdenticalAtEveryThreadCount) {
  const ComponentSpec alu = genus::make_alu_spec(16, genus::alu16_ops());
  for (int threads : {1, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const SynthesisRecord off = synthesize_record(alu, threads);

    const std::string path = "obs_test_accept_trace.json";
    obs::Tracer::global().start(path);
    const SynthesisRecord on = synthesize_record(alu, threads);
    obs::Tracer::global().stop();
    std::remove(path.c_str());

    EXPECT_EQ(off.areas, on.areas);    // exact double equality
    EXPECT_EQ(off.delays, on.delays);  // exact double equality
    EXPECT_EQ(off.descriptions, on.descriptions);
    EXPECT_EQ(off.vhdl, on.vhdl);
    EXPECT_EQ(off.stats.combinations_evaluated,
              on.stats.combinations_evaluated);
    EXPECT_EQ(off.stats.combinations_pruned, on.stats.combinations_pruned);
  }
}

TEST(ObsAcceptanceTest, RegistryDeltasReconcileWithSpaceStats) {
  const ComponentSpec spec = genus::make_adder_spec(32);
  const obs::Snapshot before = obs::Registry::global().snapshot();
  SpaceOptions opt;
  opt.threads = 1;
  dtas::Synthesizer synth(cells::lsi_library(), opt);
  auto alts = synth.synthesize(spec);
  ASSERT_FALSE(alts.empty());
  const obs::Snapshot d =
      obs::diff(obs::Registry::global().snapshot(), before);
  const dtas::SpaceStats& s = synth.space().stats();

  auto counter = [&d](const std::string& name) -> long {
    auto it = d.counters.find(name);
    return it == d.counters.end() ? 0 : it->second;
  };
  EXPECT_EQ(counter("dtas.expand.spec_nodes"), s.spec_nodes);
  EXPECT_EQ(counter("dtas.expand.impl_nodes"), s.impl_nodes);
  EXPECT_EQ(counter("dtas.expand.rule_applications"), s.rule_applications);
  EXPECT_EQ(counter("dtas.expand.template_cache.hits"),
            s.template_cache_hits);
  EXPECT_EQ(counter("dtas.expand.template_cache.misses"),
            s.template_cache_misses);
  EXPECT_EQ(counter("dtas.evaluate.combinations.evaluated"),
            s.combinations_evaluated);
  EXPECT_EQ(counter("dtas.evaluate.combinations.pruned"),
            s.combinations_pruned);
  EXPECT_EQ(counter("dtas.evaluate.odometer.parallel_runs"),
            s.parallel_odometers);
  EXPECT_EQ(counter("dtas.evaluate.odometer.shards"), s.odometer_shards);

  // The extraction cache of this synthesizer accounts for the whole
  // process delta (no other synthesizer ran inside the window).
  const dtas::ExtractionCache::Stats& ec = synth.extraction_cache().stats();
  EXPECT_EQ(counter("dtas.extract.extraction_cache.hits"), ec.hits);
  EXPECT_EQ(counter("dtas.extract.extraction_cache.misses"), ec.misses);
}

TEST(ObsAcceptanceTest, InterleavedSpacesSplitTheGlobalTemplateCacheDelta) {
  const dtas::TemplateCache::Stats global_before =
      dtas::TemplateCache::global().snapshot();

  // Two spaces interleaving lookups on the shared process-wide cache;
  // each SpaceStats counts only its own, and the two sum to the global
  // snapshot delta.
  dtas::Synthesizer a(cells::lsi_library());
  dtas::Synthesizer b(cells::lsi_library());
  a.space().expand(genus::make_adder_spec(16));
  b.space().expand(genus::make_adder_spec(16));
  a.space().expand(genus::make_mux_spec(8, 4));
  b.space().expand(genus::make_mux_spec(8, 4));

  const dtas::TemplateCache::Stats global_after =
      dtas::TemplateCache::global().snapshot();
  const dtas::SpaceStats& sa = a.space().stats();
  const dtas::SpaceStats& sb = b.space().stats();
  EXPECT_EQ(sa.template_cache_hits + sb.template_cache_hits,
            global_after.hits - global_before.hits);
  EXPECT_EQ(sa.template_cache_misses + sb.template_cache_misses,
            global_after.misses - global_before.misses);
  // b ran strictly after a on identical specs, so every one of b's
  // cacheable lookups was served from the cache.
  EXPECT_EQ(sb.template_cache_misses, 0);
  EXPECT_GT(sb.template_cache_hits, 0);
}

TEST(ObsAcceptanceTest, LastProfileDescribesTheCall) {
  dtas::Synthesizer synth(cells::lsi_library());
  const ComponentSpec spec = genus::make_adder_spec(32);
  auto alts = synth.synthesize(spec);
  ASSERT_FALSE(alts.empty());
  const obs::Profile& p = synth.last_profile();
  EXPECT_EQ(p.name, "synthesize:" + spec.key());
  // Debug builds default SpaceOptions::verify_designs on, appending a
  // "verify" (lint) phase after the pipeline's three.
  ASSERT_GE(p.phases_ms.size(), 3u);
  ASSERT_LE(p.phases_ms.size(), 4u);
  EXPECT_EQ(p.phases_ms[0].first, "expand");
  EXPECT_EQ(p.phases_ms[1].first, "evaluate");
  EXPECT_EQ(p.phases_ms[2].first, "extract");
  if (p.phases_ms.size() == 4u) EXPECT_EQ(p.phases_ms[3].first, "verify");
  for (const auto& [phase, ms] : p.phases_ms) EXPECT_GE(ms, 0.0) << phase;
  EXPECT_GE(p.total_ms(),
            p.phase_ms("expand") + p.phase_ms("evaluate") - 1e-9);

  const dtas::SpaceStats& s = synth.space().stats();
  EXPECT_EQ(p.counter("expand.spec_nodes"), s.spec_nodes);
  EXPECT_EQ(p.counter("evaluate.combinations.evaluated"),
            s.combinations_evaluated);
  EXPECT_EQ(p.counter("extract.extraction_cache.misses"),
            synth.extraction_cache().stats().misses);

  // A second call overwrites the profile with its own (all-hit) deltas.
  synth.synthesize(spec);
  const obs::Profile& p2 = synth.last_profile();
  EXPECT_EQ(p2.counter("expand.spec_nodes"), 0);
  EXPECT_EQ(p2.counter("extract.extraction_cache.misses"), 0);
  EXPECT_GT(p2.counter("extract.extraction_cache.hits"), 0);

  const std::string json = p2.to_json();
  EXPECT_NE(json.find("\"name\""), std::string::npos);
  EXPECT_NE(json.find("\"phases_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"expand\""), std::string::npos);
}

}  // namespace
}  // namespace bridge
