// Delta-aware cache identities: content fingerprints for specs, cells,
// and libraries; the fingerprint-keyed TemplateCache / ExtractionCache;
// and Synthesizer::retarget's warm-reuse contract.
//
// The invariants pinned here (see design_space.h / synthesizer.h):
//  - CellLibrary::fingerprint is a pure function of cell *content* —
//    stable across declaration order, registration name, and load path
//    (Liberty file vs in-memory construction); sensitive to any cell or
//    timing-parameter edit.
//  - TemplateCache keys carry the expanding rule's slice fingerprint, so
//    two same-named rules with different behavior can never serve each
//    other's compiled templates (the cross-library soundness regression).
//  - Retargeting a Synthesizer back to content-identical library state
//    re-extracts nothing (extraction-cache misses stay flat) and
//    reproduces the original front byte-for-byte.
//  - Fronts, descriptions, and VHDL are byte-identical with delta-aware
//    keys on vs off, across all three registry libraries and at thread
//    counts 1 and 8.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/fileio.h"
#include "base/fingerprint.h"
#include "cells/cell.h"
#include "cells/registry.h"
#include "dtas/synthesizer.h"
#include "genus/spec.h"
#include "liberty/liberty.h"
#include "vhdl/vhdl.h"

namespace bridge {
namespace {

using cells::Cell;
using cells::CellLibrary;
using genus::ComponentSpec;

const std::string kSkyPath =
    std::string(BRIDGE_LIBS_DIR) + "/sample_sky130_subset.lib";

/// All three registry libraries: both built-ins plus the Liberty import.
const cells::LibraryRegistry& registry() {
  static cells::LibraryRegistry reg = [] {
    auto r = cells::LibraryRegistry::with_builtins();
    r.load_liberty_file(kSkyPath);
    return r;
  }();
  return reg;
}

std::string vhdl_of(const std::vector<dtas::AlternativeDesign>& front) {
  vhdl::EmissionCache ec;
  std::string out;
  for (const auto& a : front) out += vhdl::emit_structural(*a.design, ec);
  return out;
}

void expect_identical(const std::vector<dtas::AlternativeDesign>& a,
                      const std::vector<dtas::AlternativeDesign>& b,
                      const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].metric.area, b[i].metric.area) << context << " alt " << i;
    EXPECT_EQ(a[i].metric.delay, b[i].metric.delay)
        << context << " alt " << i;
    EXPECT_EQ(a[i].description, b[i].description) << context << " alt " << i;
  }
  EXPECT_EQ(vhdl_of(a), vhdl_of(b)) << context << " (emitted VHDL)";
}

// --- spec / cell fingerprints ----------------------------------------------

TEST(SpecFingerprint, StableAndFieldSensitive) {
  const ComponentSpec a8 = genus::make_adder_spec(8);
  EXPECT_EQ(genus::spec_fingerprint(a8),
            genus::spec_fingerprint(genus::make_adder_spec(8)));
  EXPECT_NE(genus::spec_fingerprint(a8),
            genus::spec_fingerprint(genus::make_adder_spec(16)));
  EXPECT_NE(genus::spec_fingerprint(a8),
            genus::spec_fingerprint(genus::make_subtractor_spec(8)));
  ComponentSpec ci = a8;
  ci.carry_in = !ci.carry_in;
  EXPECT_NE(genus::spec_fingerprint(a8), genus::spec_fingerprint(ci));
}

TEST(CellFingerprint, CoversNameSpecAndTiming) {
  Cell c;
  c.name = "ADD4";
  c.spec = genus::make_adder_spec(4);
  c.area = 18.0;
  c.delay_ns = 5.2;
  const std::uint64_t base = cells::cell_fingerprint(c);
  EXPECT_EQ(cells::cell_fingerprint(c), base);  // deterministic

  Cell renamed = c;
  renamed.name = "ADD4B";
  EXPECT_NE(cells::cell_fingerprint(renamed), base)
      << "the part name appears in emitted VHDL, so it is content";
  Cell slower = c;
  slower.delay_ns = 5.3;
  EXPECT_NE(cells::cell_fingerprint(slower), base);
  Cell bigger = c;
  bigger.area = 18.5;
  EXPECT_NE(cells::cell_fingerprint(bigger), base);
  Cell documented = c;
  documented.description = "a fine adder";
  EXPECT_EQ(cells::cell_fingerprint(documented), base)
      << "descriptions are documentation, not content";
}

// --- library fingerprints ---------------------------------------------------

TEST(LibraryFingerprint, OrderAndNameIndependent) {
  const CellLibrary& lsi = cells::lsi_library();
  ASSERT_GE(lsi.size(), 2);

  // Same cells, reversed insertion order, different registry name.
  CellLibrary reversed("SOMETHING_ELSE", "other description");
  for (auto it = lsi.all().rbegin(); it != lsi.all().rend(); ++it) {
    reversed.add(*it);
  }
  EXPECT_EQ(reversed.fingerprint(), lsi.fingerprint());

  // A verbatim copy fingerprints identically too.
  const CellLibrary copy = lsi;
  EXPECT_EQ(copy.fingerprint(), lsi.fingerprint());
}

TEST(LibraryFingerprint, SensitiveToAnyContentEdit) {
  const CellLibrary& lsi = cells::lsi_library();

  // Dropping one cell changes it.
  CellLibrary shorter("X");
  for (const Cell& c : lsi.all()) {
    if (static_cast<int>(shorter.size()) + 1 == lsi.size()) break;
    shorter.add(c);
  }
  EXPECT_NE(shorter.fingerprint(), lsi.fingerprint());

  // A one-ulp-scale timing edit on a single cell changes it.
  CellLibrary edited("X");
  bool touched = false;
  for (const Cell& c : lsi.all()) {
    Cell cc = c;
    if (!touched) {
      cc.delay_ns += 0.01;
      touched = true;
    }
    edited.add(cc);
  }
  ASSERT_TRUE(touched);
  EXPECT_NE(edited.fingerprint(), lsi.fingerprint());

  // A rename of one cell changes it.
  CellLibrary renamed("X");
  touched = false;
  for (const Cell& c : lsi.all()) {
    Cell cc = c;
    if (!touched) {
      cc.name += "_v2";
      touched = true;
    }
    renamed.add(cc);
  }
  EXPECT_NE(renamed.fingerprint(), lsi.fingerprint());
}

TEST(LibraryFingerprint, LoadPathIndependent) {
  // The same Liberty content through the file loader and the in-memory
  // loader (and loaded twice) fingerprints identically.
  const CellLibrary from_file = liberty::load_liberty_file(kSkyPath);
  const CellLibrary in_memory =
      liberty::load_liberty(read_text_file(kSkyPath, "liberty"));
  EXPECT_EQ(from_file.fingerprint(), in_memory.fingerprint());
  EXPECT_EQ(from_file.fingerprint(),
            liberty::load_liberty_file(kSkyPath).fingerprint());
  EXPECT_NE(from_file.fingerprint(), cells::lsi_library().fingerprint());
  EXPECT_NE(from_file.fingerprint(), 0u);
}

TEST(LibraryFingerprint, DistinctAcrossRegistryLibraries) {
  std::vector<std::uint64_t> fps;
  for (const CellLibrary* lib : registry().all()) {
    fps.push_back(lib->fingerprint());
  }
  ASSERT_EQ(fps.size(), 3u);
  EXPECT_NE(fps[0], fps[1]);
  EXPECT_NE(fps[0], fps[2]);
  EXPECT_NE(fps[1], fps[2]);
}

// --- registry replace -------------------------------------------------------

TEST(RegistryReplace, RepointsNameKeepsOldReferencesAlive) {
  auto reg = cells::LibraryRegistry::with_builtins();
  const CellLibrary& original = reg.at("TTL74");
  const std::uint64_t original_fp = original.fingerprint();

  // Content-identical reload: new instance, same fingerprint.
  const CellLibrary& reloaded = reg.replace(cells::ttl_library());
  EXPECT_NE(&reloaded, &original);
  EXPECT_EQ(&reg.at("TTL74"), &reloaded);
  EXPECT_EQ(reloaded.fingerprint(), original_fp);
  // The superseded instance is still alive and readable.
  EXPECT_EQ(original.fingerprint(), original_fp);
  // No duplicate listings; size counts current names only.
  EXPECT_EQ(reg.size(), 2);
  int ttl_listings = 0;
  for (const CellLibrary* lib : reg.all()) {
    if (lib->name() == "TTL74") ++ttl_listings;
  }
  EXPECT_EQ(ttl_listings, 1);

  // Edited reload: same name, different fingerprint.
  CellLibrary edited = cells::ttl_library();
  Cell extra;
  extra.name = "XTRA1";
  extra.spec = genus::make_gate_spec(genus::Op::kAnd, 1, 2);
  extra.area = 1.0;
  extra.delay_ns = 1.0;
  edited.add(extra);
  const CellLibrary& v2 = reg.replace(std::move(edited));
  EXPECT_EQ(&reg.at("TTL74"), &v2);
  EXPECT_NE(v2.fingerprint(), original_fp);
}

// --- template-cache soundness ----------------------------------------------

/// Two same-named LambdaRules whose expansions differ. Before
/// fingerprint-keyed templates, the process-wide cache keyed on
/// (rule name, spec) alone, so whichever rule base expanded first would
/// poison the other's expansions for the life of the process.
dtas::RuleBase rules_with_lambda(bool wide_gate) {
  dtas::RuleBase base = dtas::default_rules_for(cells::lsi_library());
  base.add(std::make_unique<dtas::LambdaRule>(
      "custom_xor_split", "split XOR through private structure",
      /*library_specific=*/true,
      [](const ComponentSpec& spec, const dtas::RuleContext&) {
        return spec.kind == genus::Kind::kGate && spec.width == 8 &&
               spec.ops.contains(genus::Op::kXor) && spec.size == 2;
      },
      [wide_gate](const ComponentSpec& spec, const dtas::RuleContext&) {
        // Same rule name, different decomposition: one splits the gate
        // 5/3, the other 6/2 — distinguishable by child widths (both
        // asymmetric so the two children stay distinct specs).
        dtas::TemplateBuilder tb(spec, "custom_xor_split");
        const int hi = wide_gate ? 6 : 5;
        const int lo = spec.width - hi;
        auto& top = tb.add("hi", genus::make_gate_spec(genus::Op::kXor, hi,
                                                       spec.size));
        auto& bot = tb.add("lo", genus::make_gate_spec(genus::Op::kXor, lo,
                                                       spec.size));
        tb.connect(top, "I0", tb.port(base::Symbol("I0")), lo);
        tb.connect(top, "I1", tb.port(base::Symbol("I1")), lo);
        tb.connect(top, "OUT", tb.port(base::Symbol("OUT")), lo);
        tb.connect(bot, "I0", tb.port(base::Symbol("I0")), 0);
        tb.connect(bot, "I1", tb.port(base::Symbol("I1")), 0);
        tb.connect(bot, "OUT", tb.port(base::Symbol("OUT")), 0);
        std::vector<netlist::Module> out;
        out.push_back(std::move(tb).take());
        return out;
      }));
  return base;
}

/// The child widths the custom rule's surviving template decomposed into.
std::vector<int> lambda_child_widths(dtas::DesignSpace& space,
                                     const ComponentSpec& spec) {
  dtas::SpecNode* node = space.expand(spec);
  std::vector<int> widths;
  for (const auto& impl : node->impls) {
    if (impl->rule_name != "custom_xor_split") continue;
    for (const dtas::SpecNode* child : impl->children) {
      widths.push_back(child->spec.width);
    }
  }
  return widths;
}

TEST(TemplateCacheSoundness, SameNamedRulesNeverShareTemplates) {
  const ComponentSpec spec =
      genus::make_gate_spec(genus::Op::kXor, 8, 2);
  // Expand under the 4/4-splitting rule base first, then under the
  // 6/2-splitting one. With delta-aware keys each LambdaRule carries a
  // process-unique slice fingerprint, so the second expansion must not
  // see the first's compiled templates.
  dtas::RuleBase a = rules_with_lambda(/*wide_gate=*/false);
  dtas::DesignSpace sa(a, cells::lsi_library());
  const std::vector<int> wa = lambda_child_widths(sa, spec);
  ASSERT_EQ(wa, (std::vector<int>{5, 3}));

  dtas::RuleBase b = rules_with_lambda(/*wide_gate=*/true);
  dtas::DesignSpace sb(b, cells::lsi_library());
  const std::vector<int> wb = lambda_child_widths(sb, spec);
  EXPECT_EQ(wb, (std::vector<int>{6, 2}))
      << "a same-named rule with different behavior was served another "
         "rule's cached templates";
}

TEST(TemplateCacheSoundness, ExplicitFingerprintOptsIntoSharing) {
  // Authors who declare two rule instances behaviorally identical may
  // give them equal explicit fingerprints; distinct explicit fingerprints
  // keep them apart like the default.
  auto applies = [](const ComponentSpec&, const dtas::RuleContext&) {
    return false;
  };
  auto expand = [](const ComponentSpec&, const dtas::RuleContext&) {
    return std::vector<netlist::Module>{};
  };
  dtas::LambdaRule shared_a("r", "p", false, applies, expand,
                            /*cacheable=*/true, /*fingerprint=*/7);
  dtas::LambdaRule shared_b("r", "p", false, applies, expand,
                            /*cacheable=*/true, /*fingerprint=*/7);
  EXPECT_EQ(shared_a.slice_fingerprint(), shared_b.slice_fingerprint());
  dtas::LambdaRule unique_a("r", "p", false, applies, expand);
  dtas::LambdaRule unique_b("r", "p", false, applies, expand);
  EXPECT_NE(unique_a.slice_fingerprint(), unique_b.slice_fingerprint());
  EXPECT_NE(unique_a.slice_fingerprint(), 0u)
      << "0 is reserved for rules pure in (name, spec)";
}

// --- retarget warm reuse ----------------------------------------------------

TEST(Retarget, ContentIdenticalReturnIsExtractionWarm) {
  const ComponentSpec alu = genus::make_alu_spec(16, genus::alu16_ops());
  dtas::Synthesizer synth(cells::lsi_library());
  const auto first = synth.synthesize(alu);
  ASSERT_FALSE(first.empty());
  const std::string first_vhdl = vhdl_of(first);

  // Swing to a different library (content differs — everything misses),
  // then back to a content-identical copy of the first.
  synth.retarget(cells::ttl_library());
  const auto other = synth.synthesize(alu);
  const CellLibrary lsi_again = cells::lsi_library();  // fresh instance
  ASSERT_EQ(lsi_again.fingerprint(), cells::lsi_library().fingerprint());
  synth.retarget(lsi_again);

  const dtas::ExtractionCache::Stats before =
      synth.extraction_cache().stats();
  const auto third = synth.synthesize(alu);
  const dtas::ExtractionCache::Stats after = synth.extraction_cache().stats();

  expect_identical(third, first, "retarget round-trip front");
  EXPECT_EQ(vhdl_of(third), first_vhdl);
  EXPECT_EQ(after.misses, before.misses)
      << "content-identical retarget must re-materialize nothing";
  EXPECT_GT(after.hits, before.hits)
      << "the warm modules must actually be served";
  // `other` really came from the other library (different content).
  if (!other.empty() && !first.empty()) {
    EXPECT_NE(vhdl_of(other), first_vhdl);
  }
}

TEST(Retarget, PointerKeysStayColdAcrossRetarget) {
  dtas::SpaceOptions opt;
  opt.delta_cache_keys = false;  // the historical reference mode
  const ComponentSpec add = genus::make_adder_spec(16);
  dtas::Synthesizer synth(cells::lsi_library(), opt);
  const auto first = synth.synthesize(add);
  ASSERT_FALSE(first.empty());
  synth.retarget(cells::lsi_library());
  const dtas::ExtractionCache::Stats before =
      synth.extraction_cache().stats();
  const auto again = synth.synthesize(add);
  const dtas::ExtractionCache::Stats after = synth.extraction_cache().stats();
  expect_identical(again, first, "pointer-keyed retarget front");
  EXPECT_GT(after.misses, before.misses)
      << "pointer keys die with the old space, so this must re-materialize";
}

// --- delta keys on/off byte-identity ----------------------------------------

TEST(DeltaKeys, OnOffByteIdenticalAcrossLibrariesAndThreads) {
  const ComponentSpec alu = genus::make_alu_spec(16, genus::alu16_ops());
  for (const CellLibrary* lib : registry().all()) {
    std::vector<dtas::AlternativeDesign> reference;
    for (const int threads : {1, 8}) {
      for (const bool delta : {true, false}) {
        dtas::SpaceOptions opt;
        opt.threads = threads;
        opt.delta_cache_keys = delta;
        dtas::Synthesizer synth(*lib, opt);
        auto front = synth.synthesize(alu);
        const std::string context = lib->name() + " threads=" +
                                    std::to_string(threads) + " delta=" +
                                    std::to_string(delta);
        if (reference.empty() && !front.empty()) {
          reference = std::move(front);
          continue;
        }
        expect_identical(front, reference, context);
      }
    }
  }
}

}  // namespace
}  // namespace bridge
