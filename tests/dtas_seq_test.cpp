// Sequential equivalence: DTAS-mapped registers, counters (synchronous
// and ripple-toggle styles), register files, and memories must match the
// generic sequential semantics cycle for cycle under random stimulus.
#include <gtest/gtest.h>

#include <random>

#include "equiv_util.h"

namespace bridge {
namespace {

using genus::ComponentSpec;
using genus::Op;
using genus::OpSet;
using genus::PortDir;
using genus::Style;

/// Drive a mapped sequential design and the behavioral reference with the
/// same random stimulus for `cycles` cycles, comparing all outputs.
void check_sequential_equivalence(const ComponentSpec& spec, int cycles,
                                  unsigned seed) {
  dtas::Synthesizer synth(cells::lsi_library());
  auto alts = synth.synthesize(spec);
  ASSERT_FALSE(alts.empty()) << "no implementation for " << spec.key();
  const auto ports = genus::spec_ports(spec);
  for (const auto& alt : alts) {
    testutil::expect_clean_drc(alt, spec.key());
    sim::Simulator s(*alt.design->top());
    sim::SeqState ref = sim::init_state(spec);
    std::mt19937_64 rng(seed);
    for (int cycle = 0; cycle < cycles; ++cycle) {
      sim::PortValues inputs;
      for (const auto& p : ports) {
        if (p.dir != PortDir::kIn || p.role == genus::PortRole::kClock) {
          continue;
        }
        // Sparse asyncs so counting behavior is actually exercised.
        BitVec v = testutil::random_vec(rng, p.width);
        if (p.role == genus::PortRole::kAsync && (rng() % 8) != 0) {
          v = BitVec(p.width);
        }
        inputs[p.name] = v;
        s.set_input(p.name, v);
      }
      s.eval();
      sim::PortValues expected = sim::seq_outputs(spec, ref, inputs);
      for (const auto& p : ports) {
        if (p.dir != PortDir::kOut) continue;
        ASSERT_EQ(s.get(p.name), expected.at(p.name))
            << spec.key() << " [" << alt.description << "] output " << p.name
            << " cycle " << cycle;
      }
      s.step();
      sim::seq_step(spec, ref, inputs);
    }
  }
}

TEST(DtasSeq, Register8) {
  check_sequential_equivalence(genus::make_register_spec(8), 60, 5);
}

TEST(DtasSeq, Register4NoEnable) {
  check_sequential_equivalence(genus::make_register_spec(4, false, true), 60,
                               6);
}

TEST(DtasSeq, Register12WithSetAndReset) {
  ComponentSpec spec = genus::make_register_spec(12, true, true);
  spec.async_set = true;
  check_sequential_equivalence(spec, 60, 7);
}

TEST(DtasSeq, Register1) {
  check_sequential_equivalence(genus::make_register_spec(1), 60, 8);
}

TEST(DtasSeq, Counter8FullSynchronous) {
  ComponentSpec spec = genus::make_counter_spec(
      8, OpSet{Op::kLoad, Op::kCountUp, Op::kCountDown}, Style::kSynchronous);
  spec.enable = true;
  spec.async_reset = true;
  spec.async_set = false;
  check_sequential_equivalence(spec, 80, 9);
}

TEST(DtasSeq, Counter8RippleToggleStyle) {
  ComponentSpec spec = genus::make_counter_spec(
      8, OpSet{Op::kLoad, Op::kCountUp, Op::kCountDown}, Style::kRipple);
  spec.enable = true;
  spec.async_reset = true;
  spec.async_set = false;
  check_sequential_equivalence(spec, 80, 10);
}

TEST(DtasSeq, Counter4UpOnly) {
  ComponentSpec spec =
      genus::make_counter_spec(4, OpSet{Op::kCountUp}, Style::kAny);
  spec.enable = true;
  spec.async_reset = false;
  spec.async_set = false;
  check_sequential_equivalence(spec, 60, 11);
}

TEST(DtasSeq, Counter4DownWithLoad) {
  ComponentSpec spec = genus::make_counter_spec(
      4, OpSet{Op::kLoad, Op::kCountDown}, Style::kAny);
  spec.enable = false;
  spec.async_reset = true;
  spec.async_set = false;
  check_sequential_equivalence(spec, 60, 12);
}

TEST(DtasSeq, Counter4DirectCellMatch) {
  // The LSI library's CTR4 matches a 4-bit full counter directly.
  ComponentSpec spec = genus::make_counter_spec(
      4, OpSet{Op::kLoad, Op::kCountUp, Op::kCountDown},
      Style::kSynchronous);
  spec.enable = true;
  spec.async_reset = true;
  spec.async_set = false;
  dtas::Synthesizer synth(cells::lsi_library());
  auto alts = synth.synthesize(spec);
  ASSERT_FALSE(alts.empty());
  bool direct = false;
  for (const auto& alt : alts) {
    if (alt.description == "CTR4") direct = true;
  }
  EXPECT_TRUE(direct) << "expected a direct CTR4 match";
  check_sequential_equivalence(spec, 60, 13);
}

TEST(DtasSeq, RegisterFile4x8) {
  ComponentSpec spec;
  spec.kind = genus::Kind::kRegisterFile;
  spec.width = 8;
  spec.size = 4;
  spec.ops = OpSet{Op::kRead, Op::kWrite};
  check_sequential_equivalence(spec, 80, 14);
}

TEST(DtasSeq, Memory8x4) {
  ComponentSpec spec;
  spec.kind = genus::Kind::kMemory;
  spec.width = 4;
  spec.size = 8;
  spec.ops = OpSet{Op::kRead, Op::kWrite};
  check_sequential_equivalence(spec, 80, 15);
}

}  // namespace
}  // namespace bridge
