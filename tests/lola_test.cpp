// LOLA tests: rule induction from data books and retargeting parity with
// the hand-written LSI rule set.
#include <gtest/gtest.h>

#include "cells/cell.h"
#include "dtas/synthesizer.h"
#include "lola/lola.h"

namespace bridge {
namespace {

TEST(Lola, InducesTheNineLsiRules) {
  dtas::RuleBase base;
  dtas::register_standard_rules(base);
  const int before = base.total_count();
  auto report = lola::induce_rules(cells::lsi_library(), base);
  EXPECT_EQ(base.total_count() - before, 9);  // the paper's count
  EXPECT_EQ(report.inductions.size(), 9u);
  // Every induced rule matches one of the hand-written LSI rules by name.
  dtas::RuleBase hand;
  dtas::register_standard_rules(hand);
  dtas::register_lsi_rules(hand);
  for (const auto& i : report.inductions) {
    EXPECT_NE(hand.find(i.rule_name), nullptr) << i.rule_name;
  }
  EXPECT_NE(report.text().find("adder-ripple-by-4"), std::string::npos);
}

TEST(Lola, InductionIsIdempotent) {
  dtas::RuleBase base;
  dtas::register_standard_rules(base);
  lola::induce_rules(cells::lsi_library(), base);
  const int count = base.total_count();
  auto again = lola::induce_rules(cells::lsi_library(), base);
  EXPECT_EQ(base.total_count(), count);
  EXPECT_TRUE(again.inductions.empty());
}

TEST(Lola, InducedRulesMatchHandWrittenResults) {
  auto spec = genus::make_alu_spec(32, genus::alu16_ops());
  dtas::RuleBase hand;
  dtas::register_standard_rules(hand);
  dtas::register_lsi_rules(hand);
  dtas::Synthesizer hand_synth(std::move(hand), cells::lsi_library());
  auto hand_alts = hand_synth.synthesize(spec);

  dtas::RuleBase induced;
  dtas::register_standard_rules(induced);
  lola::induce_rules(cells::lsi_library(), induced);
  dtas::Synthesizer lola_synth(std::move(induced), cells::lsi_library());
  auto lola_alts = lola_synth.synthesize(spec);

  ASSERT_EQ(hand_alts.size(), lola_alts.size());
  for (size_t i = 0; i < hand_alts.size(); ++i) {
    EXPECT_DOUBLE_EQ(hand_alts[i].metric.area, lola_alts[i].metric.area);
    EXPECT_DOUBLE_EQ(hand_alts[i].metric.delay, lola_alts[i].metric.delay);
  }
}

TEST(Lola, TtlInductionEnablesAluSlices) {
  dtas::RuleBase base;
  dtas::register_standard_rules(base);
  auto report = lola::induce_rules(cells::ttl_library(), base);
  EXPECT_GE(report.inductions.size(), 5u);
  EXPECT_NE(base.find("alu-slice-cascade-4"), nullptr);

  genus::OpSet sliceable = genus::OpSet{genus::Op::kAdd, genus::Op::kSub} |
                           genus::alu16_logic_ops();
  dtas::Synthesizer synth(std::move(base), cells::ttl_library());
  auto alts = synth.synthesize(genus::make_alu_spec(16, sliceable));
  ASSERT_FALSE(alts.empty());
  bool uses_t181 = false;
  for (const auto& alt : alts) {
    if (alt.description.find("T181") != std::string::npos) uses_t181 = true;
  }
  EXPECT_TRUE(uses_t181);
}

}  // namespace
}  // namespace bridge
