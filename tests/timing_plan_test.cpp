// Compiled-evaluator equivalence and bound-and-prune invariance.
//
// The TimingPlan evaluator (SpaceOptions::use_compiled_plan, the default)
// must reproduce the reference functional evaluator bit-for-bit: same
// alternative count, exactly equal metric doubles, same descriptions —
// across every component family DTAS synthesizes and across all three
// registry libraries (the LSI and TTL built-ins plus the bundled Liberty
// import). Bound-and-prune must never change the filtered front under any
// dominance-respecting filter, and must stay off under FilterKind::kNone.
#include <gtest/gtest.h>

#include "cells/registry.h"
#include "dtas/synthesizer.h"
#include "liberty/liberty.h"
#include "netlist/netlist.h"

namespace bridge {
namespace {

using genus::ComponentSpec;
using genus::Op;
using genus::OpSet;

std::vector<std::pair<std::string, ComponentSpec>> test_specs() {
  std::vector<std::pair<std::string, ComponentSpec>> specs;
  auto add = [&](const std::string& label, ComponentSpec s) {
    specs.emplace_back(label, std::move(s));
  };
  for (Op fn : {Op::kAnd, Op::kNand, Op::kXor}) {
    add(genus::op_name(fn) + "8", genus::make_gate_spec(fn, 8, 2));
  }
  add("AndFanin7", genus::make_gate_spec(Op::kAnd, 1, 7));
  add("Not8", genus::make_gate_spec(Op::kLnot, 8));
  for (int inputs : {2, 4, 8, 11}) {
    add("Mux" + std::to_string(inputs) + "x8",
        genus::make_mux_spec(8, inputs));
  }
  for (int width : {1, 6, 8, 16, 32}) {
    add("Adder" + std::to_string(width), genus::make_adder_spec(width));
  }
  add("AdderNoCarries", genus::make_adder_spec(8, false, false));
  add("Subtractor8", genus::make_subtractor_spec(8));
  add("AddSub16", genus::make_addsub_spec(16));
  add("Mul8x8", genus::make_multiplier_spec(8, 8));
  add("Mul3x5", genus::make_multiplier_spec(3, 5));
  add("Cmp8", genus::make_comparator_spec(8, OpSet{Op::kEq, Op::kLt, Op::kGt}));
  add("Decoder4", genus::make_decoder_spec(4));
  add("Encoder3", genus::make_encoder_spec(3));
  add("Shifter8", genus::make_shifter_spec(8, OpSet{Op::kShl, Op::kShr}));
  add("Barrel16", genus::make_barrel_shifter_spec(16, OpSet{Op::kRotl}));
  add("Lu8", genus::make_logic_unit_spec(8, genus::alu16_logic_ops()));
  add("Alu8", genus::make_alu_spec(8, genus::alu16_ops()));
  add("Alu16", genus::make_alu_spec(16, genus::alu16_ops()));
  add("Alu32ArithOnly", genus::make_alu_spec(32, genus::alu16_arith_ops()));
  add("Register16", genus::make_register_spec(16));
  add("Counter8", genus::make_counter_spec(
                      8, OpSet{Op::kCountUp, Op::kLoad}));
  return specs;
}

/// The registry the satellite task names: both built-ins plus the bundled
/// Liberty import.
const cells::LibraryRegistry& registry() {
  static cells::LibraryRegistry reg = [] {
    auto r = cells::LibraryRegistry::with_builtins();
    r.load_liberty_file(std::string(BRIDGE_LIBS_DIR) +
                        "/sample_sky130_subset.lib");
    return r;
  }();
  return reg;
}

using Front = std::vector<dtas::AlternativeDesign>;

Front synthesize_with(const cells::CellLibrary& lib,
                      const ComponentSpec& spec,
                      const dtas::SpaceOptions& opt,
                      dtas::SpaceStats* stats = nullptr) {
  dtas::Synthesizer synth(lib, opt);
  Front front = synth.synthesize(spec);
  if (stats != nullptr) *stats = synth.space().stats();
  return front;
}

/// Bit-for-bit front equality: exact double comparison on both metric
/// axes plus the human-readable implementation trace.
void expect_identical(const Front& a, const Front& b,
                      const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].metric.area, b[i].metric.area)
        << context << " alt " << i;
    EXPECT_EQ(a[i].metric.delay, b[i].metric.delay)
        << context << " alt " << i;
    EXPECT_EQ(a[i].description, b[i].description) << context << " alt " << i;
  }
}

TEST(TimingPlanEquivalence, MatchesReferenceEvaluatorAcrossLibraries) {
  ASSERT_EQ(registry().size(), 3);
  for (const cells::CellLibrary* lib : registry().all()) {
    for (const auto& [label, spec] : test_specs()) {
      dtas::SpaceOptions compiled;  // defaults: plan + prune
      dtas::SpaceOptions reference;
      reference.use_compiled_plan = false;
      reference.bound_prune = false;
      const Front a = synthesize_with(*lib, spec, compiled);
      const Front b = synthesize_with(*lib, spec, reference);
      expect_identical(a, b, lib->name() + "/" + label);
    }
  }
}

TEST(TimingPlanEquivalence, DenseSweepMatchesReference) {
  // min_delay_gain = 0 keeps every non-dominated candidate, the regime
  // where the odometer (and the pruner) does real work.
  for (const cells::CellLibrary* lib : registry().all()) {
    dtas::SpaceOptions compiled;
    compiled.min_delay_gain = 0.0;
    dtas::SpaceOptions reference = compiled;
    reference.use_compiled_plan = false;
    reference.bound_prune = false;
    const ComponentSpec spec = genus::make_alu_spec(16, genus::alu16_ops());
    expect_identical(synthesize_with(*lib, spec, compiled),
                     synthesize_with(*lib, spec, reference),
                     lib->name() + "/Alu16Sweep");
  }
}

TEST(PruneInvariance, PruningNeverChangesTheFront) {
  for (const auto& [label, spec] : test_specs()) {
    dtas::SpaceOptions pruned;  // default: prune on
    dtas::SpaceOptions unpruned;
    unpruned.bound_prune = false;
    expect_identical(
        synthesize_with(cells::lsi_library(), spec, pruned),
        synthesize_with(cells::lsi_library(), spec, unpruned), label);
  }
}

TEST(PruneInvariance, HoldsUnderEveryFilterKind) {
  const ComponentSpec spec = genus::make_alu_spec(16, genus::alu16_ops());
  for (dtas::FilterKind filter :
       {dtas::FilterKind::kPareto, dtas::FilterKind::kAreaOnly,
        dtas::FilterKind::kDelayOnly, dtas::FilterKind::kNone}) {
    dtas::SpaceOptions pruned;
    pruned.filter = filter;
    pruned.min_delay_gain = 0.0;
    dtas::SpaceOptions unpruned = pruned;
    unpruned.bound_prune = false;
    dtas::SpaceStats pruned_stats;
    expect_identical(
        synthesize_with(cells::lsi_library(), spec, pruned, &pruned_stats),
        synthesize_with(cells::lsi_library(), spec, unpruned),
        "filter " + std::to_string(static_cast<int>(filter)));
    if (filter == dtas::FilterKind::kNone) {
      // kNone keeps dominated candidates, so pruning must not engage.
      EXPECT_EQ(pruned_stats.combinations_pruned, 0);
    }
  }
}

TEST(PruneInvariance, StatsAccountForEveryCombination) {
  dtas::SpaceOptions pruned;
  dtas::SpaceOptions unpruned;
  unpruned.bound_prune = false;
  dtas::SpaceStats with_prune, without_prune;
  const ComponentSpec spec = genus::make_alu_spec(16, genus::alu16_ops());
  synthesize_with(cells::lsi_library(), spec, pruned, &with_prune);
  synthesize_with(cells::lsi_library(), spec, unpruned, &without_prune);
  EXPECT_GT(with_prune.combinations_pruned, 0);
  EXPECT_EQ(without_prune.combinations_pruned, 0);
  // Pruned or not, the odometer enumerates the same combinations.
  EXPECT_EQ(with_prune.combinations_evaluated + with_prune.combinations_pruned,
            without_prune.combinations_evaluated);
}

netlist::Module make_test_datapath() {
  netlist::Module m("dp");
  const auto A = m.add_port("A", genus::PortDir::kIn, 8);
  const auto B = m.add_port("B", genus::PortDir::kIn, 8);
  const auto C = m.add_port("C", genus::PortDir::kIn, 8);
  const auto F = m.add_port("F", genus::PortDir::kIn, 4);
  const auto CI = m.add_port("CI", genus::PortDir::kIn, 1);
  const auto SEL = m.add_port("SEL", genus::PortDir::kIn, 1);
  const auto CLK = m.add_port("CLK", genus::PortDir::kIn, 1);
  const auto EN = m.add_port("EN", genus::PortDir::kIn, 1);
  const auto ARST = m.add_port("ARST", genus::PortDir::kIn, 1);
  const auto OUT = m.add_port("OUT", genus::PortDir::kOut, 8);
  const auto EQ = m.add_port("EQ", genus::PortDir::kOut, 1);
  const auto alu_out = m.add_net("alu_out", 8);
  const auto sum = m.add_net("sum", 8);
  const auto muxed = m.add_net("muxed", 8);

  auto& alu =
      m.add_spec_instance("alu0", genus::make_alu_spec(8, genus::alu16_ops()));
  m.connect(alu, "A", A);
  m.connect(alu, "B", B);
  m.connect(alu, "CI", CI);
  m.connect(alu, "F", F);
  m.connect(alu, "OUT", alu_out);
  auto& add =
      m.add_spec_instance("add0", genus::make_adder_spec(8, false, false));
  m.connect(add, "A", alu_out);
  m.connect(add, "B", C);
  m.connect(add, "S", sum);
  auto& cmp = m.add_spec_instance(
      "cmp0", genus::make_comparator_spec(8, OpSet{Op::kEq}));
  m.connect(cmp, "A", sum);
  m.connect(cmp, "B", C);
  m.connect(cmp, "EQ", EQ);
  auto& mux = m.add_spec_instance("mux0", genus::make_mux_spec(8, 2));
  m.connect(mux, "I0", alu_out);
  m.connect(mux, "I1", sum);
  m.connect(mux, "SEL", SEL);
  m.connect(mux, "OUT", muxed);
  auto& reg = m.add_spec_instance("reg0", genus::make_register_spec(8));
  m.connect(reg, "D", muxed);
  m.connect(reg, "CLK", CLK);
  m.connect(reg, "EN", EN);
  m.connect(reg, "ARST", ARST);
  m.connect(reg, "Q", OUT);
  return m;
}

TEST(TimingPlanEquivalence, NetlistSynthesisMatchesReference) {
  const netlist::Module input = make_test_datapath();
  EXPECT_TRUE(netlist::check_module(input).empty());
  for (double gain : {0.10, 0.0}) {
    dtas::SpaceOptions compiled;
    compiled.min_delay_gain = gain;
    dtas::SpaceOptions reference = compiled;
    reference.use_compiled_plan = false;
    reference.bound_prune = false;
    dtas::Synthesizer a(cells::lsi_library(), compiled);
    dtas::Synthesizer b(cells::lsi_library(), reference);
    expect_identical(a.synthesize_netlist(input), b.synthesize_netlist(input),
                     "datapath gain " + std::to_string(gain));
  }
}

TEST(TimingPlanEquivalence, NetlistPruningNeverChangesTheFront) {
  const netlist::Module input = make_test_datapath();
  dtas::SpaceOptions pruned;
  pruned.min_delay_gain = 0.0;
  dtas::SpaceOptions unpruned = pruned;
  unpruned.bound_prune = false;
  dtas::Synthesizer a(cells::lsi_library(), pruned);
  dtas::Synthesizer b(cells::lsi_library(), unpruned);
  expect_identical(a.synthesize_netlist(input), b.synthesize_netlist(input),
                   "datapath prune invariance");
  EXPECT_GT(a.space().stats().combinations_pruned, 0);
}

TEST(ParetoFront, StaircaseSemantics) {
  dtas::ParetoFront front;
  // Nothing recorded: nothing dominates.
  EXPECT_FALSE(front.dominates_bound(100.0, 100.0));
  front.add(10.0, 50.0);
  front.add(20.0, 30.0);
  front.add(30.0, 10.0);
  // Strictly worse than (20, 30) on both axes.
  EXPECT_TRUE(front.dominates_bound(25.0, 40.0));
  // Cheaper than every recorded point: never dominated.
  EXPECT_FALSE(front.dominates_bound(5.0, 500.0));
  // Faster than the best recorded delay at its area: not dominated.
  EXPECT_FALSE(front.dominates_bound(25.0, 20.0));
  // A dominated insert must not weaken the front: (20, 30) still rules.
  front.add(25.0, 40.0);
  EXPECT_TRUE(front.dominates_bound(26.0, 35.0));
  EXPECT_FALSE(front.dominates_bound(26.0, 25.0));
  // A dominating insert replaces what it beats.
  front.add(5.0, 5.0);
  EXPECT_TRUE(front.dominates_bound(6.0, 6.0));
}

}  // namespace
}  // namespace bridge
