// Parser hardening: truncated, garbage, and adversarial inputs to every
// text parser (Liberty, data book, LEGEND) must raise ParseError — with
// a line number — and never crash, hang, or leak a foreign exception
// type. The truncation sweeps run every prefix of a known-good input
// through each parser; the nesting bombs pin the recursion-depth guards
// (a stack overflow is a crash, not an error). The whole file is also a
// sanitizer corpus: the CI asan/ubsan job runs it over every case.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/diag.h"
#include "base/fileio.h"
#include "cells/cell.h"
#include "cells/databook.h"
#include "legend/legend.h"
#include "liberty/liberty.h"

namespace bridge {
namespace {

/// Run `parse` on `text`; success and ParseError are both acceptable,
/// anything else (std::bad_alloc, std::invalid_argument from a raw stoi,
/// a segfault...) fails the test.
template <typename Fn>
void expect_parse_or_parse_error(Fn&& parse, const std::string& text,
                                 const std::string& what) {
  try {
    parse(text);
  } catch (const ParseError&) {
    // Fine: malformed input reported as such.
  } catch (const std::exception& e) {
    ADD_FAILURE() << what << ": leaked non-ParseError exception: "
                  << e.what();
  }
}

template <typename Fn>
void run_truncation_sweep(Fn&& parse, const std::string& valid,
                          const std::string& what) {
  ASSERT_FALSE(valid.empty());
  for (std::size_t len = 0; len <= valid.size();
       len += (len < 200 ? 1 : 7)) {
    expect_parse_or_parse_error(parse, valid.substr(0, len),
                                what + " prefix " + std::to_string(len));
  }
}

TEST(ParserRobustnessTest, LibertyTruncationSweep) {
  const std::string valid = read_text_file(
      std::string(BRIDGE_LIBS_DIR) + "/sample_sky130_subset.lib", "liberty");
  run_truncation_sweep([](const std::string& t) { liberty::parse_liberty(t); },
                       valid, "liberty");
}

TEST(ParserRobustnessTest, DatabookTruncationSweep) {
  const std::string valid = cells::emit_databook(cells::lsi_library());
  run_truncation_sweep([](const std::string& t) { cells::parse_databook(t); },
                       valid, "databook");
}

TEST(ParserRobustnessTest, LegendTruncationSweep) {
  const std::string valid = legend::figure2_counter_text();
  run_truncation_sweep([](const std::string& t) { legend::parse_legend(t); },
                       valid, "legend");
}

TEST(ParserRobustnessTest, GarbageInputsNeverCrashOrLeak) {
  const std::vector<std::string> corpus = {
      "",
      "\n\n\n",
      std::string(5, '\0'),
      "\xff\xfe\x80\x81 binary junk \x01\x02",
      "))))((((",
      "library library library",
      "LIBRARY",                       // name missing
      "NAME:",                         // empty legend name
      "!@#$%^&*",
      std::string(10000, 'x'),
      "\"unterminated string",
      "/* unterminated comment",
  };
  for (const std::string& text : corpus) {
    const std::string tag =
        "case len=" + std::to_string(text.size());
    expect_parse_or_parse_error(
        [](const std::string& t) { liberty::parse_liberty(t); }, text,
        "liberty " + tag);
    expect_parse_or_parse_error(
        [](const std::string& t) { cells::parse_databook(t); }, text,
        "databook " + tag);
    expect_parse_or_parse_error(
        [](const std::string& t) { legend::parse_legend(t); }, text,
        "legend " + tag);
  }
}

TEST(ParserRobustnessTest, LibertyNestingBombIsAnErrorNotACrash) {
  // 100k unclosed groups: without the parser's depth guard this
  // overflows the stack (recursive descent) long before hitting EOF.
  std::string bomb = "library (l) {\n";
  for (int i = 0; i < 100000; ++i) bomb += "g () { ";
  EXPECT_THROW(liberty::parse_liberty(bomb), ParseError);
  // Balanced but absurdly deep nesting must also be rejected by depth,
  // not parsed into a 100k-deep tree whose destructor re-overflows.
  std::string balanced = "library (l) {\n";
  const int depth = 5000;
  for (int i = 0; i < depth; ++i) balanced += "g () { ";
  for (int i = 0; i < depth; ++i) balanced += "} ";
  balanced += "}";
  EXPECT_THROW(liberty::parse_liberty(balanced), ParseError);
}

TEST(ParserRobustnessTest, LegendNestingBombIsAnErrorNotACrash) {
  std::string bomb = "NAME: X\nOPERATIONS:\n";
  bomb += std::string(100000, '(');
  EXPECT_THROW(legend::parse_legend(bomb), ParseError);

  std::string balanced = "NAME: X\nOPERATIONS:\n";
  balanced += std::string(5000, '(');
  balanced += "LOAD";
  balanced += std::string(5000, ')');
  EXPECT_THROW(legend::parse_legend(balanced), ParseError);
}

TEST(ParserRobustnessTest, LegendBadIntegerAttributeIsParseError) {
  // MAX_PARAMS used to go through a raw std::stoi — garbage threw
  // std::invalid_argument (not a ParseError, no line info) and trailing
  // junk was silently accepted.
  EXPECT_THROW(legend::parse_legend("NAME: X\nMAX_PARAMS: banana\n"),
               ParseError);
  EXPECT_THROW(legend::parse_legend("NAME: X\nMAX_PARAMS: 3x\n"), ParseError);
  EXPECT_THROW(legend::parse_legend("NAME: X\nMAX_PARAMS:\n"), ParseError);
  EXPECT_THROW(
      legend::parse_legend("NAME: X\nMAX_PARAMS: 99999999999999999999\n"),
      ParseError);
  // The error carries the offending line.
  try {
    legend::parse_legend("NAME: X\nMAX_PARAMS: banana\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(ParserRobustnessTest, LegendUnterminatedDeclarationsCarryLine) {
  try {
    legend::parse_legend("NAME: X\nINPUTS: I0[w\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
  try {
    legend::parse_legend("NAME: X\nPARAMETERS: P (w\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(ParserRobustnessTest, DatabookBadKindAndStyleAreParseErrors) {
  // kind_from_name / style_from_name throw plain Error; the parser must
  // convert those to ParseError with the offending line.
  EXPECT_THROW(
      cells::parse_databook("LIBRARY L\nCELL A KIND BANANA AREA 1 DELAY 1\n"),
      ParseError);
  EXPECT_THROW(cells::parse_databook(
                   "LIBRARY L\nCELL A KIND ADDER STYLE BANANA AREA 1 "
                   "DELAY 1\n"),
               ParseError);
  try {
    cells::parse_databook("LIBRARY L\nCELL A KIND BANANA AREA 1 DELAY 1\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(ParserRobustnessTest, ValidInputsStillParseAfterHardening) {
  // The guards must not reject anything real.
  EXPECT_NO_THROW(liberty::parse_liberty(read_text_file(
      std::string(BRIDGE_LIBS_DIR) + "/sample_sky130_subset.lib",
      "liberty")));
  EXPECT_NO_THROW(
      cells::parse_databook(cells::emit_databook(cells::lsi_library())));
  EXPECT_NO_THROW(legend::parse_legend(legend::figure2_counter_text()));
  EXPECT_NO_THROW(legend::parse_legend("NAME: X\nMAX_PARAMS: 3\n"));
}

}  // namespace
}  // namespace bridge
