// Deadlines and cooperative cancellation.
//
// The contract under test: a deadline that never fires is bit-identical
// to an unbounded run (polling only reads a clock); an expired deadline
// either throws bridge::Cancelled with strong exception safety (the
// Synthesizer stays usable and a re-armed retry is byte-identical) or,
// in best-effort mode, returns the best-so-far front and sets
// SpaceStats::deadline_hit.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "base/cancel.h"
#include "base/diag.h"
#include "cells/cell.h"
#include "dtas/design_space.h"
#include "dtas/synthesizer.h"
#include "genus/spec.h"
#include "netlist/netlist.h"
#include "vhdl/vhdl.h"

namespace bridge {
namespace {

using base::CancelToken;
using base::Deadline;
using dtas::AlternativeDesign;
using dtas::SpaceOptions;
using genus::ComponentSpec;

struct FrontRecord {
  std::vector<double> areas, delays;
  std::vector<std::string> descriptions;
  std::vector<std::string> vhdl;

  bool operator==(const FrontRecord&) const = default;
};

FrontRecord record_front(const std::vector<AlternativeDesign>& alts) {
  FrontRecord rec;
  for (const auto& a : alts) {
    rec.areas.push_back(a.metric.area);
    rec.delays.push_back(a.metric.delay);
    rec.descriptions.push_back(a.description);
    rec.vhdl.push_back(vhdl::emit_structural(*a.design));
  }
  return rec;
}

netlist::Module make_input_netlist() {
  netlist::Module input("dp8");
  netlist::NetIndex a = input.add_port("A", genus::PortDir::kIn, 8);
  netlist::NetIndex b = input.add_port("B", genus::PortDir::kIn, 8);
  netlist::NetIndex sel = input.add_port("SEL", genus::PortDir::kIn, 1);
  netlist::NetIndex out = input.add_port("OUT", genus::PortDir::kOut, 8);
  netlist::NetIndex sum = input.add_net("sum", 8);
  auto& add = input.add_spec_instance(
      "add0", genus::make_adder_spec(8, /*carry_in=*/false,
                                     /*carry_out=*/false));
  input.connect(add, "A", a);
  input.connect(add, "B", b);
  input.connect(add, "S", sum);
  auto& mux = input.add_spec_instance("mux0", genus::make_mux_spec(8, 2));
  input.connect(mux, "I0", a);
  input.connect(mux, "I1", sum);
  input.connect(mux, "SEL", sel);
  input.connect(mux, "OUT", out);
  return input;
}

TEST(DeadlineTest, PrimitiveSemantics) {
  Deadline inactive;
  EXPECT_FALSE(inactive.active());
  EXPECT_FALSE(inactive.expired());

  Deadline past = Deadline::after_ms(0);
  EXPECT_TRUE(past.active());
  EXPECT_TRUE(past.expired());

  Deadline future = Deadline::after_ms(600000);
  EXPECT_TRUE(future.active());
  EXPECT_FALSE(future.expired());

  auto token = std::make_shared<CancelToken>();
  Deadline cancellable = Deadline::cancel_only(token);
  EXPECT_TRUE(cancellable.active());
  EXPECT_FALSE(cancellable.expired());
  token->request_cancel();
  EXPECT_TRUE(cancellable.expired());
  EXPECT_TRUE(token->cancelled());

  // A cancelled token also fires a timed deadline early.
  Deadline combined = Deadline::after_ms(600000, token);
  EXPECT_TRUE(combined.expired());
}

TEST(DeadlineTest, UnhitDeadlineIsByteIdenticalToUnbounded) {
  const ComponentSpec spec = genus::make_alu_spec(16, genus::alu16_ops());
  dtas::Synthesizer unbounded(cells::lsi_library());
  const FrontRecord expect = record_front(unbounded.synthesize(spec));
  ASSERT_FALSE(expect.areas.empty());

  for (bool best_effort : {false, true}) {
    SCOPED_TRACE(best_effort ? "best-effort" : "throw mode");
    SpaceOptions opt;
    opt.deadline_ms = 600000;  // ten minutes: never fires here
    opt.deadline_best_effort = best_effort;
    opt.cancel = std::make_shared<CancelToken>();  // never cancelled
    dtas::Synthesizer bounded(cells::lsi_library(), opt);
    EXPECT_EQ(record_front(bounded.synthesize(spec)), expect);
    EXPECT_FALSE(bounded.space().stats().deadline_hit);
  }
}

TEST(DeadlineTest, CancelledTokenThrowsAndSynthesizerStaysUsable) {
  const ComponentSpec spec = genus::make_alu_spec(16, genus::alu16_ops());
  dtas::Synthesizer baseline(cells::lsi_library());
  const FrontRecord expect = record_front(baseline.synthesize(spec));

  auto token = std::make_shared<CancelToken>();
  SpaceOptions opt;
  opt.cancel = token;
  dtas::Synthesizer synth(cells::lsi_library(), opt);
  token->request_cancel();
  EXPECT_THROW(synth.synthesize(spec), Cancelled);

  // Strong exception safety: clear the policy, retry on the same
  // synthesizer, get the byte-identical front.
  synth.space().set_deadline_policy(/*deadline_ms=*/0, /*best_effort=*/false,
                                    /*cancel=*/nullptr);
  EXPECT_EQ(record_front(synth.synthesize(spec)), expect);
  EXPECT_FALSE(synth.space().stats().deadline_hit);
}

TEST(DeadlineTest, BestEffortReturnsTruncatedFrontAndSetsFlag) {
  const ComponentSpec spec = genus::make_alu_spec(16, genus::alu16_ops());
  dtas::Synthesizer baseline(cells::lsi_library());
  const std::size_t full_size = baseline.synthesize(spec).size();

  auto token = std::make_shared<CancelToken>();
  SpaceOptions opt;
  opt.cancel = token;
  opt.deadline_best_effort = true;
  dtas::Synthesizer synth(cells::lsi_library(), opt);
  token->request_cancel();
  std::vector<AlternativeDesign> truncated;
  EXPECT_NO_THROW(truncated = synth.synthesize(spec));
  EXPECT_TRUE(synth.space().stats().deadline_hit);
  EXPECT_LE(truncated.size(), full_size);

  // Re-arming with no deadline resets the flag; note the truncated
  // best-effort state persists in the space (documented), so this is a
  // usability check, not a byte-identity one.
  synth.space().set_deadline_policy(0, false, nullptr);
  const auto again = synth.synthesize(spec);
  EXPECT_GE(again.size(), truncated.size());
  EXPECT_FALSE(synth.space().stats().deadline_hit);
}

TEST(DeadlineTest, NetlistSynthesisHonorsCancellation) {
  const netlist::Module input = make_input_netlist();
  dtas::Synthesizer baseline(cells::lsi_library());
  const FrontRecord expect = record_front(baseline.synthesize_netlist(input));
  ASSERT_FALSE(expect.areas.empty());

  auto token = std::make_shared<CancelToken>();
  SpaceOptions opt;
  opt.cancel = token;
  dtas::Synthesizer synth(cells::lsi_library(), opt);
  token->request_cancel();
  EXPECT_THROW(synth.synthesize_netlist(input), Cancelled);
  synth.space().set_deadline_policy(0, false, nullptr);
  EXPECT_EQ(record_front(synth.synthesize_netlist(input)), expect);
}

TEST(DeadlineTest, DeadlinePolicyCanBeSwappedPerRequest) {
  // One synthesizer, three requests with different budgets — the
  // long-lived-service pattern set_deadline_policy exists for.
  const ComponentSpec spec = genus::make_adder_spec(32);
  dtas::Synthesizer synth(cells::lsi_library());
  const FrontRecord expect = record_front(synth.synthesize(spec));

  auto token = std::make_shared<CancelToken>();
  token->request_cancel();
  synth.space().set_deadline_policy(0, false, token);
  EXPECT_THROW(synth.synthesize(spec), Cancelled);

  synth.space().set_deadline_policy(600000, false, nullptr);
  EXPECT_EQ(record_front(synth.synthesize(spec)), expect);
}

}  // namespace
}  // namespace bridge
