// Extraction-side caching and the extraction-path contracts.
//
// The extraction cache must be transparent: a Synthesizer extracting with
// SpaceOptions::use_extraction_cache off (every AlternativeDesign owns a
// private copy of every module — the original path) and one extracting
// with it on (each distinct (SpecNode, alternative) subtree materialized
// once and shared across the front) must produce byte-identical
// descriptions and byte-identical structural VHDL, against every registry
// library, for single-spec and whole-netlist synthesis alike. The cache-on
// front must actually *share* storage: the same netlist::Module address
// appearing in several alternatives' designs. The remaining tests pin the
// extraction contracts this PR fixed: session-unique module naming under
// sanitized-key collisions, the no-silently-floating-input rule in
// instance binding, and VHDL-legal identifiers from digit-leading names.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/diag.h"
#include "base/strutil.h"
#include "cells/registry.h"
#include "dtas/design_space.h"
#include "dtas/synthesizer.h"
#include "genus/spec.h"
#include "netlist/netlist.h"
#include "vhdl/vhdl.h"

namespace bridge {
namespace {

using dtas::AlternativeDesign;
using dtas::ExtractionCache;
using dtas::SpaceOptions;
using dtas::SpecNode;
using genus::ComponentSpec;
using genus::Op;
using genus::OpSet;
using netlist::Module;

/// All three registry libraries: both built-ins plus the bundled Liberty
/// import.
const cells::LibraryRegistry& registry() {
  static cells::LibraryRegistry reg = [] {
    auto r = cells::LibraryRegistry::with_builtins();
    r.load_liberty_file(std::string(BRIDGE_LIBS_DIR) +
                        "/sample_sky130_subset.lib");
    return r;
  }();
  return reg;
}

SpaceOptions options_with_cache(bool use_cache) {
  SpaceOptions opt;
  opt.use_extraction_cache = use_cache;
  return opt;
}

struct FrontRecord {
  std::vector<double> areas, delays;
  std::vector<std::string> descriptions;
  std::vector<std::string> vhdl;
};

FrontRecord record_front(const std::vector<AlternativeDesign>& alts) {
  FrontRecord rec;
  for (const auto& a : alts) {
    rec.areas.push_back(a.metric.area);
    rec.delays.push_back(a.metric.delay);
    rec.descriptions.push_back(a.description);
    rec.vhdl.push_back(vhdl::emit_structural(*a.design));
  }
  return rec;
}

void expect_identical(const FrontRecord& off, const FrontRecord& on,
                      const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(off.areas, on.areas);    // exact double equality
  EXPECT_EQ(off.delays, on.delays);  // exact double equality
  EXPECT_EQ(off.descriptions, on.descriptions);
  EXPECT_EQ(off.vhdl, on.vhdl);
}

/// The 8-bit two-instance datapath used for netlist-level equivalence.
Module make_input_netlist() {
  Module input("dp8");
  netlist::NetIndex a = input.add_port("A", genus::PortDir::kIn, 8);
  netlist::NetIndex b = input.add_port("B", genus::PortDir::kIn, 8);
  netlist::NetIndex sel = input.add_port("SEL", genus::PortDir::kIn, 1);
  netlist::NetIndex out = input.add_port("OUT", genus::PortDir::kOut, 8);
  netlist::NetIndex sum = input.add_net("sum", 8);
  auto& add = input.add_spec_instance(
      "add0", genus::make_adder_spec(8, /*carry_in=*/false,
                                     /*carry_out=*/false));
  input.connect(add, "A", a);
  input.connect(add, "B", b);
  input.connect(add, "S", sum);
  auto& mux = input.add_spec_instance("mux0", genus::make_mux_spec(8, 2));
  input.connect(mux, "I0", a);
  input.connect(mux, "I1", sum);
  input.connect(mux, "SEL", sel);
  input.connect(mux, "OUT", out);
  return input;
}

TEST(ExtractCacheTest, CacheOnOffByteIdenticalAcrossLibraries) {
  const std::vector<ComponentSpec> specs = {
      genus::make_alu_spec(16, genus::alu16_ops()),
      genus::make_adder_spec(32),
      genus::make_mux_spec(8, 4),
  };
  for (const cells::CellLibrary* lib : registry().all()) {
    for (const ComponentSpec& spec : specs) {
      SCOPED_TRACE(lib->name() + " / " + spec.key());
      dtas::Synthesizer off(*lib, options_with_cache(false));
      dtas::Synthesizer on(*lib, options_with_cache(true));
      const FrontRecord off_rec = record_front(off.synthesize(spec));
      const FrontRecord cold_rec = record_front(on.synthesize(spec));
      // A second synthesize on the same Synthesizer extracts on a warm
      // cache (every module already materialized).
      const FrontRecord warm_rec = record_front(on.synthesize(spec));
      expect_identical(off_rec, cold_rec, "cold cache");
      expect_identical(off_rec, warm_rec, "warm cache");

      // Off never touches the cache; on materializes each distinct
      // subtree exactly once — the warm pass adds no misses.
      EXPECT_EQ(off.extraction_cache().stats().hits, 0);
      EXPECT_EQ(off.extraction_cache().stats().misses, 0);
      const auto& stats = on.extraction_cache().stats();
      EXPECT_GT(stats.misses, 0);
      EXPECT_GT(stats.hits, 0);
      EXPECT_EQ(static_cast<std::size_t>(stats.misses),
                on.extraction_cache().size())
          << "every miss publishes exactly one module";
    }
  }
}

TEST(ExtractCacheTest, NetlistSynthesisByteIdenticalAndShared) {
  const Module input = make_input_netlist();
  ASSERT_TRUE(netlist::check_module(input).empty());
  for (const cells::CellLibrary* lib : registry().all()) {
    SCOPED_TRACE(lib->name());
    dtas::Synthesizer off(*lib, options_with_cache(false));
    dtas::Synthesizer on(*lib, options_with_cache(true));
    const auto off_alts = off.synthesize_netlist(input);
    const auto on_alts = on.synthesize_netlist(input);
    expect_identical(record_front(off_alts), record_front(on_alts),
                     "netlist front");
  }
}

TEST(ExtractCacheTest, AlternativesShareModuleStorage) {
  // The alternatives of one front overlap heavily in their subtrees; with
  // the cache on, an overlapping subtree is the *same* Module object in
  // every design that contains it.
  dtas::Synthesizer synth(cells::lsi_library(), options_with_cache(true));
  const auto alts =
      synth.synthesize(genus::make_alu_spec(16, genus::alu16_ops()));
  ASSERT_GE(alts.size(), 2u);
  std::map<const Module*, int> appearances;
  for (const auto& a : alts) {
    for (const Module* m : a.design->module_order()) ++appearances[m];
  }
  int shared_modules = 0;
  for (const auto& [mod, count] : appearances) {
    (void)mod;
    if (count > 1) ++shared_modules;
  }
  EXPECT_GT(shared_modules, 0)
      << "no module address is shared across alternatives";

  // The reference path must NOT share: every design owns its copies.
  dtas::Synthesizer ref(cells::lsi_library(), options_with_cache(false));
  const auto ref_alts =
      ref.synthesize(genus::make_alu_spec(16, genus::alu16_ops()));
  std::set<const Module*> seen;
  for (const auto& a : ref_alts) {
    for (const Module* m : a.design->module_order()) {
      EXPECT_TRUE(seen.insert(m).second)
          << "cache-off design shares module storage";
    }
  }
}

TEST(ExtractCacheTest, WarmSynthesisReusesEarlierModules) {
  dtas::Synthesizer synth(cells::lsi_library(), options_with_cache(true));
  const ComponentSpec spec = genus::make_adder_spec(32);
  const auto first = synth.synthesize(spec);
  const long misses_after_first = synth.extraction_cache().stats().misses;
  const auto second = synth.synthesize(spec);
  EXPECT_EQ(synth.extraction_cache().stats().misses, misses_after_first)
      << "warm extraction must not materialize any new module";
  // The two fronts reference the same shared modules.
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].design->module_order(),
              second[i].design->module_order());
  }
}

TEST(ExtractCacheTest, EmissionCacheRendersEachModuleOnce) {
  dtas::Synthesizer synth(cells::lsi_library(), options_with_cache(true));
  const auto alts =
      synth.synthesize(genus::make_alu_spec(16, genus::alu16_ops()));
  ASSERT_GE(alts.size(), 2u);
  vhdl::EmissionCache cache;
  std::size_t total_module_refs = 0;
  for (const auto& a : alts) {
    EXPECT_EQ(vhdl::emit_structural(*a.design, cache),
              vhdl::emit_structural(*a.design))
        << "cached emission must be byte-identical to direct emission";
    total_module_refs += a.design->module_order().size();
  }
  EXPECT_LT(cache.size(), total_module_refs)
      << "the front shares modules, so the cache must render fewer "
         "modules than the designs reference in total";
}

TEST(ExtractCacheTest, CollidingSanitizedNamesGetUniquified) {
  // Two distinct SpecNodes whose spec keys sanitize to the same identifier
  // (and share an alt index) used to collide in Design::add_module; the
  // session name table must keep them apart.
  ExtractionCache cache;
  SpecNode a, b;
  a.spec = genus::make_adder_spec(8);
  b.spec = a.spec;  // same key, distinct content — the worst case
  // Hand-built nodes never went through expand(); give them the distinct
  // content fingerprints expansion would have (same spec against two
  // different library slices), which is exactly the colliding-name case.
  a.slice_fp = 0x1111;
  b.slice_fp = 0x2222;
  const std::string na = cache.name_for(&a, 0);
  const std::string nb = cache.name_for(&b, 0);
  EXPECT_NE(na, nb);
  // Memoized: asking again returns the same name, no further uniquifier.
  EXPECT_EQ(cache.name_for(&a, 0), na);
  EXPECT_EQ(cache.name_for(&b, 0), nb);
  // Different alt indices never collide to begin with.
  EXPECT_NE(cache.name_for(&a, 1), na);
  // Session names are VHDL-legal verbatim: emission's sanitizer is the
  // identity on them, so raw-name uniqueness IS emitted-entity
  // uniqueness.
  for (const std::string& n : {na, nb, cache.name_for(&a, 1)}) {
    EXPECT_EQ(sanitize_identifier(n), n);
  }
}

TEST(ExtractCacheTest, UniqueNameSuffixesAndReRequests) {
  ExtractionCache cache;
  EXPECT_EQ(cache.unique_name("X_a0"), "X_a0");
  EXPECT_EQ(cache.unique_name("X_a0"), "X_a0_u1");
  EXPECT_EQ(cache.unique_name("X_a0"), "X_a0_u2");
  // A literal name equal to an already-granted uniquified name must not
  // collide either.
  EXPECT_EQ(cache.unique_name("X_a0_u1"), "X_a0_u1_u1");
}

TEST(ExtractCacheTest, StrippedTemplateConnectionThrows) {
  // An input-netlist instance that leaves a matched *input* port
  // unconnected used to produce a silently floating cell input; binding
  // must refuse instead. (Matched outputs may stay open.)
  Module input("gated");
  netlist::NetIndex a = input.add_port("A", genus::PortDir::kIn, 1);
  netlist::NetIndex out = input.add_port("OUT", genus::PortDir::kOut, 1);
  auto& g = input.add_spec_instance("g0", genus::make_gate_spec(Op::kAnd, 1));
  input.connect(g, "I0", a);
  // I1 deliberately left unconnected.
  input.connect(g, "OUT", out);
  for (bool use_cache : {false, true}) {
    dtas::Synthesizer synth(cells::lsi_library(),
                            options_with_cache(use_cache));
    EXPECT_THROW(synth.synthesize_netlist(input), Error)
        << "use_cache=" << use_cache;
  }
}

TEST(ExtractCacheTest, DigitLeadingNetlistNameEmitsLegalVhdl) {
  // A netlist (or spec key) whose name starts with a digit must still
  // yield VHDL-legal identifiers end to end — the same well-formedness
  // bar the existing VHDL golden checks apply.
  Module renamed("9dp8");
  // Rebuild under a digit-leading name (Module names are ctor-only).
  {
    netlist::NetIndex a = renamed.add_port("A", genus::PortDir::kIn, 8);
    netlist::NetIndex b = renamed.add_port("B", genus::PortDir::kIn, 8);
    netlist::NetIndex s = renamed.add_net("sum", 8);
    auto& add = renamed.add_spec_instance(
        "add0", genus::make_adder_spec(8, false, false));
    renamed.connect(add, "A", a);
    renamed.connect(add, "B", b);
    renamed.connect(add, "S", s);
    netlist::NetIndex out = renamed.add_port("OUT", genus::PortDir::kOut, 8);
    auto& buf = renamed.add_spec_instance(
        "buf0", genus::make_gate_spec(Op::kBuf, 8));
    renamed.connect(buf, "I0", s);
    renamed.connect(buf, "OUT", out);
  }
  ASSERT_TRUE(netlist::check_module(renamed).empty());
  dtas::Synthesizer synth(cells::lsi_library(), options_with_cache(true));
  const auto alts = synth.synthesize_netlist(renamed);
  ASSERT_FALSE(alts.empty());
  const std::string text = vhdl::emit_structural(*alts.front().design);
  EXPECT_NE(text.find("entity u_9dp8"), std::string::npos)
      << "digit-leading module name must gain the u_ prefix";
  EXPECT_EQ(text.find("entity 9"), std::string::npos);
  // Every 'entity' has a matching 'end entity' (the golden check from
  // sim_vhdl_dag_test), and no identifier contains "__" or a trailing
  // '_' before a token boundary.
  size_t entities = 0, ends = 0;
  for (size_t p = text.find("entity "); p != std::string::npos;
       p = text.find("entity ", p + 1)) {
    ++entities;
  }
  for (size_t p = text.find("end entity "); p != std::string::npos;
       p = text.find("end entity ", p + 1)) {
    ++ends;
  }
  EXPECT_EQ(entities, ends * 2);  // "entity X" appears in decl + end line
  // Past the design-name comment (raw, not an identifier), no identifier
  // may contain consecutive underscores.
  const std::string body = text.substr(text.find('\n') + 1);
  EXPECT_EQ(body.find("__"), std::string::npos)
      << "VHDL forbids consecutive underscores in identifiers";
}

}  // namespace
}  // namespace bridge
