// Netlist unit tests: construction, slicing, DRC violations, hierarchy.
#include <gtest/gtest.h>

#include "base/diag.h"
#include "netlist/netlist.h"

namespace bridge::netlist {
namespace {

using genus::PortDir;

TEST(Netlist, PortsCreateNets) {
  Module m("top");
  NetIndex a = m.add_port("A", PortDir::kIn, 8);
  EXPECT_EQ(m.find_net("A"), a);
  EXPECT_EQ(m.net_width(a), 8);
  EXPECT_EQ(m.module_port("A").dir, PortDir::kIn);
  EXPECT_THROW(m.module_port("B"), Error);
  EXPECT_EQ(m.find_net("B"), kNoNet);
}

TEST(Netlist, DuplicateNetNameThrows) {
  Module m("top");
  m.add_net("x", 1);
  EXPECT_THROW(m.add_net("x", 2), Error);
}

TEST(Netlist, SliceConnectionBoundsChecked) {
  Module m("top");
  NetIndex a = m.add_port("A", PortDir::kIn, 8);
  NetIndex o = m.add_port("O", PortDir::kOut, 4);
  Instance& g = m.add_spec_instance(
      "g", genus::make_gate_spec(genus::Op::kBuf, 4));
  m.connect(g, "I0", a, 4);  // A[7:4]
  m.connect(g, "OUT", o);
  EXPECT_TRUE(check_module(m).empty());
  EXPECT_THROW(m.connect(g, "I0", a, 5), Error);  // [5,9) overflows
}

TEST(NetlistDrc, CatchesUnconnectedInput) {
  Module m("top");
  m.add_port("O", PortDir::kOut, 1);
  Instance& g = m.add_spec_instance(
      "g", genus::make_gate_spec(genus::Op::kLnot, 1));
  m.connect(g, "OUT", m.find_net("O"));
  auto issues = check_module(m);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].find("unconnected input"), std::string::npos);
}

TEST(NetlistDrc, CatchesMultipleDrivers) {
  Module m("top");
  NetIndex a = m.add_port("A", PortDir::kIn, 1);
  NetIndex o = m.add_port("O", PortDir::kOut, 1);
  for (int i = 0; i < 2; ++i) {
    Instance& g = m.add_spec_instance(
        "g" + std::to_string(i), genus::make_gate_spec(genus::Op::kLnot, 1));
    m.connect(g, "I0", a);
    m.connect(g, "OUT", o);
  }
  auto issues = check_module(m);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].find("drivers"), std::string::npos);
}

TEST(NetlistDrc, CatchesUndrivenReadNet) {
  Module m("top");
  NetIndex x = m.add_net("x", 1);
  NetIndex o = m.add_port("O", PortDir::kOut, 1);
  Instance& g = m.add_spec_instance(
      "g", genus::make_gate_spec(genus::Op::kLnot, 1));
  m.connect(g, "I0", x);
  m.connect(g, "OUT", o);
  auto issues = check_module(m);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].find("undriven"), std::string::npos);
}

TEST(NetlistDrc, CatchesConstantOnOutput) {
  Module m("top");
  m.add_port("A", PortDir::kIn, 1);
  Instance& g = m.add_spec_instance(
      "g", genus::make_gate_spec(genus::Op::kLnot, 1));
  m.connect(g, "I0", m.find_net("A"));
  g.connections["OUT"] = PortConn::constant(1);
  auto issues = check_module(m);
  ASSERT_FALSE(issues.empty());
}

TEST(NetlistDrc, CatchesUnknownPortName) {
  Module m("top");
  m.add_port("A", PortDir::kIn, 1);
  Instance& g = m.add_spec_instance(
      "g", genus::make_gate_spec(genus::Op::kLnot, 1));
  m.connect(g, "I0", m.find_net("A"));
  g.connections["BOGUS"] = PortConn::to_net(m.find_net("A"));
  auto issues = check_module(m);
  bool found = false;
  for (const auto& i : issues) {
    if (i.find("unknown port") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(NetlistDesign, HierarchyAndLeafCount) {
  Design d("d");
  Module& child = d.add_module("child");
  child.add_port("I", PortDir::kIn, 1);
  child.add_port("O", PortDir::kOut, 1);
  Instance& g = child.add_spec_instance(
      "g", genus::make_gate_spec(genus::Op::kLnot, 1));
  child.connect(g, "I0", child.find_net("I"));
  child.connect(g, "OUT", child.find_net("O"));

  Module& top = d.add_module("top");
  NetIndex a = top.add_port("A", PortDir::kIn, 1);
  NetIndex o = top.add_port("O", PortDir::kOut, 1);
  NetIndex mid = top.add_net("mid", 1);
  genus::ComponentSpec spec = genus::make_gate_spec(genus::Op::kLnot, 1);
  Instance& u0 = top.add_module_instance("u0", &child, spec);
  top.connect(u0, "I", a);
  top.connect(u0, "O", mid);
  Instance& u1 = top.add_module_instance("u1", &child, spec);
  top.connect(u1, "I", mid);
  top.connect(u1, "O", o);
  d.set_top(&top);

  EXPECT_TRUE(check_module(top).empty());
  EXPECT_EQ(Design::count_leaf_instances(top), 2);
  EXPECT_THROW(d.add_module("top"), Error);
  EXPECT_EQ(d.find_module("child"), &child);
}

}  // namespace
}  // namespace bridge::netlist
