// Tests for the simulator semantics corners, the VHDL emitters, and the
// DAGON-style baseline mapper.
#include <gtest/gtest.h>

#include "base/diag.h"
#include "cells/cell.h"
#include "dag/dagon.h"
#include "dtas/synthesizer.h"
#include "genus/library.h"
#include "sim/semantics.h"
#include "sim/simulator.h"
#include "vhdl/vhdl.h"

namespace bridge {
namespace {

using genus::ComponentSpec;
using genus::Kind;
using genus::Op;
using genus::OpSet;
using sim::PortValues;

TEST(SimSemantics, AluRawCarryConvention) {
  ComponentSpec alu = genus::make_alu_spec(8, genus::alu16_ops());
  PortValues in;
  in["A"] = BitVec(8, 100);
  in["B"] = BitVec(8, 30);
  in["CI"] = BitVec(1, 1);
  in["F"] = BitVec(4, 1);  // SUB: A + ~B + CI = A - B when CI = 1
  auto out = sim::eval_combinational(alu, in);
  EXPECT_EQ(out.at("OUT").to_uint64(), 70u);
  in["CI"] = BitVec(1, 0);
  out = sim::eval_combinational(alu, in);
  EXPECT_EQ(out.at("OUT").to_uint64(), 69u);  // A - B - 1
  // Status pins are F-independent.
  EXPECT_EQ(out.at("GT").bit(0), true);
  EXPECT_EQ(out.at("EQ").bit(0), false);
  EXPECT_EQ(out.at("ZEROP").bit(0), false);
  in["F"] = BitVec(4, 8);  // AND
  out = sim::eval_combinational(alu, in);
  EXPECT_EQ(out.at("OUT").to_uint64(), 100u & 30u);
  EXPECT_EQ(out.at("GT").bit(0), true);
}

TEST(SimSemantics, ClaGroupSignals) {
  ComponentSpec cla;
  cla.kind = Kind::kCarryLookahead;
  cla.width = 1;
  cla.size = 4;
  PortValues in;
  in["P"] = BitVec(4, 0b1111);
  in["G"] = BitVec(4, 0b0000);
  in["CI"] = BitVec(1, 1);
  auto out = sim::eval_combinational(cla, in);
  EXPECT_EQ(out.at("C").to_uint64(), 0b1111u);  // carry propagates through
  EXPECT_TRUE(out.at("GP").bit(0));
  EXPECT_FALSE(out.at("GG").bit(0));
  in["G"] = BitVec(4, 0b0100);
  in["CI"] = BitVec(1, 0);
  out = sim::eval_combinational(cla, in);
  EXPECT_EQ(out.at("C").to_uint64(), 0b1100u);
  EXPECT_TRUE(out.at("GG").bit(0));
}

TEST(SimSemantics, MuxClampAndDecoderEnable) {
  ComponentSpec mux = genus::make_mux_spec(4, 3);
  PortValues in;
  in["I0"] = BitVec(4, 1);
  in["I1"] = BitVec(4, 2);
  in["I2"] = BitVec(4, 3);
  in["SEL"] = BitVec(2, 3);  // out of range: clamps to last input
  EXPECT_EQ(sim::eval_combinational(mux, in).at("OUT").to_uint64(), 3u);

  ComponentSpec dec = genus::make_decoder_spec(2);
  dec.enable = true;
  PortValues din;
  din["IN"] = BitVec(2, 2);
  din["EN"] = BitVec(1, 0);
  EXPECT_TRUE(sim::eval_combinational(dec, din).at("OUT").is_zero());
  din["EN"] = BitVec(1, 1);
  EXPECT_EQ(sim::eval_combinational(dec, din).at("OUT").to_uint64(), 4u);
}

TEST(SimSemantics, StackAndFifoDiffer) {
  ComponentSpec stack;
  stack.kind = Kind::kStack;
  stack.width = 8;
  stack.size = 4;
  stack.ops = OpSet{Op::kPush, Op::kPop};
  auto st = sim::init_state(stack);
  PortValues push;
  push["PUSH"] = BitVec(1, 1);
  push["POP"] = BitVec(1, 0);
  for (std::uint64_t v : {1ull, 2ull, 3ull}) {
    push["DIN"] = BitVec(8, v);
    sim::seq_step(stack, st, push);
  }
  EXPECT_EQ(sim::seq_outputs(stack, st, {}).at("DOUT").to_uint64(), 3u);

  ComponentSpec fifo = stack;
  fifo.kind = Kind::kFifo;
  auto ff = sim::init_state(fifo);
  for (std::uint64_t v : {1ull, 2ull, 3ull}) {
    push["DIN"] = BitVec(8, v);
    sim::seq_step(fifo, ff, push);
  }
  EXPECT_EQ(sim::seq_outputs(fifo, ff, {}).at("DOUT").to_uint64(), 1u);
  // Pop both and compare ordering.
  PortValues pop;
  pop["PUSH"] = BitVec(1, 0);
  pop["POP"] = BitVec(1, 1);
  sim::seq_step(stack, st, pop);
  sim::seq_step(fifo, ff, pop);
  EXPECT_EQ(sim::seq_outputs(stack, st, {}).at("DOUT").to_uint64(), 2u);
  EXPECT_EQ(sim::seq_outputs(fifo, ff, {}).at("DOUT").to_uint64(), 2u);
}

TEST(Simulator, DetectsCombinationalCycles) {
  netlist::Module m("loop");
  netlist::NetIndex a = m.add_net("a", 1);
  netlist::NetIndex b = m.add_net("b", 1);
  auto& g1 = m.add_spec_instance("g1",
                                 genus::make_gate_spec(Op::kLnot, 1));
  m.connect(g1, "I0", a);
  m.connect(g1, "OUT", b);
  auto& g2 = m.add_spec_instance("g2",
                                 genus::make_gate_spec(Op::kLnot, 1));
  m.connect(g2, "I0", b);
  m.connect(g2, "OUT", a);
  EXPECT_THROW(sim::Simulator s(m), Error);
}

TEST(Vhdl, StructuralOutputIsWellFormed) {
  dtas::Synthesizer synth(cells::lsi_library());
  auto alts = synth.synthesize(genus::make_adder_spec(8));
  ASSERT_FALSE(alts.empty());
  const std::string text = vhdl::emit_structural(*alts.front().design);
  EXPECT_NE(text.find("library ieee;"), std::string::npos);
  EXPECT_NE(text.find("entity "), std::string::npos);
  EXPECT_NE(text.find("architecture structural"), std::string::npos);
  EXPECT_NE(text.find("port map"), std::string::npos);
  // Every 'entity' has a matching 'end entity'.
  size_t entities = 0;
  size_t ends = 0;
  for (size_t p = text.find("entity "); p != std::string::npos;
       p = text.find("entity ", p + 1)) {
    ++entities;
  }
  for (size_t p = text.find("end entity "); p != std::string::npos;
       p = text.find("end entity ", p + 1)) {
    ++ends;
  }
  EXPECT_EQ(entities, ends * 2);  // "entity X" appears in decl + end line
}

TEST(Vhdl, SanitizesIdentifiers) {
  EXPECT_EQ(vhdl::sanitize_identifier("ADDER.w16.ci.co[ADD]"),
            "ADDER_w16_ci_co_ADD");
  EXPECT_EQ(vhdl::sanitize_identifier("3bad"), "u_3bad");
  EXPECT_EQ(vhdl::sanitize_identifier("__x__"), "x");
}

TEST(Vhdl, BehavioralModelMentionsOperations) {
  auto comp = genus::builtin_library().instantiate(Kind::kCounter,
                                                   genus::ParamMap{});
  const std::string text = vhdl::emit_behavioral(*comp);
  EXPECT_NE(text.find("rising_edge"), std::string::npos);
  EXPECT_NE(text.find("COUNT_UP"), std::string::npos);
  EXPECT_NE(text.find("O0 = O0 + 1"), std::string::npos);
}

TEST(Dagon, CoversAdderWithSsiGates) {
  auto patterns = dag::build_patterns(cells::lsi_library());
  EXPECT_GE(patterns.size(), 8u);
  auto net = dag::GateNetwork::ripple_adder(4);
  auto cover = dag::map_network(net, patterns);
  EXPECT_GT(cover.area, 0);
  EXPECT_GT(cover.cells_used, 0);
  // No MSI cells can appear: the histogram contains only SSI gate names.
  for (const auto& [cell, count] : cover.cell_histogram) {
    EXPECT_EQ(cells::lsi_library().find(cell)->spec.kind, Kind::kGate)
        << cell;
    EXPECT_GT(count, 0);
  }
}

TEST(Dagon, XorPatternMatchesWhenTreeAllowsIt) {
  // A free-standing XOR (no fanout on the inner NAND) maps to one XOR2.
  dag::GateNetwork net;
  int a = net.add_input();
  int b = net.add_input();
  int n1 = net.add_nand(a, b);
  int n2 = net.add_nand(a, n1);
  int n3 = net.add_nand(b, n1);
  int x = net.add_nand(n2, n3);
  net.mark_output(x);
  auto cover = dag::map_network(net, dag::build_patterns(cells::lsi_library()));
  EXPECT_EQ(cover.cells_used, 1);
  EXPECT_EQ(cover.cell_histogram.count("XOR2"), 1u);
}

TEST(Dagon, ScalesLinearly) {
  auto patterns = dag::build_patterns(cells::lsi_library());
  auto c8 = dag::map_network(dag::GateNetwork::ripple_adder(8), patterns);
  auto c64 = dag::map_network(dag::GateNetwork::ripple_adder(64), patterns);
  EXPECT_NEAR(c64.area / c8.area, 8.0, 0.5);
}

}  // namespace
}  // namespace bridge
