#!/usr/bin/env python3
"""Gate the structural-lint report from examples/lint_designs.

The driver synthesizes a representative slice of the bench-smoke
workload against every registered library, runs the src/lint structural
linter over every returned design, and re-runs each request with the
`verify` flag off to pin byte-identical fronts. This gate fails when:

  - any request errored (a front the smoke emits must synthesize),
  - any design produced an error-severity lint diagnostic,
  - any front diverged between verify on and verify off,
  - the report is vacuous (no fronts were linted at all).

Warnings are reported but never gate.

Usage:
  lint_designs.py LINT_designs.json
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("report")
    args = ap.parse_args()

    with open(args.report) as f:
        doc = json.load(f)

    failures = []
    cases = doc.get("cases", [])
    if not cases:
        failures.append("report has no cases")
    for row in cases:
        name = f"{row.get('library', '?')}/{row.get('case', '?')}"
        if row.get("status") != "ok":
            failures.append(f"{name}: request failed ({row.get('status')})")
        if row.get("errors", 0) != 0:
            failures.append(
                f"{name}: {row['errors']:.0f} lint errors: "
                + "; ".join(row.get("diagnostics", [])[:5]))
        if not row.get("verify_identical", False):
            failures.append(
                f"{name}: front differs between verify on and off")

    fronts = doc.get("fronts", 0)
    designs = doc.get("designs_linted", 0)
    warnings = doc.get("warnings", 0)
    if fronts < 1 or designs < 1:
        failures.append(
            f"vacuous report: {fronts:.0f} fronts / {designs:.0f} designs")
    print(f"linted {designs:.0f} designs across {fronts:.0f} fronts "
          f"({len(cases)} cases), {doc.get('errors', 0):.0f} errors, "
          f"{warnings:.0f} warnings")

    if failures:
        print("\nDesign lint gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("Design lint gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
