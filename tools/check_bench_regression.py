#!/usr/bin/env python3
"""Diff a fresh BENCH_synthesis.json against the committed baseline.

Fails (exit 1) when the sweep headline regressed by more than the allowed
slowdown. The headline metrics are *ratios measured within one run on one
machine* — `speedup` (reference evaluator wall / compiled evaluator wall)
for the dense-sweep workloads — because absolute milliseconds are not
comparable between the machine that committed the baseline and the CI
runner, while the compiled-vs-reference ratio is: both evaluators run the
same workload in the same process minutes apart.

Thread-scaling entries (suite_t*) are reported but never gate: their
speedup is bounded by the runner's core count, which the baseline machine
does not share.

Usage:
  check_bench_regression.py FRESH BASELINE [--max-slowdown 0.25]
"""

import argparse
import json
import sys

# Workload entries whose `speedup` ratio gates the build. The first is the
# README headline (the 180k-combination sweep).
GATED = [
    "sec6_runtime/datapath16_sweep",
    "sec6_runtime/datapath16_sweep1m",
    "sec6_runtime/total",
]

# Entries gated on an absolute within-run speedup floor instead of a ratio
# against the committed baseline. The expansion- and extraction-phase
# headlines (warm template / extraction cache vs the matching cache-off
# path in bench_fig3_alu64) measure sub-millisecond cached phases, so
# their ratios are too noisy to diff against a number measured on another
# machine — but each must never fall back under the 3x bar its cache was
# landed against.
ABS_FLOOR_GATED = {
    "fig3_alu64/expand_phase": 3.0,
    "fig3_alu64/extract_phase": 3.0,
}

# The 8-thread entries of the sweep workloads gate parallel health (see
# check_parallel_health): the sharded odometer must actually engage, and
# on multi-core runners its speedup must clear a core-count-aware floor.
PARALLEL_GATED = [
    "sec6_runtime/datapath16_sweep/t8",
    "sec6_runtime/datapath16_sweep1m/t8",
]

# Warm-retarget floors (bench_retarget_libraries): one Synthesizer swung
# across the three registry libraries, revisits served by the
# content-fingerprint-keyed caches. Cold and warm are measured minutes
# apart in the same process, so the ratio is machine-independent and the
# floor absolute: a revisit that fails to come back >= 2x faster than the
# cold visit means the delta-aware keys stopped carrying state across
# retarget. fronts_identical == 1 is non-negotiable — warm reuse may
# never change an answer.
RETARGET_GATED = {
    "retarget_warm/LSI_LGC15": 2.0,
    "retarget_warm/TTL74": 2.0,
    "retarget_warm/sample_sky130_subset": 2.0,
}

# Node-parallel evaluation (fig3_alu64/node_parallel): antichain fan-out
# across independent SpecNodes. Engagement (the fan-out really ran) and
# front identity across thread counts gate unconditionally — both are
# machine-independent. The scaling floor applies only on runners with
# >= 4 cores: the dense-sweep evaluate phase at 8 threads must beat 1
# thread (>= 1.05x) — a modest bar, because the phase is sub-millisecond
# and fork-join overhead is real, but one a serial fallback or a hot
# lock cannot clear. On 1-2 core runners (like the container that wrote
# the committed baseline) the speedup is reported, not gated.
NODE_PARALLEL_ENTRY = "fig3_alu64/node_parallel"
NODE_PARALLEL_SCALING_FLOOR = 1.05

# Cache-effectiveness floors: absolute, within-run, machine-independent.
# Hit rates and prune ratios are structural properties of the search (how
# often the warm caches answer, how much of the odometer the front
# prunes), so a change that quietly disables a cache or the
# bound-and-prune front fails here even when wall time happens to look
# fine on the runner. Fields beyond these (raw counts, extra counters)
# are informational and never gate — new fields in entries are always
# tolerated.
EFFECTIVENESS_GATED = {
    "fig3_alu64/cache_effect": {
        # The fig3 bench measures these on deliberately warm caches; both
        # rates are 1.0 when the caches work at all.
        "template_warm_hit_rate": 0.90,
        "extract_warm_hit_rate": 0.90,
    },
    "fig3_alu64/budgeted_cache": {
        # Extraction cache squeezed to ~99% of its own resident set: the
        # budget must be doing real work (>= 1 eviction) while the warm
        # pass still answers >= 90% of lookups from cache. A cache that
        # thrashes under a near-sized budget, or a budget that silently
        # stops evicting, both fail here.
        "warm_hit_rate": 0.90,
        "evictions": 1,
    },
}


# Lint-phase ceiling (fig3_alu64/lint_phase): the structural linter runs
# over every extracted design when verification is on, so its cost is held
# to a within-run ceiling — at most this percentage of the extract phase
# it rides on. The entry must also report a clean front (0 diagnostics)
# and byte-identical fronts/VHDL with the verify gate on vs off.
LINT_ENTRY = "fig3_alu64/lint_phase"
LINT_MAX_PCT_OF_EXTRACT = 5.0

# Server-throughput floors (bench_server_throughput -> BENCH_server.json,
# checked via --server). Absolute and within-run, like the cache floors:
# `warm_cold_speedup` compares warm sessions against one-shot cold
# synthesis measured seconds apart in the same process, so a server that
# stops sharing warm caches fails the 2x bar on any machine. The
# `warm_rps` floor is a liveness sanity bound (a warm fig3 request is
# sub-millisecond; 50 req/s means the server is grossly wedged), kept far
# below real throughput so runner speed never trips it.
SERVER_GATED = {
    "warm_cold_speedup": 2.0,
    "warm_rps": 50.0,
}


def load_entries(path):
    with open(path) as f:
        doc = json.load(f)
    return {e["name"]: e for e in doc.get("entries", [])}


def check_parallel_health(fresh, failures):
    """Guard the parallel evaluator against silently regressing to serial.

    Thread-scaling *ratios* cannot be compared against the committed
    baseline (it may have been measured on a different core count — the
    shipped one comes from a 1-core container), so this gate is absolute
    and within-run instead:

    - the sweep workloads' 8-thread runs must have sharded at least one
      odometer (machine-independent: sharding depends only on combination
      counts, not on cores), and
    - on runners with >= 4 cores, the most odometer-bound workload must
      show real scaling: speedup_vs_1thread >= 0.35 x min(8, cores). That
      is ~1.4x at 4 cores and ~2.8x at 8 — far below ideal scaling, far
      above a hot-path lock or a serial fallback. On 1-2 cores only a
      no-severe-slowdown floor (0.7x) applies.
    """
    suite = fresh.get("sec6_runtime/suite_t8", {})
    cores = int(suite.get("hardware_concurrency", 0))
    for name in PARALLEL_GATED:
        e = fresh.get(name)
        if e is None:
            failures.append(f"{name}: parallel-gated entry missing")
            continue
        if e.get("parallel_odometers", 0) < 1:
            failures.append(
                f"{name}: the sharded odometer never engaged "
                "(parallel_odometers = 0) — sweep fell back to serial")
        speedup = e.get("speedup_vs_1thread", 0.0)
        floor = 0.35 * min(8, cores) if cores >= 4 else 0.7
        if speedup < floor:
            failures.append(
                f"{name}: 8-thread speedup {speedup:.2f}x below the "
                f"{floor:.2f}x floor for {cores} cores")
    if cores >= 4 and suite:
        print(f"suite_t8 speedup on {cores} cores: "
              f"{suite.get('speedup_vs_1thread', 0.0):.2f}x vs 1 thread")


def check_retarget(fresh, failures):
    """Hold the warm-retarget entries to their absolute speedup floor."""
    for name, floor in sorted(RETARGET_GATED.items()):
        e = fresh.get(name)
        if e is None:
            failures.append(f"{name}: retarget-gated entry missing from "
                            "fresh run")
            continue
        speedup = e.get("speedup", 0.0)
        if speedup < floor:
            failures.append(
                f"{name}: warm retarget speedup {speedup:.2f}x below the "
                f"{floor:.1f}x floor — delta-aware cache keys not carrying "
                "state across retarget")
        else:
            print(f"{name}: warm {speedup:.2f}x vs cold "
                  f"(floor {floor:.1f}x) ok")
        if e.get("fronts_identical", 0) != 1:
            failures.append(f"{name}: warm retarget front differs from the "
                            "cold visit")


def check_node_parallel(fresh, failures):
    """Gate the antichain fan-out: engagement and front identity always,
    the scaling floor only where there are cores to scale onto."""
    e = fresh.get(NODE_PARALLEL_ENTRY)
    if e is None:
        failures.append(f"{NODE_PARALLEL_ENTRY}: gated entry missing from "
                        "fresh run")
        return
    if e.get("node_parallel_nodes_t8", 0) < 1:
        failures.append(
            f"{NODE_PARALLEL_ENTRY}: the node-parallel fan-out never "
            "engaged (node_parallel_nodes_t8 = 0) — evaluate fell back "
            "to the serial recursion")
    if e.get("fronts_identical") != "yes":
        failures.append(f"{NODE_PARALLEL_ENTRY}: fronts not byte-identical "
                        "across thread counts")
    cores = int(e.get("hardware_concurrency", 0))
    speedup = e.get("speedup_t8_vs_t1", 0.0)
    if cores >= 4:
        if speedup < NODE_PARALLEL_SCALING_FLOOR:
            failures.append(
                f"{NODE_PARALLEL_ENTRY}: 8-thread evaluate speedup "
                f"{speedup:.2f}x below the "
                f"{NODE_PARALLEL_SCALING_FLOOR:.2f}x floor on {cores} cores")
        else:
            print(f"{NODE_PARALLEL_ENTRY}: evaluate {speedup:.2f}x at 8 "
                  f"threads on {cores} cores ok")
    else:
        print(f"{NODE_PARALLEL_ENTRY}: evaluate {speedup:.2f}x at 8 "
              f"threads ({cores} cores — scaling floor not applied)")


def check_effectiveness(fresh, failures):
    """Hold cache hit rates / prune ratios to their absolute floors."""
    for name, floors in sorted(EFFECTIVENESS_GATED.items()):
        e = fresh.get(name)
        if e is None:
            failures.append(
                f"{name}: effectiveness-gated entry missing from fresh run")
            continue
        for field, floor in sorted(floors.items()):
            v = e.get(field)
            if v is None:
                failures.append(f"{name}: effectiveness field '{field}' "
                                "missing from fresh entry")
            elif v < floor:
                failures.append(f"{name}: {field} = {v:.3f} below the "
                                f"{floor:.2f} floor")
            else:
                print(f"{name}.{field}: {v:.3f} (floor {floor:.2f}) ok")


def check_lint_phase(fresh, failures):
    """Hold the lint phase to its cost ceiling and clean-front contract."""
    e = fresh.get(LINT_ENTRY)
    if e is None:
        failures.append(f"{LINT_ENTRY}: gated entry missing from fresh run")
        return
    pct = e.get("lint_vs_extract_pct")
    if pct is None:
        failures.append(f"{LINT_ENTRY}: lint_vs_extract_pct missing")
    elif pct > LINT_MAX_PCT_OF_EXTRACT:
        failures.append(
            f"{LINT_ENTRY}: lint cost {pct:.1f}% of the extract phase "
            f"exceeds the {LINT_MAX_PCT_OF_EXTRACT:.0f}% ceiling")
    else:
        print(f"{LINT_ENTRY}: lint {pct:.1f}% of extract "
              f"(ceiling {LINT_MAX_PCT_OF_EXTRACT:.0f}%) ok")
    if e.get("diagnostics", 0) != 0:
        failures.append(f"{LINT_ENTRY}: {e.get('diagnostics')} lint "
                        "diagnostics on the fig3 front (expected a clean "
                        "front)")
    if e.get("fronts_identical") != "yes":
        failures.append(f"{LINT_ENTRY}: front not byte-identical with "
                        "verify_designs on vs off")


def check_server(path, failures):
    """Hold the server-throughput entries to their absolute floors."""
    entries = load_entries(path)
    gated = {n: e for n, e in entries.items()
             if n.startswith("server_throughput/")}
    if not gated:
        failures.append(f"--server {path}: no server_throughput/* entries")
        return
    for name, e in sorted(gated.items()):
        for field, floor in sorted(SERVER_GATED.items()):
            v = e.get(field)
            if v is None:
                failures.append(f"{name}: server field '{field}' missing")
            elif v < floor:
                failures.append(f"{name}: {field} = {v:.2f} below the "
                                f"{floor:.2f} floor")
            else:
                print(f"{name}.{field}: {v:.2f} (floor {floor:.2f}) ok")
        if e.get("fronts_identical") != "YES":
            failures.append(f"{name}: served fronts not byte-identical to "
                            "in-process synthesis")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("fresh")
    ap.add_argument("baseline")
    ap.add_argument("--max-slowdown", type=float, default=0.25,
                    help="maximum allowed fractional drop of a gated "
                         "speedup ratio (default 0.25)")
    ap.add_argument("--server", metavar="BENCH_SERVER_JSON",
                    help="also hold BENCH_server.json entries to the "
                         "SERVER_GATED floors")
    args = ap.parse_args()

    fresh = load_entries(args.fresh)
    base = load_entries(args.baseline)

    failures = []
    print(f"{'entry':40s} {'base':>9s} {'fresh':>9s} {'ratio':>7s}  gate")
    for name in sorted(set(fresh) | set(base)):
        f, b = fresh.get(name), base.get(name)
        if f is None or b is None:
            status = "missing-in-fresh" if f is None else "new"
            print(f"{name:40s} {'-':>9s} {'-':>9s} {'-':>7s}  {status}")
            if name in GATED or name in ABS_FLOOR_GATED:
                # A gated headline must exist on *both* sides: missing in
                # fresh means the bench broke; missing in baseline means a
                # rename/GATED edit without regenerating the baseline —
                # either way the gate would be vacuous, so fail loudly.
                side = "fresh run" if f is None else "committed baseline"
                failures.append(f"{name}: gated entry missing from {side}")
            continue
        fs, bs = f.get("speedup"), b.get("speedup")
        if fs is None or bs is None or bs <= 0:
            continue
        ratio = fs / bs
        if name in ABS_FLOOR_GATED:
            floor = ABS_FLOOR_GATED[name]
            verdict = "ok(abs)"
            if fs < floor:
                verdict = "REGRESSION"
                failures.append(
                    f"{name}: speedup {fs:.2f}x below the absolute "
                    f"{floor:.1f}x floor")
            print(f"{name:40s} {bs:8.2f}x {fs:8.2f}x {ratio:6.2f}x  "
                  f"{verdict}")
            continue
        gated = name in GATED
        verdict = ""
        if gated:
            verdict = "ok"
            if ratio < 1.0 - args.max_slowdown:
                verdict = "REGRESSION"
                failures.append(
                    f"{name}: speedup {fs:.2f}x vs baseline {bs:.2f}x "
                    f"({(1.0 - ratio) * 100:.0f}% slowdown > "
                    f"{args.max_slowdown * 100:.0f}% allowed)")
        print(f"{name:40s} {bs:8.2f}x {fs:8.2f}x {ratio:6.2f}x  {verdict}")

    check_parallel_health(fresh, failures)
    check_retarget(fresh, failures)
    check_node_parallel(fresh, failures)
    check_effectiveness(fresh, failures)
    check_lint_phase(fresh, failures)
    if args.server:
        check_server(args.server, failures)

    if any(f.get("fronts_identical") == "NO" for f in fresh.values()):
        failures.append("a fresh entry reports fronts_identical = NO")

    if failures:
        print("\nBench regression check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nBench regression check passed "
          f"(allowed slowdown {args.max_slowdown * 100:.0f}%).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
