#!/usr/bin/env python3
"""Summarize and validate Chrome trace-event JSON written by obs::Tracer.

Usage:
  tools/trace_summary.py trace.json            # per-name summary table
  tools/trace_summary.py trace.json --check    # validate, exit 1 on failure

--check validates the structural invariants the tracer promises:
  * events on one thread nest properly (every pair of spans is either
    disjoint or one contains the other — what a stack of RAII scopes
    must produce);
  * the synthesis phases are all present (synthesize, expand, evaluate,
    extract, emit by default; override with --require);
  * every expand / evaluate / extract span that overlaps a synthesize
    span on its thread is fully contained in it (phase coverage: phases
    belong to a synthesis, they never straddle its boundary).

Timestamps are microseconds with three decimals (the tracer preserves
nanosecond resolution); containment is checked with a 2 ns epsilon so
float formatting can never produce false failures.
"""

import argparse
import json
import sys
from collections import defaultdict

# Spans shorter than this (microseconds) can't violate containment
# meaningfully; 0.002 us = 2 ns absorbs the %.3f rounding of ts/dur.
EPS_US = 0.002

DEFAULT_REQUIRED = ["synthesize", "expand", "evaluate", "extract", "emit"]
PHASES_UNDER_SYNTHESIZE = ["expand", "evaluate", "extract"]


def load_events(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    spans = []
    for e in events:
        if e.get("ph") != "X":
            continue
        spans.append(
            {
                "name": e["name"],
                "cat": e.get("cat", ""),
                "tid": (e.get("pid", 0), e.get("tid", 0)),
                "ts": float(e["ts"]),
                "dur": float(e.get("dur", 0.0)),
            }
        )
    return spans


def by_thread(spans):
    threads = defaultdict(list)
    for s in spans:
        threads[s["tid"]].append(s)
    for tid in threads:
        # Chrome's own convention: start ascending, longer spans first on
        # ties so parents sort before their children.
        threads[tid].sort(key=lambda s: (s["ts"], -s["dur"]))
    return threads


def check_nesting(threads):
    """Stack-validate every thread; returns a list of violation strings."""
    errors = []
    for tid, spans in sorted(threads.items()):
        stack = []  # open spans, innermost last
        for s in spans:
            end = s["ts"] + s["dur"]
            while stack and s["ts"] >= stack[-1]["ts"] + stack[-1]["dur"] - EPS_US:
                stack.pop()
            if stack:
                top = stack[-1]
                top_end = top["ts"] + top["dur"]
                if end > top_end + EPS_US:
                    errors.append(
                        f"tid {tid}: span '{s['name']}' "
                        f"[{s['ts']:.3f}, {end:.3f}] overlaps but is not "
                        f"contained in '{top['name']}' "
                        f"[{top['ts']:.3f}, {top_end:.3f}]"
                    )
                    continue  # don't push a malformed span
            stack.append(s)
    return errors


def check_phase_coverage(threads):
    """Phases overlapping a synthesize span must be contained in it."""
    errors = []
    for tid, spans in sorted(threads.items()):
        synths = [s for s in spans if s["name"] == "synthesize"]
        for s in spans:
            if s["name"] not in PHASES_UNDER_SYNTHESIZE:
                continue
            end = s["ts"] + s["dur"]
            for sy in synths:
                sy_end = sy["ts"] + sy["dur"]
                overlaps = s["ts"] < sy_end - EPS_US and end > sy["ts"] + EPS_US
                contained = (
                    s["ts"] >= sy["ts"] - EPS_US and end <= sy_end + EPS_US
                )
                if overlaps and not contained:
                    errors.append(
                        f"tid {tid}: phase '{s['name']}' "
                        f"[{s['ts']:.3f}, {end:.3f}] straddles synthesize "
                        f"[{sy['ts']:.3f}, {sy_end:.3f}]"
                    )
    return errors


def summarize(spans):
    stats = defaultdict(lambda: {"count": 0, "total": 0.0, "max": 0.0})
    for s in spans:
        st = stats[s["name"]]
        st["count"] += 1
        st["total"] += s["dur"]
        st["max"] = max(st["max"], s["dur"])
    return stats


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="Chrome trace-event JSON file")
    ap.add_argument(
        "--check",
        action="store_true",
        help="validate nesting and phase coverage; exit 1 on failure",
    )
    ap.add_argument(
        "--require",
        default=",".join(DEFAULT_REQUIRED),
        help="comma-separated span names that must appear (with --check)",
    )
    args = ap.parse_args()

    spans = load_events(args.trace)
    threads = by_thread(spans)

    stats = summarize(spans)
    print(f"{args.trace}: {len(spans)} spans on {len(threads)} thread(s)")
    print(f"{'name':<24} {'count':>8} {'total(ms)':>12} {'max(ms)':>10}")
    for name, st in sorted(stats.items(), key=lambda kv: -kv[1]["total"]):
        print(
            f"{name:<24} {st['count']:>8} {st['total'] / 1000.0:>12.3f} "
            f"{st['max'] / 1000.0:>10.3f}"
        )

    if not args.check:
        return 0

    errors = []
    required = [n for n in args.require.split(",") if n]
    missing = [n for n in required if n not in stats]
    if missing:
        errors.append(f"required span name(s) missing: {', '.join(missing)}")
    errors += check_nesting(threads)
    errors += check_phase_coverage(threads)

    if errors:
        print(f"\nCHECK FAILED ({len(errors)} violation(s)):")
        for e in errors[:50]:
            print(f"  {e}")
        if len(errors) > 50:
            print(f"  ... and {len(errors) - 50} more")
        return 1
    print("\ncheck passed: nesting valid, all required spans present")
    return 0


if __name__ == "__main__":
    sys.exit(main())
