// Text data-book format for cell libraries.
//
// Retargeting DTAS to a new technology starts from the vendor data book;
// this module gives libraries a textual exchange form:
//
//   LIBRARY LSI_LGC15 "LSI Logic 1.5-micron Compacted Array (subset)"
//   CELL MUX21 KIND MUX WIDTH 1 SIZE 2 OPS (PASS) AREA 2.5 DELAY 1.8
//        DESC "2-to-1 multiplexer"
//   CELL ADD4 KIND ADDER WIDTH 4 OPS (ADD) CI CO AREA 18 DELAY 7.8
//
// Recognized cell attributes: KIND, WIDTH, SIZE, OPS (...), STYLE, REP,
// the flags CI CO EN ASET ARST TS, AREA, DELAY, DESC "...".
#pragma once

#include <string>

#include "cells/cell.h"

namespace bridge::cells {

/// Parse a data book. Throws ParseError with line information on bad input.
CellLibrary parse_databook(const std::string& text);

/// Emit a library in data-book form (round-trips through parse_databook).
std::string emit_databook(const CellLibrary& lib);

}  // namespace bridge::cells
