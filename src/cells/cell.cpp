#include "cells/cell.h"

#include <sstream>

#include "base/diag.h"
#include "base/strutil.h"

namespace bridge::cells {

std::string Cell::pretty() const {
  std::ostringstream os;
  os << name << " (" << spec.pretty() << ", area " << format_double(area)
     << ", delay " << format_double(delay_ns) << " ns)";
  return os.str();
}

const Cell& CellLibrary::add(Cell cell) {
  if (find(cell.name) != nullptr) {
    throw Error("library " + name_ + ": duplicate cell '" + cell.name + "'");
  }
  cells_.push_back(std::move(cell));
  return cells_.back();
}

const Cell* CellLibrary::find(const std::string& name) const {
  for (const Cell& c : cells_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::vector<const Cell*> CellLibrary::matches(
    const genus::ComponentSpec& need) const {
  std::vector<const Cell*> out;
  for (const Cell& c : cells_) {
    if (genus::spec_implements(c.spec, need)) out.push_back(&c);
  }
  return out;
}

}  // namespace bridge::cells
