#include "cells/cell.h"

#include <algorithm>
#include <sstream>

#include "base/diag.h"
#include "base/fingerprint.h"
#include "base/strutil.h"

namespace bridge::cells {

std::string Cell::pretty() const {
  std::ostringstream os;
  os << name << " (" << spec.pretty() << ", area " << format_double(area)
     << ", delay " << format_double(delay_ns) << " ns)";
  return os.str();
}

std::uint64_t cell_fingerprint(const Cell& cell) {
  std::uint64_t h = base::kFingerprintSeed;
  h = base::fp_str(h, cell.name);
  h = base::fp_u64(h, genus::spec_fingerprint(cell.spec));
  h = base::fp_double(h, cell.area);
  h = base::fp_double(h, cell.delay_ns);
  return h;
}

CellLibrary::CellLibrary(const CellLibrary& other)
    : name_(other.name_), description_(other.description_) {
  for (const Cell& c : other.cells_) add(c);
}

CellLibrary& CellLibrary::operator=(const CellLibrary& other) {
  if (this == &other) return *this;
  CellLibrary copy(other);
  *this = std::move(copy);
  return *this;
}

const Cell& CellLibrary::add(Cell cell) {
  if (find(cell.name) != nullptr) {
    throw Error("library " + name_ + ": duplicate cell '" + cell.name + "'");
  }
  const int index = static_cast<int>(cells_.size());
  cell.fingerprint = cell_fingerprint(cell);
  // Finalize before the commutative combine so structured per-cell values
  // cannot cancel each other in the xor / collide in the sum.
  const std::uint64_t mixed = base::fp_mix(cell.fingerprint);
  fp_sum_ += mixed;
  fp_xor_ ^= mixed;
  cells_.push_back(std::move(cell));
  const Cell& stored = cells_.back();
  by_name_.emplace(stored.name, &stored);
  by_kind_width_[bucket_key(stored.spec.kind, stored.spec.width)]
      .emplace_back(index, &stored);
  return stored;
}

std::uint64_t CellLibrary::fingerprint() const {
  std::uint64_t h = base::kFingerprintSeed;
  h = base::fp_u64(h, fp_sum_);
  h = base::fp_u64(h, fp_xor_);
  return base::fp_u64(h, cells_.size());
}

const Cell* CellLibrary::find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

std::vector<const Cell*> CellLibrary::matches(
    const genus::ComponentSpec& need) const {
  // Candidate buckets: the need's own (kind, width) plus every promotable
  // cell kind at that width. Candidates from several buckets are merged by
  // insertion index to preserve the order a full scan would produce.
  std::vector<std::pair<int, const Cell*>> candidates;
  auto gather = [&](genus::Kind kind) {
    auto it = by_kind_width_.find(bucket_key(kind, need.width));
    if (it == by_kind_width_.end()) return;
    for (const auto& [index, cell] : it->second) {
      if (genus::spec_implements(cell->spec, need)) {
        candidates.emplace_back(index, cell);
      }
    }
  };
  gather(need.kind);
  for (genus::Kind kind : genus::promoting_kinds(need.kind)) gather(kind);
  std::sort(candidates.begin(), candidates.end());
  std::vector<const Cell*> out;
  out.reserve(candidates.size());
  for (const auto& [index, cell] : candidates) out.push_back(cell);
  return out;
}

}  // namespace bridge::cells
