// Runtime registry of technology libraries.
//
// The seed could only target the two libraries baked into the binary;
// the registry makes retargeting (paper §7) an open workload: it owns
// named CellLibrary instances from any source — the built-in data books,
// data-book text files, or Liberty (.lib) files ingested through
// src/liberty — and DTAS synthesizes against any of them by name.
#pragma once

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "base/annotations.h"
#include "cells/cell.h"

namespace bridge::liberty {
struct LoadReport;
}  // namespace bridge::liberty

namespace bridge::cells {

class LibraryRegistry {
 public:
  LibraryRegistry() = default;

  // Not copyable: by_name_ holds pointers into libraries_, and library
  // addresses are promised stable for the registry's lifetime. Moves are
  // fine — deque elements keep their addresses across a move — but must
  // be hand-written to hold the source's lock (std::mutex is immovable).
  LibraryRegistry(const LibraryRegistry&) = delete;
  LibraryRegistry& operator=(const LibraryRegistry&) = delete;
  LibraryRegistry(LibraryRegistry&& other);
  LibraryRegistry& operator=(LibraryRegistry&& other);

  /// A registry pre-populated with the built-in LSI and TTL data books.
  static LibraryRegistry with_builtins();

  /// Register a library under its own name. Returns the stored instance
  /// (stable address for the registry's lifetime). Throws Error when a
  /// library of that name is already registered or the name is empty.
  const CellLibrary& add(CellLibrary lib);

  /// Register `lib`, replacing any same-named library: the name now
  /// resolves to the new instance. The superseded instance is kept alive
  /// (deque entries are never destroyed), so references previously handed
  /// out stay valid — it just no longer appears in find/at/all/names.
  /// This is the reload path retargeting workflows use; consumers that
  /// key on CellLibrary::fingerprint() (delta-aware caches, server
  /// sessions) treat a content-identical reload as the same library.
  const CellLibrary& replace(CellLibrary lib);

  /// Find by library name; nullptr when absent.
  const CellLibrary* find(const std::string& name) const;

  /// Find by library name; throws Error (listing known names) when absent.
  const CellLibrary& at(const std::string& name) const;

  /// All current libraries (superseded versions excluded), in first-
  /// registration order.
  std::vector<const CellLibrary*> all() const;

  std::vector<std::string> names() const;
  int size() const {
    base::LockGuard lock(mu_);
    return static_cast<int>(by_name_.size());
  }

  /// Parse a data-book text file and register it.
  const CellLibrary& load_databook_file(const std::string& path);

  /// Ingest a Liberty (.lib) file through the spec-inference pass and
  /// register it. When `report` is non-null it receives the per-cell
  /// recognition diagnostics.
  const CellLibrary& load_liberty_file(const std::string& path,
                                       liberty::LoadReport* report = nullptr);

  /// Load either format, sniffing the content: a Liberty file opens with
  /// `library (NAME) {`, a data book with a `LIBRARY` line. For Liberty
  /// content a non-null `report` receives the skip diagnostics; it is
  /// left untouched for data books.
  const CellLibrary& load_file(const std::string& path,
                               liberty::LoadReport* report = nullptr);

 private:
  // mu_ guards the containers, not the libraries: entries are immutable
  // once registered and never destroyed (replace() supersedes by
  // repointing by_name_, it does not erase), so the pointers and
  // references handed out stay valid without any lock. Concurrent
  // Synthesizers may therefore share one registry — add/replace/find/at/
  // names from any thread.
  mutable base::Mutex mu_;
  // deque: stable addresses
  std::deque<CellLibrary> libraries_ BRIDGE_GUARDED_BY(mu_);
  std::map<std::string, const CellLibrary*> by_name_ BRIDGE_GUARDED_BY(mu_);
};

}  // namespace bridge::cells
