#include "cells/registry.h"

#include <cctype>

#include "base/diag.h"
#include "base/fileio.h"
#include "base/strutil.h"
#include "cells/databook.h"
#include "liberty/liberty.h"

namespace bridge::cells {

namespace {

/// A Liberty file's first meaningful token is `library` followed by `(`;
/// a data book opens with a `LIBRARY <name>` line. Comments differ too
/// (`/* */` vs `#`), so sniff past both.
bool looks_like_liberty(const std::string& text) {
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (c == '#') {
      i = text.find('\n', i);
      if (i == std::string::npos) return false;
    } else if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
      i = text.find("*/", i + 2);
      if (i == std::string::npos) return false;
      i += 2;
    } else if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      i = text.find('\n', i);
      if (i == std::string::npos) return false;
    } else {
      break;
    }
  }
  size_t b = i;
  while (i < text.size() &&
         (std::isalnum(static_cast<unsigned char>(text[i])) ||
          text[i] == '_')) {
    ++i;
  }
  if (to_lower(text.substr(b, i - b)) != "library") return false;
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  return i < text.size() && text[i] == '(';
}

}  // namespace

// The move operations are the one spot the analysis cannot express:
// locking *another object's* mutex (and, for assignment, two mutexes via
// std::scoped_lock's deadlock-avoidance ordering) has no capability
// spelling for the aliased `other.mu_`. The bodies are trivial and
// tsan-covered, so they opt out of the static analysis instead.
LibraryRegistry::LibraryRegistry(LibraryRegistry&& other)
    BRIDGE_NO_THREAD_SAFETY_ANALYSIS {
  base::LockGuard lock(other.mu_);
  libraries_ = std::move(other.libraries_);
  by_name_ = std::move(other.by_name_);
  other.libraries_.clear();
  other.by_name_.clear();
}

LibraryRegistry& LibraryRegistry::operator=(LibraryRegistry&& other)
    BRIDGE_NO_THREAD_SAFETY_ANALYSIS {
  if (this != &other) {
    std::scoped_lock lock(mu_.native(), other.mu_.native());
    libraries_ = std::move(other.libraries_);
    by_name_ = std::move(other.by_name_);
    other.libraries_.clear();
    other.by_name_.clear();
  }
  return *this;
}

LibraryRegistry LibraryRegistry::with_builtins() {
  LibraryRegistry reg;
  reg.add(lsi_library());
  reg.add(ttl_library());
  return reg;
}

const CellLibrary& LibraryRegistry::add(CellLibrary lib) {
  if (lib.name().empty()) {
    throw Error("cannot register a library without a name");
  }
  base::LockGuard lock(mu_);
  if (by_name_.count(lib.name()) != 0) {
    throw Error("library '" + lib.name() + "' is already registered");
  }
  libraries_.push_back(std::move(lib));
  const CellLibrary& stored = libraries_.back();
  by_name_[stored.name()] = &stored;
  return stored;
}

const CellLibrary& LibraryRegistry::replace(CellLibrary lib) {
  if (lib.name().empty()) {
    throw Error("cannot register a library without a name");
  }
  base::LockGuard lock(mu_);
  libraries_.push_back(std::move(lib));
  const CellLibrary& stored = libraries_.back();
  by_name_[stored.name()] = &stored;
  return stored;
}

const CellLibrary* LibraryRegistry::find(const std::string& name) const {
  base::LockGuard lock(mu_);
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

const CellLibrary& LibraryRegistry::at(const std::string& name) const {
  const CellLibrary* lib = find(name);
  if (lib == nullptr) {
    throw Error("no library named '" + name + "' (registered: " +
                join(names(), ", ") + ")");
  }
  return *lib;
}

std::vector<const CellLibrary*> LibraryRegistry::all() const {
  base::LockGuard lock(mu_);
  std::vector<const CellLibrary*> out;
  out.reserve(by_name_.size());
  // Walk in registration order, skipping entries replace() superseded
  // (only the instance by_name_ points at is current for its name).
  for (const CellLibrary& lib : libraries_) {
    auto it = by_name_.find(lib.name());
    if (it != by_name_.end() && it->second == &lib) out.push_back(&lib);
  }
  return out;
}

std::vector<std::string> LibraryRegistry::names() const {
  std::vector<std::string> out;
  for (const CellLibrary* lib : all()) out.push_back(lib->name());
  return out;
}

const CellLibrary& LibraryRegistry::load_databook_file(
    const std::string& path) {
  return add(parse_databook(read_text_file(path, "library file")));
}

const CellLibrary& LibraryRegistry::load_liberty_file(
    const std::string& path, liberty::LoadReport* report) {
  return add(liberty::load_liberty_file(path, report));
}

const CellLibrary& LibraryRegistry::load_file(const std::string& path,
                                              liberty::LoadReport* report) {
  const std::string text = read_text_file(path, "library file");
  if (looks_like_liberty(text)) {
    return add(liberty::load_liberty(text, report));
  }
  return add(parse_databook(text));
}

}  // namespace bridge::cells
