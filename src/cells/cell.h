// Technology-specific RTL library cells.
//
// "Technology mapping is performed using the functional specification of
// library cells... The functionality of library cells, i.e., their type,
// bit-width, and other characteristics, is described with the same
// representation language used in recognizing and decomposing GENUS
// components." (paper §5)
//
// A Cell is therefore a ComponentSpec plus data-book performance numbers:
// area in equivalent NAND gates and worst-case delay in nanoseconds —
// the units of Figure 3.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "genus/spec.h"

namespace bridge::cells {

struct Cell {
  std::string name;               // data-book part name, e.g. "ADD4"
  genus::ComponentSpec spec;      // functional specification
  double area = 0.0;              // equivalent NAND gates
  double delay_ns = 0.0;          // worst-case pin-to-pin / clock-to-q
  std::string description;
  /// Content fingerprint over everything synthesis can observe: the part
  /// name (it appears in emitted VHDL and descriptions), the functional
  /// spec, and the exact area/delay numbers. The description is excluded —
  /// it is documentation. Computed by CellLibrary::add (any caller-supplied
  /// value is overwritten) and by cell_fingerprint for free-standing cells.
  std::uint64_t fingerprint = 0;

  std::string pretty() const;
};

/// The fingerprint CellLibrary::add assigns to a stored cell.
std::uint64_t cell_fingerprint(const Cell& cell);

/// A technology library: an ordered set of cells with unique names.
/// Cells have stable addresses for the lifetime of the library, so DTAS
/// design spaces may hold `const Cell*`.
class CellLibrary {
 public:
  explicit CellLibrary(std::string name = "", std::string description = "")
      : name_(std::move(name)), description_(std::move(description)) {}

  // The match index holds pointers into cells_, so copies must rebuild it
  // rather than copy it (a memberwise copy would leave the index aimed at
  // the source library). Moves are fine as-is — deque elements keep their
  // addresses across a move.
  CellLibrary(const CellLibrary& other);
  CellLibrary& operator=(const CellLibrary& other);
  CellLibrary(CellLibrary&&) = default;
  CellLibrary& operator=(CellLibrary&&) = default;

  const std::string& name() const { return name_; }
  const std::string& description() const { return description_; }
  void set_description(std::string d) { description_ = std::move(d); }

  /// Add a cell; throws Error on duplicate names.
  const Cell& add(Cell cell);

  /// Find by part name; nullptr when absent.
  const Cell* find(const std::string& name) const;

  /// All cells whose functional specification can implement `need`
  /// (see genus::spec_implements), in library insertion order. This is the
  /// paper's functional match: no DAG/subgraph isomorphism is involved.
  ///
  /// Implemented as a (kind, width) bucket lookup rather than a scan over
  /// every cell: spec_implements requires exact width equality and accepts
  /// only the need's own kind plus genus::promoting_kinds(need.kind), so
  /// at most a few buckets can contain candidates. Design-space expansion
  /// calls this once per specification node, which made the linear scan a
  /// measurable share of expansion time on large libraries.
  std::vector<const Cell*> matches(const genus::ComponentSpec& need) const;

  const std::deque<Cell>& all() const { return cells_; }
  int size() const { return static_cast<int>(cells_.size()); }

  /// Stable content fingerprint of the whole library: an order-independent
  /// combine over the per-cell fingerprints plus the cell count, maintained
  /// incrementally by add(). Two libraries with the same cells fingerprint
  /// identically regardless of declaration order, registration name, or how
  /// they were loaded (Liberty file vs in-memory construction); any cell
  /// add/remove/rename or timing-parameter edit changes the value. The
  /// library name and description are deliberately excluded: they never
  /// influence matching, evaluation, or emission. This is the identity the
  /// delta-aware caches and server sessions key on.
  std::uint64_t fingerprint() const;

 private:
  /// (insertion index, cell) pairs so multi-bucket results can be merged
  /// back into insertion order — alternative ordering downstream (impl
  /// indices, descriptions) depends on it.
  using Bucket = std::vector<std::pair<int, const Cell*>>;

  static long long bucket_key(genus::Kind kind, int width) {
    return (static_cast<long long>(kind) << 32) | static_cast<unsigned>(width);
  }

  std::string name_;
  std::string description_;
  // Order-independent fingerprint accumulators: commutative sum and xor of
  // the splitmix-finalized per-cell fingerprints (see fingerprint()).
  std::uint64_t fp_sum_ = 0;
  std::uint64_t fp_xor_ = 0;
  std::deque<Cell> cells_;  // deque: stable addresses
  std::unordered_map<long long, Bucket> by_kind_width_;
  std::unordered_map<std::string, const Cell*> by_name_;
};

/// The LSI Logic-style 1.5-micron macrocell data-book subset: exactly the
/// 30 cells the paper describes (§6): 2-to-1 / 4-to-1 / 8-to-1 multiplexers,
/// 1-, 2-, and 4-bit adders plus a 4-bit carry-look-ahead generator, a
/// 2-bit adder/subtractor, D flip-flops, 4- and 8-bit data registers, and
/// the SSI support gates. Performance values are plausible-era stand-ins
/// (the original data book is proprietary); DTAS behaviour depends only on
/// the functional specs and the relative area/delay tradeoffs.
const CellLibrary& lsi_library();

/// A second, TTL-era library (74xx-style MSI parts, including a 4-bit
/// 16-function ALU slice and look-ahead unit) used by the LOLA retargeting
/// experiments.
const CellLibrary& ttl_library();

}  // namespace bridge::cells
