// A TTL-era (74xx-style) MSI library used by the LOLA retargeting
// experiments: same representation, very different cell granularity —
// including a 4-bit 16-function ALU slice, which the LSI subset lacks.
//
// The T181 part is modeled after the 74181 ALU restricted to its
// *sliceable* operations (ADD, SUB, and the eight bitwise functions),
// i.e. the operations whose per-slice semantics compose exactly across a
// raw carry chain; see DESIGN.md (substitutions).
#include "cells/cell.h"
#include "cells/databook.h"

namespace bridge::cells {

namespace {

constexpr const char* kTtlDatabook = R"db(
LIBRARY TTL74 "TTL-era MSI parts (74xx-style, synthetic data-book values)"
CELL T04   KIND GATE WIDTH 1 SIZE 1 OPS ( LNOT ) AREA 0.7 DELAY 9   DESC "hex inverter slice"
CELL T00   KIND GATE WIDTH 1 SIZE 2 OPS ( NAND ) AREA 1   DELAY 10  DESC "quad 2-input NAND slice"
CELL T08   KIND GATE WIDTH 1 SIZE 2 OPS ( AND )  AREA 1.5 DELAY 12  DESC "quad 2-input AND slice"
CELL T32   KIND GATE WIDTH 1 SIZE 2 OPS ( OR )   AREA 1.5 DELAY 12  DESC "quad 2-input OR slice"
CELL T02   KIND GATE WIDTH 1 SIZE 2 OPS ( NOR )  AREA 1   DELAY 10  DESC "quad 2-input NOR slice"
CELL T86   KIND GATE WIDTH 1 SIZE 2 OPS ( XOR )  AREA 2.5 DELAY 14  DESC "quad 2-input XOR slice"
CELL T157  KIND MUX WIDTH 4 SIZE 2 OPS ( PASS )  AREA 9   DELAY 14  DESC "quad 2-to-1 multiplexer"
CELL T153  KIND MUX WIDTH 1 SIZE 4 OPS ( PASS )  AREA 5   DELAY 18  DESC "4-to-1 multiplexer"
CELL T151  KIND MUX WIDTH 1 SIZE 8 OPS ( PASS )  AREA 10  DELAY 20  DESC "8-to-1 multiplexer"
CELL T138  KIND DECODER WIDTH 3 SIZE 8 OPS ( DECODE ) EN AREA 11 DELAY 22 DESC "3-to-8 decoder"
CELL T283  KIND ADDER WIDTH 4 OPS ( ADD ) CI CO AREA 19 DELAY 24 DESC "4-bit binary full adder"
CELL T181  KIND ALU WIDTH 4 OPS ( ADD SUB AND OR NAND NOR XOR XNOR LNOT LIMPL ) CI CO AREA 62 DELAY 31 DESC "4-bit 10-function ALU slice (sliceable operations only)"
CELL T182  KIND CLA SIZE 4 AREA 12 DELAY 13 DESC "look-ahead carry generator"
CELL T85   KIND COMPARATOR WIDTH 4 OPS ( EQ LT GT ) AREA 16 DELAY 23 DESC "4-bit magnitude comparator"
CELL T74   KIND DFF WIDTH 1 OPS ( LOAD ) ASET ARST AREA 4 DELAY 25 DESC "D flip-flop with preset and clear"
CELL T173  KIND REGISTER WIDTH 4 OPS ( LOAD ) EN ARST AREA 17 DELAY 28 DESC "4-bit register with enable"
CELL T191  KIND COUNTER WIDTH 4 OPS ( LOAD COUNT_UP COUNT_DOWN ) STYLE SYNCHRONOUS EN AREA 30 DELAY 31 DESC "4-bit up/down counter"
CELL T125  KIND TRISTATE WIDTH 1 OPS ( PASS ) TS AREA 1.5 DELAY 13 DESC "tristate buffer"
)db";

}  // namespace

const CellLibrary& ttl_library() {
  static const CellLibrary lib = parse_databook(kTtlDatabook);
  return lib;
}

}  // namespace bridge::cells
