#include "cells/databook.h"

#include <cctype>
#include <sstream>

#include "base/diag.h"
#include "base/strutil.h"

namespace bridge::cells {

namespace {

/// Tokenize one logical line. Quoted strings become single tokens with the
/// quotes retained; parentheses are standalone tokens.
std::vector<std::string> tokenize_line(const std::string& line, int line_no) {
  // All character classification goes through unsigned char: plain char is
  // signed on this platform and negative values passed to <cctype> are UB.
  const auto is_space = [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  };
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (is_space(c)) {
      ++i;
      continue;
    }
    if (c == '#') break;  // comment to end of line
    if (c == '"') {
      size_t end = line.find('"', i + 1);
      if (end == std::string::npos) {
        throw ParseError("unterminated string", line_no,
                         static_cast<int>(i) + 1);
      }
      tokens.push_back(line.substr(i, end - i + 1));
      i = end + 1;
      continue;
    }
    if (c == '(' || c == ')') {
      tokens.push_back(std::string(1, c));
      ++i;
      continue;
    }
    size_t b = i;
    while (i < line.size() && !is_space(line[i]) && line[i] != '(' &&
           line[i] != ')' && line[i] != '"') {
      ++i;
    }
    tokens.push_back(line.substr(b, i - b));
  }
  return tokens;
}

std::string unquote(const std::string& tok) {
  if (tok.size() >= 2 && tok.front() == '"' && tok.back() == '"') {
    return tok.substr(1, tok.size() - 2);
  }
  return tok;
}

}  // namespace

CellLibrary parse_databook(const std::string& text) {
  CellLibrary lib;
  bool saw_library = false;
  std::string lib_name;
  std::string lib_desc;
  std::vector<Cell> pending;

  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = tokenize_line(line, line_no);
    if (tokens.empty()) continue;
    const std::string head = to_upper(tokens[0]);

    if (head == "LIBRARY") {
      if (tokens.size() < 2) {
        throw ParseError("LIBRARY needs a name", line_no, 1);
      }
      saw_library = true;
      lib_name = tokens[1];
      lib_desc = tokens.size() >= 3 ? unquote(tokens[2]) : "";
      continue;
    }

    if (head != "CELL") {
      throw ParseError("expected LIBRARY or CELL, got '" + tokens[0] + "'",
                       line_no, 1);
    }
    if (tokens.size() < 2) throw ParseError("CELL needs a name", line_no, 1);

    Cell cell;
    cell.name = tokens[1];
    bool saw_area = false;
    bool saw_delay = false;
    size_t i = 2;
    auto next_token = [&](const std::string& what) -> std::string {
      if (i >= tokens.size()) {
        throw ParseError("missing value after " + what, line_no, 1);
      }
      return tokens[i++];
    };
    while (i < tokens.size()) {
      const std::string attr = to_upper(tokens[i++]);
      if (attr == "KIND") {
        // kind_from_name / style_from_name throw plain Error (no
        // location); re-raise as ParseError so a garbage data book always
        // reports the offending line instead of a bare lookup failure.
        const std::string kind = next_token("KIND");
        try {
          cell.spec.kind = genus::kind_from_name(kind);
        } catch (const Error&) {
          throw ParseError("unknown component kind '" + kind + "'", line_no,
                           1);
        }
      } else if (attr == "WIDTH") {
        cell.spec.width =
            static_cast<int>(parse_double_token(next_token("WIDTH"), line_no));
      } else if (attr == "SIZE") {
        cell.spec.size =
            static_cast<int>(parse_double_token(next_token("SIZE"), line_no));
      } else if (attr == "OPS") {
        if (next_token("OPS") != "(") {
          throw ParseError("OPS expects a parenthesized list", line_no, 1);
        }
        genus::OpSet ops;
        bool closed = false;
        while (i < tokens.size()) {
          const std::string tok = tokens[i++];
          if (tok == ")") {
            closed = true;
            break;
          }
          try {
            ops.insert(genus::op_from_name(tok));
          } catch (const Error&) {
            throw ParseError("bad operation '" + tok + "' in OPS list",
                             line_no, 1);
          }
        }
        if (!closed) {
          throw ParseError("unterminated '(' group in OPS list of cell " +
                               cell.name,
                           line_no, 1);
        }
        cell.spec.ops = ops;
      } else if (attr == "STYLE") {
        const std::string style = next_token("STYLE");
        try {
          cell.spec.style = genus::style_from_name(style);
        } catch (const Error&) {
          throw ParseError("unknown style '" + style + "'", line_no, 1);
        }
      } else if (attr == "REP") {
        cell.spec.rep = to_upper(next_token("REP")) == "BCD"
                            ? genus::Representation::kBcd
                            : genus::Representation::kBinary;
      } else if (attr == "CI") {
        cell.spec.carry_in = true;
      } else if (attr == "CO") {
        cell.spec.carry_out = true;
      } else if (attr == "EN") {
        cell.spec.enable = true;
      } else if (attr == "ASET") {
        cell.spec.async_set = true;
      } else if (attr == "ARST") {
        cell.spec.async_reset = true;
      } else if (attr == "TS") {
        cell.spec.tristate = true;
      } else if (attr == "AREA") {
        cell.area = parse_double_token(next_token("AREA"), line_no);
        saw_area = true;
      } else if (attr == "DELAY") {
        cell.delay_ns = parse_double_token(next_token("DELAY"), line_no);
        saw_delay = true;
      } else if (attr == "DESC") {
        cell.description = unquote(next_token("DESC"));
      } else {
        throw ParseError("unknown cell attribute '" + attr + "'", line_no, 1);
      }
    }
    if (!saw_area || !saw_delay) {
      throw ParseError("cell " + cell.name + " needs AREA and DELAY", line_no,
                       1);
    }
    pending.push_back(std::move(cell));
  }

  if (!saw_library) {
    throw ParseError("data book must start with a LIBRARY line", 1, 1);
  }
  CellLibrary out(lib_name, lib_desc);
  for (Cell& c : pending) out.add(std::move(c));
  return out;
}

std::string emit_databook(const CellLibrary& lib) {
  std::ostringstream os;
  os << "LIBRARY " << lib.name() << " \"" << lib.description() << "\"\n";
  for (const Cell& c : lib.all()) {
    os << "CELL " << c.name << " KIND " << genus::kind_name(c.spec.kind)
       << " WIDTH " << c.spec.width;
    if (c.spec.size != 0) os << " SIZE " << c.spec.size;
    if (!c.spec.ops.empty()) os << " OPS ( " << c.spec.ops.to_string() << " )";
    if (c.spec.style != genus::Style::kAny) {
      os << " STYLE " << genus::style_name(c.spec.style);
    }
    if (c.spec.rep != genus::Representation::kBinary) {
      os << " REP " << genus::representation_name(c.spec.rep);
    }
    if (c.spec.carry_in) os << " CI";
    if (c.spec.carry_out) os << " CO";
    if (c.spec.enable) os << " EN";
    if (c.spec.async_set) os << " ASET";
    if (c.spec.async_reset) os << " ARST";
    if (c.spec.tristate) os << " TS";
    os << " AREA " << format_double(c.area) << " DELAY "
       << format_double(c.delay_ns);
    if (!c.description.empty()) os << " DESC \"" << c.description << "\"";
    os << "\n";
  }
  return os.str();
}

}  // namespace bridge::cells
