// Quine-McCluskey two-level logic minimization.
//
// The control compiler of Figure 1 "extracts the sequencing logic and
// applies logic-level optimizations"; this is the classical exact
// prime-implicant generation with an essential-then-greedy cover, adequate
// for controller-sized functions (<= ~16 inputs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bridge::ctrl {

/// A product term over n variables: for each bit position, if mask has a 1
/// the variable is a don't-care in this term; otherwise the literal value
/// comes from `value`.
struct Implicant {
  std::uint32_t value = 0;
  std::uint32_t mask = 0;

  bool covers(std::uint32_t minterm) const {
    return ((minterm ^ value) & ~mask) == 0;
  }
  /// Number of literals in the product term.
  int literals(int nvars) const;
  /// Render as e.g. "x3 & ~x1 & x0".
  std::string to_string(int nvars, const std::string& var_prefix = "x") const;

  bool operator==(const Implicant&) const = default;
};

/// Minimize a single-output function given its on-set and don't-care set
/// (both as minterm indices over `nvars` variables). Returns a minimal-ish
/// sum of products covering every on-set minterm (essential primes first,
/// then greedy covering). An empty result means the function is constant 0;
/// a single all-don't-care implicant means constant 1.
std::vector<Implicant> minimize(int nvars,
                                const std::vector<std::uint32_t>& on_set,
                                const std::vector<std::uint32_t>& dc_set);

/// Evaluate a sum of products.
bool eval_sop(const std::vector<Implicant>& sop, std::uint32_t input);

}  // namespace bridge::ctrl
