#include "ctrl/control_compiler.h"

#include <algorithm>

#include "base/diag.h"
#include "genus/spec.h"

namespace bridge::ctrl {

using genus::ComponentSpec;
using genus::Op;
using hls::StateRow;
using hls::StateTable;
using hls::Transition;
using netlist::Instance;
using netlist::Module;
using netlist::NetIndex;

namespace {

int clog2(int n) {
  int bits = 0;
  int cap = 1;
  while (cap < n) {
    cap <<= 1;
    ++bits;
  }
  return bits < 1 ? 1 : bits;
}

}  // namespace

ControllerResult compile_control(const StateTable& table) {
  BRIDGE_CHECK(!table.rows.empty(), "empty state table");
  const int nstates = table.state_count();
  const int sbits = clog2(nstates);
  const int nstatus = static_cast<int>(table.status_inputs.size());
  const int nvars = sbits + nstatus;
  BRIDGE_CHECK(nvars <= 20, "controller input space too large for QM");

  ControllerResult result;
  result.design = netlist::Design("controller");
  result.state_bits = sbits;

  // Encode states; the initial state must be code 0 (ARST target).
  std::vector<const StateRow*> ordered;
  for (const StateRow& r : table.rows) {
    if (r.name == table.initial) ordered.insert(ordered.begin(), &r);
    else ordered.push_back(&r);
  }
  for (size_t i = 0; i < ordered.size(); ++i) {
    result.state_codes[ordered[i]->name] =
        static_cast<std::uint32_t>(i);
  }

  // Input variable order: status inputs in bits [0, nstatus), state bits
  // in [nstatus, nstatus+sbits).
  auto input_of = [&](std::uint32_t state_code, std::uint32_t status) {
    return status | (state_code << nstatus);
  };

  // Output functions: next-state bits, then every control signal bit.
  struct OutputFn {
    std::string port;   // controller output port (or "" for next-state)
    int port_bit = 0;
    std::vector<std::uint32_t> on_set;
  };
  std::vector<OutputFn> functions;
  for (int b = 0; b < sbits; ++b) {
    functions.push_back(OutputFn{"", b, {}});
  }
  for (const auto& [signal, width] : table.control_signals) {
    for (int b = 0; b < width; ++b) {
      functions.push_back(OutputFn{signal, b, {}});
    }
  }

  // Enumerate the reachable input space.
  std::vector<std::uint32_t> dc_set;  // unused state codes: don't care
  for (std::uint32_t code = nstates; code < (1u << sbits); ++code) {
    for (std::uint32_t status = 0; status < (1u << nstatus); ++status) {
      dc_set.push_back(input_of(code, status));
    }
  }
  int minterms = 0;
  for (const StateRow* row : ordered) {
    const std::uint32_t code = result.state_codes.at(row->name);
    for (std::uint32_t status = 0; status < (1u << nstatus); ++status) {
      const std::uint32_t input = input_of(code, status);
      ++minterms;
      // Next state: first matching transition.
      std::string next;
      for (const Transition& t : row->transitions) {
        if (t.status.empty()) {
          next = t.next;
          break;
        }
        auto it = std::find(table.status_inputs.begin(),
                            table.status_inputs.end(), t.status);
        BRIDGE_CHECK(it != table.status_inputs.end(),
                     "unknown status '" << t.status << "'");
        const int bit = static_cast<int>(it - table.status_inputs.begin());
        const bool v = ((status >> bit) & 1) != 0;
        if (v != t.negate) {
          next = t.next;
          break;
        }
      }
      BRIDGE_CHECK(!next.empty(),
                   "state " << row->name << " has no default transition");
      const std::uint32_t next_code = result.state_codes.at(next);
      for (int b = 0; b < sbits; ++b) {
        if ((next_code >> b) & 1) functions[b].on_set.push_back(input);
      }
      // Moore control outputs.
      int fn = sbits;
      for (const auto& [signal, width] : table.control_signals) {
        auto it = row->asserts.find(signal);
        const std::uint64_t value = it == row->asserts.end() ? 0 : it->second;
        for (int b = 0; b < width; ++b, ++fn) {
          if ((value >> b) & 1) functions[fn].on_set.push_back(input);
        }
      }
    }
  }
  result.minterm_count = minterms;

  // Minimize every output.
  std::vector<std::vector<Implicant>> sops;
  sops.reserve(functions.size());
  for (const OutputFn& fn : functions) {
    sops.push_back(minimize(nvars, fn.on_set, dc_set));
    result.implicant_count += static_cast<int>(sops.back().size());
    for (const Implicant& imp : sops.back()) {
      result.literal_count += imp.literals(nvars);
    }
  }

  // --- build the controller netlist -------------------------------------
  Module& m = result.design.add_module("controller");
  result.design.set_top(&m);
  const NetIndex clk = m.add_port("CLK", genus::PortDir::kIn, 1);
  const NetIndex arst = m.add_port("ARST", genus::PortDir::kIn, 1);
  std::vector<NetIndex> status_nets;
  for (const std::string& s : table.status_inputs) {
    status_nets.push_back(m.add_port(s, genus::PortDir::kIn, 1));
  }
  std::map<std::string, NetIndex> out_ports;
  for (const auto& [signal, width] : table.control_signals) {
    out_ports[signal] = m.add_port(signal, genus::PortDir::kOut, width);
  }

  // State register and its D input.
  const NetIndex state_q = m.add_net("state_q", sbits);
  const NetIndex state_d = m.add_net("state_d", sbits);
  ComponentSpec reg = genus::make_register_spec(sbits, false, true);
  Instance& sreg = m.add_spec_instance("state_reg", reg);
  m.connect(sreg, "D", state_d);
  m.connect(sreg, "CLK", clk);
  m.connect(sreg, "ARST", arst);
  m.connect(sreg, "Q", state_q);

  // Input literals: (net, bit) for each variable and its complement.
  int fresh = 0;
  auto var_pick = [&](int v) -> std::pair<NetIndex, int> {
    if (v < nstatus) return {status_nets[v], 0};
    return {state_q, v - nstatus};
  };
  std::map<int, NetIndex> inverted;
  auto inv_pick = [&](int v) -> std::pair<NetIndex, int> {
    auto it = inverted.find(v);
    if (it == inverted.end()) {
      auto [net, bit] = var_pick(v);
      Instance& g = m.add_spec_instance(
          "inv" + std::to_string(fresh++), genus::make_gate_spec(Op::kLnot, 1));
      m.connect(g, "I0", net, bit);
      NetIndex out = m.add_net("nv" + std::to_string(v), 1);
      m.connect(g, "OUT", out);
      it = inverted.emplace(v, out).first;
    }
    return {it->second, 0};
  };
  auto build_sop = [&](const std::vector<Implicant>& sop, NetIndex dst,
                       int dst_bit) {
    auto drive_const = [&](bool v) {
      Instance& g = m.add_spec_instance(
          "k" + std::to_string(fresh++), genus::make_gate_spec(Op::kBuf, 1));
      m.connect_const(g, "I0", v ? 1 : 0);
      m.connect(g, "OUT", dst, dst_bit);
    };
    if (sop.empty()) {
      drive_const(false);
      return;
    }
    std::vector<std::pair<NetIndex, int>> products;
    for (const Implicant& imp : sop) {
      std::vector<std::pair<NetIndex, int>> picks;
      for (int v = 0; v < nvars; ++v) {
        if ((imp.mask >> v) & 1) continue;
        picks.push_back(((imp.value >> v) & 1) ? var_pick(v) : inv_pick(v));
      }
      if (picks.empty()) {
        drive_const(true);  // constant-1 implicant dominates
        return;
      }
      if (picks.size() == 1) {
        products.push_back(picks[0]);
        continue;
      }
      Instance& g = m.add_spec_instance(
          "and" + std::to_string(fresh++),
          genus::make_gate_spec(Op::kAnd, 1,
                                static_cast<int>(picks.size())));
      for (size_t i = 0; i < picks.size(); ++i) {
        m.connect(g, "I" + std::to_string(i), picks[i].first,
                  picks[i].second);
      }
      NetIndex out = m.add_net("p" + std::to_string(fresh++), 1);
      m.connect(g, "OUT", out);
      products.emplace_back(out, 0);
    }
    if (products.size() == 1) {
      Instance& g = m.add_spec_instance(
          "b" + std::to_string(fresh++), genus::make_gate_spec(Op::kBuf, 1));
      m.connect(g, "I0", products[0].first, products[0].second);
      m.connect(g, "OUT", dst, dst_bit);
      return;
    }
    Instance& g = m.add_spec_instance(
        "or" + std::to_string(fresh++),
        genus::make_gate_spec(Op::kOr, 1,
                              static_cast<int>(products.size())));
    for (size_t i = 0; i < products.size(); ++i) {
      m.connect(g, "I" + std::to_string(i), products[i].first,
                products[i].second);
    }
    m.connect(g, "OUT", dst, dst_bit);
  };

  for (size_t fn = 0; fn < functions.size(); ++fn) {
    if (functions[fn].port.empty()) {
      build_sop(sops[fn], state_d, functions[fn].port_bit);
    } else {
      build_sop(sops[fn], out_ports.at(functions[fn].port),
                functions[fn].port_bit);
    }
  }
  return result;
}

}  // namespace bridge::ctrl
