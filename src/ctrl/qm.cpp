#include "ctrl/qm.h"

#include <algorithm>
#include <map>
#include <set>

#include "base/diag.h"

namespace bridge::ctrl {

int Implicant::literals(int nvars) const {
  int n = 0;
  for (int b = 0; b < nvars; ++b) {
    if (((mask >> b) & 1) == 0) ++n;
  }
  return n;
}

std::string Implicant::to_string(int nvars,
                                 const std::string& var_prefix) const {
  std::string out;
  for (int b = nvars - 1; b >= 0; --b) {
    if ((mask >> b) & 1) continue;
    if (!out.empty()) out += " & ";
    if (((value >> b) & 1) == 0) out += "~";
    out += var_prefix + std::to_string(b);
  }
  return out.empty() ? "1" : out;
}

std::vector<Implicant> minimize(int nvars,
                                const std::vector<std::uint32_t>& on_set,
                                const std::vector<std::uint32_t>& dc_set) {
  BRIDGE_CHECK(nvars >= 0 && nvars <= 20, "QM limited to 20 variables");
  if (on_set.empty()) return {};

  // Level 0: all on-set and don't-care minterms as implicants.
  std::set<std::pair<std::uint32_t, std::uint32_t>> current;
  for (std::uint32_t m : on_set) current.insert({m, 0});
  for (std::uint32_t m : dc_set) current.insert({m, 0});

  std::vector<Implicant> primes;
  while (!current.empty()) {
    std::set<std::pair<std::uint32_t, std::uint32_t>> next;
    std::map<std::pair<std::uint32_t, std::uint32_t>, bool> combined;
    for (const auto& ip : current) combined[ip] = false;

    std::vector<std::pair<std::uint32_t, std::uint32_t>> list(current.begin(),
                                                              current.end());
    for (size_t i = 0; i < list.size(); ++i) {
      for (size_t j = i + 1; j < list.size(); ++j) {
        if (list[i].second != list[j].second) continue;
        std::uint32_t diff = list[i].first ^ list[j].first;
        // Combine when they differ in exactly one non-masked bit.
        if (diff == 0 || (diff & (diff - 1)) != 0) continue;
        next.insert({list[i].first & ~diff, list[i].second | diff});
        combined[list[i]] = true;
        combined[list[j]] = true;
      }
    }
    for (const auto& [ip, was_combined] : combined) {
      if (!was_combined) primes.push_back(Implicant{ip.first, ip.second});
    }
    current = std::move(next);
  }

  // Cover the on-set: essential primes first, then greedy.
  std::vector<std::uint32_t> remaining = on_set;
  std::sort(remaining.begin(), remaining.end());
  remaining.erase(std::unique(remaining.begin(), remaining.end()),
                  remaining.end());
  std::vector<Implicant> chosen;
  auto remove_covered = [&remaining](const Implicant& imp) {
    remaining.erase(std::remove_if(remaining.begin(), remaining.end(),
                                   [&imp](std::uint32_t m) {
                                     return imp.covers(m);
                                   }),
                    remaining.end());
  };

  // Essential primes: minterms covered by exactly one prime.
  for (std::uint32_t m : std::vector<std::uint32_t>(remaining)) {
    const Implicant* only = nullptr;
    int count = 0;
    for (const Implicant& p : primes) {
      if (p.covers(m)) {
        ++count;
        only = &p;
      }
    }
    BRIDGE_CHECK(count > 0, "QM lost a minterm");
    if (count == 1 &&
        std::find(chosen.begin(), chosen.end(), *only) == chosen.end()) {
      chosen.push_back(*only);
    }
  }
  for (const Implicant& p : chosen) remove_covered(p);

  // Greedy: repeatedly take the prime covering the most remaining.
  while (!remaining.empty()) {
    const Implicant* best = nullptr;
    int best_cover = 0;
    for (const Implicant& p : primes) {
      if (std::find(chosen.begin(), chosen.end(), p) != chosen.end()) {
        continue;
      }
      int cover = 0;
      for (std::uint32_t m : remaining) {
        if (p.covers(m)) ++cover;
      }
      // Prefer wider coverage; break ties toward fewer literals.
      if (cover > best_cover ||
          (cover == best_cover && cover > 0 && best != nullptr &&
           p.literals(nvars) < best->literals(nvars))) {
        best = &p;
        best_cover = cover;
      }
    }
    BRIDGE_CHECK(best != nullptr, "QM cover failed");
    chosen.push_back(*best);
    remove_covered(*best);
  }
  return chosen;
}

bool eval_sop(const std::vector<Implicant>& sop, std::uint32_t input) {
  for (const Implicant& imp : sop) {
    if (imp.covers(input)) return true;
  }
  return false;
}

}  // namespace bridge::ctrl
