// The control compiler of Figure 1: "The state sequencing table is
// accepted by a control compiler that extracts the sequencing logic and
// applies logic-level optimizations and technology mapping techniques."
//
// compile_control() encodes the states in binary, derives the next-state
// and control-output functions over (state bits, status inputs), minimizes
// each with Quine-McCluskey (unused state codes as don't-cares), and emits
// a gate-level controller netlist: shared input inverters, one AND per
// implicant, one OR per output, plus the state register. The result is a
// netlist of GENUS gate/register specifications, so DTAS's technology
// mapper binds it to library cells like any other netlist.
#pragma once

#include <map>
#include <string>

#include "ctrl/qm.h"
#include "hls/statetable.h"
#include "netlist/netlist.h"

namespace bridge::ctrl {

struct ControllerResult {
  netlist::Design design;  // top() is the controller module
  int state_bits = 0;
  std::map<std::string, std::uint32_t> state_codes;
  int implicant_count = 0;  // after minimization
  int literal_count = 0;
  int minterm_count = 0;    // before minimization (raw on-set size)
};

/// Compile a state table into a gate-level controller.
///
/// Controller ports: CLK, ARST (resets to the initial state, which is
/// always encoded 0), the table's status inputs, and one output port per
/// control signal. Transitions are Mealy on status inputs; control outputs
/// are Moore (state-only).
ControllerResult compile_control(const hls::StateTable& table);

}  // namespace bridge::ctrl
