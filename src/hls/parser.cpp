// Recursive-descent parser for the behavioral language.
#include <cctype>

#include "base/diag.h"
#include "base/strutil.h"
#include "hls/ast.h"

namespace bridge::hls {

namespace {

struct Token {
  enum class Kind {
    kIdent,
    kNumber,
    kPunct,  // one of ; : = ( ) { } and multi-char operators
    kEnd,
  };
  Kind kind = Kind::kEnd;
  std::string text;
  std::uint64_t value = 0;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

 private:
  void advance() {
    skip_ws_and_comments();
    current_ = Token{};
    current_.line = line_;
    if (pos_ >= text_.size()) return;
    char c = text_[pos_];
    if (std::isalpha(uc(c)) || c == '_') {
      size_t b = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(uc(text_[pos_])) || text_[pos_] == '_')) {
        ++pos_;
      }
      current_.kind = Token::Kind::kIdent;
      current_.text = text_.substr(b, pos_ - b);
      return;
    }
    if (std::isdigit(uc(c))) {
      std::uint64_t v = 0;
      if (c == '0' && pos_ + 1 < text_.size() &&
          (text_[pos_ + 1] == 'x' || text_[pos_ + 1] == 'X')) {
        pos_ += 2;
        while (pos_ < text_.size() && std::isxdigit(uc(text_[pos_]))) {
          char d = text_[pos_++];
          v = v * 16 + (std::isdigit(uc(d)) ? d - '0'
                                            : std::tolower(uc(d)) - 'a' + 10);
        }
      } else {
        while (pos_ < text_.size() && std::isdigit(uc(text_[pos_]))) {
          v = v * 10 + (text_[pos_++] - '0');
        }
      }
      current_.kind = Token::Kind::kNumber;
      current_.value = v;
      return;
    }
    // Multi-character operators first.
    for (const char* op : {"==", "!=", "<=", ">=", "<<", ">>"}) {
      if (text_.compare(pos_, 2, op) == 0) {
        current_.kind = Token::Kind::kPunct;
        current_.text = op;
        pos_ += 2;
        return;
      }
    }
    current_.kind = Token::Kind::kPunct;
    current_.text = std::string(1, c);
    ++pos_;
  }

  void skip_ws_and_comments() {
    for (;;) {
      while (pos_ < text_.size() && std::isspace(uc(text_[pos_]))) {
        if (text_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ + 1 < text_.size() && text_[pos_] == '/' &&
          text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  static int uc(char c) { return static_cast<unsigned char>(c); }

  const std::string& text_;
  size_t pos_ = 0;
  int line_ = 1;
  Token current_;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : lex_(text) {}

  BehavioralDesign parse() {
    BehavioralDesign d;
    expect_ident("design");
    d.name = expect_name();
    expect_punct(";");
    for (;;) {
      const Token& t = lex_.peek();
      if (t.kind != Token::Kind::kIdent) break;
      if (t.text == "input") {
        lex_.take();
        d.inputs.push_back(decl());
      } else if (t.text == "output") {
        lex_.take();
        d.outputs.push_back(decl());
      } else if (t.text == "var") {
        lex_.take();
        d.vars.push_back(decl());
      } else {
        break;
      }
    }
    expect_ident("begin");
    while (!(lex_.peek().kind == Token::Kind::kIdent &&
             lex_.peek().text == "end")) {
      d.body.push_back(statement());
    }
    lex_.take();  // end
    return d;
  }

 private:
  VarDecl decl() {
    VarDecl v;
    v.name = expect_name();
    expect_punct(":");
    const Token t = lex_.take();
    if (t.kind != Token::Kind::kNumber || t.value < 1 || t.value > 512) {
      throw ParseError("expected a width (1..512)", t.line, 1);
    }
    v.width = static_cast<int>(t.value);
    expect_punct(";");
    return v;
  }

  StmtPtr statement() {
    const Token& t = lex_.peek();
    if (t.kind == Token::Kind::kIdent && t.text == "if") {
      lex_.take();
      auto s = std::make_unique<Stmt>();
      s->kind = Stmt::Kind::kIf;
      expect_punct("(");
      s->condition = expression();
      expect_punct(")");
      s->then_body = block();
      if (lex_.peek().kind == Token::Kind::kIdent &&
          lex_.peek().text == "else") {
        lex_.take();
        s->else_body = block();
      }
      return s;
    }
    if (t.kind == Token::Kind::kIdent && t.text == "while") {
      lex_.take();
      auto s = std::make_unique<Stmt>();
      s->kind = Stmt::Kind::kWhile;
      expect_punct("(");
      s->condition = expression();
      expect_punct(")");
      s->then_body = block();
      return s;
    }
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::kAssign;
    s->target = expect_name();
    expect_punct("=");
    s->value = expression();
    expect_punct(";");
    return s;
  }

  std::vector<StmtPtr> block() {
    std::vector<StmtPtr> out;
    expect_punct("{");
    while (!(lex_.peek().kind == Token::Kind::kPunct &&
             lex_.peek().text == "}")) {
      out.push_back(statement());
    }
    lex_.take();
    return out;
  }

  // expression := comparison; comparison := sum ((==|!=|<|>|<=|>=) sum)?
  // sum := term ((+|-||||^) term)*; term := shift; shift := unary ((<<|>>) unary)*
  ExprPtr expression() { return comparison(); }

  ExprPtr comparison() {
    ExprPtr lhs = sum();
    const Token& t = lex_.peek();
    if (t.kind == Token::Kind::kPunct) {
      BinOp op;
      if (t.text == "==") {
        op = BinOp::kEq;
      } else if (t.text == "!=") {
        op = BinOp::kNe;
      } else if (t.text == "<") {
        op = BinOp::kLt;
      } else if (t.text == ">") {
        op = BinOp::kGt;
      } else if (t.text == "<=") {
        op = BinOp::kLe;
      } else if (t.text == ">=") {
        op = BinOp::kGe;
      } else {
        return lhs;
      }
      lex_.take();
      return make_binary(op, std::move(lhs), sum());
    }
    return lhs;
  }

  ExprPtr sum() {
    ExprPtr lhs = shift();
    for (;;) {
      const Token& t = lex_.peek();
      if (t.kind != Token::Kind::kPunct) return lhs;
      BinOp op;
      if (t.text == "+") {
        op = BinOp::kAdd;
      } else if (t.text == "-") {
        op = BinOp::kSub;
      } else if (t.text == "&") {
        op = BinOp::kAnd;
      } else if (t.text == "|") {
        op = BinOp::kOr;
      } else if (t.text == "^") {
        op = BinOp::kXor;
      } else {
        return lhs;
      }
      lex_.take();
      lhs = make_binary(op, std::move(lhs), shift());
    }
  }

  ExprPtr shift() {
    ExprPtr lhs = unary();
    for (;;) {
      const Token& t = lex_.peek();
      if (t.kind != Token::Kind::kPunct) return lhs;
      BinOp op;
      if (t.text == "<<") {
        op = BinOp::kShl;
      } else if (t.text == ">>") {
        op = BinOp::kShr;
      } else {
        return lhs;
      }
      lex_.take();
      lhs = make_binary(op, std::move(lhs), unary());
    }
  }

  ExprPtr unary() {
    const Token& t = lex_.peek();
    if (t.kind == Token::Kind::kPunct && t.text == "~") {
      lex_.take();
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kUnary;
      e->un = UnOp::kNot;
      e->lhs = unary();
      return e;
    }
    return primary();
  }

  ExprPtr primary() {
    Token t = lex_.take();
    if (t.kind == Token::Kind::kPunct && t.text == "(") {
      ExprPtr e = expression();
      expect_punct(")");
      return e;
    }
    if (t.kind == Token::Kind::kNumber) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kConst;
      e->value = t.value;
      return e;
    }
    if (t.kind == Token::Kind::kIdent) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kVar;
      e->var = t.text;
      return e;
    }
    throw ParseError("expected an expression, got '" + t.text + "'", t.line,
                     1);
  }

  static ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kBinary;
    e->bin = op;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    return e;
  }

  std::string expect_name() {
    Token t = lex_.take();
    if (t.kind != Token::Kind::kIdent) {
      throw ParseError("expected an identifier, got '" + t.text + "'", t.line,
                       1);
    }
    return t.text;
  }

  void expect_ident(const std::string& word) {
    Token t = lex_.take();
    if (t.kind != Token::Kind::kIdent || t.text != word) {
      throw ParseError("expected '" + word + "', got '" + t.text + "'",
                       t.line, 1);
    }
  }

  void expect_punct(const std::string& p) {
    Token t = lex_.take();
    if (t.kind != Token::Kind::kPunct || t.text != p) {
      throw ParseError("expected '" + p + "', got '" + t.text + "'", t.line,
                       1);
    }
  }

  Lexer lex_;
};

}  // namespace

BehavioralDesign parse_behavior(const std::string& text) {
  return Parser(text).parse();
}

bool binop_is_compare(BinOp op) {
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kGt:
    case BinOp::kLe:
    case BinOp::kGe:
      return true;
    default:
      return false;
  }
}

std::string binop_name(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kAnd:
      return "&";
    case BinOp::kOr:
      return "|";
    case BinOp::kXor:
      return "^";
    case BinOp::kShl:
      return "<<";
    case BinOp::kShr:
      return ">>";
    case BinOp::kEq:
      return "==";
    case BinOp::kNe:
      return "!=";
    case BinOp::kLt:
      return "<";
    case BinOp::kGt:
      return ">";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGe:
      return ">=";
  }
  throw Error("bad BinOp");
}

}  // namespace bridge::hls
