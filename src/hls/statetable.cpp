#include "hls/statetable.h"

#include <sstream>

#include "base/diag.h"

namespace bridge::hls {

const StateRow& StateTable::row(const std::string& name) const {
  for (const StateRow& r : rows) {
    if (r.name == name) return r;
  }
  throw Error("state table has no state '" + name + "'");
}

std::string StateTable::emit_bif() const {
  std::ostringstream os;
  os << "-- state sequencing table (control-based BIF style)\n";
  os << "SIGNALS:";
  for (const auto& [name, width] : control_signals) {
    os << " " << name << "[" << width << "]";
  }
  os << "\nSTATUS:";
  for (const auto& s : status_inputs) os << " " << s;
  os << "\nINITIAL: " << initial << "\n\n";
  for (const StateRow& r : rows) {
    os << "STATE " << r.name << ":\n";
    for (const auto& [signal, value] : r.asserts) {
      os << "  assert " << signal << " = " << value << "\n";
    }
    for (const Transition& t : r.transitions) {
      if (t.status.empty()) {
        os << "  goto " << t.next << "\n";
      } else {
        os << "  if " << (t.negate ? "not " : "") << t.status << " goto "
           << t.next << "\n";
      }
    }
  }
  return os.str();
}

}  // namespace bridge::hls
