// Behavioral input language for the high-level synthesis front end.
//
// Figure 1's flow starts from "an abstract behavioral language"; this is a
// small imperative one, sufficient for the data-dominated loops the paper's
// introduction motivates:
//
//   design gcd;
//   input a : 8;
//   input b : 8;
//   output r : 8;
//   var x : 8;
//   var y : 8;
//   begin
//     x = a;
//     y = b;
//     while (x != y) {
//       if (x > y) { x = x - y; } else { y = y - x; }
//     }
//     r = x;
//   end
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace bridge::hls {

enum class BinOp {
  kAdd,
  kSub,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,
  kEq,
  kNe,
  kLt,
  kGt,
  kLe,
  kGe,
};

enum class UnOp { kNot };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind { kVar, kConst, kBinary, kUnary };
  Kind kind = Kind::kConst;
  std::string var;            // kVar
  std::uint64_t value = 0;    // kConst
  BinOp bin = BinOp::kAdd;    // kBinary
  UnOp un = UnOp::kNot;       // kUnary
  ExprPtr lhs;
  ExprPtr rhs;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind { kAssign, kIf, kWhile };
  Kind kind = Kind::kAssign;
  std::string target;          // kAssign
  ExprPtr value;               // kAssign
  ExprPtr condition;           // kIf / kWhile
  std::vector<StmtPtr> then_body;
  std::vector<StmtPtr> else_body;  // kIf only
};

struct VarDecl {
  std::string name;
  int width = 8;
};

struct BehavioralDesign {
  std::string name;
  std::vector<VarDecl> inputs;
  std::vector<VarDecl> outputs;
  std::vector<VarDecl> vars;
  std::vector<StmtPtr> body;
};

/// Parse the behavioral language. Throws ParseError on malformed input.
BehavioralDesign parse_behavior(const std::string& text);

/// True if the operator produces a 1-bit predicate.
bool binop_is_compare(BinOp op);

std::string binop_name(BinOp op);

}  // namespace bridge::hls
