// High-level synthesis: behavioral design -> FSMD (GENUS datapath netlist
// plus state sequencing table), following Figure 1's phases:
//
//   state scheduling      — statements are flattened to three-address
//                           micro-operations and scheduled one ALU
//                           operation per state (single shared ALU);
//   component allocation  — one shared ALU, one shifter when needed,
//                           one register per variable/temporary;
//   component binding     — micro-operations bind to the shared units;
//   connectivity binding  — operand multiplexers are sized from the set
//                           of sources actually routed to each unit input.
//
// Restrictions of this front end (documented for users): all declared
// widths must match; comparison results may only be used in conditions;
// shift amounts must be small constants.
#pragma once

#include <map>
#include <string>

#include "base/bitvec.h"
#include "hls/ast.h"
#include "hls/statetable.h"
#include "netlist/netlist.h"

namespace bridge::hls {

/// The synthesized machine: a datapath netlist of GENUS component
/// specifications and the state table that drives it.
struct Fsmd {
  std::string name;
  netlist::Design design;      // datapath module is design.top()
  StateTable control;
  int data_width = 0;
  /// Registers by name (variables, temporaries, outputs).
  std::vector<std::string> registers;
};

/// Run Figure 1's high-level synthesis phases on a behavioral design.
Fsmd synthesize_behavior(const BehavioralDesign& design);

/// Co-simulate the FSMD: the datapath netlist runs in the bit-true
/// simulator while the state table is interpreted as the controller.
/// Returns the data outputs after reaching the halt state (or after
/// `max_cycles`, whichever is first) plus the cycle count.
struct FsmdRun {
  std::map<std::string, BitVec> outputs;
  int cycles = 0;
  bool halted = false;
};
FsmdRun run_fsmd(const Fsmd& fsmd,
                 const std::map<std::string, BitVec>& inputs,
                 int max_cycles = 10000);

}  // namespace bridge::hls
