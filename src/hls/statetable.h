// State sequencing tables.
//
// "The output of high-level synthesis is ... a state sequencing table and
// a netlist of GENUS components" (paper §3); the table is "in
// control-based BIF [DuHG90] that controls these GENUS components and that
// sequences the design" (§7). A StateTable lists the control-signal
// assertions and the (possibly status-dependent) successor of every state.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bridge::hls {

/// One conditional successor: taken when `status` (a 1-bit datapath status
/// output) is 1 (or 0 when negate). An empty status is the default edge.
struct Transition {
  std::string status;
  bool negate = false;
  std::string next;
};

struct StateRow {
  std::string name;
  /// Control-signal values asserted in this state; unlisted signals are 0.
  std::map<std::string, std::uint64_t> asserts;
  /// Evaluated in order; the first match wins. The last entry must be the
  /// default (empty status).
  std::vector<Transition> transitions;
};

class StateTable {
 public:
  std::vector<std::pair<std::string, int>> control_signals;  // name, width
  std::vector<std::string> status_inputs;
  std::vector<StateRow> rows;
  std::string initial;

  const StateRow& row(const std::string& name) const;
  int state_count() const { return static_cast<int>(rows.size()); }

  /// Emit the table in a BIF-like textual form.
  std::string emit_bif() const;
};

}  // namespace bridge::hls
