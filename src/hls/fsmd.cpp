#include "hls/fsmd.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "base/diag.h"
#include "genus/spec.h"
#include "sim/simulator.h"

namespace bridge::hls {

using genus::ComponentSpec;
using genus::Op;
using genus::OpSet;
using netlist::Instance;
using netlist::Module;
using netlist::NetIndex;

namespace {

int clog2(int n) {
  int bits = 0;
  int cap = 1;
  while (cap < n) {
    cap <<= 1;
    ++bits;
  }
  return bits < 1 ? 1 : bits;
}

/// A micro-operation operand: a register/input name or a constant.
struct Operand {
  bool is_const = false;
  std::uint64_t value = 0;
  std::string name;

  std::string key() const {
    return is_const ? "#" + std::to_string(value) : name;
  }
};

enum class MKind { kAssign, kBranch, kGoto, kHalt };

struct MicroOp {
  MKind kind = MKind::kAssign;
  std::vector<std::string> labels;  // labels attached to this op
  // kAssign
  std::string target;
  bool use_shifter = false;
  Op op = Op::kOr;
  Operand a;
  Operand b;
  // kBranch: taken to `if_false` when the comparison is false
  BinOp cmp = BinOp::kEq;
  std::string if_false;
  // kGoto
  std::string go;
};

/// Flattens statements into micro-operations (the scheduling input).
class Flattener {
 public:
  Flattener(const BehavioralDesign& design, int width)
      : design_(design), width_(width) {
    for (const auto& v : design.inputs) inputs_.insert(v.name);
    for (const auto& v : design.outputs) registers_.insert(v.name);
    for (const auto& v : design.vars) registers_.insert(v.name);
  }

  std::vector<MicroOp> run() {
    for (const auto& s : design_.body) statement(*s);
    MicroOp halt;
    halt.kind = MKind::kHalt;
    attach_labels(halt);
    ops_.push_back(std::move(halt));
    return std::move(ops_);
  }

  const std::set<std::string>& registers() const { return registers_; }

 private:
  void statement(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::kAssign:
        assign(s.target, *s.value);
        break;
      case Stmt::Kind::kIf: {
        const std::string else_l = fresh_label("else");
        const std::string end_l = fresh_label("endif");
        branch_if_false(*s.condition, s.else_body.empty() ? end_l : else_l);
        for (const auto& t : s.then_body) statement(*t);
        if (!s.else_body.empty()) {
          emit_goto(end_l);
          pending_labels_.push_back(else_l);
          for (const auto& t : s.else_body) statement(*t);
        }
        pending_labels_.push_back(end_l);
        break;
      }
      case Stmt::Kind::kWhile: {
        const std::string loop_l = fresh_label("loop");
        const std::string end_l = fresh_label("endloop");
        pending_labels_.push_back(loop_l);
        branch_if_false(*s.condition, end_l);
        for (const auto& t : s.then_body) statement(*t);
        emit_goto(loop_l);
        pending_labels_.push_back(end_l);
        break;
      }
    }
  }

  void assign(const std::string& target, const Expr& e) {
    if (registers_.count(target) == 0) {
      throw Error("assignment to undeclared variable '" + target + "'");
    }
    if (e.kind == Expr::Kind::kBinary &&
        (e.bin == BinOp::kShl || e.bin == BinOp::kShr)) {
      if (e.rhs->kind != Expr::Kind::kConst || e.rhs->value > 8) {
        throw Error("shift amounts must be constants <= 8");
      }
      Operand src = operand(*e.lhs);
      const Op shift_op = e.bin == BinOp::kShl ? Op::kShl : Op::kShr;
      for (std::uint64_t i = 0; i < std::max<std::uint64_t>(e.rhs->value, 1);
           ++i) {
        MicroOp m;
        m.kind = MKind::kAssign;
        m.target = target;
        m.use_shifter = e.rhs->value != 0;
        m.op = e.rhs->value == 0 ? Op::kOr : shift_op;
        m.a = i == 0 ? src : Operand{false, 0, target};
        m.b = Operand{true, 0, ""};
        attach_labels(m);
        ops_.push_back(std::move(m));
      }
      return;
    }
    if (e.kind == Expr::Kind::kBinary && binop_is_compare(e.bin)) {
      throw Error(
          "comparison results may only be used in if/while conditions");
    }
    MicroOp m;
    m.kind = MKind::kAssign;
    m.target = target;
    switch (e.kind) {
      case Expr::Kind::kVar:
      case Expr::Kind::kConst:
        m.op = Op::kOr;  // move: x | 0
        m.a = operand(e);
        m.b = Operand{true, 0, ""};
        break;
      case Expr::Kind::kUnary:
        m.op = Op::kLnot;
        m.a = operand(*e.lhs);
        m.b = Operand{true, 0, ""};
        break;
      case Expr::Kind::kBinary: {
        m.op = map_binop(e.bin);
        m.a = operand(*e.lhs);
        m.b = operand(*e.rhs);
        break;
      }
    }
    attach_labels(m);
    ops_.push_back(std::move(m));
  }

  void branch_if_false(const Expr& cond, const std::string& if_false) {
    MicroOp m;
    m.kind = MKind::kBranch;
    m.if_false = if_false;
    if (cond.kind == Expr::Kind::kBinary && binop_is_compare(cond.bin)) {
      m.cmp = cond.bin;
      m.a = operand(*cond.lhs);
      m.b = operand(*cond.rhs);
    } else {
      m.cmp = BinOp::kNe;  // truthiness: cond != 0
      m.a = operand(cond);
      m.b = Operand{true, 0, ""};
    }
    attach_labels(m);
    ops_.push_back(std::move(m));
  }

  void emit_goto(const std::string& label) {
    MicroOp m;
    m.kind = MKind::kGoto;
    m.go = label;
    attach_labels(m);
    ops_.push_back(std::move(m));
  }

  /// Lower an expression to a simple operand, materializing temporaries.
  Operand operand(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kConst:
        return Operand{true, e.value, ""};
      case Expr::Kind::kVar:
        if (inputs_.count(e.var) == 0 && registers_.count(e.var) == 0) {
          throw Error("use of undeclared name '" + e.var + "'");
        }
        return Operand{false, 0, e.var};
      default: {
        const std::string temp = fresh_temp();
        assign(temp, e);
        return Operand{false, 0, temp};
      }
    }
  }

  static Op map_binop(BinOp op) {
    switch (op) {
      case BinOp::kAdd:
        return Op::kAdd;
      case BinOp::kSub:
        return Op::kSub;
      case BinOp::kAnd:
        return Op::kAnd;
      case BinOp::kOr:
        return Op::kOr;
      case BinOp::kXor:
        return Op::kXor;
      default:
        throw Error("operator " + binop_name(op) +
                    " is not an ALU data operation");
    }
  }

  std::string fresh_temp() {
    std::string name = "t" + std::to_string(temp_counter_++);
    registers_.insert(name);
    return name;
  }

  std::string fresh_label(const std::string& base) {
    return base + "_" + std::to_string(label_counter_++);
  }

  void attach_labels(MicroOp& m) {
    m.labels = std::move(pending_labels_);
    pending_labels_.clear();
  }

  const BehavioralDesign& design_;
  int width_;
  std::set<std::string> inputs_;
  std::set<std::string> registers_;
  std::vector<MicroOp> ops_;
  std::vector<std::string> pending_labels_;
  int temp_counter_ = 0;
  int label_counter_ = 0;
};

/// Comparison -> (ALU status pin, negate) for the controller.
std::pair<Op, bool> status_for(BinOp cmp) {
  switch (cmp) {
    case BinOp::kEq:
      return {Op::kEq, false};
    case BinOp::kNe:
      return {Op::kEq, true};
    case BinOp::kLt:
      return {Op::kLt, false};
    case BinOp::kGe:
      return {Op::kLt, true};
    case BinOp::kGt:
      return {Op::kGt, false};
    case BinOp::kLe:
      return {Op::kGt, true};
    default:
      throw Error("not a comparison");
  }
}

}  // namespace

Fsmd synthesize_behavior(const BehavioralDesign& design) {
  // All declared widths must agree (single-width datapath).
  int width = 0;
  auto check_width = [&width](const VarDecl& v) {
    if (width == 0) width = v.width;
    if (v.width != width) {
      throw Error("all widths must match in this front end (got " +
                  std::to_string(v.width) + " and " + std::to_string(width) +
                  ")");
    }
  };
  for (const auto& v : design.inputs) check_width(v);
  for (const auto& v : design.outputs) check_width(v);
  for (const auto& v : design.vars) check_width(v);
  BRIDGE_CHECK(width > 0, "design has no declarations");

  Flattener flattener(design, width);
  std::vector<MicroOp> ops = flattener.run();
  const std::set<std::string> registers = flattener.registers();
  std::set<std::string> inputs;
  for (const auto& v : design.inputs) inputs.insert(v.name);

  // --- component allocation + binding preparation ----------------------
  // Collect operand sources for the two ALU input multiplexers and the
  // operation/status requirements of the shared units.
  std::vector<std::string> a_sources;
  std::vector<std::string> b_sources;
  auto source_index = [](std::vector<std::string>& list,
                         const Operand& o) -> int {
    const std::string key = o.key();
    auto it = std::find(list.begin(), list.end(), key);
    if (it != list.end()) return static_cast<int>(it - list.begin());
    list.push_back(key);
    return static_cast<int>(list.size()) - 1;
  };
  OpSet alu_ops;
  OpSet shift_ops;
  bool any_branch = false;
  std::set<Op> status_used;
  for (const MicroOp& m : ops) {
    if (m.kind == MKind::kAssign) {
      source_index(a_sources, m.a);
      source_index(b_sources, m.b);
      if (m.use_shifter) {
        shift_ops.insert(m.op);
      } else {
        alu_ops.insert(m.op);
      }
    } else if (m.kind == MKind::kBranch) {
      source_index(a_sources, m.a);
      source_index(b_sources, m.b);
      any_branch = true;
      status_used.insert(status_for(m.cmp).first);
    }
  }
  if (alu_ops.empty()) alu_ops.insert(Op::kOr);
  if (any_branch) {
    for (Op s : status_used) alu_ops.insert(s);
  }

  // --- datapath construction (connectivity binding) ---------------------
  Fsmd fsmd;
  fsmd.name = design.name;
  fsmd.data_width = width;
  fsmd.design = netlist::Design("dp_" + design.name);
  Module& dp = fsmd.design.add_module("dp_" + design.name);
  fsmd.design.set_top(&dp);

  const NetIndex clk = dp.add_port("CLK", genus::PortDir::kIn, 1);
  std::map<std::string, NetIndex> input_nets;
  for (const auto& v : design.inputs) {
    input_nets[v.name] = dp.add_port(v.name, genus::PortDir::kIn, width);
  }
  std::map<std::string, NetIndex> q_nets;  // register outputs
  std::set<std::string> output_names;
  for (const auto& v : design.outputs) output_names.insert(v.name);
  for (const std::string& r : registers) {
    if (output_names.count(r)) {
      q_nets[r] = dp.add_port(r, genus::PortDir::kOut, width);
    } else {
      q_nets[r] = dp.add_net("q_" + r, width);
    }
    fsmd.registers.push_back(r);
  }

  const int na = static_cast<int>(a_sources.size());
  const int nb = static_cast<int>(b_sources.size());
  const int aw = clog2(na);
  const int bw = clog2(nb);
  StateTable& table = fsmd.control;
  NetIndex asel = netlist::kNoNet;
  NetIndex bsel = netlist::kNoNet;
  if (na > 1) {
    asel = dp.add_port("amux_sel", genus::PortDir::kIn, aw);
    table.control_signals.emplace_back("amux_sel", aw);
  }
  if (nb > 1) {
    bsel = dp.add_port("bmux_sel", genus::PortDir::kIn, bw);
    table.control_signals.emplace_back("bmux_sel", bw);
  }

  auto build_operand_mux = [&](const std::string& label,
                               const std::vector<std::string>& sources,
                               NetIndex sel) -> NetIndex {
    NetIndex out = dp.add_net(label + "_out", width);
    auto bind_source = [&](Instance& inst, const std::string& port,
                           const std::string& key) {
      if (key[0] == '#') {
        dp.connect_const(inst, port, std::stoull(key.substr(1)));
      } else if (inputs.count(key)) {
        dp.connect(inst, port, input_nets.at(key));
      } else {
        dp.connect(inst, port, q_nets.at(key));
      }
    };
    if (sources.size() == 1) {
      // Single source: a buffer instead of a multiplexer.
      Instance& buf = dp.add_spec_instance(
          label + "_buf", genus::make_gate_spec(Op::kBuf, width));
      bind_source(buf, "I0", sources[0]);
      dp.connect(buf, "OUT", out);
      return out;
    }
    Instance& mux = dp.add_spec_instance(
        label, genus::make_mux_spec(width, static_cast<int>(sources.size())));
    for (size_t i = 0; i < sources.size(); ++i) {
      bind_source(mux, "I" + std::to_string(i), sources[i]);
    }
    dp.connect(mux, "SEL", sel);
    dp.connect(mux, "OUT", out);
    return out;
  };
  NetIndex aout = build_operand_mux("amux", a_sources, asel);
  NetIndex bout = build_operand_mux("bmux", b_sources, bsel);

  // Shared ALU. Data-book raw-carry convention: SUB computes A+~B+CI, so
  // true subtraction asserts the alu_ci control line.
  ComponentSpec alu_spec = genus::make_alu_spec(width, alu_ops);
  alu_spec.carry_in = true;
  alu_spec.carry_out = false;
  Instance& alu = dp.add_spec_instance("alu0", alu_spec);
  dp.connect(alu, "A", aout);
  dp.connect(alu, "B", bout);
  const bool need_ci = alu_ops.contains(Op::kSub);
  NetIndex ci_port = netlist::kNoNet;
  if (need_ci) {
    ci_port = dp.add_port("alu_ci", genus::PortDir::kIn, 1);
    dp.connect(alu, "CI", ci_port);
    table.control_signals.emplace_back("alu_ci", 1);
  } else {
    dp.connect_const(alu, "CI", 0);
  }
  NetIndex alu_out = dp.add_net("alu_out", width);
  dp.connect(alu, "OUT", alu_out);
  const int fw = alu_spec.select_width();
  NetIndex fport = netlist::kNoNet;
  if (alu_ops.size() > 1) {
    fport = dp.add_port("alu_f", genus::PortDir::kIn, fw);
    dp.connect(alu, "F", fport);
    table.control_signals.emplace_back("alu_f", fw);
  } else {
    dp.connect_const(alu, "F", 0);
  }
  for (Op s : status_used) {
    NetIndex n = dp.add_port(genus::op_name(s), genus::PortDir::kOut, 1);
    dp.connect(alu, genus::op_name(s), n);
    table.status_inputs.push_back(genus::op_name(s));
  }

  // Optional shared shifter and the result selector.
  NetIndex result = alu_out;
  if (!shift_ops.empty()) {
    ComponentSpec sh_spec = genus::make_shifter_spec(width, shift_ops);
    Instance& sh = dp.add_spec_instance("shift0", sh_spec);
    dp.connect(sh, "IN", aout);
    NetIndex sh_out = dp.add_net("sh_out", width);
    dp.connect(sh, "OUT", sh_out);
    if (shift_ops.size() > 1) {
      NetIndex shf = dp.add_port("sh_f", genus::PortDir::kIn,
                                 sh_spec.select_width());
      dp.connect(sh, "F", shf);
      table.control_signals.emplace_back("sh_f", sh_spec.select_width());
    }
    NetIndex rsel = dp.add_port("rsel", genus::PortDir::kIn, 1);
    table.control_signals.emplace_back("rsel", 1);
    Instance& rmux =
        dp.add_spec_instance("rmux", genus::make_mux_spec(width, 2));
    dp.connect(rmux, "I0", alu_out);
    dp.connect(rmux, "I1", sh_out);
    dp.connect(rmux, "SEL", rsel);
    result = dp.add_net("result", width);
    dp.connect(rmux, "OUT", result);
  }

  // Registers.
  for (const std::string& r : registers) {
    ComponentSpec reg = genus::make_register_spec(width, true, false);
    Instance& inst = dp.add_spec_instance("reg_" + r, reg);
    dp.connect(inst, "D", result);
    dp.connect(inst, "CLK", clk);
    NetIndex en = dp.add_port("en_" + r, genus::PortDir::kIn, 1);
    dp.connect(inst, "EN", en);
    dp.connect(inst, "Q", q_nets.at(r));
    table.control_signals.emplace_back("en_" + r, 1);
  }

  // --- state scheduling: one micro-operation per state -------------------
  // Resolve labels to the next real (non-goto) op.
  std::map<std::string, int> label_to_op;
  for (size_t i = 0; i < ops.size(); ++i) {
    for (const auto& l : ops[i].labels) label_to_op[l] = static_cast<int>(i);
  }
  std::function<int(int)> resolve = [&](int idx) -> int {
    int guard = 0;
    while (ops[idx].kind == MKind::kGoto) {
      idx = label_to_op.at(ops[idx].go);
      BRIDGE_CHECK(++guard < static_cast<int>(ops.size()) + 1,
                   "goto cycle in control flow");
    }
    return idx;
  };
  std::map<int, std::string> state_name;
  int counter = 0;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == MKind::kGoto) continue;
    state_name[static_cast<int>(i)] =
        ops[i].kind == MKind::kHalt ? "HALT" : "S" + std::to_string(counter++);
  }
  auto next_state = [&](int idx) -> std::string {
    for (size_t j = idx + 1; j < ops.size(); ++j) {
      int r = resolve(static_cast<int>(j));
      return state_name.at(r);
    }
    return "HALT";
  };
  auto alu_code = [&](Op op) {
    return static_cast<std::uint64_t>(sim::op_select_code(alu_spec, op));
  };

  for (size_t i = 0; i < ops.size(); ++i) {
    const MicroOp& m = ops[i];
    if (m.kind == MKind::kGoto) continue;
    StateRow row;
    row.name = state_name.at(static_cast<int>(i));
    if (m.kind == MKind::kHalt) {
      row.transitions.push_back(Transition{"", false, row.name});
      table.rows.push_back(std::move(row));
      continue;
    }
    auto assert_operands = [&](const Operand& a, const Operand& b) {
      if (na > 1) {
        auto it = std::find(a_sources.begin(), a_sources.end(), a.key());
        row.asserts["amux_sel"] = it - a_sources.begin();
      }
      if (nb > 1) {
        auto it = std::find(b_sources.begin(), b_sources.end(), b.key());
        row.asserts["bmux_sel"] = it - b_sources.begin();
      }
    };
    if (m.kind == MKind::kAssign) {
      assert_operands(m.a, m.b);
      if (m.use_shifter) {
        row.asserts["rsel"] = 1;
        if (shift_ops.size() > 1) {
          ComponentSpec sh_spec = genus::make_shifter_spec(width, shift_ops);
          row.asserts["sh_f"] = sim::op_select_code(sh_spec, m.op);
        }
      } else {
        if (alu_ops.size() > 1) row.asserts["alu_f"] = alu_code(m.op);
        if (m.op == Op::kSub) row.asserts["alu_ci"] = 1;
      }
      row.asserts["en_" + m.target] = 1;
      row.transitions.push_back(
          Transition{"", false, next_state(static_cast<int>(i))});
    } else {  // branch
      assert_operands(m.a, m.b);
      auto [status, negate] = status_for(m.cmp);
      const int target = resolve(label_to_op.at(m.if_false));
      // Take if_false when the condition is FALSE.
      row.transitions.push_back(Transition{genus::op_name(status), !negate,
                                           state_name.at(target)});
      row.transitions.push_back(
          Transition{"", false, next_state(static_cast<int>(i))});
    }
    table.rows.push_back(std::move(row));
  }
  table.initial = table.rows.empty() ? "HALT" : table.rows.front().name;
  return fsmd;
}

FsmdRun run_fsmd(const Fsmd& fsmd, const std::map<std::string, BitVec>& inputs,
                 int max_cycles) {
  sim::Simulator simulator(*fsmd.design.top());
  for (const auto& [name, value] : inputs) {
    simulator.set_input(name, value);
  }
  FsmdRun run;
  std::string state = fsmd.control.initial;
  for (run.cycles = 0; run.cycles < max_cycles; ++run.cycles) {
    const StateRow& row = fsmd.control.row(state);
    for (const auto& [signal, width] : fsmd.control.control_signals) {
      auto it = row.asserts.find(signal);
      simulator.set_input(signal,
                          BitVec(width, it == row.asserts.end() ? 0
                                                                : it->second));
    }
    simulator.eval();
    // Choose the successor.
    std::string next;
    for (const Transition& t : row.transitions) {
      if (t.status.empty()) {
        next = t.next;
        break;
      }
      bool v = simulator.get(t.status).bit(0);
      if (v != t.negate) {
        next = t.next;
        break;
      }
    }
    BRIDGE_CHECK(!next.empty(), "state " << state << " has no successor");
    if (state == "HALT") {
      run.halted = true;
      break;
    }
    simulator.step();
    state = next;
  }
  // Outputs are registered; read them after the final eval.
  simulator.eval();
  for (const auto& row : fsmd.design.top()->module_ports()) {
    if (row.dir == genus::PortDir::kOut) {
      run.outputs[row.name] = simulator.get(row.name);
    }
  }
  return run;
}

}  // namespace bridge::hls
