#include "server/protocol.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>

namespace bridge::server {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

/// Write exactly `len` bytes. MSG_NOSIGNAL: a peer that disconnected
/// mid-response must surface as EPIPE (an Error the per-connection
/// handler catches), not as a process-killing SIGPIPE.
void write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      sys_fail("send");
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

/// Read exactly `len` bytes. Returns false on EOF before the first byte
/// (only meaningful at a frame boundary); throws on EOF after it.
bool read_all(int fd, char* data, std::size_t len, bool eof_ok) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      sys_fail("recv");
    }
    if (n == 0) {
      if (got == 0 && eof_ok) return false;
      throw Error("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void write_frame(int fd, const std::string& payload) {
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  // One buffer, one send: a 4-byte header sent on its own interacts
  // with Nagle + delayed ACK on TCP and stalls every request ~40 ms.
  std::string frame;
  frame.reserve(sizeof(std::uint32_t) + payload.size());
  frame.push_back(static_cast<char>(len >> 24));
  frame.push_back(static_cast<char>(len >> 16));
  frame.push_back(static_cast<char>(len >> 8));
  frame.push_back(static_cast<char>(len));
  frame.append(payload);
  write_all(fd, frame.data(), frame.size());
}

bool read_frame(int fd, std::string& payload, std::size_t max_frame) {
  char header[4];
  if (!read_all(fd, header, sizeof(header), /*eof_ok=*/true)) return false;
  const std::uint32_t len =
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[0]))
       << 24) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[1]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[2]))
       << 8) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(header[3]));
  if (len > max_frame) throw FrameTooLarge(len, max_frame);
  payload.resize(len);
  if (len > 0) read_all(fd, payload.data(), len, /*eof_ok=*/false);
  return true;
}

int listen_tcp(int& port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    sys_fail("bind");
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    sys_fail("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    sys_fail("getsockname");
  }
  port = ntohs(addr.sin_port);
  return fd;
}

int listen_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    throw Error("unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket");
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    sys_fail("bind " + path);
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    sys_fail("listen " + path);
  }
  return fd;
}

void set_tcp_nodelay(int fd) {
  const int one = 1;
  // Best effort (a no-op errno on Unix sockets is fine): request
  // latency, not batching — the protocol is strictly request/response.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

int connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket");
  set_tcp_nodelay(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    sys_fail("connect to port " + std::to_string(port));
  }
  return fd;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    throw Error("unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket");
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    sys_fail("connect to " + path);
  }
  return fd;
}

void close_socket(int fd) {
  if (fd >= 0) ::close(fd);
}

void shutdown_socket(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

}  // namespace bridge::server
