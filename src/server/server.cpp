#include "server/server.h"

#include <sys/socket.h>

#include <chrono>
#include <sstream>
#include <thread>

#include "base/fault.h"
#include "obs/metrics.h"

namespace bridge::server {

namespace {

struct ServerMetrics {
  obs::Counter& requests =
      obs::Registry::global().counter("server.requests");
  obs::Counter& errors = obs::Registry::global().counter("server.errors");
  obs::Counter& connections =
      obs::Registry::global().counter("server.connections");
  obs::Histogram& request_ms =
      obs::Registry::global().histogram("server.request_ms");

  static ServerMetrics& get() {
    static ServerMetrics m;
    return m;
  }
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Echo the request's "id" (any JSON value) into the response so clients
/// can correlate, then serialize.
std::string finish_response(api::Json response, const api::Json* id) {
  if (id != nullptr) response.set("id", *id);
  return response.dump();
}

}  // namespace

SynthesisServer::SynthesisServer(const cells::LibraryRegistry& registry,
                                 ServerOptions options)
    : registry_(registry), options_(std::move(options)) {
  workers_ = options_.workers;
  if (workers_ <= 0) {
    workers_ = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (workers_ < 1) workers_ = 1;
}

SynthesisServer::~SynthesisServer() { stop(); }

std::string SynthesisServer::endpoint() const {
  if (!options_.unix_path.empty()) return "unix:" + options_.unix_path;
  return "tcp:" + std::to_string(port_);
}

void SynthesisServer::start() {
  if (running_.load()) return;
  if (!options_.unix_path.empty()) {
    listen_fd_ = listen_unix(options_.unix_path);
  } else {
    port_ = options_.tcp_port;
    listen_fd_ = listen_tcp(port_);
  }
  pool_ = std::make_unique<base::ThreadPool>(workers_);
  sessions_.clear();
  sessions_.resize(static_cast<std::size_t>(workers_) + 1);
  started_at_ = std::chrono::steady_clock::now();
  stopping_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void SynthesisServer::stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  // Unblock the accept thread, then every parked reader; cancel whatever
  // is mid-synthesis so workers come back quickly.
  shutdown_socket(listen_fd_);
  {
    base::LockGuard lock(conns_mu_);
    for (auto& conn : conns_) {
      if (conn->cancel != nullptr) conn->cancel->request_cancel();
      shutdown_socket(conn->fd);
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Join readers without holding conns_mu_: an exiting reader takes that
  // lock to close its fd, so joining under it would deadlock.
  std::vector<std::unique_ptr<Connection>> conns;
  {
    base::LockGuard lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  conns.clear();
  if (pool_ != nullptr) pool_->drain();
  close_socket(listen_fd_);
  listen_fd_ = -1;
  // Sessions (and their warm caches) die with the server, not with a
  // connection. The pool dies after them in the destructor.
  request_shutdown();  // release any wait()ers
}

void SynthesisServer::wait() {
  base::UniqueLock lock(shutdown_mu_);
  while (!shutdown_requested_) shutdown_cv_.wait(lock);
}

void SynthesisServer::request_shutdown() {
  {
    base::LockGuard lock(shutdown_mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void SynthesisServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      if (errno == EINTR) continue;
      return;  // listener broken; stop accepting
    }
    set_tcp_nodelay(fd);
    if (stopping_.load()) {
      close_socket(fd);
      return;
    }
    ServerMetrics::get().connections.add(1);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->cancel = std::make_shared<base::CancelToken>();
    Connection* raw = conn.get();
    base::LockGuard lock(conns_mu_);
    conns_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] { serve_connection(raw); });
  }
}

void SynthesisServer::serve_connection(Connection* conn) {
  std::string payload;
  for (;;) {
    try {
      if (!read_frame(conn->fd, payload, options_.max_frame_bytes)) break;
    } catch (const FrameTooLarge& e) {
      // Answer from the header alone, then close: the payload was never
      // read, so the stream position is unrecoverable.
      try {
        write_frame(conn->fd,
                    api::SynthesisResult::make_error("error", e.what())
                        .to_json());
      } catch (const Error&) {
      }
      break;
    } catch (const Error&) {
      break;  // transport failure (or stop() shut the socket down)
    }
    bool shutdown_after = false;
    const std::string response =
        handle_message(payload, conn->cancel, shutdown_after);
    try {
      write_frame(conn->fd, response);
    } catch (const Error&) {
      break;  // client went away mid-response; drop the connection
    }
    if (shutdown_after) {
      request_shutdown();
      break;
    }
  }
  base::LockGuard lock(conns_mu_);
  close_socket(conn->fd);
  conn->fd = -1;
}

std::string SynthesisServer::handle_message(
    const std::string& payload,
    const std::shared_ptr<base::CancelToken>& cancel, bool& shutdown_after) {
  api::Json msg;
  try {
    msg = api::Json::parse(payload);
  } catch (const Error& e) {
    errors_.fetch_add(1);
    ServerMetrics::get().errors.add(1);
    return api::SynthesisResult::make_error("error", e.what()).to_json();
  }
  const api::Json* id = msg.find("id");
  const std::string method = msg.str_or("method", "synthesize");

  if (method == "health") {
    api::Json j = api::Json::object();
    j.set("method", "health")
        .set("status", "ok")
        .set("uptime_ms", ms_since(started_at_))
        .set("requests", requests_.load())
        .set("errors", errors_.load())
        .set("workers", workers_);
    api::Json libs = api::Json::array();
    for (const std::string& name : registry_.names()) libs.push_back(name);
    j.set("libraries", std::move(libs));
    return finish_response(std::move(j), id);
  }
  if (method == "metrics") {
    api::Json j = api::Json::object();
    j.set("method", "metrics").set("status", "ok");
    // The registry snapshot serializes itself; re-parse to embed it as a
    // value rather than a quoted string.
    j.set("metrics",
          api::Json::parse(obs::Registry::global().snapshot().to_json()));
    return finish_response(std::move(j), id);
  }
  if (method == "shutdown") {
    shutdown_after = true;
    api::Json j = api::Json::object();
    j.set("method", "shutdown").set("status", "ok");
    return finish_response(std::move(j), id);
  }
  if (method != "synthesize") {
    errors_.fetch_add(1);
    ServerMetrics::get().errors.add(1);
    return finish_response(
        api::SynthesisResult::make_error("error",
                                         "unknown method '" + method + "'")
            .encode(),
        id);
  }

  const auto t0 = std::chrono::steady_clock::now();
  api::SynthesisResult result;
  try {
    const api::SynthesisRequest req = api::SynthesisRequest::decode(msg);
    result = dispatch_synthesize(req, cancel);
  } catch (const std::exception& e) {
    result = api::SynthesisResult::make_error("error", e.what());
  }
  result.server_ms = ms_since(t0);
  requests_.fetch_add(1);
  ServerMetrics::get().requests.add(1);
  ServerMetrics::get().request_ms.record(result.server_ms);
  if (!result.ok()) {
    errors_.fetch_add(1);
    ServerMetrics::get().errors.add(1);
  }
  return finish_response(result.encode(), id);
}

api::SynthesisResult SynthesisServer::dispatch_synthesize(
    const api::SynthesisRequest& req,
    const std::shared_ptr<base::CancelToken>& cancel) {
  // One queued pool task per request; the reader blocks here, so each
  // connection has exactly one request in flight and responses keep
  // request order.
  struct Pending {
    base::Mutex mu;
    base::CondVar cv;
    bool done BRIDGE_GUARDED_BY(mu) = false;
    api::SynthesisResult result BRIDGE_GUARDED_BY(mu);
  } pending;
  pool_->submit([this, &req, &cancel, &pending](int slot) {
    api::SynthesisResult r = run_on_worker(req, slot, cancel);
    {
      base::LockGuard lock(pending.mu);
      pending.result = std::move(r);
      pending.done = true;
    }
    pending.cv.notify_one();
  });
  base::UniqueLock lock(pending.mu);
  while (!pending.done) pending.cv.wait(lock);
  return std::move(pending.result);
}

api::SynthesisResult SynthesisServer::run_on_worker(
    const api::SynthesisRequest& req, int slot,
    const std::shared_ptr<base::CancelToken>& cancel) {
  try {
    // Deterministic fault-injection probe: an armed fault here takes the
    // same path as any failing request — an error response, never a
    // wedged worker (tests/server_test.cpp pins this).
    base::FaultInjector::global().probe("server.request");
    const cells::CellLibrary* library = registry_.find(req.library);
    if (library == nullptr) {
      registry_.at(req.library);  // throws, listing the known names
    }
    auto& sessions = sessions_.at(static_cast<std::size_t>(slot));
    // Best-effort-bounded requests get a segregated session: a deadline
    // that fires mid-expansion leaves truncated best-effort state in the
    // space (documented in tests/deadline_test.cpp), which must never
    // degrade a later full-precision request. Hard deadlines are safe to
    // share — expiry throws with strong exception safety.
    const bool truncating = req.options.deadline_ms > 0 &&
                            req.options.deadline_best_effort;
    // Sessions are keyed by library *content* (fingerprint), not name:
    // re-registering a library with identical cells — the common "reload
    // the same .lib" retargeting loop — maps back onto its warm session,
    // while any content edit gets a fresh one. The rules flavor rides
    // along because default_rules_for picks rule sets by library, and two
    // content-divergent libraries could otherwise only differ outside the
    // options fingerprint. Pointer-keyed mode (delta_cache_keys off)
    // falls back to the name so the reference path keeps the historical
    // one-session-per-name behavior.
    std::ostringstream key_out;
    if (req.options.delta_cache_keys) {
      key_out << "fp:" << std::hex << library->fingerprint() << std::dec
              << "|rules:" << dtas::default_rules_flavor(*library);
    } else {
      key_out << "name:" << req.library;
    }
    key_out << "|" << req.options.fingerprint()
            << (truncating ? "|best-effort" : "");
    const std::string key = key_out.str();
    auto it = sessions.find(key);
    if (it == sessions.end()) {
      it = sessions.emplace(key, api::make_session(req, *library)).first;
    }
    dtas::Synthesizer& session = *it->second;
    // Install this connection's kill switch; run_request then layers the
    // request's deadline on top of it.
    session.space().set_deadline_policy(req.options.deadline_ms,
                                        req.options.deadline_best_effort,
                                        cancel);
    return api::run_request(req, session);
  } catch (const std::exception& e) {
    return api::SynthesisResult::make_error("error", e.what());
  }
}

}  // namespace bridge::server
