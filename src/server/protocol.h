// Wire protocol of the synthesis daemon: length-prefixed JSON frames
// over a TCP-loopback or Unix-domain stream socket.
//
// Framing: every message is a 4-byte big-endian unsigned length followed
// by that many bytes of UTF-8 JSON — one frame per request, one frame
// per response. The length prefix makes the stream self-delimiting
// (payloads may contain anything, including newlines and VHDL text), and
// the receiver can reject an oversized frame from the header alone,
// before buffering a byte of it.
//
// The payloads are the api layer's objects verbatim: a request frame is
// api::SynthesisRequest::encode() plus a "method" member, a response
// frame is api::SynthesisResult::encode() — the wire protocol and the
// in-process API are the same object (see src/api/api.h).
#pragma once

#include <cstddef>
#include <string>

#include "base/diag.h"

namespace bridge::server {

/// Default cap on a frame payload. Generous — a 64-bit ALU front with
/// full VHDL is well under 1 MiB — while bounding what a hostile or
/// corrupted length header can make the server allocate.
inline constexpr std::size_t kDefaultMaxFrameBytes = 16u << 20;

/// Oversized-frame rejection: thrown by read_frame when the header
/// announces more than max_frame bytes. Distinct from Error so the
/// server can answer with an error frame and close, instead of treating
/// it like a transport failure.
class FrameTooLarge : public Error {
 public:
  FrameTooLarge(std::size_t announced, std::size_t limit)
      : Error("frame of " + std::to_string(announced) +
              " bytes exceeds limit of " + std::to_string(limit)),
        announced_(announced) {}
  std::size_t announced() const { return announced_; }

 private:
  std::size_t announced_;
};

/// Write one framed payload; throws Error on transport failure (a
/// disconnected peer is a failure, never a signal — writes use
/// MSG_NOSIGNAL / ignore SIGPIPE semantics).
void write_frame(int fd, const std::string& payload);

/// Read one framed payload into `payload`. Returns false on clean EOF at
/// a frame boundary (peer closed), throws FrameTooLarge on an oversized
/// announcement and Error on any other transport failure (including EOF
/// mid-frame).
bool read_frame(int fd, std::string& payload,
                std::size_t max_frame = kDefaultMaxFrameBytes);

// --- socket setup (POSIX) --------------------------------------------------

/// Listening TCP socket bound to loopback:`port` (0 = ephemeral). On
/// return `port` holds the actually bound port. Throws Error on failure.
int listen_tcp(int& port);

/// Listening Unix-domain socket bound to `path` (unlinked first).
int listen_unix(const std::string& path);

/// Blocking connect to loopback:`port` / to a Unix-domain `path`.
int connect_tcp(int port);
int connect_unix(const std::string& path);

/// Disable Nagle on a TCP socket (best effort; harmless elsewhere). The
/// protocol is strictly request/response — batching only adds latency.
void set_tcp_nodelay(int fd);

/// Close a socket fd (no-op on negative fds).
void close_socket(int fd);

/// Disallow further sends/receives without closing the fd — unblocks a
/// thread parked in read_frame on this socket.
void shutdown_socket(int fd);

}  // namespace bridge::server
