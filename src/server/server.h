// Synthesis-as-a-service: a concurrent session server over the api layer.
//
// One process-long daemon amortizes the warm state the paper's one-shot
// flow rebuilds per run: the process-wide dtas::TemplateCache (shared by
// every session) and one dtas::Synthesizer per worker slot and distinct
// (library, space-shaping options) — so concurrent clients asking for
// the same kind of synthesis hit fully warm template and extraction
// caches after the first request, and fronts stay byte-identical to
// in-process synthesis (bench_server_throughput gates on both).
//
// Threading model:
//  - one accept thread;
//  - one reader thread per connection, handling health / metrics /
//    shutdown inline and dispatching synthesize requests to the pool;
//  - a base::ThreadPool of `workers` threads executing synthesis, one
//    queued task per request (ThreadPool::submit), with per-worker-slot
//    session maps no lock ever touches from two threads.
//
// A connection has at most one request in flight (responses are written
// in request order), so client concurrency is connection concurrency.
// Each connection owns a base::CancelToken installed into the session's
// deadline policy for the duration of its requests: stop() cancels them
// all, so shutdown never waits out a long synthesis.
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/api.h"
#include "base/annotations.h"
#include "base/cancel.h"
#include "base/thread_pool.h"
#include "cells/registry.h"
#include "server/protocol.h"

namespace bridge::server {

struct ServerOptions {
  /// Non-empty: listen on this Unix-domain socket path (takes precedence
  /// over TCP).
  std::string unix_path;
  /// TCP loopback port; 0 picks an ephemeral port (read it back via
  /// port() after start()).
  int tcp_port = 0;
  /// Synthesis worker threads; 0 = hardware concurrency. At least 1.
  int workers = 0;
  /// Per-frame payload cap (see protocol.h).
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

class SynthesisServer {
 public:
  /// `registry` must outlive the server; it is shared with any other
  /// in-process users (thread-safe by its own contract).
  SynthesisServer(const cells::LibraryRegistry& registry,
                  ServerOptions options);
  ~SynthesisServer();
  SynthesisServer(const SynthesisServer&) = delete;
  SynthesisServer& operator=(const SynthesisServer&) = delete;

  /// Bind and begin accepting. Throws Error when the socket can't be
  /// set up. Returns once the endpoint is live (port() is valid).
  void start();

  /// Stop accepting, cancel in-flight requests, unblock and join every
  /// connection, drain the pool. Idempotent.
  void stop();

  /// Block until a client's shutdown request (or stop()) arrives.
  void wait();

  bool running() const { return running_.load(); }
  /// Bound TCP port (after start(); 0 in Unix-socket mode).
  int port() const { return port_; }
  /// Human-readable endpoint ("unix:PATH" or "tcp:PORT").
  std::string endpoint() const;

  long requests_handled() const { return requests_.load(); }
  long errors_returned() const { return errors_.load(); }

 private:
  struct Connection {
    int fd = -1;
    std::shared_ptr<base::CancelToken> cancel;
    std::thread thread;
  };

  void accept_loop();
  void serve_connection(Connection* conn);
  /// One frame in, one response payload out. Sets `shutdown_after` when
  /// the message was a shutdown request (reply first, then stop).
  std::string handle_message(const std::string& payload,
                             const std::shared_ptr<base::CancelToken>& cancel,
                             bool& shutdown_after);
  api::SynthesisResult dispatch_synthesize(
      const api::SynthesisRequest& req,
      const std::shared_ptr<base::CancelToken>& cancel);
  /// Runs on a pool worker: resolve the session for (slot, library,
  /// options fingerprint) and execute.
  api::SynthesisResult run_on_worker(
      const api::SynthesisRequest& req, int slot,
      const std::shared_ptr<base::CancelToken>& cancel);
  void request_shutdown();

  const cells::LibraryRegistry& registry_;
  ServerOptions options_;
  int workers_ = 1;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  base::Mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_ BRIDGE_GUARDED_BY(conns_mu_);

  /// Workers and their sessions. sessions_[slot] is touched only by the
  /// pool worker owning that slot (slots are 1..workers_), so the maps
  /// need no locks; the pool outlives every request by construction.
  std::unique_ptr<base::ThreadPool> pool_;
  std::vector<std::map<std::string, std::unique_ptr<dtas::Synthesizer>>>
      sessions_;

  base::Mutex shutdown_mu_;
  base::CondVar shutdown_cv_;
  bool shutdown_requested_ BRIDGE_GUARDED_BY(shutdown_mu_) = false;

  std::chrono::steady_clock::time_point started_at_{};
  std::atomic<long> requests_{0};
  std::atomic<long> errors_{0};
};

}  // namespace bridge::server
