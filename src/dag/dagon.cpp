#include "dag/dagon.h"

#include <algorithm>
#include <functional>

#include "base/diag.h"

namespace bridge::dag {

int GateNetwork::add_input() {
  nodes_.push_back(GateNode{GateKind::kInput, -1, -1});
  return size() - 1;
}

int GateNetwork::add_nand(int a, int b) {
  BRIDGE_CHECK(a >= 0 && a < size() && b >= 0 && b < size(), "bad fanin");
  nodes_.push_back(GateNode{GateKind::kNand, a, b});
  return size() - 1;
}

int GateNetwork::add_inv(int a) {
  BRIDGE_CHECK(a >= 0 && a < size(), "bad fanin");
  nodes_.push_back(GateNode{GateKind::kInv, a, -1});
  return size() - 1;
}

GateNetwork GateNetwork::ripple_adder(int width) {
  GateNetwork net;
  std::vector<int> a(width);
  std::vector<int> b(width);
  for (int i = 0; i < width; ++i) a[i] = net.add_input();
  for (int i = 0; i < width; ++i) b[i] = net.add_input();
  int carry = net.add_input();  // CI
  for (int i = 0; i < width; ++i) {
    // Classic nine-NAND full adder.
    int n1 = net.add_nand(a[i], b[i]);
    int n2 = net.add_nand(a[i], n1);
    int n3 = net.add_nand(b[i], n1);
    int x = net.add_nand(n2, n3);  // a XOR b
    int n4 = net.add_nand(x, carry);
    int n5 = net.add_nand(x, n4);
    int n6 = net.add_nand(carry, n4);
    int s = net.add_nand(n5, n6);  // sum
    int co = net.add_nand(n1, n4);
    net.mark_output(s);
    carry = co;
  }
  net.mark_output(carry);  // CO
  return net;
}

GateNetwork GateNetwork::equality_comparator(int width) {
  GateNetwork net;
  std::vector<int> eqs;
  for (int i = 0; i < width; ++i) {
    int a = net.add_input();
    int b = net.add_input();
    int n1 = net.add_nand(a, b);
    int n2 = net.add_nand(a, n1);
    int n3 = net.add_nand(b, n1);
    int x = net.add_nand(n2, n3);  // a XOR b
    eqs.push_back(net.add_inv(x));  // XNOR
  }
  // AND reduction tree over per-bit equalities.
  while (eqs.size() > 1) {
    std::vector<int> next;
    for (size_t i = 0; i + 1 < eqs.size(); i += 2) {
      next.push_back(net.add_inv(net.add_nand(eqs[i], eqs[i + 1])));
    }
    if (eqs.size() % 2 == 1) next.push_back(eqs.back());
    eqs = std::move(next);
  }
  net.mark_output(eqs[0]);
  return net;
}

namespace {

using NodePtr = std::unique_ptr<PatternNode>;

NodePtr leaf(int var) {
  auto n = std::make_unique<PatternNode>();
  n->kind = PatternNode::Kind::kLeaf;
  n->var = var;
  return n;
}

NodePtr pnand(NodePtr a, NodePtr b) {
  auto n = std::make_unique<PatternNode>();
  n->kind = PatternNode::Kind::kNand;
  n->a = std::move(a);
  n->b = std::move(b);
  return n;
}

NodePtr pinv(NodePtr a) {
  auto n = std::make_unique<PatternNode>();
  n->kind = PatternNode::Kind::kInv;
  n->a = std::move(a);
  return n;
}

}  // namespace

std::vector<Pattern> build_patterns(const cells::CellLibrary& library) {
  std::vector<Pattern> out;
  auto add = [&out, &library](const char* cell_name, NodePtr tree,
                              int inputs) {
    const cells::Cell* cell = library.find(cell_name);
    if (cell == nullptr) return;
    Pattern p;
    p.cell = cell->name;
    p.area = cell->area;
    p.delay = cell->delay_ns;
    p.tree = std::move(tree);
    p.inputs = inputs;
    out.push_back(std::move(p));
  };
  add("INV", pinv(leaf(0)), 1);
  add("NAND2", pnand(leaf(0), leaf(1)), 2);
  add("AND2", pinv(pnand(leaf(0), leaf(1))), 2);
  add("OR2", pnand(pinv(leaf(0)), pinv(leaf(1))), 2);
  add("NOR2", pinv(pnand(pinv(leaf(0)), pinv(leaf(1)))), 2);
  // NAND3 = ~(abc) = nand(~(ab) inverted, c).
  add("NAND3", pnand(pinv(pnand(leaf(0), leaf(1))), leaf(2)), 3);
  add("NAND4",
      pnand(pinv(pnand(leaf(0), leaf(1))), pinv(pnand(leaf(2), leaf(3)))), 4);
  // XOR2 = nand(nand(a, nand(a,b)), nand(b, nand(a,b))).
  add("XOR2",
      pnand(pnand(leaf(0), pnand(leaf(0), leaf(1))),
            pnand(leaf(1), pnand(leaf(0), leaf(1)))),
      2);
  add("XNOR2",
      pinv(pnand(pnand(leaf(0), pnand(leaf(0), leaf(1))),
                 pnand(leaf(1), pnand(leaf(0), leaf(1))))),
      2);
  return out;
}

namespace {

/// Match state: leaf-variable bindings plus how many times each internal
/// multi-fanout subject node was consumed (for leaf-DAG patterns like XOR,
/// whose shared inner NAND is legal to absorb only if the pattern accounts
/// for every one of its fanouts).
struct MatchState {
  std::map<int, int> bindings;
  std::map<int, int> internal_uses;
};

/// Try to match `pat` rooted at subject node `node`. Internal pattern
/// nodes normally may not cross tree boundaries (multi-fanout subject
/// nodes); crossing is tentatively allowed and validated afterwards
/// against the node's fanout count. Repeated pattern variables must bind
/// to the same subject node. NAND children are tried in both orders.
bool match(const GateNetwork& net, const std::vector<bool>& is_boundary,
           const PatternNode& pat, int node, bool at_root, MatchState& st) {
  if (pat.kind == PatternNode::Kind::kLeaf) {
    auto it = st.bindings.find(pat.var);
    if (it != st.bindings.end()) return it->second == node;
    st.bindings[pat.var] = node;
    return true;
  }
  const GateNode& g = net.nodes()[node];
  if (g.kind == GateKind::kInput) return false;
  if (!at_root && is_boundary[node]) {
    ++st.internal_uses[node];  // validated by the caller against fanout
  }
  if (pat.kind == PatternNode::Kind::kInv) {
    if (g.kind != GateKind::kInv) return false;
    return match(net, is_boundary, *pat.a, g.a, false, st);
  }
  if (g.kind != GateKind::kNand) return false;
  // Try both child orders (NAND is commutative).
  for (int order = 0; order < 2; ++order) {
    MatchState trial = st;
    const int x = order == 0 ? g.a : g.b;
    const int y = order == 0 ? g.b : g.a;
    if (match(net, is_boundary, *pat.a, x, false, trial) &&
        match(net, is_boundary, *pat.b, y, false, trial)) {
      st = std::move(trial);
      return true;
    }
  }
  return false;
}

}  // namespace

CoverResult map_network(const GateNetwork& network,
                        const std::vector<Pattern>& patterns) {
  const auto& nodes = network.nodes();
  const int n = network.size();

  // Fanout counts -> tree boundaries.
  std::vector<int> fanout(n, 0);
  for (const GateNode& g : nodes) {
    if (g.a >= 0) ++fanout[g.a];
    if (g.b >= 0) ++fanout[g.b];
  }
  for (int o : network.outputs()) ++fanout[o];
  std::vector<bool> is_boundary(n, false);
  for (int i = 0; i < n; ++i) {
    is_boundary[i] =
        nodes[i].kind == GateKind::kInput || fanout[i] > 1;
  }
  for (int o : network.outputs()) is_boundary[o] = true;

  // DP over nodes in index order (fanins precede fanouts by construction).
  struct Choice {
    double cost = -1;
    const Pattern* pattern = nullptr;
    std::vector<int> leaves;
  };
  std::vector<Choice> best(n);
  for (int i = 0; i < n; ++i) {
    if (nodes[i].kind == GateKind::kInput) {
      best[i].cost = 0;
      continue;
    }
    for (const Pattern& p : patterns) {
      MatchState st;
      if (!match(network, is_boundary, *p.tree, i, true, st)) continue;
      // Absorbed multi-fanout internals are legal only if the pattern
      // itself consumes every fanout (leaf-DAG patterns, e.g. XOR).
      bool ok = true;
      for (const auto& [node, uses] : st.internal_uses) {
        if (uses != fanout[node]) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      double cost = p.area;
      std::vector<int> leaves;
      for (const auto& [var, subject] : st.bindings) {
        (void)var;
        if (st.internal_uses.count(subject)) {
          ok = false;  // a leaf cannot also be absorbed internally
          break;
        }
        leaves.push_back(subject);
        if (best[subject].cost < 0) {
          ok = false;  // leaf not yet covered (shouldn't happen: topo order)
          break;
        }
        // Leaf cost is only charged at its own tree root.
        if (!is_boundary[subject]) cost += best[subject].cost;
      }
      if (!ok) continue;
      if (best[i].cost < 0 || cost < best[i].cost) {
        best[i] = Choice{cost, &p, std::move(leaves)};
      }
    }
    if (best[i].cost < 0) {
      throw Error("DAG mapping: node " + std::to_string(i) +
                  " not coverable by the pattern set");
    }
  }

  // Collect the chosen cells: walk the chosen covers from the primary
  // outputs; pattern leaves become new roots (absorbed shared nodes are
  // thereby skipped automatically).
  CoverResult result;
  std::vector<double> arrival(n, -1.0);
  std::function<double(int)> arrive = [&](int i) -> double {
    if (nodes[i].kind == GateKind::kInput) return 0.0;
    if (arrival[i] >= 0) return arrival[i];
    const Choice& c = best[i];
    double worst = 0.0;
    for (int leaf : c.leaves) worst = std::max(worst, arrive(leaf));
    arrival[i] = worst + c.pattern->delay;
    return arrival[i];
  };
  std::vector<bool> accounted(n, false);
  std::function<void(int)> account = [&](int i) {
    if (nodes[i].kind == GateKind::kInput || accounted[i]) return;
    accounted[i] = true;
    const Choice& c = best[i];
    result.area += c.pattern->area;
    ++result.cells_used;
    ++result.cell_histogram[c.pattern->cell];
    for (int leaf : c.leaves) account(leaf);
  };
  for (int o : network.outputs()) {
    account(o);
    result.delay = std::max(result.delay, arrive(o));
  }
  return result;
}

}  // namespace bridge::dag
