// DAGON-style logic-level technology mapping — the baseline DTAS argues
// against (paper §2): "technology mapping is done at the logic level on
// large flat designs, which requires DAG matching by detecting isomorphism
// of large subgraphs [Keut87]. This complicates the task of interfacing to
// a given cell library that may consist of large cells at the MSI and LSI
// level."
//
// This module implements the classical approach faithfully enough to
// compare: designs are flattened into a NAND2/INV canonical network, the
// DAG is partitioned into trees at multi-fanout points, and each tree is
// covered by dynamic programming over gate patterns expressed in the same
// canonical basis. MSI cells (4-bit adders, look-ahead generators) have no
// tree pattern, so the baseline cannot use them — which is exactly the
// paper's point.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cells/cell.h"

namespace bridge::dag {

enum class GateKind : std::uint8_t { kInput, kNand, kInv };

struct GateNode {
  GateKind kind = GateKind::kInput;
  int a = -1;
  int b = -1;
};

/// A combinational network in NAND2/INV canonical form.
class GateNetwork {
 public:
  int add_input();
  int add_nand(int a, int b);
  int add_inv(int a);
  void mark_output(int node) { outputs_.push_back(node); }

  const std::vector<GateNode>& nodes() const { return nodes_; }
  const std::vector<int>& outputs() const { return outputs_; }
  int size() const { return static_cast<int>(nodes_.size()); }

  /// Flat ripple-carry adder: the classic nine-NAND full adder per bit.
  static GateNetwork ripple_adder(int width);
  /// Flat equality comparator: XNOR-per-bit (4 NAND + INV) + AND tree.
  static GateNetwork equality_comparator(int width);

 private:
  std::vector<GateNode> nodes_;
  std::vector<int> outputs_;
};

/// A library-cell pattern over the canonical basis. Leaves carry variable
/// indices; repeated variables must bind to the same subject node (this is
/// what makes XOR-style patterns non-trivial to match).
struct PatternNode {
  enum class Kind : std::uint8_t { kLeaf, kNand, kInv };
  Kind kind = Kind::kLeaf;
  int var = 0;  // kLeaf
  std::unique_ptr<PatternNode> a;
  std::unique_ptr<PatternNode> b;
};

struct Pattern {
  std::string cell;
  double area = 0;
  double delay = 0;
  std::unique_ptr<PatternNode> tree;
  int inputs = 0;
};

/// Build the pattern set from the SSI gates of a library (INV, BUF, NAND2,
/// NAND3, NAND4, AND2, OR2, NOR2, XOR2, XNOR2 as available). MSI cells are
/// skipped: they are not trees over the canonical basis.
std::vector<Pattern> build_patterns(const cells::CellLibrary& library);

struct CoverResult {
  double area = 0;
  double delay = 0;
  int cells_used = 0;
  std::map<std::string, int> cell_histogram;
};

/// Partition the network into trees at fanout points and cover each tree
/// by dynamic programming (minimum area; delay reported for the chosen
/// cover). Throws Error if some node cannot be covered (pattern set must
/// include INV and NAND2).
CoverResult map_network(const GateNetwork& network,
                        const std::vector<Pattern>& patterns);

}  // namespace bridge::dag
