#include "obs/profile.h"

#include <cstdio>
#include <sstream>

namespace bridge::obs {

double Profile::total_ms() const {
  double total = 0.0;
  for (const auto& [phase, ms] : phases_ms) total += ms;
  return total;
}

double Profile::phase_ms(const std::string& phase) const {
  for (const auto& [p, ms] : phases_ms) {
    if (p == phase) return ms;
  }
  return 0.0;
}

long Profile::counter(const std::string& name) const {
  for (const auto& [c, v] : counters) {
    if (c == name) return v;
  }
  return 0;
}

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string Profile::to_json() const {
  std::ostringstream os;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", total_ms());
  os << "{\"name\": \"" << escape(name) << "\", \"total_ms\": " << buf
     << ", \"phases_ms\": {";
  bool first = true;
  for (const auto& [phase, ms] : phases_ms) {
    std::snprintf(buf, sizeof(buf), "%.6g", ms);
    os << (first ? "" : ", ") << "\"" << escape(phase) << "\": " << buf;
    first = false;
  }
  os << "}, \"counters\": {";
  first = true;
  for (const auto& [counter, v] : counters) {
    os << (first ? "" : ", ") << "\"" << escape(counter) << "\": " << v;
    first = false;
  }
  os << "}}";
  return os.str();
}

}  // namespace bridge::obs
