// Span tracer: RAII scopes emitting Chrome trace-event JSON.
//
// obs::Span marks a phase of work; when tracing is enabled the enclosing
// Tracer records one complete ("ph": "X") event per span with the
// executing thread's id, and the resulting file loads directly into
// chrome://tracing or https://ui.perfetto.dev — expand / evaluate /
// extract / emit phases, odometer runs, and ThreadPool task execution
// nest into one timeline per synthesis.
//
// Cost discipline: tracing is compiled in and gated at runtime. A Span
// with tracing *off* is one relaxed atomic load and a branch — no clock
// read, no allocation, no lock (the disabled-overhead guard in
// tests/obs_test.cpp pins this). With tracing on, each span costs two
// clock reads and one mutex-guarded vector push at destruction; the
// mutex keeps the tracer trivially ThreadSanitizer-clean, and nothing
// per-combination is ever spanned (instrumentation sits at phase /
// odometer-run / pool-task granularity).
//
// Enabling: set BRIDGE_TRACE=<path> in the environment before the first
// span (the trace is written at process exit), call
// Tracer::global().start(path) programmatically, or set
// dtas::SpaceOptions::trace_path on one synthesis.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "base/annotations.h"

namespace bridge::obs {

/// Tracing configuration resolved from the environment.
struct Config {
  bool enabled = false;
  std::string path;  // trace output file

  /// BRIDGE_TRACE=<path> enables tracing into <path>.
  static Config from_env();
};

class Tracer {
 public:
  /// Leaked singleton; applies Config::from_env() on first access, so a
  /// BRIDGE_TRACE run needs no code changes anywhere.
  static Tracer& global();

  /// The Span fast path: one relaxed load.
  static bool enabled() {
    return enabled_flag().load(std::memory_order_relaxed);
  }

  /// Begin collecting spans into `path`. Idempotent while already
  /// started (the first path wins); the file is written by stop() or at
  /// process exit.
  void start(const std::string& path);

  /// Disable, write the collected trace (if started), and clear. Safe to
  /// call when never started (no-op). Returns the path written, or "".
  std::string stop();

  /// Record one complete event (called by ~Span; times in nanoseconds on
  /// the tracer's clock). `name` and `cat` must be string literals (they
  /// are stored by pointer).
  void record(const char* name, const char* cat, std::int64_t start_ns,
              std::int64_t end_ns);

  /// Events buffered so far (diagnostics / tests).
  std::size_t event_count() const;

  /// Nanoseconds since the first use of the tracer clock (monotonic).
  static std::int64_t now_ns();

  /// Small stable id of the calling thread (1 = first thread seen).
  static int thread_id();

 private:
  static std::atomic<bool>& enabled_flag();

  struct Event {
    const char* name;
    const char* cat;
    int tid;
    std::int64_t start_ns;
    std::int64_t dur_ns;
  };

  void write_locked() BRIDGE_REQUIRES(mu_);

  mutable base::Mutex mu_;
  std::string path_ BRIDGE_GUARDED_BY(mu_);
  bool started_ BRIDGE_GUARDED_BY(mu_) = false;
  std::vector<Event> events_ BRIDGE_GUARDED_BY(mu_);
};

/// RAII phase scope. Constructed with tracing off it does nothing;
/// constructed with tracing on it records a complete event on
/// destruction. Spans on one thread nest by scoping, which is exactly
/// the nesting tools/trace_summary.py --check validates.
class Span {
 public:
  /// A null `name` makes the span a no-op — the idiom for conditional
  /// spans ("only the top-level recursion opens a phase scope").
  explicit Span(const char* name, const char* cat = "bridge") {
    if (!Tracer::enabled() || name == nullptr) return;  // branch-only off path
    name_ = name;
    cat_ = cat;
    start_ns_ = Tracer::now_ns();
  }
  /// Record the span now instead of at scope exit (idempotent) — for
  /// spans that end mid-scope, e.g. "extract" ending before "verify"
  /// starts so the phases never nest.
  void close() {
    if (name_ == nullptr) return;
    Tracer::global().record(name_, cat_, start_ns_, Tracer::now_ns());
    name_ = nullptr;
  }
  ~Span() { close(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::int64_t start_ns_ = 0;
};

}  // namespace bridge::obs
