// Per-operation profile: a structured phase/counter breakdown of one
// synthesis (or any other request-shaped unit of work).
//
// Where the tracer answers "what happened when, on which thread", a
// Profile answers "where did this one request's time go" in a form a
// caller can assert on, aggregate, or serialize: an ordered list of
// (phase, milliseconds) plus the counter deltas attributed to the
// request (cache hits, combinations evaluated, ...). dtas::Synthesizer
// fills one per synthesize call; benches serialize it into
// BENCH_*profile*.json and server mode will return it per request.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace bridge::obs {

struct Profile {
  std::string name;
  /// (phase, wall milliseconds), in execution order.
  std::vector<std::pair<std::string, double>> phases_ms;
  /// (counter, this-request delta), in registration order.
  std::vector<std::pair<std::string, long>> counters;

  void add_phase(std::string phase, double ms) {
    phases_ms.emplace_back(std::move(phase), ms);
  }
  void add_counter(std::string counter, long delta) {
    counters.emplace_back(std::move(counter), delta);
  }

  /// Sum of the recorded phases.
  double total_ms() const;

  /// Recorded phase time, 0 when absent.
  double phase_ms(const std::string& phase) const;

  /// Recorded counter delta, 0 when absent.
  long counter(const std::string& name) const;

  /// One JSON object: {"name": ..., "total_ms": ...,
  /// "phases_ms": {...}, "counters": {...}}.
  std::string to_json() const;
};

}  // namespace bridge::obs
