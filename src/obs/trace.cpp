#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace bridge::obs {

Config Config::from_env() {
  Config c;
  const char* env = std::getenv("BRIDGE_TRACE");
  if (env != nullptr && env[0] != '\0') {
    c.enabled = true;
    c.path = env;
  }
  return c;
}

std::atomic<bool>& Tracer::enabled_flag() {
  static std::atomic<bool> enabled{false};
  return enabled;
}

std::int64_t Tracer::now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                              epoch)
      .count();
}

int Tracer::thread_id() {
  static std::atomic<int> next{1};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace {
void write_trace_at_exit() { Tracer::global().stop(); }

// Force the singleton (and with it Config::from_env) to exist before
// main(): the Span fast path reads only the static enabled flag and never
// touches global(), so without this a BRIDGE_TRACE-only run would never
// apply the env config at all.
const bool kEnvConfigApplied = [] {
  (void)Tracer::global();
  return true;
}();
}  // namespace

Tracer& Tracer::global() {
  static Tracer* tracer = [] {
    auto* t = new Tracer;
    const Config cfg = Config::from_env();
    if (cfg.enabled) t->start(cfg.path);
    return t;
  }();
  return *tracer;
}

void Tracer::start(const std::string& path) {
  static std::once_flag exit_hook;
  base::LockGuard lock(mu_);
  if (started_) return;  // first path wins
  started_ = true;
  path_ = path;
  (void)now_ns();  // anchor the clock before the first span
  // Write even when the process never calls stop() (the BRIDGE_TRACE
  // workflow: run a bench, load the file).
  std::call_once(exit_hook, [] { std::atexit(write_trace_at_exit); });
  enabled_flag().store(true, std::memory_order_relaxed);
}

std::string Tracer::stop() {
  enabled_flag().store(false, std::memory_order_relaxed);
  base::LockGuard lock(mu_);
  if (!started_) return "";
  write_locked();
  started_ = false;
  std::string path = std::move(path_);
  path_.clear();
  events_.clear();
  return path;
}

void Tracer::record(const char* name, const char* cat, std::int64_t start_ns,
                    std::int64_t end_ns) {
  const int tid = thread_id();  // resolve outside the lock
  base::LockGuard lock(mu_);
  if (!started_) return;  // stopped between the Span's check and now
  events_.push_back(Event{name, cat, tid, start_ns, end_ns - start_ns});
}

std::size_t Tracer::event_count() const {
  base::LockGuard lock(mu_);
  return events_.size();
}

void Tracer::write_locked() {
  std::ofstream out(path_, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "obs: cannot write trace to %s\n", path_.c_str());
    return;
  }
  // Chrome trace-event format, complete events only. ts/dur are
  // microseconds; emitting three decimals keeps the tracer's nanosecond
  // resolution, which is what lets trace_summary.py check containment of
  // sub-microsecond spans exactly.
  out << "{\"traceEvents\": [\n";
  out << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
         "\"args\": {\"name\": \"bridge\"}}";
  char buf[256];
  for (const Event& e : events_) {
    std::snprintf(buf, sizeof(buf),
                  ",\n{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                  "\"pid\": 1, \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f}",
                  e.name, e.cat, e.tid,
                  static_cast<double>(e.start_ns) / 1000.0,
                  static_cast<double>(e.dur_ns) / 1000.0);
    out << buf;
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
  std::printf("obs: wrote %zu trace events to %s\n", events_.size(),
              path_.c_str());
}

}  // namespace bridge::obs
