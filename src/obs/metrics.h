// Process-wide metrics registry: named counters, gauges, and histograms.
//
// The scattered instrumentation that grew with each perf PR — SpaceStats,
// TemplateCache / ExtractionCache hit counters, ThreadPool queue depth —
// reports through here under stable dotted names
// ("dtas.expand.template_cache.hits", "base.thread_pool.tasks_executed",
// ...), so one snapshot answers "what did the whole process do" and a
// snapshot *diff* attributes work to one request even when several
// subsystems interleave. The per-subsystem stats structs stay (tests and
// per-run attribution use them); the registry is the unified process-wide
// view the server mode's request metrics will hang off.
//
// Hot-path discipline: reading or bumping a metric is a relaxed atomic
// operation — no locks, no allocation. The mutex in Registry guards only
// name registration (first lookup of a name) and snapshotting; hot code
// resolves its Counter& once (function-local static) and then increments
// lock-free. Per-combination loops must not even do that: they aggregate
// locally and add() once per run (see DesignSpace::run_plan_odometer).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/annotations.h"

namespace bridge::obs {

/// Monotonic event count. add() is a relaxed fetch_add.
class Counter {
 public:
  void add(long n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  long value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long> value_{0};
};

/// Instantaneous level with a high-water mark. set()/add() also fold the
/// new value into peak() (CAS loop, lock-free).
class Gauge {
 public:
  void set(long v) {
    value_.store(v, std::memory_order_relaxed);
    raise_peak(v);
  }
  void add(long d) { raise_peak(value_.fetch_add(d, std::memory_order_relaxed) + d); }
  long value() const { return value_.load(std::memory_order_relaxed); }
  long peak() const { return peak_.load(std::memory_order_relaxed); }
  void reset() {
    value_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  void raise_peak(long v) {
    long cur = peak_.load(std::memory_order_relaxed);
    while (v > cur &&
           !peak_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<long> value_{0};
  std::atomic<long> peak_{0};
};

/// Bucketed distribution of non-negative samples (latencies, depths).
/// Power-of-two buckets: bucket 0 holds samples in [0, 1], bucket i >= 1
/// holds (2^(i-1), 2^i]. record() is a handful of relaxed atomics plus a
/// CAS for the running sum; percentile() linearly interpolates within the
/// bucket where the cumulative count crosses the target rank, so the
/// answer is always inside that bucket's bounds (the guarantee the unit
/// tests pin against known distributions).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(double v);

  long count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;
  double max() const { return max_.load(std::memory_order_relaxed); }
  /// p in [0, 1]; 0 when empty.
  double percentile(double p) const;
  void reset();

  /// Lower/upper sample bound of bucket `i` (exposed for snapshots).
  static double bucket_lower(int i);
  static double bucket_upper(int i);
  static int bucket_of(double v);

  long bucket_count(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<long> buckets_[kBuckets] = {};
  std::atomic<long> count_{0};
  std::atomic<double> sum_{0.0};  // CAS-updated (fetch_add on double is C++20
                                  // but CAS keeps older libstdc++ happy)
  std::atomic<double> min_{0.0};  // valid only when count_ > 0
  std::atomic<double> max_{0.0};
  std::atomic<bool> has_extrema_{false};
};

/// Point-in-time copy of one histogram, diffable bucket-by-bucket.
struct HistogramSnapshot {
  long count = 0;
  double sum = 0.0;
  double min = 0.0;  // of the *live* histogram; not diffable
  double max = 0.0;
  std::vector<long> buckets;  // size Histogram::kBuckets

  /// Same interpolation as Histogram::percentile, over these buckets.
  double percentile(double p) const;
};

/// Point-in-time copy of every registered metric. diff() subtracts the
/// monotonic parts (counters, histogram counts/sums/buckets); gauges keep
/// the newer snapshot's value and peak (levels don't subtract).
struct Snapshot {
  std::map<std::string, long> counters;
  std::map<std::string, long> gauges;
  std::map<std::string, long> gauge_peaks;
  std::map<std::string, HistogramSnapshot> histograms;

  /// One JSON object: {"counters": {...}, "gauges": {...}, "histograms":
  /// {"name": {"count": n, "sum": s, "p50": ..., "p99": ...}, ...}}.
  std::string to_json() const;
};

/// `after` minus `before` on every monotonic metric (names missing from
/// `before` count as zero). The result attributes work to whatever ran
/// between the two snapshots.
Snapshot diff(const Snapshot& after, const Snapshot& before);

class Registry {
 public:
  /// Leaked singleton (same rationale as dtas::TemplateCache::global():
  /// metric references outlive any destruction order).
  static Registry& global();

  /// The named metric, created on first use. References stay valid for
  /// the process lifetime; callers cache them (function-local static) so
  /// the map lookup happens once per call site.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  Snapshot snapshot() const;
  /// Zero every registered metric. For tests and single-owner tools;
  /// concurrent increments during a reset are not attributed anywhere.
  void reset();

 private:
  // mu_ guards the name→metric maps only; the metrics themselves are
  // lock-free atomics, bumped without the lock (see the header comment).
  mutable base::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      BRIDGE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      BRIDGE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      BRIDGE_GUARDED_BY(mu_);
};

}  // namespace bridge::obs
