#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace bridge::obs {

namespace {

/// CAS-fold `v` into `target` under `better` (relaxed; extrema and sums
/// never order anything else).
template <class Cmp>
void fold(std::atomic<double>& target, double v, Cmp better) {
  double cur = target.load(std::memory_order_relaxed);
  while (better(v, cur) &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

int Histogram::bucket_of(double v) {
  if (!(v > 1.0)) return 0;  // <= 1, negatives, and NaN
  int b = 1;
  double bound = 2.0;
  while (v > bound && b < kBuckets - 1) {
    bound *= 2.0;
    ++b;
  }
  return b;
}

double Histogram::bucket_lower(int i) {
  return i <= 0 ? 0.0 : std::ldexp(1.0, i - 1);  // 2^(i-1)
}

double Histogram::bucket_upper(int i) {
  return i <= 0 ? 1.0 : std::ldexp(1.0, i);  // 2^i
}

void Histogram::record(double v) {
  buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
  if (!has_extrema_.exchange(true, std::memory_order_relaxed)) {
    // First sample seeds both extrema; racing seeds resolve via the folds
    // below (a second thread that lost the exchange still folds its v).
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  }
  fold(min_, v, [](double a, double b) { return a < b; });
  fold(max_, v, [](double a, double b) { return a > b; });
}

double Histogram::min() const {
  return has_extrema_.load(std::memory_order_relaxed)
             ? min_.load(std::memory_order_relaxed)
             : 0.0;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  has_extrema_.store(false, std::memory_order_relaxed);
}

namespace {

/// Shared percentile math: interpolate within the bucket where the
/// cumulative count crosses rank p * total.
double percentile_over(const long* buckets, int n, long total, double p) {
  if (total <= 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const double target = p * static_cast<double>(total);
  long cum = 0;
  for (int i = 0; i < n; ++i) {
    const long c = buckets[i];
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= target) {
      const double within =
          c > 0 ? (target - static_cast<double>(cum)) / static_cast<double>(c)
                : 0.0;
      const double lo = Histogram::bucket_lower(i);
      const double hi = Histogram::bucket_upper(i);
      const double clamped = within < 0.0 ? 0.0 : (within > 1.0 ? 1.0 : within);
      return lo + (hi - lo) * clamped;
    }
    cum += c;
  }
  return Histogram::bucket_upper(n - 1);
}

}  // namespace

double Histogram::percentile(double p) const {
  long counts[kBuckets];
  long total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  return percentile_over(counts, kBuckets, total, p);
}

double HistogramSnapshot::percentile(double p) const {
  long total = 0;
  for (long c : buckets) total += c;
  return percentile_over(buckets.data(), static_cast<int>(buckets.size()),
                         total, p);
}

Registry& Registry::global() {
  static Registry* registry = new Registry;
  return *registry;
}

Counter& Registry::counter(const std::string& name) {
  base::LockGuard lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  base::LockGuard lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  base::LockGuard lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

Snapshot Registry::snapshot() const {
  base::LockGuard lock(mu_);
  Snapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) {
    s.gauges[name] = g->value();
    s.gauge_peaks[name] = g->peak();
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.min = h->min();
    hs.max = h->max();
    hs.buckets.resize(Histogram::kBuckets);
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      hs.buckets[i] = h->bucket_count(i);
    }
    s.histograms[name] = std::move(hs);
  }
  return s;
}

void Registry::reset() {
  base::LockGuard lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Snapshot diff(const Snapshot& after, const Snapshot& before) {
  Snapshot d;
  for (const auto& [name, v] : after.counters) {
    auto it = before.counters.find(name);
    d.counters[name] = v - (it == before.counters.end() ? 0 : it->second);
  }
  d.gauges = after.gauges;
  d.gauge_peaks = after.gauge_peaks;
  for (const auto& [name, h] : after.histograms) {
    HistogramSnapshot dh = h;
    auto it = before.histograms.find(name);
    if (it != before.histograms.end()) {
      dh.count -= it->second.count;
      dh.sum -= it->second.sum;
      for (size_t i = 0;
           i < dh.buckets.size() && i < it->second.buckets.size(); ++i) {
        dh.buckets[i] -= it->second.buckets[i];
      }
    }
    d.histograms[name] = std::move(dh);
  }
  return d;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string fmt_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string Snapshot::to_json() const {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << v;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    auto pk = gauge_peaks.find(name);
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": {\"value\": " << v << ", \"peak\": "
       << (pk == gauge_peaks.end() ? v : pk->second) << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": {\"count\": " << h.count << ", \"sum\": " << fmt_num(h.sum)
       << ", \"min\": " << fmt_num(h.min) << ", \"max\": " << fmt_num(h.max)
       << ", \"p50\": " << fmt_num(h.percentile(0.5))
       << ", \"p99\": " << fmt_num(h.percentile(0.99)) << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

}  // namespace bridge::obs
