#include "netlist/netlist.h"

#include <sstream>

#include "base/diag.h"

namespace bridge::netlist {

using genus::PortDir;
using genus::PortSpec;

NetIndex Module::add_net(base::Symbol name, int width) {
  BRIDGE_CHECK(width >= 1, "net '" << name << "' width must be >= 1");
  BRIDGE_CHECK(net_names_.count(name) == 0,
               "duplicate net '" << name << "' in module " << name_);
  NetIndex idx = static_cast<NetIndex>(nets_.size());
  nets_.push_back(Net{name, width});
  net_names_[name] = idx;
  return idx;
}

NetIndex Module::add_port(base::Symbol name, PortDir dir, int width) {
  NetIndex idx = add_net(name, width);
  ports_.push_back(ModulePort{name, dir, width, idx});
  return idx;
}

Instance& Module::add_spec_instance(const std::string& name,
                                    const genus::ComponentSpec& spec,
                                    const std::string& ref_name) {
  Instance inst;
  inst.name = name;
  inst.spec = spec;
  inst.ref = RefKind::kSpec;
  inst.ref_name = ref_name.empty() ? spec.key() : ref_name;
  instances_.push_back(std::move(inst));
  return instances_.back();
}

Instance& Module::add_cell_instance(const std::string& name,
                                    const genus::ComponentSpec& cell_spec,
                                    const std::string& cell_name) {
  Instance inst;
  inst.name = name;
  inst.spec = cell_spec;
  inst.ref = RefKind::kCell;
  inst.ref_name = cell_name;
  instances_.push_back(std::move(inst));
  return instances_.back();
}

Instance& Module::add_module_instance(const std::string& name,
                                      const Module* child,
                                      const genus::ComponentSpec& spec) {
  BRIDGE_CHECK(child != nullptr, "null child module for instance " << name);
  Instance inst;
  inst.name = name;
  inst.spec = spec;
  inst.ref = RefKind::kModule;
  inst.ref_name = child->name();
  inst.module = child;
  instances_.push_back(std::move(inst));
  return instances_.back();
}

void Module::connect(Instance& inst, base::Symbol port, NetIndex net_idx,
                     int lo) {
  std::vector<PortSpec> storage;
  const auto& ports = instance_ports_ref(inst, storage);
  const PortSpec& p = genus::find_port(ports, port);
  const Net& n = net(net_idx);
  BRIDGE_CHECK(lo >= 0 && lo + p.width <= n.width,
               "slice [" << lo << ", " << lo + p.width << ") of net '"
                         << n.name << "' (width " << n.width
                         << ") out of range for port " << inst.name << "."
                         << port);
  inst.connections[port] = PortConn::to_net(net_idx, lo);
}

void Module::connect_const(Instance& inst, base::Symbol port,
                           std::uint64_t value) {
  std::vector<PortSpec> storage;
  const auto& ports = instance_ports_ref(inst, storage);
  const PortSpec& p = genus::find_port(ports, port);
  BRIDGE_CHECK(p.dir == PortDir::kIn,
               "constant on output port " << inst.name << "." << port);
  // Consumers read exactly `width` low bits of const_value (the simulator
  // shifts `const_value >> b` per port bit), so a stored value must not
  // carry bits past the port width, and ports past 64 bits cannot be
  // constant-driven at all — a raw store of e.g. ~0ULL onto a 4-bit port
  // used to leak the un-maskable high bits into width checks and reports.
  BRIDGE_CHECK(p.width <= 64, "constant on " << inst.name << "." << port
                                             << " (width " << p.width
                                             << "): ports wider than 64 bits "
                                                "cannot take a constant");
  const std::uint64_t mask =
      p.width >= 64 ? ~0ULL : ((1ULL << p.width) - 1ULL);
  inst.connections[port] = PortConn::constant(value & mask);
}

void Module::connect_replicated(Instance& inst, base::Symbol port,
                                NetIndex net_idx, int bit) {
  std::vector<PortSpec> storage;
  const auto& ports = instance_ports_ref(inst, storage);
  const PortSpec& p = genus::find_port(ports, port);
  BRIDGE_CHECK(p.dir == PortDir::kIn,
               "replication on output port " << inst.name << "." << port);
  BRIDGE_CHECK(bit >= 0 && bit < net(net_idx).width,
               "replicated bit " << bit << " out of net '"
                                 << net(net_idx).name << "'");
  inst.connections[port] = PortConn::replicated(net_idx, bit);
}

NetIndex Module::find_net(base::Symbol name) const {
  auto it = net_names_.find(name);
  return it == net_names_.end() ? kNoNet : it->second;
}

const Net& Module::net(NetIndex idx) const {
  BRIDGE_CHECK(idx >= 0 && idx < static_cast<NetIndex>(nets_.size()),
               "bad net index " << idx << " in module " << name_);
  return nets_[idx];
}

const ModulePort& Module::module_port(base::Symbol name) const {
  for (const auto& p : ports_) {
    if (p.name == name) return p;
  }
  throw Error("module " + name_ + " has no port '" + name.str() + "'");
}

std::vector<PortSpec> Module::instance_ports(const Instance& inst) {
  if (inst.ref == RefKind::kModule) {
    std::vector<PortSpec> out;
    for (const ModulePort& p : inst.module->module_ports()) {
      out.push_back(PortSpec{p.name, p.dir, p.width, genus::PortRole::kData});
    }
    return out;
  }
  return genus::spec_ports(inst.spec);
}

const std::vector<PortSpec>& Module::instance_ports_ref(
    const Instance& inst, std::vector<PortSpec>& storage) {
  if (inst.ref == RefKind::kModule) {
    storage = instance_ports(inst);
    return storage;
  }
  return genus::spec_ports(inst.spec);
}

std::size_t Module::approx_footprint_bytes() const {
  std::size_t bytes = sizeof(Module) + name_.capacity();
  bytes += nets_.capacity() * sizeof(Net);
  bytes += ports_.capacity() * sizeof(ModulePort);
  // unordered_map: count nodes + bucket array, both at a flat per-element
  // estimate (node header + pair + a bucket pointer).
  bytes += net_names_.size() * (sizeof(void*) * 3 + sizeof(base::Symbol) +
                                sizeof(NetIndex));
  for (const Instance& inst : instances_) {
    bytes += sizeof(Instance) + inst.name.capacity() +
             inst.ref_name.capacity() +
             inst.connections.size() * sizeof(ConnMap::value_type);
  }
  return bytes;
}

Module& Design::add_module(const std::string& name) {
  // The *const* lookup scans owned and referenced modules alike — a new
  // name must not collide with either kind.
  BRIDGE_CHECK(std::as_const(*this).find_module(name) == nullptr,
               "duplicate module '" << name << "' in design " << name_);
  modules_.emplace_back(name);
  order_.push_back(&modules_.back());
  if (top_ == nullptr) top_ = &modules_.back();
  return modules_.back();
}

void Design::reference_module(std::shared_ptr<const Module> m) {
  BRIDGE_CHECK(m != nullptr, "null shared module in design " << name_);
  for (const Module* existing : order_) {
    if (existing == m.get()) return;  // already registered
  }
  BRIDGE_CHECK(std::as_const(*this).find_module(m->name()) == nullptr,
               "duplicate module '" << m->name() << "' in design " << name_);
  order_.push_back(m.get());
  if (top_ == nullptr) top_ = m.get();
  shared_.push_back(std::move(m));
}

const Module* Design::find_module(const std::string& name) const {
  for (const Module* m : order_) {
    if (m->name() == name) return m;
  }
  return nullptr;
}

Module* Design::find_module(const std::string& name) {
  for (auto& m : modules_) {
    if (m.name() == name) return &m;
  }
  return nullptr;
}

int Design::count_leaf_instances(const Module& m) {
  int count = 0;
  for (const Instance& inst : m.instances()) {
    if (inst.ref == RefKind::kModule) {
      count += count_leaf_instances(*inst.module);
    } else {
      ++count;
    }
  }
  return count;
}

std::vector<std::string> check_module(const Module& m) {
  std::vector<std::string> issues;
  auto issue = [&issues](const std::string& text) { issues.push_back(text); };

  // Per-bit driver map for every net.
  std::vector<std::vector<int>> drivers(m.nets().size());
  for (size_t n = 0; n < m.nets().size(); ++n) {
    drivers[n].assign(m.nets()[n].width, 0);
  }
  std::vector<std::vector<int>> readers = drivers;  // same shape, zeroed

  // Module input ports drive their nets from outside.
  for (const ModulePort& p : m.module_ports()) {
    auto& bits = drivers[p.net];
    if (p.dir == PortDir::kIn) {
      for (auto& b : bits) ++b;
    }
  }

  for (const Instance& inst : m.instances()) {
    const auto ports = Module::instance_ports(inst);
    for (const PortSpec& p : ports) {
      auto it = inst.connections.find(p.name);
      if (it == inst.connections.end() ||
          it->second.kind == PortConn::Kind::kOpen) {
        if (p.dir == PortDir::kIn) {
          issue("unconnected input " + inst.name + "." + p.name.str());
        }
        continue;
      }
      const PortConn& c = it->second;
      if (c.kind == PortConn::Kind::kConst) {
        if (p.dir == PortDir::kOut) {
          issue("constant bound to output " + inst.name + "." + p.name.str());
        }
        continue;
      }
      if (c.net < 0 || c.net >= static_cast<NetIndex>(m.nets().size())) {
        issue("dangling net reference on " + inst.name + "." + p.name.str());
        continue;
      }
      const Net& net = m.nets()[c.net];
      if (c.replicate) {
        if (p.dir == PortDir::kOut || c.lo < 0 || c.lo >= net.width) {
          issue("bad replication on " + inst.name + "." + p.name.str());
        } else {
          ++readers[c.net][c.lo];
        }
        continue;
      }
      if (c.lo < 0 || c.lo + p.width > net.width) {
        issue("slice overflow: " + inst.name + "." + p.name.str() +
              " on net '" + net.name.str() + "'");
        continue;
      }
      for (int b = 0; b < p.width; ++b) {
        if (p.dir == PortDir::kOut) {
          ++drivers[c.net][c.lo + b];
        } else {
          ++readers[c.net][c.lo + b];
        }
      }
    }
    // Unknown connection names (typos in rules) are library bugs.
    for (const auto& [port_name, conn] : inst.connections) {
      (void)conn;
      bool known = false;
      for (const PortSpec& p : ports) {
        if (p.name == port_name) {
          known = true;
          break;
        }
      }
      if (!known) {
        issue("connection to unknown port " + inst.name + "." +
              port_name.str());
      }
    }
  }

  // Module outputs are read from outside.
  for (const ModulePort& p : m.module_ports()) {
    if (p.dir == PortDir::kOut) {
      for (auto& b : readers[p.net]) ++b;
    }
  }

  for (size_t n = 0; n < m.nets().size(); ++n) {
    const Net& net = m.nets()[n];
    for (int b = 0; b < net.width; ++b) {
      if (drivers[n][b] > 1) {
        std::ostringstream os;
        os << "net '" << net.name << "' bit " << b << " has " << drivers[n][b]
           << " drivers";
        issue(os.str());
      }
      if (drivers[n][b] == 0 && readers[n][b] > 0) {
        std::ostringstream os;
        os << "net '" << net.name << "' bit " << b << " is read but undriven";
        issue(os.str());
      }
    }
  }
  return issues;
}

}  // namespace bridge::netlist
