// Hierarchical structural netlists.
//
// Netlists appear in three places in the paper's flow (Figure 1):
//   1. High-level synthesis emits a netlist of GENUS component instances.
//   2. Each DTAS decomposition step is "a netlist [that] represents one
//      level of component decomposition; its modules represent connected
//      subcomponents".
//   3. DTAS output is "a set of hierarchical, library-specific netlists".
//
// One representation serves all three: a Module holds nets and instances;
// an instance references either a component specification (not yet mapped),
// a named library cell, or a child Module. Port connections may address a
// bit-slice of a net, so a 16-bit bus can feed four 4-bit adder slices
// without adapter components.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/symbol.h"
#include "genus/spec.h"

namespace bridge::netlist {

/// What an instance refers to.
enum class RefKind : std::uint8_t {
  kSpec,    // an unmapped component specification (DTAS input / templates)
  kCell,    // a technology library cell (leaves of mapped netlists)
  kModule,  // a child module (hierarchical mapped netlists)
};

/// Index of a net within its module.
using NetIndex = int;
inline constexpr NetIndex kNoNet = -1;

struct Net {
  base::Symbol name;
  int width = 1;
};

/// A port-to-net binding. `lo` selects the low bit of the net slice the
/// port attaches to; the slice width is the port's width. Constants model
/// data-book tie-offs (unused carry-in to 0, enable to 1). Open is only
/// legal for outputs. `replicate` fans a 1-bit net out across a multi-bit
/// input port (e.g. broadcasting a mode line to a w-wide XOR array).
struct PortConn {
  enum class Kind : std::uint8_t { kNet, kConst, kOpen };
  Kind kind = Kind::kOpen;
  NetIndex net = kNoNet;
  int lo = 0;
  std::uint64_t const_value = 0;
  bool replicate = false;

  static PortConn to_net(NetIndex n, int lo = 0) {
    return PortConn{Kind::kNet, n, lo, 0, false};
  }
  static PortConn replicated(NetIndex n, int bit = 0) {
    return PortConn{Kind::kNet, n, bit, 0, true};
  }
  static PortConn constant(std::uint64_t v) {
    return PortConn{Kind::kConst, kNoNet, 0, v, false};
  }
  static PortConn open() { return PortConn{}; }
};

class Module;

/// Port-connection map of an instance, keyed by interned port names.
/// Replaces the former std::map<std::string, PortConn>: lookups are linear
/// scans over a small flat vector with pointer-equality key compares (port
/// counts are tiny — a handful to ~70 for the widest gates), insertions
/// keep the entries in port-name *string* order, so iteration visits
/// connections in exactly the order the string-keyed map did — DRC
/// reports, evaluation schedules, and VHDL bindings stay bit-identical.
class ConnMap {
 public:
  using value_type = std::pair<base::Symbol, PortConn>;
  using const_iterator = std::vector<value_type>::const_iterator;

  const_iterator begin() const { return items_.begin(); }
  const_iterator end() const { return items_.end(); }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  const_iterator find(base::Symbol port) const {
    for (auto it = items_.begin(); it != items_.end(); ++it) {
      if (it->first == port) return it;
    }
    return items_.end();
  }
  std::size_t count(base::Symbol port) const {
    return find(port) == end() ? 0 : 1;
  }

  /// Insert-or-assign, preserving name-sorted order on insert. One
  /// lower_bound serves both the lookup and the insertion point.
  PortConn& operator[](base::Symbol port) {
    auto pos = std::lower_bound(
        items_.begin(), items_.end(), port,
        [](const value_type& v, base::Symbol p) { return v.first < p; });
    if (pos != items_.end() && pos->first == port) return pos->second;
    return items_.insert(pos, {port, PortConn{}})->second;
  }

 private:
  std::vector<value_type> items_;  // name-sorted (string order)
};

/// A component/cell/module instantiation within a module.
struct Instance {
  std::string name;
  /// The functional specification of this instance (always present: it is
  /// how DTAS recognizes and decomposes the instance).
  genus::ComponentSpec spec;
  RefKind ref = RefKind::kSpec;
  /// Cell or generated-component name for kCell/kSpec (report/VHDL label).
  std::string ref_name;
  /// Child module for kModule; owned by the enclosing Design.
  const Module* module = nullptr;
  ConnMap connections;
};

/// A module port: externally visible connection point bound to a net.
struct ModulePort {
  base::Symbol name;
  genus::PortDir dir = genus::PortDir::kIn;
  int width = 1;
  NetIndex net = kNoNet;
};

/// One level of structural hierarchy.
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Create a net; names must be unique within the module.
  NetIndex add_net(base::Symbol name, int width);

  /// Create a port and its backing net in one step.
  NetIndex add_port(base::Symbol name, genus::PortDir dir, int width);

  /// Add an instance bound to an unmapped specification.
  Instance& add_spec_instance(const std::string& name,
                              const genus::ComponentSpec& spec,
                              const std::string& ref_name = "");

  /// Add an instance of a technology cell.
  Instance& add_cell_instance(const std::string& name,
                              const genus::ComponentSpec& cell_spec,
                              const std::string& cell_name);

  /// Add an instance of a child module (hierarchical netlists).
  Instance& add_module_instance(const std::string& name, const Module* child,
                                const genus::ComponentSpec& spec);

  /// Bind `port` of `inst` to a slice of `net` starting at bit `lo`.
  void connect(Instance& inst, base::Symbol port, NetIndex net, int lo = 0);
  /// Bind `port` of `inst` to a constant value. The value is masked to the
  /// port width (ports wider than 64 bits cannot take a constant); see
  /// PortConn::const_value consumers, which read exactly `width` low bits.
  void connect_const(Instance& inst, base::Symbol port, std::uint64_t value);
  /// Broadcast one bit of `net` (bit index `bit`) across every bit of a
  /// multi-bit input port.
  void connect_replicated(Instance& inst, base::Symbol port, NetIndex net,
                          int bit = 0);

  NetIndex find_net(base::Symbol name) const;  // kNoNet when absent
  const Net& net(NetIndex idx) const;
  int net_width(NetIndex idx) const { return net(idx).width; }

  const std::vector<Net>& nets() const { return nets_; }
  const std::vector<ModulePort>& module_ports() const { return ports_; }
  const ModulePort& module_port(base::Symbol name) const;
  const std::deque<Instance>& instances() const { return instances_; }
  std::deque<Instance>& instances() { return instances_; }

  /// The port list an instance exposes, derived from its reference:
  /// child-module ports for kModule, spec_ports(spec) otherwise.
  static std::vector<genus::PortSpec> instance_ports(const Instance& inst);

  /// Allocation-free variant: returns the cached spec_ports list directly
  /// for spec/cell instances; only kModule instances materialize into
  /// `storage`. Use on paths that resolve ports per connection.
  static const std::vector<genus::PortSpec>& instance_ports_ref(
      const Instance& inst, std::vector<genus::PortSpec>& storage);

  /// Rough resident size of this module in bytes (containers, strings,
  /// connection maps). An estimate, not an audit: cache budget accounting
  /// needs proportionality across modules, not malloc-exact numbers.
  std::size_t approx_footprint_bytes() const;

 private:
  std::string name_;
  std::vector<Net> nets_;
  std::vector<ModulePort> ports_;
  std::deque<Instance> instances_;  // deque: stable references on growth
  std::unordered_map<base::Symbol, NetIndex> net_names_;
};

/// A collection of modules with stable addresses. A design either *owns* a
/// module (add_module — the mutable, build-in-place path) or *references*
/// an immutable module owned elsewhere (reference_module — the shared
/// path: one materialized subtree serving many alternative designs, kept
/// alive here by shared_ptr). Both kinds appear in module_order() in
/// registration order, which is the order emitters walk.
class Design {
 public:
  explicit Design(std::string name = "design") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  Module& add_module(const std::string& name);

  /// Register a shared immutable module. The design co-owns it (so the
  /// hierarchy outlives whatever cache produced it) and it takes its place
  /// in module_order(). Registering the same module twice is a no-op;
  /// registering a second module with the name of an existing one throws.
  void reference_module(std::shared_ptr<const Module> m);

  const Module* find_module(const std::string& name) const;
  /// Owned modules only: referenced modules are immutable by contract.
  Module* find_module(const std::string& name);

  void set_top(const Module* m) { top_ = m; }
  const Module* top() const { return top_; }

  const std::deque<Module>& modules() const { return modules_; }

  /// Every module of the design — owned and referenced alike — in
  /// registration order.
  const std::vector<const Module*>& module_order() const { return order_; }

  /// The referenced (shared, immutable) modules and their co-owning
  /// handles — what address-keyed memo layers (lint::Cache) track
  /// weakly so their entries can never dangle onto a recycled address.
  const std::vector<std::shared_ptr<const Module>>& shared_modules() const {
    return shared_;
  }

  /// Count leaf (cell) instances recursively from `m`, following module
  /// references; each module body is counted once per instantiation.
  static int count_leaf_instances(const Module& m);

 private:
  std::string name_;
  std::deque<Module> modules_;  // deque: stable addresses
  std::vector<std::shared_ptr<const Module>> shared_;  // co-owned, immutable
  std::vector<const Module*> order_;  // owned + shared, registration order
  const Module* top_ = nullptr;
};

/// Structural design-rule check. Returns human-readable violations:
/// unconnected inputs, width overflows, multiply-driven net bits,
/// undriven-but-read net bits, instances reading and writing the same net.
std::vector<std::string> check_module(const Module& m);

}  // namespace bridge::netlist
