// Structural netlist linter: static checks over netlist::Design/Module.
//
// The extraction and cache layers promise well-formed netlists — every
// cell input driven, widths matched, no multi-driven bits, hierarchy
// references resolved, no combinational loops — and PRs 4/5 each shipped
// a bug (floating matched-cell inputs, const-tie width UB, module-name
// collisions) that a static checker would have caught at the source.
// This linter is that checker: a read-only pass returning structured
// diagnostics, cheap enough to run on every extracted alternative.
//
// Wired in at three layers:
//  - dtas::SpaceOptions::verify_designs — every front post-extraction,
//    assert-clean (throws on errors); default-on in Debug/sanitizer
//    builds;
//  - api::RequestOptions::verify / the server `verify` flag — returns
//    the diagnostics in SynthesisResult;
//  - tools/lint_designs.py over examples/lint_designs — the CI gate
//    linting every front the bench smoke emits.
//
// The linter never mutates anything: fronts, descriptions, and VHDL are
// byte-identical with every gate on or off.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "genus/spec.h"
#include "netlist/netlist.h"

namespace bridge::lint {

enum class Severity { kError, kWarning };

const char* severity_name(Severity s);

/// One finding. `check` is a stable kebab-case id (the thing tests and
/// tooling key on); `object` names the net, instance, or instance.port
/// inside `module` that the finding is about.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string check;
  std::string module;
  std::string object;
  std::string message;

  /// "error[multi-driven-net] mod/net: message" — the wire/report form.
  std::string to_string() const;
};

class Cache;

/// Module-local checks:
///  - multi-driven-net: a net bit with more than one driver
///  - undriven-net: a net bit read by an input but driven by nothing
///  - floating-input: a cell/spec/module instance input port left
///    unconnected or open (outputs may be open — dropped results are
///    legal; inputs must never float)
///  - width-mismatch: a net-slice binding that misses the net
///    (lo < 0 or lo + port width > net width), misuse of replication
///    (on an output, or a bad source bit)
///  - unknown-port: a connection naming a port the instance does not have
///  - dangling-net: a connection whose net index is outside the module
///  - const-tie: a constant bound to an output port, a constant carrying
///    bits past the port width, or a constant on a port wider than 64
///  - dangling-module-ref: a module-reference instance with a null child
///    (lint_design additionally resolves references against the design)
///  - comb-loop: a combinational cycle through instances (sequential
///    kinds break paths; edges are net-bit-granular, so bit-sliced
///    ripple structures through one bus never false-positive)
///  - name-collision: two nets (or two instances) whose VHDL-sanitized
///    names collide case-insensitively — distinct in the netlist, one
///    identifier in emitted VHDL
///  - illegal-name: an empty net/instance name, or a module whose
///    sanitized name is empty or a VHDL reserved word
std::vector<Diagnostic> lint_module(const netlist::Module& m);

/// Every module of `d` (module_order) through lint_module, plus the
/// design-level checks: module-reference instances must point at modules
/// registered in this design (dangling-module-ref), and module names must
/// not collide case-insensitively after VHDL sanitization
/// (name-collision).
std::vector<Diagnostic> lint_design(const netlist::Design& d);

/// lint_design with the module-local work served from (and published to)
/// `cache` — the output is identical to the cache-less overload, only the
/// per-module passes are memoized. Use one cache across a whole front
/// (the alternatives share almost every module; see
/// dtas::ExtractionCache), or across a session of fronts.
std::vector<Diagnostic> lint_design(const netlist::Design& d, Cache& cache);

/// Memoizes the per-module linter passes by module address — the
/// vhdl::EmissionCache pattern: the alternatives of a front (and the
/// fronts of a warm session) share almost every module, and shared
/// modules are immutable, so each distinct module is linted once per
/// cache lifetime instead of once per design per verify pass. Entries
/// hold a *weak* handle on their module (taken from the owner handle
/// passed to module_entry — lint_design finds it in
/// Design::shared_modules): a verdict is served only while the module
/// is still alive, so it can never dangle onto a recycled address —
/// if the module was freed (e.g. a byte-budgeted dtas::ExtractionCache
/// evicted it and no design holds it), the expired handle turns the
/// lookup into a miss and the entry is refilled in place. Holding weak
/// handles also means this cache never blocks eviction. Design-*owned*
/// modules have no owner handle and are deliberately not memoized by
/// lint_design (their addresses die with the design).
class Cache {
 public:
  struct Entry {
    std::vector<Diagnostic> diags;  // lint_module(m)
    /// Module-reference instances and their (non-null) children, for the
    /// design-level membership check.
    std::vector<std::pair<const netlist::Instance*, const netlist::Module*>>
        refs;
    std::string identity;  // emitted identity of the module name
    /// Validity token: while this is non-expired, the module keyed at
    /// &m is still the module this entry describes (a live shared_ptr
    /// means nothing else can occupy the address).
    std::weak_ptr<const netlist::Module> alive;
  };

  /// Memoized lint_module(m) plus the design-level inputs (module
  /// references, emitted name identity). `owner` must co-own `m`; the
  /// entry keeps only a weak handle on it.
  const Entry& module_entry(const netlist::Module& m,
                            const std::shared_ptr<const netlist::Module>& owner);

  void clear() { memo_.clear(); }
  std::size_t size() const { return memo_.size(); }

 private:
  std::unordered_map<const netlist::Module*, Entry> memo_;
};

/// Rule-template checker, run over TemplateCache products
/// (dtas::CompiledTemplate: the template module + its distinct child
/// specs). Validates the template against its spec list:
///  - every spec-reference instance's spec appears in `child_specs`
///    (template-spec-mismatch)
///  - every entry of `child_specs` is instantiated at least once
///    (unused-child-spec)
///  - every child instance binds each input port of its spec, with the
///    bound net slice matching the port's width, and never binds a
///    constant or net-drive onto a port against its direction — i.e. the
///    structural lint_module checks, scoped to the template
/// Returns lint_module(tmpl) plus the spec-membership findings.
std::vector<Diagnostic> check_template(
    const netlist::Module& tmpl,
    const std::vector<genus::ComponentSpec>& child_specs);

/// True when any diagnostic is error-severity.
bool has_errors(const std::vector<Diagnostic>& diags);

/// All diagnostics joined as to_string() lines ("" when clean).
std::string render(const std::vector<Diagnostic>& diags);

}  // namespace bridge::lint
