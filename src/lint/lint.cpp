#include "lint/lint.h"

#include <algorithm>
#include <sstream>
#include <string_view>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "base/strutil.h"
#include "genus/kind.h"

namespace bridge::lint {

using genus::PortDir;
using genus::PortSpec;
using netlist::Design;
using netlist::Instance;
using netlist::Module;
using netlist::ModulePort;
using netlist::Net;
using netlist::NetIndex;
using netlist::PortConn;
using netlist::RefKind;

namespace {

void emit(std::vector<Diagnostic>& out, Severity sev, const char* check,
          const Module& m, std::string object, std::string message) {
  Diagnostic d;
  d.severity = sev;
  d.check = check;
  d.module = m.name();
  d.object = std::move(object);
  d.message = std::move(message);
  out.push_back(std::move(d));
}

/// VHDL-87 reserved words (lowercase). Only module names are screened:
/// entity/architecture identifiers come straight from module names, while
/// port and signal names named after reserved words ("OUT" is the standard
/// result-port name across spec_ports) are disambiguated by sanitization
/// context and accepted by the emitter today.
bool is_vhdl_reserved(const std::string& lower) {
  static const std::unordered_set<std::string_view> kWords = {
      "abs",       "access",    "after",     "alias",     "all",
      "and",       "architecture", "array",  "assert",    "attribute",
      "begin",     "block",     "body",      "buffer",    "bus",
      "case",      "component", "configuration", "constant", "disconnect",
      "downto",    "else",      "elsif",     "end",       "entity",
      "exit",      "file",      "for",       "function",  "generate",
      "generic",   "guarded",   "if",        "in",        "inout",
      "is",        "label",     "library",   "linkage",   "loop",
      "map",       "mod",       "nand",      "new",       "next",
      "nor",       "not",       "null",      "of",        "on",
      "open",      "or",        "others",    "out",       "package",
      "port",      "procedure", "process",   "range",     "record",
      "register",  "rem",       "report",    "return",    "select",
      "severity",  "signal",    "subtype",   "then",      "to",
      "transport", "type",      "units",     "until",     "use",
      "variable",  "wait",      "when",      "while",     "with",
      "xor",
  };
  return kWords.count(lower) != 0;
}

/// The identifier two netlist names collide under: VHDL is
/// case-insensitive and the emitter sanitizes, so distinct netlist names
/// can land on one VHDL identifier.
std::string emitted_identity(const std::string& name) {
  std::string id = sanitize_identifier(name);
  for (char& c : id) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return id;
}

/// Report name collisions within one namespace (`what` = "net",
/// "instance", "module"). `names` preserves declaration order so the
/// diagnostic always lands on the *second* declaration and names the
/// first.
void check_name_collisions(std::vector<Diagnostic>& out, const Module& m,
                           const char* what,
                           const std::vector<std::string>& names) {
  std::unordered_map<std::string, const std::string*> seen;
  for (const std::string& name : names) {
    if (name.empty()) {
      emit(out, Severity::kError, "illegal-name", m, "",
           std::string("empty ") + what + " name");
      continue;
    }
    const std::string id = emitted_identity(name);
    auto [it, inserted] = seen.emplace(id, &name);
    if (!inserted && *it->second != name) {
      emit(out, Severity::kError, "name-collision", m, name,
           std::string(what) + " '" + name + "' collides with '" +
               *it->second + "' (both emit as VHDL identifier '" + id + "')");
    }
  }
}

/// Per-instance connection view with resolved directions (the same shape
/// the evaluator builds; see dtas::DesignSpace::topo_order). Instances
/// whose structural pass found dangling or overflowing bindings are
/// excluded from the loop graph — their edges are meaningless.
struct InstView {
  bool combinational = false;
  bool valid = true;  // structural pass found no bad bindings
  // (port name, conn, width), split by direction. Only net bindings.
  std::vector<std::tuple<base::Symbol, PortConn, int>> ins;
  std::vector<std::tuple<base::Symbol, PortConn, int>> outs;
};

/// Combinational-cycle detection over (instance, output port) units with
/// net-bit-granular edges and genus::output_depends_on false-path
/// filtering — the exact dependency model of DesignSpace::topo_order and
/// TimingPlan, so anything those schedule, this passes (carry-lookahead
/// P/G trees stay acyclic). Units surviving both a forward and a backward
/// Kahn elimination lie on (or between) cycles; they are reported as one
/// diagnostic naming the involved instances.
void check_comb_loops(std::vector<Diagnostic>& out, const Module& m,
                      const std::vector<InstView>& views,
                      const std::vector<int>& net_off) {
  const auto& insts = m.instances();
  struct Unit {
    int instance;
    base::Symbol port;
  };
  std::vector<Unit> units;
  for (std::size_t i = 0; i < views.size(); ++i) {
    const InstView& v = views[i];
    if (!v.combinational || !v.valid) continue;
    for (const auto& [port, conn, width] : v.outs) {
      (void)conn;
      (void)width;
      units.push_back(Unit{static_cast<int>(i), port});
    }
  }
  if (units.empty()) return;

  // Driver unit per net bit (-1: external / sequential / constant).
  std::vector<int> bit_driver(net_off.back(), -1);
  for (std::size_t u = 0; u < units.size(); ++u) {
    for (const auto& [port, conn, width] : views[units[u].instance].outs) {
      if (port != units[u].port) continue;
      for (int b = 0; b < width; ++b) {
        bit_driver[net_off[conn.net] + conn.lo + b] = static_cast<int>(u);
      }
    }
  }

  std::vector<std::vector<int>> succs(units.size());
  std::vector<std::vector<int>> preds(units.size());
  for (std::size_t u = 0; u < units.size(); ++u) {
    const Instance& inst = insts[units[u].instance];
    std::vector<int> ps;
    for (const auto& [in_port, conn, width] : views[units[u].instance].ins) {
      if (!genus::output_depends_on(inst.spec, units[u].port, in_port)) {
        continue;
      }
      const int span = conn.replicate ? 1 : width;
      for (int b = 0; b < span; ++b) {
        const int d = bit_driver[net_off[conn.net] + conn.lo + b];
        if (d >= 0 && d != static_cast<int>(u)) ps.push_back(d);
      }
    }
    std::sort(ps.begin(), ps.end());
    ps.erase(std::unique(ps.begin(), ps.end()), ps.end());
    for (int p : ps) succs[p].push_back(static_cast<int>(u));
    preds[u] = std::move(ps);
  }

  // Kahn in each direction; a unit eliminated by neither sits on a cycle
  // (or on a path connecting two cycles).
  auto eliminate = [&](const std::vector<std::vector<int>>& deg_edges,
                       const std::vector<std::vector<int>>& out_edges) {
    std::vector<int> degree(units.size(), 0);
    std::vector<int> ready;
    for (std::size_t u = 0; u < units.size(); ++u) {
      degree[u] = static_cast<int>(deg_edges[u].size());
      if (degree[u] == 0) ready.push_back(static_cast<int>(u));
    }
    std::vector<bool> removed(units.size(), false);
    while (!ready.empty()) {
      const int u = ready.back();
      ready.pop_back();
      removed[u] = true;
      for (int s : out_edges[u]) {
        if (--degree[s] == 0) ready.push_back(s);
      }
    }
    return removed;
  };
  const std::vector<bool> fwd = eliminate(preds, succs);
  const std::vector<bool> bwd = eliminate(succs, preds);

  std::vector<std::string> cyclic;
  for (std::size_t u = 0; u < units.size(); ++u) {
    if (!fwd[u] && !bwd[u]) cyclic.push_back(insts[units[u].instance].name);
  }
  if (cyclic.empty()) return;
  std::sort(cyclic.begin(), cyclic.end());
  cyclic.erase(std::unique(cyclic.begin(), cyclic.end()), cyclic.end());
  std::ostringstream msg;
  msg << "combinational cycle through " << cyclic.size() << " instance"
      << (cyclic.size() == 1 ? "" : "s") << ":";
  for (const std::string& name : cyclic) msg << " " << name;
  emit(out, Severity::kError, "comb-loop", m, cyclic.front(), msg.str());
}

}  // namespace

const char* severity_name(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

std::string Diagnostic::to_string() const {
  std::string s = severity_name(severity);
  s += "[";
  s += check;
  s += "] ";
  s += module;
  if (!object.empty()) {
    s += "/";
    s += object;
  }
  s += ": ";
  s += message;
  return s;
}

std::vector<Diagnostic> lint_module(const Module& m) {
  std::vector<Diagnostic> out;

  // Module name legality (entity identifier).
  {
    const std::string id = emitted_identity(m.name());
    if (m.name().empty()) {
      emit(out, Severity::kError, "illegal-name", m, "",
           "empty module name");
    } else if (is_vhdl_reserved(id)) {
      emit(out, Severity::kError, "illegal-name", m, m.name(),
           "module name sanitizes to VHDL reserved word '" + id + "'");
    }
  }

  // Per-bit driver/reader maps (the check_module structural model, with
  // structured output), flattened into two arrays over a shared per-net
  // offset table — the linter runs on every front under verify_designs,
  // so per-net inner vectors are allocation weight it can't afford.
  std::vector<int> net_off(m.nets().size() + 1, 0);
  for (std::size_t n = 0; n < m.nets().size(); ++n) {
    net_off[n + 1] = net_off[n] + m.nets()[n].width;
  }
  std::vector<int> drivers(net_off.back(), 0);
  std::vector<int> readers(net_off.back(), 0);

  for (const ModulePort& p : m.module_ports()) {
    const int off = net_off[p.net];
    const int w = m.nets()[p.net].width;
    for (int b = 0; b < w; ++b) {
      ++(p.dir == PortDir::kIn ? drivers : readers)[off + b];
    }
  }

  std::vector<InstView> views(m.instances().size());
  std::vector<genus::PortSpec> storage;
  std::size_t inst_index = 0;
  for (const Instance& inst : m.instances()) {
    InstView& view = views[inst_index++];
    if (inst.ref == RefKind::kModule && inst.module == nullptr) {
      emit(out, Severity::kError, "dangling-module-ref", m, inst.name,
           "module instance with null child module");
      view.valid = false;
      continue;
    }
    view.combinational = !genus::kind_is_sequential(inst.spec.kind);
    const auto& ports = Module::instance_ports_ref(inst, storage);
    for (const PortSpec& p : ports) {
      // Built only on the diagnostic paths — the clean path is the one
      // every front pays for.
      const auto obj = [&] { return inst.name + "." + p.name.str(); };
      auto it = inst.connections.find(p.name);
      if (it == inst.connections.end() ||
          it->second.kind == PortConn::Kind::kOpen) {
        if (p.dir == PortDir::kIn) {
          emit(out, Severity::kError, "floating-input", m, obj(),
               "input port is unconnected");
        }
        continue;
      }
      const PortConn& c = it->second;
      if (c.kind == PortConn::Kind::kConst) {
        if (p.dir == PortDir::kOut) {
          emit(out, Severity::kError, "const-tie", m, obj(),
               "constant bound to an output port");
        } else if (p.width > 64) {
          emit(out, Severity::kError, "const-tie", m, obj(),
               "constant on a port wider than 64 bits");
        } else if (p.width < 64 && (c.const_value >> p.width) != 0) {
          std::ostringstream msg;
          msg << "constant 0x" << std::hex << c.const_value << std::dec
              << " does not fit the " << p.width << "-bit port";
          emit(out, Severity::kError, "const-tie", m, obj(), msg.str());
        }
        continue;
      }
      if (c.net < 0 || c.net >= static_cast<NetIndex>(m.nets().size())) {
        emit(out, Severity::kError, "dangling-net", m, obj(),
             "connection references a net outside the module");
        view.valid = false;
        continue;
      }
      const Net& net = m.nets()[c.net];
      if (c.replicate) {
        if (p.dir == PortDir::kOut) {
          emit(out, Severity::kError, "width-mismatch", m, obj(),
               "replication is only legal on input ports");
          view.valid = false;
        } else if (c.lo < 0 || c.lo >= net.width) {
          std::ostringstream msg;
          msg << "replicated source bit " << c.lo << " is outside net '"
              << net.name << "' (width " << net.width << ")";
          emit(out, Severity::kError, "width-mismatch", m, obj(), msg.str());
          view.valid = false;
        } else {
          ++readers[net_off[c.net] + c.lo];
          view.ins.emplace_back(p.name, c, p.width);
        }
        continue;
      }
      if (c.lo < 0 || c.lo + p.width > net.width) {
        std::ostringstream msg;
        msg << "slice [" << c.lo << ", " << c.lo + p.width
            << ") of the " << p.width << "-bit port overflows net '"
            << net.name << "' (width " << net.width << ")";
        emit(out, Severity::kError, "width-mismatch", m, obj(), msg.str());
        view.valid = false;
        continue;
      }
      int* counts = (p.dir == PortDir::kOut ? drivers : readers).data();
      for (int b = 0; b < p.width; ++b) {
        ++counts[net_off[c.net] + c.lo + b];
      }
      if (p.dir == PortDir::kOut) {
        view.outs.emplace_back(p.name, c, p.width);
      } else {
        view.ins.emplace_back(p.name, c, p.width);
      }
    }
    for (const auto& [port_name, conn] : inst.connections) {
      (void)conn;
      bool known = false;
      for (const PortSpec& p : ports) {
        if (p.name == port_name) {
          known = true;
          break;
        }
      }
      if (!known) {
        emit(out, Severity::kError, "unknown-port", m,
             inst.name + "." + port_name.str(),
             "connection to a port the instance does not have");
      }
    }
  }

  // Per-net driver verdicts, aggregated per net (first offending bit in
  // the message) so wide buses yield one diagnostic, not one per bit.
  for (std::size_t n = 0; n < m.nets().size(); ++n) {
    const Net& net = m.nets()[n];
    const int off = net_off[n];
    int multi_bit = -1, multi_count = 0, multi_drivers = 0;
    int undriven_bit = -1, undriven_count = 0;
    for (int b = 0; b < net.width; ++b) {
      if (drivers[off + b] > 1) {
        if (multi_bit < 0) {
          multi_bit = b;
          multi_drivers = drivers[off + b];
        }
        ++multi_count;
      }
      if (drivers[off + b] == 0 && readers[off + b] > 0) {
        if (undriven_bit < 0) undriven_bit = b;
        ++undriven_count;
      }
    }
    if (multi_bit >= 0) {
      std::ostringstream msg;
      msg << "bit " << multi_bit << " has " << multi_drivers << " drivers";
      if (multi_count > 1) msg << " (" << multi_count << " bits affected)";
      emit(out, Severity::kError, "multi-driven-net", m, net.name.str(),
           msg.str());
    }
    if (undriven_bit >= 0) {
      std::ostringstream msg;
      msg << "bit " << undriven_bit << " is read but driven by nothing";
      if (undriven_count > 1) {
        msg << " (" << undriven_count << " bits affected)";
      }
      emit(out, Severity::kError, "undriven-net", m, net.name.str(),
           msg.str());
    }
  }

  check_comb_loops(out, m, views, net_off);

  {
    std::vector<std::string> names;
    names.reserve(m.nets().size());
    for (const Net& net : m.nets()) names.push_back(net.name.str());
    check_name_collisions(out, m, "net", names);
    names.clear();
    for (const Instance& inst : m.instances()) names.push_back(inst.name);
    check_name_collisions(out, m, "instance", names);
  }

  return out;
}

namespace {

/// The per-module work lint_design needs, computed once: diagnostics,
/// module references, emitted name identity.
void fill_entry(Cache::Entry& e, const Module& m) {
  e.diags = lint_module(m);
  e.identity = emitted_identity(m.name());
  for (const Instance& inst : m.instances()) {
    if (inst.ref == RefKind::kModule && inst.module != nullptr) {
      e.refs.emplace_back(&inst, inst.module);
    }
  }
}

}  // namespace

const Cache::Entry& Cache::module_entry(
    const netlist::Module& m,
    const std::shared_ptr<const netlist::Module>& owner) {
  auto [it, inserted] = memo_.try_emplace(&m);
  Entry& e = it->second;
  // A hit is only a hit while the module the entry described is still
  // alive — an expired token means the address was freed (and possibly
  // recycled) since, so recompute in place.
  if (!inserted && !e.alive.expired()) return e;
  e = Entry{};
  fill_entry(e, m);
  e.alive = owner;
  return e;
}

std::vector<Diagnostic> lint_design(const Design& d) {
  Cache cache;
  return lint_design(d, cache);
}

std::vector<Diagnostic> lint_design(const Design& d, Cache& cache) {
  std::vector<Diagnostic> out;
  std::unordered_set<const Module*> members(d.module_order().begin(),
                                            d.module_order().end());
  // Shared modules are memoizable (the design hands us their co-owning
  // handles, which the cache tracks weakly); design-owned modules die
  // with the design, so their work is computed fresh into local storage.
  std::unordered_map<const Module*, const std::shared_ptr<const Module>*>
      owners;
  owners.reserve(d.shared_modules().size());
  for (const std::shared_ptr<const Module>& sp : d.shared_modules()) {
    owners.emplace(sp.get(), &sp);
  }
  std::vector<Cache::Entry> local;  // stable: reserved to worst case
  local.reserve(d.module_order().size());
  // Entry per module_order position, so the name-collision pass below
  // can reuse the memoized identities.
  std::vector<const Cache::Entry*> entries;
  entries.reserve(d.module_order().size());
  for (const Module* m : d.module_order()) {
    const Cache::Entry* ep;
    auto owner = owners.find(m);
    if (owner != owners.end()) {
      ep = &cache.module_entry(*m, *owner->second);
    } else {
      local.emplace_back();
      fill_entry(local.back(), *m);
      ep = &local.back();
    }
    const Cache::Entry& e = *ep;
    entries.push_back(&e);
    out.insert(out.end(), e.diags.begin(), e.diags.end());
    for (const auto& [inst, child] : e.refs) {
      if (members.count(child) == 0) {
        emit(out, Severity::kError, "dangling-module-ref", *m, inst->name,
             "instance references module '" + child->name() +
                 "', which is not part of the design");
      }
    }
  }
  // Module-name collisions across the design, against the memoized
  // emitted identities (check_name_collisions semantics: the diagnostic
  // lands on the second declaration and names the first).
  if (!d.module_order().empty()) {
    const Module& ctx = *d.module_order().front();
    std::unordered_map<std::string_view, const std::string*> seen;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const std::string& name = d.module_order()[i]->name();
      if (name.empty()) {
        emit(out, Severity::kError, "illegal-name", ctx, "",
             "empty module name");
        continue;
      }
      const std::string& id = entries[i]->identity;
      auto [it, inserted] = seen.emplace(id, &name);
      if (!inserted && *it->second != name) {
        emit(out, Severity::kError, "name-collision", ctx, name,
             std::string("module '") + name + "' collides with '" +
                 *it->second + "' (both emit as VHDL identifier '" + id +
                 "')");
      }
    }
  }
  return out;
}

std::vector<Diagnostic> check_template(
    const Module& tmpl, const std::vector<genus::ComponentSpec>& child_specs) {
  std::vector<Diagnostic> out = lint_module(tmpl);
  std::unordered_set<genus::ComponentSpec> listed(child_specs.begin(),
                                                  child_specs.end());
  std::unordered_set<genus::ComponentSpec> used;
  for (const Instance& inst : tmpl.instances()) {
    if (inst.ref != RefKind::kSpec) {
      emit(out, Severity::kError, "template-spec-mismatch", tmpl, inst.name,
           "template instance is not a spec reference");
      continue;
    }
    used.insert(inst.spec);
    if (listed.count(inst.spec) == 0) {
      emit(out, Severity::kError, "template-spec-mismatch", tmpl, inst.name,
           "instance spec " + inst.spec.key() +
               " is missing from the template's child spec list");
    }
  }
  for (const genus::ComponentSpec& spec : child_specs) {
    if (used.count(spec) == 0) {
      emit(out, Severity::kError, "unused-child-spec", tmpl, spec.key(),
           "child spec is listed but never instantiated");
    }
  }
  return out;
}

bool has_errors(const std::vector<Diagnostic>& diags) {
  return std::any_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.severity == Severity::kError;
  });
}

std::string render(const std::vector<Diagnostic>& diags) {
  std::string s;
  for (const Diagnostic& d : diags) {
    if (!s.empty()) s += "\n";
    s += d.to_string();
  }
  return s;
}

}  // namespace bridge::lint
