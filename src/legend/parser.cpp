// LEGEND parser: line-oriented keyword attributes plus an s-expression
// OPERATIONS section (the original implementation used Lex/Yacc; this is
// a recursive-descent equivalent with line-accurate errors).
#include <cctype>
#include <sstream>
#include <stdexcept>

#include "base/diag.h"
#include "base/strutil.h"
#include "legend/legend.h"

namespace bridge::legend {

namespace {

const char* const kKeywords[] = {
    "NAME",        "CLASS",       "KIND",          "MAX_PARAMS",
    "PARAMETERS",  "NUM_STYLES",  "STYLES",        "NUM_INPUTS",
    "INPUTS",      "NUM_OUTPUTS", "OUTPUTS",       "CLOCK",
    "NUM_ENABLE",  "ENABLE",      "NUM_CONTROL",   "CONTROL",
    "NUM_ASYNC",   "ASYNC",       "NUM_OPERATIONS", "OPERATIONS",
    "VHDL_MODEL",  "OP_CLASSES",
};

bool is_keyword_line(const std::string& line, std::string* keyword,
                     std::string* value) {
  const size_t colon = line.find(':');
  if (colon == std::string::npos) return false;
  const std::string head = to_upper(trim(line.substr(0, colon)));
  for (const char* kw : kKeywords) {
    if (head == kw) {
      *keyword = head;
      *value = trim(line.substr(colon + 1));
      return true;
    }
  }
  return false;
}

/// Split a comma-separated attribute value, tolerating whitespace.
std::vector<std::string> comma_list(const std::string& value) {
  std::vector<std::string> out;
  for (const std::string& item : split(value, ',')) {
    const std::string v = trim(item);
    if (!v.empty()) out.push_back(v);
  }
  return out;
}

/// Parse "GC_INPUT_WIDTH (w)" into name + annotation.
GeneratorAst::Param parse_param(const std::string& text, int line) {
  GeneratorAst::Param p;
  const size_t paren = text.find('(');
  if (paren == std::string::npos) {
    p.name = trim(text);
  } else {
    p.name = trim(text.substr(0, paren));
    const size_t close = text.find(')', paren);
    if (close == std::string::npos) {
      throw ParseError("unterminated parameter annotation in '" + text + "'",
                       line, 1);
    }
    p.annotation = trim(text.substr(paren + 1, close - paren - 1));
  }
  return p;
}

/// Parse "I0[w]" or "CLK" into a port declaration.
GeneratorAst::Port parse_port(const std::string& text, int line) {
  GeneratorAst::Port p;
  const size_t bracket = text.find('[');
  if (bracket == std::string::npos) {
    p.name = trim(text);
  } else {
    p.name = trim(text.substr(0, bracket));
    const size_t close = text.find(']', bracket);
    if (close == std::string::npos) {
      throw ParseError("unterminated width in port '" + text + "'", line, 1);
    }
    p.width_text = trim(text.substr(bracket + 1, close - bracket - 1));
  }
  return p;
}

/// Strict integer attribute: the whole value must be one base-10 number.
/// std::stoi alone would throw std::invalid_argument (not a ParseError)
/// on garbage and silently accept trailing junk ("3x" -> 3).
int parse_count(const std::string& value, int line) {
  try {
    size_t used = 0;
    const int v = std::stoi(value, &used);
    if (used != value.size()) throw std::invalid_argument("trailing junk");
    return v;
  } catch (const std::exception&) {
    throw ParseError("expected an integer attribute value, got '" + value +
                         "'",
                     line, 1);
  }
}

/// Minimal s-expression reader for the OPERATIONS section.
struct Sexp {
  bool is_list = false;
  std::string atom;                // includes ':'-suffixed heads
  std::vector<Sexp> items;
};

class SexpReader {
 public:
  SexpReader(const std::string& text, int base_line)
      : text_(text), base_line_(base_line) {}

  std::vector<Sexp> read_all() {
    std::vector<Sexp> out;
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size()) return out;
      out.push_back(read(0));
    }
  }

 private:
  // Recursion guard: read() recurses once per nesting level, so a
  // pathological "((((..." input would otherwise overflow the stack
  // instead of failing with a ParseError. Real descriptions nest 3-4
  // levels deep.
  static constexpr int kMaxDepth = 128;

  Sexp read(int depth) {
    skip_ws();
    if (pos_ >= text_.size()) {
      throw ParseError("unexpected end of OPERATIONS section", line(), 1);
    }
    if (text_[pos_] == '(') {
      if (depth >= kMaxDepth) {
        throw ParseError("OPERATIONS nesting deeper than " +
                             std::to_string(kMaxDepth) + " levels",
                         line(), 1);
      }
      ++pos_;
      Sexp list;
      list.is_list = true;
      for (;;) {
        skip_ws();
        if (pos_ >= text_.size()) {
          throw ParseError("unterminated '(' in OPERATIONS", line(), 1);
        }
        if (text_[pos_] == ')') {
          ++pos_;
          return list;
        }
        list.items.push_back(read(depth + 1));
      }
    }
    if (text_[pos_] == ')') {
      throw ParseError("unbalanced ')' in OPERATIONS", line(), 1);
    }
    Sexp atom;
    size_t b = pos_;
    while (pos_ < text_.size() && !std::isspace(uc(text_[pos_])) &&
           text_[pos_] != '(' && text_[pos_] != ')') {
      ++pos_;
    }
    atom.atom = text_.substr(b, pos_ - b);
    return atom;
  }

  static int uc(char c) { return static_cast<unsigned char>(c); }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(uc(text_[pos_]))) ++pos_;
  }

  int line() const {
    int l = base_line_;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++l;
    }
    return l;
  }

  const std::string& text_;
  int base_line_;
  size_t pos_ = 0;
};

std::string flatten_atoms(const Sexp& s) {
  if (!s.is_list) return s.atom;
  std::vector<std::string> parts;
  for (const Sexp& item : s.items) parts.push_back(flatten_atoms(item));
  return "(" + join(parts, " ") + ")";
}

/// Lower one operation s-expression:
///   ( (LOAD) (INPUTS: I0) (OUTPUTS: O0) (CONTROL: CLOAD)
///     (OPS: (LOAD: O0 = I0)) )
GeneratorAst::Operation lower_operation(const Sexp& s, int line) {
  if (!s.is_list || s.items.empty()) {
    throw ParseError("operation must be a non-empty list", line, 1);
  }
  GeneratorAst::Operation op;
  const Sexp& head = s.items[0];
  if (head.is_list && head.items.size() == 1 && !head.items[0].is_list) {
    op.name = head.items[0].atom;
  } else if (!head.is_list) {
    op.name = head.atom;
  } else {
    throw ParseError("operation name must be an atom", line, 1);
  }
  for (size_t i = 1; i < s.items.size(); ++i) {
    const Sexp& attr = s.items[i];
    if (!attr.is_list || attr.items.empty() || attr.items[0].is_list) {
      throw ParseError("operation attribute must be (HEAD: ...)", line, 1);
    }
    std::string key = to_upper(attr.items[0].atom);
    if (!key.empty() && key.back() == ':') key.pop_back();
    auto atoms_after = [&attr]() {
      std::vector<std::string> out;
      for (size_t j = 1; j < attr.items.size(); ++j) {
        std::string a = flatten_atoms(attr.items[j]);
        if (!a.empty() && a.back() == ',') a.pop_back();
        out.push_back(a);
      }
      return out;
    };
    if (key == "INPUTS") {
      op.inputs = atoms_after();
    } else if (key == "OUTPUTS") {
      op.outputs = atoms_after();
    } else if (key == "CONTROL") {
      auto v = atoms_after();
      op.control = v.empty() ? "" : v[0];
    } else if (key == "OPS") {
      // (OPS: (LOAD: O0 = I0)) — the semantics string is everything after
      // the op-name head of the inner list.
      if (attr.items.size() < 2 || !attr.items[1].is_list ||
          attr.items[1].items.size() < 2) {
        throw ParseError("OPS attribute needs (NAME: <rtl>)", line, 1);
      }
      const Sexp& body = attr.items[1];
      std::vector<std::string> parts;
      for (size_t j = 1; j < body.items.size(); ++j) {
        parts.push_back(flatten_atoms(body.items[j]));
      }
      op.semantics = join(parts, " ");
    } else {
      throw ParseError("unknown operation attribute '" + key + "'", line, 1);
    }
  }
  if (op.name.empty()) {
    throw ParseError("operation has no name", line, 1);
  }
  return op;
}

}  // namespace

std::vector<GeneratorAst> parse_legend(const std::string& text) {
  std::vector<GeneratorAst> out;
  GeneratorAst current;
  bool in_block = false;
  std::string operations_text;
  int operations_line = 0;
  bool in_operations = false;

  auto finish_operations = [&]() {
    if (!in_operations) return;
    SexpReader reader(operations_text, operations_line);
    for (const Sexp& s : reader.read_all()) {
      current.operations.push_back(lower_operation(s, operations_line));
    }
    operations_text.clear();
    in_operations = false;
  };
  auto finish_block = [&]() {
    finish_operations();
    if (in_block) {
      out.push_back(std::move(current));
      current = GeneratorAst{};
      in_block = false;
    }
  };

  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = raw;
    const size_t comment = line.find(';');
    if (comment != std::string::npos) line = line.substr(0, comment);
    if (trim(line).empty()) {
      if (in_operations) operations_text += "\n";
      continue;
    }

    std::string keyword;
    std::string value;
    if (!is_keyword_line(line, &keyword, &value)) {
      if (in_operations) {
        operations_text += line + "\n";
        continue;
      }
      throw ParseError("expected 'KEYWORD: value', got '" + trim(line) + "'",
                       line_no, 1);
    }

    if (keyword != "OPERATIONS") finish_operations();

    if (keyword == "NAME") {
      finish_block();
      in_block = true;
      current.name = to_upper(value);
    } else if (!in_block) {
      throw ParseError("attribute before NAME:", line_no, 1);
    } else if (keyword == "CLASS") {
      current.klass = value;
    } else if (keyword == "KIND") {
      current.kind_name = to_upper(value);
    } else if (keyword == "MAX_PARAMS") {
      current.max_params = parse_count(value, line_no);
    } else if (keyword == "PARAMETERS") {
      for (const std::string& item : comma_list(value)) {
        current.parameters.push_back(parse_param(item, line_no));
      }
    } else if (keyword == "STYLES") {
      for (const std::string& item : comma_list(value)) {
        current.styles.push_back(to_upper(item));
      }
    } else if (keyword == "INPUTS") {
      for (const std::string& item : comma_list(value)) {
        current.inputs.push_back(parse_port(item, line_no));
      }
    } else if (keyword == "OUTPUTS") {
      for (const std::string& item : comma_list(value)) {
        current.outputs.push_back(parse_port(item, line_no));
      }
    } else if (keyword == "CLOCK") {
      for (const std::string& item : comma_list(value)) {
        current.clocks.push_back(item);
      }
    } else if (keyword == "ENABLE") {
      for (const std::string& item : comma_list(value)) {
        current.enables.push_back(item);
      }
    } else if (keyword == "CONTROL") {
      for (const std::string& item : comma_list(value)) {
        current.controls.push_back(item);
      }
    } else if (keyword == "ASYNC") {
      for (const std::string& item : comma_list(value)) {
        current.asyncs.push_back(item);
      }
    } else if (keyword == "OPERATIONS") {
      in_operations = true;
      operations_line = line_no;
      operations_text = value.empty() ? "" : value + "\n";
    } else if (keyword == "VHDL_MODEL") {
      current.vhdl_model = value;
    } else if (keyword == "OP_CLASSES") {
      current.op_classes = value;
    } else if (starts_with(keyword, "NUM_") || keyword == "MAX_PARAMS") {
      // Count attributes are validated against the lists in to_generator.
    }
  }
  finish_block();
  if (out.empty()) {
    throw ParseError("no generator description found", 1, 1);
  }
  return out;
}

}  // namespace bridge::legend
