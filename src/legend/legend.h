// LEGEND: the generator-specification language.
//
// "LEGEND is a generator-specification language for describing the
// contents of a GENUS library... The LEGEND description can be tailored to
// a particular generic component library by specifying the necessary
// component generator types." (paper §4)
//
// The concrete syntax follows Figure 2 of the paper: keyword-prefixed
// attribute lines (NAME:, CLASS:, PARAMETERS:, NUM_STYLES:, INPUTS:, ...)
// and an OPERATIONS section of s-expressions:
//
//   NAME: COUNTER
//   CLASS: Clocked
//   MAX_PARAMS: 7
//   PARAMETERS: GC_COMPILER_NAME, GC_INPUT_WIDTH (w), ...
//   NUM_STYLES: 2
//   STYLES: SYNCHRONOUS, RIPPLE
//   INPUTS: I0[w]
//   ...
//   OPERATIONS:
//     ( (LOAD) (INPUTS: I0) (OUTPUTS: O0) (CONTROL: CLOAD)
//       (OPS: (LOAD: O0 = I0)) )
//   VHDL_MODEL: counter_vhdl.c
//
// A LEGEND source may contain several generator descriptions; blocks are
// delimited by their NAME: lines.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "genus/generator.h"
#include "genus/library.h"

namespace bridge::legend {

/// One parsed attribute-level generator description (syntax level).
struct GeneratorAst {
  std::string name;
  std::string klass;
  std::optional<std::string> kind_name;  // optional explicit KIND: line
  int max_params = 0;
  struct Param {
    std::string name;
    std::string annotation;  // e.g. the "(w)" width-variable binding
  };
  std::vector<Param> parameters;
  std::vector<std::string> styles;
  struct Port {
    std::string name;
    std::string width_text;  // empty means 1 bit
  };
  std::vector<Port> inputs;
  std::vector<Port> outputs;
  std::vector<std::string> clocks;
  std::vector<std::string> enables;
  std::vector<std::string> controls;
  std::vector<std::string> asyncs;
  struct Operation {
    std::string name;
    std::vector<std::string> inputs;
    std::vector<std::string> outputs;
    std::string control;
    std::string semantics;  // e.g. "O0 = O0 + 1"
  };
  std::vector<Operation> operations;
  std::string vhdl_model;
  std::string op_classes = "default";
};

/// Parse one or more generator descriptions. Throws ParseError on
/// malformed input (with line numbers).
std::vector<GeneratorAst> parse_legend(const std::string& text);

/// Validate and lower a parsed description into a GENUS generator.
/// The generator kind is resolved from the explicit KIND: attribute if
/// present, else from the NAME. Throws Error on unknown kinds, undeclared
/// ports referenced by operations, duplicate ports, or bad width
/// expressions.
genus::GeneratorSpec to_generator(const GeneratorAst& ast);

/// Emit a generator description in LEGEND concrete syntax (round-trips
/// through parse_legend + to_generator).
std::string emit_legend(const genus::GeneratorSpec& gen);

/// Build a GENUS library from LEGEND text (one entry per description).
genus::GenusLibrary load_library(const std::string& text,
                                 const std::string& library_name = "GENUS");

/// The paper's Figure 2 counter generator description, verbatim in spirit
/// (OCR typos in the published scan corrected).
const char* figure2_counter_text();

}  // namespace bridge::legend
