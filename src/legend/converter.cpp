// LEGEND semantic analysis (AST -> GeneratorSpec) and the emitter.
#include <set>
#include <sstream>

#include "base/diag.h"
#include "base/strutil.h"
#include "legend/legend.h"

namespace bridge::legend {

using genus::GeneratorSpec;
using genus::GenOperationDecl;
using genus::GenPortDecl;
using genus::ParamDecl;
using genus::PortDir;
using genus::PortRole;

genus::GeneratorSpec to_generator(const GeneratorAst& ast) {
  GeneratorSpec gen;
  gen.name = ast.name;
  gen.klass = ast.klass;
  gen.kind = genus::kind_from_name(ast.kind_name.value_or(ast.name));
  gen.vhdl_model = ast.vhdl_model;
  gen.op_classes = ast.op_classes;

  if (ast.max_params > 0 &&
      ast.max_params < static_cast<int>(ast.parameters.size())) {
    throw Error("generator " + ast.name + ": " +
                std::to_string(ast.parameters.size()) +
                " parameters exceed MAX_PARAMS " +
                std::to_string(ast.max_params));
  }
  for (const auto& p : ast.parameters) {
    gen.params.push_back(ParamDecl{p.name, false, std::nullopt});
  }
  for (const auto& s : ast.styles) {
    gen.styles.push_back(genus::style_from_name(s));
  }

  std::set<std::string> seen;
  auto add_port = [&](const GeneratorAst::Port& p, PortDir dir,
                      PortRole role) {
    if (!seen.insert(p.name).second) {
      throw Error("generator " + ast.name + ": duplicate port '" + p.name +
                  "'");
    }
    GenPortDecl decl;
    decl.name = p.name;
    decl.dir = dir;
    decl.role = role;
    decl.width = p.width_text.empty() ? WidthExpr::constant(1)
                                      : WidthExpr::parse(p.width_text);
    gen.ports.push_back(std::move(decl));
  };
  for (const auto& p : ast.inputs) add_port(p, PortDir::kIn, PortRole::kData);
  for (const auto& p : ast.outputs) {
    add_port(p, PortDir::kOut, PortRole::kData);
  }
  for (const auto& n : ast.clocks) {
    add_port(GeneratorAst::Port{n, ""}, PortDir::kIn, PortRole::kClock);
  }
  for (const auto& n : ast.enables) {
    add_port(GeneratorAst::Port{n, ""}, PortDir::kIn, PortRole::kEnable);
  }
  for (const auto& n : ast.controls) {
    add_port(GeneratorAst::Port{n, ""}, PortDir::kIn, PortRole::kControl);
  }
  for (const auto& n : ast.asyncs) {
    add_port(GeneratorAst::Port{n, ""}, PortDir::kIn, PortRole::kAsync);
  }

  for (const auto& op : ast.operations) {
    GenOperationDecl decl;
    decl.name = op.name;
    decl.control = op.control;
    decl.inputs = op.inputs;
    decl.outputs = op.outputs;
    decl.semantics = op.semantics;
    auto require_port = [&](const std::string& port) {
      if (seen.count(port) == 0) {
        throw Error("generator " + ast.name + ": operation " + op.name +
                    " references undeclared port '" + port + "'");
      }
    };
    for (const auto& p : decl.inputs) require_port(p);
    for (const auto& p : decl.outputs) require_port(p);
    if (!decl.control.empty()) require_port(decl.control);
    gen.operations.push_back(std::move(decl));
  }
  return gen;
}

namespace {

std::string port_decl_text(const GenPortDecl& p) {
  if (p.width.is_constant() && p.width.eval({}) == 1) return p.name;
  return p.name + "[" + p.width.text() + "]";
}

void emit_name_list(std::ostringstream& os, const std::string& keyword,
                    const std::vector<std::string>& names) {
  if (names.empty()) return;
  os << "NUM_" << keyword << ": " << names.size() << "\n";
  os << keyword << ": " << join(names, ", ") << "\n";
}

}  // namespace

std::string emit_legend(const GeneratorSpec& gen) {
  std::ostringstream os;
  os << "NAME: " << gen.name << "\n";
  if (!gen.klass.empty()) os << "CLASS: " << gen.klass << "\n";
  if (gen.name != genus::kind_name(gen.kind)) {
    os << "KIND: " << genus::kind_name(gen.kind) << "\n";
  }
  if (!gen.params.empty()) {
    os << "MAX_PARAMS: " << gen.params.size() << "\n";
    std::vector<std::string> names;
    for (const auto& p : gen.params) names.push_back(p.name);
    os << "PARAMETERS: " << join(names, ", ") << "\n";
  }
  if (!gen.styles.empty()) {
    os << "NUM_STYLES: " << gen.styles.size() << "\n";
    std::vector<std::string> names;
    for (const auto& s : gen.styles) names.push_back(genus::style_name(s));
    os << "STYLES: " << join(names, ", ") << "\n";
  }

  // Port sections. Builtin generators (no declared ports) emit the ports
  // of a default-parameter component.
  std::vector<GenPortDecl> ports = gen.ports;
  if (ports.empty()) {
    const auto spec = genus::spec_from_params(gen.kind, genus::ParamMap{});
    for (const auto& p : genus::spec_ports(spec)) {
      GenPortDecl decl;
      decl.name = p.name;
      decl.dir = p.dir;
      decl.role = p.role;
      decl.width = WidthExpr::constant(p.width);
      ports.push_back(std::move(decl));
    }
  }
  std::vector<std::string> ins;
  std::vector<std::string> outs;
  std::vector<std::string> clocks;
  std::vector<std::string> enables;
  std::vector<std::string> controls;
  std::vector<std::string> asyncs;
  for (const auto& p : ports) {
    switch (p.role) {
      case PortRole::kClock:
        clocks.push_back(p.name);
        break;
      case PortRole::kEnable:
        enables.push_back(p.name);
        break;
      case PortRole::kControl:
        controls.push_back(p.name);
        break;
      case PortRole::kAsync:
        asyncs.push_back(p.name);
        break;
      default:
        (p.dir == PortDir::kIn ? ins : outs).push_back(port_decl_text(p));
        break;
    }
  }
  if (!ins.empty()) {
    os << "NUM_INPUTS: " << ins.size() << "\n"
       << "INPUTS: " << join(ins, ", ") << "\n";
  }
  if (!outs.empty()) {
    os << "NUM_OUTPUTS: " << outs.size() << "\n"
       << "OUTPUTS: " << join(outs, ", ") << "\n";
  }
  if (!clocks.empty()) os << "CLOCK: " << join(clocks, ", ") << "\n";
  emit_name_list(os, "ENABLE", enables);
  emit_name_list(os, "CONTROL", controls);
  emit_name_list(os, "ASYNC", asyncs);

  std::vector<GenOperationDecl> operations = gen.operations;
  if (operations.empty()) {
    const auto spec = genus::spec_from_params(gen.kind, genus::ParamMap{});
    for (const auto& op : genus::default_operations(spec)) {
      operations.push_back(GenOperationDecl{op.name, op.control, op.inputs,
                                            op.outputs, op.semantics});
    }
  }
  if (!operations.empty()) {
    os << "NUM_OPERATIONS: " << operations.size() << "\n";
    os << "OPERATIONS:\n";
    for (const auto& op : operations) {
      os << "  ( (" << op.name << ")\n";
      if (!op.inputs.empty()) {
        os << "    (INPUTS: " << join(op.inputs, " ") << ")\n";
      }
      if (!op.outputs.empty()) {
        os << "    (OUTPUTS: " << join(op.outputs, " ") << ")\n";
      }
      if (!op.control.empty()) os << "    (CONTROL: " << op.control << ")\n";
      if (!op.semantics.empty()) {
        os << "    (OPS: (" << op.name << ": " << op.semantics << "))\n";
      }
      os << "  )\n";
    }
  }
  if (!gen.vhdl_model.empty()) os << "VHDL_MODEL: " << gen.vhdl_model << "\n";
  os << "OP_CLASSES: " << gen.op_classes << "\n";
  return os.str();
}

genus::GenusLibrary load_library(const std::string& text,
                                 const std::string& library_name) {
  genus::GenusLibrary lib(library_name);
  for (const GeneratorAst& ast : parse_legend(text)) {
    lib.add(to_generator(ast));
  }
  return lib;
}

const char* figure2_counter_text() {
  return R"legend(
NAME: COUNTER
CLASS: Clocked
MAX_PARAMS: 7
PARAMETERS: GC_COMPILER_NAME, GC_INPUT_WIDTH (w), GC_NUM_FUNCTIONS, GC_FUNCTION_LIST, GC_SET_VALUE, GC_STYLE, GC_ENABLE_FLAG
NUM_STYLES: 2
STYLES: SYNCHRONOUS, RIPPLE
NUM_INPUTS: 1
INPUTS: I0[w]
NUM_OUTPUTS: 1
OUTPUTS: O0[w]
CLOCK: CLK
NUM_ENABLE: 1
ENABLE: CEN
NUM_CONTROL: 3
CONTROL: CLOAD, CUP, CDOWN
NUM_ASYNC: 2
ASYNC: ASET, ARESET
NUM_OPERATIONS: 3
OPERATIONS:
  ( (LOAD)
    (INPUTS: I0)
    (OUTPUTS: O0)
    (CONTROL: CLOAD)
    (OPS: (LOAD: O0 = I0)) )
  ( (COUNT_UP)
    (OUTPUTS: O0)
    (CONTROL: CUP)
    (OPS: (COUNT_UP: O0 = O0 + 1)) )
  ( (COUNT_DOWN)
    (OUTPUTS: O0)
    (CONTROL: CDOWN)
    (OPS: (COUNT_DOWN: O0 = O0 - 1)) )
VHDL_MODEL: counter_vhdl.c
OP_CLASSES: default
)legend";
}

}  // namespace bridge::legend
