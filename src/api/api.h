// The unified request/response API for synthesis.
//
// Before this layer, configuring a synthesis meant juggling three
// mechanisms at once: SpaceOptions fields passed to the Synthesizer
// constructor, environment variables (BRIDGE_CACHE_BUDGET, BRIDGE_TRACE)
// read at scattered construction points, and per-call method arguments.
// SynthesisRequest subsumes all three into one value type with JSON
// encode/decode, so the in-process API, the examples, the benches, and
// the server wire protocol all speak the same object — a request that
// worked locally is byte-for-byte the request you send to a daemon.
//
// Environment-variable precedence (the consolidation contract, pinned by
// tests/api_test.cpp): env vars are *documented defaults*, applied only
// where a request leaves a field at its "unset" sentinel; an explicit
// request field always wins.
//
//   field                              unset sentinel   env default
//   template_cache_budget_bytes        -1               BRIDGE_CACHE_BUDGET
//   extraction_cache_budget_bytes      -1               BRIDGE_CACHE_BUDGET
//   trace_path                         ""               BRIDGE_TRACE
//
// Determinism: encode() emits every field in a fixed order, so
// encode(decode(encode(x))) is byte-identical — the protocol golden
// tests rely on it — and doubles round-trip exactly (see api/json.h),
// which is what makes a front received over the wire bit-comparable to
// one produced in process.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/json.h"
#include "dtas/design_space.h"
#include "dtas/synthesizer.h"
#include "genus/spec.h"
#include "lint/lint.h"
#include "netlist/netlist.h"
#include "obs/profile.h"

namespace bridge::cells {
class LibraryRegistry;
}  // namespace bridge::cells

namespace bridge::api {

// --- component-spec / netlist codecs ---------------------------------------

/// ComponentSpec <-> JSON object ({"kind": "ALU", "width": 64, ...}).
Json encode_spec(const genus::ComponentSpec& spec);
genus::ComponentSpec decode_spec(const Json& j);

/// GENUS input netlist (a Module of specification instances) <-> JSON.
/// Round-trips ports, non-port nets, and every connection — including
/// explicit opens, constants, and replicated broadcasts — in ConnMap
/// (name) order.
Json encode_netlist(const netlist::Module& m);
netlist::Module decode_netlist(const Json& j);

// --- request ---------------------------------------------------------------

/// Per-request knobs. This is the public face of dtas::SpaceOptions: a
/// flat, JSON-serializable subset whose unset sentinels resolve through
/// the documented env defaults (see file comment). space_options() is
/// the single translation point.
struct RequestOptions {
  long deadline_ms = 0;           // 0 = unbounded
  bool deadline_best_effort = false;
  int threads = 1;                // per-request; servers keep this at 1
  std::string filter = "pareto";  // pareto | none | area_only | delay_only
  int max_alternatives_per_node = 24;
  long max_combinations_per_impl = 100000;
  double min_delay_gain = 0.10;
  bool use_compiled_plan = true;
  bool node_parallel = true;      // antichain-parallel evaluate (threads > 1)
  bool delta_cache_keys = true;   // content-fingerprint cache/session keys
  bool use_template_cache = true;
  bool use_extraction_cache = true;
  long template_cache_budget_bytes = -1;    // -1 = BRIDGE_CACHE_BUDGET default
  long extraction_cache_budget_bytes = -1;  // -1 = BRIDGE_CACHE_BUDGET default
  std::string trace_path;                   // "" = BRIDGE_TRACE default
  bool emit_vhdl = false;       // include structural VHDL per alternative
  bool include_profile = false; // include the per-request phase profile
  /// Run the structural linter (src/lint) over every returned design and
  /// ship the diagnostics in SynthesisResult::diagnostics. Read-only and
  /// output-only — like emit_vhdl it never shapes the design space, so it
  /// is excluded from fingerprint() and a warm session serves verifying
  /// and non-verifying requests alike.
  bool verify = false;

  bool operator==(const RequestOptions&) const = default;

  /// Resolve into the dtas layer's options, applying the env-default
  /// precedence documented above. Throws bridge::Error on an unknown
  /// filter name.
  dtas::SpaceOptions space_options() const;

  /// Stable key of every field that shapes the memoized design space
  /// (everything except the deadline trio and the output switches).
  /// Server sessions cache one Synthesizer per (library *content*
  /// fingerprint, rules flavor, options fingerprint): requests differing
  /// only in deadline/emit flags share warm state, and a re-registered
  /// library with identical content maps back onto its warm session.
  std::string fingerprint() const;
};

/// One synthesis request: a spec *or* an input netlist, a library name,
/// and options. The same value drives in-process calls and the wire.
struct SynthesisRequest {
  std::string library;  // cells::LibraryRegistry name, e.g. "LSI_LGC15"
  std::optional<genus::ComponentSpec> spec;
  std::optional<netlist::Module> input_netlist;
  RequestOptions options;

  Json encode() const;
  std::string to_json() const { return encode().dump(); }

  /// Throws bridge::Error / bridge::ParseError on malformed input
  /// (missing library, neither or both of spec/netlist, bad enum names).
  static SynthesisRequest decode(const Json& j);
  static SynthesisRequest from_json(const std::string& text);
};

// --- result ----------------------------------------------------------------

struct ResultAlternative {
  double area = 0.0;
  double delay = 0.0;
  std::string description;
  std::string vhdl;  // empty unless the request set emit_vhdl
};

/// This-request work summary (the SpaceStats / cache deltas a service
/// client can bill or alert on without parsing a profile).
struct ResultStats {
  long combinations_evaluated = 0;
  long combinations_pruned = 0;
  long template_cache_hits = 0;
  long template_cache_misses = 0;
  long extraction_cache_hits = 0;
  long extraction_cache_misses = 0;
};

struct SynthesisResult {
  std::string status = "ok";  // ok | error | cancelled
  std::string error;          // non-empty iff status != "ok"
  bool deadline_hit = false;  // best-effort truncation happened
  std::vector<ResultAlternative> alternatives;
  ResultStats stats;
  /// Linter findings across all returned designs (RequestOptions::verify;
  /// empty means clean — or not requested).
  std::vector<lint::Diagnostic> diagnostics;
  bool has_profile = false;
  obs::Profile profile;   // valid when has_profile
  double server_ms = 0.0; // wall time on the server; 0 for in-process runs

  bool ok() const { return status == "ok"; }

  Json encode() const;
  std::string to_json() const { return encode().dump(); }
  static SynthesisResult decode(const Json& j);
  static SynthesisResult from_json(const std::string& text);

  /// Error-response helper.
  static SynthesisResult make_error(std::string status, std::string message);
};

/// True when `result`'s front is byte-identical to `alts` — same count,
/// bit-equal metric doubles, same descriptions, and (when `with_vhdl`)
/// the same emitted VHDL text. The server bench and the concurrency
/// tests gate on this.
bool front_matches(const SynthesisResult& result,
                   const std::vector<dtas::AlternativeDesign>& alts,
                   bool with_vhdl);

// --- execution --------------------------------------------------------------

/// Build a Synthesizer configured for `req` against `library` (which must
/// be the registry entry `req.library` names; sessions that outlive one
/// request are the caller's to keep).
std::unique_ptr<dtas::Synthesizer> make_session(
    const SynthesisRequest& req, const cells::CellLibrary& library);

/// Execute `req` on an existing session. The session must have been
/// built with the same space-shaping options (see
/// RequestOptions::fingerprint); the per-request deadline policy is
/// re-armed here, so one warm session serves many requests with
/// different budgets. Never throws: cancellation and failures come back
/// as status "cancelled" / "error" results.
SynthesisResult run_request(const SynthesisRequest& req,
                            dtas::Synthesizer& session);

/// One-shot convenience: resolve the library in `registry`, build a
/// fresh session, run. Library-resolution failures come back as error
/// results, like everything else.
SynthesisResult run_request(const SynthesisRequest& req,
                            const cells::LibraryRegistry& registry);

}  // namespace bridge::api
