#include "api/api.h"

#include <cstdint>
#include <iterator>
#include <sstream>

#include "base/diag.h"
#include "cells/registry.h"
#include "genus/kind.h"
#include "genus/optype.h"
#include "vhdl/vhdl.h"

namespace bridge::api {

namespace {

// PortConn constants are masked to the port width, which may be up to 64
// bits — beyond exact double range. Wide values travel as decimal strings.
constexpr std::uint64_t kMaxExactU64 = (std::uint64_t{1} << 53);

Json encode_const_value(std::uint64_t v) {
  if (v < kMaxExactU64) return Json(static_cast<double>(v));
  return Json(std::to_string(v));
}

std::uint64_t decode_const_value(const Json& j) {
  if (j.is_string()) {
    const std::string& s = j.string_value();
    std::size_t used = 0;
    std::uint64_t v = 0;
    try {
      v = std::stoull(s, &used);
    } catch (const std::exception&) {
      throw Error("bad constant value '" + s + "'");
    }
    if (used != s.size()) throw Error("bad constant value '" + s + "'");
    return v;
  }
  const long v = j.integer();
  if (v < 0) throw Error("constant value must be non-negative");
  return static_cast<std::uint64_t>(v);
}

genus::Representation rep_from_name(const std::string& name) {
  if (name == "BINARY") return genus::Representation::kBinary;
  if (name == "BCD") return genus::Representation::kBcd;
  throw Error("unknown representation '" + name + "' (BINARY or BCD)");
}

}  // namespace

// --- component-spec codec ---------------------------------------------------

Json encode_spec(const genus::ComponentSpec& spec) {
  Json j = Json::object();
  j.set("kind", genus::kind_name(spec.kind))
      .set("width", spec.width)
      .set("size", spec.size)
      .set("ops", spec.ops.to_string())
      .set("style", genus::style_name(spec.style))
      .set("rep", genus::representation_name(spec.rep))
      .set("carry_in", spec.carry_in)
      .set("carry_out", spec.carry_out)
      .set("enable", spec.enable)
      .set("async_set", spec.async_set)
      .set("async_reset", spec.async_reset)
      .set("tristate", spec.tristate);
  return j;
}

genus::ComponentSpec decode_spec(const Json& j) {
  genus::ComponentSpec spec;
  spec.kind = genus::kind_from_name(j.at("kind").string_value());
  spec.width = static_cast<int>(j.int_or("width", 1));
  spec.size = static_cast<int>(j.int_or("size", 0));
  spec.ops = genus::OpSet::parse(j.str_or("ops", ""));
  spec.style = genus::style_from_name(j.str_or("style", "ANY"));
  spec.rep = rep_from_name(j.str_or("rep", "BINARY"));
  spec.carry_in = j.bool_or("carry_in", false);
  spec.carry_out = j.bool_or("carry_out", false);
  spec.enable = j.bool_or("enable", false);
  spec.async_set = j.bool_or("async_set", false);
  spec.async_reset = j.bool_or("async_reset", false);
  spec.tristate = j.bool_or("tristate", false);
  return spec;
}

// --- netlist codec ----------------------------------------------------------

Json encode_netlist(const netlist::Module& m) {
  Json j = Json::object();
  j.set("name", m.name());

  Json ports = Json::array();
  std::vector<bool> is_port_net(m.nets().size(), false);
  for (const netlist::ModulePort& p : m.module_ports()) {
    Json pj = Json::object();
    pj.set("name", static_cast<const std::string&>(p.name))
        .set("dir", p.dir == genus::PortDir::kIn ? "in" : "out")
        .set("width", p.width);
    ports.push_back(std::move(pj));
    if (p.net >= 0) is_port_net[static_cast<std::size_t>(p.net)] = true;
  }
  j.set("ports", std::move(ports));

  Json nets = Json::array();
  for (std::size_t i = 0; i < m.nets().size(); ++i) {
    if (is_port_net[i]) continue;  // recreated by add_port on decode
    const netlist::Net& n = m.nets()[i];
    Json nj = Json::object();
    nj.set("name", static_cast<const std::string&>(n.name))
        .set("width", n.width);
    nets.push_back(std::move(nj));
  }
  j.set("nets", std::move(nets));

  Json insts = Json::array();
  for (const netlist::Instance& inst : m.instances()) {
    if (inst.ref != netlist::RefKind::kSpec) {
      throw Error("netlist codec handles specification instances only; '" +
                  inst.name + "' references a " +
                  (inst.ref == netlist::RefKind::kCell ? "cell" : "module"));
    }
    Json ij = Json::object();
    ij.set("name", inst.name);
    if (!inst.ref_name.empty()) ij.set("ref_name", inst.ref_name);
    ij.set("spec", encode_spec(inst.spec));
    Json conns = Json::array();
    for (const auto& [port, conn] : inst.connections) {
      Json cj = Json::object();
      cj.set("port", static_cast<const std::string&>(port));
      switch (conn.kind) {
        case netlist::PortConn::Kind::kNet:
          cj.set("net",
                 static_cast<const std::string&>(m.net(conn.net).name));
          cj.set("lo", conn.lo);
          if (conn.replicate) cj.set("replicate", true);
          break;
        case netlist::PortConn::Kind::kConst:
          cj.set("const", encode_const_value(conn.const_value));
          break;
        case netlist::PortConn::Kind::kOpen:
          cj.set("open", true);
          break;
      }
      conns.push_back(std::move(cj));
    }
    ij.set("conns", std::move(conns));
    insts.push_back(std::move(ij));
  }
  j.set("instances", std::move(insts));
  return j;
}

netlist::Module decode_netlist(const Json& j) {
  netlist::Module m(j.str_or("name", "netlist"));
  if (const Json* ports = j.find("ports")) {
    for (const Json& pj : ports->items()) {
      const std::string& name = pj.at("name").string_value();
      const std::string& dir = pj.at("dir").string_value();
      if (dir != "in" && dir != "out") {
        throw Error("bad port direction '" + dir + "' (in or out)");
      }
      m.add_port(name,
                 dir == "in" ? genus::PortDir::kIn : genus::PortDir::kOut,
                 static_cast<int>(pj.int_or("width", 1)));
    }
  }
  if (const Json* nets = j.find("nets")) {
    for (const Json& nj : nets->items()) {
      m.add_net(nj.at("name").string_value(),
                static_cast<int>(nj.int_or("width", 1)));
    }
  }
  if (const Json* insts = j.find("instances")) {
    for (const Json& ij : insts->items()) {
      netlist::Instance& inst =
          m.add_spec_instance(ij.at("name").string_value(),
                              decode_spec(ij.at("spec")),
                              ij.str_or("ref_name", ""));
      if (const Json* conns = ij.find("conns")) {
        for (const Json& cj : conns->items()) {
          const base::Symbol port(cj.at("port").string_value());
          if (const Json* cv = cj.find("const")) {
            m.connect_const(inst, port, decode_const_value(*cv));
          } else if (cj.bool_or("open", false)) {
            inst.connections[port] = netlist::PortConn::open();
          } else {
            const std::string& net_name = cj.at("net").string_value();
            const netlist::NetIndex net = m.find_net(net_name);
            if (net == netlist::kNoNet) {
              throw Error("connection of '" + inst.name +
                          "' references unknown net '" + net_name + "'");
            }
            const int lo = static_cast<int>(cj.int_or("lo", 0));
            if (cj.bool_or("replicate", false)) {
              m.connect_replicated(inst, port, net, lo);
            } else {
              m.connect(inst, port, net, lo);
            }
          }
        }
      }
    }
  }
  return m;
}

// --- options ----------------------------------------------------------------

namespace {

Json encode_options(const RequestOptions& o) {
  Json j = Json::object();
  j.set("deadline_ms", o.deadline_ms)
      .set("deadline_best_effort", o.deadline_best_effort)
      .set("threads", o.threads)
      .set("filter", o.filter)
      .set("max_alternatives_per_node", o.max_alternatives_per_node)
      .set("max_combinations_per_impl", o.max_combinations_per_impl)
      .set("min_delay_gain", o.min_delay_gain)
      .set("use_compiled_plan", o.use_compiled_plan)
      .set("node_parallel", o.node_parallel)
      .set("delta_cache_keys", o.delta_cache_keys)
      .set("use_template_cache", o.use_template_cache)
      .set("use_extraction_cache", o.use_extraction_cache)
      .set("template_cache_budget_bytes", o.template_cache_budget_bytes)
      .set("extraction_cache_budget_bytes", o.extraction_cache_budget_bytes)
      .set("trace_path", o.trace_path)
      .set("emit_vhdl", o.emit_vhdl)
      .set("include_profile", o.include_profile)
      .set("verify", o.verify);
  return j;
}

RequestOptions decode_options(const Json& j) {
  RequestOptions o;
  o.deadline_ms = j.int_or("deadline_ms", o.deadline_ms);
  o.deadline_best_effort =
      j.bool_or("deadline_best_effort", o.deadline_best_effort);
  o.threads = static_cast<int>(j.int_or("threads", o.threads));
  o.filter = j.str_or("filter", o.filter);
  o.max_alternatives_per_node = static_cast<int>(
      j.int_or("max_alternatives_per_node", o.max_alternatives_per_node));
  o.max_combinations_per_impl =
      j.int_or("max_combinations_per_impl", o.max_combinations_per_impl);
  o.min_delay_gain = j.num_or("min_delay_gain", o.min_delay_gain);
  o.use_compiled_plan = j.bool_or("use_compiled_plan", o.use_compiled_plan);
  o.node_parallel = j.bool_or("node_parallel", o.node_parallel);
  o.delta_cache_keys = j.bool_or("delta_cache_keys", o.delta_cache_keys);
  o.use_template_cache =
      j.bool_or("use_template_cache", o.use_template_cache);
  o.use_extraction_cache =
      j.bool_or("use_extraction_cache", o.use_extraction_cache);
  o.template_cache_budget_bytes = j.int_or("template_cache_budget_bytes",
                                           o.template_cache_budget_bytes);
  o.extraction_cache_budget_bytes = j.int_or(
      "extraction_cache_budget_bytes", o.extraction_cache_budget_bytes);
  o.trace_path = j.str_or("trace_path", o.trace_path);
  o.emit_vhdl = j.bool_or("emit_vhdl", o.emit_vhdl);
  o.include_profile = j.bool_or("include_profile", o.include_profile);
  o.verify = j.bool_or("verify", o.verify);
  return o;
}

dtas::FilterKind filter_from_name(const std::string& name) {
  if (name == "pareto") return dtas::FilterKind::kPareto;
  if (name == "none") return dtas::FilterKind::kNone;
  if (name == "area_only") return dtas::FilterKind::kAreaOnly;
  if (name == "delay_only") return dtas::FilterKind::kDelayOnly;
  throw Error("unknown filter '" + name +
              "' (pareto, none, area_only, delay_only)");
}

}  // namespace

dtas::SpaceOptions RequestOptions::space_options() const {
  dtas::SpaceOptions o;
  o.filter = filter_from_name(filter);
  o.max_alternatives_per_node = max_alternatives_per_node;
  o.max_combinations_per_impl = max_combinations_per_impl;
  o.min_delay_gain = min_delay_gain;
  o.use_compiled_plan = use_compiled_plan;
  o.node_parallel = node_parallel;
  o.delta_cache_keys = delta_cache_keys;
  o.threads = threads;
  o.use_template_cache = use_template_cache;
  o.use_extraction_cache = use_extraction_cache;
  o.deadline_ms = deadline_ms;
  o.deadline_best_effort = deadline_best_effort;
  // The unset sentinels (-1 budgets, "" trace path) flow through to the
  // dtas layer, where they mean exactly "take the BRIDGE_CACHE_BUDGET /
  // BRIDGE_TRACE environment default" — which is how env vars become
  // defaults an explicit request field overrides.
  o.template_cache_budget_bytes = template_cache_budget_bytes;
  o.extraction_cache_budget_bytes = extraction_cache_budget_bytes;
  o.trace_path = trace_path;
  return o;
}

std::string RequestOptions::fingerprint() const {
  std::ostringstream out;
  out << "filter=" << filter << ";alts=" << max_alternatives_per_node
      << ";comb=" << max_combinations_per_impl
      << ";gain=" << format_json_number(min_delay_gain)
      << ";plan=" << use_compiled_plan << ";threads=" << threads
      << ";npar=" << node_parallel << ";dkeys=" << delta_cache_keys
      << ";tcache=" << use_template_cache
      << ";xcache=" << use_extraction_cache
      << ";tbudget=" << template_cache_budget_bytes
      << ";xbudget=" << extraction_cache_budget_bytes
      << ";trace=" << trace_path;
  return out.str();
}

// --- request ----------------------------------------------------------------

Json SynthesisRequest::encode() const {
  Json j = Json::object();
  j.set("library", library);
  if (spec) j.set("spec", encode_spec(*spec));
  if (input_netlist) j.set("netlist", encode_netlist(*input_netlist));
  j.set("options", encode_options(options));
  return j;
}

SynthesisRequest SynthesisRequest::decode(const Json& j) {
  SynthesisRequest req;
  req.library = j.str_or("library", "");
  if (req.library.empty()) throw Error("request has no 'library'");
  const Json* spec = j.find("spec");
  const Json* nl = j.find("netlist");
  if ((spec != nullptr) == (nl != nullptr)) {
    throw Error("request needs exactly one of 'spec' or 'netlist'");
  }
  if (spec != nullptr) req.spec = decode_spec(*spec);
  if (nl != nullptr) req.input_netlist = decode_netlist(*nl);
  if (const Json* opts = j.find("options")) {
    req.options = decode_options(*opts);
  }
  return req;
}

SynthesisRequest SynthesisRequest::from_json(const std::string& text) {
  return decode(Json::parse(text));
}

// --- result -----------------------------------------------------------------

Json SynthesisResult::encode() const {
  Json j = Json::object();
  j.set("status", status).set("error", error).set("deadline_hit",
                                                  deadline_hit);
  Json alts = Json::array();
  for (const ResultAlternative& a : alternatives) {
    Json aj = Json::object();
    aj.set("area", a.area).set("delay", a.delay)
        .set("description", a.description);
    if (!a.vhdl.empty()) aj.set("vhdl", a.vhdl);
    alts.push_back(std::move(aj));
  }
  j.set("alternatives", std::move(alts));
  Json sj = Json::object();
  sj.set("combinations_evaluated", stats.combinations_evaluated)
      .set("combinations_pruned", stats.combinations_pruned)
      .set("template_cache_hits", stats.template_cache_hits)
      .set("template_cache_misses", stats.template_cache_misses)
      .set("extraction_cache_hits", stats.extraction_cache_hits)
      .set("extraction_cache_misses", stats.extraction_cache_misses);
  j.set("stats", std::move(sj));
  if (!diagnostics.empty()) {
    Json dj = Json::array();
    for (const lint::Diagnostic& d : diagnostics) {
      Json e = Json::object();
      e.set("severity", std::string(lint::severity_name(d.severity)))
          .set("check", d.check)
          .set("module", d.module)
          .set("object", d.object)
          .set("message", d.message);
      dj.push_back(std::move(e));
    }
    j.set("diagnostics", std::move(dj));
  }
  if (has_profile) {
    Json pj = Json::object();
    pj.set("name", profile.name);
    Json phases = Json::array();
    for (const auto& [phase, ms] : profile.phases_ms) {
      phases.push_back(Json::array().push_back(phase).push_back(ms));
    }
    pj.set("phases_ms", std::move(phases));
    Json counters = Json::array();
    for (const auto& [counter, delta] : profile.counters) {
      counters.push_back(Json::array().push_back(counter).push_back(delta));
    }
    pj.set("counters", std::move(counters));
    j.set("profile", std::move(pj));
  }
  j.set("server_ms", server_ms);
  return j;
}

SynthesisResult SynthesisResult::decode(const Json& j) {
  SynthesisResult res;
  res.status = j.str_or("status", "ok");
  res.error = j.str_or("error", "");
  res.deadline_hit = j.bool_or("deadline_hit", false);
  if (const Json* alts = j.find("alternatives")) {
    for (const Json& aj : alts->items()) {
      ResultAlternative a;
      a.area = aj.num_or("area", 0.0);
      a.delay = aj.num_or("delay", 0.0);
      a.description = aj.str_or("description", "");
      a.vhdl = aj.str_or("vhdl", "");
      res.alternatives.push_back(std::move(a));
    }
  }
  if (const Json* sj = j.find("stats")) {
    res.stats.combinations_evaluated = sj->int_or("combinations_evaluated", 0);
    res.stats.combinations_pruned = sj->int_or("combinations_pruned", 0);
    res.stats.template_cache_hits = sj->int_or("template_cache_hits", 0);
    res.stats.template_cache_misses = sj->int_or("template_cache_misses", 0);
    res.stats.extraction_cache_hits = sj->int_or("extraction_cache_hits", 0);
    res.stats.extraction_cache_misses =
        sj->int_or("extraction_cache_misses", 0);
  }
  if (const Json* dj = j.find("diagnostics")) {
    for (const Json& e : dj->items()) {
      lint::Diagnostic d;
      d.severity = e.str_or("severity", "error") == "warning"
                       ? lint::Severity::kWarning
                       : lint::Severity::kError;
      d.check = e.str_or("check", "");
      d.module = e.str_or("module", "");
      d.object = e.str_or("object", "");
      d.message = e.str_or("message", "");
      res.diagnostics.push_back(std::move(d));
    }
  }
  if (const Json* pj = j.find("profile")) {
    res.has_profile = true;
    res.profile.name = pj->str_or("name", "");
    if (const Json* phases = pj->find("phases_ms")) {
      for (const Json& e : phases->items()) {
        res.profile.add_phase(e.items().at(0).string_value(),
                              e.items().at(1).number());
      }
    }
    if (const Json* counters = pj->find("counters")) {
      for (const Json& e : counters->items()) {
        res.profile.add_counter(e.items().at(0).string_value(),
                                e.items().at(1).integer());
      }
    }
  }
  res.server_ms = j.num_or("server_ms", 0.0);
  return res;
}

SynthesisResult SynthesisResult::from_json(const std::string& text) {
  return decode(Json::parse(text));
}

SynthesisResult SynthesisResult::make_error(std::string status,
                                            std::string message) {
  SynthesisResult res;
  res.status = std::move(status);
  res.error = std::move(message);
  return res;
}

bool front_matches(const SynthesisResult& result,
                   const std::vector<dtas::AlternativeDesign>& alts,
                   bool with_vhdl) {
  if (result.alternatives.size() != alts.size()) return false;
  vhdl::EmissionCache emission;
  for (std::size_t i = 0; i < alts.size(); ++i) {
    const ResultAlternative& got = result.alternatives[i];
    const dtas::AlternativeDesign& want = alts[i];
    if (got.area != want.metric.area) return false;
    if (got.delay != want.metric.delay) return false;
    if (got.description != want.description) return false;
    if (with_vhdl &&
        got.vhdl != vhdl::emit_structural(*want.design, emission)) {
      return false;
    }
  }
  return true;
}

// --- execution --------------------------------------------------------------

std::unique_ptr<dtas::Synthesizer> make_session(
    const SynthesisRequest& req, const cells::CellLibrary& library) {
  return std::make_unique<dtas::Synthesizer>(library,
                                             req.options.space_options());
}

SynthesisResult run_request(const SynthesisRequest& req,
                            dtas::Synthesizer& session) {
  SynthesisResult res;
  try {
    // Re-arm the per-request policy: a warm session serves requests with
    // different deadlines (synthesize calls arm_deadline themselves).
    session.space().set_deadline_policy(req.options.deadline_ms,
                                        req.options.deadline_best_effort,
                                        session.space().options().cancel);
    const dtas::SpaceStats before = session.space().stats();
    const dtas::ExtractionCache::Stats ex_before =
        session.extraction_cache().stats();

    std::vector<dtas::AlternativeDesign> alts =
        req.spec ? session.synthesize(*req.spec)
                 : session.synthesize_netlist(*req.input_netlist);

    const dtas::SpaceStats& after = session.space().stats();
    const dtas::ExtractionCache::Stats& ex_after =
        session.extraction_cache().stats();
    res.deadline_hit = after.deadline_hit;
    res.stats.combinations_evaluated =
        after.combinations_evaluated - before.combinations_evaluated;
    res.stats.combinations_pruned =
        after.combinations_pruned - before.combinations_pruned;
    res.stats.template_cache_hits =
        after.template_cache_hits - before.template_cache_hits;
    res.stats.template_cache_misses =
        after.template_cache_misses - before.template_cache_misses;
    res.stats.extraction_cache_hits = ex_after.hits - ex_before.hits;
    res.stats.extraction_cache_misses = ex_after.misses - ex_before.misses;

    vhdl::EmissionCache emission;
    res.alternatives.reserve(alts.size());
    for (const dtas::AlternativeDesign& alt : alts) {
      ResultAlternative a;
      a.area = alt.metric.area;
      a.delay = alt.metric.delay;
      a.description = alt.description;
      if (req.options.emit_vhdl) {
        a.vhdl = vhdl::emit_structural(*alt.design, emission);
      }
      res.alternatives.push_back(std::move(a));
    }
    if (req.options.verify) {
      // One cache across the front: the alternatives share almost every
      // module, so each distinct module is linted once per request.
      lint::Cache lint_cache;
      for (const dtas::AlternativeDesign& alt : alts) {
        std::vector<lint::Diagnostic> diags =
            lint::lint_design(*alt.design, lint_cache);
        res.diagnostics.insert(res.diagnostics.end(),
                               std::make_move_iterator(diags.begin()),
                               std::make_move_iterator(diags.end()));
      }
    }
    if (req.options.include_profile) {
      res.has_profile = true;
      res.profile = session.last_profile();
    }
  } catch (const Cancelled& e) {
    return SynthesisResult::make_error("cancelled", e.what());
  } catch (const std::exception& e) {
    return SynthesisResult::make_error("error", e.what());
  }
  return res;
}

SynthesisResult run_request(const SynthesisRequest& req,
                            const cells::LibraryRegistry& registry) {
  const cells::CellLibrary* library = registry.find(req.library);
  if (library == nullptr) {
    try {
      registry.at(req.library);  // throws, listing the known names
    } catch (const std::exception& e) {
      return SynthesisResult::make_error("error", e.what());
    }
  }
  try {
    std::unique_ptr<dtas::Synthesizer> session = make_session(req, *library);
    return run_request(req, *session);
  } catch (const std::exception& e) {
    return SynthesisResult::make_error("error", e.what());
  }
}

}  // namespace bridge::api
