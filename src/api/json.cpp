#include "api/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace bridge::api {

namespace {

[[noreturn]] void type_error(const char* want, Json::Type got) {
  static const char* names[] = {"null",   "bool",  "number",
                                "string", "array", "object"};
  throw Error(std::string("JSON value is ") +
              names[static_cast<int>(got)] + ", expected " + want);
}

}  // namespace

bool Json::bool_value() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Json::number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return num_;
}

long Json::integer() const {
  const double v = number();
  const long l = static_cast<long>(v);
  if (static_cast<double>(l) != v) {
    throw Error("JSON number " + format_json_number(v) +
                " is not an integer");
  }
  return l;
}

const std::string& Json::string_value() const {
  if (type_ != Type::kString) type_error("string", type_);
  return str_;
}

Json& Json::push_back(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_);
  arr_.push_back(std::move(v));
  return *this;
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return arr_;
}

Json& Json::set(const std::string& key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(key, std::move(value));
  return *this;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  if (v == nullptr) {
    if (type_ != Type::kObject) type_error("object", type_);
    throw Error("JSON object has no member '" + key + "'");
  }
  return *v;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return obj_;
}

bool Json::bool_or(const std::string& key, bool dflt) const {
  const Json* v = find(key);
  return v == nullptr || v->is_null() ? dflt : v->bool_value();
}

long Json::int_or(const std::string& key, long dflt) const {
  const Json* v = find(key);
  return v == nullptr || v->is_null() ? dflt : v->integer();
}

double Json::num_or(const std::string& key, double dflt) const {
  const Json* v = find(key);
  return v == nullptr || v->is_null() ? dflt : v->number();
}

std::string Json::str_or(const std::string& key,
                         const std::string& dflt) const {
  const Json* v = find(key);
  return v == nullptr || v->is_null() ? dflt : v->string_value();
}

// --- serialization ---------------------------------------------------------

std::string format_json_number(double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; clamp to null-ish zero rather than emit an
    // unparsable token. Metrics are always finite, so this is a guard,
    // not a path the encoders take.
    return "0";
  }
  // Integral doubles in the exactly-representable range print as plain
  // integers; the rest get 17 significant digits, which round-trips any
  // double exactly through a correctly-rounded strtod.
  constexpr double kMaxExact = 9007199254740992.0;  // 2^53
  if (v == std::floor(v) && std::fabs(v) < kMaxExact) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

namespace {

void dump_to(const Json& j, std::string& out) {
  switch (j.type()) {
    case Json::Type::kNull:
      out += "null";
      return;
    case Json::Type::kBool:
      out += j.bool_value() ? "true" : "false";
      return;
    case Json::Type::kNumber:
      out += format_json_number(j.number());
      return;
    case Json::Type::kString:
      out.push_back('"');
      out += escape_json(j.string_value());
      out.push_back('"');
      return;
    case Json::Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Json& v : j.items()) {
        if (!first) out.push_back(',');
        first = false;
        dump_to(v, out);
      }
      out.push_back(']');
      return;
    }
    case Json::Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : j.members()) {
        if (!first) out.push_back(',');
        first = false;
        out.push_back('"');
        out += escape_json(k);
        out += "\":";
        dump_to(v, out);
      }
      out.push_back('}');
      return;
    }
  }
}

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_to(*this, out);
  return out;
}

// --- parser ----------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(const std::string& text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  Json parse_document() {
    Json v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg, line_, column());
  }

  int column() const {
    return static_cast<int>(pos_ - line_start_) + 1;
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char next() {
    if (eof()) fail("unexpected end of input");
    char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      line_start_ = pos_;
    }
    return c;
  }

  void skip_ws() {
    while (!eof()) {
      char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      next();
    }
  }

  void expect(char want) {
    if (eof() || peek() != want) {
      fail(std::string("expected '") + want + "'");
    }
    next();
  }

  bool consume(char want) {
    if (!eof() && peek() == want) {
      next();
      return true;
    }
    return false;
  }

  Json parse_value(int depth) {
    if (depth > max_depth_) fail("nesting too deep");
    skip_ws();
    if (eof()) fail("unexpected end of input");
    char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Json(parse_string());
      case 't':
        parse_keyword("true");
        return Json(true);
      case 'f':
        parse_keyword("false");
        return Json(false);
      case 'n':
        parse_keyword("null");
        return Json();
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  void parse_keyword(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (eof() || peek() != *p) fail(std::string("bad keyword; expected '") +
                                      word + "'");
      next();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (consume('}')) return obj;
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value(depth + 1));
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return obj;
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (consume(']')) return arr;
    for (;;) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (eof()) fail("unterminated string");
      char c = next();
      if (c == '"') return out;
      if (c == '\\') {
        if (eof()) fail("unterminated escape");
        char e = next();
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              if (eof()) fail("truncated \\u escape");
              char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= h - '0';
              else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
              else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
              else fail("bad hex digit in \\u escape");
            }
            // Encode the code unit as UTF-8. Surrogate pairs are not
            // combined (the API layer only ever emits \u00XX controls);
            // a lone surrogate still produces well-formed-enough bytes
            // rather than an error, matching lenient wire parsers.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            fail(std::string("bad escape '\\") + e + "'");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      } else {
        out.push_back(c);
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
      // sign consumed
    }
    if (eof() || peek() < '0' || peek() > '9') fail("malformed number");
    // RFC 8259 integer grammar: a leading zero stands alone.
    if (peek() == '0') {
      next();
      if (!eof() && peek() >= '0' && peek() <= '9') {
        fail("malformed number: leading zero");
      }
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') next();
    }
    if (consume('.')) {
      if (eof() || peek() < '0' || peek() > '9') {
        fail("malformed number: digits required after '.'");
      }
      while (!eof() && peek() >= '0' && peek() <= '9') next();
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      next();
      if (!eof() && (peek() == '+' || peek() == '-')) next();
      if (eof() || peek() < '0' || peek() > '9') {
        fail("malformed number: digits required in exponent");
      }
      while (!eof() && peek() >= '0' && peek() <= '9') next();
    }
    const std::string token = text_.substr(start, pos_ - start);
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number");
    if (!std::isfinite(v)) fail("number out of range");
    return Json(v);
  }

  const std::string& text_;
  const int max_depth_;
  std::size_t pos_ = 0;
  int line_ = 1;
  std::size_t line_start_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text, int max_depth) {
  return Parser(text, max_depth).parse_document();
}

}  // namespace bridge::api
