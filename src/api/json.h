// A small JSON value type for the request/response API and the server
// wire protocol.
//
// Why hand-rolled: the repo takes no external dependencies, and the API
// layer needs two properties a generic library would not promise anyway:
//
//  1. Deterministic serialization. Objects preserve *insertion order*
//     and dump() writes exactly what was inserted, so a value built by
//     the encoders in api/api.cpp — or parsed from their output —
//     re-serializes byte-identically. The protocol golden tests
//     (encode -> decode -> encode) pin this.
//  2. Exact double round-trips. Numbers are formatted with enough
//     digits (%.17g) that parse(dump(x)) yields the same double bit
//     pattern — which is what lets a front travel over the wire and
//     compare bit-identical to in-process synthesis.
//
// The parser is input-hardened like the repo's other text parsers
// (Liberty, data book, LEGEND): malformed input raises bridge::ParseError
// with line/column, nesting is depth-capped (a nesting bomb is an error,
// not a stack overflow), and the parser-robustness garbage corpus runs
// against it in tests/api_test.cpp.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "base/diag.h"

namespace bridge::api {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), num_(v) {}
  Json(int v) : type_(Type::kNumber), num_(v) {}
  Json(long v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw bridge::Error on a type mismatch (the server
  /// turns that into a clean error response, never undefined behavior).
  bool bool_value() const;
  double number() const;
  /// number() checked to be integral and in long range.
  long integer() const;
  const std::string& string_value() const;

  // --- arrays -------------------------------------------------------------
  Json& push_back(Json v);
  const std::vector<Json>& items() const;

  // --- objects (insertion-ordered) ----------------------------------------
  /// Append (or replace, by key) a member; returns *this for chaining.
  Json& set(const std::string& key, Json value);
  /// nullptr when absent (or when *this is not an object).
  const Json* find(const std::string& key) const;
  /// Throws bridge::Error naming the missing key.
  const Json& at(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const;

  // --- defaulted lookups for decoders --------------------------------------
  bool bool_or(const std::string& key, bool dflt) const;
  long int_or(const std::string& key, long dflt) const;
  double num_or(const std::string& key, double dflt) const;
  std::string str_or(const std::string& key, const std::string& dflt) const;

  /// Compact deterministic serialization (no whitespace, members in
  /// insertion order, integral doubles printed as integers, the rest
  /// with %.17g so they round-trip exactly).
  std::string dump() const;

  /// Parse a complete JSON document. Throws bridge::ParseError (with
  /// line/column) on any malformed input; nesting beyond `max_depth`
  /// is a ParseError, not a crash. Trailing non-whitespace is an error.
  static Json parse(const std::string& text, int max_depth = 96);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

/// Format one double the way dump() does (shared with code that needs
/// the identical text outside a Json value).
std::string format_json_number(double v);

/// JSON string escaping of `s` without the surrounding quotes.
std::string escape_json(const std::string& s);

}  // namespace bridge::api
