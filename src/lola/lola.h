// LOLA — the Logic Learning Assistant (paper §7, future direction):
// "The purpose of LOLA is to partially automate the maintenance of DTAS's
// library-specific rules. LOLA is invoked when DTAS is presented with a
// new cell library... LOLA applies abstract design principles to generate
// library-specific rules."
//
// The abstract principles are the parameterized rule constructors in
// src/dtas (ripple composition, bit slicing, select-tree composition,
// register packing, slice cascading). LOLA scans a data book, recognizes
// which granularities the library affords, and instantiates the matching
// rules.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cells/cell.h"
#include "dtas/rule.h"

namespace bridge::lola {

/// One induced rule plus the evidence that triggered it.
struct Induction {
  std::string rule_name;
  std::string principle;
  std::string evidence;  // the data-book cell that justified the rule
};

struct InductionReport {
  std::vector<Induction> inductions;
  std::string text() const;
};

/// Scan `library` and register the library-specific rules its cells
/// justify into `base` (skipping rules already present). Returns what was
/// induced and why.
InductionReport induce_rules(const cells::CellLibrary& library,
                             dtas::RuleBase& base);

}  // namespace bridge::lola
