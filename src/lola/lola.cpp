#include "lola/lola.h"

#include <sstream>

#include "genus/spec.h"

namespace bridge::lola {

using genus::Kind;

std::string InductionReport::text() const {
  std::ostringstream os;
  os << "LOLA induced " << inductions.size() << " library-specific rules:\n";
  for (const Induction& i : inductions) {
    os << "  " << i.rule_name << "  [" << i.principle << "]  from "
       << i.evidence << "\n";
  }
  return os.str();
}

InductionReport induce_rules(const cells::CellLibrary& library,
                             dtas::RuleBase& base) {
  InductionReport report;
  auto install = [&](std::unique_ptr<dtas::Rule> rule,
                     const cells::Cell& evidence) {
    if (base.find(rule->name()) != nullptr) return;  // already known
    report.inductions.push_back(
        Induction{rule->name(), rule->principle(), evidence.pretty()});
    base.add(std::move(rule));
  };

  for (const cells::Cell& cell : library.all()) {
    const auto& spec = cell.spec;
    switch (spec.kind) {
      case Kind::kAdder:
        if (spec.width > 1 && spec.carry_in && spec.carry_out) {
          if (spec.style == genus::Style::kCarryLookahead) {
            install(dtas::make_fast_adder_ripple_rule(spec.width, true),
                    cell);
          } else {
            install(dtas::make_ripple_adder_rule(spec.width, true), cell);
          }
        }
        break;
      case Kind::kAddSub:
        if (spec.width > 1 && spec.carry_in && spec.carry_out) {
          install(dtas::make_addsub_ripple_rule(spec.width, true), cell);
        }
        break;
      case Kind::kMux:
        if (spec.width > 1 && spec.size == 2) {
          install(dtas::make_mux_bitslice_rule(spec.width, true), cell);
        }
        if (spec.width == 1 && spec.size > 2) {
          install(dtas::make_mux_tree_rule(spec.size, true), cell);
        }
        break;
      case Kind::kRegister:
        if (spec.width > 1) {
          install(dtas::make_register_pack_rule(spec.width, true), cell);
        }
        break;
      case Kind::kComparator:
        if (spec.width > 1) {
          install(dtas::make_comparator_cascade_rule(spec.width, true), cell);
        }
        break;
      case Kind::kDecoder:
        if (spec.enable && spec.width >= 2) {
          install(dtas::make_decoder_tree_rule(spec.width, true), cell);
        }
        break;
      case Kind::kAlu:
        if (spec.width > 1 && spec.carry_in && spec.carry_out) {
          install(dtas::make_alu_slice_cascade_rule(spec.width, true), cell);
        }
        break;
      default:
        break;
    }
  }
  return report;
}

}  // namespace bridge::lola
