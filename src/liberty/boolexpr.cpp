#include "liberty/boolexpr.h"

#include <algorithm>
#include <cctype>

#include "base/diag.h"

namespace bridge::liberty {

struct BoolExpr::Node {
  enum class Kind { kVar, kConst, kNot, kAnd, kOr, kXor };
  Kind kind = Kind::kConst;
  bool value = false;             // kConst
  std::string name;               // kVar
  std::shared_ptr<const Node> a;  // kNot, and left of binary ops
  std::shared_ptr<const Node> b;  // right of binary ops
};

namespace {

using Node = BoolExpr::Node;
using NodePtr = std::shared_ptr<const Node>;

NodePtr make_var(std::string name) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kVar;
  n->name = std::move(name);
  return n;
}

NodePtr make_const(bool v) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kConst;
  n->value = v;
  return n;
}

NodePtr make_unary(NodePtr a) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kNot;
  n->a = std::move(a);
  return n;
}

NodePtr make_binary(Node::Kind kind, NodePtr a, NodePtr b) {
  auto n = std::make_shared<Node>();
  n->kind = kind;
  n->a = std::move(a);
  n->b = std::move(b);
  return n;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == '[' || c == ']';
}

/// Recursive-descent parser over the raw expression text. Liberty function
/// strings are one line, so ParseError carries line 1 and the column.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  NodePtr parse() {
    NodePtr e = parse_or();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("unexpected '" + std::string(1, text_[pos_]) + "'");
    }
    return e;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg + " in function \"" + text_ + "\"", 1,
                     static_cast<int>(pos_) + 1);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  /// True when the upcoming token can start a primary expression — which,
  /// directly after one, means juxtaposition (implicit AND).
  bool at_primary() {
    char c = peek();
    return c == '(' || c == '!' || is_ident_char(c);
  }

  NodePtr parse_or() {
    NodePtr lhs = parse_and();
    while (peek() == '|' || peek() == '+') {
      ++pos_;
      lhs = make_binary(Node::Kind::kOr, lhs, parse_and());
    }
    return lhs;
  }

  NodePtr parse_and() {
    NodePtr lhs = parse_xor();
    for (;;) {
      char c = peek();
      if (c == '&' || c == '*') {
        ++pos_;
        lhs = make_binary(Node::Kind::kAnd, lhs, parse_xor());
      } else if (at_primary()) {  // juxtaposition
        lhs = make_binary(Node::Kind::kAnd, lhs, parse_xor());
      } else {
        break;
      }
    }
    return lhs;
  }

  NodePtr parse_xor() {
    NodePtr lhs = parse_unary();
    while (peek() == '^') {
      ++pos_;
      lhs = make_binary(Node::Kind::kXor, lhs, parse_unary());
    }
    return lhs;
  }

  NodePtr parse_unary() {
    if (peek() == '!') {
      ++pos_;
      return make_unary(parse_unary());
    }
    NodePtr e = parse_primary();
    while (peek() == '\'') {  // postfix negation
      ++pos_;
      e = make_unary(e);
    }
    return e;
  }

  NodePtr parse_primary() {
    char c = peek();
    if (c == '(') {
      ++pos_;
      NodePtr e = parse_or();
      if (peek() != ')') fail("expected ')'");
      ++pos_;
      return e;
    }
    if (is_ident_char(c)) {
      size_t b = pos_;
      while (pos_ < text_.size() && is_ident_char(text_[pos_])) ++pos_;
      std::string name = text_.substr(b, pos_ - b);
      if (name == "0") return make_const(false);
      if (name == "1") return make_const(true);
      return make_var(std::move(name));
    }
    if (c == '\0') fail("unexpected end of expression");
    fail("unexpected '" + std::string(1, c) + "'");
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void collect_vars(const Node* n, std::vector<std::string>& out) {
  if (n == nullptr) return;
  if (n->kind == Node::Kind::kVar) out.push_back(n->name);
  collect_vars(n->a.get(), out);
  collect_vars(n->b.get(), out);
}

bool eval_node(const Node* n, const std::map<std::string, bool>& env) {
  switch (n->kind) {
    case Node::Kind::kConst:
      return n->value;
    case Node::Kind::kVar: {
      auto it = env.find(n->name);
      if (it == env.end()) {
        throw Error("unbound variable '" + n->name +
                    "' in boolean expression");
      }
      return it->second;
    }
    case Node::Kind::kNot:
      return !eval_node(n->a.get(), env);
    case Node::Kind::kAnd:
      return eval_node(n->a.get(), env) && eval_node(n->b.get(), env);
    case Node::Kind::kOr:
      return eval_node(n->a.get(), env) || eval_node(n->b.get(), env);
    case Node::Kind::kXor:
      return eval_node(n->a.get(), env) != eval_node(n->b.get(), env);
  }
  throw Error("corrupt boolean expression node");
}

}  // namespace

BoolExpr BoolExpr::parse(const std::string& text) {
  BoolExpr e;
  e.text_ = text;
  e.root_ = Parser(text).parse();
  return e;
}

std::vector<std::string> BoolExpr::variables() const {
  std::vector<std::string> vars;
  collect_vars(root_.get(), vars);
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

bool BoolExpr::eval(const std::map<std::string, bool>& env) const {
  return eval_node(root_.get(), env);
}

std::uint64_t BoolExpr::truth_table(
    const std::vector<std::string>& inputs) const {
  BRIDGE_CHECK(inputs.size() <= 6,
               "truth_table limited to 6 inputs, got " << inputs.size());
  std::uint64_t table = 0;
  const int rows = 1 << inputs.size();
  std::map<std::string, bool> env;
  for (int j = 0; j < rows; ++j) {
    for (size_t i = 0; i < inputs.size(); ++i) {
      env[inputs[i]] = ((j >> i) & 1) != 0;
    }
    if (eval(env)) table |= std::uint64_t{1} << j;
  }
  return table;
}

bool BoolExpr::is_variable(const std::string& name) const {
  return root_ != nullptr && root_->kind == Node::Kind::kVar &&
         root_->name == name;
}

}  // namespace bridge::liberty
