// Boolean function expressions as written in Liberty `function` attributes.
//
// Liberty describes each combinational output pin with a boolean expression
// over the cell's input pins, e.g.
//
//   function : "(A0 & !S) | (A1 & S)";
//   function : "(A & B) | (A & CIN) | (B & CIN)";
//
// The spec-inference pass (liberty.h) evaluates these expressions into
// truth tables and recognizes them as GENUS component specifications —
// the same "functional specification, not Boolean DAG" idea the paper
// applies to data-book cells (§5), extended to Liberty ingestion.
//
// Supported grammar (Liberty operator precedence, descending):
//   '  postfix negation          !  prefix negation
//   ^  exclusive or
//   &  *  and juxtaposition: AND
//   |  +  : OR
//   0 / 1 constants, parenthesized subexpressions.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace bridge::liberty {

class BoolExpr {
 public:
  /// Parse an expression. Throws ParseError (column within the expression;
  /// callers add the Liberty line number) on malformed input.
  static BoolExpr parse(const std::string& text);

  /// All variable names referenced, sorted and de-duplicated.
  std::vector<std::string> variables() const;

  /// Evaluate under an assignment. Throws Error on an unbound variable.
  bool eval(const std::map<std::string, bool>& env) const;

  /// Truth table over an explicit input ordering: bit j of the result is
  /// the expression's value when input i takes bit i of j. Inputs the
  /// expression does not reference are don't-cares that still widen the
  /// table; inputs.size() must be <= 6 (64-row table).
  std::uint64_t truth_table(const std::vector<std::string>& inputs) const;

  /// True when the expression is a bare variable reference to `name`.
  bool is_variable(const std::string& name) const;

  /// The normalized source text.
  const std::string& text() const { return text_; }

  struct Node;  // defined in boolexpr.cpp

 private:
  BoolExpr() = default;

  std::string text_;
  std::shared_ptr<const Node> root_;  // shared: BoolExpr is a cheap value
};

}  // namespace bridge::liberty
