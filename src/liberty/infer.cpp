// Spec inference: recognize each Liberty cell's boolean function / ff
// group as a GENUS ComponentSpec.
//
// This is the paper's pivotal representation choice (§5) applied to
// Liberty ingestion: instead of matching Boolean DAGs, every cell is
// lifted to a functional specification (kind, width, fan-in, operation
// set, structural flags) and from then on participates in DTAS's
// functional matching and LOLA's rule induction exactly like a data-book
// cell. Recognition is semantic — truth tables over the input pins — so
// syntactically different functions ("(A&B)" vs "!(!A|!B)") infer the
// same spec. Cells outside the subset (latches, AOI shapes, wide
// fan-in) are skipped with a diagnostic, never a crash.
#include <algorithm>
#include <sstream>
#include <tuple>

#include "base/diag.h"
#include "base/fileio.h"
#include "base/strutil.h"
#include "liberty/boolexpr.h"
#include "liberty/liberty.h"

namespace bridge::liberty {

namespace {

using genus::ComponentSpec;
using genus::Kind;
using genus::Op;
using genus::OpSet;

/// Truth table of an n-ary op over the canonical input ordering: bit j is
/// the result when input i takes bit i of j.
std::uint64_t op_table(Op op, int n) {
  std::uint64_t table = 0;
  const int rows = 1 << n;
  for (int j = 0; j < rows; ++j) {
    const int ones = __builtin_popcount(static_cast<unsigned>(j));
    bool v = false;
    switch (op) {
      case Op::kAnd:  v = ones == n; break;
      case Op::kOr:   v = ones > 0; break;
      case Op::kNand: v = ones != n; break;
      case Op::kNor:  v = ones == 0; break;
      case Op::kXor:  v = (ones & 1) != 0; break;
      case Op::kXnor: v = (ones & 1) == 0; break;
      case Op::kBuf:  v = (j & 1) != 0; break;
      case Op::kLnot: v = (j & 1) == 0; break;
      default:
        BRIDGE_CHECK(false, "op_table: not a gate op");
    }
    if (v) table |= std::uint64_t{1} << j;
  }
  return table;
}

/// Majority-of-3 (the full-adder carry function).
std::uint64_t majority3_table() {
  std::uint64_t table = 0;
  for (int j = 0; j < 8; ++j) {
    if (__builtin_popcount(static_cast<unsigned>(j)) >= 2) {
      table |= std::uint64_t{1} << j;
    }
  }
  return table;
}

/// out = inputs[s] ? inputs[b] : inputs[a].
std::uint64_t mux2_table(int n, int s, int a, int b) {
  std::uint64_t table = 0;
  const int rows = 1 << n;
  for (int j = 0; j < rows; ++j) {
    const bool sel = ((j >> s) & 1) != 0;
    const bool v = ((j >> (sel ? b : a)) & 1) != 0;
    if (v) table |= std::uint64_t{1} << j;
  }
  return table;
}

/// out = inputs[d[2*s1 + s0]] for the 4-to-1 multiplexer.
std::uint64_t mux4_table(int n, int s1, int s0, const int d[4]) {
  std::uint64_t table = 0;
  const int rows = 1 << n;
  for (int j = 0; j < rows; ++j) {
    const int sel = (((j >> s1) & 1) << 1) | ((j >> s0) & 1);
    if (((j >> d[sel]) & 1) != 0) table |= std::uint64_t{1} << j;
  }
  return table;
}

bool is_constant_table(std::uint64_t table, int n) {
  const int rows = 1 << n;
  const std::uint64_t mask =
      rows == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << rows) - 1;
  return (table & mask) == 0 || (table & mask) == mask;
}

/// Try to classify a single-output truth table over n inputs as a gate,
/// buffer/inverter, or multiplexer specification.
std::optional<ComponentSpec> classify_single_output(std::uint64_t table,
                                                    int n) {
  if (n == 1) {
    if (table == op_table(Op::kBuf, 1)) return genus::make_gate_spec(Op::kBuf, 1);
    if (table == op_table(Op::kLnot, 1)) {
      return genus::make_gate_spec(Op::kLnot, 1);
    }
    return std::nullopt;
  }
  for (Op op : {Op::kAnd, Op::kOr, Op::kNand, Op::kNor, Op::kXor, Op::kXnor}) {
    if (table == op_table(op, n)) return genus::make_gate_spec(op, 1, n);
  }
  if (n == 3) {
    for (int s = 0; s < 3; ++s) {
      const int a = s == 0 ? 1 : 0;
      const int b = s == 2 ? 1 : 2;
      if (table == mux2_table(3, s, a, b) ||
          table == mux2_table(3, s, b, a)) {
        return genus::make_mux_spec(1, 2);
      }
    }
  }
  if (n == 6) {
    // 4-to-1 multiplexer: try every ordered select pair and every
    // assignment of the remaining inputs to the data positions.
    for (int s1 = 0; s1 < 6; ++s1) {
      for (int s0 = 0; s0 < 6; ++s0) {
        if (s0 == s1) continue;
        int rest[4];
        int k = 0;
        for (int i = 0; i < 6; ++i) {
          if (i != s0 && i != s1) rest[k++] = i;
        }
        std::sort(rest, rest + 4);
        do {
          if (table == mux4_table(6, s1, s0, rest)) {
            return genus::make_mux_spec(1, 4);
          }
        } while (std::next_permutation(rest, rest + 4));
      }
    }
  }
  return std::nullopt;
}

/// Recognize an active-high enable-mux next_state `E ? D : IQ` (either
/// non-state pin may be the enable) as a clock-enable flip-flop. The
/// active-low form `E ? IQ : D` is NOT accepted: the spec model carries
/// no enable polarity and DTAS ties unmatched enables to 1 (active
/// high), which would leave an active-low cell permanently holding.
bool next_state_is_enable_mux(const BoolExpr& expr, const std::string& state) {
  std::vector<std::string> vars = expr.variables();
  if (vars.size() != 3) return false;
  auto it = std::find(vars.begin(), vars.end(), state);
  if (it == vars.end()) return false;
  const std::uint64_t table = expr.truth_table(vars);
  const int state_idx = static_cast<int>(it - vars.begin());
  const int a = state_idx == 0 ? 1 : 0;
  const int b = state_idx == 2 ? 1 : 2;
  // The held state must sit on the select-low leg: select high loads
  // the data pin.
  return table == mux2_table(3, a, state_idx, b) ||
         table == mux2_table(3, b, state_idx, a);
}

std::optional<ComponentSpec> infer_ff(const Cell& cell, std::string* reason) {
  const FlipFlop& ff = *cell.ff;
  if (ff.clocked_on.empty() || ff.next_state.empty()) {
    *reason = "ff group lacks clocked_on/next_state";
    return std::nullopt;
  }
  // Every variable in the ff expressions must name an input pin (or, for
  // next_state, the held state) — mirroring the combinational path's
  // check, so a typo'd Liberty file skips instead of loading silently.
  for (const auto& [attr, text, allow_state] :
       {std::tuple<const char*, const std::string&, bool>{
            "clocked_on", ff.clocked_on, false},
        {"next_state", ff.next_state, true},
        {"clear", ff.clear, false},
        {"preset", ff.preset, false}}) {
    if (text.empty()) continue;
    for (const std::string& v : BoolExpr::parse(text).variables()) {
      if (allow_state && (v == ff.state || v == ff.state_inv)) continue;
      const Pin* pin = cell.find_pin(v);
      if (pin == nullptr || pin->dir != PinDir::kInput) {
        *reason = std::string(attr) + " references '" + v +
                  "', which is not an input pin";
        return std::nullopt;
      }
    }
  }
  ComponentSpec spec;
  spec.kind = Kind::kFlipFlop;
  spec.width = 1;
  spec.ops = OpSet{Op::kLoad};
  spec.async_set = !ff.preset.empty();
  spec.async_reset = !ff.clear.empty();

  BoolExpr next = BoolExpr::parse(ff.next_state);
  const std::vector<std::string> next_vars = next.variables();
  if (next_vars.size() == 1 && next.is_variable(next_vars[0]) &&
      next_vars[0] != ff.state && next_vars[0] != ff.state_inv) {
    // Plain D input (possibly parenthesized). An inverted input ("!D")
    // stores the complement — the spec model cannot express that
    // polarity, so such cells fall through to the skip diagnostic.
    return spec;
  }
  if (next_state_is_enable_mux(next, ff.state)) {
    spec.enable = true;
    return spec;
  }
  *reason = "unsupported next_state function \"" + ff.next_state + "\"";
  return std::nullopt;
}

}  // namespace

std::optional<ComponentSpec> infer_spec(const Cell& cell,
                                        std::string* reason) {
  std::string local;
  if (reason == nullptr) reason = &local;
  if (cell.is_latch) {
    *reason = "latch cells are not representable as GENUS specs";
    return std::nullopt;
  }
  if (cell.has_bus) {
    *reason = "bus/bundle pins unsupported";
    return std::nullopt;
  }
  if (cell.ff.has_value()) return infer_ff(cell, reason);

  std::vector<std::string> inputs;
  std::vector<const Pin*> outputs;
  for (const Pin& p : cell.pins) {
    if (p.dir == PinDir::kInput) {
      inputs.push_back(p.name);
    } else if (p.dir == PinDir::kOutput && !p.function.empty()) {
      outputs.push_back(&p);
    }
  }
  if (outputs.empty()) {
    *reason = "no output pin with a function";
    return std::nullopt;
  }
  if (inputs.size() > 6) {
    *reason = "more than 6 input pins (" + std::to_string(inputs.size()) +
              ") exceeds the recognition subset";
    return std::nullopt;
  }

  std::vector<BoolExpr> exprs;
  std::vector<std::uint64_t> tables;
  for (const Pin* out : outputs) {
    BoolExpr expr = BoolExpr::parse(out->function);
    for (const std::string& v : expr.variables()) {
      if (std::find(inputs.begin(), inputs.end(), v) == inputs.end()) {
        *reason = "function of pin " + out->name +
                  " references non-input '" + v + "'";
        return std::nullopt;
      }
    }
    tables.push_back(expr.truth_table(inputs));
    exprs.push_back(std::move(expr));
  }
  const int n = static_cast<int>(inputs.size());

  if (outputs.size() == 1) {
    if (inputs.empty() || is_constant_table(tables[0], n)) {
      *reason = "constant function (tie cell)";
      return std::nullopt;
    }
    if (outputs[0]->three_state) {
      // A tristate buffer's function is the bare data pin; the enable
      // appears only in the (unmodeled) three_state condition, so
      // classify over the referenced variable, not all inputs.
      const BoolExpr& fn = exprs[0];
      const std::vector<std::string> vars = fn.variables();
      if (vars.size() == 1 && fn.is_variable(vars[0])) {
        ComponentSpec ts;
        ts.kind = Kind::kTristate;
        ts.width = 1;
        ts.ops = OpSet{Op::kPass};
        ts.tristate = true;
        return ts;
      }
      *reason = "three_state output with a non-buffer function";
      return std::nullopt;
    }
    std::optional<ComponentSpec> spec = classify_single_output(tables[0], n);
    if (!spec.has_value()) {
      *reason = "unrecognized function \"" + outputs[0]->function + "\"";
      return std::nullopt;
    }
    return spec;
  }

  if (outputs.size() == 2 && n == 3) {
    // Full adder: one output is the 3-input parity (SUM), the other the
    // majority (COUT). Input order is irrelevant — both are symmetric.
    const std::uint64_t parity = op_table(Op::kXor, 3);
    const std::uint64_t major = majority3_table();
    if ((tables[0] == parity && tables[1] == major) ||
        (tables[0] == major && tables[1] == parity)) {
      return genus::make_adder_spec(1, /*carry_in=*/true, /*carry_out=*/true);
    }
  }
  if (outputs.size() == 2 && n == 2) {
    // Half adder: XOR (SUM) plus AND (COUT).
    const std::uint64_t x = op_table(Op::kXor, 2);
    const std::uint64_t a = op_table(Op::kAnd, 2);
    if ((tables[0] == x && tables[1] == a) ||
        (tables[0] == a && tables[1] == x)) {
      return genus::make_adder_spec(1, /*carry_in=*/false, /*carry_out=*/true);
    }
  }
  *reason = "unrecognized multi-output function shape (" +
            std::to_string(outputs.size()) + " outputs, " +
            std::to_string(n) + " inputs)";
  return std::nullopt;
}

std::string LoadReport::text() const {
  std::ostringstream os;
  os << "liberty load: " << recognized << " cells recognized, "
     << skipped.size() << " skipped\n";
  for (const SkippedCell& s : skipped) {
    os << "  skipped " << s.cell << ": " << s.reason << "\n";
  }
  return os.str();
}

cells::CellLibrary to_cell_library(const Library& lib, LoadReport* report,
                                   const LoadOptions& options) {
  LoadReport local;
  if (report == nullptr) report = &local;
  *report = LoadReport{};

  cells::CellLibrary out(lib.name, "Liberty import (" +
                                       std::to_string(lib.cells.size()) +
                                       " source cells)");
  std::vector<cells::Cell> converted;
  for (const Cell& c : lib.cells) {
    std::string reason;
    std::optional<ComponentSpec> spec;
    try {
      spec = infer_spec(c, &reason);
    } catch (const Error& e) {
      // A malformed function expression inside one cell skips that cell,
      // it does not abort the whole library.
      reason = e.what();
    }
    if (!spec.has_value()) {
      report->skipped.push_back(SkippedCell{c.name, reason});
      continue;
    }
    cells::Cell cell;
    cell.name = c.name;
    cell.spec = *spec;
    cell.area = c.area;
    double delay = 0.0;
    for (const Pin& p : c.pins) {
      if (p.dir == PinDir::kOutput) delay = std::max(delay, p.max_delay());
    }
    cell.delay_ns = delay * lib.time_scale_ns;
    cell.description = "liberty cell (line " + std::to_string(c.line) + ")";
    converted.push_back(std::move(cell));
    ++report->recognized;
  }

  if (options.normalize_area) {
    // Normalize to NAND2-equivalents when the library offers a 2-input
    // NAND, so areas are comparable with the built-in data books. With
    // several drive strengths of the same function, the smallest is the
    // nominal gate — file order must not change the base.
    const ComponentSpec nand2 = genus::make_gate_spec(Op::kNand, 1, 2);
    double nand2_area = 0.0;
    for (const cells::Cell& c : converted) {
      if (c.spec == nand2 && c.area > 0.0 &&
          (nand2_area == 0.0 || c.area < nand2_area)) {
        nand2_area = c.area;
      }
    }
    if (nand2_area > 0.0) {
      for (cells::Cell& c : converted) c.area /= nand2_area;
    }
  }
  for (cells::Cell& c : converted) out.add(std::move(c));
  return out;
}

cells::CellLibrary load_liberty(const std::string& text, LoadReport* report,
                                const LoadOptions& options) {
  return to_cell_library(parse_liberty(text), report, options);
}

cells::CellLibrary load_liberty_file(const std::string& path,
                                     LoadReport* report,
                                     const LoadOptions& options) {
  return load_liberty(read_text_file(path, "liberty file"), report, options);
}

}  // namespace bridge::liberty
