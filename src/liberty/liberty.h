// Liberty-subset technology library ingestion.
//
// The paper demonstrates retargeting DTAS by hand-writing a second data
// book (§7, the LOLA experiments). This subsystem opens that path to real
// RTL technology libraries: a Liberty (.lib) subset is parsed into a
// liberty::Library, a spec-inference pass recognizes each cell's boolean
// function / ff group as a GENUS ComponentSpec (the paper's "functional
// specification of library cells", §5), and the result is an ordinary
// cells::CellLibrary that DTAS synthesizes against — so any Liberty file
// becomes a retargeting workload, not just the two built-in books.
//
// Supported Liberty subset:
//   library (NAME) { time_unit : "1ns";
//     cell (NAME) { area : A;
//       pin (P) { direction : ...; function : "..."; three_state ...;
//                 timing () { related_pin : "..."; intrinsic_rise : d;
//                             cell_rise (tpl) { values ("...", ...); } } }
//       ff (IQ, IQN) { clocked_on : "CK"; next_state : "D";
//                      clear : "!R"; preset : "!S"; } } }
// Unrecognized attributes/groups are skipped; cells whose function the
// inference pass cannot express as a ComponentSpec are skipped with a
// diagnostic (never a crash).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cells/cell.h"

namespace bridge::liberty {

enum class PinDir : std::uint8_t { kInput, kOutput, kInout, kInternal };

/// One timing() group of an output pin, reduced to its worst-case delay
/// (max over intrinsic_rise/fall and cell_rise/cell_fall table values),
/// in library time units.
struct TimingArc {
  std::string related_pin;
  double max_delay = 0.0;
};

struct Pin {
  std::string name;
  PinDir dir = PinDir::kInput;
  std::string function;  // boolean function text; empty when absent
  bool three_state = false;
  std::vector<TimingArc> timings;
  int line = 0;  // source line of the pin group (diagnostics)

  /// Worst delay over all timing arcs, in library time units.
  double max_delay() const;
};

/// The ff (state, state_inv) group of a sequential cell.
struct FlipFlop {
  std::string state;      // e.g. "IQ"
  std::string state_inv;  // e.g. "IQN"
  std::string clocked_on;
  std::string next_state;
  std::string clear;   // async clear expression; empty when absent
  std::string preset;  // async preset expression; empty when absent
};

struct Cell {
  std::string name;
  double area = 0.0;
  bool is_latch = false;  // latch group seen (unsupported downstream)
  bool has_bus = false;   // bus/bundle group seen (unsupported downstream)
  std::optional<FlipFlop> ff;
  std::vector<Pin> pins;
  int line = 0;  // source line of the cell group (diagnostics)

  const Pin* find_pin(const std::string& name) const;
};

struct Library {
  std::string name;
  /// Multiply pin delays by this to get nanoseconds (from time_unit).
  double time_scale_ns = 1.0;
  std::vector<Cell> cells;
};

/// Parse the Liberty subset. Throws ParseError with line/column on
/// malformed input (unbalanced groups, missing ';', bad numbers).
Library parse_liberty(const std::string& text);

// --- spec inference -------------------------------------------------------

/// One cell the inference pass could not convert, and why.
struct SkippedCell {
  std::string cell;
  std::string reason;
};

struct LoadReport {
  int recognized = 0;
  std::vector<SkippedCell> skipped;
  std::string text() const;
};

struct LoadOptions {
  /// Liberty areas are usually um^2, not the equivalent-NAND-gate unit of
  /// the built-in data books. When true and the library contains a 2-input
  /// NAND cell, all areas are divided by its area so results are
  /// comparable across libraries (Figure-3 units).
  bool normalize_area = true;
};

/// Infer a GENUS ComponentSpec for one combinational/ff cell. Returns
/// nullopt (with *reason set) when the cell is outside the recognizable
/// subset: latches, bus pins, >6 inputs, tristate non-buffers, or boolean
/// functions that are not a gate / mux / adder shape.
std::optional<genus::ComponentSpec> infer_spec(const Cell& cell,
                                               std::string* reason);

/// Convert a parsed Liberty library into a DTAS cell library. Cells that
/// fail inference are recorded in `report` and skipped.
///
/// Fingerprint contract: the produced library's content fingerprint
/// (cells::CellLibrary::fingerprint — the identity the delta-aware cache
/// keys and server sessions hang off) depends only on the *content* the
/// loader admits — cell names, inferred specs, areas, worst-case delays.
/// Loading byte-identical .lib text therefore always yields the same
/// fingerprint, whichever path it arrived by (load_liberty on a string vs
/// load_liberty_file, fresh parse vs re-registration) and regardless of
/// cell declaration order, while any admitted-content edit — a cell
/// dropped by a changed function, a retimed arc, a renamed cell — changes
/// it. tests/fingerprint_test.cpp pins this.
cells::CellLibrary to_cell_library(const Library& lib,
                                   LoadReport* report = nullptr,
                                   const LoadOptions& options = {});

/// parse_liberty + to_cell_library.
cells::CellLibrary load_liberty(const std::string& text,
                                LoadReport* report = nullptr,
                                const LoadOptions& options = {});

/// Read a .lib file from disk. Throws Error when unreadable.
cells::CellLibrary load_liberty_file(const std::string& path,
                                     LoadReport* report = nullptr,
                                     const LoadOptions& options = {});

}  // namespace bridge::liberty
