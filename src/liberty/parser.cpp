// Liberty-subset parser: tokenizer, generic group reader, and the
// interpretation of library / cell / pin / ff / timing groups into the
// typed AST of liberty.h. Attributes and groups outside the subset are
// skipped so real vendor files (which carry power, leakage, templates,
// operating conditions, ...) parse without special cases.
#include <algorithm>
#include <cctype>

#include "base/diag.h"
#include "base/strutil.h"
#include "liberty/liberty.h"

namespace bridge::liberty {

namespace {

struct Token {
  enum class Kind { kIdent, kString, kPunct, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
  int line = 1;
  int col = 1;
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == '[' || c == ']' || c == '-' || c == '+';
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { advance(); }

  const Token& peek() const { return tok_; }

  Token take() {
    Token t = tok_;
    advance();
    return t;
  }

 private:
  void advance() {
    skip_space_and_comments();
    tok_.line = line_;
    tok_.col = col();
    if (pos_ >= text_.size()) {
      tok_.kind = Token::Kind::kEnd;
      tok_.text.clear();
      return;
    }
    char c = text_[pos_];
    if (c == '"') {
      size_t end = text_.find('"', pos_ + 1);
      if (end == std::string::npos) {
        throw ParseError("unterminated string", line_, col());
      }
      tok_.kind = Token::Kind::kString;
      tok_.text = text_.substr(pos_ + 1, end - pos_ - 1);
      // Keep the line counter honest even if the string spans lines
      // (e.g. a missing closing quote swallowing text up to the next
      // one): later errors must still point near the real defect.
      for (size_t i = pos_; i < end; ++i) {
        if (text_[i] == '\n') {
          line_ += 1;
          line_start_ = i + 1;
        }
      }
      pos_ = end + 1;
      return;
    }
    if (c == '{' || c == '}' || c == '(' || c == ')' || c == ':' ||
        c == ';' || c == ',') {
      tok_.kind = Token::Kind::kPunct;
      tok_.text.assign(1, c);
      ++pos_;
      return;
    }
    if (is_ident_char(c)) {
      size_t b = pos_;
      while (pos_ < text_.size() && is_ident_char(text_[pos_])) ++pos_;
      tok_.kind = Token::Kind::kIdent;
      tok_.text = text_.substr(b, pos_ - b);
      return;
    }
    throw ParseError("unexpected character '" + std::string(1, c) + "'",
                     line_, col());
  }

  void skip_space_and_comments() {
    for (;;) {
      while (pos_ < text_.size()) {
        char c = text_[pos_];
        if (c == '\n') {
          ++line_;
          line_start_ = ++pos_;
        } else if (std::isspace(static_cast<unsigned char>(c))) {
          ++pos_;
        } else if (c == '\\' && pos_ + 1 < text_.size() &&
                   (text_[pos_ + 1] == '\n' ||
                    (text_[pos_ + 1] == '\r' && pos_ + 2 < text_.size() &&
                     text_[pos_ + 2] == '\n'))) {
          // Liberty line continuation.
          pos_ += text_[pos_ + 1] == '\n' ? 2 : 3;
          ++line_;
          line_start_ = pos_;
        } else {
          break;
        }
      }
      if (pos_ + 1 < text_.size() && text_[pos_] == '/' &&
          text_[pos_ + 1] == '*') {
        size_t end = text_.find("*/", pos_ + 2);
        if (end == std::string::npos) {
          throw ParseError("unterminated comment", line_, col());
        }
        for (size_t i = pos_; i < end; ++i) {
          if (text_[i] == '\n') {
            ++line_;
            line_start_ = i + 1;
          }
        }
        pos_ = end + 2;
        continue;
      }
      if (pos_ + 1 < text_.size() && text_[pos_] == '/' &&
          text_[pos_ + 1] == '/') {
        pos_ = text_.find('\n', pos_);
        if (pos_ == std::string::npos) pos_ = text_.size();
        continue;
      }
      break;
    }
  }

  int col() const { return static_cast<int>(pos_ - line_start_) + 1; }

  const std::string& text_;
  size_t pos_ = 0;
  size_t line_start_ = 0;
  int line_ = 1;
  Token tok_;
};

/// Generic Liberty group: `name (args) { attributes and subgroups }`.
struct GenAttr {
  std::string name;
  std::vector<std::string> values;
  int line = 1;
};

struct GenGroup {
  std::string name;
  std::vector<std::string> args;
  std::vector<GenAttr> attrs;
  std::vector<GenGroup> groups;
  int line = 1;
};

class GroupParser {
 public:
  explicit GroupParser(const std::string& text) : lex_(text) {}

  GenGroup parse_top() {
    Token head = expect_ident("a group name");
    GenGroup top = parse_group(std::move(head));
    if (lex_.peek().kind != Token::Kind::kEnd) {
      const Token& t = lex_.peek();
      throw ParseError("trailing input after top-level group", t.line, t.col);
    }
    return top;
  }

 private:
  Token expect_ident(const std::string& what) {
    Token t = lex_.take();
    if (t.kind != Token::Kind::kIdent) {
      throw ParseError("expected " + what, t.line, t.col);
    }
    return t;
  }

  void expect_punct(char c) {
    Token t = lex_.take();
    if (t.kind != Token::Kind::kPunct || t.text[0] != c) {
      throw ParseError("expected '" + std::string(1, c) + "', got '" +
                           t.text + "'",
                       t.line, t.col);
    }
  }

  bool peek_punct(char c) const {
    return lex_.peek().kind == Token::Kind::kPunct &&
           lex_.peek().text[0] == c;
  }

  std::vector<std::string> parse_args() {
    expect_punct('(');
    std::vector<std::string> args;
    while (!peek_punct(')')) {
      Token t = lex_.take();
      if (t.kind == Token::Kind::kEnd) {
        throw ParseError("unterminated '(' argument list", t.line, t.col);
      }
      if (t.kind == Token::Kind::kPunct) {
        if (t.text[0] == ',') continue;
        throw ParseError("unexpected '" + t.text + "' in argument list",
                         t.line, t.col);
      }
      args.push_back(t.text);
    }
    expect_punct(')');
    return args;
  }

  // Recursion guard: parse_body recurses once per nested group, so a
  // garbage file of repeated "g(){g(){..." would otherwise overflow the
  // stack instead of raising a ParseError. Real Liberty files nest a
  // handful of levels (library / cell / pin / timing / tables).
  static constexpr int kMaxDepth = 128;

  /// `head` is the group name; the '(' has not been consumed yet.
  GenGroup parse_group(Token head) {
    GenGroup g;
    g.name = head.text;
    g.line = head.line;
    g.args = parse_args();
    expect_punct('{');
    return parse_body(std::move(g), 0);
  }

  /// Body loop for a group whose header (name, args, '{') is consumed.
  GenGroup parse_body(GenGroup g, int depth) {
    if (depth > kMaxDepth) {
      throw ParseError("groups nested deeper than " +
                           std::to_string(kMaxDepth) + " levels",
                       g.line, 1);
    }
    while (!peek_punct('}')) {
      if (lex_.peek().kind == Token::Kind::kEnd) {
        throw ParseError("unterminated group '" + g.name + "'", g.line, 1);
      }
      if (peek_punct(';')) {
        lex_.take();
        continue;
      }
      Token name = expect_ident("an attribute or group name");
      if (peek_punct(':')) {
        lex_.take();
        GenAttr attr;
        attr.name = name.text;
        attr.line = name.line;
        Token v = lex_.take();
        if (v.kind != Token::Kind::kIdent && v.kind != Token::Kind::kString) {
          throw ParseError("expected a value for attribute '" + name.text +
                               "'",
                           v.line, v.col);
        }
        attr.values.push_back(v.text);
        expect_punct(';');
        g.attrs.push_back(std::move(attr));
      } else if (peek_punct('(')) {
        std::vector<std::string> args = parse_args();
        if (peek_punct('{')) {
          GenGroup sub;
          sub.name = name.text;
          sub.line = name.line;
          sub.args = std::move(args);
          expect_punct('{');
          g.groups.push_back(parse_body(std::move(sub), depth + 1));
        } else {
          expect_punct(';');
          GenAttr attr;
          attr.name = name.text;
          attr.line = name.line;
          attr.values = std::move(args);
          g.attrs.push_back(std::move(attr));
        }
      } else {
        const Token& t = lex_.peek();
        throw ParseError("expected ':' or '(' after '" + name.text + "'",
                         t.line, t.col);
      }
    }
    expect_punct('}');
    return g;
  }

  Lexer lex_;
};

/// "1ns" -> 1.0, "10ps" -> 0.01, "1us" -> 1000.
double time_unit_scale_ns(const std::string& unit, int line) {
  size_t used = 0;
  double mag = 1.0;
  try {
    mag = std::stod(unit, &used);
  } catch (const std::exception&) {
    throw ParseError("bad time_unit '" + unit + "'", line, 1);
  }
  const std::string suffix = to_lower(trim(unit.substr(used)));
  if (suffix == "ns") return mag;
  if (suffix == "ps") return mag * 1e-3;
  if (suffix == "us") return mag * 1e3;
  throw ParseError("unsupported time_unit '" + unit + "'", line, 1);
}

/// Collect every number inside a Liberty `values` table string, e.g.
/// "0.011, 0.016, 0.025".
void collect_values(const std::string& text, int line, double* max_out) {
  for (const std::string& field : split(text, ',')) {
    const std::string t = trim(field);
    if (t.empty()) continue;
    for (const std::string& num : split_ws(t)) {
      *max_out = std::max(*max_out, parse_double_token(num, line));
    }
  }
}

TimingArc interpret_timing(const GenGroup& g) {
  TimingArc arc;
  for (const GenAttr& a : g.attrs) {
    const std::string name = to_lower(a.name);
    if (name == "related_pin" && !a.values.empty()) {
      arc.related_pin = a.values[0];
    } else if (name == "intrinsic_rise" || name == "intrinsic_fall" ||
               name == "cell_rise" || name == "cell_fall") {
      if (!a.values.empty()) {
        arc.max_delay = std::max(arc.max_delay, parse_double_token(a.values[0], a.line));
      }
    }
  }
  for (const GenGroup& sub : g.groups) {
    const std::string name = to_lower(sub.name);
    if (name != "cell_rise" && name != "cell_fall" &&
        name != "rise_propagation" && name != "fall_propagation") {
      continue;  // transitions, constraints, power: not propagation delay
    }
    for (const GenAttr& a : sub.attrs) {
      if (to_lower(a.name) != "values") continue;
      for (const std::string& v : a.values) {
        collect_values(v, a.line, &arc.max_delay);
      }
    }
  }
  return arc;
}

Pin interpret_pin(const GenGroup& g) {
  Pin pin;
  pin.line = g.line;
  if (!g.args.empty()) pin.name = g.args[0];
  for (const GenAttr& a : g.attrs) {
    const std::string name = to_lower(a.name);
    if (a.values.empty()) continue;
    if (name == "direction") {
      const std::string d = to_lower(a.values[0]);
      if (d == "input") {
        pin.dir = PinDir::kInput;
      } else if (d == "output") {
        pin.dir = PinDir::kOutput;
      } else if (d == "inout") {
        pin.dir = PinDir::kInout;
      } else if (d == "internal") {
        pin.dir = PinDir::kInternal;
      } else {
        throw ParseError("unknown pin direction '" + a.values[0] + "'",
                         a.line, 1);
      }
    } else if (name == "function") {
      pin.function = a.values[0];
    } else if (name == "three_state") {
      // A constant-false condition means the output is never high-Z.
      const std::string cond = to_lower(trim(a.values[0]));
      pin.three_state = cond != "0" && cond != "false";
    }
  }
  for (const GenGroup& sub : g.groups) {
    if (to_lower(sub.name) == "timing") {
      pin.timings.push_back(interpret_timing(sub));
    }
  }
  return pin;
}

FlipFlop interpret_ff(const GenGroup& g) {
  FlipFlop ff;
  if (!g.args.empty()) ff.state = g.args[0];
  if (g.args.size() > 1) ff.state_inv = g.args[1];
  for (const GenAttr& a : g.attrs) {
    const std::string name = to_lower(a.name);
    if (a.values.empty()) continue;
    if (name == "clocked_on") {
      ff.clocked_on = a.values[0];
    } else if (name == "next_state") {
      ff.next_state = a.values[0];
    } else if (name == "clear") {
      ff.clear = a.values[0];
    } else if (name == "preset") {
      ff.preset = a.values[0];
    }
  }
  return ff;
}

Cell interpret_cell(const GenGroup& g) {
  Cell cell;
  cell.line = g.line;
  if (g.args.empty()) {
    throw ParseError("cell group needs a name argument", g.line, 1);
  }
  cell.name = g.args[0];
  for (const GenAttr& a : g.attrs) {
    if (to_lower(a.name) == "area" && !a.values.empty()) {
      cell.area = parse_double_token(a.values[0], a.line);
    }
  }
  for (const GenGroup& sub : g.groups) {
    const std::string name = to_lower(sub.name);
    if (name == "pin") {
      cell.pins.push_back(interpret_pin(sub));
    } else if (name == "ff") {
      cell.ff = interpret_ff(sub);
    } else if (name == "latch") {
      cell.is_latch = true;
    } else if (name == "bus" || name == "bundle") {
      cell.has_bus = true;
    }
  }
  return cell;
}

}  // namespace

double Pin::max_delay() const {
  double d = 0.0;
  for (const TimingArc& arc : timings) d = std::max(d, arc.max_delay);
  return d;
}

const Pin* Cell::find_pin(const std::string& pin_name) const {
  for (const Pin& p : pins) {
    if (p.name == pin_name) return &p;
  }
  return nullptr;
}

Library parse_liberty(const std::string& text) {
  GenGroup top = GroupParser(text).parse_top();
  if (to_lower(top.name) != "library") {
    throw ParseError("expected a top-level library group, got '" + top.name +
                         "'",
                     top.line, 1);
  }
  Library lib;
  lib.name = top.args.empty() ? "liberty" : top.args[0];
  for (const GenAttr& a : top.attrs) {
    if (to_lower(a.name) == "time_unit" && !a.values.empty()) {
      lib.time_scale_ns = time_unit_scale_ns(a.values[0], a.line);
    }
  }
  for (const GenGroup& g : top.groups) {
    if (to_lower(g.name) == "cell") {
      lib.cells.push_back(interpret_cell(g));
    }
  }
  return lib;
}

}  // namespace bridge::liberty
