#include "sim/semantics.h"

#include <algorithm>

#include "base/diag.h"

namespace bridge::sim {

using genus::ComponentSpec;
using genus::Kind;
using genus::Op;
using genus::PortDir;
using genus::PortSpec;

namespace {

/// Fetch an input value, defaulting to zero of the port's width and
/// normalizing any mismatched width (tie-offs provide 64-bit constants).
BitVec get_in(const ComponentSpec& spec, const PortValues& inputs,
              const std::string& name) {
  const auto ports = genus::spec_ports(spec);
  const PortSpec& p = genus::find_port(ports, name);
  auto it = inputs.find(name);
  if (it == inputs.end()) return BitVec(p.width);
  return it->second.width() == p.width ? it->second
                                       : it->second.zext(p.width);
}

bool get_bit(const ComponentSpec& spec, const PortValues& inputs,
             const std::string& name) {
  return get_in(spec, inputs, name).bit(0);
}

BitVec bool_vec(bool b) { return BitVec(1, b ? 1 : 0); }

/// Apply a gate function across a list of operands (bitwise).
BitVec apply_gate(Op fn, const std::vector<BitVec>& ins) {
  BRIDGE_CHECK(!ins.empty(), "gate with no inputs");
  switch (fn) {
    case Op::kLnot:
      return ~ins[0];
    case Op::kBuf:
      return ins[0];
    case Op::kLimpl:
      BRIDGE_CHECK(ins.size() == 2, "LIMPL gate needs 2 inputs");
      return ~ins[0] | ins[1];
    default:
      break;
  }
  BitVec acc = ins[0];
  for (size_t i = 1; i < ins.size(); ++i) {
    switch (fn) {
      case Op::kAnd:
      case Op::kNand:
        acc = acc & ins[i];
        break;
      case Op::kOr:
      case Op::kNor:
        acc = acc | ins[i];
        break;
      case Op::kXor:
      case Op::kXnor:
        acc = acc ^ ins[i];
        break;
      default:
        throw Error("unsupported gate function " + genus::op_name(fn));
    }
  }
  if (fn == Op::kNand || fn == Op::kNor || fn == Op::kXnor) acc = ~acc;
  return acc;
}

/// The ALU/LU/shifter operation selected by F (clamped to the last op).
Op selected_op(const ComponentSpec& spec, const PortValues& inputs) {
  const auto ops = spec.ops.to_vector();
  if (ops.size() == 1) return ops[0];
  std::uint64_t f = get_in(spec, inputs, "F").to_uint64();
  if (f >= ops.size()) f = ops.size() - 1;
  return ops[f];
}

PortValues eval_alu(const ComponentSpec& spec, const PortValues& inputs) {
  const int w = spec.width;
  const BitVec a = get_in(spec, inputs, "A");
  const BitVec b = get_in(spec, inputs, "B");
  const bool ci = spec.carry_in ? get_bit(spec, inputs, "CI") : false;
  const Op op = selected_op(spec, inputs);

  // Internal datapath: one adder/subtractor with a B-operand selector.
  BitVec b_operand(w);
  bool subtract = false;
  switch (op) {
    case Op::kAdd:
      b_operand = b;
      break;
    case Op::kSub:
    case Op::kEq:
    case Op::kLt:
    case Op::kGt:
      b_operand = b;
      subtract = true;
      break;
    case Op::kInc:
      b_operand = BitVec(w, 1);
      break;
    case Op::kDec:
      b_operand = BitVec(w, 1);
      subtract = true;
      break;
    case Op::kZerop:
      b_operand = BitVec(w, 0);
      subtract = true;
      break;
    default:  // logic group: datapath defaults to A + B + CI (74181-style)
      b_operand = b;
      break;
  }
  bool carry = false;
  BitVec datapath = a.add_with_carry(subtract ? ~b_operand : b_operand,
                                     ci, &carry);

  BitVec result(w);
  if (genus::op_is_logic(op)) {
    switch (op) {
      case Op::kAnd:
        result = a & b;
        break;
      case Op::kOr:
        result = a | b;
        break;
      case Op::kNand:
        result = ~(a & b);
        break;
      case Op::kNor:
        result = ~(a | b);
        break;
      case Op::kXor:
        result = a ^ b;
        break;
      case Op::kXnor:
        result = ~(a ^ b);
        break;
      case Op::kLnot:
        result = ~a;
        break;
      case Op::kLimpl:
        result = ~a | b;
        break;
      default:
        throw Error("unhandled ALU logic op");
    }
  } else {
    result = datapath;
  }

  PortValues out;
  out["OUT"] = result;
  if (spec.carry_out) out["CO"] = bool_vec(carry);
  for (Op status : spec.ops.to_vector()) {
    if (!genus::op_is_compare(status)) continue;
    bool v = false;
    switch (status) {
      case Op::kEq:
        v = a == b;
        break;
      case Op::kNe:
        v = a != b;
        break;
      case Op::kLt:
        v = a.ult(b);
        break;
      case Op::kGt:
        v = a.ugt(b);
        break;
      case Op::kLe:
        v = !a.ugt(b);
        break;
      case Op::kGe:
        v = !a.ult(b);
        break;
      case Op::kZerop:
        v = a.is_zero();
        break;
      default:
        break;
    }
    out[genus::op_name(status)] = bool_vec(v);
  }
  return out;
}

BitVec shift_value(Op op, const BitVec& in, int amount) {
  switch (op) {
    case Op::kShl:
      return in.shl(amount);
    case Op::kShr:
      return in.lshr(amount);
    case Op::kAshr:
      return in.ashr(amount);
    case Op::kRotl:
      return in.rotl(amount);
    case Op::kRotr:
      return in.rotr(amount);
    default:
      throw Error("unsupported shift op " + genus::op_name(op));
  }
}

}  // namespace

int op_select_code(const ComponentSpec& spec, Op op) {
  const auto ops = spec.ops.to_vector();
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i] == op) return static_cast<int>(i);
  }
  throw Error("op " + genus::op_name(op) + " not in spec " + spec.key());
}

PortValues eval_combinational(const ComponentSpec& spec,
                              const PortValues& inputs) {
  const int w = spec.width;
  PortValues out;
  switch (spec.kind) {
    case Kind::kGate: {
      const Op fn = spec.ops.to_vector().at(0);
      std::vector<BitVec> ins;
      const int fanin = spec.size > 0 ? spec.size : 2;
      for (int i = 0; i < fanin; ++i) {
        ins.push_back(get_in(spec, inputs, "I" + std::to_string(i)));
      }
      out["OUT"] = apply_gate(fn, ins);
      break;
    }
    case Kind::kLogicUnit: {
      const BitVec a = get_in(spec, inputs, "A");
      const BitVec b = get_in(spec, inputs, "B");
      switch (selected_op(spec, inputs)) {
        case Op::kAnd:
          out["OUT"] = a & b;
          break;
        case Op::kOr:
          out["OUT"] = a | b;
          break;
        case Op::kNand:
          out["OUT"] = ~(a & b);
          break;
        case Op::kNor:
          out["OUT"] = ~(a | b);
          break;
        case Op::kXor:
          out["OUT"] = a ^ b;
          break;
        case Op::kXnor:
          out["OUT"] = ~(a ^ b);
          break;
        case Op::kLnot:
          out["OUT"] = ~a;
          break;
        case Op::kLimpl:
          out["OUT"] = ~a | b;
          break;
        case Op::kBuf:
          out["OUT"] = a;
          break;
        default:
          throw Error("unsupported LU op");
      }
      break;
    }
    case Kind::kMux: {
      std::uint64_t sel = get_in(spec, inputs, "SEL").to_uint64();
      sel = std::min<std::uint64_t>(sel, spec.size - 1);
      out["OUT"] = get_in(spec, inputs, "I" + std::to_string(sel));
      break;
    }
    case Kind::kSelector: {
      // One-hot select: OR of selected inputs (wired-or of enabled buffers).
      const BitVec sel = get_in(spec, inputs, "SEL");
      BitVec acc(w);
      for (int i = 0; i < spec.size; ++i) {
        if (sel.bit(i)) acc = acc | get_in(spec, inputs, "I" + std::to_string(i));
      }
      out["OUT"] = acc;
      break;
    }
    case Kind::kDecoder: {
      const std::uint64_t v = get_in(spec, inputs, "IN").to_uint64();
      const bool en = spec.enable ? get_bit(spec, inputs, "EN") : true;
      BitVec o(spec.size);
      if (en && v < static_cast<std::uint64_t>(spec.size)) {
        o.set_bit(static_cast<int>(v), true);
      }
      out["OUT"] = o;
      break;
    }
    case Kind::kEncoder: {
      // Priority encoder: index of the highest asserted input (0 if none).
      const BitVec in = get_in(spec, inputs, "IN");
      int idx = 0;
      for (int i = spec.size - 1; i >= 0; --i) {
        if (in.bit(i)) {
          idx = i;
          break;
        }
      }
      out["OUT"] = BitVec(w, static_cast<std::uint64_t>(idx));
      break;
    }
    case Kind::kComparator: {
      const BitVec a = get_in(spec, inputs, "A");
      const BitVec b = get_in(spec, inputs, "B");
      for (Op op : spec.ops.to_vector()) {
        bool v = false;
        switch (op) {
          case Op::kEq:
            v = a == b;
            break;
          case Op::kNe:
            v = a != b;
            break;
          case Op::kLt:
            v = a.ult(b);
            break;
          case Op::kGt:
            v = a.ugt(b);
            break;
          case Op::kLe:
            v = !a.ugt(b);
            break;
          case Op::kGe:
            v = !a.ult(b);
            break;
          case Op::kZerop:
            v = a.is_zero();
            break;
          default:
            throw Error("unsupported comparator op");
        }
        out[genus::op_name(op)] = bool_vec(v);
      }
      break;
    }
    case Kind::kAlu:
      return eval_alu(spec, inputs);
    case Kind::kShifter: {
      const BitVec in = get_in(spec, inputs, "IN");
      out["OUT"] = shift_value(selected_op(spec, inputs), in, 1);
      break;
    }
    case Kind::kBarrelShifter: {
      const BitVec in = get_in(spec, inputs, "IN");
      const int amt =
          static_cast<int>(get_in(spec, inputs, "AMT").to_uint64());
      out["OUT"] = shift_value(selected_op(spec, inputs), in, amt);
      break;
    }
    case Kind::kMultiplier: {
      const BitVec a = get_in(spec, inputs, "A");
      const BitVec b = get_in(spec, inputs, "B");
      out["P"] = a.mul(b, w + spec.size);
      break;
    }
    case Kind::kDivider: {
      const BitVec a = get_in(spec, inputs, "A").zext(std::max(w, spec.size));
      const BitVec b = get_in(spec, inputs, "B").zext(std::max(w, spec.size));
      if (b.is_zero()) {
        out["Q"] = BitVec::ones(w);
        out["R"] = get_in(spec, inputs, "A").zext(spec.size);
      } else {
        out["Q"] = a.udiv(b).zext(w);
        out["R"] = a.urem(b).zext(spec.size);
      }
      break;
    }
    case Kind::kAdder: {
      const BitVec a = get_in(spec, inputs, "A");
      const BitVec b = get_in(spec, inputs, "B");
      const bool ci = spec.carry_in ? get_bit(spec, inputs, "CI") : false;
      bool carry = false;
      out["S"] = a.add_with_carry(b, ci, &carry);
      if (spec.carry_out) out["CO"] = bool_vec(carry);
      break;
    }
    case Kind::kSubtractor: {
      // S = A - B - CI (borrow in); CO is the borrow out.
      const BitVec a = get_in(spec, inputs, "A");
      const BitVec b = get_in(spec, inputs, "B");
      const bool bi = spec.carry_in ? get_bit(spec, inputs, "CI") : false;
      bool carry = false;
      out["S"] = a.add_with_carry(~b, !bi, &carry);
      if (spec.carry_out) out["CO"] = bool_vec(!carry);
      break;
    }
    case Kind::kAddSub: {
      // Raw datapath: S = A + (MODE ? ~B : B) + CI, CO = raw carry.
      const BitVec a = get_in(spec, inputs, "A");
      const BitVec b = get_in(spec, inputs, "B");
      const bool mode = get_bit(spec, inputs, "MODE");
      const bool ci = spec.carry_in ? get_bit(spec, inputs, "CI") : false;
      bool carry = false;
      out["S"] = a.add_with_carry(mode ? ~b : b, ci, &carry);
      if (spec.carry_out) out["CO"] = bool_vec(carry);
      break;
    }
    case Kind::kCarryLookahead: {
      const int k = spec.size > 0 ? spec.size : 4;
      const BitVec pvec = get_in(spec, inputs, "P");
      const BitVec gvec = get_in(spec, inputs, "G");
      bool carry = get_bit(spec, inputs, "CI");
      BitVec c(k);
      bool gp = true;
      bool gg = false;
      for (int i = 0; i < k; ++i) {
        carry = gvec.bit(i) || (pvec.bit(i) && carry);
        c.set_bit(i, carry);
        gg = gvec.bit(i) || (pvec.bit(i) && gg);
        gp = gp && pvec.bit(i);
      }
      out["C"] = c;
      out["GP"] = bool_vec(gp);
      out["GG"] = bool_vec(gg);
      break;
    }
    case Kind::kPort:
    case Kind::kBuffer:
    case Kind::kClockDriver:
    case Kind::kSchmittTrigger:
    case Kind::kDelay:
      out["OUT"] = get_in(spec, inputs, "IN");
      break;
    case Kind::kTristate:
      out["OUT"] = get_bit(spec, inputs, "OE") ? get_in(spec, inputs, "IN")
                                               : BitVec(w);
      break;
    case Kind::kWiredOr:
    case Kind::kBus: {
      BitVec acc(w);
      const int drivers = spec.size > 0 ? spec.size : 2;
      for (int i = 0; i < drivers; ++i) {
        acc = acc | get_in(spec, inputs, "I" + std::to_string(i));
      }
      out["OUT"] = acc;
      break;
    }
    case Kind::kConcat:
      out["OUT"] = BitVec::concat(get_in(spec, inputs, "I0"),
                                  get_in(spec, inputs, "I1"));
      break;
    case Kind::kExtract: {
      const BitVec in = get_in(spec, inputs, "IN");
      out["OUT"] = in.slice(0, spec.size > 0 ? spec.size : 1);
      break;
    }
    case Kind::kClockGenerator:
      out["CLK"] = BitVec(1);
      break;
    default:
      throw Error("eval_combinational on sequential spec " + spec.key());
  }
  return out;
}

SeqState init_state(const ComponentSpec& spec) {
  SeqState st;
  switch (spec.kind) {
    case Kind::kRegister:
    case Kind::kFlipFlop:
    case Kind::kCounter:
      st.value = BitVec(spec.width);
      break;
    case Kind::kRegisterFile:
    case Kind::kMemory:
    case Kind::kStack:
    case Kind::kFifo:
      st.words.assign(spec.size > 0 ? spec.size : 1, BitVec(spec.width));
      break;
    default:
      throw Error("init_state on combinational spec " + spec.key());
  }
  return st;
}

PortValues seq_outputs(const ComponentSpec& spec, const SeqState& state,
                       const PortValues& inputs) {
  PortValues out;
  switch (spec.kind) {
    case Kind::kRegister:
    case Kind::kFlipFlop:
      out["Q"] = state.value;
      break;
    case Kind::kCounter:
      out["O0"] = state.value;
      break;
    case Kind::kRegisterFile: {
      const std::uint64_t ra = get_in(spec, inputs, "RA").to_uint64();
      out["RD"] = ra < state.words.size() ? state.words[ra]
                                          : BitVec(spec.width);
      break;
    }
    case Kind::kMemory: {
      const std::uint64_t addr = get_in(spec, inputs, "ADDR").to_uint64();
      out["DOUT"] = addr < state.words.size() ? state.words[addr]
                                              : BitVec(spec.width);
      break;
    }
    case Kind::kStack: {
      out["DOUT"] = state.count > 0 ? state.words[state.count - 1]
                                    : BitVec(spec.width);
      out["EMPTY"] = bool_vec(state.count == 0);
      out["FULL"] = bool_vec(state.count == static_cast<int>(state.words.size()));
      break;
    }
    case Kind::kFifo: {
      out["DOUT"] = state.count > 0 ? state.words[state.head]
                                    : BitVec(spec.width);
      out["EMPTY"] = bool_vec(state.count == 0);
      out["FULL"] = bool_vec(state.count == static_cast<int>(state.words.size()));
      break;
    }
    default:
      throw Error("seq_outputs on combinational spec " + spec.key());
  }
  return out;
}

void seq_step(const ComponentSpec& spec, SeqState& state,
              const PortValues& inputs) {
  switch (spec.kind) {
    case Kind::kRegister:
    case Kind::kFlipFlop: {
      if (spec.async_set && get_bit(spec, inputs, "ASET")) {
        state.value = BitVec::ones(spec.width);
        return;
      }
      if (spec.async_reset && get_bit(spec, inputs, "ARST")) {
        state.value = BitVec(spec.width);
        return;
      }
      const bool en = spec.enable ? get_bit(spec, inputs, "EN") : true;
      if (en) state.value = get_in(spec, inputs, "D");
      break;
    }
    case Kind::kCounter: {
      if (spec.async_set && get_bit(spec, inputs, "ASET")) {
        state.value = BitVec::ones(spec.width);
        return;
      }
      if (spec.async_reset && get_bit(spec, inputs, "ARESET")) {
        state.value = BitVec(spec.width);
        return;
      }
      const bool en = spec.enable ? get_bit(spec, inputs, "CEN") : true;
      if (!en) return;
      if (spec.ops.contains(Op::kLoad) && get_bit(spec, inputs, "CLOAD")) {
        state.value = get_in(spec, inputs, "I0");
      } else if (spec.ops.contains(Op::kCountUp) &&
                 get_bit(spec, inputs, "CUP")) {
        state.value = state.value + BitVec(spec.width, 1);
      } else if (spec.ops.contains(Op::kCountDown) &&
                 get_bit(spec, inputs, "CDOWN")) {
        state.value = state.value - BitVec(spec.width, 1);
      }
      break;
    }
    case Kind::kRegisterFile: {
      if (get_bit(spec, inputs, "WE")) {
        const std::uint64_t wa = get_in(spec, inputs, "WA").to_uint64();
        if (wa < state.words.size()) {
          state.words[wa] = get_in(spec, inputs, "WD");
        }
      }
      break;
    }
    case Kind::kMemory: {
      if (get_bit(spec, inputs, "WE")) {
        const std::uint64_t addr = get_in(spec, inputs, "ADDR").to_uint64();
        if (addr < state.words.size()) {
          state.words[addr] = get_in(spec, inputs, "DIN");
        }
      }
      break;
    }
    case Kind::kStack: {
      const bool push = get_bit(spec, inputs, "PUSH");
      const bool pop = get_bit(spec, inputs, "POP");
      if (push && state.count < static_cast<int>(state.words.size())) {
        state.words[state.count++] = get_in(spec, inputs, "DIN");
      } else if (pop && state.count > 0) {
        --state.count;
      }
      break;
    }
    case Kind::kFifo: {
      const bool push = get_bit(spec, inputs, "PUSH");
      const bool pop = get_bit(spec, inputs, "POP");
      const int n = static_cast<int>(state.words.size());
      if (push && state.count < n) {
        state.words[(state.head + state.count) % n] =
            get_in(spec, inputs, "DIN");
        ++state.count;
      } else if (pop && state.count > 0) {
        state.head = (state.head + 1) % n;
        --state.count;
      }
      break;
    }
    default:
      throw Error("seq_step on combinational spec " + spec.key());
  }
}

}  // namespace bridge::sim
