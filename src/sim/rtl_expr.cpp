#include "sim/rtl_expr.h"

#include <cctype>
#include <vector>

#include "base/diag.h"
#include "base/strutil.h"

namespace bridge::sim {

namespace {

enum class NodeKind {
  kName,
  kConst,
  kNot,
  kAnd,
  kOr,
  kXor,
  kAdd,
  kSub,
  kShl,
  kShr,
  kRotl,
  kRotr,
  kEq,
  kNe,
  kLt,
  kGt,
  kLe,
  kGe,
};

}  // namespace

struct RtlAssignment::Node {
  NodeKind kind = NodeKind::kConst;
  std::string name;
  std::uint64_t value = 0;
  std::shared_ptr<const Node> lhs;
  std::shared_ptr<const Node> rhs;
};

namespace {

using NodePtr = std::shared_ptr<const RtlAssignment::Node>;

NodePtr make(NodeKind kind, NodePtr lhs = nullptr, NodePtr rhs = nullptr) {
  auto n = std::make_shared<RtlAssignment::Node>();
  n->kind = kind;
  n->lhs = std::move(lhs);
  n->rhs = std::move(rhs);
  return n;
}

class RtlParser {
 public:
  explicit RtlParser(const std::string& text) : text_(text) {}

  std::pair<std::string, NodePtr> parse_assignment() {
    std::string target = ident("assignment target");
    skip_ws();
    if (!consume('=') || peek() == '=') {
      throw ParseError("expected '=' in RTL assignment", 1, col());
    }
    NodePtr e = expr();
    skip_ws();
    if (pos_ != text_.size()) {
      throw ParseError("trailing characters in RTL expression", 1, col());
    }
    return {std::move(target), std::move(e)};
  }

 private:
  NodePtr expr() { return or_expr(); }

  NodePtr or_expr() {
    NodePtr lhs = xor_expr();
    for (;;) {
      skip_ws();
      if (peek() == '|' && !consume_word("||")) {
        ++pos_;
        lhs = make(NodeKind::kOr, lhs, xor_expr());
      } else {
        return lhs;
      }
    }
  }

  NodePtr xor_expr() {
    NodePtr lhs = and_expr();
    for (;;) {
      skip_ws();
      if (peek() == '^') {
        ++pos_;
        lhs = make(NodeKind::kXor, lhs, and_expr());
      } else {
        return lhs;
      }
    }
  }

  NodePtr and_expr() {
    NodePtr lhs = cmp_expr();
    for (;;) {
      skip_ws();
      if (peek() == '&') {
        ++pos_;
        lhs = make(NodeKind::kAnd, lhs, cmp_expr());
      } else {
        return lhs;
      }
    }
  }

  NodePtr cmp_expr() {
    NodePtr lhs = shift_expr();
    skip_ws();
    static const std::pair<const char*, NodeKind> ops[] = {
        {"==", NodeKind::kEq}, {"!=", NodeKind::kNe}, {"<=", NodeKind::kLe},
        {">=", NodeKind::kGe}, {"<", NodeKind::kLt},  {">", NodeKind::kGt},
    };
    for (const auto& [tok, kind] : ops) {
      const size_t len = std::string(tok).size();
      // Don't confuse "<" with "<<".
      if (text_.compare(pos_, len, tok) == 0 &&
          !(len == 1 && pos_ + 1 < text_.size() &&
            text_[pos_ + 1] == text_[pos_])) {
        pos_ += len;
        return make(kind, lhs, shift_expr());
      }
    }
    return lhs;
  }

  NodePtr shift_expr() {
    NodePtr lhs = add_expr();
    for (;;) {
      skip_ws();
      if (text_.compare(pos_, 2, "<<") == 0) {
        pos_ += 2;
        lhs = make(NodeKind::kShl, lhs, add_expr());
      } else if (text_.compare(pos_, 2, ">>") == 0) {
        pos_ += 2;
        lhs = make(NodeKind::kShr, lhs, add_expr());
      } else {
        return lhs;
      }
    }
  }

  NodePtr add_expr() {
    NodePtr lhs = unary();
    for (;;) {
      skip_ws();
      if (peek() == '+') {
        ++pos_;
        lhs = make(NodeKind::kAdd, lhs, unary());
      } else if (peek() == '-') {
        ++pos_;
        lhs = make(NodeKind::kSub, lhs, unary());
      } else {
        return lhs;
      }
    }
  }

  NodePtr unary() {
    skip_ws();
    if (peek() == '~') {
      ++pos_;
      return make(NodeKind::kNot, unary());
    }
    return primary();
  }

  NodePtr primary() {
    skip_ws();
    if (consume('(')) {
      NodePtr e = expr();
      expect(')');
      return e;
    }
    if (std::isdigit(uc(peek()))) {
      std::uint64_t v = 0;
      while (std::isdigit(uc(peek()))) v = v * 10 + (text_[pos_++] - '0');
      auto n = std::make_shared<RtlAssignment::Node>();
      n->kind = NodeKind::kConst;
      n->value = v;
      return n;
    }
    std::string id = ident("operand");
    const std::string lower = to_lower(id);
    if (lower == "rotl" || lower == "rotr") {
      expect('(');
      NodePtr a = expr();
      expect(',');
      NodePtr b = expr();
      expect(')');
      return make(lower == "rotl" ? NodeKind::kRotl : NodeKind::kRotr, a, b);
    }
    auto n = std::make_shared<RtlAssignment::Node>();
    n->kind = NodeKind::kName;
    n->name = id;
    return n;
  }

  std::string ident(const char* what) {
    skip_ws();
    if (!(std::isalpha(uc(peek())) || peek() == '_')) {
      throw ParseError(std::string("expected ") + what, 1, col());
    }
    size_t b = pos_;
    while (std::isalnum(uc(peek())) || peek() == '_') ++pos_;
    return text_.substr(b, pos_ - b);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  static int uc(char c) { return static_cast<unsigned char>(c); }
  int col() const { return static_cast<int>(pos_) + 1; }
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(uc(text_[pos_]))) ++pos_;
  }
  bool consume(char c) {
    skip_ws();
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool consume_word(const char* w) {
    return text_.compare(pos_, std::string(w).size(), w) == 0;
  }
  void expect(char c) {
    if (!consume(c)) {
      throw ParseError(std::string("expected '") + c + "'", 1, col());
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

BitVec eval_node(const RtlAssignment::Node& n, int width,
                 const std::map<std::string, BitVec>& values) {
  auto bin = [&](const RtlAssignment::Node& node) {
    return std::pair{eval_node(*node.lhs, width, values),
                     eval_node(*node.rhs, width, values)};
  };
  auto from_bool = [width](bool b) { return BitVec(width, b ? 1 : 0); };
  switch (n.kind) {
    case NodeKind::kName: {
      auto it = values.find(n.name);
      if (it == values.end()) {
        throw Error("RTL expression references unknown name '" + n.name +
                    "'");
      }
      return it->second.zext(width);
    }
    case NodeKind::kConst:
      return BitVec(width, n.value);
    case NodeKind::kNot:
      return ~eval_node(*n.lhs, width, values);
    case NodeKind::kAnd: {
      auto [a, b] = bin(n);
      return a & b;
    }
    case NodeKind::kOr: {
      auto [a, b] = bin(n);
      return a | b;
    }
    case NodeKind::kXor: {
      auto [a, b] = bin(n);
      return a ^ b;
    }
    case NodeKind::kAdd: {
      auto [a, b] = bin(n);
      return a + b;
    }
    case NodeKind::kSub: {
      auto [a, b] = bin(n);
      return a - b;
    }
    case NodeKind::kShl: {
      auto [a, b] = bin(n);
      return a.shl(static_cast<int>(b.to_uint64() % (2 * width)));
    }
    case NodeKind::kShr: {
      auto [a, b] = bin(n);
      return a.lshr(static_cast<int>(b.to_uint64() % (2 * width)));
    }
    case NodeKind::kRotl: {
      auto [a, b] = bin(n);
      return a.rotl(static_cast<int>(b.to_uint64() % width));
    }
    case NodeKind::kRotr: {
      auto [a, b] = bin(n);
      return a.rotr(static_cast<int>(b.to_uint64() % width));
    }
    case NodeKind::kEq: {
      auto [a, b] = bin(n);
      return from_bool(a == b);
    }
    case NodeKind::kNe: {
      auto [a, b] = bin(n);
      return from_bool(a != b);
    }
    case NodeKind::kLt: {
      auto [a, b] = bin(n);
      return from_bool(a.ult(b));
    }
    case NodeKind::kGt: {
      auto [a, b] = bin(n);
      return from_bool(a.ugt(b));
    }
    case NodeKind::kLe: {
      auto [a, b] = bin(n);
      return from_bool(!a.ugt(b));
    }
    case NodeKind::kGe: {
      auto [a, b] = bin(n);
      return from_bool(!a.ult(b));
    }
  }
  throw Error("corrupt RTL expression node");
}

}  // namespace

RtlAssignment RtlAssignment::parse(const std::string& text) {
  RtlAssignment a;
  auto [target, root] = RtlParser(text).parse_assignment();
  a.target_ = std::move(target);
  a.root_ = std::move(root);
  return a;
}

BitVec RtlAssignment::eval(int width,
                           const std::map<std::string, BitVec>& values) const {
  BRIDGE_CHECK(root_ != nullptr, "evaluating empty RTL assignment");
  return eval_node(*root_, width, values);
}

ComponentInterpreter::ComponentInterpreter(genus::ComponentPtr component)
    : component_(std::move(component)) {
  BRIDGE_CHECK(component_ != nullptr, "null component");
  for (const auto& p : component_->ports()) {
    if (p.dir == genus::PortDir::kOut) {
      state_[p.name] = BitVec(p.width);
    }
  }
  for (const auto& op : component_->operations()) {
    if (!op.semantics.empty()) {
      semantics_.emplace(op.name, RtlAssignment::parse(op.semantics));
    }
  }
}

BitVec ComponentInterpreter::output(const std::string& port) const {
  auto it = state_.find(port);
  if (it == state_.end()) {
    throw Error("component has no output '" + port + "'");
  }
  return it->second;
}

void ComponentInterpreter::step(const std::map<std::string, BitVec>& inputs) {
  auto bit_of = [&inputs](const std::string& name) {
    auto it = inputs.find(name);
    return it != inputs.end() && !it->second.is_zero();
  };
  // Async set/reset and enable by conventional port names.
  for (const auto& p : component_->ports()) {
    if (p.role != genus::PortRole::kAsync) continue;
    if ((p.name == "ASET" || p.name == "SET") && bit_of(p.name)) {
      for (auto& [name, v] : state_) v = BitVec::ones(v.width());
      return;
    }
    if ((p.name == "ARESET" || p.name == "ARST") && bit_of(p.name)) {
      for (auto& [name, v] : state_) v = BitVec(v.width());
      return;
    }
  }
  for (const auto& p : component_->ports()) {
    if (p.role == genus::PortRole::kEnable && inputs.count(p.name) &&
        inputs.at(p.name).is_zero()) {
      return;  // disabled: hold
    }
  }
  // First operation whose control line is asserted wins (declaration
  // order is priority, as in Figure 2).
  for (const auto& op : component_->operations()) {
    if (!op.control.empty() && !bit_of(op.control)) continue;
    auto it = semantics_.find(op.name);
    if (it == semantics_.end()) return;
    const RtlAssignment& rtl = it->second;
    auto target = state_.find(rtl.target());
    if (target == state_.end()) {
      throw Error("operation " + op.name + " assigns to unknown output '" +
                  rtl.target() + "'");
    }
    // Name scope: current outputs (pre-edge) then inputs.
    std::map<std::string, BitVec> scope = state_;
    for (const auto& [name, value] : inputs) scope.emplace(name, value);
    target->second = rtl.eval(target->second.width(), scope);
    return;
  }
}

}  // namespace bridge::sim
