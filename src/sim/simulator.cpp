#include "sim/simulator.h"

#include <algorithm>

#include "base/diag.h"

namespace bridge::sim {

using genus::PortDir;
using genus::PortSpec;
using netlist::Instance;
using netlist::Module;
using netlist::PortConn;
using netlist::RefKind;

Simulator::Simulator(const Module& top) {
  // Allocate global bits for the top module's ports and flatten.
  std::map<std::string, std::vector<BitRef>> port_map;
  for (const auto& p : top.module_ports()) {
    std::vector<BitRef> refs(p.width);
    for (int b = 0; b < p.width; ++b) {
      refs[b] = BitRef{static_cast<int>(bits_.size()), false};
      bits_.push_back(0);
    }
    port_map[p.name] = refs;
    top_ports_[p.name] = refs;
    top_port_width_[p.name] = p.width;
    top_port_is_input_[p.name] = p.dir == PortDir::kIn;
  }
  flatten(top, top.name(), port_map);
  schedule();
}

void Simulator::flatten(
    const Module& m, const std::string& path,
    const std::map<std::string, std::vector<BitRef>>& port_map) {
  // Assign global bits to every net. Port nets alias the caller's bits.
  std::vector<std::vector<BitRef>> net_bits(m.nets().size());
  for (size_t n = 0; n < m.nets().size(); ++n) {
    net_bits[n].resize(m.nets()[n].width);
  }
  for (const auto& p : m.module_ports()) {
    auto it = port_map.find(p.name);
    BRIDGE_CHECK(it != port_map.end(),
                 "module " << m.name() << " port " << p.name << " unbound");
    BRIDGE_CHECK(static_cast<int>(it->second.size()) == p.width,
                 "width mismatch binding " << path << "." << p.name);
    net_bits[p.net] = it->second;
  }
  for (size_t n = 0; n < m.nets().size(); ++n) {
    for (auto& ref : net_bits[n]) {
      if (ref.index < 0 && !ref.is_const) {
        ref = BitRef{static_cast<int>(bits_.size()), false, false};
        bits_.push_back(0);
      }
    }
  }

  auto resolve = [&](const Instance& inst, const PortSpec& p)
      -> std::vector<BitRef> {
    std::vector<BitRef> refs(p.width, BitRef{-1, false});
    auto it = inst.connections.find(p.name);
    if (it == inst.connections.end()) return refs;  // open/default zero
    const PortConn& c = it->second;
    switch (c.kind) {
      case PortConn::Kind::kOpen:
        return refs;
      case PortConn::Kind::kConst:
        for (int b = 0; b < p.width; ++b) {
          refs[b] = BitRef{-1, ((c.const_value >> b) & 1) != 0, true};
        }
        return refs;
      case PortConn::Kind::kNet: {
        const auto& bits = net_bits[c.net];
        if (c.replicate) {
          BRIDGE_CHECK(c.lo >= 0 && c.lo < static_cast<int>(bits.size()),
                       "replicated bit out of range");
          for (int b = 0; b < p.width; ++b) refs[b] = bits[c.lo];
          return refs;
        }
        BRIDGE_CHECK(c.lo >= 0 &&
                         c.lo + p.width <= static_cast<int>(bits.size()),
                     "slice out of range on " << path << "/" << inst.name
                                              << "." << p.name);
        for (int b = 0; b < p.width; ++b) refs[b] = bits[c.lo + b];
        return refs;
      }
    }
    return refs;
  };

  for (const Instance& inst : m.instances()) {
    const auto ports = Module::instance_ports(inst);
    if (inst.ref == RefKind::kModule) {
      std::map<std::string, std::vector<BitRef>> child_map;
      for (const PortSpec& p : ports) {
        child_map[p.name] = resolve(inst, p);
      }
      flatten(*inst.module, path + "/" + inst.name, child_map);
      continue;
    }
    Leaf leaf;
    leaf.spec = inst.spec;
    leaf.path = path + "/" + inst.name;
    leaf.sequential = genus::kind_is_sequential(inst.spec.kind);
    if (leaf.sequential) leaf.state = init_state(inst.spec);
    for (const PortSpec& p : ports) {
      if (p.role == genus::PortRole::kClock && p.dir == PortDir::kIn) {
        continue;  // single implicit clock domain
      }
      if (p.dir == PortDir::kIn) {
        leaf.in_bits[p.name] = resolve(inst, p);
      } else {
        leaf.out_bits[p.name] = resolve(inst, p);
      }
    }
    leaves_.push_back(std::move(leaf));
  }
}

void Simulator::schedule() {
  // Units: one per (combinational leaf, output port).
  std::vector<std::pair<int, std::string>> units;
  std::vector<int> driver(bits_.size(), -1);  // driving unit per bit
  for (size_t li = 0; li < leaves_.size(); ++li) {
    if (leaves_[li].sequential) {
      seq_leaves_.push_back(static_cast<int>(li));
      continue;
    }
    for (const auto& [port, refs] : leaves_[li].out_bits) {
      const int u = static_cast<int>(units.size());
      units.emplace_back(static_cast<int>(li), port);
      for (const BitRef& r : refs) {
        if (r.index >= 0) driver[r.index] = u;
      }
    }
  }
  // Dependency edges per unit, honoring structural false paths.
  std::vector<std::vector<int>> succs(units.size());
  std::vector<int> indegree(units.size(), 0);
  for (size_t u = 0; u < units.size(); ++u) {
    const Leaf& leaf = leaves_[units[u].first];
    std::vector<int> preds;
    for (const auto& [in_port, refs] : leaf.in_bits) {
      if (!genus::output_depends_on(leaf.spec, units[u].second, in_port)) {
        continue;
      }
      for (const BitRef& r : refs) {
        if (r.index >= 0 && driver[r.index] >= 0 &&
            driver[r.index] != static_cast<int>(u)) {
          preds.push_back(driver[r.index]);
        }
      }
    }
    std::sort(preds.begin(), preds.end());
    preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
    for (int p : preds) {
      succs[p].push_back(static_cast<int>(u));
      ++indegree[u];
    }
  }
  // Kahn topological order.
  std::vector<int> ready;
  for (size_t u = 0; u < units.size(); ++u) {
    if (indegree[u] == 0) ready.push_back(static_cast<int>(u));
  }
  size_t emitted = 0;
  while (!ready.empty()) {
    int u = ready.back();
    ready.pop_back();
    comb_order_.push_back(units[u]);
    ++emitted;
    for (int s : succs[u]) {
      if (--indegree[s] == 0) ready.push_back(s);
    }
  }
  if (emitted != units.size()) {
    throw Error("combinational cycle detected in netlist");
  }
}

void Simulator::set_input(const std::string& port, const BitVec& value) {
  auto it = top_ports_.find(port);
  BRIDGE_CHECK(it != top_ports_.end(), "no top port '" << port << "'");
  BRIDGE_CHECK(top_port_is_input_.at(port), "'" << port << "' is an output");
  BRIDGE_CHECK(value.width() == top_port_width_.at(port),
               "width mismatch on input '" << port << "'");
  for (int b = 0; b < value.width(); ++b) {
    bits_[it->second[b].index] = value.bit(b) ? 1 : 0;
  }
}

PortValues Simulator::gather(const Leaf& leaf) const {
  PortValues values;
  for (const auto& [port, refs] : leaf.in_bits) {
    BitVec v(static_cast<int>(refs.size()));
    for (size_t b = 0; b < refs.size(); ++b) {
      bool bit = refs[b].index >= 0 ? bits_[refs[b].index] != 0
                                    : refs[b].const_value;
      v.set_bit(static_cast<int>(b), bit);
    }
    values[port] = v;
  }
  return values;
}

void Simulator::scatter(const Leaf& leaf, const PortValues& outputs) {
  for (const auto& [port, refs] : leaf.out_bits) {
    auto it = outputs.find(port);
    BRIDGE_CHECK(it != outputs.end(),
                 "semantics produced no value for " << leaf.path << "."
                                                    << port);
    for (size_t b = 0; b < refs.size(); ++b) {
      if (refs[b].index >= 0) {
        bits_[refs[b].index] = it->second.bit(static_cast<int>(b)) ? 1 : 0;
      }
    }
  }
}

void Simulator::scatter_port(const Leaf& leaf, const std::string& port,
                             const PortValues& outputs) {
  auto rit = leaf.out_bits.find(port);
  BRIDGE_CHECK(rit != leaf.out_bits.end(), "no out bits for " << port);
  auto it = outputs.find(port);
  BRIDGE_CHECK(it != outputs.end(), "semantics produced no value for "
                                        << leaf.path << "." << port);
  const auto& refs = rit->second;
  for (size_t b = 0; b < refs.size(); ++b) {
    if (refs[b].index >= 0) {
      bits_[refs[b].index] = it->second.bit(static_cast<int>(b)) ? 1 : 0;
    }
  }
}

void Simulator::eval() {
  // Sequential outputs first (they are stable within the cycle)...
  for (int li : seq_leaves_) {
    Leaf& leaf = leaves_[li];
    scatter(leaf, seq_outputs(leaf.spec, leaf.state, gather(leaf)));
  }
  // ...then combinational logic in topological (leaf, port) order.
  for (const auto& [li, port] : comb_order_) {
    Leaf& leaf = leaves_[li];
    scatter_port(leaf, port, eval_combinational(leaf.spec, gather(leaf)));
  }
  // Address-dependent sequential reads (register files, memories) may
  // depend on combinational outputs; refresh them and re-propagate once.
  bool any_addressed = false;
  for (int li : seq_leaves_) {
    const auto& k = leaves_[li].spec.kind;
    if (k == genus::Kind::kRegisterFile || k == genus::Kind::kMemory ||
        k == genus::Kind::kStack || k == genus::Kind::kFifo) {
      any_addressed = true;
      break;
    }
  }
  if (any_addressed) {
    for (int li : seq_leaves_) {
      Leaf& leaf = leaves_[li];
      scatter(leaf, seq_outputs(leaf.spec, leaf.state, gather(leaf)));
    }
    for (const auto& [li, port] : comb_order_) {
      Leaf& leaf = leaves_[li];
      scatter_port(leaf, port, eval_combinational(leaf.spec, gather(leaf)));
    }
  }
}

void Simulator::step() {
  eval();
  // Capture inputs first so all leaves update from the same pre-edge view.
  std::vector<PortValues> captured(seq_leaves_.size());
  for (size_t i = 0; i < seq_leaves_.size(); ++i) {
    captured[i] = gather(leaves_[seq_leaves_[i]]);
  }
  for (size_t i = 0; i < seq_leaves_.size(); ++i) {
    Leaf& leaf = leaves_[seq_leaves_[i]];
    seq_step(leaf.spec, leaf.state, captured[i]);
  }
  eval();
}

BitVec Simulator::get(const std::string& port) const {
  auto it = top_ports_.find(port);
  BRIDGE_CHECK(it != top_ports_.end(), "no top port '" << port << "'");
  BitVec v(top_port_width_.at(port));
  for (size_t b = 0; b < it->second.size(); ++b) {
    v.set_bit(static_cast<int>(b), bits_[it->second[b].index] != 0);
  }
  return v;
}

PortValues eval_module(const Module& top, const PortValues& inputs) {
  Simulator sim(top);
  for (const auto& [name, value] : inputs) {
    sim.set_input(name, value);
  }
  sim.eval();
  PortValues out;
  for (const auto& p : top.module_ports()) {
    if (p.dir == PortDir::kOut) out[p.name] = sim.get(p.name);
  }
  return out;
}

}  // namespace bridge::sim
