// Executable register-transfer semantics.
//
// LEGEND operation declarations carry semantics strings such as
// "O0 = I0", "O0 = O0 + 1", or "OUT = ~(A & B)" (Figure 2). This module
// parses and evaluates them, which makes *custom* LEGEND-described
// components simulatable — the executable counterpart of the paper's
// "simulatable VHDL behavioral models ... used to verify the behavior of
// a synthesized design".
//
// Grammar (C-like, precedence low to high):
//   assign := IDENT '=' expr
//   expr   := or ; or := xor ('|' xor)* ; xor := and ('^' and)*
//   and    := cmp ('&' cmp)*
//   cmp    := shift (('=='|'!='|'<'|'>'|'<='|'>=') shift)?
//   shift  := add (('<<'|'>>') add)*
//   add    := unary (('+'|'-') unary)*
//   unary  := '~' unary | primary
//   primary:= IDENT | NUMBER | '(' expr ')'
//           | ('rotl'|'rotr') '(' expr ',' expr ')'
//
// All operands are resolved to the assignment's target width; comparisons
// yield 0/1. Unknown identifiers throw at evaluation time.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "base/bitvec.h"
#include "genus/component.h"

namespace bridge::sim {

/// A parsed "TARGET = expr" register-transfer assignment.
class RtlAssignment {
 public:
  /// Parse; throws ParseError on malformed text.
  static RtlAssignment parse(const std::string& text);

  const std::string& target() const { return target_; }

  /// Evaluate with the given name bindings; the result has `width` bits.
  BitVec eval(int width, const std::map<std::string, BitVec>& values) const;

  struct Node;  // implementation detail

 private:
  std::string target_;
  std::shared_ptr<const Node> root_;
};

/// Simulates a generated component from its declared LEGEND operations:
/// each clock step selects the first operation whose control line is
/// asserted (declaration order gives priority, matching Figure 2's
/// LOAD > COUNT_UP > COUNT_DOWN) and applies its semantics to the
/// component's output state. Enable and async inputs follow the standard
/// conventions (CEN/EN active high; ASET to ones; ARESET/ARST to zero).
class ComponentInterpreter {
 public:
  explicit ComponentInterpreter(genus::ComponentPtr component);

  /// Current value of an output port.
  BitVec output(const std::string& port) const;

  /// Advance one clock edge with the given input/control values.
  void step(const std::map<std::string, BitVec>& inputs);

 private:
  genus::ComponentPtr component_;
  std::map<std::string, BitVec> state_;  // output port -> value
  std::map<std::string, RtlAssignment> semantics_;  // op name -> assignment
};

}  // namespace bridge::sim
