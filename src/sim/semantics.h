// Bit-true behavioral semantics of component specifications.
//
// The paper's generators "can produce simulatable VHDL behavioral models
// ... used to verify the behavior of a synthesized design". This module is
// the executable equivalent: every ComponentSpec (generic component or
// library cell) has defined combinational and sequential semantics, so a
// technology-mapped netlist can be checked for functional equivalence
// against the generic component it implements.
//
// Conventions (shared with the DTAS decomposition rules — both sides of an
// equivalence check must agree):
//  * Multi-function components (ALU, LU, shifter) select the operation by
//    the F input, whose binary code is the index of the operation in
//    OpSet::to_vector() order (e.g. the 16-function ALU: ADD=0, SUB=1,
//    INC=2, DEC=3, EQ=4, LT=5, GT=6, ZEROP=7, AND=8, ..., LIMPL=15).
//  * ALU arithmetic group is computed by one internal add/sub datapath
//    whose CI is the *raw* carry-in, exactly as 74181-era data books
//    specify ("A plus B plus carry", "A minus B minus 1 plus carry"):
//    ADD: A+B+CI. SUB: A+~B+CI (true A-B needs CI=1). INC: A+1+CI.
//    DEC: A+~1+CI. EQ/LT/GT: datapath computes A+~B+CI; the predicates
//    appear on dedicated status pins (EQ/LT/GT unsigned, ZEROP = (A==0)),
//    valid for every F. ZEROP's OUT is A+~0+CI.
//    CO is always the internal adder's raw carry; for logic operations
//    the datapath defaults to A+B+CI.
//  * AddSub is the raw datapath cell: S = A + (MODE ? ~B : B) + CI,
//    CO = raw carry out.
//  * Mux with n inputs: OUT = I[min(SEL, n-1)] (trees pad by duplicating
//    the last input, which composes to the same semantics).
//  * Sequential components are simulated synchronously; ASET/ARST are
//    sampled at the clock edge with priority set > reset > enable.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "base/bitvec.h"
#include "genus/spec.h"

namespace bridge::sim {

using PortValues = std::map<std::string, BitVec>;

/// Evaluate a combinational specification. Missing input entries default
/// to zero. Returns values for every output port.
PortValues eval_combinational(const genus::ComponentSpec& spec,
                              const PortValues& inputs);

/// State carried by a sequential instance between clock edges.
struct SeqState {
  BitVec value{1};             // register / counter contents
  std::vector<BitVec> words;   // register file / memory / stack / fifo
  int count = 0;               // stack depth or fifo occupancy
  int head = 0;                // fifo read index
};

/// Initial (all-zero) state for a sequential spec.
SeqState init_state(const genus::ComponentSpec& spec);

/// Outputs of a sequential component as a function of current state (and,
/// for read ports, current address inputs).
PortValues seq_outputs(const genus::ComponentSpec& spec, const SeqState& state,
                       const PortValues& inputs);

/// Advance state across one rising clock edge.
void seq_step(const genus::ComponentSpec& spec, SeqState& state,
              const PortValues& inputs);

/// Index of `op` in the F-select coding of `spec` (OpSet order).
int op_select_code(const genus::ComponentSpec& spec, genus::Op op);

}  // namespace bridge::sim
