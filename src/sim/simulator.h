// Hierarchical netlist simulation.
//
// The Simulator flattens a hierarchical netlist (e.g. a DTAS alternative
// implementation) to leaf instances over a global bit store, computes a
// topological evaluation order for the combinational logic, and simulates
// cycle by cycle. Sequential leaves (flip-flops, registers, counters) hold
// SeqState and update on step().
//
// This is the workhorse of the equivalence test suite: for every mapped
// netlist, Simulator(mapped) must agree with eval_combinational /
// seq_outputs of the generic component across random stimulus.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "base/bitvec.h"
#include "netlist/netlist.h"
#include "sim/semantics.h"

namespace bridge::sim {

class Simulator {
 public:
  /// Flatten `top` and build the evaluation schedule. Throws Error on
  /// combinational cycles or malformed connectivity.
  explicit Simulator(const netlist::Module& top);

  /// Set a top-level input port value (width must match).
  void set_input(const std::string& port, const BitVec& value);

  /// Propagate combinational logic from current inputs and state.
  void eval();

  /// One rising clock edge: capture next state from current values, update
  /// every sequential leaf simultaneously, then re-propagate.
  void step();

  /// Read a top-level output (or input) port after eval().
  BitVec get(const std::string& port) const;

  int num_leaves() const { return static_cast<int>(leaves_.size()); }

 private:
  struct BitRef {
    int index = -1;           // global bit index; -1 means unassigned/const
    bool const_value = false;
    bool is_const = false;    // true: a tie-off, must never be reallocated
  };
  /// A flattened leaf instance: spec plus per-port bit bindings.
  struct Leaf {
    genus::ComponentSpec spec;
    std::string path;
    bool sequential = false;
    SeqState state;
    std::map<std::string, std::vector<BitRef>> in_bits;
    std::map<std::string, std::vector<BitRef>> out_bits;
  };

  void flatten(const netlist::Module& m, const std::string& path,
               const std::map<std::string, std::vector<BitRef>>& port_map);
  void schedule();
  PortValues gather(const Leaf& leaf) const;
  void scatter(const Leaf& leaf, const PortValues& outputs);
  void scatter_port(const Leaf& leaf, const std::string& port,
                    const PortValues& outputs);

  std::vector<char> bits_;   // global bit store (char: vector<bool> is slow)
  std::vector<Leaf> leaves_;
  /// Topological schedule: (leaf index, output port). Per-output-port
  /// scheduling keeps false paths (e.g. look-ahead GP/GG vs CI) acyclic.
  std::vector<std::pair<int, std::string>> comb_order_;
  std::vector<int> seq_leaves_;
  std::map<std::string, std::vector<BitRef>> top_ports_;
  std::map<std::string, int> top_port_width_;
  std::map<std::string, bool> top_port_is_input_;
};

/// Convenience: simulate a purely combinational module once.
PortValues eval_module(const netlist::Module& top, const PortValues& inputs);

}  // namespace bridge::sim
