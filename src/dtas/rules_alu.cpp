// ALU decomposition rules.
//
// The generic rule decomposes an n-bit multi-function ALU the way the
// paper's Figure 3 study requires: an add/subtract datapath with a
// B-operand selector (ADD/SUB/INC/DEC and the compare differences), a
// multi-function logic unit, a dedicated comparator and zero detector for
// the status pins, an output selector, and a small minterm decode plane
// that derives the datapath controls from the function code F.
//
// The slice-cascade rule composes an ALU from data-book ALU slices
// (74181-style) chained through the raw carry — valid exactly for the
// operations whose per-slice semantics compose (ADD, SUB, bitwise logic).
#include <map>
#include <memory>

#include "dtas/rule.h"

namespace bridge::dtas {

using genus::ComponentSpec;
using genus::Kind;
using genus::Op;
using genus::OpSet;
using netlist::Instance;
using netlist::Module;
using netlist::NetIndex;

namespace {

const OpSet kArithGroup{Op::kAdd, Op::kSub, Op::kInc, Op::kDec,
                        Op::kEq,  Op::kLt,  Op::kGt,  Op::kZerop};
const OpSet kSliceableOps = OpSet{Op::kAdd, Op::kSub} | genus::alu16_logic_ops();

/// Builds decode signals from the function code F: each signal is an OR of
/// shared minterms, simplified to a direct F wire or a constant when the
/// code set allows it.
class DecodePlane {
 public:
  DecodePlane(TemplateBuilder& t, int selw, int nops)
      : t_(t), selw_(selw), nops_(nops) {}

  /// Net holding 1 exactly when the current F code is in `codes`.
  NetIndex signal(const std::vector<int>& codes) {
    if (codes.empty()) return const_net(false);
    if (static_cast<int>(codes.size()) == nops_) return const_net(true);
    // Single F bit? codes == all in-range codes with bit j set.
    for (int j = 0; j < selw_; ++j) {
      std::vector<int> with_bit;
      for (int c = 0; c < nops_; ++c) {
        if ((c >> j) & 1) with_bit.push_back(c);
      }
      if (with_bit == codes) {
        NetIndex o = t_.fresh("fb", 1);
        t_.buf_slice(t_.port("F"), j, o, 0, 1);
        return o;
      }
    }
    std::vector<std::pair<NetIndex, int>> terms;
    for (int c : codes) terms.emplace_back(minterm(c), 0);
    if (terms.size() == 1) return terms[0].first;
    return t_.gate_many(Op::kOr, terms);
  }

 private:
  NetIndex const_net(bool v) {
    NetIndex o = t_.fresh("k", 1);
    t_.const_slice(o, 0, 1, v);
    return o;
  }

  NetIndex inv_bit(int j) {
    auto it = inv_.find(j);
    if (it != inv_.end()) return it->second;
    NetIndex n = t_.inv(t_.port("F"), j);
    inv_[j] = n;
    return n;
  }

  NetIndex minterm(int code) {
    auto it = minterms_.find(code);
    if (it != minterms_.end()) return it->second;
    std::vector<std::pair<NetIndex, int>> picks;
    for (int j = 0; j < selw_; ++j) {
      if ((code >> j) & 1) {
        picks.emplace_back(t_.port("F"), j);
      } else {
        picks.emplace_back(inv_bit(j), 0);
      }
    }
    NetIndex m = t_.gate_many(Op::kAnd, picks);
    minterms_[code] = m;
    return m;
  }

  TemplateBuilder& t_;
  int selw_;
  int nops_;
  std::map<int, NetIndex> inv_;
  std::map<int, NetIndex> minterms_;
};

class AluDatapathRule final : public Rule {
 public:
  explicit AluDatapathRule(bool library_specific)
      : Rule("alu-datapath-decompose", "datapath-composition",
             library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return spec.kind == Kind::kAlu && !spec.ops.empty() &&
           (kArithGroup | genus::alu16_logic_ops()).contains_all(spec.ops);
  }

  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "aludp");
    const int w = spec.width;
    const auto ops = spec.ops.to_vector();
    const int nops = static_cast<int>(ops.size());
    const int selw = spec.select_width();

    std::vector<Op> logic_ops;
    std::vector<int> logic_codes;
    std::vector<int> mode_codes;  // subtract-style datapath ops
    std::vector<int> bsel1_codes;  // B operand = constant 1 (INC/DEC)
    std::vector<int> bsel0_codes;  // B operand = constant 0 (ZEROP)
    bool any_arith = false;
    for (int c = 0; c < nops; ++c) {
      Op op = ops[c];
      if (genus::op_is_logic(op)) {
        logic_ops.push_back(op);
        logic_codes.push_back(c);
        continue;
      }
      any_arith = true;
      switch (op) {
        case Op::kSub:
        case Op::kEq:
        case Op::kLt:
        case Op::kGt:
          mode_codes.push_back(c);
          break;
        case Op::kDec:
          mode_codes.push_back(c);
          bsel1_codes.push_back(c);
          break;
        case Op::kInc:
          bsel1_codes.push_back(c);
          break;
        case Op::kZerop:
          mode_codes.push_back(c);
          bsel0_codes.push_back(c);
          break;
        default:
          break;
      }
    }
    const bool need_datapath = any_arith || spec.carry_out;
    const bool multi_op = nops > 1;
    DecodePlane decode(t, multi_op ? selw : 0, nops);

    NetIndex ds = netlist::kNoNet;  // datapath sum
    if (need_datapath) {
      // B-operand selector: B, constant 1, constant 0.
      NetIndex b_operand = t.port("B");
      if (!bsel1_codes.empty() || !bsel0_codes.empty()) {
        NetIndex bsel = t.fresh("bsel", 2);
        NetIndex b0 = decode.signal(sorted_union(bsel1_codes, {}));
        NetIndex b1 = decode.signal(sorted_union(bsel0_codes, {}));
        t.buf_slice(b0, 0, bsel, 0, 1);
        t.buf_slice(b1, 0, bsel, 1, 1);
        Instance& bm = t.add("bmux", genus::make_mux_spec(w, 3));
        t.connect(bm, "I0", t.port("B"));
        t.connect_const(bm, "I1", 1);
        t.connect_const(bm, "I2", 0);
        t.connect(bm, "SEL", bsel);
        b_operand = t.fresh("bop", w);
        t.connect(bm, "OUT", b_operand);
      }
      NetIndex mode = decode.signal(sorted_union(mode_codes, {}));

      ComponentSpec as = genus::make_addsub_spec(w);
      as.carry_out = spec.carry_out;
      Instance& core = t.add("arith", as);
      t.connect(core, "A", t.port("A"));
      t.connect(core, "B", b_operand);
      t.connect(core, "MODE", mode);
      if (spec.carry_in) {
        t.connect(core, "CI", t.port("CI"));
      } else {
        t.connect_const(core, "CI", 0);
      }
      if (spec.carry_out) t.connect(core, "CO", t.port("CO"));
      ds = t.fresh("ds", w);
      t.connect(core, "S", ds);
    }

    // Logic unit.
    NetIndex lo = netlist::kNoNet;
    if (!logic_ops.empty()) {
      OpSet lset;
      for (Op op : logic_ops) lset.insert(op);
      ComponentSpec lu = genus::make_logic_unit_spec(w, lset);
      Instance& u = t.add("logic", lu);
      t.connect(u, "A", t.port("A"));
      t.connect(u, "B", t.port("B"));
      if (logic_ops.size() > 1) {
        // LU select code = index within the logic subset: per-bit OR plane.
        const int lsw = lu.select_width();
        NetIndex lf = t.fresh("lf", lsw);
        for (int j = 0; j < lsw; ++j) {
          std::vector<int> codes;
          for (size_t i = 0; i < logic_codes.size(); ++i) {
            if ((static_cast<int>(i) >> j) & 1) {
              codes.push_back(logic_codes[i]);
            }
          }
          NetIndex s = decode.signal(sorted_union(codes, {}));
          t.buf_slice(s, 0, lf, j, 1);
        }
        t.connect(u, "F", lf);
      }
      lo = t.fresh("lo", w);
      t.connect(u, "OUT", lo);
    }

    // Output selection.
    if (ds != netlist::kNoNet && lo != netlist::kNoNet) {
      NetIndex outsel = decode.signal(sorted_union(logic_codes, {}));
      Instance& om = t.add("omux", genus::make_mux_spec(w, 2));
      t.connect(om, "I0", ds);
      t.connect(om, "I1", lo);
      t.connect(om, "SEL", outsel);
      t.connect(om, "OUT", t.port("OUT"));
    } else if (ds != netlist::kNoNet) {
      t.buf_slice(ds, 0, t.port("OUT"), 0, w);
    } else if (lo != netlist::kNoNet) {
      t.buf_slice(lo, 0, t.port("OUT"), 0, w);
    } else {
      t.const_slice(t.port("OUT"), 0, w);
    }

    // Status pins: dedicated comparator (EQ/LT/GT) and zero detector.
    OpSet cmp_ops;
    for (Op op : {Op::kEq, Op::kLt, Op::kGt}) {
      if (spec.ops.contains(op)) cmp_ops.insert(op);
    }
    if (!cmp_ops.empty()) {
      ComponentSpec cs = genus::make_comparator_spec(w, cmp_ops);
      Instance& cmp = t.add("cmp", cs);
      t.connect(cmp, "A", t.port("A"));
      t.connect(cmp, "B", t.port("B"));
      for (Op op : cmp_ops.to_vector()) {
        t.connect(cmp, genus::op_name(op), t.port(genus::op_name(op)));
      }
    }
    if (spec.ops.contains(Op::kZerop)) {
      if (w == 1) {
        NetIndex z = t.inv(t.port("A"), 0);
        t.buf_slice(z, 0, t.port("ZEROP"), 0, 1);
      } else {
        std::vector<std::pair<NetIndex, int>> picks;
        for (int b = 0; b < w; ++b) picks.emplace_back(t.port("A"), b);
        NetIndex z = t.gate_many(Op::kNor, picks);
        t.buf_slice(z, 0, t.port("ZEROP"), 0, 1);
      }
    }

    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }

 private:
  static std::vector<int> sorted_union(std::vector<int> a,
                                       const std::vector<int>& b) {
    a.insert(a.end(), b.begin(), b.end());
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
    return a;
  }
};

/// Cascade of data-book ALU slices through the raw carry chain.
class AluSliceCascadeRule final : public Rule {
 public:
  AluSliceCascadeRule(int k, bool library_specific)
      : Rule("alu-slice-cascade-" + std::to_string(k), "ripple-composition",
             library_specific),
        k_(k) {}

  bool applies(const ComponentSpec& spec,
               const RuleContext& ctx) const override {
    if (spec.kind != Kind::kAlu || spec.width <= k_ ||
        spec.width % k_ != 0 || spec.ops.empty() ||
        !kSliceableOps.contains_all(spec.ops)) {
      return false;
    }
    ComponentSpec probe = genus::make_alu_spec(k_, spec.ops);
    return !ctx.library.matches(probe).empty();
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "aluslices" + std::to_string(k_));
    const int groups = spec.width / k_;
    NetIndex carry = netlist::kNoNet;
    for (int g = 0; g < groups; ++g) {
      ComponentSpec slice = genus::make_alu_spec(k_, spec.ops);
      Instance& u = t.add("slice", slice);
      t.connect(u, "A", t.port("A"), g * k_);
      t.connect(u, "B", t.port("B"), g * k_);
      t.connect(u, "F", t.port("F"));
      t.connect(u, "OUT", t.port("OUT"), g * k_);
      if (g == 0) {
        if (spec.carry_in) {
          t.connect(u, "CI", t.port("CI"));
        } else {
          t.connect_const(u, "CI", 0);
        }
      } else {
        t.connect(u, "CI", carry);
      }
      if (g + 1 == groups) {
        if (spec.carry_out) t.connect(u, "CO", t.port("CO"));
      } else {
        carry = t.fresh("c", 1);
        t.connect(u, "CO", carry);
      }
    }
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }

 private:
  int k_;
};

}  // namespace

std::unique_ptr<Rule> make_alu_slice_cascade_rule(int slice_width,
                                                  bool library_specific) {
  return std::make_unique<AluSliceCascadeRule>(slice_width, library_specific);
}

void register_alu_rules(RuleBase& base) {
  base.add(std::make_unique<AluDatapathRule>(false));
}

}  // namespace bridge::dtas
