// The DTAS design space: an acyclic AND-OR graph.
//
// "This design space is represented as an acyclic graph. Nodes consist of
// component specifications and alternative component implementations. Each
// component implementation corresponds to a library cell or to a netlist
// of modules." (paper §5)
//
// SpecNode is a specification node; its ImplNodes are the alternatives —
// either a library cell (functional match) or a one-level decomposition
// template produced by a rule. Specification nodes are memoized, so the
// graph is shared across the whole design (a 4-bit adder appearing in many
// contexts is expanded once).
//
// Search control (paper §5):
//  1. Uniform-implementation constraint: "we ignore netlist implementations
//     containing two or more modules with the same component specification
//     that are not instances of the same component implementation" —
//     enforced by choosing one alternative per *distinct* child
//     specification when combining.
//  2. Performance filters: "we apply performance filters to eliminate all
//     but the best alternative implementations of each component
//     specification" — a Pareto filter over (area, delay) at every node.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/annotations.h"
#include "base/cancel.h"
#include "base/thread_pool.h"
#include "cells/cell.h"
#include "dtas/rule.h"
#include "dtas/timing_plan.h"
#include "genus/spec.h"
#include "netlist/netlist.h"

namespace bridge::dtas {

/// Area (equivalent NAND gates) and delay (ns) of a candidate design.
struct Metric {
  double area = 0.0;
  double delay = 0.0;
};

/// True if `a` is at least as good as `b` on both axes and better on one.
bool dominates(const Metric& a, const Metric& b);

struct SpecNode;

/// One alternative implementation of a specification.
///
/// Decomposition products (template, schedule, plan) are immutable after
/// creation and shared: every design space expanding the same (rule, spec)
/// points at one copy served by the global TemplateCache, so a cache hit
/// costs three refcount bumps instead of re-running TemplateBuilder string
/// assembly and plan compilation.
struct ImplNode {
  /// Leaf: the matched library cell (functional match). Null for decomps.
  const cells::Cell* cell = nullptr;
  /// Decomposition: the rule that produced it and its template netlist.
  std::string rule_name;
  std::shared_ptr<const netlist::Module> tmpl;
  /// Distinct child specification nodes, in deterministic order (parallel
  /// to the plan's distinct-child indices).
  std::vector<SpecNode*> children;
  /// Topological evaluation schedule of the template (combinational only).
  std::shared_ptr<const EvalSchedule> topo;
  /// Compiled evaluation program for the template (see timing_plan.h).
  /// Drives both the per-combination evaluator and extraction's
  /// instance→child resolution. Null for leaves.
  std::shared_ptr<const TimingPlan> plan;
  bool dead = false;

  bool is_leaf() const { return cell != nullptr; }
};

/// The immutable product of one template of one Rule::expand application,
/// compiled once and shared across design spaces: the template module, its
/// distinct child specifications (first-occurrence instance order — the
/// order child metrics are indexed in), and the evaluation schedule + plan
/// (absent when the template was rejected for a combinational cycle, which
/// is a property of the template itself).
struct CompiledTemplate {
  std::shared_ptr<const netlist::Module> tmpl;
  std::vector<genus::ComponentSpec> child_specs;
  std::shared_ptr<const EvalSchedule> topo;
  std::shared_ptr<const TimingPlan> plan;
  bool rejected = false;  // combinational cycle in the template
};

/// Process-wide cache of compiled rule templates, keyed by
/// (rule name, spec, library-slice fingerprint). For the built-in and
/// LOLA-induced rules the fingerprint is 0 and the key degenerates to the
/// historical (rule name, spec): Rule::expand is contractually a pure
/// function of that pair (rule names encode their parameters, and the rule
/// context only ever gates applicability), so warm templates are shared
/// across design spaces, libraries, and server sessions. The fingerprint
/// exists for rules that cannot make that promise (see
/// Rule::slice_fingerprint): it keys the entry by whatever library slice
/// the rule's expansions actually depend on, making cross-library
/// soundness an enforced property of the key rather than a naming
/// convention. DesignSpace consults the cache per (applicable rule, spec)
/// — a miss compiles and publishes, a hit skips TemplateBuilder, topo
/// scheduling, and TimingPlan compilation entirely.
///
/// Lifecycle: entries are shared_ptr-owned and byte-accounted. With no
/// budget set (the default) the cache is effectively append-only, as
/// before. Under a budget (set_budget_bytes / SpaceOptions::
/// template_cache_budget_bytes / BRIDGE_CACHE_BUDGET) the key space is
/// sharded and each shard evicts least-recently-used entries down to its
/// slice of the budget — but never an entry pinned by a live synthesis:
/// an entry whose vector (or any inner template/plan) is referenced
/// outside the cache is skipped, so eviction can only reclaim memory, not
/// invalidate anything a DesignSpace still points at. Callers hold the
/// returned shared_ptr while iterating.
class TemplateCache {
 public:
  using EntryPtr = std::shared_ptr<const std::vector<CompiledTemplate>>;

  /// Process-wide lookup totals. The cache is shared by every DesignSpace
  /// in the process, so these absolutes can't attribute work to one run —
  /// diff two snapshot() results to carve out a window, or read the
  /// per-space deltas in SpaceStats::template_cache_{hits,misses} (each
  /// space counts only its own lookups, so interleaved spaces stay
  /// separable and their deltas sum to the global delta).
  struct Stats {
    long hits = 0;
    long misses = 0;    // find() calls that missed (insert usually follows)
    long entries = 0;   // compiled (rule, spec) entries resident
    long evictions = 0; // entries evicted over the process lifetime
    long bytes = 0;     // resident footprint estimate
  };

  static TemplateCache& global();

  /// nullptr when absent. `rule_fp` is the rule's slice fingerprint (see
  /// Rule::slice_fingerprint). Counts the lookup in the global Stats and
  /// the obs registry ("dtas.expand.template_cache.{hits,misses}") and
  /// freshens the entry's LRU stamp on a hit.
  EntryPtr find(const std::string& rule_name, std::uint64_t rule_fp,
                const genus::ComponentSpec& spec);

  /// Publish (first writer wins on a race); returns the stored entry and
  /// runs the eviction sweep when a budget is set.
  EntryPtr insert(const std::string& rule_name, std::uint64_t rule_fp,
                  const genus::ComponentSpec& spec,
                  std::vector<CompiledTemplate> templates);

  /// Byte budget; 0 = unbounded (the default, modulo BRIDGE_CACHE_BUDGET
  /// read at construction). Setting a budget sweeps immediately. Pinned
  /// entries are never evicted, so a budget is a target the cache meets
  /// whenever enough entries are unpinned, not a hard cap.
  void set_budget_bytes(std::size_t budget);
  std::size_t budget_bytes() const;

  /// Entries currently cached (diagnostics / tests).
  std::size_t size() const;

  /// Relaxed-read copy of the process-wide totals.
  Stats snapshot() const;

 private:
  struct Key {
    std::string rule;
    std::uint64_t fp = 0;  // Rule::slice_fingerprint of the producing rule
    genus::ComponentSpec spec;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::size_t h = std::hash<std::string>()(k.rule);
      h ^= std::hash<std::uint64_t>()(k.fp) + 0x9e3779b97f4a7c15ULL +
           (h << 6) + (h >> 2);
      h ^= std::hash<genus::ComponentSpec>()(k.spec) + 0x9e3779b97f4a7c15ULL +
           (h << 6) + (h >> 2);
      return h;
    }
  };
  struct Entry {
    EntryPtr templates;
    std::size_t bytes = 0;
    std::uint64_t last_use = 0;  // global tick at last find/insert
  };
  /// One lock + map + byte total per key-hash shard, so concurrent
  /// Synthesizers contend only within a shard and eviction sweeps lock
  /// one shard at a time.
  struct Shard {
    mutable base::Mutex mu;
    std::unordered_map<Key, Entry, KeyHash> map BRIDGE_GUARDED_BY(mu);
    std::size_t bytes BRIDGE_GUARDED_BY(mu) = 0;
  };
  static constexpr int kShards = 8;

  TemplateCache();

  Shard& shard_for(const Key& key) {
    return shards_[KeyHash{}(key) % kShards];
  }
  /// Evict LRU unpinned entries of `s` until its bytes fit `target`.
  void evict_locked(Shard& s, std::size_t target) BRIDGE_REQUIRES(s.mu);

  Shard shards_[kShards];
  std::atomic<std::uint64_t> tick_{0};
  std::atomic<std::size_t> budget_{0};
  // Lock-free lookup totals (find() is called on the expansion hot path).
  std::atomic<long> hits_{0};
  std::atomic<long> misses_{0};
  std::atomic<long> evictions_{0};
  std::atomic<long> bytes_{0};
};

/// Parse a byte-budget text: a non-negative integer with an optional
/// k / m / g (KiB / MiB / GiB) suffix, case-insensitive ("64m", "100000").
/// Returns -1 when the text is empty or malformed.
long parse_cache_budget(const std::string& text);

/// BRIDGE_CACHE_BUDGET from the environment, parsed; -1 when unset or
/// unparsable. Read once by TemplateCache at construction and per
/// Synthesizer for the extraction cache default.
long cache_budget_from_env();

/// A surviving alternative after evaluation: which implementation, which
/// alternative of each distinct child, and the resulting metrics.
struct Alternative {
  int impl_index = -1;
  std::vector<int> child_alt;  // parallel to impls[impl_index]->children
  Metric metric;
};

struct SpecNode {
  genus::ComponentSpec spec;
  std::vector<std::unique_ptr<ImplNode>> impls;
  std::vector<Alternative> alts;  // filtered, sorted by ascending area
  bool expanded = false;
  bool in_progress = false;
  bool evaluated = false;
  /// Content fingerprint of the expanded subtree rooted here: the spec
  /// plus, per implementation in order, the matched cell's fingerprint
  /// (leaves) or the producing rule's (name, slice fingerprint) and the
  /// children's slice_fp (decompositions). Two nodes fingerprint equally
  /// exactly when their entire reachable design subspace is
  /// content-identical — same cells, same timing numbers, same impl and
  /// child ordering — which makes this the cross-retarget identity the
  /// ExtractionCache keys on: alternative indices, metrics, extracted
  /// modules, and descriptions are all functions of it. Set by expansion
  /// (0 until expanded).
  std::uint64_t slice_fp = 0;
  double count_constrained = -1.0;
  double count_unconstrained = -1.0;
};

/// Performance-filter policy (ablation knob; the paper uses the
/// favorable-tradeoff filter, i.e. Pareto).
enum class FilterKind { kPareto, kNone, kAreaOnly, kDelayOnly };

struct SpaceOptions {
  FilterKind filter = FilterKind::kPareto;
  /// Cap on surviving alternatives per node (after filtering).
  int max_alternatives_per_node = 24;
  /// Cap on child-choice combinations explored per implementation.
  long max_combinations_per_impl = 100000;
  /// "Favorable tradeoff" threshold of the Pareto filter: a larger design
  /// survives only if it improves delay by at least this fraction. This is
  /// what keeps the paper's alternative sets small (5 designs for the
  /// 64-bit ALU) instead of full of near-duplicates.
  double min_delay_gain = 0.10;
  /// Evaluate odometer combinations through the compiled TimingPlan
  /// (default) or through the original functional evaluator. The reference
  /// path exists for equivalence testing and as the bench baseline; both
  /// produce bit-identical metrics.
  bool use_compiled_plan = true;
  /// Bound-and-prune the odometer: skip a combination when its exact area
  /// plus its delay lower bound is already dominated (with margin) by an
  /// evaluated candidate, and discard it without storing when its exact
  /// metrics are. Never changes the filtered front; automatically off
  /// under FilterKind::kNone (which keeps dominated candidates) and on the
  /// reference path.
  bool bound_prune = true;
  /// Threads applied to the sharded plan odometer. 0 means
  /// hardware_concurrency; 1 preserves the fully serial pre-shard code
  /// path (no pool is ever created). The parallel result is bit-identical
  /// to the serial one at every thread count: shards cover contiguous
  /// index ranges of the enumeration, keep private fronts, and are merged
  /// back in shard order, so the candidate sequence the filter sees is
  /// exactly the serial sequence (minus pruned candidates, which are
  /// front-preserving by the bound-and-prune margin argument).
  int threads = 0;
  /// Shard granularity: an odometer is sharded only when it holds at
  /// least two shards of this many combinations; below that the serial
  /// path runs (thread fork-join would cost more than it saves).
  long min_combinations_per_shard = 2048;
  /// Shards per thread above the minimum shard size — more shards than
  /// threads lets dynamic task claiming level uneven prune rates.
  int shards_per_thread = 4;
  /// Evaluate independent SpecNodes of one expansion DAG in parallel:
  /// evaluate() levelizes the un-evaluated sub-DAG and schedules each
  /// antichain (nodes whose children are all already evaluated) as one
  /// fork-join batch on the same pool the odometer shards use, so a single
  /// deep spec saturates all cores instead of only sweeps. Per-node
  /// evaluation is unchanged — each node keeps its private candidate
  /// sequence, scratch, and front, and levels are merged in node order —
  /// so fronts are bit-identical at every thread count and with this
  /// toggle off (the serial recursive path, kept as the reference).
  /// Inert at threads == 1.
  bool node_parallel = true;
  /// Key the per-Synthesizer ExtractionCache (modules, names, traces) by
  /// content fingerprint — SpecNode::slice_fp, the spec plus everything
  /// the expanded subtree bound — instead of node address (default), so
  /// warm extraction state survives Synthesizer::retarget and is reused
  /// exactly when the content that produced it matches; the server keys
  /// warm sessions by library content fingerprint under the same toggle.
  /// Off, the historical pointer identities are used — they cannot
  /// outlive their space, so retargets start cold; kept as the reference
  /// path for byte-identity testing. Fronts, descriptions, and VHDL are
  /// identical either way within a session. Note the process-wide
  /// TemplateCache always keys by (rule name, rule fingerprint, spec):
  /// cross-library sharing soundness is an invariant, not an option.
  bool delta_cache_keys = true;
  /// Serve rule expansions from the process-wide TemplateCache (and
  /// publish misses into it). Off, every expansion re-runs TemplateBuilder
  /// and plan compilation — kept for equivalence testing; the resulting
  /// design space is bit-identical either way.
  bool use_template_cache = true;
  /// Materialize each distinct (spec node, alternative) subtree once per
  /// Synthesizer (dtas::ExtractionCache) and share the immutable module
  /// across every AlternativeDesign that contains it, instead of rebuilding
  /// the subtree into every design. Off, every design owns a private copy
  /// of every module (the reference path, kept for equivalence testing);
  /// descriptions and emitted VHDL are byte-identical either way.
  bool use_extraction_cache = true;
  /// Non-empty: start the process span tracer (obs::Tracer) into this
  /// file when the space is constructed, as if BRIDGE_TRACE had been set
  /// — the programmatic hook for tracing one synthesis. The first path
  /// the process starts with wins (the tracer is process-wide); the
  /// trace is written at process exit or by obs::Tracer::global().stop().
  /// Tracing never changes results: fronts, descriptions, and VHDL are
  /// byte-identical with tracing on or off at every thread count
  /// (tests/obs_test.cpp pins this).
  std::string trace_path;
  /// Wall-clock budget per synthesize call, in milliseconds; 0 means
  /// unbounded. The deadline is polled cooperatively at coarse
  /// checkpoints (per rule application, per odometer chunk of 1024
  /// combinations, per extracted alternative — never per combination), so
  /// overrun past the deadline is bounded by one checkpoint interval. A
  /// run whose deadline never fires is bit-identical to an unbounded run:
  /// the checks only read a clock.
  long deadline_ms = 0;
  /// What expiry does: false (default) — synthesize throws
  /// bridge::Cancelled and unwinds with strong exception safety (the
  /// Synthesizer stays usable; re-arm and retry); true — the call stops
  /// expanding/enumerating/extracting, returns the best-so-far front, and
  /// sets SpaceStats::deadline_hit. Best-effort truncation persists in
  /// the space for the session, like any other evaluated state.
  bool deadline_best_effort = false;
  /// External kill switch polled alongside the deadline (see
  /// base/cancel.h); may be shared across requests. Null = none.
  std::shared_ptr<base::CancelToken> cancel;
  /// Byte budget applied to the process-wide TemplateCache at space
  /// construction: -1 (default) leaves the process setting alone, 0 sets
  /// it unbounded, > 0 sets the budget. Process-wide — the last space to
  /// set it wins.
  long template_cache_budget_bytes = -1;
  /// Byte budget of the owning Synthesizer's ExtractionCache: -1 takes
  /// the BRIDGE_CACHE_BUDGET env default (unbounded when unset), 0 is
  /// unbounded, > 0 is the budget.
  long extraction_cache_budget_bytes = -1;
  /// Run the structural linter (src/lint) over every extracted
  /// alternative design before synthesize returns, and throw
  /// bridge::Error on any error-severity diagnostic — the assert-clean
  /// backstop for cache/parallel bugs that produce malformed netlists.
  /// On by default in Debug and sanitizer builds (NDEBUG unset), off in
  /// Release; fronts, descriptions, and VHDL are byte-identical with the
  /// toggle on or off (linting only reads the designs).
#ifndef NDEBUG
  bool verify_designs = true;
#else
  bool verify_designs = false;
#endif
};

struct SpaceStats {
  int spec_nodes = 0;
  int impl_nodes = 0;
  int leaf_impls = 0;
  int rule_applications = 0;
  int dead_specs = 0;        // specs with no viable implementation
  int rejected_templates = 0;  // cyclic or malformed rule output
  long combinations_evaluated = 0;  // odometer combinations kept as candidates
  long combinations_pruned = 0;     // skipped or discarded by bound-and-prune
  long parallel_odometers = 0;      // odometer runs that went multi-threaded
  long odometer_shards = 0;         // shards executed across those runs
  long node_parallel_levels = 0;    // DAG antichains evaluated as pool batches
  long node_parallel_nodes = 0;     // spec nodes evaluated inside those batches
  // This space's TemplateCache lookups only — a this-run delta even when
  // several DesignSpaces interleave on the shared process-wide cache.
  // TemplateCache::snapshot() holds the global totals; per-space deltas
  // sum to the global snapshot diff (tests/obs_test.cpp pins this).
  long template_cache_hits = 0;     // rule applications served from the cache
  long template_cache_misses = 0;   // rule applications compiled (+published)
  // The most recent arm_deadline() window hit its deadline in best-effort
  // mode (the front returned is best-so-far, not exhaustive). Reset by
  // arm_deadline(); never set in throw mode, which raises Cancelled
  // instead.
  bool deadline_hit = false;
};

/// Incremental (area, delay) Pareto staircase over evaluated candidates,
/// used by bound-and-prune. A combination dominated with margin by an
/// evaluated point — on its delay lower bound before propagation, or on
/// its exact metrics before storage — can never survive any of the
/// dominance-respecting filters, so it is skipped or discarded. The margin
/// (2 × the filter epsilon) keeps the claim true under the filters'
/// epsilon-tolerant comparisons.
class ParetoFront {
 public:
  /// Record an evaluated candidate. Returns true when the front changed
  /// (the point was non-dominated and actually inserted).
  bool add(double area, double delay);
  /// True when some recorded point has area + margin <= `area` and
  /// delay + margin <= `delay_lower_bound`.
  bool dominates_bound(double area, double delay_lower_bound) const;
  /// Fold every point of `other` into this front; true when it changed.
  bool merge(const ParetoFront& other);

 private:
  /// Non-dominated points, area ascending (hence delay descending).
  std::vector<std::pair<double, double>> points_;
};

class DesignSpace {
 public:
  DesignSpace(const RuleBase& rules, const cells::CellLibrary& library,
              SpaceOptions options = {});

  /// Recursively expand a specification (memoized). Never null; the node
  /// may end up with no implementations (dead) if the library can't
  /// realize it.
  SpecNode* expand(const genus::ComponentSpec& spec);

  /// Evaluate a node bottom-up: build its filtered alternative list.
  void evaluate(SpecNode* node);

  /// Design-space size under the uniform-implementation constraint
  /// (search principle 1) but with no performance filter.
  double count_constrained(SpecNode* node);

  /// Raw design-space size with neither search-control principle: every
  /// module instance chooses independently. "Even for components of modest
  /// size ... several hundred thousand to several million alternative
  /// designs." (paper §5)
  double count_unconstrained(SpecNode* node);

  const cells::CellLibrary& library() const { return library_; }
  const RuleBase& rules() const { return rules_; }
  const SpaceStats& stats() const { return stats_; }
  const SpaceOptions& options() const { return options_; }

  /// (Re-)arm the cooperative deadline from the options: the clock starts
  /// now, SpaceStats::deadline_hit resets. The Synthesizer calls this at
  /// the top of every synthesize / synthesize_netlist; direct DesignSpace
  /// users get one arming at construction.
  void arm_deadline();

  /// Replace the deadline policy options (deadline_ms / best-effort /
  /// cancel token) for subsequent arm_deadline() calls — the hook for
  /// reusing one Synthesizer across requests with different budgets.
  void set_deadline_policy(long deadline_ms, bool best_effort,
                           std::shared_ptr<base::CancelToken> cancel);

  /// Poll the armed deadline. False while it hasn't fired (the common
  /// case: one clock read, no mutation). Once it fires: best-effort mode
  /// sets SpaceStats::deadline_hit and returns true — the caller stops
  /// its loop and keeps what it has; otherwise throws bridge::Cancelled.
  /// Called from the caller thread only; parallel shards poll the
  /// Deadline directly (see run_plan_odometer).
  bool deadline_exceeded();

  /// Evaluate a template's metrics given per-child-spec metrics: area is
  /// the sum over instances, delay the longest structural path (sequential
  /// instances act as path sources/sinks with their clock-to-q delay).
  /// Arrival times are tracked per net *bit*.
  static Metric eval_template(
      const netlist::Module& tmpl, const EvalSchedule& topo,
      const std::function<Metric(const genus::ComponentSpec&)>& child_metric);

  /// Topological evaluation schedule over (instance, output port) units
  /// with bit-granular dependencies. Throws Error on a real combinational
  /// cycle.
  static EvalSchedule topo_order(const netlist::Module& tmpl);

  /// Apply this space's filter policy to a set of alternatives (also used
  /// by netlist-level synthesis). Sorted by ascending area.
  std::vector<Alternative> filter_alternatives(
      std::vector<Alternative> candidates) const;

  /// Run the compiled-plan odometer over one child-alternative choice per
  /// entry of `children` (bounded by `limit`, whose product callers must
  /// already have capped via trim_limits), bound-and-pruning against
  /// `front`, and append the surviving candidates with the given impl
  /// index. Shared by per-implementation evaluation and whole-netlist
  /// synthesis — the same hot loop, one level apart. Large odometers are
  /// sharded across SpaceOptions::threads worker threads; the result is
  /// bit-identical to the serial run (see SpaceOptions::threads).
  void run_plan_odometer(const TimingPlan& plan,
                         const std::vector<SpecNode*>& children,
                         const std::vector<int>& limit, int impl_index,
                         ParetoFront& front,
                         std::vector<Alternative>& candidates);

  /// The same odometer on the reference functional evaluator (the
  /// pre-plan code path, kept verbatim for equivalence testing).
  void run_reference_odometer(const netlist::Module& tmpl,
                              const EvalSchedule& topo,
                              const std::vector<SpecNode*>& children,
                              const std::vector<int>& limit, int impl_index,
                              std::vector<Alternative>& candidates);

  /// Shrink per-child alternative limits until their product fits `cap`
  /// (largest limit first).
  static void trim_limits(std::vector<int>& limit, long cap);

 private:
  void expand_node(SpecNode* node);

  /// The body of evaluate() (candidate enumeration + filtering), split
  /// out so evaluate() can wrap it in the reset-on-exception guard.
  /// The explicit-scratch/stats overload is the thread-safe worker body of
  /// node-parallel evaluation: every mutation lands in the caller-provided
  /// scratch and stats (merged into stats_ after the level's barrier), and
  /// `children_preevaluated` asserts the levelization guarantee instead of
  /// recursing (the recursion path touches members and must stay
  /// caller-thread-only).
  void evaluate_impls(SpecNode* node) {
    evaluate_impls(node, scratch_, stats_, /*children_preevaluated=*/false);
  }
  void evaluate_impls(SpecNode* node, EvalScratch& scratch, SpaceStats& stats,
                      bool children_preevaluated);

  /// Levelized node-parallel form of evaluate(): topologically layer the
  /// un-evaluated sub-DAG under `root`, then evaluate each layer's nodes
  /// as one fork-join pool batch (single-node layers — typically the root
  /// — run on the caller so their odometers still shard across the pool).
  void evaluate_parallel(SpecNode* root);

  /// Thread-safe deadline poll for worker-thread evaluation: identical to
  /// deadline_exceeded() but records a best-effort hit in `stats` instead
  /// of stats_.
  bool deadline_poll(SpaceStats& stats);

  /// Explicit-scratch/stats overloads of the public odometers, so
  /// node-parallel workers enumerate without touching the shared members.
  void run_plan_odometer(const TimingPlan& plan,
                         const std::vector<SpecNode*>& children,
                         const std::vector<int>& limit, int impl_index,
                         ParetoFront& front, std::vector<Alternative>& candidates,
                         EvalScratch& scratch, SpaceStats& stats);
  void run_reference_odometer(const netlist::Module& tmpl,
                              const EvalSchedule& topo,
                              const std::vector<SpecNode*>& children,
                              const std::vector<int>& limit, int impl_index,
                              std::vector<Alternative>& candidates,
                              SpaceStats& stats);

  /// Whether bound-and-prune applies under the current options (it must
  /// stay off when the filter keeps dominated candidates).
  bool prune_enabled() const {
    return options_.bound_prune && options_.filter != FilterKind::kNone;
  }

  /// The lazily created odometer pool (threads_ - 1 workers; the calling
  /// thread is the remaining one). Never created when threads_ == 1.
  base::ThreadPool* pool();

  const RuleBase& rules_;
  const cells::CellLibrary& library_;
  SpaceOptions options_;
  SpaceStats stats_;
  base::Deadline deadline_;  // armed from options_ (see arm_deadline)
  int threads_ = 1;  // resolved from options_.threads at construction
  // Recursion depths of expand()/evaluate(): only the depth-0 entry of
  // each opens a phase span, so one trace shows one expand and one
  // evaluate block per top-level request, not thousands of nested ones.
  int expand_depth_ = 0;
  int eval_depth_ = 0;
  std::unique_ptr<base::ThreadPool> pool_;
  std::unordered_map<genus::ComponentSpec, std::unique_ptr<SpecNode>> memo_;
  // Serial-path evaluation scratch, reused across odometer runs. Parallel
  // shards own one EvalScratch per shard instead (see run_plan_odometer).
  EvalScratch scratch_;
};

}  // namespace bridge::dtas
