#include "dtas/design_space.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <thread>

#include "base/diag.h"
#include "base/fault.h"
#include "base/fingerprint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bridge::dtas {

using genus::ComponentSpec;
using netlist::Instance;
using netlist::Module;
using netlist::NetIndex;
using netlist::PortConn;
using netlist::RefKind;

namespace {
constexpr double kEps = 1e-9;
}

bool dominates(const Metric& a, const Metric& b) {
  return a.area <= b.area + kEps && a.delay <= b.delay + kEps &&
         (a.area < b.area - kEps || a.delay < b.delay - kEps);
}

namespace {
/// Pruning margin. With points separated by at least 2·kEps on both axes,
/// a pruned candidate provably fails every epsilon-tolerant filter sweep:
/// it sorts strictly after the dominating point and its delay can never
/// undercut the favorable-tradeoff threshold that point implies.
constexpr double kPruneMargin = 2.0 * kEps;
}  // namespace

bool ParetoFront::add(double area, double delay) {
  // Find the insertion position by area.
  auto pos = std::lower_bound(
      points_.begin(), points_.end(), area,
      [](const std::pair<double, double>& p, double a) { return p.first < a; });
  // Dominated by (or equal to) a point at or before `pos`: nothing to add.
  if (pos != points_.begin() && std::prev(pos)->second <= delay) return false;
  if (pos != points_.end() && pos->first == area && pos->second <= delay) {
    return false;
  }
  // Remove points the new one dominates (same or larger area, same or
  // larger delay) — they start at `pos` and are contiguous.
  auto last = pos;
  while (last != points_.end() && last->second >= delay) ++last;
  pos = points_.erase(pos, last);
  points_.insert(pos, {area, delay});
  return true;
}

bool ParetoFront::merge(const ParetoFront& other) {
  bool changed = false;
  for (const auto& [area, delay] : other.points_) {
    changed = add(area, delay) || changed;
  }
  return changed;
}

bool ParetoFront::dominates_bound(double area, double delay_lower_bound) const {
  // Best (lowest) delay among points with point.area + margin <= `area`:
  // the staircase is delay-descending, so it is the last qualifying point.
  auto pos = std::upper_bound(
      points_.begin(), points_.end(), area - kPruneMargin,
      [](double a, const std::pair<double, double>& p) { return a < p.first; });
  if (pos == points_.begin()) return false;
  return std::prev(pos)->second + kPruneMargin <= delay_lower_bound;
}

long parse_cache_budget(const std::string& text) {
  if (text.empty()) return -1;
  std::size_t pos = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(text, &pos);
  } catch (const std::exception&) {
    return -1;
  }
  long multiplier = 1;
  if (pos < text.size()) {
    if (pos + 1 != text.size()) return -1;
    switch (std::tolower(static_cast<unsigned char>(text[pos]))) {
      case 'k': multiplier = 1L << 10; break;
      case 'm': multiplier = 1L << 20; break;
      case 'g': multiplier = 1L << 30; break;
      default: return -1;
    }
  }
  return static_cast<long>(value) * multiplier;
}

long cache_budget_from_env() {
  const char* text = std::getenv("BRIDGE_CACHE_BUDGET");
  return text == nullptr ? -1 : parse_cache_budget(text);
}

namespace {

/// Byte footprint of one cached (rule, spec) entry: the compiled modules,
/// schedules, and plans the cache keeps alive.
std::size_t entry_footprint(const std::vector<CompiledTemplate>& templates) {
  std::size_t bytes = sizeof(std::vector<CompiledTemplate>) +
                      templates.capacity() * sizeof(CompiledTemplate);
  for (const CompiledTemplate& ct : templates) {
    if (ct.tmpl != nullptr) bytes += ct.tmpl->approx_footprint_bytes();
    bytes += ct.child_specs.capacity() * sizeof(genus::ComponentSpec);
    if (ct.topo != nullptr) {
      bytes += sizeof(EvalSchedule) + ct.topo->capacity() * sizeof(EvalStep);
    }
    if (ct.plan != nullptr) bytes += ct.plan->approx_footprint_bytes();
  }
  return bytes;
}

/// Registry mirrors of the template-cache totals, resolved once. Keeping
/// the single count site in TemplateCache (not in every caller) is what
/// makes the dotted names trustworthy.
struct TemplateCacheMetrics {
  obs::Counter& hits =
      obs::Registry::global().counter("dtas.expand.template_cache.hits");
  obs::Counter& misses =
      obs::Registry::global().counter("dtas.expand.template_cache.misses");
  obs::Counter& evictions =
      obs::Registry::global().counter("dtas.expand.template_cache.evictions");
  obs::Gauge& bytes =
      obs::Registry::global().gauge("dtas.expand.template_cache.bytes");

  static TemplateCacheMetrics& get() {
    static TemplateCacheMetrics m;
    return m;
  }
};

}  // namespace

TemplateCache& TemplateCache::global() {
  // Leaked deliberately: compiled templates are shared by shared_ptr into
  // design spaces whose lifetime the cache cannot see, and the pool must
  // survive static destruction.
  static TemplateCache* cache = new TemplateCache;
  return *cache;
}

TemplateCache::TemplateCache() {
  const long env = cache_budget_from_env();
  if (env >= 0) budget_.store(static_cast<std::size_t>(env),
                              std::memory_order_relaxed);
}

TemplateCache::EntryPtr TemplateCache::find(const std::string& rule_name,
                                            std::uint64_t rule_fp,
                                            const genus::ComponentSpec& spec) {
  TemplateCacheMetrics& metrics = TemplateCacheMetrics::get();
  Key key{rule_name, rule_fp, spec};
  Shard& shard = shard_for(key);
  EntryPtr found;
  {
    base::LockGuard lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      it->second.last_use = tick_.fetch_add(1, std::memory_order_relaxed);
      found = it->second.templates;
    }
  }
  if (found != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    metrics.hits.add(1);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    metrics.misses.add(1);
  }
  return found;
}

TemplateCache::EntryPtr TemplateCache::insert(
    const std::string& rule_name, std::uint64_t rule_fp,
    const genus::ComponentSpec& spec,
    std::vector<CompiledTemplate> templates) {
  // An armed fault injector throws here, before any mutation: a failed
  // insert must leave no partially-constructed entry behind.
  base::FaultInjector::global().probe("dtas.template_cache.insert");
  auto owned = std::make_shared<const std::vector<CompiledTemplate>>(
      std::move(templates));
  const std::size_t bytes = entry_footprint(*owned);
  Key key{rule_name, rule_fp, spec};
  Shard& shard = shard_for(key);
  const std::size_t budget = budget_.load(std::memory_order_relaxed);
  EntryPtr stored;
  {
    base::LockGuard lock(shard.mu);
    // First writer wins on a publish race; both sides compiled identical
    // content (expand is pure in the key), so returning the survivor is
    // correct either way.
    auto [it, inserted] = shard.map.emplace(
        key, Entry{std::move(owned), bytes,
                   tick_.fetch_add(1, std::memory_order_relaxed)});
    if (inserted) {
      shard.bytes += bytes;
      bytes_.fetch_add(static_cast<long>(bytes), std::memory_order_relaxed);
    }
    stored = it->second.templates;
    if (budget != 0) evict_locked(shard, budget / kShards);
  }
  TemplateCacheMetrics::get().bytes.set(
      bytes_.load(std::memory_order_relaxed));
  return stored;
}

void TemplateCache::evict_locked(Shard& shard, std::size_t target) {
  // LRU sweep over unpinned entries. Pinned = the entry vector or any
  // inner template/plan is referenced outside the cache: an in-flight
  // find() holds the vector (its copy happened under this shard's lock,
  // so the count is visible here), and every ImplNode of a live
  // DesignSpace holds the inner pointers — either way use_count > 1 and
  // the entry is skipped.
  while (shard.bytes > target) {
    auto victim = shard.map.end();
    for (auto it = shard.map.begin(); it != shard.map.end(); ++it) {
      const Entry& e = it->second;
      if (e.templates.use_count() > 1) continue;
      bool pinned = false;
      for (const CompiledTemplate& ct : *e.templates) {
        if ((ct.tmpl != nullptr && ct.tmpl.use_count() > 1) ||
            (ct.topo != nullptr && ct.topo.use_count() > 1) ||
            (ct.plan != nullptr && ct.plan.use_count() > 1)) {
          pinned = true;
          break;
        }
      }
      if (pinned) continue;
      if (victim == shard.map.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == shard.map.end()) break;  // everything left is pinned
    shard.bytes -= victim->second.bytes;
    bytes_.fetch_sub(static_cast<long>(victim->second.bytes),
                     std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    TemplateCacheMetrics::get().evictions.add(1);
    shard.map.erase(victim);
  }
}

void TemplateCache::set_budget_bytes(std::size_t budget) {
  budget_.store(budget, std::memory_order_relaxed);
  if (budget != 0) {
    for (Shard& shard : shards_) {
      base::LockGuard lock(shard.mu);
      evict_locked(shard, budget / kShards);
    }
  }
  TemplateCacheMetrics::get().bytes.set(
      bytes_.load(std::memory_order_relaxed));
}

std::size_t TemplateCache::budget_bytes() const {
  return budget_.load(std::memory_order_relaxed);
}

TemplateCache::Stats TemplateCache::snapshot() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.entries = static_cast<long>(size());
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  return s;
}

std::size_t TemplateCache::size() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    base::LockGuard lock(shard.mu);
    n += shard.map.size();
  }
  return n;
}

DesignSpace::DesignSpace(const RuleBase& rules,
                         const cells::CellLibrary& library,
                         SpaceOptions options)
    : rules_(rules), library_(library), options_(options) {
  threads_ = options_.threads;
  if (threads_ <= 0) {
    threads_ = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  if (!options_.trace_path.empty()) {
    obs::Tracer::global().start(options_.trace_path);
  }
  if (options_.template_cache_budget_bytes >= 0) {
    TemplateCache::global().set_budget_bytes(
        static_cast<std::size_t>(options_.template_cache_budget_bytes));
  }
  arm_deadline();
}

void DesignSpace::arm_deadline() {
  stats_.deadline_hit = false;
  if (options_.deadline_ms > 0) {
    deadline_ = base::Deadline::after_ms(options_.deadline_ms,
                                         options_.cancel);
  } else if (options_.cancel != nullptr) {
    deadline_ = base::Deadline::cancel_only(options_.cancel);
  } else {
    deadline_ = base::Deadline();
  }
}

void DesignSpace::set_deadline_policy(
    long deadline_ms, bool best_effort,
    std::shared_ptr<base::CancelToken> cancel) {
  options_.deadline_ms = deadline_ms;
  options_.deadline_best_effort = best_effort;
  options_.cancel = std::move(cancel);
}

bool DesignSpace::deadline_exceeded() { return deadline_poll(stats_); }

bool DesignSpace::deadline_poll(SpaceStats& stats) {
  if (!deadline_.active() || !deadline_.expired()) return false;
  if (!options_.deadline_best_effort) {
    throw Cancelled("synthesis deadline exceeded (deadline_ms = " +
                    std::to_string(options_.deadline_ms) + ")");
  }
  stats.deadline_hit = true;
  return true;
}

base::ThreadPool* DesignSpace::pool() {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<base::ThreadPool>(threads_ - 1);
  }
  return pool_.get();
}

namespace {

/// Increment for the lifetime of a recursive call (spans only the
/// depth-0 entry; see expand_depth_/eval_depth_).
struct DepthGuard {
  explicit DepthGuard(int& depth) : depth_(depth) { ++depth_; }
  ~DepthGuard() { --depth_; }
  int& depth_;
};

}  // namespace

SpecNode* DesignSpace::expand(const ComponentSpec& spec) {
  obs::Span span(expand_depth_ == 0 ? "expand" : nullptr, "dtas");
  DepthGuard depth(expand_depth_);
  auto it = memo_.find(spec);
  if (it != memo_.end()) return it->second.get();
  auto owned = std::make_unique<SpecNode>();
  SpecNode* node = owned.get();
  node->spec = spec;
  memo_.emplace(spec, std::move(owned));
  ++stats_.spec_nodes;
  static obs::Counter& spec_node_counter =
      obs::Registry::global().counter("dtas.expand.spec_nodes");
  spec_node_counter.add(1);
  try {
    expand_node(node);
  } catch (...) {
    // Strong exception safety: a half-expanded node must not stay
    // memoized (a retry would trust its expanded/in_progress flags and
    // its partial impl list). Fully expanded descendants stay — they are
    // complete, and nothing can reference *this* node yet: it was
    // in_progress for its whole expansion, so the cyclic-graph check
    // rejected every template that tried.
    memo_.erase(spec);
    --stats_.spec_nodes;
    throw;
  }
  return node;
}

namespace {

/// Run one rule's expand() and compile every produced template into its
/// immutable shared form: distinct child specs (first-occurrence instance
/// order), evaluation schedule, and timing plan. Pure in (rule name,
/// spec) by the Rule::expand contract, so the result is what the global
/// TemplateCache stores. Combinational-cycle rejection is a property of
/// the template and is recorded here; cyclic-*graph* rejection depends on
/// the expansion path and stays in expand_node.
std::vector<CompiledTemplate> compile_rule_templates(
    const Rule& rule, const ComponentSpec& spec, const RuleContext& ctx) {
  std::vector<CompiledTemplate> out;
  for (Module& tmpl : rule.expand(spec, ctx)) {
    CompiledTemplate ct;
    for (const Instance& inst : tmpl.instances()) {
      BRIDGE_CHECK(inst.ref == RefKind::kSpec,
                   "rule " << rule.name() << " emitted a non-spec instance");
      if (std::find(ct.child_specs.begin(), ct.child_specs.end(),
                    inst.spec) == ct.child_specs.end()) {
        ct.child_specs.push_back(inst.spec);
      }
    }
    EvalSchedule topo;
    try {
      topo = DesignSpace::topo_order(tmpl);
    } catch (const Error&) {
      ct.rejected = true;
      ct.tmpl = std::make_shared<const Module>(std::move(tmpl));
      out.push_back(std::move(ct));
      continue;
    }
    std::vector<const ComponentSpec*> child_spec_ptrs;
    child_spec_ptrs.reserve(ct.child_specs.size());
    for (const ComponentSpec& cs : ct.child_specs) {
      child_spec_ptrs.push_back(&cs);
    }
    TimingPlan plan = TimingPlan::compile(tmpl, topo, child_spec_ptrs);
    ct.tmpl = std::make_shared<const Module>(std::move(tmpl));
    ct.topo = std::make_shared<const EvalSchedule>(std::move(topo));
    ct.plan = std::make_shared<const TimingPlan>(std::move(plan));
    out.push_back(std::move(ct));
  }
  return out;
}

}  // namespace

void DesignSpace::expand_node(SpecNode* node) {
  static obs::Counter& impl_node_counter =
      obs::Registry::global().counter("dtas.expand.impl_nodes");
  static obs::Counter& rule_application_counter =
      obs::Registry::global().counter("dtas.expand.rule_applications");
  node->in_progress = true;
  const ComponentSpec& spec = node->spec;

  // Subtree content fingerprint, folded in step with the impls as they are
  // appended (see SpecNode::slice_fp). The leaf/decomp discriminants keep
  // a cell from aliasing a rule application at the same position.
  std::uint64_t slice_fp =
      base::fp_u64(base::kFingerprintSeed, genus::spec_fingerprint(spec));

  // Leaf implementations: functional matches against the data book.
  for (const cells::Cell* cell : library_.matches(spec)) {
    auto impl = std::make_unique<ImplNode>();
    impl->cell = cell;
    node->impls.push_back(std::move(impl));
    slice_fp = base::fp_u64(slice_fp, 1);
    slice_fp = base::fp_u64(slice_fp, cell->fingerprint);
    ++stats_.impl_nodes;
    ++stats_.leaf_impls;
    impl_node_counter.add(1);
  }

  // Decomposition implementations: every applicable rule contributes.
  // Applicability is probed per library (rules routinely ask the data book
  // which granularities exist); the *templates* of an applicable rule are
  // pure in (rule name, spec) and come from the shared cache.
  RuleContext ctx{library_};
  for (const auto& rule : rules_.rules()) {
    // Cooperative checkpoints, one per candidate rule: a deadline stops
    // further rule applications (best-effort) or unwinds (throw mode);
    // an armed fault injector exercises the unwind path.
    if (deadline_exceeded()) break;
    base::FaultInjector::global().probe("dtas.expand.rule");
    if (!rule->applies(spec, ctx)) continue;
    ++stats_.rule_applications;
    rule_application_counter.add(1);

    // `cached` keeps the entry alive while we iterate — under a cache
    // budget, eviction may race with this loop, and the shared_ptr is
    // what pins the entry (see TemplateCache::evict_locked).
    TemplateCache::EntryPtr cached;
    const std::vector<CompiledTemplate>* compiled = nullptr;
    std::vector<CompiledTemplate> local;  // cache-off / uncacheable rules
    if (options_.use_template_cache && rule->cacheable()) {
      // The key always carries the rule's slice fingerprint — that is
      // what makes sharing the process-wide cache across libraries
      // *sound* (a LambdaRule with private behavior gets a private key;
      // two same-named library rules over divergent content can never
      // collide), so it is not subject to the delta_cache_keys toggle:
      // soundness is an invariant, only retarget warm-reuse (extraction
      // / session keying) is optional.
      const std::uint64_t rule_fp = rule->slice_fingerprint();
      TemplateCache& cache = TemplateCache::global();
      cached = cache.find(rule->name(), rule_fp, spec);
      if (cached != nullptr) {
        ++stats_.template_cache_hits;
      } else {
        ++stats_.template_cache_misses;
        cached = cache.insert(rule->name(), rule_fp, spec,
                              compile_rule_templates(*rule, spec, ctx));
      }
      compiled = cached.get();
    } else {
      local = compile_rule_templates(*rule, spec, ctx);
      compiled = &local;
    }

    for (const CompiledTemplate& ct : *compiled) {
      // Recursively expand children; reject templates that reference a
      // specification still being expanded (would make the graph cyclic).
      bool cyclic = false;
      std::vector<SpecNode*> children;
      children.reserve(ct.child_specs.size());
      for (const ComponentSpec& cs : ct.child_specs) {
        SpecNode* child = expand(cs);
        if (child->in_progress) {
          cyclic = true;
          break;
        }
        children.push_back(child);
      }
      if (cyclic || ct.rejected) {
        ++stats_.rejected_templates;
        continue;
      }
      auto impl = std::make_unique<ImplNode>();
      impl->rule_name = rule->name();
      impl->tmpl = ct.tmpl;
      impl->topo = ct.topo;
      impl->plan = ct.plan;
      impl->children = std::move(children);
      slice_fp = base::fp_u64(slice_fp, 2);
      slice_fp = base::fp_str(slice_fp, impl->rule_name);
      slice_fp = base::fp_u64(slice_fp, rule->slice_fingerprint());
      // Children finished expanding inside this loop, so their subtree
      // fingerprints are final here; folding them makes slice_fp cover
      // the entire reachable subspace transitively.
      for (SpecNode* child : impl->children) {
        slice_fp = base::fp_u64(slice_fp, child->slice_fp);
      }
      node->impls.push_back(std::move(impl));
      ++stats_.impl_nodes;
      impl_node_counter.add(1);
    }
  }

  node->slice_fp = slice_fp;
  node->in_progress = false;
  node->expanded = true;
  if (node->impls.empty()) ++stats_.dead_specs;
}

namespace {

/// Per-instance connection view with resolved port directions, computed
/// once (instance_ports + find_port are too hot to call per edge).
struct InstView {
  bool sequential = false;
  // (port name, conn, width) split by direction.
  std::vector<std::tuple<base::Symbol, PortConn, int>> ins;
  std::vector<std::tuple<base::Symbol, PortConn, int>> outs;
};

std::vector<InstView> make_views(const Module& tmpl) {
  std::vector<InstView> views;
  views.reserve(tmpl.instances().size());
  std::vector<genus::PortSpec> storage;
  for (const Instance& inst : tmpl.instances()) {
    InstView v;
    v.sequential = genus::kind_is_sequential(inst.spec.kind);
    const auto& ports = Module::instance_ports_ref(inst, storage);
    for (const auto& [port_name, conn] : inst.connections) {
      const genus::PortSpec& p = genus::find_port(ports, port_name);
      if (p.dir == genus::PortDir::kIn) {
        v.ins.emplace_back(port_name, conn, p.width);
      } else {
        v.outs.emplace_back(port_name, conn, p.width);
      }
    }
    views.push_back(std::move(v));
  }
  return views;
}

}  // namespace

EvalSchedule DesignSpace::topo_order(const Module& tmpl) {
  const auto& insts = tmpl.instances();
  const int n = static_cast<int>(insts.size());
  const auto views = make_views(tmpl);

  // Units: one per (combinational instance, connected output port).
  std::vector<EvalStep> units;
  std::vector<std::vector<int>> unit_of_inst(n);
  for (int i = 0; i < n; ++i) {
    if (views[i].sequential) continue;
    for (const auto& [port, conn, width] : views[i].outs) {
      (void)conn;
      (void)width;
      unit_of_inst[i].push_back(static_cast<int>(units.size()));
      units.push_back(EvalStep{i, port});
    }
  }

  // Driver unit per net bit (-1: external input / sequential / constant).
  std::vector<std::vector<int>> bit_driver(tmpl.nets().size());
  for (size_t nn = 0; nn < tmpl.nets().size(); ++nn) {
    bit_driver[nn].assign(tmpl.nets()[nn].width, -1);
  }
  for (size_t u = 0; u < units.size(); ++u) {
    const EvalStep& step = units[u];
    for (const auto& [port, conn, width] : views[step.instance].outs) {
      if (port != step.port || conn.kind != PortConn::Kind::kNet) continue;
      for (int b = 0; b < width; ++b) {
        bit_driver[conn.net][conn.lo + b] = static_cast<int>(u);
      }
    }
  }

  std::vector<std::vector<int>> succs(units.size());
  std::vector<int> indegree(units.size(), 0);
  for (size_t u = 0; u < units.size(); ++u) {
    const EvalStep& step = units[u];
    const Instance& inst = insts[step.instance];
    std::vector<int> preds;
    for (const auto& [in_port, conn, width] : views[step.instance].ins) {
      if (conn.kind != PortConn::Kind::kNet) continue;
      if (!genus::output_depends_on(inst.spec, step.port, in_port)) continue;
      const int span = conn.replicate ? 1 : width;
      for (int b = 0; b < span; ++b) {
        int d = bit_driver[conn.net][conn.lo + b];
        if (d >= 0 && d != static_cast<int>(u)) preds.push_back(d);
      }
    }
    std::sort(preds.begin(), preds.end());
    preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
    for (int p : preds) {
      succs[p].push_back(static_cast<int>(u));
      ++indegree[u];
    }
  }

  EvalSchedule order;
  std::vector<int> ready;
  for (size_t u = 0; u < units.size(); ++u) {
    if (indegree[u] == 0) ready.push_back(static_cast<int>(u));
  }
  while (!ready.empty()) {
    int u = ready.back();
    ready.pop_back();
    order.push_back(units[u]);
    for (int s : succs[u]) {
      if (--indegree[s] == 0) ready.push_back(s);
    }
  }
  if (order.size() != units.size()) {
    throw Error("combinational cycle in template " + tmpl.name());
  }
  return order;
}

Metric DesignSpace::eval_template(
    const Module& tmpl, const EvalSchedule& topo,
    const std::function<Metric(const ComponentSpec&)>& child_metric) {
  const auto& insts = tmpl.instances();
  const auto views = make_views(tmpl);
  Metric total;
  double worst_path = 0.0;

  // Arrival time per net bit.
  std::vector<std::vector<double>> arrival(tmpl.nets().size());
  for (size_t nn = 0; nn < tmpl.nets().size(); ++nn) {
    arrival[nn].assign(tmpl.nets()[nn].width, 0.0);
  }

  auto write_port = [&](int i, base::Symbol port, double t) {
    for (const auto& [pname, conn, width] : views[i].outs) {
      if (pname != port || conn.kind != PortConn::Kind::kNet) continue;
      for (int b = 0; b < width; ++b) {
        double& a = arrival[conn.net][conn.lo + b];
        a = std::max(a, t);
      }
    }
  };
  auto in_arrival = [&](int i, const base::Symbol* out_port) {
    double a = 0.0;
    for (const auto& [in_port, conn, width] : views[i].ins) {
      if (conn.kind != PortConn::Kind::kNet) continue;
      if (out_port != nullptr &&
          !genus::output_depends_on(insts[i].spec, *out_port, in_port)) {
        continue;
      }
      const int span = conn.replicate ? 1 : width;
      for (int b = 0; b < span; ++b) {
        a = std::max(a, arrival[conn.net][conn.lo + b]);
      }
    }
    return a;
  };

  // Area, and clock-to-q launch for sequential instances.
  std::vector<int> seq_insts;
  std::vector<double> inst_delay(insts.size(), 0.0);
  for (int i = 0; i < static_cast<int>(insts.size()); ++i) {
    Metric m = child_metric(insts[i].spec);
    total.area += m.area;
    inst_delay[i] = m.delay;
    if (views[i].sequential) {
      seq_insts.push_back(i);
      for (const auto& [pname, conn, width] : views[i].outs) {
        (void)conn;
        (void)width;
        write_port(i, pname, m.delay);
      }
      worst_path = std::max(worst_path, m.delay);
    }
  }
  for (const EvalStep& step : topo) {
    double t = in_arrival(step.instance, &step.port) +
               inst_delay[step.instance];
    write_port(step.instance, step.port, t);
    worst_path = std::max(worst_path, t);
  }
  // Paths terminating at sequential inputs (register setup).
  for (int i : seq_insts) {
    worst_path = std::max(worst_path, in_arrival(i, nullptr));
  }
  total.delay = worst_path;
  return total;
}

std::vector<Alternative> DesignSpace::filter_alternatives(
    std::vector<Alternative> candidates) const {
  // Deduplicate identical metrics (keep the first). stable_sort so that
  // ties between equal-metric candidates resolve to enumeration order:
  // bound-and-prune never discards the first-enumerated candidate of an
  // equal-metric group (the margins are strict), so the pruned and
  // unpruned sweeps keep the same representative.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Alternative& a, const Alternative& b) {
                     if (std::abs(a.metric.area - b.metric.area) > kEps) {
                       return a.metric.area < b.metric.area;
                     }
                     return a.metric.delay < b.metric.delay;
                   });
  std::vector<Alternative> kept;
  switch (options_.filter) {
    case FilterKind::kPareto: {
      // Favorable-tradeoff filter: strictly Pareto, and additional area is
      // only worth paying for a significant delay gain.
      double best_delay = std::numeric_limits<double>::infinity();
      for (Alternative& alt : candidates) {
        const double required =
            kept.empty() ? best_delay
                         : best_delay * (1.0 - options_.min_delay_gain);
        if (alt.metric.delay < required - kEps) {
          best_delay = alt.metric.delay;
          kept.push_back(std::move(alt));
        }
      }
      break;
    }
    case FilterKind::kAreaOnly:
      if (!candidates.empty()) kept.push_back(std::move(candidates.front()));
      break;
    case FilterKind::kDelayOnly: {
      if (!candidates.empty()) {
        auto it = std::min_element(candidates.begin(), candidates.end(),
                                   [](const Alternative& a,
                                      const Alternative& b) {
                                     return a.metric.delay < b.metric.delay;
                                   });
        kept.push_back(std::move(*it));
      }
      break;
    }
    case FilterKind::kNone: {
      // Drop exact duplicates only.
      for (Alternative& alt : candidates) {
        if (kept.empty() ||
            std::abs(kept.back().metric.area - alt.metric.area) > kEps ||
            std::abs(kept.back().metric.delay - alt.metric.delay) > kEps) {
          kept.push_back(std::move(alt));
        }
      }
      break;
    }
  }
  if (static_cast<int>(kept.size()) > options_.max_alternatives_per_node) {
    kept.resize(options_.max_alternatives_per_node);
  }
  return kept;
}

void DesignSpace::trim_limits(std::vector<int>& limit, long cap) {
  auto product = [&]() {
    double p = 1;
    for (int l : limit) p *= l;
    return p;
  };
  while (product() > static_cast<double>(cap)) {
    auto it = std::max_element(limit.begin(), limit.end());
    if (*it <= 1) break;
    --*it;
  }
}

namespace {

/// Cross-shard exchange of the evaluated-candidate Pareto front: the
/// shared best-bound parallel shards use to tighten their private
/// bound-and-prune fronts. Shards exchange periodically (not per
/// combination); the atomic stamp lets a shard skip the lock entirely
/// when neither side has learned anything new since its last visit.
/// Sharing is a pure pruning accelerator — correctness and determinism
/// never depend on which points a shard happens to have seen, because a
/// candidate strictly dominated with margin by *any* evaluated candidate
/// of the node can survive no dominance-respecting filter.
class BoundExchange {
 public:
  explicit BoundExchange(const ParetoFront& seed) : front_(seed) {}

  std::uint64_t stamp() const {
    return stamp_.load(std::memory_order_relaxed);
  }

  /// Merge `local` into the shared front, refresh `local` to the union,
  /// and return the stamp of the refreshed state.
  std::uint64_t exchange(ParetoFront& local) {
    base::LockGuard lock(mu_);
    if (front_.merge(local)) {
      stamp_.fetch_add(1, std::memory_order_relaxed);
    }
    local = front_;
    return stamp_.load(std::memory_order_relaxed);
  }

 private:
  base::Mutex mu_;
  ParetoFront front_ BRIDGE_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> stamp_{0};
};

/// Combinations between bound exchanges of a parallel shard.
constexpr long kBoundExchangePeriod = 1024;

struct OdometerCounters {
  long evaluated = 0;
  long pruned = 0;
};

/// Evaluate the contiguous combination index range [begin, end) of the
/// odometer — the body of both the serial path (one range covering
/// everything, shared == nullptr) and each parallel shard. Index i
/// decodes little-endian into child choices: digit c is
/// (i / prod(limit[0..c))) % limit[c], matching the serial odometer's
/// increment-with-carry order, so concatenating shard outputs in shard
/// order reproduces the serial candidate sequence exactly.
/// What a shard does when the armed deadline expires mid-range: nothing
/// (no deadline), stop and keep the candidates gathered so far
/// (best-effort — the flag records that the enumeration is partial), or
/// throw Cancelled (captured by the pool, rethrown after the batch
/// drains).
struct DeadlineHooks {
  const base::Deadline* deadline = nullptr;  // null = unbounded
  bool best_effort = false;
  std::atomic<bool>* hit = nullptr;  // set by best-effort expiry
};

void run_odometer_range(const TimingPlan& plan,
                        const std::vector<SpecNode*>& children,
                        const std::vector<int>& limit, int impl_index,
                        long begin, long end, bool prune, ParetoFront& front,
                        BoundExchange* shared, std::uint64_t shared_stamp,
                        const DeadlineHooks& hooks, EvalScratch& scratch,
                        std::vector<Alternative>& candidates,
                        OdometerCounters& counters) {
  const int n = static_cast<int>(children.size());
  scratch.child_area.resize(n);
  scratch.child_delay.resize(n);
  std::vector<int> choice(n, 0);
  long rest = begin;
  for (int c = 0; c < n; ++c) {
    choice[c] = static_cast<int>(rest % limit[c]);
    rest /= limit[c];
  }
  bool local_news = false;  // front points other shards haven't seen
  for (long idx = begin; idx < end; ++idx) {
    if ((idx - begin) % kBoundExchangePeriod == 0) {
      // Per-chunk checkpoint (never per combination): deadline poll and
      // fault probe share the bound-exchange cadence, so the inner loop
      // stays one clock read per 1024 combinations at worst.
      base::FaultInjector::global().probe("dtas.evaluate.plan");
      if (hooks.deadline != nullptr && hooks.deadline->expired()) {
        if (!hooks.best_effort) {
          throw Cancelled("synthesis deadline exceeded in odometer");
        }
        hooks.hit->store(true, std::memory_order_relaxed);
        return;  // keep the candidates evaluated so far
      }
    }
    if (shared != nullptr && idx != begin &&
        (idx - begin) % kBoundExchangePeriod == 0 &&
        (local_news || shared->stamp() != shared_stamp)) {
      shared_stamp = shared->exchange(front);
      local_news = false;
    }
    for (int c = 0; c < n; ++c) {
      const Metric& m = children[c]->alts[choice[c]].metric;
      scratch.child_area[c] = m.area;
      scratch.child_delay[c] = m.delay;
    }
    const double area = plan.area(scratch.child_area.data());
    if (prune &&
        front.dominates_bound(
            area, plan.delay_lower_bound(scratch.child_delay.data()))) {
      ++counters.pruned;
    } else {
      const double delay = plan.delay(scratch.child_delay.data(), scratch);
      if (prune && front.dominates_bound(area, delay)) {
        // Exact metrics dominated with margin: the candidate can never be
        // kept, so don't store it.
        ++counters.pruned;
      } else {
        Alternative alt;
        alt.impl_index = impl_index;
        alt.child_alt = choice;
        alt.metric = Metric{area, delay};
        ++counters.evaluated;
        local_news = front.add(area, delay) || local_news;
        candidates.push_back(std::move(alt));
      }
    }
    int c = 0;
    while (c < n && ++choice[c] >= limit[c]) {
      choice[c] = 0;
      ++c;
    }
  }
}

}  // namespace

void DesignSpace::run_plan_odometer(const TimingPlan& plan,
                                    const std::vector<SpecNode*>& children,
                                    const std::vector<int>& limit,
                                    int impl_index, ParetoFront& front,
                                    std::vector<Alternative>& candidates) {
  run_plan_odometer(plan, children, limit, impl_index, front, candidates,
                    scratch_, stats_);
}

void DesignSpace::run_plan_odometer(const TimingPlan& plan,
                                    const std::vector<SpecNode*>& children,
                                    const std::vector<int>& limit,
                                    int impl_index, ParetoFront& front,
                                    std::vector<Alternative>& candidates,
                                    EvalScratch& scratch, SpaceStats& stats) {
  // Compiled path: per-child metric arrays feed the timing plan; each
  // combination is pure array arithmetic, and bound-and-prune skips delay
  // propagation — or discards the combination unstored — when an
  // evaluated candidate already dominates it.
  //
  // Registry mirrors are added once per odometer run (bulk deltas), never
  // per combination — the inner loop stays registry-free.
  static obs::Counter& evaluated_counter =
      obs::Registry::global().counter("dtas.evaluate.combinations.evaluated");
  static obs::Counter& pruned_counter =
      obs::Registry::global().counter("dtas.evaluate.combinations.pruned");
  static obs::Counter& parallel_runs_counter =
      obs::Registry::global().counter("dtas.evaluate.odometer.parallel_runs");
  static obs::Counter& shards_counter =
      obs::Registry::global().counter("dtas.evaluate.odometer.shards");
  obs::Span span("odometer", "dtas");
  const bool prune = prune_enabled();
  long total = 1;
  for (int l : limit) total *= l;  // callers capped the product (trim_limits)

  long num_shards = 1;
  const long min_shard = std::max<long>(1, options_.min_combinations_per_shard);
  if (threads_ > 1 && total >= 2 * min_shard) {
    num_shards =
        std::min(static_cast<long>(threads_) *
                     std::max(1, options_.shards_per_thread),
                 total / min_shard);
  }

  DeadlineHooks hooks;
  std::atomic<bool> deadline_hit{false};
  if (deadline_.active()) {
    hooks.deadline = &deadline_;
    hooks.best_effort = options_.deadline_best_effort;
    hooks.hit = &deadline_hit;
  }

  if (num_shards <= 1) {
    OdometerCounters counters;
    run_odometer_range(plan, children, limit, impl_index, 0, total, prune,
                       front, nullptr, 0, hooks, scratch, candidates,
                       counters);
    stats.combinations_evaluated += counters.evaluated;
    stats.combinations_pruned += counters.pruned;
    if (deadline_hit.load(std::memory_order_relaxed)) {
      stats.deadline_hit = true;
    }
    evaluated_counter.add(counters.evaluated);
    pruned_counter.add(counters.pruned);
    return;
  }

  // Sharded run: contiguous index ranges in enumeration order. Every shard
  // evaluates against its executing thread's EvalScratch and a private
  // ParetoFront (seeded from the candidates evaluated so far and
  // refreshed through the shared bound), and stores into its own slot; no
  // odometer state is ever written concurrently. Merging slot-by-slot in
  // shard order makes the surviving candidate sequence exactly the serial
  // one, so the filtered front — stable sort, tie rules and all — is
  // bit-identical at every thread count.
  BoundExchange shared(front);
  struct Shard {
    std::vector<Alternative> candidates;
    OdometerCounters counters;
  };
  std::vector<Shard> shards(static_cast<size_t>(num_shards));
  // One scratch per pool thread slot (caller + workers), reused across
  // the shards that thread happens to claim.
  std::vector<EvalScratch> scratches(static_cast<size_t>(threads_));
  const long chunk = (total + num_shards - 1) / num_shards;
  pool()->run(static_cast<int>(num_shards), [&](int s, int slot) {
    const long begin = s * chunk;
    const long end = std::min(total, begin + chunk);
    if (begin >= end) return;
    ParetoFront local;
    const std::uint64_t stamp = shared.exchange(local);
    run_odometer_range(plan, children, limit, impl_index, begin, end, prune,
                       local, prune ? &shared : nullptr, stamp, hooks,
                       scratches[slot], shards[s].candidates,
                       shards[s].counters);
  });
  if (deadline_hit.load(std::memory_order_relaxed)) {
    // Best-effort expiry inside one or more shards: the merged candidate
    // list is a prefix-of-each-shard, still deterministic to merge, but
    // the enumeration is partial — record it.
    stats.deadline_hit = true;
  }
  long evaluated = 0;
  long pruned = 0;
  for (Shard& s : shards) {
    for (Alternative& alt : s.candidates) {
      front.add(alt.metric.area, alt.metric.delay);
      candidates.push_back(std::move(alt));
    }
    evaluated += s.counters.evaluated;
    pruned += s.counters.pruned;
  }
  stats.combinations_evaluated += evaluated;
  stats.combinations_pruned += pruned;
  evaluated_counter.add(evaluated);
  pruned_counter.add(pruned);
  parallel_runs_counter.add(1);
  shards_counter.add(num_shards);
  ++stats.parallel_odometers;
  stats.odometer_shards += num_shards;
}

void DesignSpace::run_reference_odometer(const Module& tmpl,
                                         const EvalSchedule& topo,
                                         const std::vector<SpecNode*>& children,
                                         const std::vector<int>& limit,
                                         int impl_index,
                                         std::vector<Alternative>& candidates) {
  run_reference_odometer(tmpl, topo, children, limit, impl_index, candidates,
                         stats_);
}

void DesignSpace::run_reference_odometer(const Module& tmpl,
                                         const EvalSchedule& topo,
                                         const std::vector<SpecNode*>& children,
                                         const std::vector<int>& limit,
                                         int impl_index,
                                         std::vector<Alternative>& candidates,
                                         SpaceStats& stats) {
  // Reference path: the original functional evaluator, kept verbatim for
  // equivalence testing and as the bench baseline.
  static obs::Counter& evaluated_counter =
      obs::Registry::global().counter("dtas.evaluate.combinations.evaluated");
  obs::Span span("odometer", "dtas");
  long evaluated = 0;
  long seen = 0;
  const int n = static_cast<int>(children.size());
  std::vector<int> choice(n, 0);
  for (;;) {
    if (seen++ % kBoundExchangePeriod == 0) {
      // Same per-chunk checkpoint cadence as the compiled path (the
      // reference odometer is always serial per node, so the deadline
      // helper — which throws or records a best-effort hit in `stats` —
      // applies directly).
      base::FaultInjector::global().probe("dtas.evaluate.plan");
      if (deadline_poll(stats)) break;
    }
    auto metric_of = [&](const ComponentSpec& spec) -> Metric {
      for (int c = 0; c < n; ++c) {
        if (children[c]->spec == spec) {
          return children[c]->alts[choice[c]].metric;
        }
      }
      throw Error("template child spec not found: " + spec.key());
    };
    Alternative alt;
    alt.impl_index = impl_index;
    alt.child_alt = choice;
    alt.metric = eval_template(tmpl, topo, metric_of);
    ++stats.combinations_evaluated;
    ++evaluated;
    candidates.push_back(std::move(alt));

    int c = 0;
    while (c < n && ++choice[c] >= limit[c]) {
      choice[c] = 0;
      ++c;
    }
    if (c == n) break;
  }
  evaluated_counter.add(evaluated);
}

void DesignSpace::evaluate(SpecNode* node) {
  obs::Span span(eval_depth_ == 0 ? "evaluate" : nullptr, "dtas");
  DepthGuard depth(eval_depth_);
  if (node->evaluated) return;
  if (options_.node_parallel && threads_ > 1 && eval_depth_ == 1) {
    // Top-level entry with a pool available: levelize and fan out. The
    // recursive serial path below stays the reference (and the only path
    // at threads == 1 or with the toggle off).
    evaluate_parallel(node);
    return;
  }
  node->evaluated = true;  // set first: graph is acyclic by construction
  try {
    evaluate_impls(node);
  } catch (...) {
    // Strong exception safety: without the reset, a retry would see
    // evaluated == true over an empty alternative list and conclude the
    // node is unrealizable. Fully evaluated children keep their alts
    // (they are complete); this node redoes its own odometers only.
    node->evaluated = false;
    node->alts.clear();
    throw;
  }
}

void DesignSpace::evaluate_parallel(SpecNode* root) {
  static obs::Counter& levels_counter =
      obs::Registry::global().counter("dtas.evaluate.node_parallel.levels");
  static obs::Counter& nodes_counter =
      obs::Registry::global().counter("dtas.evaluate.node_parallel.nodes");
  // Layer the un-evaluated sub-DAG reachable from `root`:
  // level(n) = 1 + max level over the un-evaluated children of its
  // decomposition impls (0 when every child is already evaluated). Each
  // layer is an antichain of the evaluation dependency order — its nodes
  // share no path — so once all lower layers are done, a layer's nodes
  // evaluate independently. Nodes enter their layer in DFS discovery
  // order, which is the order the serial recursion would first reach
  // them; per-node evaluation is exactly the serial code on private
  // state, so the resulting alts are bit-identical to the serial path.
  std::unordered_map<const SpecNode*, int> level;
  std::vector<std::vector<SpecNode*>> levels;
  std::function<int(SpecNode*)> layer = [&](SpecNode* n) -> int {
    if (n->evaluated) return -1;
    auto it = level.find(n);
    if (it != level.end()) return it->second;
    int lv = 0;
    for (const auto& impl : n->impls) {
      if (impl->is_leaf()) continue;
      for (SpecNode* child : impl->children) {
        lv = std::max(lv, layer(child) + 1);
      }
    }
    level.emplace(n, lv);
    if (static_cast<int>(levels.size()) <= lv) levels.resize(lv + 1);
    levels[static_cast<std::size_t>(lv)].push_back(n);
    return lv;
  };
  layer(root);

  std::vector<EvalScratch> scratches(static_cast<std::size_t>(threads_));
  for (std::vector<SpecNode*>& nodes : levels) {
    if (nodes.size() == 1) {
      // Single-node antichain (typically the root, whose odometers carry
      // most of the work): run on the caller so run_plan_odometer can
      // still shard it across the pool.
      SpecNode* n = nodes.front();
      n->evaluated = true;
      try {
        evaluate_impls(n, scratch_, stats_, /*children_preevaluated=*/true);
      } catch (...) {
        n->evaluated = false;
        n->alts.clear();
        throw;
      }
      continue;
    }
    // Fork-join batch over the antichain. Each node writes only its own
    // alts/flags, evaluates into the executing thread's scratch, and
    // accumulates into a private SpaceStats merged after the barrier in
    // node order (the sums are order-independent; merging in node order
    // just keeps it obviously deterministic). A throwing node resets
    // itself — the same strong exception safety as serial evaluate() —
    // and the pool rethrows the first failure once the batch drains.
    std::vector<SpaceStats> local(nodes.size());
    pool()->run(static_cast<int>(nodes.size()), [&](int t, int slot) {
      SpecNode* n = nodes[static_cast<std::size_t>(t)];
      n->evaluated = true;
      try {
        evaluate_impls(n, scratches[static_cast<std::size_t>(slot)],
                       local[static_cast<std::size_t>(t)],
                       /*children_preevaluated=*/true);
      } catch (...) {
        n->evaluated = false;
        n->alts.clear();
        throw;
      }
    });
    for (const SpaceStats& s : local) {
      stats_.combinations_evaluated += s.combinations_evaluated;
      stats_.combinations_pruned += s.combinations_pruned;
      stats_.parallel_odometers += s.parallel_odometers;
      stats_.odometer_shards += s.odometer_shards;
      stats_.deadline_hit = stats_.deadline_hit || s.deadline_hit;
    }
    ++stats_.node_parallel_levels;
    stats_.node_parallel_nodes += static_cast<long>(nodes.size());
    levels_counter.add(1);
    nodes_counter.add(static_cast<long>(nodes.size()));
  }
}

void DesignSpace::evaluate_impls(SpecNode* node, EvalScratch& scratch,
                                 SpaceStats& stats,
                                 bool children_preevaluated) {
  // Evaluated candidates of this node, across all implementations — the
  // prune front a combination must beat to be worth timing.
  ParetoFront front;

  std::vector<Alternative> candidates;
  for (size_t ii = 0; ii < node->impls.size(); ++ii) {
    // Best-effort deadline expiry stops further implementations; the
    // candidates gathered so far still filter into a valid (partial)
    // alternative list.
    if (deadline_poll(stats)) break;
    ImplNode* impl = node->impls[ii].get();
    if (impl->is_leaf()) {
      Alternative alt;
      alt.impl_index = static_cast<int>(ii);
      alt.metric = Metric{impl->cell->area, impl->cell->delay_ns};
      front.add(alt.metric.area, alt.metric.delay);
      candidates.push_back(std::move(alt));
      continue;
    }
    // Evaluate children first. In node-parallel batches the levelization
    // already evaluated every child in an earlier layer (this may run on
    // a worker thread, where the recursive path's member state is off
    // limits) — assert that instead of recursing.
    bool viable = true;
    for (SpecNode* child : impl->children) {
      if (children_preevaluated) {
        BRIDGE_CHECK(child->evaluated,
                     "node-parallel level order violated for "
                         << child->spec.key());
      } else {
        evaluate(child);
      }
      if (child->alts.empty()) {
        viable = false;
        break;
      }
    }
    if (!viable) {
      impl->dead = true;
      continue;
    }
    // Bound the combination count per implementation: shrink the number of
    // alternatives considered per child until the product fits.
    const int nchildren = static_cast<int>(impl->children.size());
    std::vector<int> limit(nchildren);
    for (int c = 0; c < nchildren; ++c) {
      limit[c] = static_cast<int>(impl->children[c]->alts.size());
    }
    trim_limits(limit, options_.max_combinations_per_impl);

    // Odometer over child alternative choices (uniform-implementation
    // constraint: one choice per *distinct* child spec).
    if (options_.use_compiled_plan) {
      run_plan_odometer(*impl->plan, impl->children, limit,
                        static_cast<int>(ii), front, candidates, scratch,
                        stats);
    } else {
      run_reference_odometer(*impl->tmpl, *impl->topo, impl->children, limit,
                             static_cast<int>(ii), candidates, stats);
    }
  }
  node->alts = filter_alternatives(std::move(candidates));
}

double DesignSpace::count_constrained(SpecNode* node) {
  if (node->count_constrained >= 0) return node->count_constrained;
  node->count_constrained = 0;  // guards (graph is acyclic)
  double total = 0;
  for (const auto& impl : node->impls) {
    if (impl->is_leaf()) {
      total += 1;
      continue;
    }
    double p = 1;
    for (SpecNode* child : impl->children) {
      p *= count_constrained(child);
    }
    total += p;
  }
  node->count_constrained = total;
  return total;
}

double DesignSpace::count_unconstrained(SpecNode* node) {
  if (node->count_unconstrained >= 0) return node->count_unconstrained;
  node->count_unconstrained = 0;
  double total = 0;
  for (const auto& impl : node->impls) {
    if (impl->is_leaf()) {
      total += 1;
      continue;
    }
    double p = 1;
    for (const Instance& inst : impl->tmpl->instances()) {
      for (SpecNode* child : impl->children) {
        if (child->spec == inst.spec) {
          p *= count_unconstrained(child);
          break;
        }
      }
    }
    total += p;
  }
  node->count_unconstrained = total;
  return total;
}

}  // namespace bridge::dtas
