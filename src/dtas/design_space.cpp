#include "dtas/design_space.h"

#include <algorithm>
#include <cmath>

#include "base/diag.h"

namespace bridge::dtas {

using genus::ComponentSpec;
using netlist::Instance;
using netlist::Module;
using netlist::NetIndex;
using netlist::PortConn;
using netlist::RefKind;

namespace {
constexpr double kEps = 1e-9;
}

bool dominates(const Metric& a, const Metric& b) {
  return a.area <= b.area + kEps && a.delay <= b.delay + kEps &&
         (a.area < b.area - kEps || a.delay < b.delay - kEps);
}

DesignSpace::DesignSpace(const RuleBase& rules,
                         const cells::CellLibrary& library,
                         SpaceOptions options)
    : rules_(rules), library_(library), options_(options) {}

SpecNode* DesignSpace::expand(const ComponentSpec& spec) {
  auto it = memo_.find(spec);
  if (it != memo_.end()) return it->second.get();
  auto owned = std::make_unique<SpecNode>();
  SpecNode* node = owned.get();
  node->spec = spec;
  memo_.emplace(spec, std::move(owned));
  ++stats_.spec_nodes;
  expand_node(node);
  return node;
}

void DesignSpace::expand_node(SpecNode* node) {
  node->in_progress = true;
  const ComponentSpec& spec = node->spec;

  // Leaf implementations: functional matches against the data book.
  for (const cells::Cell* cell : library_.matches(spec)) {
    auto impl = std::make_unique<ImplNode>();
    impl->cell = cell;
    node->impls.push_back(std::move(impl));
    ++stats_.impl_nodes;
    ++stats_.leaf_impls;
  }

  // Decomposition implementations: every applicable rule contributes.
  RuleContext ctx{library_};
  for (const auto& rule : rules_.rules()) {
    if (!rule->applies(spec, ctx)) continue;
    ++stats_.rule_applications;
    for (Module& tmpl : rule->expand(spec, ctx)) {
      auto impl = std::make_unique<ImplNode>();
      impl->rule_name = rule->name();

      // Recursively expand children; reject templates that reference a
      // specification still being expanded (would make the graph cyclic).
      bool cyclic = false;
      std::vector<SpecNode*> children;
      for (const Instance& inst : tmpl.instances()) {
        BRIDGE_CHECK(inst.ref == RefKind::kSpec,
                     "rule " << rule->name()
                             << " emitted a non-spec instance");
        SpecNode* child = expand(inst.spec);
        if (child->in_progress) {
          cyclic = true;
          break;
        }
        if (std::find(children.begin(), children.end(), child) ==
            children.end()) {
          children.push_back(child);
        }
      }
      if (cyclic) {
        ++stats_.rejected_templates;
        continue;
      }
      EvalSchedule topo;
      try {
        topo = topo_order(tmpl);
      } catch (const Error&) {
        ++stats_.rejected_templates;
        continue;
      }
      impl->tmpl = std::move(tmpl);
      impl->children = std::move(children);
      impl->topo = std::move(topo);
      node->impls.push_back(std::move(impl));
      ++stats_.impl_nodes;
    }
  }

  node->in_progress = false;
  node->expanded = true;
  if (node->impls.empty()) ++stats_.dead_specs;
}

namespace {

/// Per-instance connection view with resolved port directions, computed
/// once (instance_ports + find_port are too hot to call per edge).
struct InstView {
  bool sequential = false;
  // (port name, conn, width) split by direction.
  std::vector<std::tuple<std::string, PortConn, int>> ins;
  std::vector<std::tuple<std::string, PortConn, int>> outs;
};

std::vector<InstView> make_views(const Module& tmpl) {
  std::vector<InstView> views;
  views.reserve(tmpl.instances().size());
  for (const Instance& inst : tmpl.instances()) {
    InstView v;
    v.sequential = genus::kind_is_sequential(inst.spec.kind);
    const auto ports = Module::instance_ports(inst);
    for (const auto& [port_name, conn] : inst.connections) {
      const genus::PortSpec& p = genus::find_port(ports, port_name);
      if (p.dir == genus::PortDir::kIn) {
        v.ins.emplace_back(port_name, conn, p.width);
      } else {
        v.outs.emplace_back(port_name, conn, p.width);
      }
    }
    views.push_back(std::move(v));
  }
  return views;
}

}  // namespace

EvalSchedule DesignSpace::topo_order(const Module& tmpl) {
  const auto& insts = tmpl.instances();
  const int n = static_cast<int>(insts.size());
  const auto views = make_views(tmpl);

  // Units: one per (combinational instance, connected output port).
  std::vector<EvalStep> units;
  std::vector<std::vector<int>> unit_of_inst(n);
  for (int i = 0; i < n; ++i) {
    if (views[i].sequential) continue;
    for (const auto& [port, conn, width] : views[i].outs) {
      (void)conn;
      (void)width;
      unit_of_inst[i].push_back(static_cast<int>(units.size()));
      units.push_back(EvalStep{i, port});
    }
  }

  // Driver unit per net bit (-1: external input / sequential / constant).
  std::vector<std::vector<int>> bit_driver(tmpl.nets().size());
  for (size_t nn = 0; nn < tmpl.nets().size(); ++nn) {
    bit_driver[nn].assign(tmpl.nets()[nn].width, -1);
  }
  for (size_t u = 0; u < units.size(); ++u) {
    const EvalStep& step = units[u];
    for (const auto& [port, conn, width] : views[step.instance].outs) {
      if (port != step.port || conn.kind != PortConn::Kind::kNet) continue;
      for (int b = 0; b < width; ++b) {
        bit_driver[conn.net][conn.lo + b] = static_cast<int>(u);
      }
    }
  }

  std::vector<std::vector<int>> succs(units.size());
  std::vector<int> indegree(units.size(), 0);
  for (size_t u = 0; u < units.size(); ++u) {
    const EvalStep& step = units[u];
    const Instance& inst = insts[step.instance];
    std::vector<int> preds;
    for (const auto& [in_port, conn, width] : views[step.instance].ins) {
      if (conn.kind != PortConn::Kind::kNet) continue;
      if (!genus::output_depends_on(inst.spec, step.port, in_port)) continue;
      const int span = conn.replicate ? 1 : width;
      for (int b = 0; b < span; ++b) {
        int d = bit_driver[conn.net][conn.lo + b];
        if (d >= 0 && d != static_cast<int>(u)) preds.push_back(d);
      }
    }
    std::sort(preds.begin(), preds.end());
    preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
    for (int p : preds) {
      succs[p].push_back(static_cast<int>(u));
      ++indegree[u];
    }
  }

  EvalSchedule order;
  std::vector<int> ready;
  for (size_t u = 0; u < units.size(); ++u) {
    if (indegree[u] == 0) ready.push_back(static_cast<int>(u));
  }
  while (!ready.empty()) {
    int u = ready.back();
    ready.pop_back();
    order.push_back(units[u]);
    for (int s : succs[u]) {
      if (--indegree[s] == 0) ready.push_back(s);
    }
  }
  if (order.size() != units.size()) {
    throw Error("combinational cycle in template " + tmpl.name());
  }
  return order;
}

Metric DesignSpace::eval_template(
    const Module& tmpl, const EvalSchedule& topo,
    const std::function<Metric(const ComponentSpec&)>& child_metric) {
  const auto& insts = tmpl.instances();
  const auto views = make_views(tmpl);
  Metric total;
  double worst_path = 0.0;

  // Arrival time per net bit.
  std::vector<std::vector<double>> arrival(tmpl.nets().size());
  for (size_t nn = 0; nn < tmpl.nets().size(); ++nn) {
    arrival[nn].assign(tmpl.nets()[nn].width, 0.0);
  }

  auto write_port = [&](int i, const std::string& port, double t) {
    for (const auto& [pname, conn, width] : views[i].outs) {
      if (pname != port || conn.kind != PortConn::Kind::kNet) continue;
      for (int b = 0; b < width; ++b) {
        double& a = arrival[conn.net][conn.lo + b];
        a = std::max(a, t);
      }
    }
  };
  auto in_arrival = [&](int i, const std::string* out_port) {
    double a = 0.0;
    for (const auto& [in_port, conn, width] : views[i].ins) {
      if (conn.kind != PortConn::Kind::kNet) continue;
      if (out_port != nullptr &&
          !genus::output_depends_on(insts[i].spec, *out_port, in_port)) {
        continue;
      }
      const int span = conn.replicate ? 1 : width;
      for (int b = 0; b < span; ++b) {
        a = std::max(a, arrival[conn.net][conn.lo + b]);
      }
    }
    return a;
  };

  // Area, and clock-to-q launch for sequential instances.
  std::vector<int> seq_insts;
  std::vector<double> inst_delay(insts.size(), 0.0);
  for (int i = 0; i < static_cast<int>(insts.size()); ++i) {
    Metric m = child_metric(insts[i].spec);
    total.area += m.area;
    inst_delay[i] = m.delay;
    if (views[i].sequential) {
      seq_insts.push_back(i);
      for (const auto& [pname, conn, width] : views[i].outs) {
        (void)conn;
        (void)width;
        write_port(i, pname, m.delay);
      }
      worst_path = std::max(worst_path, m.delay);
    }
  }
  for (const EvalStep& step : topo) {
    double t = in_arrival(step.instance, &step.port) +
               inst_delay[step.instance];
    write_port(step.instance, step.port, t);
    worst_path = std::max(worst_path, t);
  }
  // Paths terminating at sequential inputs (register setup).
  for (int i : seq_insts) {
    worst_path = std::max(worst_path, in_arrival(i, nullptr));
  }
  total.delay = worst_path;
  return total;
}

std::vector<Alternative> DesignSpace::filter_alternatives(
    std::vector<Alternative> candidates) const {
  // Deduplicate identical metrics (keep the first).
  std::sort(candidates.begin(), candidates.end(),
            [](const Alternative& a, const Alternative& b) {
              if (std::abs(a.metric.area - b.metric.area) > kEps) {
                return a.metric.area < b.metric.area;
              }
              return a.metric.delay < b.metric.delay;
            });
  std::vector<Alternative> kept;
  switch (options_.filter) {
    case FilterKind::kPareto: {
      // Favorable-tradeoff filter: strictly Pareto, and additional area is
      // only worth paying for a significant delay gain.
      double best_delay = std::numeric_limits<double>::infinity();
      for (Alternative& alt : candidates) {
        const double required =
            kept.empty() ? best_delay
                         : best_delay * (1.0 - options_.min_delay_gain);
        if (alt.metric.delay < required - kEps) {
          best_delay = alt.metric.delay;
          kept.push_back(std::move(alt));
        }
      }
      break;
    }
    case FilterKind::kAreaOnly:
      if (!candidates.empty()) kept.push_back(std::move(candidates.front()));
      break;
    case FilterKind::kDelayOnly: {
      if (!candidates.empty()) {
        auto it = std::min_element(candidates.begin(), candidates.end(),
                                   [](const Alternative& a,
                                      const Alternative& b) {
                                     return a.metric.delay < b.metric.delay;
                                   });
        kept.push_back(std::move(*it));
      }
      break;
    }
    case FilterKind::kNone: {
      // Drop exact duplicates only.
      for (Alternative& alt : candidates) {
        if (kept.empty() ||
            std::abs(kept.back().metric.area - alt.metric.area) > kEps ||
            std::abs(kept.back().metric.delay - alt.metric.delay) > kEps) {
          kept.push_back(std::move(alt));
        }
      }
      break;
    }
  }
  if (static_cast<int>(kept.size()) > options_.max_alternatives_per_node) {
    kept.resize(options_.max_alternatives_per_node);
  }
  return kept;
}

void DesignSpace::evaluate(SpecNode* node) {
  if (node->evaluated) return;
  node->evaluated = true;  // set first: graph is acyclic by construction

  std::vector<Alternative> candidates;
  for (size_t ii = 0; ii < node->impls.size(); ++ii) {
    ImplNode* impl = node->impls[ii].get();
    if (impl->is_leaf()) {
      Alternative alt;
      alt.impl_index = static_cast<int>(ii);
      alt.metric = Metric{impl->cell->area, impl->cell->delay_ns};
      candidates.push_back(std::move(alt));
      continue;
    }
    // Evaluate children first.
    bool viable = true;
    for (SpecNode* child : impl->children) {
      evaluate(child);
      if (child->alts.empty()) {
        viable = false;
        break;
      }
    }
    if (!viable) {
      impl->dead = true;
      continue;
    }
    // Bound the combination count per implementation: shrink the number of
    // alternatives considered per child until the product fits.
    const int nchildren = static_cast<int>(impl->children.size());
    std::vector<int> limit(nchildren);
    for (int c = 0; c < nchildren; ++c) {
      limit[c] = static_cast<int>(impl->children[c]->alts.size());
    }
    auto product = [&]() {
      double p = 1;
      for (int c = 0; c < nchildren; ++c) p *= limit[c];
      return p;
    };
    while (product() > static_cast<double>(options_.max_combinations_per_impl)) {
      auto it = std::max_element(limit.begin(), limit.end());
      if (*it <= 1) break;
      --*it;
    }

    // Odometer over child alternative choices (uniform-implementation
    // constraint: one choice per *distinct* child spec).
    std::vector<int> choice(nchildren, 0);
    for (;;) {
      auto metric_of = [&](const ComponentSpec& spec) -> Metric {
        for (int c = 0; c < nchildren; ++c) {
          if (impl->children[c]->spec == spec) {
            return impl->children[c]->alts[choice[c]].metric;
          }
        }
        throw Error("template child spec not found: " + spec.key());
      };
      Alternative alt;
      alt.impl_index = static_cast<int>(ii);
      alt.child_alt = choice;
      alt.metric = eval_template(*impl->tmpl, impl->topo, metric_of);
      candidates.push_back(std::move(alt));

      int c = 0;
      while (c < nchildren && ++choice[c] >= limit[c]) {
        choice[c] = 0;
        ++c;
      }
      if (c == nchildren) break;
      if (nchildren == 0) break;
    }
    if (nchildren == 0 && impl->tmpl.has_value()) {
      // Template with no spec instances at all: constant metrics already
      // pushed by the loop body above (single iteration).
    }
  }
  node->alts = filter_alternatives(std::move(candidates));
}

double DesignSpace::count_constrained(SpecNode* node) {
  if (node->count_constrained >= 0) return node->count_constrained;
  node->count_constrained = 0;  // guards (graph is acyclic)
  double total = 0;
  for (const auto& impl : node->impls) {
    if (impl->is_leaf()) {
      total += 1;
      continue;
    }
    double p = 1;
    for (SpecNode* child : impl->children) {
      p *= count_constrained(child);
    }
    total += p;
  }
  node->count_constrained = total;
  return total;
}

double DesignSpace::count_unconstrained(SpecNode* node) {
  if (node->count_unconstrained >= 0) return node->count_unconstrained;
  node->count_unconstrained = 0;
  double total = 0;
  for (const auto& impl : node->impls) {
    if (impl->is_leaf()) {
      total += 1;
      continue;
    }
    double p = 1;
    for (const Instance& inst : impl->tmpl->instances()) {
      for (SpecNode* child : impl->children) {
        if (child->spec == inst.spec) {
          p *= count_unconstrained(child);
          break;
        }
      }
    }
    total += p;
  }
  node->count_unconstrained = total;
  return total;
}

}  // namespace bridge::dtas
