// Gate and logic-unit decomposition rules: bit slicing, fan-in trees,
// De Morgan re-expressions (which give the gate level its alternative
// implementations), and the multi-function logic unit.
#include <memory>

#include "dtas/rule.h"

namespace bridge::dtas {

using genus::ComponentSpec;
using genus::Kind;
using genus::Op;
using netlist::Instance;
using netlist::Module;
using netlist::NetIndex;

namespace {

bool is_gate(const ComponentSpec& spec, int min_width = 1, int min_fanin = 1) {
  return spec.kind == Kind::kGate && spec.width >= min_width &&
         spec.size >= min_fanin && spec.ops.size() == 1;
}

Op gate_fn(const ComponentSpec& spec) { return spec.ops.to_vector().at(0); }

/// Wide gates slice into per-bit gates.
class GateBitSliceRule final : public Rule {
 public:
  explicit GateBitSliceRule(bool library_specific)
      : Rule("gate-bit-slice", "bit-slice", library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return is_gate(spec) && spec.width > 1;
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "gslice");
    const int fanin = spec.size;
    for (int b = 0; b < spec.width; ++b) {
      Instance& g = t.add("b", genus::make_gate_spec(gate_fn(spec), 1, fanin));
      for (int i = 0; i < fanin; ++i) {
        t.connect(g, "I" + std::to_string(i),
                  t.port("I" + std::to_string(i)), b);
      }
      t.connect(g, "OUT", t.port("OUT"), b);
    }
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

/// Wide-fanin gates split into two subtrees plus a root gate. The root
/// keeps the (possibly inverting) function; subtrees use the base function.
class GateTreeRule final : public Rule {
 public:
  explicit GateTreeRule(bool library_specific)
      : Rule("gate-fanin-tree", "tree-composition", library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    if (!is_gate(spec, 1, 3) || spec.width != 1) return false;
    switch (gate_fn(spec)) {
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor:
      case Op::kNand:
      case Op::kNor:
      case Op::kXnor:
        return true;
      default:
        return false;
    }
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    const Op fn = gate_fn(spec);
    Op base = fn;
    if (fn == Op::kNand) base = Op::kAnd;
    if (fn == Op::kNor) base = Op::kOr;
    if (fn == Op::kXnor) base = Op::kXor;
    const int k = spec.size;
    const int k1 = (k + 1) / 2;
    const int k2 = k - k1;

    TemplateBuilder t(spec, "gtree");
    auto subtree = [&](int lo, int n) -> std::pair<NetIndex, int> {
      if (n == 1) return {t.port("I" + std::to_string(lo)), 0};
      Instance& g = t.add("st", genus::make_gate_spec(base, 1, n));
      for (int i = 0; i < n; ++i) {
        t.connect(g, "I" + std::to_string(i),
                  t.port("I" + std::to_string(lo + i)), 0);
      }
      NetIndex o = t.fresh("st", 1);
      t.connect(g, "OUT", o);
      return {o, 0};
    };
    auto [left, llo] = subtree(0, k1);
    auto [right, rlo] = subtree(k1, k2);
    Instance& root = t.add("root", genus::make_gate_spec(fn, 1, 2));
    t.connect(root, "I0", left, llo);
    t.connect(root, "I1", right, rlo);
    t.connect(root, "OUT", t.port("OUT"));
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

/// Re-expression rules: alternative gate-level realizations. Directions are
/// chosen so the rewrite system is well-founded (everything bottoms out in
/// the NAND/INV basis).
class GateRewriteRule final : public Rule {
 public:
  GateRewriteRule(std::string name, Op from,
                  std::function<void(TemplateBuilder&)> build)
      : Rule(std::move(name), "gate-re-expression", false),
        from_(from),
        build_(std::move(build)) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    const int want_fanin = (from_ == Op::kLnot || from_ == Op::kBuf) ? 1 : 2;
    return is_gate(spec) && spec.width == 1 && spec.size == want_fanin &&
           gate_fn(spec) == from_;
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "grw");
    build_(t);
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }

 private:
  Op from_;
  std::function<void(TemplateBuilder&)> build_;
};

void connect_out_gate(TemplateBuilder& t, Op fn, NetIndex a, NetIndex b) {
  Instance& g = t.add("o", genus::make_gate_spec(fn, 1, 2));
  t.connect(g, "I0", a);
  t.connect(g, "I1", b);
  t.connect(g, "OUT", t.port("OUT"));
}

void connect_out_inv(TemplateBuilder& t, NetIndex a) {
  Instance& g = t.add("o", genus::make_gate_spec(Op::kLnot, 1));
  t.connect(g, "I0", a);
  t.connect(g, "OUT", t.port("OUT"));
}

/// Multi-function logic units slice into per-bit logic units.
class LuBitSliceRule final : public Rule {
 public:
  explicit LuBitSliceRule(bool library_specific)
      : Rule("lu-bit-slice", "bit-slice", library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return spec.kind == Kind::kLogicUnit && spec.width > 1;
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "luslice");
    for (int b = 0; b < spec.width; ++b) {
      ComponentSpec child = genus::make_logic_unit_spec(1, spec.ops);
      Instance& u = t.add("lu", child);
      t.connect(u, "A", t.port("A"), b);
      t.connect(u, "B", t.port("B"), b);
      if (spec.ops.size() > 1) t.connect(u, "F", t.port("F"));
      t.connect(u, "OUT", t.port("OUT"), b);
    }
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

/// A 1-bit logic unit: one gate per function plus a selecting multiplexer.
class LuGatesRule final : public Rule {
 public:
  explicit LuGatesRule(bool library_specific)
      : Rule("lu-gates-and-mux", "function-enumeration", library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    if (spec.kind != Kind::kLogicUnit || spec.width != 1) return false;
    for (Op op : spec.ops.to_vector()) {
      if (!genus::op_is_logic(op)) return false;
    }
    return true;
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "lugates");
    const auto ops = spec.ops.to_vector();

    auto fn_output = [&](Op op) -> NetIndex {
      switch (op) {
        case Op::kLnot: {
          return t.inv(t.port("A"), 0);
        }
        case Op::kBuf: {
          NetIndex o = t.fresh("fb", 1);
          t.buf_slice(t.port("A"), 0, o, 0, 1);
          return o;
        }
        default:
          return t.gate2(op, t.port("A"), 0, t.port("B"), 0);
      }
    };

    if (ops.size() == 1) {
      NetIndex o = fn_output(ops[0]);
      t.buf_slice(o, 0, t.port("OUT"), 0, 1);
    } else {
      Instance& mux = t.add(
          "sel", genus::make_mux_spec(1, static_cast<int>(ops.size())));
      for (size_t i = 0; i < ops.size(); ++i) {
        t.connect(mux, "I" + std::to_string(i), fn_output(ops[i]));
      }
      t.connect(mux, "SEL", t.port("F"));
      t.connect(mux, "OUT", t.port("OUT"));
    }
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

}  // namespace

void register_gate_rules(RuleBase& base) {
  base.add(std::make_unique<GateBitSliceRule>(false));
  base.add(std::make_unique<GateTreeRule>(false));

  base.add(std::make_unique<GateRewriteRule>(
      "and-from-nand-inv", Op::kAnd, [](TemplateBuilder& t) {
        NetIndex n = t.gate2(Op::kNand, t.port("I0"), 0, t.port("I1"), 0);
        connect_out_inv(t, n);
      }));
  base.add(std::make_unique<GateRewriteRule>(
      "or-from-nand-demorgan", Op::kOr, [](TemplateBuilder& t) {
        NetIndex na = t.inv(t.port("I0"), 0);
        NetIndex nb = t.inv(t.port("I1"), 0);
        connect_out_gate(t, Op::kNand, na, nb);
      }));
  base.add(std::make_unique<GateRewriteRule>(
      "nor-from-and-demorgan", Op::kNor, [](TemplateBuilder& t) {
        NetIndex na = t.inv(t.port("I0"), 0);
        NetIndex nb = t.inv(t.port("I1"), 0);
        connect_out_gate(t, Op::kAnd, na, nb);
      }));
  base.add(std::make_unique<GateRewriteRule>(
      "xor-from-nand", Op::kXor, [](TemplateBuilder& t) {
        NetIndex n1 = t.gate2(Op::kNand, t.port("I0"), 0, t.port("I1"), 0);
        NetIndex n2 = t.gate2(Op::kNand, t.port("I0"), 0, n1, 0);
        NetIndex n3 = t.gate2(Op::kNand, t.port("I1"), 0, n1, 0);
        connect_out_gate(t, Op::kNand, n2, n3);
      }));
  base.add(std::make_unique<GateRewriteRule>(
      "xnor-from-xor-inv", Op::kXnor, [](TemplateBuilder& t) {
        NetIndex x = t.gate2(Op::kXor, t.port("I0"), 0, t.port("I1"), 0);
        connect_out_inv(t, x);
      }));
  base.add(std::make_unique<GateRewriteRule>(
      "limpl-from-inv-or", Op::kLimpl, [](TemplateBuilder& t) {
        NetIndex na = t.inv(t.port("I0"), 0);
        connect_out_gate(t, Op::kOr, na, t.port("I1"));
      }));
  base.add(std::make_unique<GateRewriteRule>(
      "inv-from-nand", Op::kLnot, [](TemplateBuilder& t) {
        connect_out_gate(t, Op::kNand, t.port("I0"), t.port("I0"));
      }));
  base.add(std::make_unique<GateRewriteRule>(
      "buffer-from-inverters", Op::kBuf, [](TemplateBuilder& t) {
        NetIndex n = t.inv(t.port("I0"), 0);
        connect_out_inv(t, n);
      }));

  base.add(std::make_unique<LuBitSliceRule>(false));
  base.add(std::make_unique<LuGatesRule>(false));
}

}  // namespace bridge::dtas
