#include "dtas/synthesizer.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <sstream>
#include <tuple>

#include "base/diag.h"
#include "base/fault.h"
#include "base/strutil.h"
#include "lint/lint.h"
#include "lola/lola.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bridge::dtas {

using genus::ComponentSpec;
using genus::Kind;
using genus::PortDir;
using genus::PortSpec;
using netlist::Design;
using netlist::Instance;
using netlist::Module;
using netlist::PortConn;
using netlist::RefKind;

namespace {

std::string sanitize(const std::string& s) { return sanitize_identifier(s); }

/// Resets and owns one synthesize call's obs::Profile: phases are added by
/// PhaseTimer scopes; the destructor fills in this-call counter deltas
/// from the space / extraction-cache stats captured at construction. The
/// counter names intentionally match the registry's dotted names minus
/// the "dtas." prefix, so a profile reconciles against a registry
/// snapshot diff by direct name comparison.
class ProfileScope {
 public:
  ProfileScope(obs::Profile& out, std::string name, const DesignSpace& space,
               const ExtractionCache& cache)
      : out_(out),
        space_(space),
        cache_(cache),
        space_before_(space.stats()),
        cache_before_(cache.stats()) {
    out_ = obs::Profile{};
    out_.name = std::move(name);
  }
  ~ProfileScope() {
    const SpaceStats& s = space_.stats();
    const SpaceStats& b = space_before_;
    out_.add_counter("expand.spec_nodes", s.spec_nodes - b.spec_nodes);
    out_.add_counter("expand.impl_nodes", s.impl_nodes - b.impl_nodes);
    out_.add_counter("expand.rule_applications",
                     s.rule_applications - b.rule_applications);
    out_.add_counter("expand.template_cache.hits",
                     s.template_cache_hits - b.template_cache_hits);
    out_.add_counter("expand.template_cache.misses",
                     s.template_cache_misses - b.template_cache_misses);
    out_.add_counter("evaluate.combinations.evaluated",
                     s.combinations_evaluated - b.combinations_evaluated);
    out_.add_counter("evaluate.combinations.pruned",
                     s.combinations_pruned - b.combinations_pruned);
    out_.add_counter("evaluate.odometer.parallel_runs",
                     s.parallel_odometers - b.parallel_odometers);
    out_.add_counter("evaluate.odometer.shards",
                     s.odometer_shards - b.odometer_shards);
    const ExtractionCache::Stats& c = cache_.stats();
    out_.add_counter("extract.extraction_cache.hits",
                     c.hits - cache_before_.hits);
    out_.add_counter("extract.extraction_cache.misses",
                     c.misses - cache_before_.misses);
  }
  obs::Profile& profile() { return out_; }

 private:
  obs::Profile& out_;
  const DesignSpace& space_;
  const ExtractionCache& cache_;
  SpaceStats space_before_;
  ExtractionCache::Stats cache_before_;
};

/// SpaceOptions::verify_designs: run the structural linter over each
/// extracted design and refuse to return one that fails. The linter is
/// read-only, so fronts, descriptions, and VHDL are byte-identical with
/// the gate on or off — it can only turn a bad front into an exception.
void verify_or_throw(const std::vector<AlternativeDesign>& designs,
                     lint::Cache& cache) {
  for (const AlternativeDesign& d : designs) {
    const std::vector<lint::Diagnostic> diags =
        lint::lint_design(*d.design, cache);
    if (lint::has_errors(diags)) {
      throw Error("post-extraction verification failed for '" +
                  d.design->name() + "':\n" + lint::render(diags));
    }
  }
}

/// Adds one wall-clock phase entry to a profile on scope exit.
class PhaseTimer {
 public:
  PhaseTimer(obs::Profile& profile, const char* name)
      : profile_(profile),
        name_(name),
        start_(std::chrono::steady_clock::now()) {}
  /// Record the phase now instead of at scope exit (idempotent) — lets
  /// "extract" stop before the "verify" phase opens, so the two are
  /// disjoint in the profile instead of verify nesting inside extract.
  void finish() {
    if (name_ == nullptr) return;
    profile_.add_phase(name_,
                       std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start_)
                           .count());
    name_ = nullptr;
  }
  ~PhaseTimer() { finish(); }

 private:
  obs::Profile& profile_;
  const char* name_;
  std::chrono::steady_clock::time_point start_;
};

/// Materializes chosen alternatives into hierarchical modules. With the
/// extraction cache enabled, each distinct (node, alternative) subtree is
/// built once per session as an immutable shared module and merely
/// *registered* with every further design that needs it; disabled, every
/// design owns a private copy of every module (the reference path). Both
/// paths draw module names from the session table in ExtractionCache and
/// walk subtrees in the same pre-order, so the hierarchies they produce
/// are byte-identical under emission.
class Extractor {
 public:
  Extractor(Design& out, ExtractionCache& cache, bool use_cache)
      : out_(out), cache_(cache), use_cache_(use_cache) {}

  /// Module implementing (node, alt), registered with the design (along
  /// with its transitive children). Only valid for decomposition alts.
  const Module* materialize(const SpecNode* node, int alt_index) {
    const auto key = std::make_pair(node, alt_index);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    if (!use_cache_) {
      Module& mod = out_.add_module(cache_.name_for(node, alt_index));
      fill(mod, node, alt_index, /*shared_build=*/false);
      memo_[key] = &mod;
      return &mod;
    }
    std::shared_ptr<const Module> shared = shared_module(node, alt_index);
    const Module* raw = shared.get();
    out_.reference_module(std::move(shared));
    memo_[key] = raw;
    // Register the subtree's decomposition children with the design in
    // the same pre-order the cache-off path creates them (the emitters
    // walk module_order(), so the order is part of the contract).
    for_each_decomp_child(node, alt_index,
                          [this](const SpecNode* child, int child_alt) {
                            materialize(child, child_alt);
                          });
    return raw;
  }

  /// Create the instance in `mod` implementing template instance `ti`
  /// with the chosen (child, alt). Child modules are materialized into
  /// (registered with) the design.
  Instance& bind_instance(Module& mod, const Instance& ti,
                          const SpecNode* child, int child_alt) {
    return bind(mod, ti, child, child_alt, /*shared_build=*/false);
  }

 private:
  /// Build the body of the module implementing (node, alt) from its
  /// implementation template. `shared_build` selects how module children
  /// are resolved: cache-only (building a shared module that must not
  /// touch any particular design) or design registration.
  void fill(Module& mod, const SpecNode* node, int alt_index,
            bool shared_build,
            std::vector<std::shared_ptr<const Module>>* children = nullptr) {
    // Probe before any of `mod` is built: an injected throw here models
    // a mid-extraction failure, and the unwind must discard the partial
    // module without publishing it (inserts happen only after a
    // complete fill).
    base::FaultInjector::global().probe("dtas.extract.materialize");
    const Alternative& alt = node->alts.at(alt_index);
    const ImplNode* impl = node->impls.at(alt.impl_index).get();
    BRIDGE_CHECK(!impl->is_leaf(), "materialize called on a leaf alt");
    const Module& tmpl = *impl->tmpl;
    for (const auto& p : tmpl.module_ports()) {
      mod.add_port(p.name, p.dir, p.width);
    }
    for (const auto& n : tmpl.nets()) {
      if (mod.find_net(n.name) == netlist::kNoNet) {
        mod.add_net(n.name, n.width);
      }
    }
    // Which distinct child (and which of its alternatives) implements each
    // template instance is pre-resolved in the compiled plan.
    const std::vector<int>& inst_child = impl->plan->instance_child();
    int ti_index = 0;
    for (const Instance& ti : tmpl.instances()) {
      const int child_index = inst_child.at(ti_index++);
      const SpecNode* child = impl->children[child_index];
      const int child_alt = alt.child_alt.at(child_index);
      bind(mod, ti, child, child_alt, shared_build, children);
    }
  }

  /// Shared immutable module for (node, alt): served from the cache, or
  /// built (bottom-up through the cache, never touching the design) and
  /// published on a miss.
  std::shared_ptr<const Module> shared_module(const SpecNode* node,
                                              int alt_index) {
    if (auto m = cache_.find(node, alt_index)) return m;
    auto mod = std::make_shared<Module>(cache_.name_for(node, alt_index));
    // The module holds raw instance pointers into its child modules;
    // `children` keeps each child's shared_ptr alive from the child's
    // own insert (whose budget sweep must not reclaim it) through this
    // insert, where the entry takes them over as subtree pins.
    std::vector<std::shared_ptr<const Module>> children;
    fill(*mod, node, alt_index, /*shared_build=*/true, &children);
    return cache_.insert(node, alt_index, std::move(mod),
                         std::move(children));
  }

  Instance& bind(Module& mod, const Instance& ti, const SpecNode* child,
                 int child_alt, bool shared_build,
                 std::vector<std::shared_ptr<const Module>>* children =
                     nullptr) {
    const Alternative& calt = child->alts.at(child_alt);
    const ImplNode* cimpl = child->impls.at(calt.impl_index).get();
    if (cimpl->is_leaf()) {
      const cells::Cell& cell = *cimpl->cell;
      Instance& ni = mod.add_cell_instance(ti.name, cell.spec, cell.name);
      // Map cell ports onto the need's ports; copy the template's
      // connections through the binding; apply tie-offs.
      for (const auto& [cell_port, binding] :
           cell_binding(cell.spec, child->spec)) {
        switch (binding.kind) {
          case PortBinding::Kind::kPort: {
            auto it = ti.connections.find(binding.need_port);
            if (it != ti.connections.end()) {
              ni.connections[cell_port] = it->second;
            } else {
              // A matched cell *output* with nothing to drive is legally
              // open; a matched cell *input* with no connection to copy
              // through means the template (or input netlist) dropped a
              // port the cell reads — never silently leave it floating.
              BRIDGE_CHECK(binding.dir == PortDir::kOut,
                           "instance " << ti.name << " of "
                                       << child->spec.key()
                                       << " leaves input port "
                                       << binding.need_port
                                       << " unconnected (cell "
                                       << cell.name << "." << cell_port
                                       << " would float)");
            }
            break;
          }
          case PortBinding::Kind::kConst:
            ni.connections[cell_port] = PortConn::constant(binding.value);
            break;
          case PortBinding::Kind::kOpen:
            break;
        }
      }
      return ni;
    }
    const Module* child_mod;
    if (shared_build) {
      std::shared_ptr<const Module> shared = shared_module(child, child_alt);
      child_mod = shared.get();
      children->push_back(std::move(shared));
    } else {
      child_mod = materialize(child, child_alt);
    }
    Instance& ni = mod.add_module_instance(ti.name, child_mod, child->spec);
    ni.connections = ti.connections;
    return ni;
  }

  /// Visit (child, alt) of every decomposition (non-leaf) template
  /// instance of (node, alt), in template-instance order.
  template <class Fn>
  void for_each_decomp_child(const SpecNode* node, int alt_index, Fn&& fn) {
    const Alternative& alt = node->alts.at(alt_index);
    const ImplNode* impl = node->impls.at(alt.impl_index).get();
    const std::vector<int>& inst_child = impl->plan->instance_child();
    const std::size_t count = impl->tmpl->instances().size();
    for (std::size_t ti_index = 0; ti_index < count; ++ti_index) {
      const int child_index = inst_child.at(ti_index);
      const SpecNode* child = impl->children[child_index];
      const int child_alt = alt.child_alt.at(child_index);
      const ImplNode* cimpl =
          child->impls.at(child->alts.at(child_alt).impl_index).get();
      if (!cimpl->is_leaf()) fn(child, child_alt);
    }
  }

  Design& out_;
  ExtractionCache& cache_;
  const bool use_cache_;
  std::map<std::pair<const SpecNode*, int>, const Module*> memo_;
};

/// Short human-readable traces of chosen implementations, memoized per
/// (node, alternative, depth). The alternatives of one front share most
/// of their child subtrees, so recomputing the joins per alternative —
/// ~20% of single-spec wall before memoization — repeats the same string
/// assembly over and over; one Describer spans every alternative of a
/// synthesize call and builds each subtree trace once.
class Describer {
 public:
  /// With a cache, traces memoize into its session-wide table (surviving
  /// across synthesize calls) through the narrow find/memoize accessors;
  /// without one (extraction cache off), a per-call local map serves the
  /// same role.
  explicit Describer(ExtractionCache* cache) : cache_(cache) {}

  const std::string& describe(const SpecNode* node, int alt_index,
                              int depth) {
    // Without a cache the table is per-call, so any injective key works;
    // slice_fp is injective within one space (distinct nodes differ in
    // spec, and the spec fingerprint seeds slice_fp).
    const Key key{cache_ != nullptr ? cache_->node_key(node)
                                    : node->slice_fp,
                  alt_index, depth};
    if (cache_ != nullptr) {
      if (const std::string* hit = cache_->find_describe(key)) return *hit;
    } else {
      auto it = local_.find(key);
      if (it != local_.end()) return it->second;
    }
    const Alternative& alt = node->alts.at(alt_index);
    const ImplNode* impl = node->impls.at(alt.impl_index).get();
    std::string s;
    if (impl->is_leaf()) {
      s = impl->cell->name;
    } else {
      s = impl->rule_name;
      if (depth > 0 && !impl->children.empty()) {
        std::vector<std::string> parts;
        for (size_t c = 0; c < impl->children.size(); ++c) {
          const SpecNode* child = impl->children[c];
          // Only describe "interesting" children (skip SSI gate fodder).
          if (child->spec.kind == Kind::kGate) continue;
          parts.push_back(genus::kind_name(child->spec.kind) + ":" +
                          describe(child, alt.child_alt[c], depth - 1));
        }
        if (!parts.empty()) s += " (" + join(parts, ", ") + ")";
      }
    }
    if (cache_ != nullptr) return cache_->memoize_describe(key, std::move(s));
    return local_.emplace(key, std::move(s)).first->second;
  }

 private:
  using Key = ExtractionCache::DescribeKey;
  ExtractionCache* cache_;  // null = use the per-call local table
  std::map<Key, std::string> local_;
};

}  // namespace

namespace {

/// Registry mirrors of the extraction-cache lifecycle counters. The
/// bytes gauge aggregates across every live ExtractionCache in the
/// process (each adds its deltas and subtracts its residue on
/// destruction), matching how the template-cache gauge reads: resident
/// cache bytes process-wide.
struct ExtractionCacheMetrics {
  obs::Counter& hits = obs::Registry::global().counter(
      "dtas.extract.extraction_cache.hits");
  obs::Counter& misses = obs::Registry::global().counter(
      "dtas.extract.extraction_cache.misses");
  obs::Counter& evictions = obs::Registry::global().counter(
      "dtas.extract.extraction_cache.evictions");
  obs::Gauge& bytes = obs::Registry::global().gauge(
      "dtas.extract.extraction_cache.bytes");

  static ExtractionCacheMetrics& get() {
    static ExtractionCacheMetrics m;
    return m;
  }
};

}  // namespace

ExtractionCache::ExtractionCache() {
  const long env = cache_budget_from_env();
  if (env > 0) budget_ = static_cast<std::size_t>(env);
}

ExtractionCache::~ExtractionCache() {
  ExtractionCacheMetrics::get().bytes.add(-static_cast<long>(bytes_));
}

void ExtractionCache::set_budget_bytes(std::size_t budget) {
  budget_ = budget;
  evict_to_budget();
}

void ExtractionCache::clear() {
  ExtractionCacheMetrics::get().bytes.add(-static_cast<long>(bytes_));
  modules_.clear();
  names_.clear();
  name_uses_.clear();
  describe_memo_.clear();
  bytes_ = 0;
  tick_ = 0;
  stats_.bytes = 0;
}

void ExtractionCache::evict_to_budget() {
  if (budget_ == 0) return;
  while (bytes_ > budget_) {
    // LRU among modules only this cache references: use_count > 1 means
    // some live Design (or an extraction in flight) still points at the
    // module, and evicting it would only move memory from the cache to
    // the design — the sharing is the point, so those are pinned.
    auto victim = modules_.end();
    for (auto it = modules_.begin(); it != modules_.end(); ++it) {
      if (it->second.module.use_count() > 1) continue;
      if (victim == modules_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == modules_.end()) break;  // everything left is pinned
    bytes_ -= victim->second.bytes;
    ++stats_.evictions;
    stats_.bytes = static_cast<long>(bytes_);
    ExtractionCacheMetrics& metrics = ExtractionCacheMetrics::get();
    metrics.evictions.add(1);
    metrics.bytes.add(-static_cast<long>(victim->second.bytes));
    modules_.erase(victim);
  }
}

std::uint64_t ExtractionCache::node_key(const SpecNode* node) const {
  if (content_keys_) {
    // slice_fp is 0 only before expansion; extraction always runs on
    // evaluated (hence expanded) nodes, so a zero here is a caller bug.
    BRIDGE_CHECK(node->slice_fp != 0,
                 "extraction-cache key requested for unexpanded node "
                     << node->spec.key());
    return node->slice_fp;
  }
  return reinterpret_cast<std::uint64_t>(node);
}

const std::string& ExtractionCache::name_for(const SpecNode* node,
                                             int alt_index) {
  const Key key{node_key(node), alt_index};
  auto it = names_.find(key);
  if (it != names_.end()) return it->second;
  // Sanitizing the *whole* name (not just the key part) makes it a VHDL
  // basic identifier verbatim — emission's own sanitization is the
  // identity on it — so uniquifying these strings is uniquifying the
  // emitted entity names themselves.
  const std::string base = sanitize_identifier(
      node->spec.key() + "__a" + std::to_string(alt_index));
  return names_.emplace(key, unique_name(base)).first->second;
}

std::string ExtractionCache::unique_name(const std::string& base) {
  int& uses = name_uses_[base];
  ++uses;
  // Distinct spec keys can sanitize to the same identifier; a bare
  // counter suffix keeps every session name (and thus every emitted
  // entity) unique. The suffixed form is itself recorded, so a later
  // literal "X_u1" request cannot collide either.
  if (uses == 1) return base;
  return unique_name(base + "_u" + std::to_string(uses - 1));
}

const std::string* ExtractionCache::find_describe(
    const DescribeKey& key) const {
  auto it = describe_memo_.find(key);
  return it == describe_memo_.end() ? nullptr : &it->second;
}

const std::string& ExtractionCache::memoize_describe(const DescribeKey& key,
                                                     std::string text) {
  return describe_memo_.emplace(key, std::move(text)).first->second;
}

std::shared_ptr<const netlist::Module> ExtractionCache::find(
    const SpecNode* node, int alt_index) {
  auto it = modules_.find(Key{node_key(node), alt_index});
  if (it == modules_.end()) return nullptr;
  it->second.last_use = ++tick_;
  ++stats_.hits;
  ExtractionCacheMetrics::get().hits.add(1);
  return it->second.module;
}

std::shared_ptr<const netlist::Module> ExtractionCache::insert(
    const SpecNode* node, int alt_index,
    std::shared_ptr<const netlist::Module> module,
    std::vector<std::shared_ptr<const netlist::Module>> children) {
  // An armed fault injector throws here, before any mutation: a failed
  // insert must leave no partially-constructed entry behind. (The names_
  // table the module's name came from is insert-order memoized and
  // intentionally survives — the retry re-requests the same name.)
  base::FaultInjector::global().probe("dtas.extraction_cache.insert");
  ++stats_.misses;
  const std::size_t module_bytes = module->approx_footprint_bytes();
  auto [it, inserted] = modules_.emplace(
      Key{node_key(node), alt_index},
      Entry{std::move(module), std::move(children), module_bytes, ++tick_});
  BRIDGE_CHECK(inserted, "duplicate extraction-cache insert for "
                             << node->spec.key() << " alt " << alt_index);
  bytes_ += module_bytes;
  stats_.bytes = static_cast<long>(bytes_);
  ExtractionCacheMetrics& metrics = ExtractionCacheMetrics::get();
  metrics.misses.add(1);
  metrics.bytes.add(static_cast<long>(module_bytes));
  // Keep a strong ref across the sweep: the just-inserted module may be
  // the only unpinned entry, and the caller must receive a live pointer
  // either way.
  std::shared_ptr<const netlist::Module> stored = it->second.module;
  evict_to_budget();
  stats_.bytes = static_cast<long>(bytes_);
  return stored;
}

std::vector<std::pair<base::Symbol, PortBinding>> cell_binding(
    const ComponentSpec& cell_spec, const ComponentSpec& need) {
  BRIDGE_CHECK(genus::spec_implements(cell_spec, need),
               "cell_binding: " << cell_spec.key() << " does not implement "
                                << need.key());
  const auto& cell_ports = genus::spec_ports(cell_spec);
  const auto& need_ports = genus::spec_ports(need);
  std::vector<std::pair<base::Symbol, PortBinding>> out;
  for (const PortSpec& cp : cell_ports) {
    PortBinding b;
    b.dir = cp.dir;
    bool matched = false;
    for (const PortSpec& np : need_ports) {
      if (np.name == cp.name && np.width == cp.width && np.dir == cp.dir) {
        b.kind = PortBinding::Kind::kPort;
        b.need_port = np.name;
        matched = true;
        break;
      }
    }
    if (!matched) {
      static const base::Symbol kEN("EN"), kCEN("CEN"), kMODE("MODE"),
          kCI("CI");
      if (cp.dir == PortDir::kOut) {
        b.kind = PortBinding::Kind::kOpen;
      } else {
        // Data-book tie-offs for extra cell inputs.
        b.kind = PortBinding::Kind::kConst;
        if (cp.name == kEN || cp.name == kCEN) {
          b.value = 1;  // enables are active high
        } else if (cp.name == kMODE) {
          b.value = need.kind == Kind::kSubtractor ? 1 : 0;
        } else if (cp.name == kCI && need.kind == Kind::kSubtractor) {
          b.value = 1;  // raw carry-in of 1 completes two's complement
        } else {
          b.value = 0;  // CI, ASET, ARST, spare data inputs
        }
      }
    }
    out.emplace_back(cp.name, b);
  }
  return out;
}

std::string default_rules_flavor(const cells::CellLibrary& library) {
  return library.name() == "LSI_LGC15" ? "lsi" : "lola";
}

RuleBase default_rules_for(const cells::CellLibrary& library) {
  RuleBase base;
  register_standard_rules(base);
  if (default_rules_flavor(library) == "lsi") {
    // The paper's nine hand-written library-specific rules (§5).
    register_lsi_rules(base);
  } else {
    // Any other data book — built-in TTL, parsed text, or a Liberty
    // import — gets its library-specific rules induced by LOLA (§7), so
    // retargeting needs no per-library code. The call direction follows
    // the paper: "LOLA is invoked when DTAS is presented with a new cell
    // library." (lola also uses dtas rule constructors; both live in the
    // one bridge library, so the mutual use is a deliberate pairing, not
    // a link cycle.)
    lola::induce_rules(library, base);
  }
  return base;
}

Synthesizer::Synthesizer(RuleBase rules, const cells::CellLibrary& library,
                         SpaceOptions options)
    : rules_(std::move(rules)) {
  space_.emplace(rules_, library, options);
  extract_cache_.set_content_keys(options.delta_cache_keys);
  if (options.extraction_cache_budget_bytes >= 0) {
    extract_cache_.set_budget_bytes(
        static_cast<std::size_t>(options.extraction_cache_budget_bytes));
  }
}

Synthesizer::Synthesizer(const cells::CellLibrary& library,
                         SpaceOptions options)
    : Synthesizer(default_rules_for(library), library, options) {}

void Synthesizer::retarget(const cells::CellLibrary& library) {
  retarget(default_rules_for(library), library);
}

void Synthesizer::retarget(RuleBase rules, const cells::CellLibrary& library) {
  const SpaceOptions options = space_->options();
  // Tear down the old space before swapping the rule base it references.
  space_.reset();
  rules_ = std::move(rules);
  space_.emplace(rules_, library, options);
  // Content-keyed entries survive on purpose — soundness lives in the
  // key, and identical content re-keys onto them. Pointer keys cannot
  // outlive the space whose node addresses they are: the allocator may
  // recycle those addresses, so the reference mode starts cold.
  if (!extract_cache_.content_keys()) extract_cache_.clear();
}

std::vector<AlternativeDesign> Synthesizer::synthesize(
    const ComponentSpec& spec) {
  obs::Span synth_span("synthesize", "dtas");
  ProfileScope prof(profile_, "synthesize:" + spec.key(), *space_,
                    extract_cache_);
  space_->arm_deadline();
  SpecNode* node;
  {
    PhaseTimer t(prof.profile(), "expand");
    node = space_->expand(spec);
  }
  {
    PhaseTimer t(prof.profile(), "evaluate");
    space_->evaluate(node);
  }
  obs::Span extract_span("extract", "dtas");
  PhaseTimer extract_timer(prof.profile(), "extract");
  const bool use_cache = space_->options().use_extraction_cache;
  std::vector<AlternativeDesign> out;
  Describer describer(use_cache ? &extract_cache_ : nullptr);
  for (size_t a = 0; a < node->alts.size(); ++a) {
    // Best-effort deadline: the alternatives already materialized form a
    // valid (prefix of the) front; throw mode unwinds with nothing
    // published (the caches only ever hold complete entries).
    if (space_->deadline_exceeded()) break;
    const Alternative& alt = node->alts[a];
    const ImplNode* impl = node->impls.at(alt.impl_index).get();
    AlternativeDesign d;
    d.metric = alt.metric;
    d.description = describer.describe(node, static_cast<int>(a), 2);
    d.design = std::make_shared<Design>(sanitize(spec.key()) + "__alt" +
                                        std::to_string(a));
    if (impl->is_leaf()) {
      // Wrap the direct cell match in a module with the spec's ports.
      Module& top = d.design->add_module(
          sanitize(spec.key() + "__direct" + std::to_string(a)));
      for (const PortSpec& p : genus::spec_ports(spec)) {
        top.add_port(p.name, p.dir, p.width);
      }
      Instance& ci =
          top.add_cell_instance("u0", impl->cell->spec, impl->cell->name);
      for (const auto& [cell_port, binding] :
           cell_binding(impl->cell->spec, spec)) {
        switch (binding.kind) {
          case PortBinding::Kind::kPort:
            top.connect(ci, cell_port, top.find_net(binding.need_port));
            break;
          case PortBinding::Kind::kConst:
            top.connect_const(ci, cell_port, binding.value);
            break;
          case PortBinding::Kind::kOpen:
            break;
        }
      }
      d.design->set_top(&top);
    } else {
      Extractor ex(*d.design, extract_cache_, use_cache);
      const Module* top = ex.materialize(node, static_cast<int>(a));
      d.design->set_top(top);
    }
    out.push_back(std::move(d));
  }
  extract_timer.finish();
  extract_span.close();
  if (space_->options().verify_designs) {
    obs::Span verify_span("verify", "dtas");
    PhaseTimer t(prof.profile(), "verify");
    verify_or_throw(out, lint_cache_);
  }
  return out;
}

std::vector<AlternativeDesign> Synthesizer::synthesize_netlist(
    const Module& input) {
  obs::Span synth_span("synthesize", "dtas");
  ProfileScope prof(profile_, "synthesize_netlist:" + input.name(), *space_,
                    extract_cache_);
  space_->arm_deadline();
  // Expand and evaluate every distinct instance specification.
  std::vector<SpecNode*> children;
  {
    PhaseTimer t(prof.profile(), "expand");
    for (const Instance& inst : input.instances()) {
      BRIDGE_CHECK(inst.ref == RefKind::kSpec,
                   "synthesize_netlist input must be a netlist of "
                   "specification instances");
      SpecNode* node = space_->expand(inst.spec);
      if (std::find(children.begin(), children.end(), node) ==
          children.end()) {
        children.push_back(node);
      }
    }
  }
  std::vector<Alternative> kept;
  std::unique_ptr<TimingPlan> plan_owned;  // compiled inside the scope below
  const int n = static_cast<int>(children.size());
  {
    PhaseTimer t(prof.profile(), "evaluate");
    for (SpecNode* c : children) {
      space_->evaluate(c);
      if (c->alts.empty()) return {};  // unrealizable instance
    }
    const EvalSchedule topo = DesignSpace::topo_order(input);

    // Compile the input netlist once; the plan's instance→child map also
    // drives materialization below.
    std::vector<const ComponentSpec*> child_specs;
    child_specs.reserve(children.size());
    for (const SpecNode* c : children) child_specs.push_back(&c->spec);
    plan_owned = std::make_unique<TimingPlan>(
        TimingPlan::compile(input, topo, child_specs));

    // Odometer over per-spec choices (uniform across the whole netlist) —
    // the same hot loop as per-implementation evaluation, one level up.
    // The per-spec evaluate() calls above opened their own depth-0
    // "evaluate" spans; this one covers the netlist-level sweep.
    obs::Span eval_span("evaluate", "dtas");
    std::vector<int> limit(n);
    for (int c = 0; c < n; ++c) {
      limit[c] = static_cast<int>(children[c]->alts.size());
    }
    DesignSpace::trim_limits(limit,
                             space_->options().max_combinations_per_impl);

    std::vector<Alternative> candidates;
    if (space_->options().use_compiled_plan) {
      ParetoFront front;
      space_->run_plan_odometer(*plan_owned, children, limit, /*impl_index=*/0,
                               front, candidates);
    } else {
      space_->run_reference_odometer(input, topo, children, limit,
                                    /*impl_index=*/0, candidates);
    }
    kept = space_->filter_alternatives(std::move(candidates));
  }
  const TimingPlan& plan = *plan_owned;
  obs::Span extract_span("extract", "dtas");
  PhaseTimer extract_timer(prof.profile(), "extract");

  // Materialize each surviving combination. One Describer spans every
  // combination: their per-spec choices overlap heavily, so child traces
  // are built once instead of once per alternative.
  const bool use_cache = space_->options().use_extraction_cache;
  std::vector<AlternativeDesign> out;
  Describer describer(use_cache ? &extract_cache_ : nullptr);
  for (size_t a = 0; a < kept.size(); ++a) {
    if (space_->deadline_exceeded()) break;
    const Alternative& alt = kept[a];
    AlternativeDesign d;
    d.metric = alt.metric;
    d.design = std::make_shared<Design>(input.name() + "__alt" +
                                        std::to_string(a));
    Module& top = d.design->add_module(
        sanitize(input.name() + "__impl" + std::to_string(a)));
    for (const auto& p : input.module_ports()) {
      top.add_port(p.name, p.dir, p.width);
    }
    for (const auto& nn : input.nets()) {
      if (top.find_net(nn.name) == netlist::kNoNet) {
        top.add_net(nn.name, nn.width);
      }
    }
    Extractor ex(*d.design, extract_cache_, use_cache);
    std::vector<std::string> parts;
    int ti_index = 0;
    for (const Instance& ti : input.instances()) {
      const int ci = plan.instance_child().at(ti_index++);
      ex.bind_instance(top, ti, children[ci], alt.child_alt[ci]);
    }
    for (int c = 0; c < n; ++c) {
      parts.push_back(genus::kind_name(children[c]->spec.kind) + ":" +
                      describer.describe(children[c], alt.child_alt[c], 1));
    }
    d.description = join(parts, "; ");
    d.design->set_top(&top);
    out.push_back(std::move(d));
  }
  extract_timer.finish();
  extract_span.close();
  if (space_->options().verify_designs) {
    obs::Span verify_span("verify", "dtas");
    PhaseTimer t(prof.profile(), "verify");
    verify_or_throw(out, lint_cache_);
  }
  return out;
}

}  // namespace bridge::dtas
