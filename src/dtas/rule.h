// DTAS rules: functional decomposition of component specifications.
//
// "Functional decomposition is implemented with a rule-based system that
// expands the space of component decompositions." (paper §5)
//
// A Rule recognizes a component specification and rewrites it into one or
// more template netlists. Each template is one level of decomposition: a
// netlist::Module whose instances are *specifications* of connected
// subcomponents (RefKind::kSpec). DTAS recursively decomposes those in
// turn, and the functional matcher maps specifications onto library cells.
//
// Rules come in two flavors, mirroring the paper's "86 rules written in
// the DTAS Design Language" and "nine library-specific design rules":
// generic rules encode technology-independent design principles (ripple
// composition, bit slicing, tree composition, ...); library-specific rules
// instantiate those principles for the granularities a particular data
// book offers (e.g. ripple by 4 because ADD4 exists). LOLA (src/lola)
// induces the latter automatically from a data book.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/symbol.h"
#include "cells/cell.h"
#include "genus/spec.h"
#include "netlist/netlist.h"

namespace bridge::dtas {

/// Everything a rule may consult while expanding. Rules may look at the
/// target library (e.g. to propose granularities that cells exist for),
/// but must not bind cells themselves — matching is the engine's job.
struct RuleContext {
  const cells::CellLibrary& library;
};

class Rule {
 public:
  Rule(std::string name, std::string principle, bool library_specific)
      : name_(std::move(name)),
        principle_(std::move(principle)),
        library_specific_(library_specific) {}
  virtual ~Rule() = default;

  Rule(const Rule&) = delete;
  Rule& operator=(const Rule&) = delete;

  /// Fast recognition test.
  virtual bool applies(const genus::ComponentSpec& spec,
                       const RuleContext& ctx) const = 0;

  /// Produce alternative one-level decompositions of `spec`. Only called
  /// when applies() is true. Each returned module's ports must be exactly
  /// spec_ports(spec).
  ///
  /// Contract: expand() must be a pure function of (rule name, spec) — the
  /// context may gate applicability (applies() routinely probes the
  /// library) but must not shape the templates themselves. Every built-in
  /// and LOLA-induced rule satisfies this (their names encode their
  /// parameters), which is what lets the engine cache compiled templates
  /// per (rule name, spec) across design spaces and libraries. A custom
  /// rule that cannot promise this must override cacheable().
  virtual std::vector<netlist::Module> expand(const genus::ComponentSpec& spec,
                                              const RuleContext& ctx) const = 0;

  /// Whether expand() honors the purity contract above and may be served
  /// from the global template cache.
  virtual bool cacheable() const { return true; }

  /// The library-slice fingerprint that becomes part of this rule's
  /// template-cache key alongside (rule name, spec). 0 — the default —
  /// declares "my expansions depend on nothing beyond (name, spec)", which
  /// is exactly the purity contract every built-in and LOLA-induced rule
  /// satisfies (their names encode their parameters), and is what lets
  /// warm templates be shared across design spaces, libraries, and server
  /// sessions. A rule whose templates *do* depend on library content must
  /// return a fingerprint of the cells/attributes it consults, so that two
  /// same-named rules with different expansions can never collide in the
  /// process-wide cache. LambdaRule enforces this mechanically: unless an
  /// explicit fingerprint is supplied, every cacheable lambda rule gets a
  /// process-unique one (correct, shared-nothing).
  virtual std::uint64_t slice_fingerprint() const { return 0; }

  const std::string& name() const { return name_; }
  /// The abstract design principle the rule instantiates
  /// ("ripple-composition", "bit-slice", "tree-composition", ...).
  const std::string& principle() const { return principle_; }
  bool library_specific() const { return library_specific_; }

 private:
  std::string name_;
  std::string principle_;
  bool library_specific_;
};

/// An ordered rule base. Generic rules are registered by
/// register_standard_rules(); library rules by register_lsi_rules() or by
/// LOLA induction.
class RuleBase {
 public:
  void add(std::unique_ptr<Rule> rule);

  const std::vector<std::unique_ptr<Rule>>& rules() const { return rules_; }
  int total_count() const { return static_cast<int>(rules_.size()); }
  int generic_count() const;
  int library_specific_count() const;

  /// Rule lookup by name; nullptr when absent. O(1) through the name
  /// index (add() used to run a linear find() per insertion, making bulk
  /// registration quadratic as LOLA-induced rule sets grow).
  const Rule* find(const std::string& name) const;

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
  std::unordered_map<std::string, const Rule*> by_name_;
};

/// Convenience rule built from two lambdas. The global template cache is
/// keyed by (rule name, spec, slice fingerprint), and lambda rules are
/// exactly where same-named rules with different expansions could
/// otherwise sneak in (per-library tweaks sharing a name across rule
/// bases) — so unless the author passes an explicit `fingerprint`
/// (promising that any two lambda rules constructed with that same name +
/// fingerprint expand identically), each cacheable LambdaRule is stamped
/// with a process-unique fingerprint: its templates still get cached and
/// reused within/across the design spaces holding *that* rule object, but
/// can never be served to a same-named stranger. LambdaRule is final,
/// making the constructor the only escape hatch.
class LambdaRule final : public Rule {
 public:
  using AppliesFn = std::function<bool(const genus::ComponentSpec&,
                                       const RuleContext&)>;
  using ExpandFn = std::function<std::vector<netlist::Module>(
      const genus::ComponentSpec&, const RuleContext&)>;

  /// `fingerprint = kUniqueFingerprint` (default) assigns a process-unique
  /// slice fingerprint when cacheable; pass an explicit value to opt into
  /// cross-instance template sharing, or `cacheable = false` to bypass the
  /// template cache entirely.
  static constexpr std::uint64_t kUniqueFingerprint = ~0ULL;

  LambdaRule(std::string name, std::string principle, bool library_specific,
             AppliesFn applies, ExpandFn expand, bool cacheable = true,
             std::uint64_t fingerprint = kUniqueFingerprint)
      : Rule(std::move(name), std::move(principle), library_specific),
        applies_(std::move(applies)),
        expand_(std::move(expand)),
        cacheable_(cacheable),
        fingerprint_(fingerprint == kUniqueFingerprint ? next_unique_fingerprint()
                                                       : fingerprint) {}

  bool applies(const genus::ComponentSpec& spec,
               const RuleContext& ctx) const override {
    return applies_(spec, ctx);
  }
  std::vector<netlist::Module> expand(const genus::ComponentSpec& spec,
                                      const RuleContext& ctx) const override {
    return expand_(spec, ctx);
  }
  bool cacheable() const override { return cacheable_; }
  std::uint64_t slice_fingerprint() const override { return fingerprint_; }

 private:
  static std::uint64_t next_unique_fingerprint();

  AppliesFn applies_;
  ExpandFn expand_;
  bool cacheable_;
  std::uint64_t fingerprint_;
};

/// Helper for authoring decomposition templates. Wraps a Module whose
/// ports are created from the parent specification, and offers small
/// hardware idioms (fresh nets, gates, buffers, constants) so rules read
/// like the structures they build.
class TemplateBuilder {
 public:
  /// Create a template whose ports are spec_ports(spec).
  TemplateBuilder(const genus::ComponentSpec& spec, const std::string& label);

  netlist::Module take() && { return std::move(mod_); }
  netlist::Module& module() { return mod_; }

  /// Net index of a parent port.
  netlist::NetIndex port(base::Symbol name) const;

  /// Create a fresh internal net (unique suffix added automatically).
  netlist::NetIndex fresh(const std::string& base, int width);

  /// Add a subcomponent specification instance.
  netlist::Instance& add(const std::string& name,
                         const genus::ComponentSpec& child);

  // --- small hardware idioms ------------------------------------------
  /// 1-bit two-input gate; returns its (fresh) output net.
  netlist::NetIndex gate2(genus::Op fn, netlist::NetIndex a, int a_lo,
                          netlist::NetIndex b, int b_lo);
  /// 1-bit inverter.
  netlist::NetIndex inv(netlist::NetIndex a, int a_lo);
  /// Fanin-k 1-bit gate over bit picks; k is taken from picks.size() and
  /// must be >= 1. A single pick is accepted only where it has a sound
  /// 1-input reading: AND/OR collapse to a buffer of the pick, LNOT to an
  /// inverter. Any other op with one pick (NOR, NAND, XNOR, ... — whose
  /// 1-input forms are not the identity) throws instead of silently
  /// degrading to a buffer.
  netlist::NetIndex gate_many(genus::Op fn,
                              const std::vector<std::pair<netlist::NetIndex,
                                                          int>>& picks);
  /// Copy `width` bits from src[src_lo...] into dst[dst_lo...] via a
  /// buffer array (used for shift/rotate wiring).
  void buf_slice(netlist::NetIndex src, int src_lo, netlist::NetIndex dst,
                 int dst_lo, int width);
  /// Drive dst[dst_lo...width) with a constant (zero-generator gate).
  void const_slice(netlist::NetIndex dst, int dst_lo, int width,
                   bool value = false);

  /// Connect helpers forwarding to the module.
  void connect(netlist::Instance& inst, base::Symbol port,
               netlist::NetIndex net, int lo = 0) {
    mod_.connect(inst, port, net, lo);
  }
  void connect_const(netlist::Instance& inst, base::Symbol port,
                     std::uint64_t v) {
    mod_.connect_const(inst, port, v);
  }
  void connect_replicated(netlist::Instance& inst, base::Symbol port,
                          netlist::NetIndex net, int bit = 0) {
    mod_.connect_replicated(inst, port, net, bit);
  }

 private:
  netlist::Module mod_;
  int counter_ = 0;
};

/// Register the generic (technology-independent) DTAS rule set.
void register_standard_rules(RuleBase& base);

/// Register the nine library-specific rules for the LSI-style data book.
void register_lsi_rules(RuleBase& base);

// Per-family registration (exposed for tests and for LOLA, which reuses
// the parameterized rule constructors).
void register_arith_rules(RuleBase& base);
void register_gate_rules(RuleBase& base);
void register_mux_rules(RuleBase& base);
void register_codec_rules(RuleBase& base);
void register_compare_shift_rules(RuleBase& base);
void register_seq_rules(RuleBase& base);
void register_alu_rules(RuleBase& base);

// Parameterized rule constructors shared with library rules and LOLA.
std::unique_ptr<Rule> make_ripple_adder_rule(int group_width,
                                             bool library_specific);
std::unique_ptr<Rule> make_fast_adder_ripple_rule(int group_width,
                                                  bool library_specific);
std::unique_ptr<Rule> make_addsub_ripple_rule(int group_width,
                                              bool library_specific);
std::unique_ptr<Rule> make_mux_bitslice_rule(int slice_width,
                                             bool library_specific);
std::unique_ptr<Rule> make_mux_tree_rule(int arity, bool library_specific);
std::unique_ptr<Rule> make_register_pack_rule(int pack_width,
                                              bool library_specific);
std::unique_ptr<Rule> make_comparator_cascade_rule(int group_width,
                                                   bool library_specific);
std::unique_ptr<Rule> make_decoder_tree_rule(int leaf_width,
                                             bool library_specific);
std::unique_ptr<Rule> make_alu_slice_cascade_rule(int slice_width,
                                                  bool library_specific);

}  // namespace bridge::dtas
