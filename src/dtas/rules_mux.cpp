// Multiplexer and selector decomposition rules: bit slicing to the widths
// the data book offers, select-tree composition, gate-level realization,
// and the one-hot selector as an AND-OR array.
#include <memory>

#include "dtas/rule.h"

namespace bridge::dtas {

using genus::ComponentSpec;
using genus::Kind;
using genus::Op;
using netlist::Instance;
using netlist::Module;
using netlist::NetIndex;

namespace {

int clog2(int n) {
  int bits = 0;
  int cap = 1;
  while (cap < n) {
    cap <<= 1;
    ++bits;
  }
  return bits < 1 ? 1 : bits;
}

/// Slice a wide mux into data-book-width muxes (SEL broadcast).
class MuxBitSliceRule final : public Rule {
 public:
  MuxBitSliceRule(int slice_width, bool library_specific)
      : Rule("mux-bit-slice-" + std::to_string(slice_width), "bit-slice",
             library_specific),
        kw_(slice_width) {}

  bool applies(const ComponentSpec& spec,
               const RuleContext& ctx) const override {
    if (spec.kind != Kind::kMux || spec.width <= kw_ ||
        spec.width % kw_ != 0) {
      return false;
    }
    if (kw_ == 1) return true;  // generic base case
    return !ctx.library.matches(genus::make_mux_spec(kw_, spec.size)).empty();
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "muxslice" + std::to_string(kw_));
    const int nslices = spec.width / kw_;
    for (int s = 0; s < nslices; ++s) {
      Instance& m = t.add("m", genus::make_mux_spec(kw_, spec.size));
      for (int i = 0; i < spec.size; ++i) {
        t.connect(m, "I" + std::to_string(i),
                  t.port("I" + std::to_string(i)), s * kw_);
      }
      t.connect(m, "SEL", t.port("SEL"));
      t.connect(m, "OUT", t.port("OUT"), s * kw_);
    }
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }

 private:
  int kw_;
};

/// Select-tree composition: first level of `arity`-input muxes on the low
/// select bits, then a second-level mux on the high bits. Short final
/// groups pad with their last real input, which composes to the
/// OUT = I[min(SEL, n-1)] semantics.
class MuxTreeRule final : public Rule {
 public:
  MuxTreeRule(int arity, bool library_specific)
      : Rule("mux-tree-arity-" + std::to_string(arity), "tree-composition",
             library_specific),
        arity_(arity) {}

  bool applies(const ComponentSpec& spec,
               const RuleContext& ctx) const override {
    if (spec.kind != Kind::kMux || spec.size <= arity_) return false;
    if (arity_ == 2) return true;  // generic base case
    return !ctx.library.matches(genus::make_mux_spec(1, arity_)).empty() ||
           !ctx.library.matches(genus::make_mux_spec(spec.width, arity_))
                .empty();
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "muxtree" + std::to_string(arity_));
    const int w = spec.width;
    const int n = spec.size;
    const int low_bits = clog2(arity_);
    // Pad to the full 2^selw so no tree level ever select-clamps; padded
    // entries alias the last real input, which realizes the
    // OUT = I[min(SEL, n-1)] semantics exactly at every level.
    const int ntotal = 1 << clog2(n);
    const int ngroups = ntotal / arity_;

    Instance& root = t.add("root", genus::make_mux_spec(w, ngroups));
    for (int g = 0; g < ngroups; ++g) {
      const int base = g * arity_;
      const int real = std::max(0, std::min(arity_, n - base));
      if (real <= 1) {
        // Degenerate group (one real input or pure padding).
        t.connect(root, "I" + std::to_string(g),
                  t.port("I" + std::to_string(std::min(base, n - 1))));
        continue;
      }
      Instance& m = t.add("l", genus::make_mux_spec(w, arity_));
      for (int i = 0; i < arity_; ++i) {
        const int src = base + std::min(i, real - 1);  // pad w/ last input
        t.connect(m, "I" + std::to_string(i),
                  t.port("I" + std::to_string(src)));
      }
      t.connect(m, "SEL", t.port("SEL"), 0);  // low select bits
      NetIndex o = t.fresh("lg", w);
      t.connect(m, "OUT", o);
      t.connect(root, "I" + std::to_string(g), o);
    }
    t.connect(root, "SEL", t.port("SEL"), low_bits);
    t.connect(root, "OUT", t.port("OUT"));
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }

 private:
  int arity_;
};

/// 1-bit 2:1 mux from gates: OUT = (I0 & ~SEL) | (I1 & SEL).
class MuxFromGatesRule final : public Rule {
 public:
  explicit MuxFromGatesRule(bool library_specific)
      : Rule("mux21-from-gates", "gate-level-realization", library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return spec.kind == Kind::kMux && spec.width == 1 && spec.size == 2;
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "mux_gates");
    NetIndex nsel = t.inv(t.port("SEL"), 0);
    NetIndex a = t.gate2(Op::kAnd, t.port("I0"), 0, nsel, 0);
    NetIndex b = t.gate2(Op::kAnd, t.port("I1"), 0, t.port("SEL"), 0);
    Instance& o = t.add("or", genus::make_gate_spec(Op::kOr, 1, 2));
    t.connect(o, "I0", a);
    t.connect(o, "I1", b);
    t.connect(o, "OUT", t.port("OUT"));
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

/// One-hot selector: per-input AND mask, OR merge (wired-or style array).
class SelectorAndOrRule final : public Rule {
 public:
  explicit SelectorAndOrRule(bool library_specific)
      : Rule("selector-and-or-array", "one-hot-selection", library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return spec.kind == Kind::kSelector && spec.size >= 2;
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "selarr");
    const int w = spec.width;
    const int n = spec.size;
    Instance& merge = t.add("or", genus::make_gate_spec(Op::kOr, w, n));
    for (int i = 0; i < n; ++i) {
      Instance& mask = t.add("and", genus::make_gate_spec(Op::kAnd, w, 2));
      t.connect(mask, "I0", t.port("I" + std::to_string(i)));
      t.connect_replicated(mask, "I1", t.port("SEL"), i);
      NetIndex m = t.fresh("m", w);
      t.connect(mask, "OUT", m);
      t.connect(merge, "I" + std::to_string(i), m);
    }
    t.connect(merge, "OUT", t.port("OUT"));
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

}  // namespace

std::unique_ptr<Rule> make_mux_bitslice_rule(int slice_width,
                                             bool library_specific) {
  return std::make_unique<MuxBitSliceRule>(slice_width, library_specific);
}

std::unique_ptr<Rule> make_mux_tree_rule(int arity, bool library_specific) {
  return std::make_unique<MuxTreeRule>(arity, library_specific);
}

void register_mux_rules(RuleBase& base) {
  base.add(make_mux_bitslice_rule(1, false));
  base.add(make_mux_tree_rule(2, false));
  base.add(std::make_unique<MuxFromGatesRule>(false));
  base.add(std::make_unique<SelectorAndOrRule>(false));
}

}  // namespace bridge::dtas
