// Comparators, shifters, barrel shifters, and array multipliers.
#include <functional>
#include <memory>

#include "dtas/rule.h"

#include "base/diag.h"

namespace bridge::dtas {

using genus::ComponentSpec;
using genus::Kind;
using genus::Op;
using genus::OpSet;
using netlist::Instance;
using netlist::Module;
using netlist::NetIndex;

namespace {

const OpSet kOrderOps{Op::kEq, Op::kNe, Op::kLt, Op::kGt, Op::kLe, Op::kGe};

/// Comparator built on a subtract datapath: A - B yields borrow (order)
/// and a zero-detect (equality).
class ComparatorFromSubRule final : public Rule {
 public:
  explicit ComparatorFromSubRule(bool library_specific)
      : Rule("comparator-from-subtract", "arithmetic-reuse",
             library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return spec.kind == Kind::kComparator && !spec.ops.empty() &&
           kOrderOps.contains_all(spec.ops);
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "cmpsub");
    const int w = spec.width;
    // diff = A + ~B + 1; raw carry == 1  <=>  A >= B.
    ComponentSpec core = genus::make_addsub_spec(w);
    Instance& u = t.add("sub", core);
    t.connect(u, "A", t.port("A"));
    t.connect(u, "B", t.port("B"));
    t.connect_const(u, "MODE", 1);
    t.connect_const(u, "CI", 1);
    NetIndex diff = t.fresh("diff", w);
    NetIndex ge = t.fresh("ge", 1);
    t.connect(u, "S", diff);
    t.connect(u, "CO", ge);

    const bool need_eq = spec.ops.intersects(OpSet{Op::kEq, Op::kNe,
                                                   Op::kGt, Op::kLe});
    NetIndex eq = netlist::kNoNet;
    if (need_eq) {
      std::vector<std::pair<NetIndex, int>> picks;
      for (int b = 0; b < w; ++b) picks.emplace_back(diff, b);
      eq = picks.size() == 1 ? t.inv(diff, 0) : t.gate_many(Op::kNor, picks);
    }
    auto emit = [&](Op op, NetIndex n, int lo) {
      t.buf_slice(n, lo, t.port(genus::op_name(op)), 0, 1);
    };
    if (spec.ops.contains(Op::kEq)) emit(Op::kEq, eq, 0);
    if (spec.ops.contains(Op::kNe)) emit(Op::kNe, t.inv(eq, 0), 0);
    if (spec.ops.contains(Op::kGe)) emit(Op::kGe, ge, 0);
    if (spec.ops.contains(Op::kLt)) emit(Op::kLt, t.inv(ge, 0), 0);
    NetIndex gt = netlist::kNoNet;
    if (spec.ops.intersects(OpSet{Op::kGt, Op::kLe})) {
      NetIndex neq = t.inv(eq, 0);
      gt = t.gate2(Op::kAnd, ge, 0, neq, 0);
    }
    if (spec.ops.contains(Op::kGt)) emit(Op::kGt, gt, 0);
    if (spec.ops.contains(Op::kLe)) emit(Op::kLe, t.inv(gt, 0), 0);
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

/// Equality-only comparator: XNOR array plus an AND reduction tree.
class EqualityXnorRule final : public Rule {
 public:
  explicit EqualityXnorRule(bool library_specific)
      : Rule("comparator-equality-xnor", "gate-level-realization",
             library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return spec.kind == Kind::kComparator && !spec.ops.empty() &&
           OpSet{Op::kEq, Op::kNe}.contains_all(spec.ops);
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "cmpeq");
    const int w = spec.width;
    NetIndex x = t.fresh("x", w);
    Instance& xg = t.add("xn", genus::make_gate_spec(Op::kXnor, w));
    t.connect(xg, "I0", t.port("A"));
    t.connect(xg, "I1", t.port("B"));
    t.connect(xg, "OUT", x);
    std::vector<std::pair<NetIndex, int>> picks;
    for (int b = 0; b < w; ++b) picks.emplace_back(x, b);
    NetIndex eq = w == 1 ? x : t.gate_many(Op::kAnd, picks);
    if (spec.ops.contains(Op::kEq)) {
      t.buf_slice(eq, 0, t.port("EQ"), 0, 1);
    }
    if (spec.ops.contains(Op::kNe)) {
      NetIndex ne = t.inv(eq, 0);
      t.buf_slice(ne, 0, t.port("NE"), 0, 1);
    }
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

/// Cascade of data-book comparator cells, combined most-significant first.
class ComparatorCascadeRule final : public Rule {
 public:
  ComparatorCascadeRule(int k, bool library_specific)
      : Rule("comparator-cascade-" + std::to_string(k), "ripple-composition",
             library_specific),
        k_(k) {}

  bool applies(const ComponentSpec& spec,
               const RuleContext& ctx) const override {
    if (spec.kind != Kind::kComparator || spec.width <= k_ ||
        spec.width % k_ != 0 || spec.ops.empty() ||
        !kOrderOps.contains_all(spec.ops)) {
      return false;
    }
    return !ctx.library
                .matches(genus::make_comparator_spec(
                    k_, OpSet{Op::kEq, Op::kLt, Op::kGt}))
                .empty();
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    // Two combine topologies: a linear cascade (minimal gates on a short
    // chain) and a balanced tree (log depth for wide comparators).
    std::vector<Module> out;
    out.push_back(build(spec, /*tree=*/false));
    if (spec.width / k_ >= 4) out.push_back(build(spec, /*tree=*/true));
    return out;
  }

 private:
  struct Triple {
    NetIndex eq, lt, gt;
  };

  Module build(const ComponentSpec& spec, bool tree) const {
    TemplateBuilder t(spec, tree ? "cmptree" + std::to_string(k_)
                                 : "cmpcasc" + std::to_string(k_));
    const int groups = spec.width / k_;
    ComponentSpec cell =
        genus::make_comparator_spec(k_, OpSet{Op::kEq, Op::kLt, Op::kGt});
    std::vector<Triple> g(groups);
    for (int i = 0; i < groups; ++i) {
      Instance& c = t.add("cmp", cell);
      t.connect(c, "A", t.port("A"), i * k_);
      t.connect(c, "B", t.port("B"), i * k_);
      g[i] = Triple{t.fresh("eq", 1), t.fresh("lt", 1), t.fresh("gt", 1)};
      t.connect(c, "EQ", g[i].eq);
      t.connect(c, "LT", g[i].lt);
      t.connect(c, "GT", g[i].gt);
    }
    // combine(low, high): higher-significance side dominates.
    auto combine = [&t](const Triple& lo, const Triple& hi) {
      Triple r;
      NetIndex pass_lt = t.gate2(Op::kAnd, hi.eq, 0, lo.lt, 0);
      r.lt = t.gate2(Op::kOr, hi.lt, 0, pass_lt, 0);
      NetIndex pass_gt = t.gate2(Op::kAnd, hi.eq, 0, lo.gt, 0);
      r.gt = t.gate2(Op::kOr, hi.gt, 0, pass_gt, 0);
      r.eq = t.gate2(Op::kAnd, hi.eq, 0, lo.eq, 0);
      return r;
    };
    Triple cur;
    if (tree) {
      // Balanced reduction, pairing adjacent significance ranges.
      std::function<Triple(int, int)> reduce = [&](int lo, int n) -> Triple {
        if (n == 1) return g[lo];
        int half = n / 2;
        Triple left = reduce(lo, half);          // lower significance
        Triple right = reduce(lo + half, n - half);
        return combine(left, right);
      };
      cur = reduce(0, groups);
    } else {
      cur = g[0];
      for (int i = 1; i < groups; ++i) cur = combine(cur, g[i]);
    }
    if (spec.ops.contains(Op::kEq)) t.buf_slice(cur.eq, 0, t.port("EQ"), 0, 1);
    if (spec.ops.contains(Op::kLt)) t.buf_slice(cur.lt, 0, t.port("LT"), 0, 1);
    if (spec.ops.contains(Op::kGt)) t.buf_slice(cur.gt, 0, t.port("GT"), 0, 1);
    if (spec.ops.contains(Op::kNe)) {
      t.buf_slice(t.inv(cur.eq, 0), 0, t.port("NE"), 0, 1);
    }
    if (spec.ops.contains(Op::kGe)) {
      t.buf_slice(t.inv(cur.lt, 0), 0, t.port("GE"), 0, 1);
    }
    if (spec.ops.contains(Op::kLe)) {
      t.buf_slice(t.inv(cur.gt, 0), 0, t.port("LE"), 0, 1);
    }
    return std::move(t).take();
  }

  int k_;
};

const OpSet kShiftOps{Op::kShl, Op::kShr, Op::kAshr, Op::kRotl, Op::kRotr};

/// Wire a shift-by-`amount` version of IN into a fresh net.
NetIndex shifted_wiring(TemplateBuilder& t, Op op, int w, int amount) {
  NetIndex val = t.fresh("sh", w);
  const int a = op == Op::kRotl || op == Op::kRotr ? amount % w
                                                   : std::min(amount, w);
  switch (op) {
    case Op::kShl:
      if (a < w) t.buf_slice(t.port("IN"), 0, val, a, w - a);
      if (a > 0) t.const_slice(val, 0, a);
      break;
    case Op::kShr:
      if (a < w) t.buf_slice(t.port("IN"), a, val, 0, w - a);
      if (a > 0) t.const_slice(val, w - a, a);
      break;
    case Op::kAshr:
      if (a < w) t.buf_slice(t.port("IN"), a, val, 0, w - a);
      for (int b = std::max(0, w - a); b < w; ++b) {
        t.buf_slice(t.port("IN"), w - 1, val, b, 1);
      }
      break;
    case Op::kRotl:
      if (a == 0) {
        t.buf_slice(t.port("IN"), 0, val, 0, w);
      } else {
        t.buf_slice(t.port("IN"), 0, val, a, w - a);
        t.buf_slice(t.port("IN"), w - a, val, 0, a);
      }
      break;
    case Op::kRotr:
      if (a == 0) {
        t.buf_slice(t.port("IN"), 0, val, 0, w);
      } else {
        t.buf_slice(t.port("IN"), a, val, 0, w - a);
        t.buf_slice(t.port("IN"), 0, val, w - a, a);
      }
      break;
    default:
      throw bridge::Error("not a shift op");
  }
  return val;
}

/// Shift-by-one shifter: per-operation rewiring plus a function mux.
class ShifterWiringRule final : public Rule {
 public:
  explicit ShifterWiringRule(bool library_specific)
      : Rule("shifter-wiring-mux", "function-enumeration", library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return spec.kind == Kind::kShifter && spec.width >= 2 &&
           !spec.ops.empty() && kShiftOps.contains_all(spec.ops);
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "shiftwire");
    const auto ops = spec.ops.to_vector();
    if (ops.size() == 1) {
      NetIndex v = shifted_wiring(t, ops[0], spec.width, 1);
      t.buf_slice(v, 0, t.port("OUT"), 0, spec.width);
    } else {
      Instance& mux = t.add(
          "fsel", genus::make_mux_spec(spec.width,
                                       static_cast<int>(ops.size())));
      for (size_t i = 0; i < ops.size(); ++i) {
        t.connect(mux, "I" + std::to_string(i),
                  shifted_wiring(t, ops[i], spec.width, 1));
      }
      t.connect(mux, "SEL", t.port("F"));
      t.connect(mux, "OUT", t.port("OUT"));
    }
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

/// Single-operation barrel shifter: logarithmic mux stages.
class BarrelLogStageRule final : public Rule {
 public:
  explicit BarrelLogStageRule(bool library_specific)
      : Rule("barrel-log-stages", "logarithmic-staging", library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return spec.kind == Kind::kBarrelShifter && spec.width >= 2 &&
           spec.ops.size() == 1 && kShiftOps.contains_all(spec.ops);
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "barrel");
    const int w = spec.width;
    const Op op = spec.ops.to_vector()[0];
    int stages = 0;
    while ((1 << stages) < w) ++stages;
    if (stages < 1) stages = 1;

    NetIndex cur = t.fresh("st", w);
    t.buf_slice(t.port("IN"), 0, cur, 0, w);
    for (int s = 0; s < stages; ++s) {
      // Shifted-by-2^s view of `cur` (same wiring trick, source = cur).
      NetIndex sh = t.fresh("sv", w);
      const int amount = 1 << s;
      const int a = (op == Op::kRotl || op == Op::kRotr) ? amount % w
                                                         : std::min(amount, w);
      switch (op) {
        case Op::kShl:
          if (a < w) t.buf_slice(cur, 0, sh, a, w - a);
          if (a > 0) t.const_slice(sh, 0, a);
          break;
        case Op::kShr:
          if (a < w) t.buf_slice(cur, a, sh, 0, w - a);
          if (a > 0) t.const_slice(sh, w - a, a);
          break;
        case Op::kAshr:
          if (a < w) t.buf_slice(cur, a, sh, 0, w - a);
          for (int b = std::max(0, w - a); b < w; ++b) {
            t.buf_slice(cur, w - 1, sh, b, 1);
          }
          break;
        case Op::kRotl:
          if (a == 0) {
            t.buf_slice(cur, 0, sh, 0, w);
          } else {
            t.buf_slice(cur, 0, sh, a, w - a);
            t.buf_slice(cur, w - a, sh, 0, a);
          }
          break;
        case Op::kRotr:
          if (a == 0) {
            t.buf_slice(cur, 0, sh, 0, w);
          } else {
            t.buf_slice(cur, a, sh, 0, w - a);
            t.buf_slice(cur, 0, sh, w - a, a);
          }
          break;
        default:
          throw bridge::Error("not a shift op");
      }
      Instance& mux = t.add("stage", genus::make_mux_spec(w, 2));
      t.connect(mux, "I0", cur);
      t.connect(mux, "I1", sh);
      t.connect(mux, "SEL", t.port("AMT"), s);
      if (s + 1 == stages) {
        t.connect(mux, "OUT", t.port("OUT"));
      } else {
        NetIndex nxt = t.fresh("st", w);
        t.connect(mux, "OUT", nxt);
        cur = nxt;
      }
    }
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

/// Multi-operation barrel shifter: one single-op barrel per operation plus
/// a function mux.
class BarrelPerOpRule final : public Rule {
 public:
  explicit BarrelPerOpRule(bool library_specific)
      : Rule("barrel-split-by-op", "function-enumeration", library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return spec.kind == Kind::kBarrelShifter && spec.width >= 2 &&
           spec.ops.size() > 1 && kShiftOps.contains_all(spec.ops);
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "barrelops");
    const auto ops = spec.ops.to_vector();
    Instance& mux = t.add(
        "fsel",
        genus::make_mux_spec(spec.width, static_cast<int>(ops.size())));
    for (size_t i = 0; i < ops.size(); ++i) {
      ComponentSpec child =
          genus::make_barrel_shifter_spec(spec.width, genus::OpSet{ops[i]});
      Instance& b = t.add("bs", child);
      t.connect(b, "IN", t.port("IN"));
      t.connect(b, "AMT", t.port("AMT"));
      NetIndex o = t.fresh("bo", spec.width);
      t.connect(b, "OUT", o);
      t.connect(mux, "I" + std::to_string(i), o);
    }
    t.connect(mux, "SEL", t.port("F"));
    t.connect(mux, "OUT", t.port("OUT"));
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

/// Array multiplier: AND partial products accumulated through a row of
/// ripple adders (each row further decomposed by the adder rules).
class MultiplierArrayRule final : public Rule {
 public:
  explicit MultiplierArrayRule(bool library_specific)
      : Rule("multiplier-array", "array-composition", library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return spec.kind == Kind::kMultiplier && spec.size >= 1 &&
           spec.rep == genus::Representation::kBinary;
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "mularray");
    const int w = spec.width;
    const int m = spec.size;
    // Partial products pp_i = A & B[i].
    std::vector<NetIndex> pp(m);
    for (int i = 0; i < m; ++i) {
      Instance& g = t.add("pp", genus::make_gate_spec(Op::kAnd, w, 2));
      t.connect(g, "I0", t.port("A"));
      t.connect_replicated(g, "I1", t.port("B"), i);
      pp[i] = t.fresh("pp", w);
      t.connect(g, "OUT", pp[i]);
    }
    if (m == 1) {
      t.buf_slice(pp[0], 0, t.port("P"), 0, w);
      t.const_slice(t.port("P"), w, 1);
      std::vector<Module> out;
      out.push_back(std::move(t).take());
      return out;
    }
    // Row 0 contributes P[0] and the shifted-down accumulator input.
    t.buf_slice(pp[0], 0, t.port("P"), 0, 1);
    NetIndex a_in = t.fresh("ra", w);  // {0, pp0[w-1:1]}
    t.buf_slice(pp[0], 1, a_in, 0, w - 1);
    t.const_slice(a_in, w - 1, 1);

    NetIndex prev = netlist::kNoNet;  // r_{i-1}[w+1] = {CO, S}
    for (int i = 1; i < m; ++i) {
      ComponentSpec addspec = genus::make_adder_spec(w, true, true);
      Instance& add = t.add("row", addspec);
      if (i == 1) {
        t.connect(add, "A", a_in);
      } else {
        t.connect(add, "A", prev, 1);
      }
      t.connect(add, "B", pp[i]);
      t.connect_const(add, "CI", 0);
      if (i + 1 == m) {
        // Last row drives the top product bits directly.
        t.connect(add, "S", t.port("P"), m - 1);
        t.connect(add, "CO", t.port("P"), m + w - 1);
      } else {
        NetIndex r = t.fresh("r", w + 1);
        t.connect(add, "S", r, 0);
        t.connect(add, "CO", r, w);
        t.buf_slice(r, 0, t.port("P"), i, 1);
        prev = r;
      }
    }
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

}  // namespace

std::unique_ptr<Rule> make_comparator_cascade_rule(int group_width,
                                                   bool library_specific) {
  return std::make_unique<ComparatorCascadeRule>(group_width,
                                                 library_specific);
}

void register_compare_shift_rules(RuleBase& base) {
  base.add(std::make_unique<ComparatorFromSubRule>(false));
  base.add(std::make_unique<EqualityXnorRule>(false));
  base.add(std::make_unique<ShifterWiringRule>(false));
  base.add(std::make_unique<BarrelLogStageRule>(false));
  base.add(std::make_unique<BarrelPerOpRule>(false));
  base.add(std::make_unique<MultiplierArrayRule>(false));
}

}  // namespace bridge::dtas
